/**
 * @file
 * Ablation bench: the design choices DESIGN.md calls out, each
 * isolated by toggling one mechanism.
 *
 *  1. LSQ write combining on/off: combining is what keeps
 *     sequential NT-store bandwidth media-friendly (256B writes, no
 *     RMW fills).
 *  2. Interleave granularity sweep (1K/4K/16K): 4KB matches the
 *     LSQ/AIT-entry sizing (paper section III-D's rationale).
 *  3. Media partitions (2/6/12): internal parallelism sets the
 *     random-read plateau.
 *  4. Wear threshold sweep: migration interval tracks it linearly.
 */

#include "bench/bench_util.hh"
#include "lens/microbench.hh"
#include "lens/probers.hh"
#include "nvram/vans_system.hh"

using namespace vans;
using namespace vans::bench;

int
main()
{
    banner("Ablations", "design-choice sensitivity studies");

    // ---- 1. LSQ write combining ---------------------------------------
    auto seq_write = [](double epoch_ns) {
        nvram::NvramConfig cfg = nvram::NvramConfig::optaneDefault();
        cfg.lsqEpochNs = epoch_ns;
        EventQueue eq;
        nvram::VansSystem sys(eq, cfg);
        lens::Driver drv(sys);
        std::vector<Addr> addrs;
        for (Addr a = 0; a < (1 << 20); a += 64)
            addrs.push_back(a);
        Tick t = drv.streamWrites(addrs, 16, 3.0);
        drv.fence();
        double gbps = static_cast<double>(addrs.size()) * 64 /
                      (ticksToNs(t) * 1e-9) / 1e9;
        return std::pair<double, std::uint64_t>(
            gbps, sys.totalRmwFills());
    };
    auto [bw_on, fills_on] = seq_write(600);
    auto [bw_off, fills_off] = seq_write(0);
    std::printf("\n1. LSQ write combining (sequential NT stores, "
                "1MB)\n");
    TextTable t1({"combining", "GB/s", "RMW fills"});
    t1.addRow({"on (600ns epoch)", fmtDouble(bw_on),
               std::to_string(fills_on)});
    t1.addRow({"off (0ns epoch)", fmtDouble(bw_off),
               std::to_string(fills_off)});
    std::printf("%s\n", t1.render().c_str());
    check("combining removes RMW fills on sequential writes",
          fills_on < fills_off / 4 + 1);
    check("combining sustains >= the uncombined bandwidth",
          bw_on >= bw_off * 0.95);

    // ---- 2. Interleave granularity --------------------------------------
    std::printf("2. interleave granularity (6 DIMMs, 16KB seq "
                "write)\n");
    TextTable t2({"granularity", "exec time (us)"});
    double best_time = 1e18;
    std::uint64_t best_gran = 0;
    for (std::uint64_t gran : {1024ull, 4096ull, 16384ull}) {
        nvram::NvramConfig cfg = nvram::NvramConfig::optaneDefault();
        cfg.numDimms = 6;
        cfg.interleaved = true;
        cfg.interleaveBytes = gran;
        EventQueue eq;
        nvram::VansSystem sys(eq, cfg);
        lens::Driver drv(sys);
        std::vector<Addr> addrs;
        for (Addr a = 0; a < 16384; a += 64)
            addrs.push_back(a);
        Tick t = drv.streamWrites(addrs, 32, 3.0);
        drv.fence();
        double us = ticksToNs(t) / 1000.0;
        t2.addRow({formatSize(gran), fmtDouble(us)});
        if (us < best_time) {
            best_time = us;
            best_gran = gran;
        }
    }
    std::printf("%s\n", t2.render().c_str());
    check("fine granularity beats coarse for a 16KB burst "
          "(more DIMMs engaged)",
          best_gran <= 4096);

    // ---- 3. Media partitions ---------------------------------------------
    std::printf("3. media partitions (random 64B reads over "
                "256MB)\n");
    TextTable t3({"partitions", "ns/line"});
    double lat2 = 0, lat12 = 0;
    for (unsigned parts : {2u, 6u, 12u}) {
        nvram::NvramConfig cfg = nvram::NvramConfig::optaneDefault();
        cfg.mediaPartitions = parts;
        EventQueue eq;
        nvram::VansSystem sys(eq, cfg);
        lens::Driver drv(sys);
        lens::PtrChaseParams pc;
        pc.regionBytes = 256ull << 20;
        pc.warmupLines = 3000;
        pc.measureLines = 2000;
        double ns = lens::ptrChase(drv, pc).nsPerLine;
        t3.addRow({std::to_string(parts), fmtDouble(ns, 1)});
        if (parts == 2)
            lat2 = ns;
        if (parts == 12)
            lat12 = ns;
    }
    std::printf("%s\n", t3.render().c_str());
    check("more partitions lower the media-regime latency",
          lat12 < lat2);

    // ---- 4. Wear threshold ---------------------------------------------
    std::printf("4. wear threshold vs migration interval\n");
    TextTable t4({"threshold", "measured interval (writes)"});
    bool linear = true;
    for (std::uint64_t thr : {1000ull, 2000ull, 4000ull}) {
        nvram::NvramConfig cfg = nvram::NvramConfig::optaneDefault();
        cfg.wearThreshold = thr;
        EventQueue eq;
        nvram::VansSystem sys(eq, cfg);
        lens::Driver drv(sys);
        lens::PolicyProberParams pp;
        pp.overwriteIterations = thr * 4;
        pp.tailRegions = {};
        auto probe = lens::runPolicyProber(drv, pp);
        t4.addRow({std::to_string(thr),
                   fmtDouble(probe.tailIntervalWrites, 0)});
        if (std::abs(probe.tailIntervalWrites -
                     static_cast<double>(thr)) >
            0.15 * static_cast<double>(thr))
            linear = false;
    }
    std::printf("%s\n", t4.render().c_str());
    check("migration interval tracks the threshold linearly",
          linear);

    return finish();
}
