/**
 * @file
 * Reproduces Fig 1: the PMEP-vs-Optane performance discrepancy.
 *
 *  (a) Single-thread bandwidth for load / store / store+clwb /
 *      store-nt on PMEP(6 DIMM emulation) and VANS(6 DIMM). The
 *      paper's claim: PMEP models load and store bandwidth *above*
 *      its NT-store bandwidth, while on real Optane NT stores beat
 *      the cached-store paths.
 *  (b) Pointer-chasing read latency vs region size: PMEP is flat,
 *      Optane/VANS shows the three buffer segments.
 */

#include "baselines/dram_system.hh"
#include "bench/bench_util.hh"
#include "lens/driver.hh"
#include "lens/microbench.hh"
#include "nvram/vans_system.hh"

using namespace vans;
using namespace vans::bench;

namespace
{

struct BwRow
{
    double load, store, storeClwb, storeNt;
};

/**
 * Single-thread bandwidth of the four access kinds. "store" pays a
 * write-allocate RFO read per line plus an eventual writeback (the
 * cached-store path); "store+clwb" forces the writeback immediately
 * (in order); "store-nt" writes without any read traffic.
 */
BwRow
measureBandwidth(MemorySystem &mem)
{
    lens::Driver drv(mem);
    const std::uint64_t span = 4 << 20;
    std::vector<Addr> seq;
    for (Addr a = 0; a < span; a += 64)
        seq.push_back(a);
    auto gbps = [&](Tick t) {
        return static_cast<double>(seq.size()) * 64 /
               (ticksToNs(t) * 1e-9) / 1e9;
    };

    BwRow row;
    row.load = gbps(drv.streamReads(seq, 24));

    // store: RFO read stream + deferred writebacks (reads and
    // writes interleave on the bus).
    {
        Tick start = drv.now();
        std::size_t batch = 64;
        for (std::size_t i = 0; i < seq.size(); i += batch) {
            std::vector<Addr> rfo(seq.begin() + i,
                                  seq.begin() +
                                      std::min(i + batch, seq.size()));
            drv.streamReads(rfo, 24);
            // Writebacks are cached-store evictions (MemOp::Write),
            // not NT stores.
            drv.streamOps(rfo, MemOp::Write, 16, nsToTicks(3.0));
        }
        drv.fence();
        row.store = static_cast<double>(seq.size()) * 64 /
                    (ticksToNs(drv.now() - start) * 1e-9) / 1e9;
    }

    // store+clwb: RFO + immediate in-order writeback per line.
    {
        Tick start = drv.now();
        std::size_t batch = 16;
        for (std::size_t i = 0; i < seq.size(); i += batch) {
            std::vector<Addr> lines(
                seq.begin() + i,
                seq.begin() + std::min(i + batch, seq.size()));
            drv.streamReads(lines, 24);
            drv.streamOps(lines, MemOp::Clwb, 16, nsToTicks(3.0));
            drv.fence();
        }
        row.storeClwb = static_cast<double>(seq.size()) * 64 /
                        (ticksToNs(drv.now() - start) * 1e-9) / 1e9;
    }

    row.storeNt = gbps(drv.streamWrites(seq, 16, 3.0));
    return row;
}

Curve
chaseCurve(MemorySystem &mem, const char *label,
           const std::vector<std::uint64_t> &regions)
{
    lens::Driver drv(mem);
    Curve c(label);
    for (std::uint64_t region : regions) {
        lens::PtrChaseParams pc;
        pc.regionBytes = region;
        pc.warmupLines = 10000;
        pc.measureLines = 2500;
        pc.seed = region;
        c.add(static_cast<double>(region),
              lens::ptrChase(drv, pc).nsPerLine);
    }
    return c;
}

} // namespace

int
main()
{
    banner("Figure 1",
           "PMEP emulation vs Optane-DIMM (VANS) discrepancy");

    // ---- (a) bandwidth -------------------------------------------
    EventQueue eq_pmep;
    baselines::PmepSystem pmep(eq_pmep, 16ull << 30, "pmep-6dimm");
    auto pmep_bw = measureBandwidth(pmep);

    nvram::NvramConfig six = nvram::NvramConfig::optaneDefault();
    six.numDimms = 6;
    six.interleaved = true;
    EventQueue eq_vans;
    nvram::VansSystem vans6(eq_vans, six, "vans-6dimm");
    auto vans_bw = measureBandwidth(vans6);

    std::printf("\n(a) single-thread bandwidth, GB/s\n");
    TextTable t({"system", "load", "store", "store+clwb",
                 "store-nt"});
    t.addRow({"PMEP(6DIMM)", fmtDouble(pmep_bw.load),
              fmtDouble(pmep_bw.store), fmtDouble(pmep_bw.storeClwb),
              fmtDouble(pmep_bw.storeNt)});
    t.addRow({"VANS(6DIMM)", fmtDouble(vans_bw.load),
              fmtDouble(vans_bw.store), fmtDouble(vans_bw.storeClwb),
              fmtDouble(vans_bw.storeNt)});
    std::printf("%s\n", t.render().c_str());

    check("PMEP: load bandwidth >= its NT-store bandwidth",
          pmep_bw.load >= pmep_bw.storeNt);
    check("PMEP: store bandwidth >= its NT-store bandwidth "
          "(the emulator's inversion)",
          pmep_bw.store >= pmep_bw.storeNt * 0.95);
    check("VANS: NT stores beat cached stores (real-device order)",
          vans_bw.storeNt > vans_bw.store);
    check("VANS: NT stores beat store+clwb",
          vans_bw.storeNt > vans_bw.storeClwb);
    check("VANS: load bandwidth highest",
          vans_bw.load > vans_bw.storeNt);

    // ---- (b) pointer-chasing latency ------------------------------
    auto regions = logSweep(64, 256ull << 20, 2);
    EventQueue eq_p2;
    baselines::PmepSystem pmep1(eq_p2, 16ull << 30, "pmep-1dimm");
    auto pmep_curve = chaseCurve(pmep1, "PMEP", regions);

    EventQueue eq_v2;
    nvram::VansSystem vans1(eq_v2,
                            nvram::NvramConfig::optaneDefault(),
                            "vans-1dimm");
    auto vans_curve = chaseCurve(vans1, "VANS", regions);
    auto ref = optaneLoadReference(regions);

    std::printf("(b) pointer-chasing read latency per CL (ns)\n");
    printCurves({pmep_curve, vans_curve, ref}, "region");

    check("PMEP latency curve is flat (no buffer inflections)",
          pmep_curve.findInflections(0.22).empty());
    auto infl = vans_curve.findInflections(0.22);
    check("VANS latency curve has >= 2 inflections (buffer effects)",
          infl.size() >= 2);
    check("VANS first inflection at 16KB (RMW buffer)",
          !infl.empty() && infl[0] == 16384.0);
    check("VANS matches Optane reference shape (accuracy > 75%)",
          vans_curve.accuracyAgainst(ref) > 0.75);

    return finish();
}
