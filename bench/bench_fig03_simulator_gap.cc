/**
 * @file
 * Reproduces Fig 3: conventional memory simulators cannot match
 * Optane DIMM behaviour.
 *
 *  (a) Average accuracy of DRAMSim2-style (DDR3, FCFS),
 *      Ramulator-DDR4 and Ramulator-PCM models against the Optane
 *      reference on four metrics: load/store latency and load/store
 *      bandwidth across access-region sizes. VANS is shown alongside
 *      (its Fig 9e validation run).
 *  (b) Ramulator-PCM vs VANS pointer-chasing read latency curve.
 */

#include <memory>

#include "baselines/dram_system.hh"
#include "bench/bench_util.hh"
#include "lens/driver.hh"
#include "lens/microbench.hh"
#include "nvram/vans_system.hh"

using namespace vans;
using namespace vans::bench;

namespace
{

struct Metrics
{
    Curve latLd{"lat-ld"};
    Curve latSt{"lat-st"};
    Curve bwLd{"bw-ld"};
    Curve bwSt{"bw-st"};
};

Metrics
measure(MemorySystem &mem, const std::vector<std::uint64_t> &regions)
{
    lens::Driver drv(mem);
    Metrics m;
    for (std::uint64_t region : regions) {
        lens::PtrChaseParams pc;
        pc.regionBytes = region;
        pc.warmupLines = 8000;
        pc.measureLines = 2500;
        pc.seed = region;
        m.latLd.add(static_cast<double>(region),
                    lens::ptrChase(drv, pc).nsPerLine);
        pc.writeMode = true;
        m.latSt.add(static_cast<double>(region),
                    lens::ptrChase(drv, pc).nsPerLine);
        drv.fence();
        // Bandwidth: one overlapped pass over the region (short
        // bursts are latency-bound; large spans reach the sustained
        // rate).
        std::vector<Addr> addrs;
        for (Addr a = 0; a < region; a += 64)
            addrs.push_back(a);
        double rd_gbps =
            static_cast<double>(addrs.size()) * 64 /
            (ticksToNs(drv.streamReads(addrs, 10)) * 1e-9) / 1e9;
        double wr_gbps =
            static_cast<double>(addrs.size()) * 64 /
            (ticksToNs(drv.streamWrites(addrs, 16, 3.0)) * 1e-9) /
            1e9;
        drv.fence();
        m.bwLd.add(static_cast<double>(region), rd_gbps);
        m.bwSt.add(static_cast<double>(region), wr_gbps);
    }
    return m;
}

/** The Optane bandwidth references for a single-pass sweep over one
 *  non-interleaved DIMM (approximate): short bursts are latency-
 *  bound, sustained sequential reads ~2.4 GB/s and NT stores
 *  ~2 GB/s single-thread (Izraelevitz et al.'s measurements). */
Curve
bwLdReference(const std::vector<std::uint64_t> &regions)
{
    Curve c("optane-bw-ld(ref)");
    for (auto r : regions) {
        // Short bursts run at the MLP-limited rate (~10 lines in
        // flight against the ~175ns round trip), long spans settle
        // at the sustained single-thread sequential rate.
        double y = r <= (16u << 10) ? 3.4
                   : r <= (256u << 10) ? 2.8
                                       : 2.4;
        c.add(static_cast<double>(r), y);
    }
    return c;
}

Curve
bwStReference(const std::vector<std::uint64_t> &regions)
{
    Curve c("optane-bw-st(ref)");
    for (auto r : regions) {
        double y = r <= (16u << 10) ? 1.6 : 2.0;
        c.add(static_cast<double>(r), y);
    }
    return c;
}

double
avgAccuracy(const Metrics &m, const std::vector<std::uint64_t> &rs)
{
    double a = m.latLd.accuracyAgainst(optaneLoadReference(rs)) +
               m.latSt.accuracyAgainst(optaneStoreReference(rs)) +
               m.bwLd.accuracyAgainst(bwLdReference(rs)) +
               m.bwSt.accuracyAgainst(bwStReference(rs));
    return a / 4.0;
}

} // namespace

int
main()
{
    banner("Figure 3",
           "conventional simulators vs Optane reference accuracy");

    auto regions = logSweep(4096, 64ull << 20, 4);

    struct Row
    {
        std::string name;
        double acc;
        Metrics metrics;
    };
    std::vector<Row> rows;

    {
        EventQueue eq;
        baselines::DramMainMemory m(
            eq, baselines::DramMainMemory::ddr3Params(),
            "dramsim2-ddr3");
        rows.push_back({"DRAMSim2(DDR3)", 0, measure(m, regions)});
    }
    {
        EventQueue eq;
        baselines::DramMainMemory m(
            eq, baselines::DramMainMemory::ddr4Params(),
            "ramulator-ddr4");
        rows.push_back({"Ramulator(DDR4)", 0, measure(m, regions)});
    }
    {
        EventQueue eq;
        baselines::PcmSystem m(eq);
        rows.push_back({"Ramulator(PCM)", 0, measure(m, regions)});
    }
    {
        EventQueue eq;
        nvram::VansSystem m(eq, nvram::NvramConfig::optaneDefault());
        rows.push_back({"VANS", 0, measure(m, regions)});
    }
    for (auto &r : rows)
        r.acc = avgAccuracy(r.metrics, regions);

    std::printf("\n(a) average accuracy wrt Optane reference\n");
    TextTable t({"simulator", "lat-ld", "lat-st", "bw-ld", "bw-st",
                 "average"});
    for (auto &r : rows) {
        t.addRow({r.name,
                  fmtDouble(r.metrics.latLd.accuracyAgainst(
                      optaneLoadReference(regions))),
                  fmtDouble(r.metrics.latSt.accuracyAgainst(
                      optaneStoreReference(regions))),
                  fmtDouble(r.metrics.bwLd.accuracyAgainst(
                      bwLdReference(regions))),
                  fmtDouble(r.metrics.bwSt.accuracyAgainst(
                      bwStReference(regions))),
                  fmtDouble(r.acc)});
    }
    std::printf("%s\n", t.render().c_str());

    check("every conventional simulator lands below 80% average",
          rows[0].acc < 0.8 && rows[1].acc < 0.8 && rows[2].acc < 0.8);
    check("VANS beats every conventional simulator",
          rows[3].acc > rows[0].acc && rows[3].acc > rows[1].acc &&
              rows[3].acc > rows[2].acc);
    check("VANS average accuracy above 80% (paper: 86.5%)",
          rows[3].acc > 0.80);

    // ---- (b) PCM vs VANS pointer chasing -------------------------
    std::printf("(b) pointer-chasing read latency per CL (ns)\n");
    printCurves({rows[2].metrics.latLd, rows[3].metrics.latLd,
                 optaneLoadReference(regions)},
                "region");
    check("Ramulator-PCM shows at most the DRAM row-buffer knee "
          "(no buffer hierarchy)",
          rows[2].metrics.latLd.findInflections(0.22).size() <= 1);
    check("VANS read latency shows the buffer segments",
          !rows[3].metrics.latLd.findInflections(0.22).empty());

    return finish();
}
