/**
 * @file
 * Reproduces Fig 5: the LENS buffer prober on the (simulated) Optane
 * DIMM.
 *
 *  (a) Load/store latency per CL vs region, 64B PC-Block: read
 *      inflections at 16KB (RMW buffer) and 16MB (AIT buffer); write
 *      inflections at 512B (WPQ) and the 4KB-class LSQ.
 *  (b) The same with 256B PC-Blocks (per-line cost drops).
 *  (c) Read-after-write vs the R+W sum: RaW is more expensive below
 *      the LSQ capacity and converges at/above it; no fast-forward
 *      speedup at the AIT working set (inclusive hierarchy).
 *  (d) L2 TLB MPKI stays flat across the 16KB/16MB boundaries
 *      (rules the TLB out as the cause).
 */

#include "bench/bench_util.hh"
#include "cache/tlb.hh"
#include "common/sweep.hh"
#include "lens/microbench.hh"
#include "lens/probers.hh"
#include "nvram/vans_system.hh"

using namespace vans;
using namespace vans::bench;

int
main()
{
    banner("Figure 5", "LENS buffer prober on VANS");

    // Sweep points fan out across host cores (VANS_THREADS=1 forces
    // the serial reference execution; outputs are identical).
    SystemFactory factory = [](EventQueue &eq) {
        return std::make_unique<nvram::VansSystem>(
            eq, nvram::NvramConfig::optaneDefault());
    };
    SweepRunner sweep;

    lens::BufferProberParams bp;
    bp.maxRegion = 128ull << 20;
    bp.warmupLines = 9000;
    bp.measureLines = 3000;
    auto probe = lens::runBufferProber(factory, bp, sweep);

    std::printf("\n(a) 64B PC-Block latency per CL (ns)\n");
    std::vector<std::uint64_t> xs;
    for (const auto &p : probe.loadCurve.points())
        xs.push_back(static_cast<std::uint64_t>(p.x));
    printCurves({probe.loadCurve, probe.storeCurve,
                 optaneLoadReference(xs)},
                "region");

    check("read inflections detected at 16K and 16M",
          probe.readBufferCapacities.size() >= 2 &&
              probe.readBufferCapacities[0] == (16u << 10) &&
              probe.readBufferCapacities[1] == (16u << 20));
    check("write inflections at 512B and the 4-8KB LSQ class",
          probe.writeQueueCapacities.size() >= 2 &&
              probe.writeQueueCapacities[0] == 512 &&
              probe.writeQueueCapacities[1] >= (4u << 10) &&
              probe.writeQueueCapacities[1] <= (8u << 10));
    check("load curve matches the Optane reference shape (>75%)",
          probe.loadCurve.accuracyAgainst(
              optaneLoadReference(xs)) > 0.75);

    std::printf("(b) 256B PC-Block latency per CL (ns)\n");
    printCurves({probe.load256Curve, probe.store256Curve}, "region");
    check("256B blocks cost less per line than 64B blocks "
          "(amortized fills)",
          probe.load256Curve.valueAt(64 << 20) <
              probe.loadCurve.valueAt(64 << 20));

    std::printf("(c) read-after-write roundtrip vs R+W (ns/CL)\n");
    printCurves({probe.rawCurve, probe.rwSumCurve}, "region");
    double raw_small = probe.rawCurve.valueAt(256);
    double sum_small = probe.rwSumCurve.valueAt(256);
    double raw_big = probe.rawCurve.valueAt(16 << 10);
    double sum_big = probe.rwSumCurve.valueAt(16 << 10);
    check("RaW costs more than R+W below the LSQ capacity",
          raw_small > 1.15 * sum_small);
    check("RaW converges toward R+W at/above the LSQ capacity",
          raw_big < raw_small &&
              (raw_big - sum_big) < 0.6 * (raw_small - sum_small));
    check("no fast-forward speedup at the AIT working set "
          "(two-level inclusive hierarchy)",
          probe.inclusiveHierarchy);

    // ---- (d) TLB MPKI across the same sweep ------------------------
    std::printf("(d) L2 TLB walks per kilo-access across regions\n");
    Curve tlb_curve("tlb-walks/K");
    auto tlb_regions = logSweep(4096, 128ull << 20, 4);
    auto tlb_rates = sweep.map<double>(
        tlb_regions.size(), [&](std::size_t i) {
            std::uint64_t region = tlb_regions[i];
            cache::Tlb tlb(cache::TlbParams{});
            auto order = lens::chaseOrder(0, region, 64, 6000, region);
            // Warm, then measure.
            for (Addr a : order)
                tlb.access(a);
            std::uint64_t walks0 = tlb.stats().scalarValue("walks");
            for (Addr a : order)
                tlb.access(a);
            std::uint64_t walks =
                tlb.stats().scalarValue("walks") - walks0;
            return 1000.0 * static_cast<double>(walks) /
                   static_cast<double>(order.size());
        });
    for (std::size_t i = 0; i < tlb_regions.size(); ++i)
        tlb_curve.add(static_cast<double>(tlb_regions[i]),
                      tlb_rates[i]);
    printCurves({tlb_curve}, "region");
    check("TLB walk rate does not jump at the 16KB boundary",
          std::abs(tlb_curve.valueAt(32 << 10) -
                   tlb_curve.valueAt(8 << 10)) < 100);
    check("the walk-rate transition sits at the 6MB STLB reach and "
          "is already most of the way up by 16MB -- the 16MB->64MB "
          "latency jump is not a TLB artifact",
          tlb_curve.valueAt(16 << 20) >
              0.6 * tlb_curve.valueAt(64 << 20));

    // Under VANS_TRACE=1 this also emits fig05.trace.json /
    // fig05.metrics.json (no-op and no measurement perturbation
    // otherwise).
    writeObservabilityArtifacts("fig05");
    return finish();
}
