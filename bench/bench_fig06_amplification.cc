/**
 * @file
 * Reproduces Fig 6: read/write amplification scores vs PC-Block
 * size.
 *
 * The amplification score is the paper's counter-free estimate:
 * latency ratio of a buffer-overflow run to a buffer-fit run at the
 * same block size. It falls toward 1 as the block size approaches
 * the buffer's entry size:
 *  (a) read: RMW-buffer curve knees at 256B, AIT-buffer curve at
 *      4KB;
 *  (b) write: WPQ curve knees at its 512B flush granule, LSQ curve
 *      at the 256B combining granule.
 */

#include "bench/bench_util.hh"
#include "common/sweep.hh"
#include "lens/probers.hh"
#include "nvram/vans_system.hh"

using namespace vans;
using namespace vans::bench;

int
main()
{
    banner("Figure 6", "read/write amplification scores (LENS)");

    SystemFactory factory = [](EventQueue &eq) {
        return std::make_unique<nvram::VansSystem>(
            eq, nvram::NvramConfig::optaneDefault());
    };
    SweepRunner sweep;

    lens::BufferProberParams bp;
    bp.maxRegion = 64ull << 20;
    bp.warmupLines = 8000;
    bp.measureLines = 2500;
    auto probe = lens::runBufferProber(factory, bp, sweep);

    std::printf("\n(a) read amplification scores\n");
    printCurves({probe.readAmpL1, probe.readAmpL2}, "PC-Block");
    std::printf("detected entry sizes: RMW=%s AIT=%s\n\n",
                formatSize(probe.readEntrySizeL1).c_str(),
                formatSize(probe.readEntrySizeL2).c_str());

    check("RMW read-amp score declines with block size",
          probe.readAmpL1.points().front().y >
              probe.readAmpL1.points().back().y);
    check("RMW entry size detected in the 128-512B class",
          probe.readEntrySizeL1 >= 128 &&
              probe.readEntrySizeL1 <= 512);
    check("AIT read-amp score declines with block size",
          probe.readAmpL2.points().front().y >
              probe.readAmpL2.points().back().y);
    check("AIT entry size detected in the 2-4KB class",
          probe.readEntrySizeL2 >= 2048 &&
              probe.readEntrySizeL2 <= 4096);
    check("small blocks amplify reads at the AIT (score > 1.5)",
          probe.readAmpL2.points().front().y > 1.5);

    std::printf("(b) write amplification scores\n");
    printCurves({probe.writeAmpWpq, probe.writeAmpLsq}, "PC-Block");

    check("WPQ write-amp score declines toward its flush granule",
          !probe.writeAmpWpq.empty() &&
              probe.writeAmpWpq.points().front().y >
                  probe.writeAmpWpq.valueAt(512));
    check("LSQ write-amp score reaches ~1 at the 256B combining "
          "granule",
          !probe.writeAmpLsq.empty() &&
              probe.writeAmpLsq.valueAt(256) <
                  probe.writeAmpLsq.points().front().y * 1.05);

    return finish();
}
