/**
 * @file
 * Reproduces Fig 7: the LENS policy prober.
 *
 *  (a) Sequential-write execution time, interleaved (6 DIMM) vs
 *      non-interleaved: identical up to 4KB, diverging beyond -- the
 *      4KB multi-DIMM interleave granularity.
 *  (b) 256B overwrite tail latency: a >10-100x spike every
 *      ~14,000 iterations (wear-leveling migration).
 *  (c) The tail ratio collapses once the overwrite region spans more
 *      than one 64KB wear block.
 *  (d) TLB miss rate stays flat during the overwrite (rules the TLB
 *      out).
 */

#include <fstream>

#include "bench/bench_util.hh"
#include "cache/tlb.hh"
#include "common/config.hh"
#include "common/sweep.hh"
#include "lens/probers.hh"
#include "nvram/vans_system.hh"

using namespace vans;
using namespace vans::bench;

namespace
{

/**
 * Load the real 6-DIMM interleaved socket description so the
 * interleave detector runs against the shipped topology file, not a
 * hand-edited default. Falls back across the usual run directories
 * (repo root, build/).
 */
nvram::NvramConfig
load6DimmConfig()
{
    const char *paths[] = {"configs/optane_6dimm_interleaved.cfg",
                           "../configs/optane_6dimm_interleaved.cfg"};
    for (const char *p : paths) {
        std::ifstream probe(p);
        if (probe.good())
            return nvram::NvramConfig::fromConfig(Config::fromFile(p));
    }
    // Run from an unexpected cwd: reconstruct the same socket.
    nvram::NvramConfig inter = nvram::NvramConfig::optaneDefault();
    inter.numDimms = 6;
    inter.interleaved = true;
    return inter;
}

} // namespace

int
main()
{
    banner("Figure 7", "LENS policy prober on VANS");

    // ---- (a) interleaving ------------------------------------------
    SweepRunner sweep;
    SystemFactory factory_i = [](EventQueue &eq) {
        return std::make_unique<nvram::VansSystem>(
            eq, load6DimmConfig(), "vans-6dimm");
    };
    SystemFactory factory_s = [](EventQueue &eq) {
        return std::make_unique<nvram::VansSystem>(
            eq, nvram::NvramConfig::optaneDefault(), "vans-1dimm");
    };

    lens::PolicyProbe il;
    lens::runInterleaveProbe(factory_i, factory_s, il, 16384, sweep);

    std::printf("\n(a) sequential write execution time (us)\n");
    // Sample every 4th point to keep the table readable.
    Curve ci("interleaved"), cs("non-interleaved");
    for (std::size_t i = 0; i < il.seqWriteInterleaved.size(); i += 4) {
        ci.add(il.seqWriteInterleaved[i].x,
               il.seqWriteInterleaved[i].y);
        cs.add(il.seqWriteSingle[i].x, il.seqWriteSingle[i].y);
    }
    printCurves({ci, cs}, "bytes");
    std::printf("detected interleave granularity: %s\n\n",
                formatSize(il.interleaveGranularity).c_str());
    check("first 4KB identical (single DIMM either way)",
          il.seqWriteSingle.valueAt(4096) <
              il.seqWriteInterleaved.valueAt(4096) * 1.2);
    check("interleaved wins beyond 4KB",
          il.seqWriteSingle.valueAt(12288) >
              il.seqWriteInterleaved.valueAt(12288) * 1.2);
    check("detected granularity = 4KB",
          il.interleaveGranularity == 4096);

    // ---- (b) overwrite tail -----------------------------------------
    // A reduced wear threshold keeps the bench quick; the interval
    // scales linearly (ablation bench sweeps it).
    SystemFactory factory_w = [](EventQueue &eq) {
        nvram::NvramConfig cfg = nvram::NvramConfig::optaneDefault();
        cfg.wearThreshold = 3500; // 1/4 of the characterized 14000.
        return std::make_unique<nvram::VansSystem>(eq, cfg);
    };

    lens::PolicyProberParams pp;
    pp.overwriteIterations = 16000;
    pp.tailRegions = {256, 4096, 32768, 131072, 524288};
    pp.tailSweepBytes = 6ull << 20;
    auto probe = lens::runPolicyProber(factory_w, pp, sweep);

    std::printf("(b) 256B overwrite: iteration latency series\n");
    std::printf("  normal write: %.0f ns, tail: %.1f us, interval: "
                "%.0f writes\n",
                probe.normalWriteNs, probe.tailLatencyUs,
                probe.tailIntervalWrites);
    // Print a down-sampled series around the first tail.
    std::size_t first_tail = 0;
    for (std::size_t i = 0; i < probe.overwriteIterationNs.size();
         ++i) {
        if (probe.overwriteIterationNs[i] >
            8 * probe.normalWriteNs) {
            first_tail = i;
            break;
        }
    }
    for (std::size_t i = first_tail > 3 ? first_tail - 3 : 0;
         i < first_tail + 3 && i < probe.overwriteIterationNs.size();
         ++i) {
        std::printf("  iter %6zu: %10.0f ns%s\n", i,
                    probe.overwriteIterationNs[i],
                    probe.overwriteIterationNs[i] >
                            8 * probe.normalWriteNs
                        ? "   <-- migration stall"
                        : "");
    }
    std::printf("\n");

    check("tail latency >10x the normal write",
          probe.tailLatencyUs * 1000 > 10 * probe.normalWriteNs);
    check("tail interval tracks the wear threshold (~3500 writes)",
          probe.tailIntervalWrites > 3000 &&
              probe.tailIntervalWrites < 4000);
    check("tail magnitude ~= the 50us migration",
          probe.tailLatencyUs > 25 && probe.tailLatencyUs < 75);

    // ---- (c) tail ratio vs region size ------------------------------
    std::printf("(c) long-tail ratio vs overwrite region size\n");
    printCurves({probe.tailRatioCurve}, "region");
    check("ratio collapses once the region spans >1 wear block",
          probe.tailRatioCurve.points().back().y <
              0.35 * probe.tailRatioCurve.points().front().y);
    check("LENS identifies a <=128KB wear block",
          probe.wearBlockSize > 0 &&
              probe.wearBlockSize <= (128u << 10));

    // ---- (d) TLB stability -------------------------------------------
    cache::Tlb tlb(cache::TlbParams{});
    Curve tlb_curve("walks-per-1000-writes");
    for (int win = 0; win < 8; ++win) {
        std::uint64_t w0 = tlb.stats().scalarValue("walks");
        for (int i = 0; i < 1000; ++i)
            tlb.access(static_cast<Addr>(i % 4) * 64);
        tlb_curve.add(win, static_cast<double>(
                               tlb.stats().scalarValue("walks") - w0));
    }
    std::printf("(d) TLB walks per 1000 overwrite accesses, by "
                "window\n");
    check("TLB miss rate flat during overwrite (no walk spikes)",
          tlb_curve.maxY() - tlb_curve.minY() <= 1.0);

    return finish();
}
