/**
 * @file
 * Reproduces Fig 9: VANS validation against the Optane DIMM
 * reference.
 *
 *  (a) Pointer-chasing load/store latency, 1 non-interleaved DIMM,
 *      vs the digitized Optane reference curve.
 *  (b) Same on 6 interleaved DIMMs (buffering effects postponed).
 *  (c) RMW-buffer read amplification from VANS's own counters vs
 *      the analytic expectation (substitute for Intel's in-house
 *      counter tool).
 *  (d) 256B-overwrite tail latency: interval and magnitude.
 *  (e) Accuracy summary across the four metrics.
 */

#include "bench/bench_util.hh"
#include "common/config.hh"
#include "common/sweep.hh"
#include "lens/microbench.hh"
#include "lens/probers.hh"
#include "nvram/vans_system.hh"

using namespace vans;
using namespace vans::bench;

namespace
{

std::pair<Curve, Curve>
latencyCurves(const SystemFactory &factory, const SweepRunner &sweep,
              const std::vector<std::uint64_t> &regions,
              const char *suffix)
{
    struct Pt
    {
        double ld = 0;
        double st = 0;
    };
    // Warm once (read coverage of the full span), fork every region
    // point from the captured image.
    std::uint64_t span = regions.back();
    auto pts = sweep.mapFromWarm<Pt>(
        factory,
        [span](MemorySystem &sys) { warmSpan(sys, 0, span); },
        regions.size(), [&](MemorySystem &sys, std::size_t i) {
            lens::Driver drv(sys);
            lens::PtrChaseParams pc;
            pc.regionBytes = regions[i];
            pc.warmupLines = 9000;
            pc.measureLines = 2500;
            pc.seed = regions[i];
            pc.coverageWarm = true;
            Pt out;
            out.ld = lens::ptrChase(drv, pc).nsPerLine;
            pc.writeMode = true;
            out.st = lens::ptrChase(drv, pc).nsPerLine;
            drv.fence();
            return out;
        });
    Curve ld(std::string("VANS-ld") + suffix);
    Curve st(std::string("VANS-st") + suffix);
    for (std::size_t i = 0; i < regions.size(); ++i) {
        ld.add(static_cast<double>(regions[i]), pts[i].ld);
        st.add(static_cast<double>(regions[i]), pts[i].st);
    }
    return {ld, st};
}

} // namespace

int
main(int argc, char **argv)
{
    banner("Figure 9", "VANS validation with microbenchmarks");

    // Optional config-file path: every section builds its worlds
    // from this base, so `bench_fig09 configs/optane_memory_mode.cfg`
    // reruns the whole validation in Memory mode (2LM) from config
    // alone. App Direct remains the default.
    nvram::NvramConfig base = nvram::NvramConfig::optaneDefault();
    if (argc > 1) {
        base = nvram::NvramConfig::fromConfig(
            Config::fromFile(argv[1]));
        std::printf("config: %s (%s mode)\n\n", argv[1],
                    base.memoryMode() ? "memory" : "app_direct");
    }
    const bool mm = base.memoryMode();

    auto regions = logSweep(64, 128ull << 20, 2);
    SweepRunner sweep;

    // ---- (a) 1 DIMM --------------------------------------------------
    SystemFactory one = [base](EventQueue &eq) {
        return std::make_unique<nvram::VansSystem>(eq, base);
    };
    auto [ld1, st1] = latencyCurves(one, sweep, regions, "");
    auto ld_ref = optaneLoadReference(regions);
    auto st_ref = optaneStoreReference(regions);

    std::printf("\n(a) non-interleaved DIMM, latency per CL (ns)\n");
    printCurves({ld1, ld_ref, st1, st_ref}, "region");

    double acc_ld = ld1.accuracyAgainst(ld_ref);
    double acc_st = st1.accuracyAgainst(st_ref);
    if (!mm) {
        check("load curve accuracy > 80% vs reference",
              acc_ld > 0.80);
        check("store curve within 2x of reference everywhere "
              "(small sizes dominated by core-side costs, paper "
              "section IV-C)",
              acc_st > 0.35);
    } else {
        // The Optane reference curves characterize App Direct;
        // Memory mode is validated against 2LM shape expectations
        // instead: near-memory hits beat the App Direct reference,
        // and capacity misses fall back toward NVM latency.
        check("cached regions complete below the App Direct "
              "reference (memory mode)",
              ld1.valueAt(64 << 10) < ld_ref.valueAt(64 << 10));
        check("regions beyond the DRAM cache fall back toward "
              "NVM latency",
              ld1.valueAt(128ull << 20) >
                  1.5 * ld1.valueAt(64 << 10));
    }

    // ---- (b) 6 interleaved DIMMs --------------------------------------
    SystemFactory six = [base](EventQueue &eq) {
        nvram::NvramConfig cfg = base;
        cfg.numDimms = 6;
        cfg.interleaved = true;
        return std::make_unique<nvram::VansSystem>(eq, cfg, "vans6");
    };
    auto [ld6, st6] = latencyCurves(six, sweep, regions, "-6d");

    std::printf("(b) 6 interleaved DIMMs, latency per CL (ns)\n");
    printCurves({ld6, st6}, "region");
    if (!mm) {
        check("interleaving postpones the read buffering effect",
              ld6.valueAt(64 << 10) < ld1.valueAt(64 << 10));
        check("interleaving reduces large-region store latency",
              st6.valueAt(1 << 20) < st1.valueAt(1 << 20));
    } else {
        // Six channels bring six DRAM caches: the 128MB region that
        // thrashes one 64MB cache fits the interleaved aggregate.
        check("interleaving multiplies near-memory capacity",
              ld6.valueAt(128ull << 20) < ld1.valueAt(128ull << 20));
    }

    // ---- (c) RMW read amplification -----------------------------------
    std::printf("(c) RMW-buffer read amplification "
                "(VANS counters vs analytic)\n");
    Curve amp_sim("vans-counter");
    Curve amp_ref("analytic");
    const std::vector<std::uint32_t> amp_blocks = {64, 128, 256,
                                                   1024, 4096};
    // Deliberately cold (no warm fork): this sweep reads the RMW
    // buffer's hit/miss counters, and a restored snapshot carries the
    // warm phase's counts with it -- the ratio must only see the
    // point's own accesses.
    auto amp_vals = sweep.map<double>(
        amp_blocks.size(), [&](std::size_t i) {
            std::uint32_t block = amp_blocks[i];
            EventQueue eq;
            nvram::VansSystem sys(eq, base);
            lens::Driver drv(sys);
            lens::PtrChaseParams pc;
            pc.regionBytes = 1 << 20; // Overflows RMW, fits AIT.
            pc.blockBytes = block;
            pc.mlp = 8;
            pc.warmupLines = 4000;
            pc.measureLines = 4000;
            lens::ptrChase(drv, pc);
            auto &rmw = sys.dimm(0).rmw().stats();
            double misses =
                static_cast<double>(rmw.scalarValue("read_misses"));
            double hits =
                static_cast<double>(rmw.scalarValue("read_hits"));
            // Amplification: bytes fetched (256B per miss) per byte
            // demanded (64B per access).
            return (misses * 256.0) / ((misses + hits) * 64.0);
        });
    for (std::size_t i = 0; i < amp_blocks.size(); ++i) {
        amp_sim.add(amp_blocks[i], amp_vals[i]);
        amp_ref.add(amp_blocks[i],
                    256.0 / std::min<std::uint32_t>(amp_blocks[i],
                                                    256));
    }
    printCurves({amp_sim, amp_ref}, "PC-Block");
    check("counter amplification tracks the analytic model "
          "within 15%",
          amp_sim.accuracyAgainst(amp_ref) > 0.85);
    check("64B blocks amplify ~4x at the RMW buffer",
          amp_sim.valueAt(64) > 3.0);

    // ---- (d) overwrite tail --------------------------------------------
    SystemFactory wfac = [base](EventQueue &eq) {
        nvram::NvramConfig wcfg = base;
        wcfg.wearThreshold = 3500;
        return std::make_unique<nvram::VansSystem>(eq, wcfg);
    };
    lens::PolicyProberParams pp;
    pp.overwriteIterations = 12000;
    pp.tailRegions = {};
    auto probe = lens::runPolicyProber(wfac, pp, sweep);
    std::printf("(d) overwrite tail: %.1f us every ~%.0f writes "
                "(normal %.0f ns)\n\n",
                probe.tailLatencyUs, probe.tailIntervalWrites,
                probe.normalWriteNs);
    check("tail interval matches the planted threshold",
          std::abs(probe.tailIntervalWrites - 3500) < 350);
    check("tail magnitude matches the 50us migration within 30%",
          std::abs(probe.tailLatencyUs - 50) < 15);

    // ---- (e) summary ----------------------------------------------------
    std::printf("(e) accuracy summary\n");
    TextTable t({"metric", "accuracy"});
    t.addRow({"lat-ld", fmtDouble(acc_ld)});
    t.addRow({"lat-st", fmtDouble(acc_st)});
    t.addRow({"rmw-amp", fmtDouble(amp_sim.accuracyAgainst(amp_ref))});
    std::printf("%s\n", t.render().c_str());

    return finish();
}
