/**
 * @file
 * Reproduces Fig 10: sensitivity of the latency curves to memory
 * configuration.
 *
 *  (a) NVRAM media capacity (2/4/8/16 GB): the curves must overlap
 *      -- media capacity is hidden behind the on-DIMM buffers.
 *  (b) Number of DIMMs (1/2/4/6, interleaved): more DIMMs postpone
 *      the read buffering effect and cut store latency once the WPQ
 *      overflows.
 */

#include "bench/bench_util.hh"
#include "common/sweep.hh"
#include "lens/microbench.hh"
#include "nvram/vans_system.hh"

using namespace vans;
using namespace vans::bench;

namespace
{

std::pair<Curve, Curve>
curves(const SweepRunner &sweep, const nvram::NvramConfig &cfg,
       const std::string &label,
       const std::vector<std::uint64_t> &regions)
{
    struct Pt
    {
        double ld = 0;
        double st = 0;
    };
    SystemFactory factory = [&cfg, &label](EventQueue &eq) {
        return std::make_unique<nvram::VansSystem>(eq, cfg, label);
    };
    // Warm once per configuration, fork each region point.
    std::uint64_t span = regions.back();
    auto pts = sweep.mapFromWarm<Pt>(
        factory,
        [span](MemorySystem &sys) { warmSpan(sys, 0, span); },
        regions.size(), [&](MemorySystem &sys, std::size_t i) {
            lens::Driver drv(sys);
            lens::PtrChaseParams pc;
            pc.regionBytes = regions[i];
            pc.warmupLines = 8000;
            pc.measureLines = 2000;
            pc.seed = regions[i];
            pc.coverageWarm = true;
            Pt out;
            out.ld = lens::ptrChase(drv, pc).nsPerLine;
            pc.writeMode = true;
            out.st = lens::ptrChase(drv, pc).nsPerLine;
            drv.fence();
            return out;
        });
    Curve ld("ld-" + label);
    Curve st("st-" + label);
    for (std::size_t i = 0; i < regions.size(); ++i) {
        ld.add(static_cast<double>(regions[i]), pts[i].ld);
        st.add(static_cast<double>(regions[i]), pts[i].st);
    }
    return {ld, st};
}

} // namespace

int
main()
{
    banner("Figure 10", "sensitivity to media capacity and DIMM "
                        "count");

    auto regions = logSweep(64, 64ull << 20, 8);
    SweepRunner sweep;

    // ---- (a) media capacity ------------------------------------------
    std::printf("\n(a) DIMM media capacity sweep (load ns/CL)\n");
    std::vector<Curve> cap_curves;
    for (std::uint64_t gb : {2ull, 4ull, 8ull, 16ull}) {
        nvram::NvramConfig cfg = nvram::NvramConfig::optaneDefault();
        cfg.dimmCapacity = gb << 30;
        auto [ld, st] =
            curves(sweep, cfg, formatSize(gb << 30), regions);
        cap_curves.push_back(ld);
    }
    printCurves(cap_curves, "region");

    double worst = 0;
    for (std::size_t i = 1; i < cap_curves.size(); ++i) {
        for (std::size_t j = 0; j < cap_curves[i].size(); ++j) {
            double a = cap_curves[0][j].y;
            double b = cap_curves[i][j].y;
            worst = std::max(worst, std::abs(a - b) / a);
        }
    }
    check("media capacity does not move the latency curves (<6% "
          "deviation)",
          worst < 0.06);

    // ---- (b) DIMM count ------------------------------------------------
    std::printf("(b) interleaved DIMM-count sweep\n");
    std::vector<Curve> ld_curves, st_curves;
    for (unsigned n : {1u, 2u, 4u, 6u}) {
        nvram::NvramConfig cfg = nvram::NvramConfig::optaneDefault();
        cfg.numDimms = n;
        cfg.interleaved = n > 1;
        auto [ld, st] =
            curves(sweep, cfg, std::to_string(n) + "dimm", regions);
        ld_curves.push_back(ld);
        st_curves.push_back(st);
    }
    printCurves(ld_curves, "region");
    printCurves(st_curves, "region");

    check("more DIMMs postpone the read buffering effect "
          "(64KB region cheaper on 4 DIMMs than 1)",
          ld_curves[2].valueAt(64 << 10) <
              ld_curves[0].valueAt(64 << 10));
    check("the RMW plateau itself is unchanged (16KB region)",
          std::abs(ld_curves[2].valueAt(8 << 10) -
                   ld_curves[0].valueAt(8 << 10)) <
              0.1 * ld_curves[0].valueAt(8 << 10));
    check("store latency past the WPQ drops with more DIMMs",
          st_curves[3].valueAt(1 << 20) <
              st_curves[0].valueAt(1 << 20));

    return finish();
}
