/**
 * @file
 * Reproduces Fig 11: full-system validation on SPEC-like workloads.
 *
 * Each workload's synthetic trace runs on three memory systems
 * behind the Table V cache hierarchy and core model:
 *   - DDR4 DRAM main memory  (the Fig 11a/b DRAM runs),
 *   - VANS                    (the NVRAM system under test),
 *   - Ramulator-PCM baseline  (the competing simulator).
 * The speedup = T_dram / T_nvram per workload is compared to the
 * digitized Optane reference (Fig 11c): VANS must land closer than
 * the PCM model on average (Fig 11d).
 */

#include <memory>

#include "baselines/dram_system.hh"
#include "bench/bench_util.hh"
#include "cache/hierarchy.hh"
#include "cpu/core.hh"
#include "nvram/vans_system.hh"
#include "workloads/spec_synth.hh"

using namespace vans;
using namespace vans::bench;

namespace
{

struct RunResult
{
    double ipc;
    double llcMpki;
    Tick elapsed;
};

RunResult
runTrace(MemorySystem &mem, const workloads::SpecWorkload &w,
         std::uint64_t insts)
{
    cache::Hierarchy caches;
    cpu::CpuCore core(mem, caches);
    auto tr = workloads::generateSpecTrace(w, insts);
    trace::VectorTraceSource src(std::move(tr));
    auto st = core.run(src, insts);
    return {st.ipc, st.llcMpki, st.elapsed};
}

} // namespace

int
main()
{
    banner("Figure 11", "SPEC-like full-system validation");

    const std::uint64_t insts = 120000;

    TextTable t({"workload", "IPC-dram", "IPC-vans", "LLC-MPKI",
                 "speedup-vans", "speedup-pcm", "reference"});
    double err_vans = 0, err_pcm = 0;
    unsigned n = 0;
    double worst_ipc = 10, best_ipc = 0;

    for (const auto &w : workloads::specTable4()) {
        EventQueue eq_d;
        baselines::DramMainMemory dram(
            eq_d, baselines::DramMainMemory::ddr4Params());
        auto rd = runTrace(dram, w, insts);

        EventQueue eq_v;
        nvram::NvramConfig six = nvram::NvramConfig::optaneDefault();
        six.numDimms = 6;
        six.interleaved = true;
        nvram::VansSystem vans(eq_v, six);
        auto rv = runTrace(vans, w, insts);

        EventQueue eq_p;
        baselines::PcmSystem pcm(eq_p);
        auto rp = runTrace(pcm, w, insts);

        double sp_vans = static_cast<double>(rv.elapsed) /
                         static_cast<double>(rd.elapsed);
        double sp_pcm = static_cast<double>(rp.elapsed) /
                        static_cast<double>(rd.elapsed);
        std::string key =
            w.name + (w.suite == "2017" ? "17" : "");
        double ref = optaneSpeedupReference(
            w.suite == "2017" ? w.name + "17" : w.name);

        t.addRow({key, fmtDouble(rd.ipc), fmtDouble(rv.ipc),
                  fmtDouble(rv.llcMpki, 1), fmtDouble(sp_vans),
                  fmtDouble(sp_pcm), fmtDouble(ref)});

        err_vans += std::min(1.0, std::abs(sp_vans - ref) / ref);
        err_pcm += std::min(1.0, std::abs(sp_pcm - ref) / ref);
        ++n;
        worst_ipc = std::min(worst_ipc, rv.ipc);
        best_ipc = std::max(best_ipc, rd.ipc);
    }

    std::printf("\n(speedup = exec time on the NVRAM system / exec "
                "time on DRAM;\n reference = digitized Fig 11c "
                "Optane bars)\n\n%s\n",
                t.render().c_str());

    double acc_vans = 1.0 - err_vans / n;
    double acc_pcm = 1.0 - err_pcm / n;
    std::printf("(d) geometric-mean-style accuracy: VANS %.1f%%, "
                "Ramulator-PCM %.1f%%\n\n",
                acc_vans * 100, acc_pcm * 100);

    check("NVRAM slows every workload down (speedup >= 1)",
          worst_ipc < best_ipc);
    check("VANS tracks the Optane speedups better than the PCM "
          "model",
          acc_vans > acc_pcm);
    check("VANS speedup accuracy above 70% (paper: 87.1%)",
          acc_vans > 0.70);
    return finish();
}
