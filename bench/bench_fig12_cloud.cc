/**
 * @file
 * Reproduces Fig 12: the cloud-workload inefficiency profile.
 *
 *  (a) Redis: read operations dominate the execution overhead --
 *      the CPI of reads is several times the rest, driven by LLC
 *      and TLB misses from the pointer-chasing access pattern.
 *  (b) YCSB: writes concentrate on a handful of hot cache lines
 *      ("Top10"), which trigger disproportionately more
 *      wear-leveling activity and raise average write cost.
 */

#include <algorithm>
#include <map>

#include "bench/bench_util.hh"
#include "cache/hierarchy.hh"
#include "common/config.hh"
#include "cpu/core.hh"
#include "nvram/vans_system.hh"
#include "workloads/cloud.hh"

using namespace vans;
using namespace vans::bench;

int
main(int argc, char **argv)
{
    banner("Figure 12", "Redis and YCSB profiling on VANS");

    // Optional config-file path: both workloads run against this
    // base, so `bench_fig12 configs/optane_memory_mode.cfg` profiles
    // the cloud workloads in Memory mode (2LM) from config alone.
    nvram::NvramConfig base = nvram::NvramConfig::optaneDefault();
    if (argc > 1) {
        base = nvram::NvramConfig::fromConfig(
            Config::fromFile(argv[1]));
        std::printf("config: %s (%s mode)\n", argv[1],
                    base.memoryMode() ? "memory" : "app_direct");
    }
    const bool mm = base.memoryMode();

    // ---- (a) Redis read attribution ---------------------------------
    EventQueue eq_r;
    nvram::VansSystem sys_r(eq_r, base);
    cache::Hierarchy caches_r;
    cpu::CpuCore core_r(sys_r, caches_r);
    workloads::CloudParams rp;
    rp.operations = 6000;
    rp.footprintBytes = 512 << 20;
    auto redis = workloads::redisTrace(rp);
    trace::VectorTraceSource src_r(std::move(redis));
    auto st = core_r.run(src_r, 1u << 30);

    double read_ns_per_inst =
        st.readStallNs / std::max<double>(st.memReads, 1);
    double rest_ns_per_inst =
        st.otherNs /
        std::max<double>(st.instructions - st.memReads, 1);
    double cpi_ratio = read_ns_per_inst / rest_ns_per_inst;

    std::printf("\n(a) Redis: per-instruction cost attribution\n");
    TextTable ta({"metric", "read-ops", "rest"});
    ta.addRow({"ns/inst", fmtDouble(read_ns_per_inst, 1),
               fmtDouble(rest_ns_per_inst, 2)});
    ta.addRow({"normalized CPI", fmtDouble(cpi_ratio, 1), "1.0"});
    std::printf("%s", ta.render().c_str());
    std::printf("LLC MPKI %.1f, TLB MPKI %.1f\n\n", st.llcMpki,
                st.tlbMpki);

    check("read CPI several times the rest (paper: 8.8x)",
          cpi_ratio > 4.0);
    check("reads miss the LLC heavily (pointer chasing)",
          st.llcMpki > 5.0);
    check("reads miss the TLB heavily (random pages)",
          st.tlbMpki > 5.0);

    // ---- (b) YCSB write concentration --------------------------------
    workloads::CloudParams yp;
    yp.operations = 12000;
    yp.footprintBytes = 256 << 20;
    auto ycsb = workloads::ycsbTrace(yp);

    // Static concentration analysis of the write stream.
    std::map<Addr, std::uint64_t> writes_per_line;
    std::uint64_t total_writes = 0;
    for (const auto &i : ycsb) {
        if (i.type == trace::InstType::Store) {
            ++writes_per_line[alignDown(i.addr, 64)];
            ++total_writes;
        }
    }
    std::vector<std::uint64_t> counts;
    for (auto &kv : writes_per_line)
        counts.push_back(kv.second);
    std::sort(counts.rbegin(), counts.rend());
    std::uint64_t top10 = 0;
    for (std::size_t i = 0; i < 10 && i < counts.size(); ++i)
        top10 += counts[i];
    double top10_frac =
        static_cast<double>(top10) / static_cast<double>(total_writes);
    double top10_mean = static_cast<double>(top10) / 10.0;
    double rest_mean =
        static_cast<double>(total_writes - top10) /
        std::max<double>(static_cast<double>(counts.size()) - 10, 1);

    // Dynamic wear effect on VANS (reduced threshold for runtime).
    nvram::NvramConfig wcfg = base;
    wcfg.wearThreshold = 600;
    EventQueue eq_y;
    nvram::VansSystem sys_y(eq_y, wcfg);
    cache::Hierarchy caches_y;
    cpu::CpuCore core_y(sys_y, caches_y);
    trace::VectorTraceSource src_y(std::move(ycsb));
    core_y.run(src_y, 1u << 30);

    std::printf("(b) YCSB write concentration\n");
    TextTable tb({"metric", "Top10 lines", "rest"});
    tb.addRow({"share of writes",
               fmtDouble(top10_frac * 100, 1) + "%",
               fmtDouble((1 - top10_frac) * 100, 1) + "%"});
    tb.addRow({"writes per line (x rest)",
               fmtDouble(top10_mean / std::max(rest_mean, 1e-9), 0),
               "1"});
    std::printf("%s", tb.render().c_str());
    std::printf("wear migrations on VANS: %llu (threshold %llu)\n\n",
                static_cast<unsigned long long>(
                    sys_y.totalMigrations()),
                static_cast<unsigned long long>(wcfg.wearThreshold));

    check("Top10 lines are written >50x more than the average line "
          "(paper: >100x)",
          top10_mean / std::max(rest_mean, 1e-9) > 50);
    check("hot writes trigger wear-leveling migrations",
          sys_y.totalMigrations() >= 1);
    if (mm) {
        // YCSB persists every store (store + clwb + fence), so the
        // hot lines reach the media as write-throughs that punch
        // through the volatile DRAM cache -- which is why the wear
        // check above holds in Memory mode too: durability traffic
        // keeps its App Direct path.
        check("persist-kind writes punch through the volatile cache",
              sys_y.dcacheScalarSum("writethroughs") > 0);
    }
    return finish();
}
