/**
 * @file
 * Reproduces Fig 13(d,e): the Lazy-cache and Pre-translation case
 * studies across the six workloads (fio-write, YCSB, TPCC, HashMap,
 * Redis, LinkedList).
 *
 * Four configurations per workload: baseline, Lazy cache,
 * Pre-translation, both. Reported: speedup over baseline (13d) and
 * normalized TLB MPKI under Pre-translation (13e).
 */

#include "bench/bench_util.hh"
#include "cache/hierarchy.hh"
#include "cpu/core.hh"
#include "nvram/vans_system.hh"
#include "opt/lazy_cache.hh"
#include "opt/pretranslation.hh"
#include "workloads/cloud.hh"

using namespace vans;
using namespace vans::bench;

namespace
{

struct RunOut
{
    Tick elapsed;
    double tlbMpki;
};

RunOut
run(const std::string &wl, bool lazy_on, bool pretrans_on)
{
    nvram::NvramConfig cfg = nvram::NvramConfig::optaneDefault();
    // Reduced threshold keeps wear-leveling active within bench
    // runtimes (the effect scales with the threshold).
    cfg.wearThreshold = 800;
    EventQueue eq;
    nvram::VansSystem sys(eq, cfg);
    cache::Hierarchy caches;
    cpu::CpuCore core(sys, caches);

    opt::LazyCache lazy;
    if (lazy_on)
        lazy.attach(sys.dimm(0));
    opt::PreTranslation pt;
    if (pretrans_on)
        pt.attach(core);

    workloads::CloudParams p;
    p.operations = 5000;
    p.footprintBytes = 256 << 20;
    p.preTranslationHints = true; // mkpt is a no-op when detached.
    auto insts = workloads::cloudTrace(wl, p);
    trace::VectorTraceSource src(std::move(insts));
    auto st = core.run(src, 1u << 30);
    return {st.elapsed, st.tlbMpki};
}

} // namespace

int
main()
{
    banner("Figure 13", "Lazy cache + Pre-translation speedups");

    const std::vector<std::string> workloads_list = {
        "fio-write", "ycsb", "tpcc", "hashmap", "redis",
        "linkedlist"};

    TextTable t({"workload", "lazy", "pretrans", "both",
                 "tlb-mpki (pretrans/base)"});
    double lazy_gain_on_writes = 0;
    double pt_gain_on_chases = 0;
    double worst_both = 10;
    double mpki_reduction_sum = 0;

    for (const auto &wl : workloads_list) {
        auto base = run(wl, false, false);
        auto lazy = run(wl, true, false);
        auto pt = run(wl, false, true);
        auto both = run(wl, true, true);

        double sp_lazy = static_cast<double>(base.elapsed) /
                         static_cast<double>(lazy.elapsed);
        double sp_pt = static_cast<double>(base.elapsed) /
                       static_cast<double>(pt.elapsed);
        double sp_both = static_cast<double>(base.elapsed) /
                         static_cast<double>(both.elapsed);
        double mpki_ratio =
            base.tlbMpki > 0 ? pt.tlbMpki / base.tlbMpki : 1.0;

        t.addRow({wl, fmtDouble(sp_lazy), fmtDouble(sp_pt),
                  fmtDouble(sp_both), fmtDouble(mpki_ratio)});

        if (wl == "ycsb" || wl == "fio-write")
            lazy_gain_on_writes = std::max(lazy_gain_on_writes,
                                           sp_lazy);
        if (wl == "linkedlist" || wl == "redis" || wl == "hashmap")
            pt_gain_on_chases = std::max(pt_gain_on_chases, sp_pt);
        worst_both = std::min(worst_both, sp_both);
        mpki_reduction_sum += 1.0 - mpki_ratio;
    }

    std::printf("\n(speedup over unmodified baseline; tlb column is "
                "Fig 13e)\n\n%s\n",
                t.render().c_str());

    check("Lazy cache speeds up a write-hot workload",
          lazy_gain_on_writes > 1.02);
    check("Pre-translation speeds up a pointer-chasing workload "
          "(paper: up to 48%)",
          pt_gain_on_chases > 1.02);
    check("combining both never breaks a workload (>= 0.97x)",
          worst_both > 0.97);
    check("Pre-translation cuts TLB MPKI on average (paper: 17%)",
          mpki_reduction_sum /
                  static_cast<double>(workloads_list.size()) >
              0.05);
    return finish();
}
