/**
 * @file
 * Simulator-performance microbenchmarks (google-benchmark): event
 * throughput of the kernel and end-to-end simulated accesses per
 * wall second for the main timing models. Useful to spot regressions
 * in the simulator itself, not in the modeled hardware.
 */

#include <benchmark/benchmark.h>

#include "baselines/dram_system.hh"
#include "common/event_queue.hh"
#include "common/logging.hh"
#include "lens/driver.hh"
#include "nvram/vans_system.hh"

using namespace vans;

namespace
{

void
BM_EventQueue(benchmark::State &state)
{
    setQuiet(true);
    for (auto _ : state) {
        EventQueue eq;
        std::uint64_t fired = 0;
        for (int i = 0; i < 1000; ++i) {
            eq.schedule(static_cast<Tick>(i) * 10,
                        [&fired] { ++fired; });
        }
        eq.run();
        benchmark::DoNotOptimize(fired);
    }
    state.SetItemsProcessed(state.iterations() * 1000);
}
BENCHMARK(BM_EventQueue);

void
BM_VansReadHit(benchmark::State &state)
{
    setQuiet(true);
    EventQueue eq;
    nvram::VansSystem sys(eq, nvram::NvramConfig::optaneDefault());
    lens::Driver drv(sys);
    drv.read(0); // Warm the RMW buffer.
    for (auto _ : state) {
        benchmark::DoNotOptimize(drv.read(0));
    }
    state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_VansReadHit);

void
BM_VansWriteStream(benchmark::State &state)
{
    setQuiet(true);
    EventQueue eq;
    nvram::VansSystem sys(eq, nvram::NvramConfig::optaneDefault());
    lens::Driver drv(sys);
    std::vector<Addr> addrs;
    for (Addr a = 0; a < 64 * 64; a += 64)
        addrs.push_back(a);
    for (auto _ : state) {
        benchmark::DoNotOptimize(drv.streamWrites(addrs, 16));
    }
    state.SetItemsProcessed(state.iterations() * addrs.size());
}
BENCHMARK(BM_VansWriteStream);

void
BM_DramRandomRead(benchmark::State &state)
{
    setQuiet(true);
    EventQueue eq;
    baselines::DramMainMemory mem(
        eq, baselines::DramMainMemory::ddr4Params());
    lens::Driver drv(mem);
    Addr a = 0;
    for (auto _ : state) {
        benchmark::DoNotOptimize(drv.read(a));
        a = (a + 64 * 1237) % (1 << 28);
    }
    state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_DramRandomRead);

} // namespace

BENCHMARK_MAIN();
