/**
 * @file
 * Simulator-performance microbenchmarks (google-benchmark): event
 * throughput of the kernel and end-to-end simulated accesses per
 * wall second for the main timing models. Useful to spot regressions
 * in the simulator itself, not in the modeled hardware.
 */

#include <benchmark/benchmark.h>

#include "baselines/dram_system.hh"
#include "common/event_queue.hh"
#include "common/logging.hh"
#include "common/request_pool.hh"
#include "common/rng.hh"
#include "common/sharded_kernel.hh"
#include "common/snapshot.hh"
#include "common/sweep.hh"
#include "lens/driver.hh"
#include "nvram/vans_system.hh"

using namespace vans;

namespace
{

void
BM_EventQueue(benchmark::State &state)
{
    setQuiet(true);
    for (auto _ : state) {
        EventQueue eq;
        std::uint64_t fired = 0;
        for (int i = 0; i < 1000; ++i) {
            eq.schedule(static_cast<Tick>(i) * 10,
                        [&fired] { ++fired; });
        }
        eq.run();
        benchmark::DoNotOptimize(fired);
    }
    state.SetItemsProcessed(state.iterations() * 1000);
}
BENCHMARK(BM_EventQueue);

void
BM_RequestPool(benchmark::State &state)
{
    setQuiet(true);
    RequestPool pool;
    // Steady-state churn at a fixed in-flight depth: the slab grows
    // once during the first iteration, then every alloc is a
    // free-list pop and every release a push. The get() in the loop
    // keeps the generation check on the measured path.
    constexpr unsigned depth = 64;
    RequestHandle inflight[depth] = {};
    for (auto _ : state) {
        for (unsigned i = 0; i < depth; ++i) {
            RequestHandle h = pool.alloc();
            Request &r = pool.get(h);
            r.addr = static_cast<Addr>(i) * cacheLineSize;
            r.op = (i & 3) ? MemOp::Read : MemOp::Write;
            inflight[i] = h;
        }
        for (unsigned i = 0; i < depth; ++i)
            pool.release(inflight[i]);
        benchmark::DoNotOptimize(pool.capacity());
    }
    state.SetItemsProcessed(state.iterations() * depth);
}
BENCHMARK(BM_RequestPool);

void
BM_VansReadHit(benchmark::State &state)
{
    setQuiet(true);
    EventQueue eq;
    nvram::VansSystem sys(eq, nvram::NvramConfig::optaneDefault());
    lens::Driver drv(sys);
    drv.read(0); // Warm the RMW buffer.
    for (auto _ : state) {
        benchmark::DoNotOptimize(drv.read(0));
    }
    state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_VansReadHit);

void
BM_VansWriteStream(benchmark::State &state)
{
    setQuiet(true);
    EventQueue eq;
    nvram::VansSystem sys(eq, nvram::NvramConfig::optaneDefault());
    lens::Driver drv(sys);
    std::vector<Addr> addrs;
    for (Addr a = 0; a < 64 * 64; a += 64)
        addrs.push_back(a);
    for (auto _ : state) {
        benchmark::DoNotOptimize(drv.streamWrites(addrs, 16));
    }
    state.SetItemsProcessed(state.iterations() * addrs.size());
}
BENCHMARK(BM_VansWriteStream);

// ---- Memory-mode (2LM) pair ----------------------------------------
//
// The two benches below are the Memory-mode twins of BM_VansReadHit
// and BM_VansWriteStream: identical request shapes with the
// direct-mapped DRAM cache interposed. The read side prices the
// cache's hot path (tag probe + one DDR4 access per hit); the write
// side prices WPQ drains landing in the cache's write-through +
// writeback machinery instead of the DIMM LSQ.

void
BM_VansMemoryModeReadHit(benchmark::State &state)
{
    setQuiet(true);
    EventQueue eq;
    nvram::NvramConfig cfg = nvram::NvramConfig::optaneDefault();
    cfg.mode = nvram::SystemMode::Memory;
    nvram::VansSystem sys(eq, cfg);
    lens::Driver drv(sys);
    drv.read(0); // Cold miss: fetch + fill the cache line.
    for (auto _ : state) {
        benchmark::DoNotOptimize(drv.read(0));
    }
    state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_VansMemoryModeReadHit);

void
BM_VansMemoryModeWriteStream(benchmark::State &state)
{
    setQuiet(true);
    EventQueue eq;
    nvram::NvramConfig cfg = nvram::NvramConfig::optaneDefault();
    cfg.mode = nvram::SystemMode::Memory;
    nvram::VansSystem sys(eq, cfg);
    lens::Driver drv(sys);
    std::vector<Addr> addrs;
    for (Addr a = 0; a < 64 * 64; a += 64)
        addrs.push_back(a);
    for (auto _ : state) {
        benchmark::DoNotOptimize(drv.streamWrites(addrs, 16));
    }
    state.SetItemsProcessed(state.iterations() * addrs.size());
}
BENCHMARK(BM_VansMemoryModeWriteStream);

// ---- Fig 5-shaped end-to-end pair ----------------------------------
//
// The two benches below replay the pointer-chase (5a load side) and
// store-plateau (5a store side) access shapes end to end through the
// full VANS pipeline, sized so the whole footprint stays inside the
// warm RMW read cache / LSQ combining window. They measure exactly
// the steady-state path the request pool keeps allocation-free: the
// zero-alloc regression test asserts the invariant, this pair prices
// it.

void
BM_VansFig05LoadSweep(benchmark::State &state)
{
    setQuiet(true);
    EventQueue eq;
    nvram::VansSystem sys(eq, nvram::NvramConfig::optaneDefault());
    lens::Driver drv(sys);
    std::vector<Addr> lines;
    for (Addr a = 0; a < 8 * cacheLineSize; a += cacheLineSize)
        lines.push_back(a);
    for (Addr a : lines)
        drv.read(a); // Warm the RMW read cache.
    for (auto _ : state) {
        for (Addr a : lines)
            benchmark::DoNotOptimize(drv.read(a));
        benchmark::DoNotOptimize(drv.streamReads(lines, 8));
    }
    state.SetItemsProcessed(state.iterations() * 2 * lines.size());
}
BENCHMARK(BM_VansFig05LoadSweep);

void
BM_VansFig05StoreSweep(benchmark::State &state)
{
    setQuiet(true);
    EventQueue eq;
    nvram::VansSystem sys(eq, nvram::NvramConfig::optaneDefault());
    lens::Driver drv(sys);
    std::vector<Addr> lines;
    for (Addr a = 0; a < 8 * cacheLineSize; a += cacheLineSize)
        lines.push_back(a);
    for (auto _ : state) {
        // Merging rewrites of the same 8 lines plus a draining
        // fence: the LSQ combining plateau of Fig 5a.
        for (Addr a : lines)
            drv.write(a);
        benchmark::DoNotOptimize(drv.fence());
    }
    state.SetItemsProcessed(state.iterations() * lines.size());
}
BENCHMARK(BM_VansFig05StoreSweep);

void
BM_DramRandomRead(benchmark::State &state)
{
    setQuiet(true);
    EventQueue eq;
    baselines::DramMainMemory mem(
        eq, baselines::DramMainMemory::ddr4Params());
    lens::Driver drv(mem);
    Addr a = 0;
    for (auto _ : state) {
        benchmark::DoNotOptimize(drv.read(a));
        a = (a + 64 * 1237) % (1 << 28);
    }
    state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_DramRandomRead);

// ---- Sharded kernel: one 6-DIMM world, serial vs parallel ----------
//
// The pair below runs the same interleaved-socket burst through the
// sharded kernel at one thread (the serial reference) and at the
// host's thread count. Outputs are bit-identical by construction
// (ShardedDeterminism tests); this measures only the wall-clock
// effect of running the six channel pipelines concurrently. On a
// single-CPU host the kernel clamps to one thread, so the two
// benches coincide up to barrier bookkeeping; the speedup shows on
// multi-core hosts.

nvram::NvramConfig
sixDimmConfig()
{
    nvram::NvramConfig cfg = nvram::NvramConfig::optaneDefault();
    cfg.numDimms = 6;
    cfg.interleaved = true;
    return cfg;
}

void
sixDimmBurst(MemorySystem &sys)
{
    lens::Driver drv(sys);
    // Write bursts spanning all six 4KB interleaves, then strided
    // reads touching every channel.
    for (unsigned rep = 0; rep < 3; ++rep)
        drv.writeBlock(static_cast<Addr>(rep) * 49152, 24576);
    std::vector<Addr> addrs;
    for (unsigned i = 0; i < 96; ++i)
        addrs.push_back(static_cast<Addr>(i) * 4096);
    drv.streamReads(addrs, 8);
    drv.fence();
}

void
runSixDimm(benchmark::State &state, unsigned threads)
{
    setQuiet(true);
    nvram::NvramConfig cfg = sixDimmConfig();
    for (auto _ : state) {
        ShardedKernel kern(cfg.numDimms, nsToTicks(cfg.coreToImcNs),
                           threads);
        nvram::VansSystem sys(kern, cfg, "vans6");
        sixDimmBurst(sys);
        snapshot::awaitQuiescence(kern.core(), sys);
        benchmark::DoNotOptimize(kern.curTick());
    }
    state.SetItemsProcessed(state.iterations());
}

void
BM_Vans6DimmSerial(benchmark::State &state)
{
    runSixDimm(state, 1);
}
BENCHMARK(BM_Vans6DimmSerial)->Unit(benchmark::kMillisecond);

void
BM_Vans6DimmSharded(benchmark::State &state)
{
    runSixDimm(state, 0); // 0 = one thread per hardware core.
}
BENCHMARK(BM_Vans6DimmSharded)->Unit(benchmark::kMillisecond);

// ---- Warm-once/fork-many vs cold-per-point sweeps ------------------
//
// The pair below measures the tentpole win of the snapshot/fork
// subsystem on a warm-dominated sweep: every point needs the same
// 4000-op warm-up before its 200-op measurement. Cold pays the warm
// per point; warm-fork pays it once and restores the captured world
// in O(state). Results are bit-identical (ForkFidelity tests); only
// the wall clock differs. Both run the serial SweepRunner so the
// ratio is the algorithmic speedup, not thread fan-out.

constexpr std::size_t sweepPoints = 8;

SystemFactory
vansFactory()
{
    return [](EventQueue &eq) {
        return std::make_unique<nvram::VansSystem>(
            eq, nvram::NvramConfig::optaneDefault());
    };
}

void
sweepWarm(MemorySystem &sys)
{
    lens::Driver drv(sys);
    Rng rng(11);
    for (int n = 0; n < 4000; ++n) {
        Addr a = rng.below(8u << 20) & ~static_cast<Addr>(63);
        if (rng.below(4) == 0)
            drv.write(a);
        else
            drv.read(a);
    }
    drv.fence();
}

std::uint64_t
sweepPoint(MemorySystem &sys, std::size_t i)
{
    lens::Driver drv(sys);
    Rng rng(SweepRunner::pointSeed(5, i));
    for (int n = 0; n < 200; ++n) {
        Addr a = rng.below(8u << 20) & ~static_cast<Addr>(63);
        if (rng.below(2))
            drv.write(a);
        else
            drv.read(a);
    }
    drv.fence();
    return sys.eventQueue().curTick();
}

void
BM_SweepColdPerPoint(benchmark::State &state)
{
    setQuiet(true);
    auto factory = vansFactory();
    for (auto _ : state) {
        std::uint64_t total = 0;
        for (std::size_t i = 0; i < sweepPoints; ++i) {
            EventQueue eq;
            auto sys = factory(eq);
            sweepWarm(*sys);
            snapshot::awaitQuiescence(eq, *sys);
            total += sweepPoint(*sys, i);
        }
        benchmark::DoNotOptimize(total);
    }
    state.SetItemsProcessed(state.iterations() * sweepPoints);
}
BENCHMARK(BM_SweepColdPerPoint)->Unit(benchmark::kMillisecond);

void
BM_SweepWarmFork(benchmark::State &state)
{
    setQuiet(true);
    auto factory = vansFactory();
    SweepRunner serial(1);
    for (auto _ : state) {
        auto res = serial.mapFromWarm<std::uint64_t>(
            factory, sweepWarm, sweepPoints,
            [](MemorySystem &sys, std::size_t i) {
                return sweepPoint(sys, i);
            });
        benchmark::DoNotOptimize(res);
    }
    state.SetItemsProcessed(state.iterations() * sweepPoints);
}
BENCHMARK(BM_SweepWarmFork)->Unit(benchmark::kMillisecond);

void
BM_SnapshotCaptureRestore(benchmark::State &state)
{
    setQuiet(true);
    auto factory = vansFactory();
    EventQueue proto_eq;
    auto proto = factory(proto_eq);
    sweepWarm(*proto);
    snapshot::awaitQuiescence(proto_eq, *proto);
    auto snap = snapshot::WorldSnapshot::capture(proto_eq, *proto);
    for (auto _ : state) {
        EventQueue eq;
        auto sys = factory(eq);
        snap.restoreInto(eq, *sys);
        benchmark::DoNotOptimize(sys->quiescent());
    }
    state.SetItemsProcessed(state.iterations());
    state.counters["snapshot_bytes"] =
        static_cast<double>(snap.sizeBytes());
}
BENCHMARK(BM_SnapshotCaptureRestore);

} // namespace

BENCHMARK_MAIN();
