/**
 * @file
 * Reproduces Table I: the profiling-tool capability matrix.
 *
 * The static rows (MLC, perf, DRAMA) restate the paper's comparison;
 * the LENS row is *demonstrated*: each claimed capability is
 * exercised against VANS and the measured evidence printed.
 */

#include "bench/bench_util.hh"
#include "lens/probers.hh"
#include "nvram/vans_system.hh"

using namespace vans;
using namespace vans::bench;

int
main()
{
    banner("Table I", "profiling-tool capability comparison");

    TextTable t({"tool", "latency", "bandwidth", "addr-map",
                 "buf-size", "buf-gran", "hierarchy", "wear-freq",
                 "wear-gran"});
    t.addRow({"MLC", "yes", "yes", "no", "no", "no", "no", "no",
              "no"});
    t.addRow({"perf", "yes", "yes", "no", "no", "no", "no", "no",
              "no"});
    t.addRow({"DRAMA", "partial", "partial", "yes", "no", "no", "no",
              "no", "no"});
    t.addRow({"LENS", "yes", "yes", "yes", "yes", "yes", "yes",
              "yes", "yes"});
    std::printf("\n%s\n", t.render().c_str());

    // Demonstrate each LENS "yes" cell against VANS.
    EventQueue eq;
    nvram::VansSystem sys(eq, nvram::NvramConfig::optaneDefault());
    lens::Driver drv(sys);

    lens::BufferProberParams bp;
    bp.maxRegion = 64ull << 20;
    bp.warmupLines = 8000;
    bp.measureLines = 2500;
    auto buffers = lens::runBufferProber(drv, bp);
    auto perf = lens::runPerfProber(drv, buffers);

    std::printf("LENS evidence on VANS:\n");
    std::printf("  latency:   level plateaus (ns):");
    for (double l : buffers.levelLatenciesNs)
        std::printf(" %.0f", l);
    std::printf("\n  bandwidth: seq-rd %.2f GB/s, seq-wr %.2f GB/s\n",
                perf.seqReadGbps, perf.seqWriteGbps);
    std::printf("  buf-size:  ");
    for (auto c : buffers.readBufferCapacities)
        std::printf("%s ", formatSize(c).c_str());
    std::printf("(read), ");
    for (auto c : buffers.writeQueueCapacities)
        std::printf("%s ", formatSize(c).c_str());
    std::printf("(write)\n");
    std::printf("  buf-gran:  RMW %s, AIT %s\n",
                formatSize(buffers.readEntrySizeL1).c_str(),
                formatSize(buffers.readEntrySizeL2).c_str());
    std::printf("  hierarchy: %s\n\n",
                buffers.inclusiveHierarchy ? "two-level inclusive"
                                           : "independent");

    check("buffer sizes recovered",
          buffers.readBufferCapacities.size() >= 2);
    check("buffer granularity recovered",
          buffers.readEntrySizeL1 > 0 && buffers.readEntrySizeL2 > 0);
    check("hierarchy recovered", buffers.inclusiveHierarchy);
    check("bandwidth measured", perf.seqReadGbps > 0);
    return finish();
}
