/**
 * @file
 * Reproduces Table II: the LENS overview -- which prober uses which
 * microbenchmark to expose which hardware behaviour -- with each
 * row's detected parameter filled in from a live run on VANS.
 */

#include "bench/bench_util.hh"
#include "common/sweep.hh"
#include "lens/report.hh"
#include "nvram/vans_system.hh"

using namespace vans;
using namespace vans::bench;

int
main()
{
    banner("Table II", "LENS probers / microbenchmarks / detected "
                       "microarchitecture");

    SystemFactory factory = [](EventQueue &eq) {
        nvram::NvramConfig cfg = nvram::NvramConfig::optaneDefault();
        cfg.wearThreshold = 3500; // Keep the policy prober quick.
        return std::make_unique<nvram::VansSystem>(eq, cfg);
    };
    SweepRunner sweep;

    lens::LensParams lp;
    lp.buffer.maxRegion = 64ull << 20;
    lp.buffer.warmupLines = 8000;
    lp.buffer.measureLines = 2500;
    lp.policy.overwriteIterations = 12000;
    lp.policy.tailRegions = {256, 4096, 65536, 262144};
    lp.policy.tailSweepBytes = 4ull << 20;
    auto rep = lens::runLens(factory, lp, sweep);

    TextTable t({"prober", "microbenchmark", "behaviour",
                 "detected"});
    t.addRow({"buffer", "PtrChasing (64B block)", "buffer overflow",
              formatSize(rep.buffers.readBufferCapacities.empty()
                             ? 0
                             : rep.buffers.readBufferCapacities[0]) +
                  " / " +
                  formatSize(
                      rep.buffers.readBufferCapacities.size() > 1
                          ? rep.buffers.readBufferCapacities[1]
                          : 0)});
    t.addRow({"buffer", "PtrChasing (var block)", "R/W amplification",
              formatSize(rep.buffers.readEntrySizeL1) + " / " +
                  formatSize(rep.buffers.readEntrySizeL2)});
    t.addRow({"buffer", "Read-after-write", "data fast-forwarding",
              rep.buffers.inclusiveHierarchy ? "inclusive"
                                             : "independent"});
    t.addRow({"policy", "Overwrite (256B)", "data migration",
              fmtDouble(rep.policy.tailLatencyUs, 1) + "us every " +
                  fmtDouble(rep.policy.tailIntervalWrites, 0) +
                  " writes"});
    t.addRow({"policy", "Overwrite (var region)", "migration block",
              formatSize(rep.policy.wearBlockSize)});
    t.addRow({"perf", "Stride read/write", "internal bandwidth",
              fmtDouble(rep.perf.seqReadGbps) + " / " +
                  fmtDouble(rep.perf.seqWriteGbps) + " GB/s"});
    t.addRow({"perf", "PtrChasing latencies", "internal latency",
              fmtDouble(rep.buffers.levelLatenciesNs.empty()
                            ? 0
                            : rep.buffers.levelLatenciesNs[0],
                        0) +
                  " ns (L1)"});
    std::printf("\n%s\n", t.render().c_str());

    std::printf("%s\n", rep.summary().c_str());

    check("every prober produced a detection",
          !rep.buffers.readBufferCapacities.empty() &&
              rep.policy.tailLatencyUs > 0 &&
              rep.perf.seqReadGbps > 0);
    check("wear block identified", rep.policy.wearBlockSize > 0);
    return finish();
}
