/**
 * @file
 * Reproduces Table IV: the thirteen memory-intensive SPEC CPU
 * workloads with LLC MPKI and footprint -- here via the synthetic
 * trace generator, validated by running each trace through the
 * Table V cache hierarchy and comparing measured LLC MPKI against
 * the published target.
 */

#include "baselines/dram_system.hh"
#include "bench/bench_util.hh"
#include "cache/hierarchy.hh"
#include "cpu/core.hh"
#include "workloads/spec_synth.hh"

using namespace vans;
using namespace vans::bench;

int
main()
{
    banner("Table IV", "SPEC-like workloads: target vs measured LLC "
                       "MPKI");

    TextTable t({"workload", "suite", "target-MPKI", "measured-MPKI",
                 "footprint"});
    bool all_within = true;
    const std::uint64_t insts = 200000;

    for (const auto &w : workloads::specTable4()) {
        EventQueue eq;
        baselines::DramMainMemory mem(
            eq, baselines::DramMainMemory::ddr4Params());
        cache::Hierarchy caches;
        cpu::CpuCore core(mem, caches);
        auto trace_insts = workloads::generateSpecTrace(w, insts);
        trace::VectorTraceSource src(std::move(trace_insts));
        auto st = core.run(src, insts);

        t.addRow({w.name, w.suite, fmtDouble(w.llcMpki, 1),
                  fmtDouble(st.llcMpki, 1),
                  formatSize(w.footprintBytes)});
        // Within 2.5x (the generator targets the order of magnitude;
        // page-walk traffic adds workload-dependent extra misses).
        double ratio = st.llcMpki / w.llcMpki;
        if (ratio < 0.4 || ratio > 2.5)
            all_within = false;
    }
    std::printf("\n%s\n", t.render().c_str());

    check("all 13 workloads generated and measured",
          workloads::specTable4().size() == 13);
    check("measured LLC MPKI tracks each target within 2.5x",
          all_within);
    const auto &mcf = workloads::specWorkload("mcf", "2006");
    const auto &sjeng = workloads::specWorkload("sjeng", "2006");
    check("ranking preserved: mcf is the most memory-intensive",
          mcf.llcMpki > sjeng.llcMpki * 5);
    return finish();
}
