#include "bench/bench_util.hh"

#include <cstdlib>

#include "common/logging.hh"
#include "common/metrics.hh"
#include "common/rng.hh"
#include "common/trace_event.hh"
#include "lens/driver.hh"
#include "nvram/vans_system.hh"

namespace vans::bench
{

void
warmSpan(MemorySystem &sys, Addr base, std::uint64_t bytes)
{
    lens::Driver drv(sys);
    std::vector<Addr> touch;
    touch.reserve(bytes / 4096 + 1);
    for (Addr a = base; a < base + bytes; a += 4096)
        touch.push_back(a);
    drv.streamReads(touch, 16);
    drv.fence();
}

namespace
{
unsigned checksRun = 0;
unsigned checksPassed = 0;
} // namespace

void
banner(const std::string &exp, const std::string &what)
{
    setQuiet(true);
    std::printf("================================================="
                "=====================\n");
    std::printf("%s -- %s\n", exp.c_str(), what.c_str());
    std::printf("(absolute reference values are approximate "
                "digitizations of the paper's\n figures; shape checks "
                "below are the reproduction criteria)\n");
    std::printf("================================================="
                "=====================\n");
}

bool
check(const std::string &claim, bool ok)
{
    ++checksRun;
    checksPassed += ok ? 1 : 0;
    std::printf("  [%s] %s\n", ok ? "OK " : "FAIL", claim.c_str());
    return ok;
}

int
finish()
{
    std::printf("\nshape checks: %u/%u passed\n", checksPassed,
                checksRun);
    return checksPassed == checksRun ? 0 : 1;
}

void
printCurves(const std::vector<Curve> &curves,
            const std::string &x_label)
{
    if (curves.empty() || curves.front().empty())
        return;
    TextTable t([&] {
        std::vector<std::string> head{x_label};
        for (const auto &c : curves)
            head.push_back(c.name());
        return head;
    }());
    const auto &xs = curves.front();
    for (std::size_t i = 0; i < xs.size(); ++i) {
        std::vector<std::string> row;
        row.push_back(
            formatSize(static_cast<std::uint64_t>(xs[i].x)));
        for (const auto &c : curves) {
            row.push_back(i < c.size() ? fmtDouble(c[i].y, 1)
                                       : std::string("-"));
        }
        t.addRow(row);
    }
    std::printf("%s", t.render().c_str());
    std::printf("\n%s\n", asciiChart(curves).c_str());
}

Curve
optaneLoadReference(const std::vector<std::uint64_t> &regions)
{
    Curve c("optane-ld(ref)");
    for (std::uint64_t r : regions) {
        double y = r <= (16u << 10) ? 175.0
                   : r <= (16u << 20) ? 305.0
                                      : 410.0;
        c.add(static_cast<double>(r), y);
    }
    return c;
}

Curve
optaneStoreReference(const std::vector<std::uint64_t> &regions)
{
    Curve c("optane-st(ref)");
    for (std::uint64_t r : regions) {
        double y = r <= 512 ? 10.0 : r <= (4u << 10) ? 45.0 : 160.0;
        c.add(static_cast<double>(r), y);
    }
    return c;
}

double
optaneSpeedupReference(const std::string &w)
{
    // Approximate reading of Fig 11c's Optane bars (DRAM exec time /
    // NVRAM exec time per workload).
    if (w == "mcf" || w == "mcf17")
        return 2.5;
    if (w == "lbm")
        return 2.8;
    if (w == "gcc17")
        return 1.9;
    if (w == "libquantum")
        return 1.3;
    if (w == "gcc")
        return 1.2;
    if (w == "xz17")
        return 1.25;
    if (w == "omnetpp" || w == "omnetpp17")
        return 1.2;
    if (w == "cactusADM")
        return 1.2;
    if (w == "wrf")
        return 1.15;
    if (w == "sjeng" || w == "deepsjeng")
        return 1.1;
    return 1.2;
}

void
writeObservabilityArtifacts(const std::string &prefix)
{
    if (!obs::envTraceEnabled())
        return;

    // A dedicated small world: a low wear threshold so the hammer
    // phase reliably starts a migration, and a short migration so
    // the run stays compact.
    auto cfg = nvram::NvramConfig::optaneDefault();
    cfg.wearThreshold = 200;
    cfg.migrationUs = 20;
    EventQueue eq;
    nvram::VansSystem sys(eq, cfg);
    lens::Driver drv(sys);

    // Mixed phase: populate every component track and request lane.
    Rng rng(3);
    for (int n = 0; n < 300; ++n) {
        Addr a = rng.below(4u << 20) & ~static_cast<Addr>(63);
        if (rng.below(3) == 0)
            drv.write(a);
        else
            drv.read(a);
    }
    drv.fence();

    // Hammer phase: cycle distinct lines of one 64KB wear block so
    // RMW evictions turn into media writes on that block, crossing
    // the wear threshold; the writes that follow the migration start
    // stall and show up as flow-connected wear_stall slices.
    Addr block = 8ull << 20;
    for (int n = 0; n < 2000; ++n) {
        Addr a = block + static_cast<Addr>(n % 1024) * 64;
        drv.write(a);
    }
    drv.fence();

    sys.tracer()->writeChromeJson(prefix + ".trace.json");
    MetricsRegistry reg;
    sys.metricsInto(reg);
    reg.writeJson(prefix + ".metrics.json");
    std::printf("[trace] wrote %s.trace.json and %s.metrics.json "
                "(%llu migrations)\n",
                prefix.c_str(), prefix.c_str(),
                static_cast<unsigned long long>(
                    sys.totalMigrations()));
}

} // namespace vans::bench
