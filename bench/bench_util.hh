/**
 * @file
 * Shared infrastructure for the per-figure/table bench harnesses.
 *
 * Each bench binary regenerates one table or figure from the paper's
 * evaluation: it runs the workload, prints the same rows/series the
 * paper reports, renders an ASCII chart where the original is a
 * plot, and evaluates *shape checks* -- the qualitative claims the
 * reproduction must preserve (who wins, where inflections fall, by
 * roughly what factor).
 *
 * Reference curves: absolute Optane numbers come from our
 * digitization of the published figures (the hardware itself is not
 * available); they are approximations and marked as such in the
 * output and in EXPERIMENTS.md.
 */

#ifndef VANS_BENCH_BENCH_UTIL_HH
#define VANS_BENCH_BENCH_UTIL_HH

#include <cstdio>
#include <string>
#include <vector>

#include "common/ascii_chart.hh"
#include "common/curve.hh"
#include "common/mem_system.hh"

namespace vans::bench
{

/**
 * Shared warm phase for warm-once/fork-many latency sweeps: one
 * read touch per 4KB page over [base, base+bytes), then a fence.
 * Read-only, so forked points inherit steady-state buffer residency
 * without any pre-aged wear state.
 */
void warmSpan(MemorySystem &sys, Addr base, std::uint64_t bytes);

/** Print the figure/table banner. */
void banner(const std::string &exp, const std::string &what);

/** Record + print one shape check; returns its truth. */
bool check(const std::string &claim, bool ok);

/** Print the pass/fail summary; returns process exit code. */
int finish();

/** Print a curve set as an aligned x/y table. */
void printCurves(const std::vector<Curve> &curves,
                 const std::string &x_label);

/**
 * Paper Fig 1b / 5a / 9a reference: Optane DIMM pointer-chasing
 * *load* latency (ns per cache line) as a function of region size
 * (approximate digitization; 1 DIMM, 64B PC-Block).
 */
Curve optaneLoadReference(const std::vector<std::uint64_t> &regions);

/** Same for the store curve (NT stores, no fences). */
Curve optaneStoreReference(const std::vector<std::uint64_t> &regions);

/** Paper Fig 11c reference: DRAM/NVRAM speedups per workload
 *  (approximate digitization of the bar chart). */
double optaneSpeedupReference(const std::string &workload);

/**
 * When VANS_TRACE is set, run a compact traced workload (mixed
 * reads/writes plus a wear-block hammer that forces a migration and
 * the write stalls it causes) and write <prefix>.trace.json (Chrome
 * trace-event / Perfetto format) and <prefix>.metrics.json next to
 * the bench output. No-op when tracing is disabled, so the bench's
 * measured numbers are never perturbed.
 */
void writeObservabilityArtifacts(const std::string &prefix);

} // namespace vans::bench

#endif // VANS_BENCH_BENCH_UTIL_HH
