#!/usr/bin/env sh
# Run the simulator-performance microbenchmarks and drop the JSON
# report at the repo root (BENCH_simperf.json), where CI and local
# tooling can diff it against a previous run.
#
# Usage: bench/run_simperf.sh [build-dir] [out-json]
#
# The report includes the warm-once sweep pair
# (BM_SweepColdPerPoint vs BM_SweepWarmFork); the cold/fork
# wall-clock ratio is printed below as the headline speedup.
set -eu

repo_root=$(CDPATH= cd -- "$(dirname -- "$0")/.." && pwd)
build_dir=${1:-"$repo_root/build"}
out=${2:-"$repo_root/BENCH_simperf.json"}
bench_bin="$build_dir/bench/bench_simperf"

if [ ! -x "$bench_bin" ]; then
    echo "error: $bench_bin not found or not executable." >&2
    echo "Build it first:  cmake -B build -S . && cmake --build build -j" >&2
    exit 1
fi

# Three repetitions: tools/perf_smoke.py compares the median
# aggregates, which keeps the regression gate stable on noisy
# (shared/1-cpu) runners where single runs swing +/-10%.
"$bench_bin" --benchmark_format=json --benchmark_out="$out" \
             --benchmark_out_format=json --benchmark_repetitions=3
echo "wrote $out"

# Headline: sweep wall-clock, cold-per-point vs warm-fork.
python3 - "$out" <<'EOF' || true
import json, sys
with open(sys.argv[1]) as f:
    rep = json.load(f)
times = {b["name"]: b["real_time"] for b in rep.get("benchmarks", [])
         if "real_time" in b}
cold = times.get("BM_SweepColdPerPoint")
fork = times.get("BM_SweepWarmFork")
if cold and fork:
    print(f"sweep wall-clock: cold-per-point {cold:.2f} ms, "
          f"warm-fork {fork:.2f} ms  ({cold / fork:.2f}x)")
EOF
