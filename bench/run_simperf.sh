#!/usr/bin/env sh
# Run the simulator-performance microbenchmarks and drop the JSON
# report at the repo root (BENCH_simperf.json), where CI and local
# tooling can diff it against a previous run.
#
# Usage: bench/run_simperf.sh [build-dir] [out-json]
#
# The report includes the warm-once sweep pair
# (BM_SweepColdPerPoint vs BM_SweepWarmFork); the cold/fork
# wall-clock ratio is printed below as the headline speedup.
set -eu

repo_root=$(CDPATH= cd -- "$(dirname -- "$0")/.." && pwd)
build_dir=${1:-"$repo_root/build"}
out=${2:-"$repo_root/BENCH_simperf.json"}
bench_bin="$build_dir/bench/bench_simperf"

if [ ! -x "$bench_bin" ]; then
    echo "error: $bench_bin not found or not executable." >&2
    echo "Build it first:  cmake -B build -S . && cmake --build build -j" >&2
    exit 1
fi

# Three repetitions: tools/perf_smoke.py compares the median
# aggregates, which keeps the regression gate stable on noisy
# (shared/1-cpu) runners where single runs swing +/-10%.
"$bench_bin" --benchmark_format=json --benchmark_out="$out" \
             --benchmark_out_format=json --benchmark_repetitions=3
echo "wrote $out"

# Headline: sweep wall-clock, cold-per-point vs warm-fork.
python3 - "$out" <<'EOF' || true
import json, sys
with open(sys.argv[1]) as f:
    rep = json.load(f)
times = {b["name"]: b["real_time"] for b in rep.get("benchmarks", [])
         if "real_time" in b}
cold = times.get("BM_SweepColdPerPoint")
fork = times.get("BM_SweepWarmFork")
if cold and fork:
    print(f"sweep wall-clock: cold-per-point {cold:.2f} ms, "
          f"warm-fork {fork:.2f} ms  ({cold / fork:.2f}x)")
EOF

# When a recorded baseline exists, print an old-vs-new speedup table
# (median aggregates, same machine assumed: absolute throughput).
baseline="$repo_root/bench/simperf_baseline.json"
if [ -f "$baseline" ]; then
    python3 - "$baseline" "$out" <<'EOF' || true
import json, sys

def medians(path):
    with open(path) as f:
        rep = json.load(f)
    single, agg = {}, {}
    for b in rep.get("benchmarks", []):
        name = b["name"]
        if "items_per_second" in b:
            v = float(b["items_per_second"])
        elif b.get("real_time"):
            v = 1.0 / float(b["real_time"])
        else:
            continue
        if b.get("run_type") == "aggregate":
            if name.endswith("_median"):
                agg[name[: -len("_median")]] = v
        else:
            single[name] = v
    single.update(agg)
    return single

old = medians(sys.argv[1])
new = medians(sys.argv[2])
rows = [("benchmark", "speedup vs baseline")]
for name in sorted(set(old) | set(new)):
    if name not in old:
        rows.append((name, "new"))
    elif name not in new:
        rows.append((name, "removed"))
    elif old[name] > 0:
        rows.append((name, f"{new[name] / old[name]:.2f}x"))
w = max(len(r[0]) for r in rows)
print("\nold-vs-new (throughput, median of repetitions):")
for name, v in rows:
    print(f"  {name.ljust(w)}  {v}")
EOF
fi
