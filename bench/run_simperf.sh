#!/usr/bin/env sh
# Run the simulator-performance microbenchmarks and drop the JSON
# report at the repo root (BENCH_simperf.json), where CI and local
# tooling can diff it against a previous run.
#
# Usage: bench/run_simperf.sh [build-dir]
set -eu

repo_root=$(CDPATH= cd -- "$(dirname -- "$0")/.." && pwd)
build_dir=${1:-"$repo_root/build"}
bench_bin="$build_dir/bench/bench_simperf"

if [ ! -x "$bench_bin" ]; then
    echo "error: $bench_bin not found or not executable." >&2
    echo "Build it first:  cmake -B build -S . && cmake --build build -j" >&2
    exit 1
fi

out="$repo_root/BENCH_simperf.json"
"$bench_bin" --benchmark_format=json --benchmark_out="$out" \
             --benchmark_out_format=json
echo "wrote $out"
