file(REMOVE_RECURSE
  "../bench/bench_fig01_discrepancy"
  "../bench/bench_fig01_discrepancy.pdb"
  "CMakeFiles/bench_fig01_discrepancy.dir/bench_fig01_discrepancy.cc.o"
  "CMakeFiles/bench_fig01_discrepancy.dir/bench_fig01_discrepancy.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig01_discrepancy.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
