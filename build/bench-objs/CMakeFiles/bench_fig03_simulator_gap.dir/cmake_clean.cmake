file(REMOVE_RECURSE
  "../bench/bench_fig03_simulator_gap"
  "../bench/bench_fig03_simulator_gap.pdb"
  "CMakeFiles/bench_fig03_simulator_gap.dir/bench_fig03_simulator_gap.cc.o"
  "CMakeFiles/bench_fig03_simulator_gap.dir/bench_fig03_simulator_gap.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig03_simulator_gap.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
