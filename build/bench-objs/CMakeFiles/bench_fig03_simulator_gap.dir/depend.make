# Empty dependencies file for bench_fig03_simulator_gap.
# This may be replaced when dependencies are built.
