file(REMOVE_RECURSE
  "../bench/bench_fig05_buffer_prober"
  "../bench/bench_fig05_buffer_prober.pdb"
  "CMakeFiles/bench_fig05_buffer_prober.dir/bench_fig05_buffer_prober.cc.o"
  "CMakeFiles/bench_fig05_buffer_prober.dir/bench_fig05_buffer_prober.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig05_buffer_prober.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
