# Empty dependencies file for bench_fig05_buffer_prober.
# This may be replaced when dependencies are built.
