file(REMOVE_RECURSE
  "../bench/bench_fig06_amplification"
  "../bench/bench_fig06_amplification.pdb"
  "CMakeFiles/bench_fig06_amplification.dir/bench_fig06_amplification.cc.o"
  "CMakeFiles/bench_fig06_amplification.dir/bench_fig06_amplification.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig06_amplification.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
