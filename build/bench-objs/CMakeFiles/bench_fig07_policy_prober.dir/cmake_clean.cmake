file(REMOVE_RECURSE
  "../bench/bench_fig07_policy_prober"
  "../bench/bench_fig07_policy_prober.pdb"
  "CMakeFiles/bench_fig07_policy_prober.dir/bench_fig07_policy_prober.cc.o"
  "CMakeFiles/bench_fig07_policy_prober.dir/bench_fig07_policy_prober.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig07_policy_prober.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
