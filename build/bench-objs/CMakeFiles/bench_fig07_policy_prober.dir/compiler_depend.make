# Empty compiler generated dependencies file for bench_fig07_policy_prober.
# This may be replaced when dependencies are built.
