file(REMOVE_RECURSE
  "../bench/bench_fig09_validation"
  "../bench/bench_fig09_validation.pdb"
  "CMakeFiles/bench_fig09_validation.dir/bench_fig09_validation.cc.o"
  "CMakeFiles/bench_fig09_validation.dir/bench_fig09_validation.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig09_validation.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
