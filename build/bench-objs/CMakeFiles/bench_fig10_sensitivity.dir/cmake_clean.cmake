file(REMOVE_RECURSE
  "../bench/bench_fig10_sensitivity"
  "../bench/bench_fig10_sensitivity.pdb"
  "CMakeFiles/bench_fig10_sensitivity.dir/bench_fig10_sensitivity.cc.o"
  "CMakeFiles/bench_fig10_sensitivity.dir/bench_fig10_sensitivity.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig10_sensitivity.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
