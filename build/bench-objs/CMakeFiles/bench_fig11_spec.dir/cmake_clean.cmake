file(REMOVE_RECURSE
  "../bench/bench_fig11_spec"
  "../bench/bench_fig11_spec.pdb"
  "CMakeFiles/bench_fig11_spec.dir/bench_fig11_spec.cc.o"
  "CMakeFiles/bench_fig11_spec.dir/bench_fig11_spec.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig11_spec.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
