file(REMOVE_RECURSE
  "../bench/bench_fig12_cloud"
  "../bench/bench_fig12_cloud.pdb"
  "CMakeFiles/bench_fig12_cloud.dir/bench_fig12_cloud.cc.o"
  "CMakeFiles/bench_fig12_cloud.dir/bench_fig12_cloud.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig12_cloud.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
