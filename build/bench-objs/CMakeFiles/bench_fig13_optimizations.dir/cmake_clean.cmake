file(REMOVE_RECURSE
  "../bench/bench_fig13_optimizations"
  "../bench/bench_fig13_optimizations.pdb"
  "CMakeFiles/bench_fig13_optimizations.dir/bench_fig13_optimizations.cc.o"
  "CMakeFiles/bench_fig13_optimizations.dir/bench_fig13_optimizations.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig13_optimizations.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
