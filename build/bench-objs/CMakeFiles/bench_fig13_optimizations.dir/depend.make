# Empty dependencies file for bench_fig13_optimizations.
# This may be replaced when dependencies are built.
