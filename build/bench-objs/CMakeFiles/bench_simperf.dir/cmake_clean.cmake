file(REMOVE_RECURSE
  "../bench/bench_simperf"
  "../bench/bench_simperf.pdb"
  "CMakeFiles/bench_simperf.dir/bench_simperf.cc.o"
  "CMakeFiles/bench_simperf.dir/bench_simperf.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_simperf.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
