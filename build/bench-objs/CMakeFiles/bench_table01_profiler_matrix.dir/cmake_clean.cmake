file(REMOVE_RECURSE
  "../bench/bench_table01_profiler_matrix"
  "../bench/bench_table01_profiler_matrix.pdb"
  "CMakeFiles/bench_table01_profiler_matrix.dir/bench_table01_profiler_matrix.cc.o"
  "CMakeFiles/bench_table01_profiler_matrix.dir/bench_table01_profiler_matrix.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table01_profiler_matrix.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
