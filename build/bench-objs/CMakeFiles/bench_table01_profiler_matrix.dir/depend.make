# Empty dependencies file for bench_table01_profiler_matrix.
# This may be replaced when dependencies are built.
