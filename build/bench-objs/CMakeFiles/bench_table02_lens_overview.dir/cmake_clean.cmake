file(REMOVE_RECURSE
  "../bench/bench_table02_lens_overview"
  "../bench/bench_table02_lens_overview.pdb"
  "CMakeFiles/bench_table02_lens_overview.dir/bench_table02_lens_overview.cc.o"
  "CMakeFiles/bench_table02_lens_overview.dir/bench_table02_lens_overview.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table02_lens_overview.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
