# Empty dependencies file for bench_table02_lens_overview.
# This may be replaced when dependencies are built.
