file(REMOVE_RECURSE
  "../bench/bench_table04_spec_workloads"
  "../bench/bench_table04_spec_workloads.pdb"
  "CMakeFiles/bench_table04_spec_workloads.dir/bench_table04_spec_workloads.cc.o"
  "CMakeFiles/bench_table04_spec_workloads.dir/bench_table04_spec_workloads.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table04_spec_workloads.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
