# Empty dependencies file for bench_table04_spec_workloads.
# This may be replaced when dependencies are built.
