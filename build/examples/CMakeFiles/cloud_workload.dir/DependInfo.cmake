
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/examples/cloud_workload.cpp" "examples/CMakeFiles/cloud_workload.dir/cloud_workload.cpp.o" "gcc" "examples/CMakeFiles/cloud_workload.dir/cloud_workload.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/lens/CMakeFiles/vans_lens.dir/DependInfo.cmake"
  "/root/repo/build/src/opt/CMakeFiles/vans_opt.dir/DependInfo.cmake"
  "/root/repo/build/src/cpu/CMakeFiles/vans_cpu.dir/DependInfo.cmake"
  "/root/repo/build/src/nvram/CMakeFiles/vans_nvram.dir/DependInfo.cmake"
  "/root/repo/build/src/cache/CMakeFiles/vans_cache.dir/DependInfo.cmake"
  "/root/repo/build/src/workloads/CMakeFiles/vans_workloads.dir/DependInfo.cmake"
  "/root/repo/build/src/trace/CMakeFiles/vans_trace.dir/DependInfo.cmake"
  "/root/repo/build/src/dram/CMakeFiles/vans_dram.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/vans_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
