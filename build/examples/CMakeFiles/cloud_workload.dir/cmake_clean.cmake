file(REMOVE_RECURSE
  "CMakeFiles/cloud_workload.dir/cloud_workload.cpp.o"
  "CMakeFiles/cloud_workload.dir/cloud_workload.cpp.o.d"
  "cloud_workload"
  "cloud_workload.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cloud_workload.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
