# Empty dependencies file for cloud_workload.
# This may be replaced when dependencies are built.
