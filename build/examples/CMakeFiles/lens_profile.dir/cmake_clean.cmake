file(REMOVE_RECURSE
  "CMakeFiles/lens_profile.dir/lens_profile.cpp.o"
  "CMakeFiles/lens_profile.dir/lens_profile.cpp.o.d"
  "lens_profile"
  "lens_profile.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/lens_profile.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
