# Empty dependencies file for lens_profile.
# This may be replaced when dependencies are built.
