
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/baselines/dram_system.cc" "src/baselines/CMakeFiles/vans_baselines.dir/dram_system.cc.o" "gcc" "src/baselines/CMakeFiles/vans_baselines.dir/dram_system.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/vans_common.dir/DependInfo.cmake"
  "/root/repo/build/src/dram/CMakeFiles/vans_dram.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
