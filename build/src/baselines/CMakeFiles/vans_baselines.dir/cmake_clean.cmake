file(REMOVE_RECURSE
  "CMakeFiles/vans_baselines.dir/dram_system.cc.o"
  "CMakeFiles/vans_baselines.dir/dram_system.cc.o.d"
  "libvans_baselines.a"
  "libvans_baselines.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/vans_baselines.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
