file(REMOVE_RECURSE
  "libvans_baselines.a"
)
