# Empty dependencies file for vans_baselines.
# This may be replaced when dependencies are built.
