file(REMOVE_RECURSE
  "CMakeFiles/vans_cache.dir/cache.cc.o"
  "CMakeFiles/vans_cache.dir/cache.cc.o.d"
  "CMakeFiles/vans_cache.dir/hierarchy.cc.o"
  "CMakeFiles/vans_cache.dir/hierarchy.cc.o.d"
  "CMakeFiles/vans_cache.dir/tlb.cc.o"
  "CMakeFiles/vans_cache.dir/tlb.cc.o.d"
  "libvans_cache.a"
  "libvans_cache.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/vans_cache.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
