file(REMOVE_RECURSE
  "libvans_cache.a"
)
