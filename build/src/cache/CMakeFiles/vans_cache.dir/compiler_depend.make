# Empty compiler generated dependencies file for vans_cache.
# This may be replaced when dependencies are built.
