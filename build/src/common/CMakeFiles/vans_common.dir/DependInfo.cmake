
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/common/ascii_chart.cc" "src/common/CMakeFiles/vans_common.dir/ascii_chart.cc.o" "gcc" "src/common/CMakeFiles/vans_common.dir/ascii_chart.cc.o.d"
  "/root/repo/src/common/config.cc" "src/common/CMakeFiles/vans_common.dir/config.cc.o" "gcc" "src/common/CMakeFiles/vans_common.dir/config.cc.o.d"
  "/root/repo/src/common/curve.cc" "src/common/CMakeFiles/vans_common.dir/curve.cc.o" "gcc" "src/common/CMakeFiles/vans_common.dir/curve.cc.o.d"
  "/root/repo/src/common/event_queue.cc" "src/common/CMakeFiles/vans_common.dir/event_queue.cc.o" "gcc" "src/common/CMakeFiles/vans_common.dir/event_queue.cc.o.d"
  "/root/repo/src/common/logging.cc" "src/common/CMakeFiles/vans_common.dir/logging.cc.o" "gcc" "src/common/CMakeFiles/vans_common.dir/logging.cc.o.d"
  "/root/repo/src/common/request.cc" "src/common/CMakeFiles/vans_common.dir/request.cc.o" "gcc" "src/common/CMakeFiles/vans_common.dir/request.cc.o.d"
  "/root/repo/src/common/stats.cc" "src/common/CMakeFiles/vans_common.dir/stats.cc.o" "gcc" "src/common/CMakeFiles/vans_common.dir/stats.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
