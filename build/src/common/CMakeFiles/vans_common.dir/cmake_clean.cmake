file(REMOVE_RECURSE
  "CMakeFiles/vans_common.dir/ascii_chart.cc.o"
  "CMakeFiles/vans_common.dir/ascii_chart.cc.o.d"
  "CMakeFiles/vans_common.dir/config.cc.o"
  "CMakeFiles/vans_common.dir/config.cc.o.d"
  "CMakeFiles/vans_common.dir/curve.cc.o"
  "CMakeFiles/vans_common.dir/curve.cc.o.d"
  "CMakeFiles/vans_common.dir/event_queue.cc.o"
  "CMakeFiles/vans_common.dir/event_queue.cc.o.d"
  "CMakeFiles/vans_common.dir/logging.cc.o"
  "CMakeFiles/vans_common.dir/logging.cc.o.d"
  "CMakeFiles/vans_common.dir/request.cc.o"
  "CMakeFiles/vans_common.dir/request.cc.o.d"
  "CMakeFiles/vans_common.dir/stats.cc.o"
  "CMakeFiles/vans_common.dir/stats.cc.o.d"
  "libvans_common.a"
  "libvans_common.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/vans_common.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
