file(REMOVE_RECURSE
  "libvans_common.a"
)
