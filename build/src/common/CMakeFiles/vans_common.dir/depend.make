# Empty dependencies file for vans_common.
# This may be replaced when dependencies are built.
