file(REMOVE_RECURSE
  "CMakeFiles/vans_cpu.dir/core.cc.o"
  "CMakeFiles/vans_cpu.dir/core.cc.o.d"
  "libvans_cpu.a"
  "libvans_cpu.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/vans_cpu.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
