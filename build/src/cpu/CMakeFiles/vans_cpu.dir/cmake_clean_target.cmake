file(REMOVE_RECURSE
  "libvans_cpu.a"
)
