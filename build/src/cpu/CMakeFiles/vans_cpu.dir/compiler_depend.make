# Empty compiler generated dependencies file for vans_cpu.
# This may be replaced when dependencies are built.
