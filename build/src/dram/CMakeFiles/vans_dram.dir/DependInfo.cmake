
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/dram/address_map.cc" "src/dram/CMakeFiles/vans_dram.dir/address_map.cc.o" "gcc" "src/dram/CMakeFiles/vans_dram.dir/address_map.cc.o.d"
  "/root/repo/src/dram/checker.cc" "src/dram/CMakeFiles/vans_dram.dir/checker.cc.o" "gcc" "src/dram/CMakeFiles/vans_dram.dir/checker.cc.o.d"
  "/root/repo/src/dram/command.cc" "src/dram/CMakeFiles/vans_dram.dir/command.cc.o" "gcc" "src/dram/CMakeFiles/vans_dram.dir/command.cc.o.d"
  "/root/repo/src/dram/controller.cc" "src/dram/CMakeFiles/vans_dram.dir/controller.cc.o" "gcc" "src/dram/CMakeFiles/vans_dram.dir/controller.cc.o.d"
  "/root/repo/src/dram/timing.cc" "src/dram/CMakeFiles/vans_dram.dir/timing.cc.o" "gcc" "src/dram/CMakeFiles/vans_dram.dir/timing.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/vans_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
