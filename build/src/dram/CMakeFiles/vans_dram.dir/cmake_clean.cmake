file(REMOVE_RECURSE
  "CMakeFiles/vans_dram.dir/address_map.cc.o"
  "CMakeFiles/vans_dram.dir/address_map.cc.o.d"
  "CMakeFiles/vans_dram.dir/checker.cc.o"
  "CMakeFiles/vans_dram.dir/checker.cc.o.d"
  "CMakeFiles/vans_dram.dir/command.cc.o"
  "CMakeFiles/vans_dram.dir/command.cc.o.d"
  "CMakeFiles/vans_dram.dir/controller.cc.o"
  "CMakeFiles/vans_dram.dir/controller.cc.o.d"
  "CMakeFiles/vans_dram.dir/timing.cc.o"
  "CMakeFiles/vans_dram.dir/timing.cc.o.d"
  "libvans_dram.a"
  "libvans_dram.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/vans_dram.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
