file(REMOVE_RECURSE
  "libvans_dram.a"
)
