# Empty dependencies file for vans_dram.
# This may be replaced when dependencies are built.
