
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/lens/driver.cc" "src/lens/CMakeFiles/vans_lens.dir/driver.cc.o" "gcc" "src/lens/CMakeFiles/vans_lens.dir/driver.cc.o.d"
  "/root/repo/src/lens/microbench.cc" "src/lens/CMakeFiles/vans_lens.dir/microbench.cc.o" "gcc" "src/lens/CMakeFiles/vans_lens.dir/microbench.cc.o.d"
  "/root/repo/src/lens/probers.cc" "src/lens/CMakeFiles/vans_lens.dir/probers.cc.o" "gcc" "src/lens/CMakeFiles/vans_lens.dir/probers.cc.o.d"
  "/root/repo/src/lens/report.cc" "src/lens/CMakeFiles/vans_lens.dir/report.cc.o" "gcc" "src/lens/CMakeFiles/vans_lens.dir/report.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/vans_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
