file(REMOVE_RECURSE
  "CMakeFiles/vans_lens.dir/driver.cc.o"
  "CMakeFiles/vans_lens.dir/driver.cc.o.d"
  "CMakeFiles/vans_lens.dir/microbench.cc.o"
  "CMakeFiles/vans_lens.dir/microbench.cc.o.d"
  "CMakeFiles/vans_lens.dir/probers.cc.o"
  "CMakeFiles/vans_lens.dir/probers.cc.o.d"
  "CMakeFiles/vans_lens.dir/report.cc.o"
  "CMakeFiles/vans_lens.dir/report.cc.o.d"
  "libvans_lens.a"
  "libvans_lens.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/vans_lens.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
