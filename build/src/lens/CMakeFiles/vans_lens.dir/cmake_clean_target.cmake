file(REMOVE_RECURSE
  "libvans_lens.a"
)
