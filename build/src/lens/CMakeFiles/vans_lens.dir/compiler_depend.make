# Empty compiler generated dependencies file for vans_lens.
# This may be replaced when dependencies are built.
