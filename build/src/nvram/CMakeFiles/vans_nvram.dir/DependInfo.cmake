
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/nvram/ait.cc" "src/nvram/CMakeFiles/vans_nvram.dir/ait.cc.o" "gcc" "src/nvram/CMakeFiles/vans_nvram.dir/ait.cc.o.d"
  "/root/repo/src/nvram/dimm.cc" "src/nvram/CMakeFiles/vans_nvram.dir/dimm.cc.o" "gcc" "src/nvram/CMakeFiles/vans_nvram.dir/dimm.cc.o.d"
  "/root/repo/src/nvram/imc.cc" "src/nvram/CMakeFiles/vans_nvram.dir/imc.cc.o" "gcc" "src/nvram/CMakeFiles/vans_nvram.dir/imc.cc.o.d"
  "/root/repo/src/nvram/lsq.cc" "src/nvram/CMakeFiles/vans_nvram.dir/lsq.cc.o" "gcc" "src/nvram/CMakeFiles/vans_nvram.dir/lsq.cc.o.d"
  "/root/repo/src/nvram/media.cc" "src/nvram/CMakeFiles/vans_nvram.dir/media.cc.o" "gcc" "src/nvram/CMakeFiles/vans_nvram.dir/media.cc.o.d"
  "/root/repo/src/nvram/nvram_config.cc" "src/nvram/CMakeFiles/vans_nvram.dir/nvram_config.cc.o" "gcc" "src/nvram/CMakeFiles/vans_nvram.dir/nvram_config.cc.o.d"
  "/root/repo/src/nvram/rmw_buffer.cc" "src/nvram/CMakeFiles/vans_nvram.dir/rmw_buffer.cc.o" "gcc" "src/nvram/CMakeFiles/vans_nvram.dir/rmw_buffer.cc.o.d"
  "/root/repo/src/nvram/vans_system.cc" "src/nvram/CMakeFiles/vans_nvram.dir/vans_system.cc.o" "gcc" "src/nvram/CMakeFiles/vans_nvram.dir/vans_system.cc.o.d"
  "/root/repo/src/nvram/wear_leveler.cc" "src/nvram/CMakeFiles/vans_nvram.dir/wear_leveler.cc.o" "gcc" "src/nvram/CMakeFiles/vans_nvram.dir/wear_leveler.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/vans_common.dir/DependInfo.cmake"
  "/root/repo/build/src/dram/CMakeFiles/vans_dram.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
