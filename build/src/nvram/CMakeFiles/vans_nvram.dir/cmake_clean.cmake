file(REMOVE_RECURSE
  "CMakeFiles/vans_nvram.dir/ait.cc.o"
  "CMakeFiles/vans_nvram.dir/ait.cc.o.d"
  "CMakeFiles/vans_nvram.dir/dimm.cc.o"
  "CMakeFiles/vans_nvram.dir/dimm.cc.o.d"
  "CMakeFiles/vans_nvram.dir/imc.cc.o"
  "CMakeFiles/vans_nvram.dir/imc.cc.o.d"
  "CMakeFiles/vans_nvram.dir/lsq.cc.o"
  "CMakeFiles/vans_nvram.dir/lsq.cc.o.d"
  "CMakeFiles/vans_nvram.dir/media.cc.o"
  "CMakeFiles/vans_nvram.dir/media.cc.o.d"
  "CMakeFiles/vans_nvram.dir/nvram_config.cc.o"
  "CMakeFiles/vans_nvram.dir/nvram_config.cc.o.d"
  "CMakeFiles/vans_nvram.dir/rmw_buffer.cc.o"
  "CMakeFiles/vans_nvram.dir/rmw_buffer.cc.o.d"
  "CMakeFiles/vans_nvram.dir/vans_system.cc.o"
  "CMakeFiles/vans_nvram.dir/vans_system.cc.o.d"
  "CMakeFiles/vans_nvram.dir/wear_leveler.cc.o"
  "CMakeFiles/vans_nvram.dir/wear_leveler.cc.o.d"
  "libvans_nvram.a"
  "libvans_nvram.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/vans_nvram.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
