file(REMOVE_RECURSE
  "libvans_nvram.a"
)
