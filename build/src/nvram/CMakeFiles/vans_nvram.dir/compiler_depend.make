# Empty compiler generated dependencies file for vans_nvram.
# This may be replaced when dependencies are built.
