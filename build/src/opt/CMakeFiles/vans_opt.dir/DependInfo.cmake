
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/opt/lazy_cache.cc" "src/opt/CMakeFiles/vans_opt.dir/lazy_cache.cc.o" "gcc" "src/opt/CMakeFiles/vans_opt.dir/lazy_cache.cc.o.d"
  "/root/repo/src/opt/pretranslation.cc" "src/opt/CMakeFiles/vans_opt.dir/pretranslation.cc.o" "gcc" "src/opt/CMakeFiles/vans_opt.dir/pretranslation.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/vans_common.dir/DependInfo.cmake"
  "/root/repo/build/src/nvram/CMakeFiles/vans_nvram.dir/DependInfo.cmake"
  "/root/repo/build/src/cache/CMakeFiles/vans_cache.dir/DependInfo.cmake"
  "/root/repo/build/src/dram/CMakeFiles/vans_dram.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
