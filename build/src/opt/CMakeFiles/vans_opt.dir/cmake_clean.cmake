file(REMOVE_RECURSE
  "CMakeFiles/vans_opt.dir/lazy_cache.cc.o"
  "CMakeFiles/vans_opt.dir/lazy_cache.cc.o.d"
  "CMakeFiles/vans_opt.dir/pretranslation.cc.o"
  "CMakeFiles/vans_opt.dir/pretranslation.cc.o.d"
  "libvans_opt.a"
  "libvans_opt.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/vans_opt.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
