file(REMOVE_RECURSE
  "libvans_opt.a"
)
