# Empty compiler generated dependencies file for vans_opt.
# This may be replaced when dependencies are built.
