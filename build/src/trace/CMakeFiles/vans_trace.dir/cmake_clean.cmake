file(REMOVE_RECURSE
  "CMakeFiles/vans_trace.dir/trace.cc.o"
  "CMakeFiles/vans_trace.dir/trace.cc.o.d"
  "libvans_trace.a"
  "libvans_trace.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/vans_trace.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
