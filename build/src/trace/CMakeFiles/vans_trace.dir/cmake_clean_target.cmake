file(REMOVE_RECURSE
  "libvans_trace.a"
)
