# Empty dependencies file for vans_trace.
# This may be replaced when dependencies are built.
