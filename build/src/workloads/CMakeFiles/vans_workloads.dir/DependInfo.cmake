
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/workloads/cloud.cc" "src/workloads/CMakeFiles/vans_workloads.dir/cloud.cc.o" "gcc" "src/workloads/CMakeFiles/vans_workloads.dir/cloud.cc.o.d"
  "/root/repo/src/workloads/spec_synth.cc" "src/workloads/CMakeFiles/vans_workloads.dir/spec_synth.cc.o" "gcc" "src/workloads/CMakeFiles/vans_workloads.dir/spec_synth.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/vans_common.dir/DependInfo.cmake"
  "/root/repo/build/src/trace/CMakeFiles/vans_trace.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
