file(REMOVE_RECURSE
  "CMakeFiles/vans_workloads.dir/cloud.cc.o"
  "CMakeFiles/vans_workloads.dir/cloud.cc.o.d"
  "CMakeFiles/vans_workloads.dir/spec_synth.cc.o"
  "CMakeFiles/vans_workloads.dir/spec_synth.cc.o.d"
  "libvans_workloads.a"
  "libvans_workloads.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/vans_workloads.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
