file(REMOVE_RECURSE
  "libvans_workloads.a"
)
