# Empty dependencies file for vans_workloads.
# This may be replaced when dependencies are built.
