file(REMOVE_RECURSE
  "CMakeFiles/vans_tests.dir/test_baselines_opt.cc.o"
  "CMakeFiles/vans_tests.dir/test_baselines_opt.cc.o.d"
  "CMakeFiles/vans_tests.dir/test_cache_cpu.cc.o"
  "CMakeFiles/vans_tests.dir/test_cache_cpu.cc.o.d"
  "CMakeFiles/vans_tests.dir/test_common.cc.o"
  "CMakeFiles/vans_tests.dir/test_common.cc.o.d"
  "CMakeFiles/vans_tests.dir/test_dram.cc.o"
  "CMakeFiles/vans_tests.dir/test_dram.cc.o.d"
  "CMakeFiles/vans_tests.dir/test_lens_recovery.cc.o"
  "CMakeFiles/vans_tests.dir/test_lens_recovery.cc.o.d"
  "CMakeFiles/vans_tests.dir/test_nvram.cc.o"
  "CMakeFiles/vans_tests.dir/test_nvram.cc.o.d"
  "vans_tests"
  "vans_tests.pdb"
  "vans_tests[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/vans_tests.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
