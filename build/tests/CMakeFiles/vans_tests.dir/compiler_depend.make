# Empty compiler generated dependencies file for vans_tests.
# This may be replaced when dependencies are built.
