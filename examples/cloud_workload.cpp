/**
 * @file
 * Example: run a cloud workload (Redis-style key-value serving) on
 * VANS through the cache hierarchy + core model, then turn on the
 * paper's two architectural optimizations and compare -- the
 * section V case study as a ten-line user program.
 */

#include <cstdio>

#include "common/logging.hh"
#include "cache/hierarchy.hh"
#include "common/event_queue.hh"
#include "cpu/core.hh"
#include "nvram/vans_system.hh"
#include "opt/lazy_cache.hh"
#include "opt/pretranslation.hh"
#include "workloads/cloud.hh"

using namespace vans;

namespace
{

void
run(const char *label, bool lazy_on, bool pretrans_on)
{
    nvram::NvramConfig cfg = nvram::NvramConfig::optaneDefault();
    cfg.wearThreshold = 1000; // Busy store: wear-leveling active.
    EventQueue eq;
    nvram::VansSystem sys(eq, cfg);
    cache::Hierarchy caches;
    cpu::CpuCore core(sys, caches);

    opt::LazyCache lazy;
    if (lazy_on)
        lazy.attach(sys.dimm(0));
    opt::PreTranslation pt;
    if (pretrans_on)
        pt.attach(core);

    workloads::CloudParams p;
    p.operations = 6000;
    p.footprintBytes = 256 << 20;
    p.preTranslationHints = true;
    auto insts = workloads::redisTrace(p);
    trace::VectorTraceSource src(std::move(insts));
    auto st = core.run(src, 1u << 30);

    std::printf("%-22s  time %8.1f us   IPC %5.2f   LLC MPKI %6.1f"
                "   TLB MPKI %6.1f   migrations %llu\n",
                label, ticksToNs(st.elapsed) / 1000.0, st.ipc,
                st.llcMpki, st.tlbMpki,
                static_cast<unsigned long long>(
                    sys.totalMigrations()));
}

} // namespace

int
main()
{
    setQuiet(true);
    std::printf("Redis-style serving on VANS, 6000 operations\n\n");
    run("baseline", false, false);
    run("+ lazy cache", true, false);
    run("+ pre-translation", false, true);
    run("+ both", true, true);
    std::printf("\n(see bench_fig13_optimizations for the full "
                "six-workload study)\n");
    return 0;
}
