/**
 * @file
 * Example: design-space exploration with VANS's modular config --
 * "users can reconfigure VANS based on new parameters" (paper
 * section IV-E).
 *
 * Sweeps the RMW-buffer capacity and the media write latency and
 * reports how the pointer-chasing latency curve and sustained write
 * bandwidth respond, loading overrides from an INI config when one
 * is given.
 *
 * Usage: design_space [config.ini]
 */

#include <cstdio>

#include "common/logging.hh"
#include "common/ascii_chart.hh"
#include "common/config.hh"
#include "common/curve.hh"
#include "common/event_queue.hh"
#include "lens/driver.hh"
#include "lens/microbench.hh"
#include "nvram/vans_system.hh"

using namespace vans;

namespace
{

void
evaluate(const nvram::NvramConfig &cfg, const std::string &label)
{
    EventQueue eq;
    nvram::VansSystem sys(eq, cfg, label);
    lens::Driver drv(sys);

    // Read latency at three working-set sizes.
    double lat[3];
    std::uint64_t regions[3] = {8u << 10, 1u << 20, 64u << 20};
    for (int i = 0; i < 3; ++i) {
        lens::PtrChaseParams pc;
        pc.regionBytes = regions[i];
        pc.warmupLines = 5000;
        pc.measureLines = 2000;
        lat[i] = lens::ptrChase(drv, pc).nsPerLine;
    }
    // Sequential write bandwidth.
    std::vector<Addr> addrs;
    for (Addr a = 0; a < (1 << 20); a += 64)
        addrs.push_back(a);
    Tick t = drv.streamWrites(addrs, 16, 3.0);
    drv.fence();
    double wr_gbps = static_cast<double>(addrs.size()) * 64 /
                     (ticksToNs(t) * 1e-9) / 1e9;

    std::printf("%-26s  ld8K %5.0f ns   ld1M %5.0f ns   ld64M %5.0f "
                "ns   seq-wr %4.2f GB/s\n",
                label.c_str(), lat[0], lat[1], lat[2], wr_gbps);
}

} // namespace

int
main(int argc, char **argv)
{
    setQuiet(true);

    if (argc > 1) {
        auto file = Config::fromFile(argv[1]);
        auto cfg = nvram::NvramConfig::fromConfig(file);
        std::printf("Evaluating config '%s'\n\n", argv[1]);
        evaluate(cfg, "custom");
        return 0;
    }

    std::printf("VANS design-space sweep\n\n");
    std::printf("RMW-buffer capacity:\n");
    for (unsigned entries : {16u, 64u, 256u}) {
        nvram::NvramConfig cfg = nvram::NvramConfig::optaneDefault();
        cfg.rmwEntries = entries;
        evaluate(cfg, "  rmw=" + formatSize(entries * 256));
    }
    std::printf("\nmedia write latency:\n");
    for (double wr : {250.0, 500.0, 1000.0}) {
        nvram::NvramConfig cfg = nvram::NvramConfig::optaneDefault();
        cfg.mediaWriteNs = wr;
        evaluate(cfg, "  mediaWr=" + fmtDouble(wr, 0) + "ns");
    }
    std::printf("\n(pass an INI file with an [nvram] section to "
                "evaluate your own design)\n");
    return 0;
}
