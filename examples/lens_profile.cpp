/**
 * @file
 * Example: profile an *unknown* NVRAM DIMM with LENS.
 *
 * Builds a memory system whose parameters differ from the Optane
 * defaults (as a stand-in for "some other vendor's NVRAM DIMM"),
 * then runs the full LENS prober suite against it as a black box
 * and prints the reverse-engineered architecture report -- the
 * workflow paper section IV-E prescribes for adapting VANS to new
 * devices.
 */

#include <cstdio>

#include "common/logging.hh"
#include "common/event_queue.hh"
#include "lens/report.hh"
#include "nvram/vans_system.hh"

using namespace vans;

int
main()
{
    setQuiet(true);

    // The "mystery" DIMM: 32KB SRAM buffer, 8MB DRAM buffer, slower
    // media, 2KB interleaving, more aggressive wear-leveling.
    nvram::NvramConfig mystery = nvram::NvramConfig::optaneDefault();
    mystery.rmwEntries = 128;     // 32KB.
    mystery.aitBufEntries = 2048; // 8MB.
    mystery.mediaReadNs = 220;
    mystery.wearThreshold = 3000;

    EventQueue eq;
    nvram::VansSystem mem(eq, mystery, "mystery-nvdimm");
    lens::Driver drv(mem);

    std::printf("Profiling '%s' with LENS (black box)...\n\n",
                mem.name().c_str());

    lens::LensParams params;
    params.buffer.maxRegion = 64ull << 20;
    params.buffer.warmupLines = 8000;
    params.buffer.measureLines = 2500;
    params.policy.overwriteIterations = 10000;
    params.policy.tailRegions = {256, 4096, 65536, 262144};
    params.policy.tailSweepBytes = 4ull << 20;

    auto report = lens::runLens(drv, params);
    std::printf("%s\n", report.summary().c_str());

    std::printf("ground truth we planted:\n");
    std::printf("  RMW buffer: %s, AIT buffer: %s\n",
                formatSize(mystery.rmwEntries *
                           mystery.rmwLineBytes)
                    .c_str(),
                formatSize(static_cast<std::uint64_t>(
                               mystery.aitBufEntries) *
                           mystery.aitLineBytes)
                    .c_str());
    std::printf("  wear threshold: %llu writes, migration %.0fus\n",
                static_cast<unsigned long long>(
                    mystery.wearThreshold),
                mystery.migrationUs);
    return 0;
}
