/**
 * @file
 * Quickstart: build a VANS Optane-style memory system, run a LENS
 * pointer-chasing sweep against it, and print the latency curves
 * with their detected buffer capacities.
 *
 * This is the 60-second tour of the whole repo: the simulator
 * (src/nvram), the profiler (src/lens), and the analysis (common
 * curve tools) in one sitting.
 */

#include <cstdio>

#include "common/ascii_chart.hh"
#include "common/curve.hh"
#include "common/event_queue.hh"
#include "lens/driver.hh"
#include "lens/microbench.hh"
#include "nvram/vans_system.hh"

using namespace vans;

int
main()
{
    EventQueue eq;
    nvram::NvramConfig cfg = nvram::NvramConfig::optaneDefault();
    nvram::VansSystem mem(eq, cfg);
    lens::Driver drv(mem);

    std::printf("VANS quickstart: pointer-chasing latency sweep\n");
    std::printf("DIMM: %u, capacity %s, RMW %s, AIT buffer %s\n\n",
                cfg.numDimms,
                formatSize(cfg.dimmCapacity).c_str(),
                formatSize(cfg.rmwEntries * cfg.rmwLineBytes).c_str(),
                formatSize(static_cast<std::uint64_t>(
                               cfg.aitBufEntries) *
                           cfg.aitLineBytes)
                    .c_str());

    Curve ld("load ns/CL");
    Curve st("store ns/CL");
    for (std::uint64_t region : logSweep(64, 256ull << 20, 4)) {
        lens::PtrChaseParams pc;
        pc.regionBytes = region;
        pc.blockBytes = 64;
        pc.warmupLines = 6000;
        pc.measureLines = 4000;
        pc.seed = region;
        auto r = lens::ptrChase(drv, pc);
        ld.add(static_cast<double>(region), r.nsPerLine);

        pc.writeMode = true;
        auto w = lens::ptrChase(drv, pc);
        st.add(static_cast<double>(region), w.nsPerLine);
        drv.fence();

        std::printf("  region %8s   load %7.1f ns/CL   store %7.1f "
                    "ns/CL\n",
                    formatSize(region).c_str(), r.nsPerLine,
                    w.nsPerLine);
    }

    std::printf("\n%s\n", asciiChart({ld, st}).c_str());

    auto rd_infl = ld.findInflections(0.22);
    auto wr_infl = st.findInflections(0.22);
    std::printf("read buffer capacities (inflections): ");
    for (double x : rd_infl)
        std::printf("%s ",
                    formatSize(static_cast<std::uint64_t>(x)).c_str());
    std::printf("\nwrite queue capacities (inflections): ");
    for (double x : wr_infl)
        std::printf("%s ",
                    formatSize(static_cast<std::uint64_t>(x)).c_str());
    std::printf("\n");
    return 0;
}
