/**
 * @file
 * Example: trace-mode simulation (paper section IV-C).
 *
 * Generates an instruction trace from a workload model, writes it to
 * a text file, reads it back, and replays it through VANS -- the
 * same "catch memory traces ... feed them into VANS" flow the paper
 * uses for validation without gem5.
 *
 * Usage: trace_replay [trace-file]
 *   With an argument, replays an existing trace file instead of
 *   generating one.
 */

#include <cstdio>

#include "common/logging.hh"
#include "cache/hierarchy.hh"
#include "common/event_queue.hh"
#include "cpu/core.hh"
#include "nvram/vans_system.hh"
#include "trace/trace.hh"
#include "workloads/cloud.hh"

using namespace vans;

int
main(int argc, char **argv)
{
    setQuiet(true);
    std::string path = "/tmp/vans_example_trace.txt";

    if (argc > 1) {
        path = argv[1];
        std::printf("Replaying user trace '%s'\n", path.c_str());
    } else {
        // Generate a HashMap-style persistent-memory trace.
        workloads::CloudParams p;
        p.operations = 3000;
        p.footprintBytes = 128 << 20;
        auto insts = workloads::hashMapTrace(p);
        trace::writeTraceFile(path, insts);
        std::printf("Generated %zu-record HashMap trace -> %s\n",
                    insts.size(), path.c_str());
    }

    auto insts = trace::readTraceFile(path);
    std::printf("Loaded %zu records; replaying on VANS...\n\n",
                insts.size());

    EventQueue eq;
    nvram::VansSystem sys(eq, nvram::NvramConfig::optaneDefault());
    cache::Hierarchy caches;
    cpu::CpuCore core(sys, caches);
    trace::VectorTraceSource src(std::move(insts));
    auto st = core.run(src, 1u << 30);

    std::printf("instructions : %llu\n",
                static_cast<unsigned long long>(st.instructions));
    std::printf("sim time     : %.1f us\n",
                ticksToNs(st.elapsed) / 1000.0);
    std::printf("IPC          : %.2f\n", st.ipc);
    std::printf("LLC MPKI     : %.1f\n", st.llcMpki);
    std::printf("TLB MPKI     : %.1f\n", st.tlbMpki);
    std::printf("media writes : %llu\n",
                static_cast<unsigned long long>(
                    sys.totalMediaWrites()));
    std::printf("RMW fills    : %llu\n",
                static_cast<unsigned long long>(
                    sys.totalRmwFills()));
    return 0;
}
