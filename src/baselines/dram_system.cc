#include "baselines/dram_system.hh"

namespace vans::baselines
{

DramMainMemory::DramMainMemory(EventQueue &eq,
                               const DramSystemParams &params,
                               std::string name)
    : MemorySystem(eq),
      p(params),
      sysName(std::move(name)),
      ctrl(eq, params.timing, params.geometry,
           dram::SchedPolicy::FRFCFS, dram::MapScheme::RowBankCol,
           sysName + ".ctrl"),
      statGroup(sysName)
{}

DramSystemParams
DramMainMemory::ddr4Params(std::uint64_t capacity)
{
    DramSystemParams p;
    p.timing = dram::DramTiming::ddr4_2666();
    p.geometry.capacityBytes = capacity;
    return p;
}

DramSystemParams
DramMainMemory::ddr3Params(std::uint64_t capacity)
{
    DramSystemParams p;
    p.timing = dram::DramTiming::ddr3_1600();
    p.geometry.capacityBytes = capacity;
    return p;
}

void
DramMainMemory::issue(RequestHandle h)
{
    Request &req = reqPool.get(h);
    req.id = nextRequestId();
    req.issueTick = eventq.curTick();
    switch (req.op) {
      case MemOp::Read:
      case MemOp::ReadNT:
        statGroup.scalar("reads").inc();
        if (readsInFlight >= p.maxReads) {
            readWaiting.push_back(h);
            return;
        }
        startRead(h);
        break;
      case MemOp::Write:
      case MemOp::WriteNT:
      case MemOp::Clwb:
      case MemOp::Clflushopt:
        statGroup.scalar("writes").inc();
        if (writesInFlight >= p.maxWrites) {
            writeWaiting.push_back(h);
            return;
        }
        startWrite(h);
        break;
      case MemOp::Fence:
      case MemOp::Sfence:
        // DRAM baselines have no ADR boundary: an sfence degenerates
        // to the full write-drain fence.
        pendingFences.push_back(h);
        checkFences();
        break;
    }
}

void
DramMainMemory::startRead(RequestHandle h)
{
    ++readsInFlight;
    Tick now = eventq.curTick();
    Tick front = nsToTicks(p.frontNs + p.extraReadNs);
    // Bandwidth throttle: accesses may not start closer together
    // than the configured spacing.
    Tick start = std::max(now + front, nextReadSlot);
    if (p.minReadSpacingNs > 0)
        nextReadSlot = start + nsToTicks(p.minReadSpacingNs);

    eventq.schedule(start, [this, h] {
        Request &r = reqPool.get(h);
        ctrl.access(r.addr, false, r.size, [this, h](Tick t) {
            Tick done = t + nsToTicks(p.frontNs);
            eventq.schedule(done, [this, h, done] {
                // complete() may release the handle; the request is
                // not touched after it.
                reqPool.get(h).complete(done);
                --readsInFlight;
                if (!readWaiting.empty()) {
                    RequestHandle next = readWaiting.front();
                    readWaiting.pop_front();
                    startRead(next);
                }
            });
        });
    });
}

void
DramMainMemory::startWrite(RequestHandle h)
{
    ++writesInFlight;
    Tick now = eventq.curTick();
    Tick front = nsToTicks(p.frontNs + p.extraWriteNs);
    bool throttle = p.minWriteSpacingNs > 0 &&
                    (!p.throttleNtWritesOnly ||
                     reqPool.get(h).op == MemOp::WriteNT);
    Tick start = now + front;
    if (throttle) {
        start = std::max(start, nextWriteSlot);
        nextWriteSlot = start + nsToTicks(p.minWriteSpacingNs);
    }

    eventq.schedule(start, [this, h, start] {
        // Posted write: the issuer unblocks at controller
        // acceptance; the data movement continues underneath. The
        // address and size are read out *before* complete() --
        // completion hands ownership back to the issuer, who may
        // release (and recycle) the slot immediately.
        Request &r = reqPool.get(h);
        Addr addr = r.addr;
        std::uint32_t size = r.size;
        r.complete(start);
        ctrl.access(addr, true, size, [this](Tick) {
            --writesInFlight;
            checkFences();
            if (!writeWaiting.empty()) {
                RequestHandle next = writeWaiting.front();
                writeWaiting.pop_front();
                startWrite(next);
            }
        });
    });
}

void
DramMainMemory::checkFences()
{
    if (pendingFences.empty())
        return;
    if (writesInFlight == 0 && writeWaiting.empty()) {
        Tick now = eventq.curTick();
        for (RequestHandle f : pendingFences)
            reqPool.get(f).complete(now);
        pendingFences.clear();
    }
}

PmepSystem::PmepSystem(EventQueue &eq, std::uint64_t capacity,
                       std::string name)
    : DramMainMemory(eq, pmepParams(capacity), std::move(name))
{}

DramSystemParams
PmepSystem::pmepParams(std::uint64_t capacity)
{
    DramSystemParams p = DramMainMemory::ddr4Params(capacity);
    // PMEP: stall the CPU extra cycles per access and throttle
    // bandwidth. The emulated NVRAM "latency" knob was typically set
    // to ~2x DRAM; the bandwidth throttle penalises every store
    // equally -- which is why PMEP orders store >= store-nt while
    // real Optane is the other way around (Fig 1a).
    p.extraReadNs = 65;
    p.extraWriteNs = 40;
    p.minReadSpacingNs = 10;  // ~6.4 GB/s cap.
    p.minWriteSpacingNs = 32; // ~2 GB/s: NT stores throttled hard,
                              // which is the Fig 1a inversion -- the
                              // emulator prices NT stores *below*
                              // its loads and cached stores.
    p.throttleNtWritesOnly = true;
    return p;
}

PcmSystem::PcmSystem(EventQueue &eq, std::uint64_t capacity,
                     std::string name)
    : DramMainMemory(eq, pcmParams(capacity), std::move(name))
{}

DramSystemParams
PcmSystem::pcmParams(std::uint64_t capacity)
{
    DramSystemParams p;
    p.timing = dram::DramTiming::pcmLike();
    p.geometry.capacityBytes = capacity;
    return p;
}

} // namespace vans::baselines
