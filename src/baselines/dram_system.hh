/**
 * @file
 * DRAM-backed baseline memory systems.
 *
 * These reimplement the modelling *assumptions* of the tools the
 * paper compares against (sections II-B and II-C): that NVRAM is a
 * slower DRAM.
 *
 *  - DramMainMemory: a plain DDR4/DDR3 main memory (the DRAMSim2 /
 *    Ramulator-DDR baselines of Fig 3a, and the DRAM side of the
 *    Fig 11 speedup studies).
 *  - PmepSystem: the PMEP emulation model -- DRAM timing plus fixed
 *    injected latency per load/store and a bandwidth throttle
 *    (paper: "stalling the CPU for additional cycles ... and
 *    throttling bandwidth").
 *  - PcmSystem: the Ramulator-PCM model -- the DRAM protocol with
 *    stretched array timings and no refresh.
 *
 * None of them has on-DIMM buffers, so their pointer-chasing curves
 * are flat -- exactly the discrepancy Figs 1 and 3 demonstrate.
 */

#ifndef VANS_BASELINES_DRAM_SYSTEM_HH
#define VANS_BASELINES_DRAM_SYSTEM_HH

#include <deque>
#include <memory>
#include <string>

#include "common/mem_system.hh"
#include "common/stats.hh"
#include "dram/controller.hh"

namespace vans::baselines
{

/** Parameters shared by every DRAM-backed baseline. */
struct DramSystemParams
{
    dram::DramTiming timing = dram::DramTiming::ddr4_2666();
    dram::DramGeometry geometry;
    /** Core->iMC->core overhead, one way (ns). */
    double frontNs = 40;
    /** Injected extra latency per read/write (PMEP knob). */
    double extraReadNs = 0;
    double extraWriteNs = 0;
    /**
     * Minimum spacing between accepted accesses (bandwidth
     * throttle; 0 = DRAM-limited). PMEP uses this to emulate lower
     * NVRAM bandwidth; note it throttles NT stores hardest, which
     * is exactly the inversion Fig 1a exposes.
     */
    double minReadSpacingNs = 0;
    double minWriteSpacingNs = 0;
    /** Apply the write throttle to NT stores only (PMEP-style: the
     *  emulator penalises the "NVRAM write" path it models while
     *  cached stores run at DRAM speed -- the Fig 1a blind spot). */
    bool throttleNtWritesOnly = false;
    unsigned maxReads = 32;  ///< RPQ-equivalent MLP bound.
    unsigned maxWrites = 32; ///< Write queue depth.
};

/** A MemorySystem over one DRAM channel controller. */
class DramMainMemory : public MemorySystem
{
  public:
    DramMainMemory(EventQueue &eq, const DramSystemParams &params,
                   std::string name = "dram-main");

    void issue(RequestHandle h) override;
    std::string name() const override { return sysName; }
    std::uint64_t capacity() const override
    {
        return p.geometry.capacityBytes;
    }

    dram::DramController &controller() { return ctrl; }
    StatGroup &stats() { return statGroup; }

    /** DDR4-2666 main memory (Table V DRAM configuration). */
    static DramSystemParams ddr4Params(std::uint64_t capacity =
                                           16ull << 30);

    /** DDR3-1600 main memory (legacy-simulator baseline). */
    static DramSystemParams ddr3Params(std::uint64_t capacity =
                                           16ull << 30);

  private:
    void startRead(RequestHandle h);
    void startWrite(RequestHandle h);
    void checkFences();

    DramSystemParams p;
    std::string sysName;
    dram::DramController ctrl;

    unsigned readsInFlight = 0;
    unsigned writesInFlight = 0;
    std::deque<RequestHandle> readWaiting;
    std::deque<RequestHandle> writeWaiting;
    std::deque<RequestHandle> pendingFences;
    Tick nextReadSlot = 0;
    Tick nextWriteSlot = 0;

    StatGroup statGroup;
};

/** PMEP: DRAM + injected delay + bandwidth throttle (Fig 1). */
class PmepSystem : public DramMainMemory
{
  public:
    PmepSystem(EventQueue &eq, std::uint64_t capacity = 16ull << 30,
               std::string name = "pmep");

    /** The published PMEP-style parameterisation. */
    static DramSystemParams pmepParams(std::uint64_t capacity);
};

/** Ramulator-style PCM: DRAM protocol, stretched timing (Fig 3). */
class PcmSystem : public DramMainMemory
{
  public:
    PcmSystem(EventQueue &eq, std::uint64_t capacity = 16ull << 30,
              std::string name = "ramulator-pcm");

    static DramSystemParams pcmParams(std::uint64_t capacity);
};

} // namespace vans::baselines

#endif // VANS_BASELINES_DRAM_SYSTEM_HH
