#include "cache/cache.hh"

#include <iterator>

#include "common/logging.hh"

namespace vans::cache
{

Cache::Cache(const CacheParams &params)
    : p(params), statGroup(params.name)
{
    std::uint64_t lines = p.sizeBytes / p.lineBytes;
    if (lines % p.ways != 0)
        fatal("cache %s: size/ways mismatch", p.name.c_str());
    numSets = static_cast<unsigned>(lines / p.ways);
    if (!isPowerOf2(numSets))
        fatal("cache %s: set count must be a power of two",
              p.name.c_str());
    sets.resize(numSets);
    for (auto &s : sets) {
        s.lines.resize(p.ways);
        for (unsigned w = 0; w < p.ways; ++w)
            s.lruOrder.push_back(w);
    }
}

std::uint64_t
Cache::setIndex(Addr addr) const
{
    return (addr / p.lineBytes) & (numSets - 1);
}

Addr
Cache::tagOf(Addr addr) const
{
    return (addr / p.lineBytes) >> log2i(numSets);
}

CacheAccessResult
Cache::access(Addr addr, bool write)
{
    CacheAccessResult res;
    Set &set = sets[setIndex(addr)];
    Addr tag = tagOf(addr);

    for (auto it = set.lruOrder.begin(); it != set.lruOrder.end();
         ++it) {
        Line &l = set.lines[*it];
        if (l.valid && l.tag == tag) {
            res.hit = true;
            l.dirty = l.dirty || write;
            set.lruOrder.splice(set.lruOrder.begin(), set.lruOrder,
                                it);
            statGroup.scalar("hits").inc();
            return res;
        }
    }

    statGroup.scalar("misses").inc();
    // Fill into an invalid way when one exists (a clflushopt'd line
    // leaves a free slot behind); only a full set evicts the LRU way.
    auto victim_it = std::prev(set.lruOrder.end());
    for (auto it = set.lruOrder.begin(); it != set.lruOrder.end();
         ++it) {
        if (!set.lines[*it].valid) {
            victim_it = it;
            break;
        }
    }
    unsigned victim = *victim_it;
    set.lruOrder.erase(victim_it);
    Line &l = set.lines[victim];
    if (l.valid && l.dirty) {
        res.writeback = true;
        // Reconstruct the victim address.
        res.writebackAddr =
            ((l.tag << log2i(numSets)) | setIndex(addr)) * p.lineBytes;
        statGroup.scalar("writebacks").inc();
    }
    l.valid = true;
    l.dirty = write;
    l.tag = tag;
    set.lruOrder.push_front(victim);
    return res;
}

bool
Cache::contains(Addr addr) const
{
    const Set &set = sets[setIndex(addr)];
    Addr tag = tagOf(addr);
    for (const Line &l : set.lines) {
        if (l.valid && l.tag == tag)
            return true;
    }
    return false;
}

bool
Cache::invalidate(Addr addr)
{
    Set &set = sets[setIndex(addr)];
    Addr tag = tagOf(addr);
    for (Line &l : set.lines) {
        if (l.valid && l.tag == tag) {
            bool was_dirty = l.dirty;
            l.valid = false;
            l.dirty = false;
            return was_dirty;
        }
    }
    return false;
}

bool
Cache::clean(Addr addr)
{
    Set &set = sets[setIndex(addr)];
    Addr tag = tagOf(addr);
    for (Line &l : set.lines) {
        if (l.valid && l.tag == tag && l.dirty) {
            l.dirty = false;
            return true;
        }
    }
    return false;
}

double
Cache::missRate() const
{
    double h = static_cast<double>(statGroup.scalarValue("hits"));
    double m = static_cast<double>(statGroup.scalarValue("misses"));
    return (h + m) > 0 ? m / (h + m) : 0;
}

} // namespace vans::cache
