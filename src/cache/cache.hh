/**
 * @file
 * Set-associative cache model (functional hits/misses + LRU + dirty
 * eviction tracking).
 *
 * The caches are functional: they answer hit/miss and produce victim
 * writebacks; the CPU core charges the per-level latencies and
 * drives memory for misses. That split keeps the cache model simple
 * while still producing the quantities the paper's full-system
 * experiments need -- LLC MPKI (Table IV / Fig 11b), the read-miss
 * attribution of Fig 12a, and the writeback traffic that reaches the
 * NVRAM write path.
 */

#ifndef VANS_CACHE_CACHE_HH
#define VANS_CACHE_CACHE_HH

#include <cstdint>
#include <list>
#include <string>
#include <unordered_map>
#include <vector>

#include "common/stats.hh"
#include "common/types.hh"

namespace vans::cache
{

/** Geometry and latency of one cache level. */
struct CacheParams
{
    std::string name = "cache";
    std::uint64_t sizeBytes = 32 << 10;
    unsigned ways = 8;
    std::uint32_t lineBytes = 64;
    double hitLatencyNs = 1.5;
};

/** Result of one cache access. */
struct CacheAccessResult
{
    bool hit = false;
    bool writeback = false; ///< A dirty victim was evicted.
    Addr writebackAddr = 0;
};

/** One set-associative write-back cache level. */
class Cache
{
  public:
    explicit Cache(const CacheParams &params);

    /**
     * Access @p addr; on miss the line is filled (possibly evicting
     * a dirty victim, reported in the result). @p write marks the
     * line dirty.
     */
    CacheAccessResult access(Addr addr, bool write);

    /** Probe without side effects. */
    bool contains(Addr addr) const;

    /** Invalidate a line if present. @return true if it was dirty. */
    bool invalidate(Addr addr);

    /** Flush a line (clwb): clears dirty, keeps the line. @return
     *  true if it was dirty (a writeback is due). */
    bool clean(Addr addr);

    const CacheParams &params() const { return p; }
    StatGroup &stats() { return statGroup; }

    double missRate() const;

  private:
    struct Line
    {
        Addr tag = 0;
        bool valid = false;
        bool dirty = false;
    };

    struct Set
    {
        std::vector<Line> lines;
        std::list<unsigned> lruOrder; ///< Front = most recent way.
    };

    std::uint64_t setIndex(Addr addr) const;
    Addr tagOf(Addr addr) const;

    CacheParams p;
    unsigned numSets;
    std::vector<Set> sets;
    StatGroup statGroup;
};

} // namespace vans::cache

#endif // VANS_CACHE_CACHE_HH
