#include "cache/hierarchy.hh"

namespace vans::cache
{

Hierarchy::Hierarchy(const HierarchyParams &params)
    : p(params),
      l1Cache(params.l1),
      l2Cache(params.l2),
      l3Cache(params.l3),
      tlbUnit(params.tlb)
{}

HierarchyResult
Hierarchy::access(Addr addr, bool write)
{
    HierarchyResult r;
    r.tlb = tlbUnit.access(addr);

    auto a1 = l1Cache.access(addr, write);
    r.chargeNs += p.l1.hitLatencyNs;
    if (a1.hit) {
        r.hitLevel = 1;
        return r;
    }

    auto a2 = l2Cache.access(addr, false);
    r.chargeNs += p.l2.hitLatencyNs;
    if (a2.hit) {
        r.hitLevel = 2;
        if (a1.writeback)
            l2Cache.access(a1.writebackAddr, true);
        return r;
    }

    auto a3 = l3Cache.access(addr, false);
    r.chargeNs += p.l3.hitLatencyNs;
    // Victim writebacks cascade: L1 dirty victims land in L2, L2
    // victims in L3, and dirty L3 victims head to memory.
    if (a1.writeback)
        l2Cache.access(a1.writebackAddr, true);
    if (a2.writeback)
        l3Cache.access(a2.writebackAddr, true);
    if (a3.hit) {
        r.hitLevel = 3;
        return r;
    }

    r.llcMiss = true;
    if (a3.writeback) {
        r.l3Writeback = true;
        r.writebackAddr = a3.writebackAddr;
    }
    return r;
}

bool
Hierarchy::clean(Addr addr)
{
    bool dirty = l1Cache.clean(addr);
    dirty = l2Cache.clean(addr) || dirty;
    dirty = l3Cache.clean(addr) || dirty;
    return dirty;
}

bool
Hierarchy::invalidate(Addr addr)
{
    bool dirty = l1Cache.invalidate(addr);
    dirty = l2Cache.invalidate(addr) || dirty;
    dirty = l3Cache.invalidate(addr) || dirty;
    return dirty;
}

} // namespace vans::cache
