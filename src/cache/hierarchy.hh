/**
 * @file
 * Three-level cache hierarchy + TLB bundle with the Table V
 * configuration as defaults, shared by the CPU core model and the
 * TLB-tracking experiments (Figs 5d and 7d).
 */

#ifndef VANS_CACHE_HIERARCHY_HH
#define VANS_CACHE_HIERARCHY_HH

#include <memory>

#include "cache/cache.hh"
#include "cache/tlb.hh"

namespace vans::cache
{

/** Parameters for the whole hierarchy (Table V defaults). */
struct HierarchyParams
{
    CacheParams l1{"l1d", 32 << 10, 8, 64, 1.5};
    CacheParams l2{"l2", 1 << 20, 16, 64, 5.0};
    CacheParams l3{"llc", 32 << 20, 16, 64, 16.0};
    TlbParams tlb{};
};

/** Result of a full hierarchy access. */
struct HierarchyResult
{
    unsigned hitLevel = 0; ///< 1..3, or 0 = LLC miss (memory).
    bool llcMiss = false;
    bool l3Writeback = false; ///< Dirty line left the LLC.
    Addr writebackAddr = 0;
    TlbResult tlb;
    double chargeNs = 0; ///< Cache lookup latency to charge.
};

/** L1 -> L2 -> L3 with a shared TLB front end. */
class Hierarchy
{
  public:
    explicit Hierarchy(const HierarchyParams &params = {});

    /** Access @p addr (cacheable). Fills all levels on miss. */
    HierarchyResult access(Addr addr, bool write);

    /** clwb: clean the line everywhere. @return true if a writeback
     *  toward memory is due. */
    bool clean(Addr addr);

    /** clflushopt: evict the line from every level. @return true if
     *  a writeback toward memory is due (the line was dirty
     *  somewhere). */
    bool invalidate(Addr addr);

    Cache &l1() { return l1Cache; }
    Cache &l2() { return l2Cache; }
    Cache &llc() { return l3Cache; }
    Tlb &tlb() { return tlbUnit; }

  private:
    HierarchyParams p;
    Cache l1Cache;
    Cache l2Cache;
    Cache l3Cache;
    Tlb tlbUnit;
};

} // namespace vans::cache

#endif // VANS_CACHE_HIERARCHY_HH
