#include "cache/tlb.hh"

#include "common/logging.hh"

namespace vans::cache
{

bool
Tlb::Level::lookup(std::uint64_t page, bool bump)
{
    auto &set = data[page & (sets - 1)];
    for (auto it = set.begin(); it != set.end(); ++it) {
        if (*it == page) {
            if (bump)
                set.splice(set.begin(), set, it);
            return true;
        }
    }
    return false;
}

void
Tlb::Level::insert(std::uint64_t page)
{
    auto &set = data[page & (sets - 1)];
    for (auto it = set.begin(); it != set.end(); ++it) {
        if (*it == page) {
            set.splice(set.begin(), set, it);
            return;
        }
    }
    set.push_front(page);
    while (set.size() > ways)
        set.pop_back();
}

Tlb::Tlb(const TlbParams &params)
    : p(params), statGroup(params.name)
{
    l1.ways = p.l1Ways;
    l1.sets = p.l1Entries / p.l1Ways;
    if (!isPowerOf2(l1.sets))
        fatal("TLB L1 set count must be a power of two");
    l1.data.resize(l1.sets);

    stlb.ways = p.stlbWays;
    stlb.sets = p.stlbEntries / p.stlbWays;
    if (!isPowerOf2(stlb.sets))
        fatal("STLB set count must be a power of two");
    stlb.data.resize(stlb.sets);
}

TlbResult
Tlb::access(Addr addr)
{
    std::uint64_t page = pageOf(addr);
    TlbResult r;
    statGroup.scalar("accesses").inc();
    if (l1.lookup(page, true)) {
        r.l1Hit = true;
        return r;
    }
    statGroup.scalar("l1_misses").inc();
    if (stlb.lookup(page, true)) {
        r.stlbHit = true;
        l1.insert(page);
        return r;
    }
    statGroup.scalar("walks").inc();
    r.walk = true;
    stlb.insert(page);
    l1.insert(page);
    return r;
}

bool
Tlb::install(Addr addr)
{
    std::uint64_t page = pageOf(addr);
    bool fresh = !l1.lookup(page, false) && !stlb.lookup(page, false);
    stlb.insert(page);
    l1.insert(page);
    if (fresh)
        statGroup.scalar("pretranslation_installs").inc();
    return fresh;
}

bool
Tlb::contains(Addr addr) const
{
    std::uint64_t page = pageOf(addr);
    auto &self = const_cast<Tlb &>(*this);
    return self.l1.lookup(page, false) || self.stlb.lookup(page, false);
}

double
Tlb::walkRate() const
{
    double a = static_cast<double>(statGroup.scalarValue("accesses"));
    double w = static_cast<double>(statGroup.scalarValue("walks"));
    return a > 0 ? w / a : 0;
}

} // namespace vans::cache
