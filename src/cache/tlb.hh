/**
 * @file
 * Two-level TLB model (L1 DTLB + STLB) with a page-walk cost, plus
 * the hook Pre-translation (paper section V-B) uses to inject
 * entries fetched from the NVRAM DIMM.
 *
 * The model is functional (hit/miss + LRU) with latencies charged by
 * the CPU core; it produces the TLB MPKI curves of Figs 5d, 7d and
 * 13e.
 */

#ifndef VANS_CACHE_TLB_HH
#define VANS_CACHE_TLB_HH

#include <cstdint>
#include <list>
#include <unordered_map>
#include <vector>

#include "common/stats.hh"
#include "common/types.hh"

namespace vans::cache
{

/** Parameters for one TLB level. */
struct TlbParams
{
    std::string name = "tlb";
    unsigned l1Entries = 64;
    unsigned l1Ways = 4;
    unsigned stlbEntries = 1536;
    unsigned stlbWays = 12;
    std::uint64_t pageBytes = 4096;
};

/** Result of one translation. */
struct TlbResult
{
    bool l1Hit = false;
    bool stlbHit = false;
    bool walk = false; ///< Full page-table walk needed.
};

/** L1 + STLB with LRU replacement per set. */
class Tlb
{
  public:
    explicit Tlb(const TlbParams &params);

    /** Translate the page of @p addr, filling on miss. */
    TlbResult access(Addr addr);

    /**
     * Install a translation directly (Pre-translation delivery: the
     * TLB entry arrives with the data from the NVRAM DIMM).
     * @return true if the page was not already present.
     */
    bool install(Addr addr);

    /** True if the page of @p addr hits without side effects. */
    bool contains(Addr addr) const;

    /** Misses needing a walk / total accesses. */
    double walkRate() const;

    StatGroup &stats() { return statGroup; }

  private:
    struct Level
    {
        unsigned sets;
        unsigned ways;
        // set -> LRU list of page numbers (front = most recent).
        std::vector<std::list<std::uint64_t>> data;

        bool lookup(std::uint64_t page, bool bump);
        void insert(std::uint64_t page);
    };

    std::uint64_t pageOf(Addr addr) const
    {
        return addr / p.pageBytes;
    }

    TlbParams p;
    Level l1;
    Level stlb;
    StatGroup statGroup;
};

} // namespace vans::cache

#endif // VANS_CACHE_TLB_HH
