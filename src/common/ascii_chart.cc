#include "common/ascii_chart.hh"

#include <algorithm>
#include <cmath>
#include <sstream>

namespace vans
{

std::string
asciiChart(const std::vector<Curve> &curves, unsigned width,
           unsigned height, bool log_x_labels)
{
    static const char glyphs[] = "*o+x#@%&";
    if (curves.empty() || curves.front().empty())
        return "(no data)\n";

    double ymax = 0;
    for (const auto &c : curves)
        ymax = std::max(ymax, c.maxY());
    if (ymax <= 0)
        ymax = 1;

    std::size_t npts = curves.front().size();
    unsigned cols = std::min<std::size_t>(npts, width);

    std::vector<std::string> grid(height, std::string(cols, ' '));
    for (std::size_t ci = 0; ci < curves.size(); ++ci) {
        const auto &c = curves[ci];
        char g = glyphs[ci % (sizeof(glyphs) - 1)];
        for (std::size_t i = 0; i < c.size() && i < npts; ++i) {
            unsigned col = static_cast<unsigned>(
                i * (cols - 1) / std::max<std::size_t>(npts - 1, 1));
            double frac = c[i].y / ymax;
            frac = std::clamp(frac, 0.0, 1.0);
            unsigned row = height - 1 -
                static_cast<unsigned>(frac * (height - 1));
            grid[row][col] = g;
        }
    }

    std::ostringstream out;
    out << fmtDouble(ymax, 1) << " +"
        << std::string(cols, '-') << '\n';
    for (const auto &line : grid)
        out << std::string(8, ' ') << '|' << line << '\n';
    out << std::string(8, ' ') << '+' << std::string(cols, '-') << '\n';
    if (log_x_labels) {
        out << std::string(9, ' ')
            << formatSize(
                   static_cast<std::uint64_t>(curves.front()[0].x))
            << " .. "
            << formatSize(static_cast<std::uint64_t>(
                   curves.front()[npts - 1].x))
            << "  (log-spaced x)\n";
    }
    for (std::size_t ci = 0; ci < curves.size(); ++ci) {
        out << std::string(9, ' ') << glyphs[ci % (sizeof(glyphs) - 1)]
            << " = " << curves[ci].name() << '\n';
    }
    return out.str();
}

TextTable::TextTable(std::vector<std::string> header)
    : head(std::move(header))
{}

void
TextTable::addRow(std::vector<std::string> row)
{
    row.resize(head.size());
    rows.push_back(std::move(row));
}

std::string
TextTable::render() const
{
    std::vector<std::size_t> w(head.size());
    for (std::size_t i = 0; i < head.size(); ++i)
        w[i] = head[i].size();
    for (const auto &r : rows) {
        for (std::size_t i = 0; i < r.size(); ++i)
            w[i] = std::max(w[i], r[i].size());
    }

    auto line = [&](const std::vector<std::string> &r) {
        std::ostringstream out;
        for (std::size_t i = 0; i < r.size(); ++i) {
            out << (i ? "  " : "");
            out << r[i] << std::string(w[i] - r[i].size(), ' ');
        }
        return out.str();
    };

    std::ostringstream out;
    out << line(head) << '\n';
    std::size_t total = 0;
    for (std::size_t i = 0; i < w.size(); ++i)
        total += w[i] + (i ? 2 : 0);
    out << std::string(total, '-') << '\n';
    for (const auto &r : rows)
        out << line(r) << '\n';
    return out.str();
}

std::string
fmtDouble(double v, int digits)
{
    std::ostringstream out;
    out.setf(std::ios::fixed);
    out.precision(digits);
    out << v;
    return out.str();
}

} // namespace vans
