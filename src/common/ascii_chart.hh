/**
 * @file
 * Terminal rendering for experiment output: aligned tables and small
 * ASCII line charts so the bench binaries can show the reproduced
 * figure series directly in a terminal.
 */

#ifndef VANS_COMMON_ASCII_CHART_HH
#define VANS_COMMON_ASCII_CHART_HH

#include <string>
#include <vector>

#include "common/curve.hh"

namespace vans
{

/**
 * Render one or more curves as an ASCII chart. X positions are taken
 * from the first curve and treated as log-spaced categories; each
 * curve gets its own glyph. Y axis is linear from 0 (or minY) to max.
 */
std::string asciiChart(const std::vector<Curve> &curves,
                       unsigned width = 72, unsigned height = 18,
                       bool log_x_labels = true);

/** Simple fixed-width table renderer. */
class TextTable
{
  public:
    explicit TextTable(std::vector<std::string> header);

    void addRow(std::vector<std::string> row);
    std::string render() const;

  private:
    std::vector<std::string> head;
    std::vector<std::vector<std::string>> rows;
};

/** Format a double with @p digits significant decimals. */
std::string fmtDouble(double v, int digits = 2);

} // namespace vans

#endif // VANS_COMMON_ASCII_CHART_HH
