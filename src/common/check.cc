#include "common/check.hh"

#include <cstdarg>
#include <cstdlib>
#include <mutex>

#include "common/logging.hh"
#include "common/stats.hh"

namespace vans::verify
{

namespace
{

std::mutex &
registryMutex()
{
    static std::mutex m; // simlint-allow: mutex is its own guard.
    return m;
}

std::vector<Site *> &
registry()
{
    // simlint-allow: guarded by registryMutex().
    static std::vector<Site *> sites;
    return sites;
}

} // namespace

Site::Site(const char *subsys, const char *e, const char *f, int l)
    : subsystem(subsys), expr(e), file(f), line(l)
{
    std::lock_guard<std::mutex> lock(registryMutex());
    registry().push_back(this);
}

std::string
Failure::str() const
{
    return strFormat("[%s] rule=%s tick=%llu: %s", subsystem.c_str(),
                     rule.c_str(),
                     static_cast<unsigned long long>(tick),
                     detail.c_str());
}

void
Monitor::report(Failure f)
{
    ++numReported;
    if (failFast) {
        panic("verification failure: %s", f.str().c_str());
    }
    fails.push_back(std::move(f));
}

std::size_t
Monitor::countRule(const std::string &rule) const
{
    std::size_t n = 0;
    for (const auto &f : fails) {
        if (f.rule == rule)
            ++n;
    }
    return n;
}

bool
envEnabled()
{
    // simlint-allow: written once on first use, read-only after.
    static const bool enabled = [] {
        const char *v = std::getenv("VANS_VERIFY");
        if (!v)
            return false;
        std::string s(v);
        return s == "1" || s == "on" || s == "yes" || s == "true";
    }();
    return enabled;
}

void
checkStatsInto(StatGroup &stats)
{
    std::lock_guard<std::mutex> lock(registryMutex());
    for (const Site *s : registry()) {
        std::string name = strFormat("%s.%s:%d", s->subsystem,
                                     s->file, s->line);
        stats.scalar(name).set(
            s->hits.load(std::memory_order_relaxed));
    }
}

std::uint64_t
totalCheckHits()
{
    std::lock_guard<std::mutex> lock(registryMutex());
    std::uint64_t total = 0;
    for (const Site *s : registry())
        total += s->hits.load(std::memory_order_relaxed);
    return total;
}

std::size_t
siteCount()
{
    std::lock_guard<std::mutex> lock(registryMutex());
    return registry().size();
}

void
failSite(const Site &site, const char *kind, Tick tick,
         const char *fmt, ...)
{
    va_list args;
    va_start(args, fmt);
    char detail[512];
    vsnprintf(detail, sizeof(detail), fmt, args);
    va_end(args);

    panic("%s violated: [%s] `%s` at %s:%d tick=%llu: %s", kind,
          site.subsystem, site.expr, site.file, site.line,
          static_cast<unsigned long long>(tick), detail);
}

} // namespace vans::verify
