/**
 * @file
 * Contract framework: the always-on / debug-tier invariant layer the
 * rest of the verification stack builds on.
 *
 * Three macro tiers (all report through the same structured path):
 *  - VANS_REQUIRE   - precondition on a caller (e.g. "acceptWrite only
 *                     after canAcceptWrite"). Always compiled in; the
 *                     predicate must be O(1).
 *  - VANS_INVARIANT - internal state consistency at a commit point
 *                     (e.g. "occupancy never exceeds capacity").
 *                     Always compiled in; O(1) predicates only.
 *  - VANS_AUDIT     - expensive re-derivation of state (e.g. "the
 *                     cached entry count equals the recount over the
 *                     map"). Compiled out in Release builds; enabled
 *                     whenever VANS_ENABLE_AUDITS is defined.
 *
 * Every macro expansion owns a Site with an atomic hit counter, so a
 * run can prove its checks actually executed (a checker that never
 * fires is indistinguishable from a checker that never ran). Sites
 * register themselves in a global registry surfaced through Stats by
 * checkStatsInto(). Counting follows the audit tier: pure Release
 * builds evaluate the checks but skip the counter update, keeping
 * the event-kernel hot path free of atomic traffic.
 *
 * Failures are structured (subsystem, rule, tick, detail) and abort
 * via panic() by default -- a modeling bug must kill the run before
 * it corrupts a figure. Checkers that accumulate findings for
 * inspection (negative tests, reports) route them through a Monitor
 * with fail-fast disabled instead.
 */

#ifndef VANS_COMMON_CHECK_HH
#define VANS_COMMON_CHECK_HH

#include <atomic>
#include <cstdint>
#include <string>
#include <vector>

#include "common/types.hh"

namespace vans
{
class StatGroup;
}

namespace vans::verify
{

/** One structured contract-violation report. */
struct Failure
{
    std::string subsystem; ///< Component instance ("vans.dimm0.lsq").
    std::string rule;      ///< Stable rule name ("lsq-capacity").
    std::string detail;    ///< Human-readable specifics.
    Tick tick = 0;         ///< Simulated time of the violation.

    /** Render as a one-line report. */
    std::string str() const;
};

/**
 * Failure sink shared by the checkers of one simulated system.
 * Fail-fast monitors panic on the first report (the verify=on run
 * mode); accumulating monitors collect for later inspection (the
 * negative-test mode).
 */
class Monitor
{
  public:
    explicit Monitor(bool fail_fast = true) : failFast(fail_fast) {}

    /** Record @p f; panics when fail-fast. */
    void report(Failure f);

    const std::vector<Failure> &failures() const { return fails; }
    bool clean() const { return fails.empty(); }
    std::uint64_t reported() const { return numReported; }
    void clear() { fails.clear(); }

    /** Count of recorded failures matching @p rule. */
    std::size_t countRule(const std::string &rule) const;

  private:
    bool failFast;
    std::vector<Failure> fails;
    std::uint64_t numReported = 0;
};

/**
 * Registration record behind one check-macro expansion. Constructed
 * once (thread-safe magic static) and hit-counted with a relaxed
 * atomic so checks stay cheap and race-free under parallelFor.
 */
struct Site
{
    const char *subsystem;
    const char *expr;
    const char *file;
    int line;
    std::atomic<std::uint64_t> hits{0};

    Site(const char *subsys, const char *e, const char *f, int l);

    Site(const Site &) = delete;
    Site &operator=(const Site &) = delete;
};

/**
 * True when the VANS_VERIFY environment variable requests verified
 * runs (1/on/yes/true). Read once and cached; lets CI flip the whole
 * test and bench suite into checked mode without touching call
 * sites. The [nvram] verify config key overrides per system.
 */
bool envEnabled();

/** Export per-site hit counters into @p stats (one scalar each). */
void checkStatsInto(StatGroup &stats);

/** Total contract evaluations across every site since start. */
std::uint64_t totalCheckHits();

/** Number of registered check sites. */
std::size_t siteCount();

/** Build the structured failure report and abort via panic(). */
[[noreturn]] void failSite(const Site &site, const char *kind,
                           Tick tick, const char *fmt, ...)
    __attribute__((format(printf, 4, 5)));

} // namespace vans::verify

/**
 * Contract macros. @p subsys is a string literal naming the
 * component, @p tick the current simulated time (evaluated only on
 * failure), @p cond the predicate, and the remainder a printf-style
 * detail message. Example:
 *
 *   VANS_REQUIRE("lsq", eventq.curTick(), numEntries < cfg.lsqEntries,
 *                "acceptWrite without room (%zu entries)", numEntries);
 */
/*
 * Hit counting is observability, not correctness: it costs one
 * relaxed atomic add per evaluation, which is measurable on the
 * event-kernel hot path, so pure Release builds (the perf-budgeted
 * bench configuration) keep the checks but drop the counters.
 */
#ifdef VANS_ENABLE_AUDITS
#define VANS_CHECK_COUNT(site)                                         \
    (site).hits.fetch_add(1, std::memory_order_relaxed)
#else
#define VANS_CHECK_COUNT(site) ((void)0)
#endif

#define VANS_CHECK_IMPL(kind, subsys, tick, cond, ...)                 \
    do {                                                               \
        /* simlint-allow: magic static + atomic hit counter. */        \
        static ::vans::verify::Site vansCheckSite(                      \
            subsys, #cond, __FILE__, __LINE__);                        \
        VANS_CHECK_COUNT(vansCheckSite);                               \
        if (__builtin_expect(!(cond), 0)) {                            \
            ::vans::verify::failSite(vansCheckSite, kind, tick,         \
                                    __VA_ARGS__);                      \
        }                                                              \
    } while (0)

#define VANS_REQUIRE(subsys, tick, cond, ...)                          \
    VANS_CHECK_IMPL("require", subsys, tick, cond, __VA_ARGS__)

#define VANS_INVARIANT(subsys, tick, cond, ...)                        \
    VANS_CHECK_IMPL("invariant", subsys, tick, cond, __VA_ARGS__)

#ifdef VANS_ENABLE_AUDITS
#define VANS_AUDIT(subsys, tick, cond, ...)                            \
    VANS_CHECK_IMPL("audit", subsys, tick, cond, __VA_ARGS__)
#else
#define VANS_AUDIT(subsys, tick, cond, ...) ((void)0)
#endif

#endif // VANS_COMMON_CHECK_HH
