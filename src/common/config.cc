#include "common/config.hh"

#include <algorithm>
#include <cctype>
#include <cmath>
#include <cstdlib>
#include <fstream>
#include <sstream>

#include "common/logging.hh"

namespace vans
{

namespace
{

std::string
trim(const std::string &s)
{
    std::size_t b = 0;
    std::size_t e = s.size();
    while (b < e && std::isspace(static_cast<unsigned char>(s[b])))
        ++b;
    while (e > b && std::isspace(static_cast<unsigned char>(s[e - 1])))
        --e;
    return s.substr(b, e - b);
}

std::string
lower(std::string s)
{
    std::transform(s.begin(), s.end(), s.begin(), [](unsigned char c) {
        return static_cast<char>(std::tolower(c));
    });
    return s;
}

} // namespace

Config
Config::fromString(const std::string &text)
{
    Config cfg;
    std::istringstream in(text);
    std::string line;
    std::string section = "global";
    int lineno = 0;
    while (std::getline(in, line)) {
        ++lineno;
        // Strip comments introduced by '#' or ';'.
        auto pos = line.find_first_of("#;");
        if (pos != std::string::npos)
            line.erase(pos);
        line = trim(line);
        if (line.empty())
            continue;
        if (line.front() == '[') {
            if (line.back() != ']')
                fatal("config line %d: malformed section '%s'", lineno,
                      line.c_str());
            section = trim(line.substr(1, line.size() - 2));
            if (section.empty())
                fatal("config line %d: empty section name", lineno);
            continue;
        }
        auto eq = line.find('=');
        if (eq == std::string::npos)
            fatal("config line %d: expected key = value, got '%s'",
                  lineno, line.c_str());
        std::string key = trim(line.substr(0, eq));
        std::string value = trim(line.substr(eq + 1));
        if (key.empty())
            fatal("config line %d: empty key", lineno);
        cfg.set(section, key, value);
    }
    return cfg;
}

Config
Config::fromFile(const std::string &path)
{
    std::ifstream in(path);
    if (!in)
        fatal("cannot open config file '%s'", path.c_str());
    std::ostringstream ss;
    ss << in.rdbuf();
    return fromString(ss.str());
}

void
Config::set(const std::string &section, const std::string &key,
            const std::string &value)
{
    data[section][key] = value;
}

bool
Config::has(const std::string &section, const std::string &key) const
{
    auto s = data.find(section);
    if (s == data.end())
        return false;
    return s->second.count(key) > 0;
}

std::string
Config::get(const std::string &section, const std::string &key,
            const std::string &def) const
{
    auto s = data.find(section);
    if (s == data.end())
        return def;
    auto k = s->second.find(key);
    if (k == s->second.end())
        return def;
    return k->second;
}

std::uint64_t
Config::getU64(const std::string &section, const std::string &key,
               std::uint64_t def) const
{
    if (!has(section, key))
        return def;
    return parseSize(get(section, key, ""));
}

double
Config::getDouble(const std::string &section, const std::string &key,
                  double def) const
{
    if (!has(section, key))
        return def;
    return std::strtod(get(section, key, "").c_str(), nullptr);
}

bool
Config::getBool(const std::string &section, const std::string &key,
                bool def) const
{
    if (!has(section, key))
        return def;
    std::string v = lower(get(section, key, ""));
    if (v == "true" || v == "yes" || v == "1" || v == "on")
        return true;
    if (v == "false" || v == "no" || v == "0" || v == "off")
        return false;
    fatal("config [%s] %s: '%s' is not a boolean", section.c_str(),
          key.c_str(), v.c_str());
}

std::string
Config::require(const std::string &section, const std::string &key) const
{
    if (!has(section, key))
        fatal("config: missing required key [%s] %s", section.c_str(),
              key.c_str());
    return get(section, key, "");
}

std::vector<std::string>
Config::sections() const
{
    std::vector<std::string> out;
    out.reserve(data.size());
    for (const auto &kv : data)
        out.push_back(kv.first);
    return out;
}

std::vector<std::string>
Config::keys(const std::string &section) const
{
    std::vector<std::string> out;
    auto s = data.find(section);
    if (s == data.end())
        return out;
    out.reserve(s->second.size());
    for (const auto &kv : s->second)
        out.push_back(kv.first);
    return out;
}

std::string
Config::toString() const
{
    std::ostringstream out;
    for (const auto &sec : data) {
        out << '[' << sec.first << "]\n";
        for (const auto &kv : sec.second)
            out << kv.first << " = " << kv.second << '\n';
        out << '\n';
    }
    return out.str();
}

std::uint64_t
Config::parseSize(const std::string &value)
{
    std::string v = trim(value);
    if (v.empty())
        fatal("cannot parse empty size value");
    char *end = nullptr;
    double num = std::strtod(v.c_str(), &end);
    if (end == v.c_str())
        fatal("size value '%s' has no leading number", v.c_str());
    // Casting a negative or non-finite double to uint64_t is
    // undefined behavior; reject instead of silently wrapping.
    if (!std::isfinite(num) || num < 0)
        fatal("size value '%s' must be a finite non-negative number",
              v.c_str());
    std::uint64_t mult = 1;
    std::string suffix = lower(trim(std::string(end)));
    if (suffix == "b") {
        mult = 1;
    } else if (suffix == "k" || suffix == "kb" || suffix == "kib") {
        mult = 1ull << 10;
    } else if (suffix == "m" || suffix == "mb" || suffix == "mib") {
        mult = 1ull << 20;
    } else if (suffix == "g" || suffix == "gb" || suffix == "gib") {
        mult = 1ull << 30;
    } else if (!suffix.empty()) {
        fatal("unknown size suffix '%s' in '%s'", suffix.c_str(),
              v.c_str());
    }
    return static_cast<std::uint64_t>(num * static_cast<double>(mult));
}

} // namespace vans
