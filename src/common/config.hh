/**
 * @file
 * Minimal INI-style configuration store.
 *
 * Sections are written as [section]; entries as key = value. Values
 * accept size suffixes (K/M/G, powers of two) and the usual booleans.
 * A Config can be built programmatically or parsed from a string or
 * file; defaults are queried with the get(section, key, default)
 * family, while require() makes a missing key a fatal() user error.
 */

#ifndef VANS_COMMON_CONFIG_HH
#define VANS_COMMON_CONFIG_HH

#include <cstdint>
#include <map>
#include <string>
#include <vector>

namespace vans
{

/** INI-style key/value configuration organised by section. */
class Config
{
  public:
    Config() = default;

    /** Parse INI text; later duplicate keys override earlier ones. */
    static Config fromString(const std::string &text);

    /** Parse an INI file; fatal() on I/O failure. */
    static Config fromFile(const std::string &path);

    /** Set (or override) a value. */
    void set(const std::string &section, const std::string &key,
             const std::string &value);

    /** True if the key exists. */
    bool has(const std::string &section, const std::string &key) const;

    /** String lookup with default. */
    std::string get(const std::string &section, const std::string &key,
                    const std::string &def) const;

    /** Integer lookup with default; accepts K/M/G suffixes. */
    std::uint64_t getU64(const std::string &section,
                         const std::string &key,
                         std::uint64_t def) const;

    /** Floating-point lookup with default. */
    double getDouble(const std::string &section, const std::string &key,
                     double def) const;

    /** Boolean lookup with default (true/false/yes/no/1/0). */
    bool getBool(const std::string &section, const std::string &key,
                 bool def) const;

    /** String lookup; fatal() if missing. */
    std::string require(const std::string &section,
                        const std::string &key) const;

    /** All section names, sorted. */
    std::vector<std::string> sections() const;

    /** All keys within a section, sorted. */
    std::vector<std::string> keys(const std::string &section) const;

    /** Render back to INI text (sorted, normalised). */
    std::string toString() const;

    /**
     * Parse a value with optional binary size suffix:
     * "16K" -> 16384, "4M", "2G", plain integers otherwise.
     */
    static std::uint64_t parseSize(const std::string &value);

  private:
    std::map<std::string, std::map<std::string, std::string>> data;
};

} // namespace vans

#endif // VANS_COMMON_CONFIG_HH
