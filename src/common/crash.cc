#include "common/crash.hh"

#include <cstdio>
#include <unordered_set>

#include "common/snapshot.hh"

namespace vans::persist
{

namespace
{

/** Small printf helper for failure details. */
template <typename... Args>
std::string
fmt(const char *f, Args... args)
{
    char buf[256];
    std::snprintf(buf, sizeof(buf), f, args...);
    return buf;
}

} // namespace

// ---------------------------------------------------------------- //
// MediaImage                                                       //
// ---------------------------------------------------------------- //

void
MediaImage::snapshotTo(snapshot::StateSink &sink) const
{
    sink.tag("media-image");
    sink.u64(img.size());
    for (const auto &[line, version] : img) {
        sink.u64(line);
        sink.u64(version);
    }
}

void
MediaImage::restoreFrom(snapshot::StateSource &src)
{
    src.tag("media-image");
    img.clear();
    std::uint64_t n = src.u64();
    for (std::uint64_t i = 0; i < n; ++i) {
        Addr line = src.u64();
        img[line] = src.u64();
    }
}

// ---------------------------------------------------------------- //
// PersistenceChecker                                               //
// ---------------------------------------------------------------- //

void
PersistenceChecker::report(const char *rule, std::string detail,
                           Tick now)
{
    ++numViolations;
    monitor.report({"persist", rule, std::move(detail), now});
}

void
PersistenceChecker::onCachedWrite(Addr line, Tick now)
{
    (void)now;
    // A fresh cached store invalidates whatever discipline the line
    // had: an in-flight flush covers only the old data.
    lineMap[line].st = LineState::Dirty;
}

void
PersistenceChecker::onFlush(Addr line, Tick now)
{
    (void)now;
    Line &l = lineMap[line];
    l.st = LineState::FlushPending;
    l.flushSeq = ++flushCounter;
}

void
PersistenceChecker::onFenceIssued(std::uint64_t fence_id, Tick now)
{
    (void)now;
    fences.emplace_back(fence_id, flushCounter);
}

void
PersistenceChecker::onFenceComplete(std::uint64_t fence_id, Tick now)
{
    (void)now;
    std::uint64_t barrier = 0;
    bool found = false;
    std::size_t kept = 0;
    for (auto &f : fences) {
        if (!found && f.first == fence_id) {
            barrier = f.second;
            found = true;
        } else {
            fences[kept++] = f;
        }
    }
    fences.resize(kept);
    if (!found)
        return; // A fence this checker never saw issued.
    for (auto &[line, l] : lineMap) {
        (void)line;
        if (l.st == LineState::FlushPending && l.flushSeq <= barrier)
            l.st = LineState::Durable;
    }
}

void
PersistenceChecker::assumeDurable(Addr line, Tick now)
{
    auto it = lineMap.find(line);
    if (it == lineMap.end())
        return; // Never written: nothing to lose.
    switch (it->second.st) {
      case LineState::Clean:
      case LineState::Durable:
        return;
      case LineState::Dirty:
        report("unflushed-dirty",
               fmt("line %llx assumed durable while a cached store "
                   "was never flushed",
                   static_cast<unsigned long long>(line)),
               now);
        return;
      case LineState::FlushPending:
        report("unfenced-flush",
               fmt("line %llx assumed durable while its flush was "
                   "never covered by a completed fence",
                   static_cast<unsigned long long>(line)),
               now);
        return;
    }
}

PersistenceChecker::LineState
PersistenceChecker::state(Addr line) const
{
    auto it = lineMap.find(line);
    return it == lineMap.end() ? LineState::Clean : it->second.st;
}

std::size_t
PersistenceChecker::dirtyLines() const
{
    std::size_t n = 0;
    for (const auto &[line, l] : lineMap) {
        (void)line;
        if (l.st == LineState::Dirty)
            ++n;
    }
    return n;
}

std::size_t
PersistenceChecker::durableLines() const
{
    std::size_t n = 0;
    for (const auto &[line, l] : lineMap) {
        (void)line;
        if (l.st == LineState::Durable)
            ++n;
    }
    return n;
}

// ---------------------------------------------------------------- //
// CrashHarness                                                     //
// ---------------------------------------------------------------- //

bool
CrashHarness::Report::checkPrefixDurability(std::string &why) const
{
    // Longest matching prefix of the durable-write stream.
    std::size_t k = 0;
    while (k < writesIssued.size()) {
        const auto &[line, version] = writesIssued[k];
        if (!image.contains(line))
            break;
        if (image.versionOf(line) != version) {
            why = fmt("torn line %llx: durable version %llu, write "
                      "%zu recorded version %llu",
                      static_cast<unsigned long long>(line),
                      static_cast<unsigned long long>(
                          image.versionOf(line)),
                      k,
                      static_cast<unsigned long long>(version));
            return false;
        }
        ++k;
    }
    // No hole: nothing after the prefix may have survived.
    for (std::size_t j = k; j < writesIssued.size(); ++j) {
        if (image.contains(writesIssued[j].first)) {
            why = fmt("hole: write %zu (line %llx) durable while "
                      "write %zu (line %llx) is lost",
                      j,
                      static_cast<unsigned long long>(
                          writesIssued[j].first),
                      k,
                      static_cast<unsigned long long>(
                          writesIssued[k].first));
            return false;
        }
    }
    // No phantom: the image holds exactly the k prefix lines.
    if (image.lineCount() != k) {
        why = fmt("phantom: image holds %zu lines, the durable "
                  "prefix has %zu",
                  image.lineCount(), k);
        return false;
    }
    // No lost fenced line: the prefix covers every fenced write.
    if (k < fencedWrites) {
        why = fmt("lost fenced line: only %zu writes durable, %llu "
                  "were fenced before the cut",
                  k,
                  static_cast<unsigned long long>(fencedWrites));
        return false;
    }
    why.clear();
    return true;
}

CrashHarness::Report
CrashHarness::runToCrash(const SystemFactory &factory,
                         const std::vector<PmOp> &program,
                         Tick cut_tick, double op_gap_ns)
{
    Report rep;
    rep.cutTick = cut_tick;

    EventQueue eq;
    std::unique_ptr<MemorySystem> sys = factory(eq);
    VANS_REQUIRE("crash", 0, sys->persistSupported(),
                 "crash harness needs a persist-capable system "
                 "(got %s)",
                 sys->name().c_str());
    sys->enablePersistTracking();
    PersistenceChecker *pc = sys->persistenceChecker();

    bool cut = false;
    // The cut primitive: execute events strictly before the cut
    // tick, in order; the first event at or after it is the one the
    // power failure preempts.
    auto stepOne = [&]() -> bool {
        if (cut || eq.empty())
            return false;
        if (eq.nextAt() >= cut_tick) {
            cut = true;
            return false;
        }
        eq.step();
        return true;
    };

    // Software model of the CPU caches: which lines hold a cached
    // store that no flush has picked up yet. (The LENS-style request
    // path has no cache model; dirty lines produce no request until
    // flushed, which is exactly what makes them crash-vulnerable.)
    std::unordered_set<Addr> dirty;

    // Requests this harness issued that have not completed. This --
    // not eq.empty() -- is the drain condition: a model whose DRAM
    // path has been touched re-arms its refresh wakeup forever, so
    // the event queue of an idle world is never empty. It is the
    // cut-aware twin of MemorySystem::drain(): the shared helper
    // cannot be used here because every step must respect the cut
    // tick, but the "state predicate, never queue emptiness" rule
    // is the same one.
    std::uint64_t outstanding = 0;

    auto issueDurableWrite = [&](MemOp mop, Addr line) {
        RequestHandle h = sys->makeRequest(line, mop);
        ++outstanding;
        sys->request(h).onComplete = [&outstanding, p = &sys->pool(),
                                      h](Request &) {
            --outstanding;
            p->release(h);
        };
        sys->issue(h);
        // The id is assigned inside issue(); completion is always at
        // least one core-to-iMC hop away, so the handle is live here.
        rep.writesIssued.emplace_back(line, sys->request(h).id);
    };

    Tick gap = nsToTicks(op_gap_ns);
    for (const PmOp &op : program) {
        // Pace the instruction stream: one op per gap.
        bool fired = false;
        eq.schedule(eq.curTick() + gap, [&fired] { fired = true; });
        while (!fired && stepOne()) {
        }
        if (cut)
            break;

        Addr line = alignDown(op.addr, cacheLineSize);
        switch (op.kind) {
          case PmOp::Kind::Store:
            dirty.insert(line);
            if (pc)
                pc->onCachedWrite(line, eq.curTick());
            break;
          case PmOp::Kind::NtStore:
            // The NT store carries the freshest data for the line;
            // stale cached copies stop mattering.
            dirty.erase(line);
            issueDurableWrite(MemOp::WriteNT, line);
            break;
          case PmOp::Kind::Clwb:
          case PmOp::Kind::Clflushopt:
            // Flushing a clean line is a no-op at the cache; only a
            // dirty line produces a writeback request.
            if (dirty.erase(line) != 0) {
                issueDurableWrite(op.kind == PmOp::Kind::Clwb
                                      ? MemOp::Clwb
                                      : MemOp::Clflushopt,
                                  line);
            }
            break;
          case PmOp::Kind::Sfence: {
            RequestHandle h = sys->makeRequest(0, MemOp::Sfence, 0);
            bool done = false;
            std::uint64_t covered = rep.writesIssued.size();
            ++outstanding;
            sys->request(h).onComplete =
                [&rep, &done, &outstanding, covered,
                 p = &sys->pool(), h](Request &) {
                    done = true;
                    --outstanding;
                    ++rep.fencesCompleted;
                    if (covered > rep.fencedWrites)
                        rep.fencedWrites = covered;
                    p->release(h);
                };
            sys->issue(h);
            while (!done && stepOne()) {
            }
            break;
          }
        }
        if (cut)
            break;
    }

    // Let whatever is in flight run (or be preempted by the cut).
    // ADR acceptance is the completion point for every harness
    // request, so outstanding == 0 means the durable image can no
    // longer change; downstream media traffic past that point is
    // irrelevant to the crash.
    while (outstanding != 0 && stepOne()) {
    }
    rep.cutHappened = cut;
    rep.endTick = eq.curTick();

    // Power failure: the ADR domain drains to media, everything else
    // is lost. Requests in flight at the cut never complete; their
    // handles die with this world.
    sys->powerFail(rep.image);
    return rep;
}

std::unique_ptr<MemorySystem>
CrashHarness::restart(const SystemFactory &factory, EventQueue &eq,
                      const MediaImage &image)
{
    std::unique_ptr<MemorySystem> sys = factory(eq);
    sys->loadDurableImage(image);
    return sys;
}

std::vector<PmOp>
CrashHarness::loggedWrites(Addr base, unsigned records, bool nt)
{
    std::vector<PmOp> prog;
    prog.reserve(records * 3);
    for (unsigned i = 0; i < records; ++i) {
        Addr a = base + static_cast<Addr>(i) * cacheLineSize;
        if (nt) {
            prog.push_back({PmOp::Kind::NtStore, a});
        } else {
            prog.push_back({PmOp::Kind::Store, a});
            prog.push_back({PmOp::Kind::Clwb, a});
        }
        prog.push_back({PmOp::Kind::Sfence, 0});
    }
    return prog;
}

} // namespace vans::persist
