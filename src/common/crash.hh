/**
 * @file
 * Crash injection and persistence checking over the ADR domain.
 *
 * The model side (nvram/imc.*) tracks which 64B lines have been
 * accepted into a WPQ -- the ADR persistence domain -- and with which
 * version (the request id of the accepting write). On a power cut the
 * WPQ is guaranteed to drain to media, so the durable media image at
 * an arbitrary tick is exactly that version map: everything still in
 * CPU caches, crossing the core-to-iMC hop, or stalled outside a full
 * WPQ is lost.
 *
 * This header holds the model-independent half:
 *  - MediaImage: the durable line->version map, serializable through
 *    the snapshot stream so a post-crash world can be seeded from it;
 *  - PersistenceChecker: a passive per-line state machine (dirty ->
 *    flush issued -> fenced) that flags lines a program assumed
 *    durable without the flush+fence discipline;
 *  - CrashHarness: runs a PM instruction program (stores, NT stores,
 *    clwb/clflushopt, sfence) against any persist-capable
 *    MemorySystem, cuts power at an arbitrary tick, captures the
 *    durable image, and restarts a fresh world from it.
 *
 * Everything here drives memory through the abstract MemorySystem
 * persist hooks; the concrete ADR bookkeeping lives in the NVRAM
 * layer.
 */

#ifndef VANS_COMMON_CRASH_HH
#define VANS_COMMON_CRASH_HH

#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "common/check.hh"
#include "common/mem_system.hh"
#include "common/types.hh"

namespace vans::snapshot
{
class StateSink;
class StateSource;
} // namespace vans::snapshot

namespace vans::persist
{

/**
 * The durable state of the media after a power cut: one version per
 * 64B line, where a version is the id of the last write request
 * accepted into the ADR domain for that line. Requests carry no data
 * payload anywhere in this simulator, so "which bytes survived" is
 * modeled as "which write survived" -- good enough to decide torn,
 * lost and phantom lines exactly.
 */
class MediaImage
{
  public:
    /** Record @p version as durable for @p line (keeps the max). */
    void
    set(Addr line, std::uint64_t version)
    {
        std::uint64_t &v = img[line];
        if (version > v)
            v = version;
    }

    bool contains(Addr line) const { return img.count(line) != 0; }

    /** Durable version of @p line, or 0 when the line never became
     *  durable (request ids start at 1). */
    std::uint64_t
    versionOf(Addr line) const
    {
        auto it = img.find(line);
        return it == img.end() ? 0 : it->second;
    }

    std::size_t lineCount() const { return img.size(); }

    /** The full map, ordered by line address. */
    const std::map<Addr, std::uint64_t> &lines() const { return img; }

    bool
    operator==(const MediaImage &other) const
    {
        return img == other.img;
    }

    /** Serialize through the typed snapshot stream. */
    void snapshotTo(snapshot::StateSink &sink) const;
    void restoreFrom(snapshot::StateSource &src);

  private:
    std::map<Addr, std::uint64_t> img;
};

/**
 * Passive crash-consistency checker: re-derives, per 64B line, what
 * PM programming discipline the request stream actually followed, and
 * reports lines a program *assumed* durable without having earned it
 * (the un-fenced dirty write bug class). Sits alongside the
 * NvmInvariantChecker inside the verify=on aggregate; the crash
 * harness (and tests) feed the cache-level events the memory system
 * cannot see.
 */
class PersistenceChecker
{
  public:
    /** Per-line discipline state. */
    enum class LineState : std::uint8_t
    {
        Clean,        ///< Never written (or only ever observed clean).
        Dirty,        ///< Cached store not yet flushed.
        FlushPending, ///< Flush/NT store issued, no fence completed.
        Durable,      ///< Flushed and covered by a completed fence.
    };

    explicit PersistenceChecker(verify::Monitor &mon) : monitor(mon) {}

    /** A cached store dirtied @p line (no memory request exists). */
    void onCachedWrite(Addr line, Tick now);

    /** A write headed for ADR was issued for @p line (clwb,
     *  clflushopt or NT store request). */
    void onFlush(Addr line, Tick now);

    /** A fence request @p fence_id was issued: it covers every flush
     *  observed so far. */
    void onFenceIssued(std::uint64_t fence_id, Tick now);

    /** Fence @p fence_id completed: covered flushes are durable. */
    void onFenceComplete(std::uint64_t fence_id, Tick now);

    /**
     * The program declares it relies on @p line being durable (e.g.
     * it publishes a pointer to it). Reports through the monitor when
     * the line is dirty-unflushed or flushed-unfenced.
     */
    void assumeDurable(Addr line, Tick now);

    LineState state(Addr line) const;

    std::size_t dirtyLines() const;
    std::size_t durableLines() const;

    /** Violations reported so far. */
    std::uint64_t violations() const { return numViolations; }

  private:
    struct Line
    {
        LineState st = LineState::Clean;
        std::uint64_t flushSeq = 0; ///< Valid while FlushPending.
    };

    void report(const char *rule, std::string detail, Tick now);

    /** Ordered for deterministic iteration in promotions/reports. */
    std::map<Addr, Line> lineMap;
    /** Outstanding fences: (fence request id, flush barrier). */
    std::vector<std::pair<std::uint64_t, std::uint64_t>> fences;
    std::uint64_t flushCounter = 0;
    std::uint64_t numViolations = 0;
    verify::Monitor &monitor;
};

/** One PM-program instruction for the crash harness. */
struct PmOp
{
    enum class Kind : std::uint8_t
    {
        Store,      ///< Cached store: dirties a line, no request.
        NtStore,    ///< NT store: write request straight toward ADR.
        Clwb,       ///< Flush (keep line): writeback if dirty.
        Clflushopt, ///< Flush + invalidate: writeback if dirty.
        Sfence,     ///< Waits until prior writes reached ADR.
    };

    Kind kind = Kind::Store;
    Addr addr = 0;
};

/**
 * Runs PM programs against a persist-capable MemorySystem with a
 * power cut at an arbitrary tick. Classic (single event queue)
 * worlds only: the cut primitive peeks the next event tick, which a
 * sharded kernel does not expose across its shards -- sharded
 * determinism with the persistence ops is covered separately by the
 * sharded bit-identity tests.
 */
class CrashHarness
{
  public:
    /** Everything a crash run exposes for recovery-invariant checks. */
    struct Report
    {
        /** The ADR-durable image at the cut (or at drain when the
         *  program finished first). */
        MediaImage image;
        /** Every durable-write request issued before the cut, in
         *  issue order: (64B line, request id == durable version). */
        std::vector<std::pair<Addr, std::uint64_t>> writesIssued;
        /** Longest prefix of writesIssued covered by an sfence that
         *  completed strictly before the cut. */
        std::uint64_t fencedWrites = 0;
        /** Sfences that completed strictly before the cut. */
        std::uint64_t fencesCompleted = 0;
        Tick cutTick = 0;
        /** The world's tick at image capture: the cut tick when the
         *  cut fired, the drain tick otherwise. Sizing input for
         *  sweep windows. */
        Tick endTick = 0;
        /** False when the program drained before the cut tick. */
        bool cutHappened = false;

        /**
         * The prefix-durability invariant for programs whose durable
         * writes target pairwise-distinct lines: the image must be
         * exactly writesIssued[0..k) for some k >= fencedWrites, with
         * every surviving version the recorded one (no torn line, no
         * lost fenced line, no phantom un-fenced line, no hole).
         * @return true when it holds; otherwise @p why says what
         * broke.
         */
        bool checkPrefixDurability(std::string &why) const;
    };

    /**
     * Build a fresh world from @p factory, run @p program against it
     * (one op issued every @p op_gap_ns), cut power at the first
     * event at or after @p cut_tick, and capture the durable image.
     * The system must report persistSupported().
     */
    static Report runToCrash(const SystemFactory &factory,
                             const std::vector<PmOp> &program,
                             Tick cut_tick, double op_gap_ns = 2.0);

    /** Build a fresh (post-crash) world and seed its media from the
     *  durable @p image. */
    static std::unique_ptr<MemorySystem>
    restart(const SystemFactory &factory, EventQueue &eq,
            const MediaImage &image);

    /**
     * The canonical logged-writes workload: @p records consecutive
     * lines from @p base, each made durable before the next starts
     * (NT store + sfence, or store + clwb + sfence when @p nt is
     * false). Its durable writes hit distinct lines, so
     * checkPrefixDurability applies at any cut tick.
     */
    static std::vector<PmOp> loggedWrites(Addr base, unsigned records,
                                          bool nt = true);
};

} // namespace vans::persist

#endif // VANS_COMMON_CRASH_HH
