#include "common/curve.hh"

#include <algorithm>
#include <cmath>
#include <sstream>

#include "common/check.hh"
#include "common/logging.hh"

namespace vans
{

double
Curve::valueAt(double x) const
{
    if (pts.empty())
        return 0;
    double best = pts.front().y;
    for (const auto &p : pts) {
        if (p.x <= x)
            best = p.y;
        else
            break;
    }
    return best;
}

std::vector<double>
Curve::findInflections(double rel_threshold) const
{
    // A "rising run" is a maximal sequence of consecutive steps
    // each rising by at least step_min; the run is an inflection
    // when its cumulative rise exceeds rel_threshold. The reported
    // x is the run's start -- the last point still on the lower
    // plateau, which is the paper's capacity-estimate convention.
    double step_min = std::max(0.04, rel_threshold / 5.0);
    std::vector<double> out;
    std::size_t i = 1;
    while (i < pts.size()) {
        double prev = pts[i - 1].y;
        double cur = pts[i].y;
        bool rising =
            prev > 0 && (cur - prev) / prev >= step_min;
        if (!rising) {
            ++i;
            continue;
        }
        std::size_t start = i - 1;
        double base = pts[start].y;
        std::size_t j = i;
        while (j < pts.size() && pts[j - 1].y > 0 &&
               (pts[j].y - pts[j - 1].y) / pts[j - 1].y >= step_min) {
            ++j;
        }
        double total = base > 0 ? (pts[j - 1].y - base) / base : 0;
        if (total > rel_threshold)
            out.push_back(pts[start].x);
        i = j;
    }
    return out;
}

std::vector<double>
Curve::segmentLevels(const std::vector<double> &inflections) const
{
    std::vector<double> levels;
    std::size_t seg = 0;
    double sum = 0;
    std::size_t n = 0;
    for (const auto &p : pts) {
        while (seg < inflections.size() && p.x > inflections[seg]) {
            levels.push_back(n ? sum / static_cast<double>(n) : 0);
            sum = 0;
            n = 0;
            ++seg;
        }
        sum += p.y;
        ++n;
    }
    levels.push_back(n ? sum / static_cast<double>(n) : 0);
    while (levels.size() < inflections.size() + 1)
        levels.push_back(0);
    return levels;
}

double
Curve::accuracyAgainst(const Curve &reference) const
{
    if (pts.empty() || reference.empty())
        return 0;
    double acc_sum = 0;
    for (const auto &p : pts) {
        // Nearest reference point by |log-x| distance (sweeps are
        // log-spaced, so that is the natural metric).
        const CurvePoint *best = &reference[0];
        double best_d = std::numeric_limits<double>::max();
        for (const auto &r : reference.points()) {
            double d = std::fabs(std::log2(std::max(r.x, 1.0)) -
                                 std::log2(std::max(p.x, 1.0)));
            if (d < best_d) {
                best_d = d;
                best = &r;
            }
        }
        if (best->y == 0)
            continue;
        double err = std::fabs(p.y - best->y) / best->y;
        acc_sum += std::max(0.0, 1.0 - err);
    }
    return acc_sum / static_cast<double>(pts.size());
}

double
Curve::maxY() const
{
    double m = 0;
    for (const auto &p : pts)
        m = std::max(m, p.y);
    return m;
}

double
Curve::minY() const
{
    if (pts.empty())
        return 0;
    double m = pts.front().y;
    for (const auto &p : pts)
        m = std::min(m, p.y);
    return m;
}

std::string
Curve::toTable() const
{
    std::ostringstream out;
    out << "# " << label << '\n';
    for (const auto &p : pts)
        out << p.x << ' ' << p.y << '\n';
    return out.str();
}

std::vector<std::uint64_t>
logSweep(std::uint64_t lo, std::uint64_t hi, unsigned factor)
{
    if (factor < 2)
        panic("logSweep factor must be >= 2");
    // lo = 0 would loop forever: 0 * factor stays 0, so the sweep
    // variable never advances toward hi.
    VANS_REQUIRE("curve", 0, lo >= 1,
                 "logSweep lower bound must be >= 1 (got %llu)",
                 static_cast<unsigned long long>(lo));
    std::vector<std::uint64_t> out;
    for (std::uint64_t v = lo; v <= hi; v *= factor) {
        out.push_back(v);
        if (v > hi / factor)
            break;
    }
    if (out.empty() || out.back() != hi)
        out.push_back(hi);
    return out;
}

std::string
formatSize(std::uint64_t bytes)
{
    const char *suffix = "";
    std::uint64_t v = bytes;
    if (bytes >= (1ull << 30) && bytes % (1ull << 30) == 0) {
        v = bytes >> 30;
        suffix = "G";
    } else if (bytes >= (1ull << 20) && bytes % (1ull << 20) == 0) {
        v = bytes >> 20;
        suffix = "M";
    } else if (bytes >= (1ull << 10) && bytes % (1ull << 10) == 0) {
        v = bytes >> 10;
        suffix = "K";
    }
    std::ostringstream out;
    out << v << suffix;
    return out.str();
}

} // namespace vans
