/**
 * @file
 * Curve container and the analysis primitives LENS builds on.
 *
 * A Curve is an ordered series of (x, y) points, typically latency or
 * bandwidth versus a swept size. The analysis entry points are:
 *
 *  - findInflections(): locate the x positions where y jumps by more
 *    than a relative threshold between consecutive sweep points. On a
 *    log-spaced size sweep, buffer-capacity overflows appear exactly
 *    as such jumps (paper section III-A, "buffer prober").
 *  - segmentLevels(): average y within the plateaus delimited by the
 *    inflections, used to attribute a latency to each buffer level.
 *  - accuracyAgainst(): the paper's validation metric -- arithmetic
 *    mean over sweep points of (1 - |sim - ref| / ref).
 */

#ifndef VANS_COMMON_CURVE_HH
#define VANS_COMMON_CURVE_HH

#include <cstdint>
#include <string>
#include <vector>

namespace vans
{

/** One sampled point of a swept experiment. */
struct CurvePoint
{
    double x;
    double y;
};

/** Ordered (x, y) series with the analysis helpers LENS uses. */
class Curve
{
  public:
    Curve() = default;
    explicit Curve(std::string curve_name) : label(std::move(curve_name))
    {}

    void add(double x, double y) { pts.push_back({x, y}); }

    const std::vector<CurvePoint> &points() const { return pts; }
    std::size_t size() const { return pts.size(); }
    bool empty() const { return pts.empty(); }
    const CurvePoint &operator[](std::size_t i) const { return pts[i]; }

    const std::string &name() const { return label; }

    /** y value at the largest x <= @p x (or first point). */
    double valueAt(double x) const;

    /**
     * X positions where y rises by more than @p rel_threshold
     * relative to the previous point (e.g. 0.25 = a 25% jump).
     * Consecutive jumps are merged: only the first x of a rising run
     * is reported, which maps a multi-point ramp to one inflection.
     */
    std::vector<double> findInflections(double rel_threshold) const;

    /**
     * Mean y of each plateau delimited by @p inflections (the x
     * values returned by findInflections). Returns inflections.size()
     * + 1 level values, low-x plateau first.
     */
    std::vector<double>
    segmentLevels(const std::vector<double> &inflections) const;

    /**
     * Paper-style accuracy versus a reference curve evaluated at the
     * same x positions: mean over points of max(0, 1 - |y-ref|/ref).
     * X values are matched by nearest reference point.
     */
    double accuracyAgainst(const Curve &reference) const;

    /** Maximum y over all points (0 on empty). */
    double maxY() const;

    /** Minimum y over all points (0 on empty). */
    double minY() const;

    /** Render as "# label" + "x y" rows. */
    std::string toTable() const;

  private:
    std::vector<CurvePoint> pts;
    std::string label;
};

/**
 * Standard log2-spaced sweep of sizes in [lo, hi], multiplying by
 * @p factor (default 2) each step; both ends inclusive.
 */
std::vector<std::uint64_t> logSweep(std::uint64_t lo, std::uint64_t hi,
                                    unsigned factor = 2);

/** Format a byte count as "64", "16K", "4M", "256M"... */
std::string formatSize(std::uint64_t bytes);

} // namespace vans

#endif // VANS_COMMON_CURVE_HH
