#include "common/event_queue.hh"

#include <utility>

#include "common/check.hh"
#include "common/logging.hh"
#include "common/snapshot.hh"
#include "common/stats.hh"

namespace vans
{

void
EventQueue::siftUp(std::size_t i)
{
    Key k = heap[i];
    while (i > 0) {
        std::size_t parent = (i - 1) / 2;
        if (!before(k, heap[parent]))
            break;
        heap[i] = heap[parent];
        i = parent;
    }
    heap[i] = k;
}

std::uint32_t
EventQueue::acquireSlot()
{
    if (!freeSlots.empty()) {
        std::uint32_t slot = freeSlots.back();
        freeSlots.pop_back();
        return slot;
    }
    if ((slabSize & (chunkSize - 1)) == 0) {
        // simlint-allow(hotpath: slab growth is amortized -- one
        // chunk allocation per 128 new peak-pending slots, and none
        // at all once the slab reaches the steady-state depth)
        chunks.push_back(std::make_unique<Callback[]>(chunkSize));
        // Both the pending heap and the free list are bounded by the
        // slot count, but vector doubling would otherwise let them
        // reallocate lazily long after the slab stopped growing.
        // Reserving here pins all their growth onto this amortized
        // path, keeping schedule()/step() allocation-free.
        heap.reserve(slabSize + chunkSize);
        freeSlots.reserve(slabSize + chunkSize);
    }
    return slabSize++;
}

void
EventQueue::schedule(Tick when, Callback cb)
{
    // Causality: an event may never be scheduled in the past.
    VANS_REQUIRE("eventq", now, when >= now,
                 "event scheduled in the past (when=%llu now=%llu)",
                 static_cast<unsigned long long>(when),
                 static_cast<unsigned long long>(now));
    if (cb.heapAllocated())
        ++numHeapCallbacks;

    std::uint32_t slot = acquireSlot();
    cell(slot) = std::move(cb);

    heap.push_back(Key{when, nextSeq++, slot});
    siftUp(heap.size() - 1);
    if (heap.size() > maxPending)
        maxPending = heap.size();
}

bool
EventQueue::step()
{
    if (heap.empty())
        return false;

    Key k = heap.front();
    // Floyd's deletion: push the root hole down to a leaf along the
    // smaller-child path, drop the last key in, and sift it back up.
    // One comparison per level on the way down beats the classic
    // replace-root-and-sift-down on the deep, near-sorted heaps the
    // pipeline produces.
    Key last = heap.back();
    heap.pop_back();
    if (!heap.empty()) {
        std::size_t i = 0;
        std::size_t n = heap.size();
        for (;;) {
            std::size_t child = 2 * i + 1;
            if (child >= n)
                break;
            if (child + 1 < n &&
                before(heap[child + 1], heap[child]))
                ++child;
            heap[i] = heap[child];
            i = child;
        }
        heap[i] = last;
        siftUp(i);
    }

    // Execution order: ticks are non-decreasing, and same-tick
    // events preserve scheduling order (seq-FIFO) -- the property
    // every component handshake in the pipeline relies on.
    VANS_AUDIT("eventq", now,
               k.when > lastExecWhen ||
                   (k.when == lastExecWhen && k.seq > lastExecSeq) ||
                   numExecuted == 0,
               "event order broken: popped (when=%llu seq=%llu) "
               "after (when=%llu seq=%llu)",
               static_cast<unsigned long long>(k.when),
               static_cast<unsigned long long>(k.seq),
               static_cast<unsigned long long>(lastExecWhen),
               static_cast<unsigned long long>(lastExecSeq));
    lastExecWhen = k.when;
    lastExecSeq = k.seq;

    now = k.when;
    ++numExecuted;
    // Invoke in place: the chunked slab guarantees the cell stays
    // put even if the callback schedules. The slot is released only
    // after the invocation so a nested schedule cannot reuse it.
    Callback &cb = cell(k.slot);
    cb();
    cb.reset();
    freeSlots.push_back(k.slot);
    return true;
}

Tick
EventQueue::run()
{
    while (step()) {
    }
    return now;
}

void
EventQueue::runWindow(Tick limit)
{
    while (!heap.empty() && heap.front().when < limit)
        step();
    if (now < limit)
        now = limit;
}

Tick
EventQueue::runUntil(Tick limit)
{
    while (!heap.empty() && heap.front().when <= limit)
        step();
    if (now < limit && heap.empty())
        return now;
    now = std::max(now, limit);
    return now;
}

void
EventQueue::snapshotTo(snapshot::StateSink &sink) const
{
    sink.tag("eventq");
    sink.u64(now);
    sink.u64(nextSeq);
    sink.u64(numExecuted);
    sink.u64(lastExecWhen);
    sink.u64(lastExecSeq);
    sink.u64(numHeapCallbacks);
    sink.u64(maxPending);
}

void
EventQueue::restoreFrom(snapshot::StateSource &src)
{
    VANS_REQUIRE("eventq", now, heap.empty() && now == 0,
                 "snapshot restore into a non-fresh queue "
                 "(now=%llu pending=%zu)",
                 static_cast<unsigned long long>(now), heap.size());
    src.tag("eventq");
    now = src.u64();
    nextSeq = src.u64();
    numExecuted = src.u64();
    lastExecWhen = src.u64();
    lastExecSeq = src.u64();
    numHeapCallbacks = src.u64();
    maxPending = src.u64();
}

void
EventQueue::statsInto(StatGroup &stats) const
{
    stats.scalar("events_scheduled").set(nextSeq);
    stats.scalar("events_executed").set(numExecuted);
    stats.scalar("peak_pending").set(maxPending);
    stats.scalar("callback_heap_spills").set(numHeapCallbacks);
    stats.scalar("slab_capacity").set(slabSize);
}

} // namespace vans
