#include "common/event_queue.hh"

#include "common/logging.hh"

namespace vans
{

void
EventQueue::schedule(Tick when, Callback cb)
{
    if (when < now)
        panic("event scheduled in the past (when=%llu now=%llu)",
              static_cast<unsigned long long>(when),
              static_cast<unsigned long long>(now));
    heap.push(Entry{when, nextSeq++, std::move(cb)});
}

bool
EventQueue::step()
{
    if (heap.empty())
        return false;
    // priority_queue::top() returns a const ref; move the callback out
    // via a copy of the entry before popping.
    Entry e = heap.top();
    heap.pop();
    now = e.when;
    ++numExecuted;
    e.cb();
    return true;
}

Tick
EventQueue::run()
{
    while (step()) {
    }
    return now;
}

Tick
EventQueue::runUntil(Tick limit)
{
    while (!heap.empty() && heap.top().when <= limit)
        step();
    if (now < limit && heap.empty())
        return now;
    now = std::max(now, limit);
    return now;
}

} // namespace vans
