/**
 * @file
 * Discrete-event simulation kernel.
 *
 * A single EventQueue owns global simulated time. Components schedule
 * closures at absolute or relative ticks; the queue executes them in
 * (tick, insertion-order) order. Events scheduled for the same tick
 * therefore run in FIFO order, which keeps component handshakes
 * deterministic.
 *
 * The kernel is allocation-conscious: callbacks are InplaceCallback
 * (typical captures stored inline, moved - never copied), and the
 * ready structure is a binary min-heap of 24-byte POD keys whose
 * callbacks live in a slab with a free list. Sifting the heap moves
 * only the small keys; the callback itself is touched exactly twice
 * (constructed on schedule, moved out on pop). Steady-state
 * scheduling therefore performs no allocations at all once the slab
 * and heap have grown to the peak pending depth, which suits the
 * near-monotonic tick streams the iMC/DIMM pipeline produces.
 */

#ifndef VANS_COMMON_EVENT_QUEUE_HH
#define VANS_COMMON_EVENT_QUEUE_HH

#include <cstdint>
#include <memory>
#include <vector>

#include "common/inplace_function.hh"
#include "common/types.hh"

namespace vans::snapshot
{
class StateSink;
class StateSource;
} // namespace vans::snapshot

namespace vans
{

class StatGroup;

/** A discrete-event queue with a global tick counter. */
// simlint-hot
class EventQueue
{
  public:
    using Callback = InplaceCallback;

    EventQueue() = default;
    EventQueue(const EventQueue &) = delete;
    EventQueue &operator=(const EventQueue &) = delete;

    /** Current simulated time. */
    Tick curTick() const { return now; }

    /** Schedule @p cb at absolute tick @p when (must be >= curTick). */
    void schedule(Tick when, Callback cb);

    /** Schedule @p cb @p delta ticks from now. */
    void scheduleAfter(Tick delta, Callback cb)
    {
        schedule(now + delta, std::move(cb));
    }

    /** Run until the queue drains. @return final tick. */
    Tick run();

    /**
     * Run until the queue drains or @p limit is reached (events at
     * exactly @p limit still execute). @return final tick.
     */
    Tick runUntil(Tick limit);

    /** Execute a single event. @return false if the queue was empty. */
    bool step();

    /**
     * Tick of the next pending event. Precondition: !empty(). Used by
     * the sharded kernel to derive conservative window boundaries.
     */
    Tick nextAt() const { return heap.front().when; }

    /**
     * Execute every event with when < @p limit (strictly: events at
     * exactly @p limit belong to the next window), then advance the
     * clock to @p limit. This is the shard-side primitive of the
     * sharded kernel: after a window the queue's notion of "now" is
     * the window end, so state sealed from another shard during the
     * next phase (e.g. a fence-driven LSQ seal) schedules at or after
     * the window boundary and never in this queue's past.
     */
    void runWindow(Tick limit);

    /** Number of pending events. */
    std::size_t pending() const { return heap.size(); }

    /** True when no events are pending. */
    bool empty() const { return heap.empty(); }

    /** Total events executed since construction. */
    std::uint64_t executed() const { return numExecuted; }

    /** Total events scheduled since construction. */
    std::uint64_t scheduled() const { return nextSeq; }

    /** Highest number of simultaneously pending events seen. */
    std::size_t peakPending() const { return maxPending; }

    /**
     * Callbacks whose captures exceeded the inline buffer and
     * spilled to the heap. Zero in a well-tuned simulator.
     */
    std::uint64_t heapCallbacks() const { return numHeapCallbacks; }

    /** Export the kernel counters as scalars of @p stats. */
    void statsInto(StatGroup &stats) const;

    /**
     * Serialize the kernel counters (time, seq, totals). Pending
     * events are NOT serialized: the snapshot contract requires the
     * world to be quiescent, and each component re-arms its own
     * guarded timers during restore.
     */
    void snapshotTo(snapshot::StateSink &sink) const;

    /**
     * Restore counters into this queue, which must be freshly built
     * (empty, tick 0). Re-armed timers scheduled by the components
     * afterwards continue the captured seq stream.
     */
    void restoreFrom(snapshot::StateSource &src);

  private:
    /**
     * Heap key: everything the ordering needs, nothing else, so heap
     * sifts move 24-byte PODs instead of whole closures. `slot`
     * indexes the callback slab.
     */
    // simlint-transient(keys only exist for pending events, and the
    // snapshot contract forbids pending events: restoreFrom REQUIREs
    // heap.empty())
    struct Key
    {
        Tick when;
        std::uint64_t seq;
        std::uint32_t slot;
    };

    /** True when @p a runs strictly before @p b. */
    static bool
    before(const Key &a, const Key &b)
    {
        return a.when != b.when ? a.when < b.when : a.seq < b.seq;
    }

    void siftUp(std::size_t i);

    /** Callbacks per slab chunk (power of two). */
    static constexpr std::uint32_t chunkShift = 7;
    static constexpr std::uint32_t chunkSize = 1u << chunkShift;

    /** The slab cell a key's slot refers to. */
    Callback &
    cell(std::uint32_t slot)
    {
        return chunks[slot >> chunkShift][slot & (chunkSize - 1)];
    }

    std::uint32_t acquireSlot();

    // simlint-transient(pending events are not serialized by
    // contract: snapshots are taken at quiescence and restoreFrom
    // REQUIREs heap.empty, so the heap is provably empty both ways)
    std::vector<Key> heap;
    /**
     * Chunked callback slab: chunks never move, so cells stay valid
     * across growth and an executing callback may safely schedule
     * (which can grow the slab) without invalidating itself.
     */
    // simlint-transient(slab cells hold closures for pending events
    // only; with the heap empty by contract every cell is dead and
    // the slab regrows on demand after restore)
    std::vector<std::unique_ptr<Callback[]>> chunks;
    // simlint-transient(slab bookkeeping for the chunks above; dead
    // when no event is pending and rebuilt as the restored world
    // schedules)
    std::uint32_t slabSize = 0;
    // simlint-transient(free-list over dead slab cells; rebuilt as
    // the restored world schedules and retires events)
    std::vector<std::uint32_t> freeSlots;

    Tick now = 0;
    std::uint64_t nextSeq = 0;
    std::uint64_t numExecuted = 0;
    /** Last executed key, for the seq-FIFO ordering audit. */
    Tick lastExecWhen = 0;
    std::uint64_t lastExecSeq = 0;
    std::uint64_t numHeapCallbacks = 0;
    std::size_t maxPending = 0;
};

} // namespace vans

#endif // VANS_COMMON_EVENT_QUEUE_HH
