/**
 * @file
 * Discrete-event simulation kernel.
 *
 * A single EventQueue owns global simulated time. Components schedule
 * closures at absolute or relative ticks; the queue executes them in
 * (tick, insertion-order) order. Events scheduled for the same tick
 * therefore run in FIFO order, which keeps component handshakes
 * deterministic.
 */

#ifndef VANS_COMMON_EVENT_QUEUE_HH
#define VANS_COMMON_EVENT_QUEUE_HH

#include <cstdint>
#include <functional>
#include <queue>
#include <vector>

#include "common/types.hh"

namespace vans
{

/** A discrete-event queue with a global tick counter. */
class EventQueue
{
  public:
    using Callback = std::function<void()>;

    EventQueue() = default;
    EventQueue(const EventQueue &) = delete;
    EventQueue &operator=(const EventQueue &) = delete;

    /** Current simulated time. */
    Tick curTick() const { return now; }

    /** Schedule @p cb at absolute tick @p when (must be >= curTick). */
    void schedule(Tick when, Callback cb);

    /** Schedule @p cb @p delta ticks from now. */
    void scheduleAfter(Tick delta, Callback cb)
    {
        schedule(now + delta, std::move(cb));
    }

    /** Run until the queue drains. @return final tick. */
    Tick run();

    /**
     * Run until the queue drains or @p limit is reached (events at
     * exactly @p limit still execute). @return final tick.
     */
    Tick runUntil(Tick limit);

    /** Execute a single event. @return false if the queue was empty. */
    bool step();

    /** Number of pending events. */
    std::size_t pending() const { return heap.size(); }

    /** True when no events are pending. */
    bool empty() const { return heap.empty(); }

    /** Total events executed since construction. */
    std::uint64_t executed() const { return numExecuted; }

  private:
    struct Entry
    {
        Tick when;
        std::uint64_t seq;
        Callback cb;
    };

    struct Later
    {
        bool
        operator()(const Entry &a, const Entry &b) const
        {
            if (a.when != b.when)
                return a.when > b.when;
            return a.seq > b.seq;
        }
    };

    std::priority_queue<Entry, std::vector<Entry>, Later> heap;
    Tick now = 0;
    std::uint64_t nextSeq = 0;
    std::uint64_t numExecuted = 0;
};

} // namespace vans

#endif // VANS_COMMON_EVENT_QUEUE_HH
