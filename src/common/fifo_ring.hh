/**
 * @file
 * Growable FIFO ring for hot-path queues: addresses, request handles,
 * or small movable ops (media commands holding a callback).
 *
 * std::deque allocates and frees map blocks as the head crosses chunk
 * boundaries, so a steady push/pop stream still churns the allocator.
 * FifoRing keeps one power-of-two buffer that only ever grows: after
 * the queue has warmed to its peak depth, push/pop is a store, a load
 * and two index increments -- no allocation, ever.
 *
 * T must be default-constructible and move-assignable. Non-trivial
 * elements are reset to T{} on pop so captured resources (callback
 * state) do not linger in dead slots.
 */

#ifndef VANS_COMMON_FIFO_RING_HH
#define VANS_COMMON_FIFO_RING_HH

#include <cstddef>
#include <memory>
#include <type_traits>
#include <utility>

namespace vans
{

/** Bounded-growth FIFO over a single power-of-two ring buffer. */
template <typename T>
class FifoRing
{
  public:
    FifoRing() = default;
    FifoRing(const FifoRing &) = delete;
    FifoRing &operator=(const FifoRing &) = delete;
    FifoRing(FifoRing &&other) noexcept
        : buf(std::move(other.buf)), cap(other.cap),
          head(other.head), count(other.count)
    {
        other.cap = 0;
        other.head = 0;
        other.count = 0;
    }

    FifoRing &
    operator=(FifoRing &&other) noexcept
    {
        buf = std::move(other.buf);
        cap = other.cap;
        head = other.head;
        count = other.count;
        other.cap = 0;
        other.head = 0;
        other.count = 0;
        return *this;
    }

    bool empty() const { return count == 0; }
    std::size_t size() const { return count; }

    /** Buffer capacity (grows, never shrinks). */
    std::size_t capacity() const { return cap; }

    void
    push_back(const T &v)
    {
        if (count == cap)
            grow();
        buf[(head + count) & (cap - 1)] = v;
        ++count;
    }

    void
    push_back(T &&v)
    {
        if (count == cap)
            grow();
        buf[(head + count) & (cap - 1)] = std::move(v);
        ++count;
    }

    T &
    front()
    {
        return buf[head];
    }

    const T &
    front() const
    {
        return buf[head];
    }

    /** Element @p i positions behind the front (0 == front). */
    const T &
    at(std::size_t i) const
    {
        return buf[(head + i) & (cap - 1)];
    }

    /** Mutable element access, same indexing as at(). */
    T &
    at(std::size_t i)
    {
        return buf[(head + i) & (cap - 1)];
    }

    /**
     * Remove element @p i preserving the order of the rest, by
     * shifting the [0, i) prefix back one slot. Cost is O(i), so a
     * scheduler erasing within its scan window pays the window, not
     * the queue depth -- the depth is unbounded when a consumer is
     * starved (e.g. posted writes held behind a read stream).
     */
    void
    eraseAt(std::size_t i)
    {
        for (std::size_t j = i; j > 0; --j)
            at(j) = std::move(at(j - 1));
        pop_front();
    }

    void
    pop_front()
    {
        if constexpr (!std::is_trivially_copyable_v<T>)
            buf[head] = T{}; // Release captured state promptly.
        head = (head + 1) & (cap - 1);
        --count;
    }

    void
    clear()
    {
        if constexpr (!std::is_trivially_copyable_v<T>) {
            while (count)
                pop_front();
        }
        head = 0;
        count = 0;
    }

  private:
    void
    grow()
    {
        std::size_t next = cap ? cap * 2 : 8;
        std::unique_ptr<T[]> nbuf(new T[next]);
        for (std::size_t i = 0; i < count; ++i)
            nbuf[i] = std::move(buf[(head + i) & (cap - 1)]);
        buf = std::move(nbuf);
        cap = next;
        head = 0;
    }

    std::unique_ptr<T[]> buf;
    std::size_t cap = 0;
    std::size_t head = 0;
    std::size_t count = 0;
};

} // namespace vans

#endif // VANS_COMMON_FIFO_RING_HH
