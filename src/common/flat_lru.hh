/**
 * @file
 * Fixed-capacity, allocation-free LRU set keyed by address.
 *
 * The AIT consults its buffer LRU and translation cache on every
 * single NVRAM access, so the classic std::list + std::unordered_map
 * pair (one node allocation per insert, pointer-chasing on every
 * splice) sits squarely on the simulator's hot path. This container
 * replaces it with three flat arrays sized once at construction:
 *
 *  - a slot array holding the keys,
 *  - prev/next index arrays forming the recency chain (a splice is
 *    three index writes, no allocation, no pointer chase into
 *    scattered nodes),
 *  - an open-addressed hash table (linear probing, backward-shift
 *    deletion) mapping key -> slot.
 *
 * After construction the container never allocates. Iteration order
 * (MRU to LRU) is fully deterministic, which the snapshot/fork
 * subsystem relies on to serialize recency state bit-exactly.
 */

#ifndef VANS_COMMON_FLAT_LRU_HH
#define VANS_COMMON_FLAT_LRU_HH

#include <algorithm>
#include <cstdint>
#include <vector>

#include "common/check.hh"
#include "common/types.hh"

namespace vans
{

/** Flat array-backed LRU set of addresses. */
class FlatLru
{
  public:
    static constexpr std::uint32_t npos = 0xffffffffu;

    explicit FlatLru(std::size_t cap)
        : capSlots(static_cast<std::uint32_t>(cap)),
          keys(cap),
          prev(cap, npos),
          next(cap, npos)
    {
        VANS_REQUIRE("flat-lru", 0, cap > 0 && cap < npos,
                     "invalid LRU capacity %zu", cap);
        std::size_t buckets = 4;
        while (buckets < cap * 2)
            buckets *= 2;
        table.assign(buckets, 0);
    }

    std::size_t size() const { return numUsed; }
    std::size_t capacity() const { return capSlots; }
    bool full() const { return numUsed == capSlots; }

    bool contains(Addr key) const { return find(key) != npos; }

    /** Move @p key to MRU. @return false when absent. */
    bool
    touch(Addr key)
    {
        std::uint32_t slot = find(key);
        if (slot == npos)
            return false;
        moveToFront(slot);
        return true;
    }

    /**
     * Insert @p key at MRU (must be absent). When full, the LRU key
     * is evicted first and stored in @p evicted.
     * @return true when an eviction happened.
     */
    bool
    insert(Addr key, Addr &evicted)
    {
        VANS_REQUIRE("flat-lru", 0, find(key) == npos,
                     "inserting a present key");
        bool evictedAny = false;
        if (numUsed == capSlots) {
            evicted = keys[tail];
            evictedAny = true;
            std::uint32_t victim = tail;
            unlink(victim);
            hashErase(keys[victim]);
            --numUsed;
            fill(victim, key);
        } else {
            fill(static_cast<std::uint32_t>(numUsed), key);
        }
        return evictedAny;
    }

    /** Remove @p key. @return false when absent. */
    bool
    erase(Addr key)
    {
        std::uint32_t slot = find(key);
        if (slot == npos)
            return false;
        unlink(slot);
        hashErase(key);
        --numUsed;
        // Keep the slot storage compact: move the last used slot's
        // contents into the freed slot so slots [0, numUsed) stay
        // the live ones.
        std::uint32_t last = static_cast<std::uint32_t>(numUsed);
        if (slot != last)
            relocateSlot(last, slot);
        return true;
    }

    /** The key that insert() would evict next (size() > 0). */
    Addr
    lruKey() const
    {
        VANS_REQUIRE("flat-lru", 0, numUsed > 0,
                     "lruKey() on an empty LRU");
        return keys[tail];
    }

    /** Visit keys from MRU to LRU. */
    template <typename Fn>
    void
    forEachMruToLru(Fn &&fn) const
    {
        for (std::uint32_t s = head; s != npos; s = next[s])
            fn(keys[s]);
    }

    void
    clear()
    {
        numUsed = 0;
        head = tail = npos;
        std::fill(table.begin(), table.end(), 0u);
    }

  private:
    static std::uint64_t
    mix(Addr key)
    {
        std::uint64_t z = key + 0x9e3779b97f4a7c15ull;
        z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
        z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
        return z ^ (z >> 31);
    }

    std::size_t homeOf(Addr key) const
    {
        return mix(key) & (table.size() - 1);
    }

    /** Slot holding @p key, or npos. */
    std::uint32_t
    find(Addr key) const
    {
        std::size_t mask = table.size() - 1;
        std::size_t i = homeOf(key);
        while (table[i] != 0) {
            std::uint32_t slot = table[i] - 1;
            if (keys[slot] == key)
                return slot;
            i = (i + 1) & mask;
        }
        return npos;
    }

    void
    hashInsert(Addr key, std::uint32_t slot)
    {
        std::size_t mask = table.size() - 1;
        std::size_t i = homeOf(key);
        while (table[i] != 0)
            i = (i + 1) & mask;
        table[i] = slot + 1;
    }

    /** Point the table entry for @p key at @p slot. */
    void
    hashRepoint(Addr key, std::uint32_t slot)
    {
        std::size_t mask = table.size() - 1;
        std::size_t i = homeOf(key);
        while (table[i] == 0 || keys[table[i] - 1] != key)
            i = (i + 1) & mask;
        table[i] = slot + 1;
    }

    /** Linear-probing erase with backward-shift compaction. */
    void
    hashErase(Addr key)
    {
        std::size_t mask = table.size() - 1;
        std::size_t i = homeOf(key);
        while (table[i] == 0 || keys[table[i] - 1] != key)
            i = (i + 1) & mask;
        std::size_t j = i;
        for (;;) {
            j = (j + 1) & mask;
            if (table[j] == 0)
                break;
            std::size_t home = homeOf(keys[table[j] - 1]);
            // table[j] may fill the hole at i only if its home
            // position is not cyclically within (i, j].
            bool keeps = (i <= j) ? (home > i && home <= j)
                                  : (home > i || home <= j);
            if (!keeps) {
                table[i] = table[j];
                i = j;
            }
        }
        table[i] = 0;
    }

    void
    unlink(std::uint32_t slot)
    {
        std::uint32_t p = prev[slot];
        std::uint32_t n = next[slot];
        if (p != npos)
            next[p] = n;
        else
            head = n;
        if (n != npos)
            prev[n] = p;
        else
            tail = p;
    }

    void
    linkFront(std::uint32_t slot)
    {
        prev[slot] = npos;
        next[slot] = head;
        if (head != npos)
            prev[head] = slot;
        head = slot;
        if (tail == npos)
            tail = slot;
    }

    void
    moveToFront(std::uint32_t slot)
    {
        if (head == slot)
            return;
        unlink(slot);
        linkFront(slot);
    }

    /** Put @p key into unused @p slot, link MRU, index it. */
    void
    fill(std::uint32_t slot, Addr key)
    {
        keys[slot] = key;
        linkFront(slot);
        hashInsert(key, slot);
        ++numUsed;
    }

    /** Move live slot @p from into free slot @p to, fixing links. */
    void
    relocateSlot(std::uint32_t from, std::uint32_t to)
    {
        keys[to] = keys[from];
        prev[to] = prev[from];
        next[to] = next[from];
        if (prev[to] != npos)
            next[prev[to]] = to;
        else
            head = to;
        if (next[to] != npos)
            prev[next[to]] = to;
        else
            tail = to;
        hashRepoint(keys[to], to);
    }

    std::uint32_t capSlots;
    std::vector<Addr> keys;
    std::vector<std::uint32_t> prev;
    std::vector<std::uint32_t> next;
    /** Open-addressed table of slot+1 (0 = empty). */
    std::vector<std::uint32_t> table;
    std::size_t numUsed = 0;
    std::uint32_t head = npos;
    std::uint32_t tail = npos;
};

} // namespace vans

#endif // VANS_COMMON_FLAT_LRU_HH
