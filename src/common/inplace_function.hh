/**
 * @file
 * Small-buffer-optimized move-only callable for the event kernel and
 * the NVRAM completion-callback plumbing.
 *
 * std::function heap-allocates for any capture larger than (libstdc++)
 * two pointers and copy-constructs the capture on every copy. Event
 * callbacks in this simulator are almost always lambdas capturing a
 * handful of pointers/references, are invoked exactly once, and never
 * need to be copied. InplaceFunction exploits that profile: captures
 * up to `inlineCapacity` bytes live inline in the object (no
 * allocation on schedule), larger captures fall back to a single heap
 * cell, and the type is move-only so the kernel can move callbacks
 * out of its slab instead of copying them.
 *
 * The primary template is signature-parameterized so the same storage
 * scheme serves the event kernel (`InplaceCallback` = void()) and the
 * per-request DoneCallbacks (`void(Tick)`) plus the AIT's model hooks
 * (`void(Addr, Tick)`, `bool(Addr)`) without reintroducing
 * std::function anywhere on the event path.
 */

#ifndef VANS_COMMON_INPLACE_FUNCTION_HH
#define VANS_COMMON_INPLACE_FUNCTION_HH

#include <cstddef>
#include <new>
#include <type_traits>
#include <utility>

namespace vans
{

template <typename Signature, std::size_t Capacity = 48>
class InplaceFunction; // primary left undefined; see specialization

/** Move-only `R(Args...)` callable with inline small-capture storage. */
template <typename R, typename... Args, std::size_t Capacity>
class InplaceFunction<R(Args...), Capacity>
{
  public:
    /** Captures up to this many bytes are stored without allocating. */
    static constexpr std::size_t inlineCapacity = Capacity;

    InplaceFunction() noexcept = default;
    InplaceFunction(std::nullptr_t) noexcept {} // NOLINT: implicit

    template <typename F,
              typename = std::enable_if_t<
                  !std::is_same_v<std::decay_t<F>, InplaceFunction> &&
                  !std::is_same_v<std::decay_t<F>, std::nullptr_t>>>
    InplaceFunction(F &&f) // NOLINT: intentional implicit conversion
    {
        using Fn = std::decay_t<F>;
        static_assert(std::is_invocable_r_v<R, Fn &, Args...>,
                      "callable is not invocable with this signature");
        if constexpr (fitsInline<Fn>()) {
            ::new (static_cast<void *>(storage))
                Fn(std::forward<F>(f));
            ops = &inlineOps<Fn>;
        } else {
            *reinterpret_cast<Fn **>(storage) =
                new Fn(std::forward<F>(f));
            ops = &heapOps<Fn>;
        }
    }

    InplaceFunction(InplaceFunction &&other) noexcept
    {
        moveFrom(std::move(other));
    }

    InplaceFunction &
    operator=(InplaceFunction &&other) noexcept
    {
        if (this != &other) {
            reset();
            moveFrom(std::move(other));
        }
        return *this;
    }

    InplaceFunction &
    operator=(std::nullptr_t) noexcept
    {
        reset();
        return *this;
    }

    InplaceFunction(const InplaceFunction &) = delete;
    InplaceFunction &operator=(const InplaceFunction &) = delete;

    ~InplaceFunction() { reset(); }

    /** Invoke the stored callable (must be non-empty). */
    R
    operator()(Args... args)
    {
        return ops->invoke(storage, std::forward<Args>(args)...);
    }

    explicit operator bool() const noexcept { return ops != nullptr; }

    /** True when the capture spilled to the heap (kernel stat). */
    bool
    heapAllocated() const noexcept
    {
        return ops != nullptr && ops->onHeap;
    }

    /** Destroy the stored callable, leaving the object empty. */
    void
    reset() noexcept
    {
        if (ops) {
            ops->destroy(storage);
            ops = nullptr;
        }
    }

    /** Compile-time check: does @p Fn avoid the heap fallback? */
    template <typename Fn>
    static constexpr bool
    fitsInline()
    {
        return sizeof(Fn) <= inlineCapacity &&
               alignof(Fn) <= alignof(std::max_align_t) &&
               std::is_nothrow_move_constructible_v<Fn>;
    }

  private:
    /** Static per-type vtable: invoke / destroy / relocate. */
    struct Ops
    {
        R (*invoke)(void *, Args &&...);
        void (*destroy)(void *) noexcept;
        void (*relocate)(void *dst, void *src) noexcept;
        bool onHeap;
    };

    template <typename Fn>
    static constexpr Ops inlineOps = {
        [](void *s, Args &&...args) -> R {
            return (*std::launder(reinterpret_cast<Fn *>(s)))(
                std::forward<Args>(args)...);
        },
        [](void *s) noexcept {
            std::launder(reinterpret_cast<Fn *>(s))->~Fn();
        },
        [](void *dst, void *src) noexcept {
            Fn *f = std::launder(reinterpret_cast<Fn *>(src));
            ::new (dst) Fn(std::move(*f));
            f->~Fn();
        },
        false,
    };

    template <typename Fn>
    static constexpr Ops heapOps = {
        [](void *s, Args &&...args) -> R {
            return (**reinterpret_cast<Fn **>(s))(
                std::forward<Args>(args)...);
        },
        [](void *s) noexcept { delete *reinterpret_cast<Fn **>(s); },
        [](void *dst, void *src) noexcept {
            *reinterpret_cast<Fn **>(dst) =
                *reinterpret_cast<Fn **>(src);
        },
        true,
    };

    void
    moveFrom(InplaceFunction &&other) noexcept
    {
        if (other.ops) {
            ops = other.ops;
            ops->relocate(storage, other.storage);
            other.ops = nullptr;
        }
    }

    alignas(std::max_align_t) unsigned char storage[inlineCapacity];
    const Ops *ops = nullptr;
};

/**
 * The event kernel's callback type. Its inline buffer is sized so a
 * wrapper capturing one 48-byte-capacity DoneCallback (64 bytes with
 * its vtable pointer) plus a this-pointer, an address and a couple of
 * scalars still fits: every pipeline hop that re-schedules a
 * completion callback stays allocation-free (the zero-alloc
 * regression test pins this). Kept as tight as that worst inline
 * capture -- every byte here is paid by every cell of the event
 * kernel's callback slab, and 88 is the most that still packs into
 * the same 96-byte object under max_align_t padding.
 */
using InplaceCallback = InplaceFunction<void(), 88>;

} // namespace vans

#endif // VANS_COMMON_INPLACE_FUNCTION_HH
