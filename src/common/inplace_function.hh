/**
 * @file
 * Small-buffer-optimized move-only callable for the event kernel.
 *
 * std::function heap-allocates for any capture larger than (libstdc++)
 * two pointers and copy-constructs the capture on every copy. Event
 * callbacks in this simulator are almost always lambdas capturing a
 * handful of pointers/references, are invoked exactly once, and never
 * need to be copied. InplaceCallback exploits that profile: captures
 * up to `inlineCapacity` bytes live inline in the object (no
 * allocation on schedule), larger captures fall back to a single heap
 * cell, and the type is move-only so the kernel can move callbacks
 * out of its slab instead of copying them.
 */

#ifndef VANS_COMMON_INPLACE_FUNCTION_HH
#define VANS_COMMON_INPLACE_FUNCTION_HH

#include <cstddef>
#include <new>
#include <type_traits>
#include <utility>

namespace vans
{

/** Move-only `void()` callable with inline small-capture storage. */
class InplaceCallback
{
  public:
    /** Captures up to this many bytes are stored without allocating. */
    static constexpr std::size_t inlineCapacity = 48;

    InplaceCallback() noexcept = default;

    template <typename F,
              typename = std::enable_if_t<!std::is_same_v<
                  std::decay_t<F>, InplaceCallback>>>
    InplaceCallback(F &&f) // NOLINT: intentional implicit conversion
    {
        using Fn = std::decay_t<F>;
        static_assert(std::is_invocable_r_v<void, Fn &>,
                      "InplaceCallback requires a void() callable");
        if constexpr (fitsInline<Fn>()) {
            ::new (static_cast<void *>(storage))
                Fn(std::forward<F>(f));
            ops = &inlineOps<Fn>;
        } else {
            *reinterpret_cast<Fn **>(storage) =
                new Fn(std::forward<F>(f));
            ops = &heapOps<Fn>;
        }
    }

    InplaceCallback(InplaceCallback &&other) noexcept
    {
        moveFrom(std::move(other));
    }

    InplaceCallback &
    operator=(InplaceCallback &&other) noexcept
    {
        if (this != &other) {
            reset();
            moveFrom(std::move(other));
        }
        return *this;
    }

    InplaceCallback(const InplaceCallback &) = delete;
    InplaceCallback &operator=(const InplaceCallback &) = delete;

    ~InplaceCallback() { reset(); }

    /** Invoke the stored callable (must be non-empty). */
    void operator()() { ops->invoke(storage); }

    explicit operator bool() const noexcept { return ops != nullptr; }

    /** True when the capture spilled to the heap (kernel stat). */
    bool
    heapAllocated() const noexcept
    {
        return ops != nullptr && ops->onHeap;
    }

    /** Destroy the stored callable, leaving the object empty. */
    void
    reset() noexcept
    {
        if (ops) {
            ops->destroy(storage);
            ops = nullptr;
        }
    }

    /** Compile-time check: does @p Fn avoid the heap fallback? */
    template <typename Fn>
    static constexpr bool
    fitsInline()
    {
        return sizeof(Fn) <= inlineCapacity &&
               alignof(Fn) <= alignof(std::max_align_t) &&
               std::is_nothrow_move_constructible_v<Fn>;
    }

  private:
    /** Static per-type vtable: invoke / destroy / relocate. */
    struct Ops
    {
        void (*invoke)(void *);
        void (*destroy)(void *) noexcept;
        void (*relocate)(void *dst, void *src) noexcept;
        bool onHeap;
    };

    template <typename Fn>
    static constexpr Ops inlineOps = {
        [](void *s) { (*std::launder(reinterpret_cast<Fn *>(s)))(); },
        [](void *s) noexcept {
            std::launder(reinterpret_cast<Fn *>(s))->~Fn();
        },
        [](void *dst, void *src) noexcept {
            Fn *f = std::launder(reinterpret_cast<Fn *>(src));
            ::new (dst) Fn(std::move(*f));
            f->~Fn();
        },
        false,
    };

    template <typename Fn>
    static constexpr Ops heapOps = {
        [](void *s) { (**reinterpret_cast<Fn **>(s))(); },
        [](void *s) noexcept { delete *reinterpret_cast<Fn **>(s); },
        [](void *dst, void *src) noexcept {
            *reinterpret_cast<Fn **>(dst) =
                *reinterpret_cast<Fn **>(src);
        },
        true,
    };

    void
    moveFrom(InplaceCallback &&other) noexcept
    {
        if (other.ops) {
            ops = other.ops;
            ops->relocate(storage, other.storage);
            other.ops = nullptr;
        }
    }

    alignas(std::max_align_t) unsigned char storage[inlineCapacity];
    const Ops *ops = nullptr;
};

} // namespace vans

#endif // VANS_COMMON_INPLACE_FUNCTION_HH
