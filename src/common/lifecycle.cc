#include "common/lifecycle.hh"

#include "common/logging.hh"

namespace vans::verify
{

void
RequestLifecycleChecker::onIssue(const Request &r)
{
    Tick now = eventq.curTick();
    if (r.id == 0 || r.id <= lastId) {
        monitor.report({"lifecycle", "stale-id",
                        strFormat("request id %llu not fresh "
                                  "(last issued %llu)",
                                  static_cast<unsigned long long>(r.id),
                                  static_cast<unsigned long long>(
                                      lastId)),
                        now});
    }
    if (live.count(r.id)) {
        monitor.report({"lifecycle", "double-issue",
                        strFormat("request %llu issued twice",
                                  static_cast<unsigned long long>(
                                      r.id)),
                        now});
        return;
    }
    if (r.issueTick > now) {
        monitor.report({"lifecycle", "issue-in-future",
                        strFormat("request %llu issueTick %llu > "
                                  "now %llu",
                                  static_cast<unsigned long long>(r.id),
                                  static_cast<unsigned long long>(
                                      r.issueTick),
                                  static_cast<unsigned long long>(now)),
                        now});
    }
    lastId = std::max(lastId, r.id);
    live[r.id] = LiveReq{ReqStage::Issued, r.issueTick};
    ++numIssued;
    maxInFlight = std::max(maxInFlight, live.size());
}

void
RequestLifecycleChecker::advance(const Request &r, ReqStage to)
{
    auto it = live.find(r.id);
    if (it == live.end()) {
        monitor.report(
            {"lifecycle", "unknown-request",
             strFormat("request %llu reached stage %u without being "
                       "live (never issued or already retired)",
                       static_cast<unsigned long long>(r.id),
                       static_cast<unsigned>(to)),
             eventq.curTick()});
        return;
    }
    // Forward-only: a request may re-enter the same stage (e.g. a
    // read re-queued after waiting on an RPQ slot) but never move
    // backwards.
    if (to < it->second.stage) {
        monitor.report(
            {"lifecycle", "stage-regression",
             strFormat("request %llu moved from stage %u back to %u",
                       static_cast<unsigned long long>(r.id),
                       static_cast<unsigned>(it->second.stage),
                       static_cast<unsigned>(to)),
             eventq.curTick()});
        return;
    }
    it->second.stage = to;
}

void
RequestLifecycleChecker::onRetire(const Request &r)
{
    Tick now = eventq.curTick();
    auto it = live.find(r.id);
    if (it == live.end()) {
        monitor.report({"lifecycle", "double-retire",
                        strFormat("request %llu retired while not "
                                  "live (double completion?)",
                                  static_cast<unsigned long long>(
                                      r.id)),
                        now});
        return;
    }
    if (r.completeTick < it->second.issueTick) {
        monitor.report(
            {"lifecycle", "complete-before-issue",
             strFormat("request %llu completeTick %llu < issueTick "
                       "%llu",
                       static_cast<unsigned long long>(r.id),
                       static_cast<unsigned long long>(r.completeTick),
                       static_cast<unsigned long long>(
                           it->second.issueTick)),
             now});
    }
    if (r.completeTick > now) {
        monitor.report(
            {"lifecycle", "complete-in-future",
             strFormat("request %llu completeTick %llu > now %llu",
                       static_cast<unsigned long long>(r.id),
                       static_cast<unsigned long long>(r.completeTick),
                       static_cast<unsigned long long>(now)),
             now});
    }
    live.erase(it);
    ++numRetired;
}

void
RequestLifecycleChecker::finalCheck(bool queue_drained)
{
    if (!queue_drained || live.empty())
        return;
    auto first = live.begin();
    monitor.report(
        {"lifecycle", "lost-request",
         strFormat("%zu request(s) never retired although the event "
                   "queue drained (first: id %llu, stage %u)",
                   live.size(),
                   static_cast<unsigned long long>(first->first),
                   static_cast<unsigned>(first->second.stage)),
         eventq.curTick()});
}

} // namespace vans::verify
