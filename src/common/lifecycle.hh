/**
 * @file
 * Request-lifecycle checker.
 *
 * Re-derives the life of every Request independently of the memory
 * system that services it, mirroring the Ddr4Checker design: the
 * checker sees only the observation stream (issued / queued /
 * serviced / retired notifications) and re-builds a per-request state
 * machine from it, so a controller bug -- a request completed twice,
 * completed before issue, or silently dropped -- cannot hide behind
 * the implementation's own bookkeeping.
 *
 * Checked rules:
 *  - every request id is issued exactly once, with a fresh id;
 *  - lifecycle stages only move forward (issued -> queued ->
 *    serviced -> retired); re-queueing while waiting for a resource
 *    is legal, retiring twice never is;
 *  - completion tick >= issue tick, and never in the simulated
 *    future;
 *  - the completion callback fires at most once;
 *  - when the event queue fully drains, no request is still live
 *    (a drained queue with an unretired request is a lost request).
 */

#ifndef VANS_COMMON_LIFECYCLE_HH
#define VANS_COMMON_LIFECYCLE_HH

#include <cstdint>
#include <unordered_map>

#include "common/check.hh"
#include "common/event_queue.hh"
#include "common/request.hh"

namespace vans::verify
{

/** Lifecycle stages, in the only order they may advance. */
enum class ReqStage : std::uint8_t
{
    Issued = 0,   ///< Accepted by the memory system front end.
    Queued = 1,   ///< Entered a controller queue (WPQ/RPQ/...).
    Serviced = 2, ///< Data returned / reached the ADR domain.
    Retired = 3,  ///< Completion callback delivered to the issuer.
};

/** Independent observer of every request's lifecycle. */
class RequestLifecycleChecker
{
  public:
    RequestLifecycleChecker(const EventQueue &eq, Monitor &mon)
        : eventq(eq), monitor(mon)
    {}

    void onIssue(const Request &r);
    void onQueued(const Request &r) { advance(r, ReqStage::Queued); }
    void onServiced(const Request &r)
    {
        advance(r, ReqStage::Serviced);
    }
    void onRetire(const Request &r);

    /**
     * Teardown check. @p queue_drained tells the checker whether the
     * simulation ran to quiescence (live requests are then lost) or
     * was cut off mid-flight (live requests are then expected).
     */
    void finalCheck(bool queue_drained);

    std::size_t inFlight() const { return live.size(); }
    std::uint64_t issued() const { return numIssued; }
    std::uint64_t retired() const { return numRetired; }
    std::size_t peakInFlight() const { return maxInFlight; }

  private:
    struct LiveReq
    {
        ReqStage stage;
        Tick issueTick;
    };

    void advance(const Request &r, ReqStage to);

    const EventQueue &eventq;
    Monitor &monitor;
    std::unordered_map<std::uint64_t, LiveReq> live;
    std::uint64_t lastId = 0;
    std::uint64_t numIssued = 0;
    std::uint64_t numRetired = 0;
    std::size_t maxInFlight = 0;
};

} // namespace vans::verify

#endif // VANS_COMMON_LIFECYCLE_HH
