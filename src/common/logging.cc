#include "common/logging.hh"

#include <atomic>
#include <cstdio>
#include <cstdlib>
#include <vector>

namespace vans
{

namespace
{
// Read by warn()/inform() from sweep worker threads while the main
// thread may toggle it: atomic so the flag stays race-free.
std::atomic<bool> quietFlag{false};

std::string
vformat(const char *fmt, std::va_list ap)
{
    std::va_list ap2;
    va_copy(ap2, ap);
    int n = std::vsnprintf(nullptr, 0, fmt, ap);
    std::vector<char> buf(static_cast<size_t>(n) + 1);
    std::vsnprintf(buf.data(), buf.size(), fmt, ap2);
    va_end(ap2);
    return std::string(buf.data(), static_cast<size_t>(n));
}
} // namespace

std::string
strFormat(const char *fmt, ...)
{
    std::va_list ap;
    va_start(ap, fmt);
    std::string s = vformat(fmt, ap);
    va_end(ap);
    return s;
}

void
panic(const char *fmt, ...)
{
    std::va_list ap;
    va_start(ap, fmt);
    std::string s = vformat(fmt, ap);
    va_end(ap);
    std::fprintf(stderr, "panic: %s\n", s.c_str());
    std::abort();
}

void
fatal(const char *fmt, ...)
{
    std::va_list ap;
    va_start(ap, fmt);
    std::string s = vformat(fmt, ap);
    va_end(ap);
    std::fprintf(stderr, "fatal: %s\n", s.c_str());
    std::exit(1);
}

void
warn(const char *fmt, ...)
{
    if (quietFlag.load(std::memory_order_relaxed))
        return;
    std::va_list ap;
    va_start(ap, fmt);
    std::string s = vformat(fmt, ap);
    va_end(ap);
    std::fprintf(stderr, "warn: %s\n", s.c_str());
}

void
inform(const char *fmt, ...)
{
    if (quietFlag.load(std::memory_order_relaxed))
        return;
    std::va_list ap;
    va_start(ap, fmt);
    std::string s = vformat(fmt, ap);
    va_end(ap);
    std::fprintf(stderr, "info: %s\n", s.c_str());
}

void
setQuiet(bool quiet)
{
    quietFlag.store(quiet, std::memory_order_relaxed);
}

bool
isQuiet()
{
    return quietFlag.load(std::memory_order_relaxed);
}

} // namespace vans
