/**
 * @file
 * Status and error reporting, following the gem5 idiom.
 *
 * panic()  - an internal simulator invariant was violated (a bug in
 *            this code base); aborts so a debugger/core dump can catch
 *            the state.
 * fatal()  - the simulation cannot continue because of a user error
 *            (bad configuration, invalid arguments); exits with code 1.
 * warn()   - something works well enough but might explain odd results.
 * inform() - normal operating status messages.
 */

#ifndef VANS_COMMON_LOGGING_HH
#define VANS_COMMON_LOGGING_HH

#include <cstdarg>
#include <string>

namespace vans
{

/** Printf-style formatting into a std::string. */
std::string strFormat(const char *fmt, ...)
    __attribute__((format(printf, 1, 2)));

[[noreturn]] void panic(const char *fmt, ...)
    __attribute__((format(printf, 1, 2)));

[[noreturn]] void fatal(const char *fmt, ...)
    __attribute__((format(printf, 1, 2)));

void warn(const char *fmt, ...) __attribute__((format(printf, 1, 2)));

void inform(const char *fmt, ...) __attribute__((format(printf, 1, 2)));

/** Suppress warn()/inform() output (used by tests and sweeps). */
void setQuiet(bool quiet);

/** @return true when warn()/inform() output is suppressed. */
bool isQuiet();

} // namespace vans

#endif // VANS_COMMON_LOGGING_HH
