/**
 * @file
 * The abstract memory-system interface every timing model implements.
 *
 * LENS microbenchmarks, the CPU model, and the bench harnesses all
 * drive memory through this interface, which is exactly the property
 * that lets LENS profile *any* backend: the real paper profiles Optane
 * hardware; here the same prober logic profiles VANS and the baseline
 * models through identical request streams.
 */

#ifndef VANS_COMMON_MEM_SYSTEM_HH
#define VANS_COMMON_MEM_SYSTEM_HH

#include <cstdint>
#include <functional>
#include <memory>
#include <string>

#include "common/check.hh"
#include "common/event_queue.hh"
#include "common/request.hh"
#include "common/request_pool.hh"

namespace vans::snapshot
{
class StateSink;
class StateSource;
} // namespace vans::snapshot

namespace vans::obs
{
class TraceRecorder;
} // namespace vans::obs

namespace vans::persist
{
class MediaImage;
class PersistenceChecker;
} // namespace vans::persist

namespace vans
{

class MetricsRegistry;

/** Abstract timing memory system. */
// simlint-allow(snapshotcover: the base-class snapshotTo/restoreFrom
// are aborting stubs for systems without snapshot support; concrete
// systems serialize lastId through the lastRequestId and
// setLastRequestId accessors -- see VansSystem::snapshotTo)
class MemorySystem
{
  public:
    explicit MemorySystem(EventQueue &eq) : eventq(eq) {}
    virtual ~MemorySystem() = default;

    MemorySystem(const MemorySystem &) = delete;
    MemorySystem &operator=(const MemorySystem &) = delete;

    /**
     * Issue a request previously obtained from makeRequest(). The
     * system always accepts it (front-end admission is unbounded);
     * all contention and queueing shows up in the completion time
     * delivered through the request's onComplete. Ownership returns
     * to the issuer when that callback fires; the issuer releases
     * the handle (inside or after the callback), never the model.
     */
    virtual void issue(RequestHandle h) = 0;

    /** The pool every request of this system lives in. */
    RequestPool &pool() { return reqPool; }

    /** Allocate and fill a request descriptor in this system's pool. */
    RequestHandle
    makeRequest(Addr addr, MemOp op,
                std::uint32_t size = cacheLineSize)
    {
        RequestHandle h = reqPool.alloc();
        Request &r = reqPool.get(h);
        r.addr = addr;
        r.op = op;
        r.size = size;
        return h;
    }

    /** Dereference a handle of this system's pool. */
    Request &request(RequestHandle h) { return reqPool.get(h); }

    /** Short model name used in reports. */
    virtual std::string name() const = 0;

    /** Total capacity in bytes (for address-range checks). */
    virtual std::uint64_t capacity() const = 0;

    /** The event queue this system is clocked by. */
    EventQueue &eventQueue() { return eventq; }

    /**
     * Execute one event of this system's kernel. @return false when
     * the kernel has fully drained. Drivers and quiescence loops must
     * step the *system*, not the raw queue: a sharded system advances
     * its channel shards here, and eventQueue() (the core queue) may
     * be legitimately empty while shards still hold events.
     */
    virtual bool step() { return eventq.step(); }

    /** Assign a fresh request id. */
    std::uint64_t nextRequestId() { return ++lastId; }

    /**
     * The attached trace recorder, or nullptr when this system runs
     * untraced ([trace] enable and VANS_TRACE both off, or the model
     * has no instrumentation). Probers and drivers use this to add
     * their own tracks to the same recording.
     */
    virtual obs::TraceRecorder *tracer() { return nullptr; }

    /**
     * Register every StatGroup of this system with @p reg for
     * machine-readable export. Default: nothing to report.
     */
    virtual void metricsInto(MetricsRegistry &reg) { (void)reg; }

    /**
     * Warm-world fork support (common/snapshot.hh). A system that
     * returns true from snapshotSupported() must implement the
     * serialize/restore pair and a meaningful quiescent().
     */
    virtual bool snapshotSupported() const { return false; }

    /**
     * True when no request is in flight anywhere in the model (the
     * snapshot precondition). Systems without snapshot support keep
     * the trivial default.
     */
    virtual bool quiescent() const { return true; }

    /**
     * Run the kernel until quiescent(): the one sanctioned idle-out
     * loop, shared by the LENS driver, snapshot capture and the
     * crash harness. Never key a drain on event-queue emptiness --
     * any world whose DRAM path was touched re-arms its tREFI
     * refresh wakeup forever, so the queue of an idle world is
     * never empty and an emptiness-keyed loop spins until the end
     * of time. @p maxEvents bounds the wait: exceeding it (or the
     * kernel running dry short of quiescence) is a model bug and
     * fails loudly.
     */
    void
    drain(std::uint64_t maxEvents = 50'000'000)
    {
        std::uint64_t steps = 0;
        while (!quiescent()) {
            VANS_REQUIRE("mem-system", eventq.curTick(),
                         steps < maxEvents,
                         "%s not quiescent after %llu events",
                         name().c_str(),
                         static_cast<unsigned long long>(maxEvents));
            bool advanced = step();
            VANS_REQUIRE("mem-system", eventq.curTick(), advanced,
                         "kernel drained but %s never became "
                         "quiescent",
                         name().c_str());
            ++steps;
        }
    }

    /** Serialize the full warm state into @p sink. */
    virtual void
    snapshotTo(snapshot::StateSink &sink) const
    {
        (void)sink;
        VANS_REQUIRE("mem-system", eventq.curTick(), false,
                     "snapshotTo on a system without snapshot "
                     "support (%s)",
                     name().c_str());
    }

    /** Restore state serialized by snapshotTo() into this instance. */
    virtual void
    restoreFrom(snapshot::StateSource &src)
    {
        (void)src;
        VANS_REQUIRE("mem-system", eventq.curTick(), false,
                     "restoreFrom on a system without snapshot "
                     "support (%s)",
                     name().c_str());
    }

    // ---- Persistence domain (common/crash.hh) ----------------------

    /** True when the model exposes an ADR durability boundary (the
     *  crash harness refuses systems that do not). */
    virtual bool persistSupported() const { return false; }

    /**
     * Start tracking the per-line durable versions the crash harness
     * captures on powerFail(). Off by default: the tracking map is
     * the one piece of the persistence model that allocates, and the
     * steady-state request path stays allocation-free without it.
     */
    virtual void
    enablePersistTracking()
    {
        VANS_REQUIRE("mem-system", eventq.curTick(), false,
                     "enablePersistTracking on a system without "
                     "persist support (%s)",
                     name().c_str());
    }

    /**
     * Cut power now: drain only the ADR domain (WPQ contents are
     * guaranteed to reach media) into @p out and mark this world
     * failed. In-flight requests never complete; a failed world
     * accepts no further issues and skips its teardown audits. May
     * only be called once, with tracking enabled.
     */
    virtual void
    powerFail(persist::MediaImage &out)
    {
        (void)out;
        VANS_REQUIRE("mem-system", eventq.curTick(), false,
                     "powerFail on a system without persist support "
                     "(%s)",
                     name().c_str());
    }

    /** True once powerFail() ran on this world. */
    virtual bool powerFailed() const { return false; }

    /**
     * Seed a fresh (never-issued-to) world's durable media state
     * from a captured image -- the restart half of a crash/recovery
     * cycle. Implies enablePersistTracking().
     */
    virtual void
    loadDurableImage(const persist::MediaImage &image)
    {
        (void)image;
        VANS_REQUIRE("mem-system", eventq.curTick(), false,
                     "loadDurableImage on a system without persist "
                     "support (%s)",
                     name().c_str());
    }

    /**
     * The persistence-discipline checker of this system's verifier,
     * or nullptr when the system runs unverified (or has none). The
     * crash harness feeds cache-level events through this.
     */
    virtual persist::PersistenceChecker *
    persistenceChecker()
    {
        return nullptr;
    }

  protected:
    EventQueue &eventq;

    /**
     * Request storage for this system. Systems with snapshot support
     * serialize it (the free-list order pins the handle sequence a
     * restored world hands out); see VansSystem::snapshotTo.
     */
    RequestPool reqPool;

    /** Request-id counter access for snapshotTo/restoreFrom. */
    std::uint64_t lastRequestId() const { return lastId; }
    void setLastRequestId(std::uint64_t id) { lastId = id; }

  private:
    std::uint64_t lastId = 0;
};

/**
 * Builds a fresh memory system clocked by @p eq. Parallel sweeps
 * clone one simulated machine per sweep point through a factory,
 * so no simulated state crosses threads; the Driver& prober entry
 * points remain for single-instance (hardware-like) targets that
 * cannot be cloned.
 */
using SystemFactory =
    std::function<std::unique_ptr<MemorySystem>(EventQueue &)>;

} // namespace vans

#endif // VANS_COMMON_MEM_SYSTEM_HH
