/**
 * @file
 * The abstract memory-system interface every timing model implements.
 *
 * LENS microbenchmarks, the CPU model, and the bench harnesses all
 * drive memory through this interface, which is exactly the property
 * that lets LENS profile *any* backend: the real paper profiles Optane
 * hardware; here the same prober logic profiles VANS and the baseline
 * models through identical request streams.
 */

#ifndef VANS_COMMON_MEM_SYSTEM_HH
#define VANS_COMMON_MEM_SYSTEM_HH

#include <cstdint>
#include <functional>
#include <memory>
#include <string>

#include "common/event_queue.hh"
#include "common/request.hh"

namespace vans
{

/** Abstract timing memory system. */
class MemorySystem
{
  public:
    explicit MemorySystem(EventQueue &eq) : eventq(eq) {}
    virtual ~MemorySystem() = default;

    MemorySystem(const MemorySystem &) = delete;
    MemorySystem &operator=(const MemorySystem &) = delete;

    /**
     * Issue a request. The system always accepts it (front-end
     * admission is unbounded); all contention and queueing shows up
     * in the completion time delivered through req->onComplete.
     */
    virtual void issue(RequestPtr req) = 0;

    /** Short model name used in reports. */
    virtual std::string name() const = 0;

    /** Total capacity in bytes (for address-range checks). */
    virtual std::uint64_t capacity() const = 0;

    /** The event queue this system is clocked by. */
    EventQueue &eventQueue() { return eventq; }

    /** Assign a fresh request id. */
    std::uint64_t nextRequestId() { return ++lastId; }

  protected:
    EventQueue &eventq;

  private:
    std::uint64_t lastId = 0;
};

/**
 * Builds a fresh memory system clocked by @p eq. Parallel sweeps
 * clone one simulated machine per sweep point through a factory,
 * so no simulated state crosses threads; the Driver& prober entry
 * points remain for single-instance (hardware-like) targets that
 * cannot be cloned.
 */
using SystemFactory =
    std::function<std::unique_ptr<MemorySystem>(EventQueue &)>;

} // namespace vans

#endif // VANS_COMMON_MEM_SYSTEM_HH
