#include "common/metrics.hh"

#include <cmath>
#include <fstream>
#include <sstream>

#include "common/logging.hh"

namespace vans
{

namespace
{

/** JSON string escape (stat/group names are plain, but be safe). */
std::string
jsonEscape(const std::string &s)
{
    std::string out;
    out.reserve(s.size());
    for (char c : s) {
        switch (c) {
          case '"':
            out += "\\\"";
            break;
          case '\\':
            out += "\\\\";
            break;
          case '\n':
            out += "\\n";
            break;
          case '\t':
            out += "\\t";
            break;
          default:
            out += c;
        }
    }
    return out;
}

/** JSON has no NaN/Inf literals; an unmeasurable value is null. */
void
appendNumber(std::ostringstream &o, double v)
{
    if (!std::isfinite(v)) {
        o << "null";
        return;
    }
    std::ostringstream tmp;
    tmp.precision(15);
    tmp << v;
    o << tmp.str();
}

/**
 * A statistic derived from an empty sample stream (min/max/mean/
 * percentiles at count == 0) has no value at all: emitting the
 * accessor's 0 fallback makes a cold counter indistinguishable from
 * a measured zero, and the raw +/-inf extrema must never reach the
 * document. Null is the honest spelling, and every JSON parser
 * accepts it.
 */
void
appendSampled(std::ostringstream &o, double v, std::uint64_t count)
{
    if (count == 0) {
        o << "null";
        return;
    }
    appendNumber(o, v);
}

} // namespace

std::string
MetricsRegistry::toJson() const
{
    std::ostringstream o;
    o << "{\n  \"groups\": [";
    bool first_group = true;
    for (const StatGroup *g : groups) {
        if (!first_group)
            o << ",";
        first_group = false;
        o << "\n    {\n      \"name\": \"" << jsonEscape(g->name())
          << "\",\n      \"scalars\": {";
        bool first = true;
        for (const auto &kv : g->allScalars()) {
            if (!first)
                o << ",";
            first = false;
            o << "\n        \"" << jsonEscape(kv.first)
              << "\": " << kv.second.value();
        }
        o << (first ? "}" : "\n      }") << ",\n      \"averages\": {";
        first = true;
        for (const auto &kv : g->allAverages()) {
            if (!first)
                o << ",";
            first = false;
            std::uint64_t n = kv.second.count();
            o << "\n        \"" << jsonEscape(kv.first)
              << "\": {\"mean\": ";
            appendSampled(o, kv.second.mean(), n);
            o << ", \"min\": ";
            appendSampled(o, kv.second.min(), n);
            o << ", \"max\": ";
            appendSampled(o, kv.second.max(), n);
            o << ", \"count\": " << n << "}";
        }
        o << (first ? "}" : "\n      }")
          << ",\n      \"distributions\": {";
        first = true;
        for (const auto &kv : g->allDistributions()) {
            if (!first)
                o << ",";
            first = false;
            std::uint64_t n = kv.second.count();
            o << "\n        \"" << jsonEscape(kv.first)
              << "\": {\"mean\": ";
            appendSampled(o, kv.second.mean(), n);
            o << ", \"min\": ";
            appendSampled(o, kv.second.min(), n);
            o << ", \"max\": ";
            appendSampled(o, kv.second.max(), n);
            o << ", \"p50\": ";
            appendSampled(o, kv.second.percentile(0.5), n);
            o << ", \"p99\": ";
            appendSampled(o, kv.second.percentile(0.99), n);
            o << ", \"p999\": ";
            appendSampled(o, kv.second.percentile(0.999), n);
            o << ", \"count\": " << n << "}";
        }
        o << (first ? "}" : "\n      }") << "\n    }";
    }
    o << "\n  ]\n}\n";
    return o.str();
}

void
MetricsRegistry::writeJson(const std::string &path) const
{
    std::ofstream out(path);
    if (!out)
        fatal("cannot write metrics file '%s'", path.c_str());
    out << toJson();
    if (!out)
        fatal("short write to metrics file '%s'", path.c_str());
}

} // namespace vans
