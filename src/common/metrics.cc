#include "common/metrics.hh"

#include <cmath>
#include <fstream>
#include <sstream>

#include "common/logging.hh"

namespace vans
{

namespace
{

/** JSON string escape (stat/group names are plain, but be safe). */
std::string
jsonEscape(const std::string &s)
{
    std::string out;
    out.reserve(s.size());
    for (char c : s) {
        switch (c) {
          case '"':
            out += "\\\"";
            break;
          case '\\':
            out += "\\\\";
            break;
          case '\n':
            out += "\\n";
            break;
          case '\t':
            out += "\\t";
            break;
          default:
            out += c;
        }
    }
    return out;
}

/** JSON has no NaN/Inf literals; clamp to null-safe numbers. */
void
appendNumber(std::ostringstream &o, double v)
{
    if (!std::isfinite(v)) {
        o << "0";
        return;
    }
    std::ostringstream tmp;
    tmp.precision(15);
    tmp << v;
    o << tmp.str();
}

} // namespace

std::string
MetricsRegistry::toJson() const
{
    std::ostringstream o;
    o << "{\n  \"groups\": [";
    bool first_group = true;
    for (const StatGroup *g : groups) {
        if (!first_group)
            o << ",";
        first_group = false;
        o << "\n    {\n      \"name\": \"" << jsonEscape(g->name())
          << "\",\n      \"scalars\": {";
        bool first = true;
        for (const auto &kv : g->allScalars()) {
            if (!first)
                o << ",";
            first = false;
            o << "\n        \"" << jsonEscape(kv.first)
              << "\": " << kv.second.value();
        }
        o << (first ? "}" : "\n      }") << ",\n      \"averages\": {";
        first = true;
        for (const auto &kv : g->allAverages()) {
            if (!first)
                o << ",";
            first = false;
            o << "\n        \"" << jsonEscape(kv.first)
              << "\": {\"mean\": ";
            appendNumber(o, kv.second.mean());
            o << ", \"min\": ";
            appendNumber(o, kv.second.min());
            o << ", \"max\": ";
            appendNumber(o, kv.second.max());
            o << ", \"count\": " << kv.second.count() << "}";
        }
        o << (first ? "}" : "\n      }")
          << ",\n      \"distributions\": {";
        first = true;
        for (const auto &kv : g->allDistributions()) {
            if (!first)
                o << ",";
            first = false;
            o << "\n        \"" << jsonEscape(kv.first)
              << "\": {\"mean\": ";
            appendNumber(o, kv.second.mean());
            o << ", \"min\": ";
            appendNumber(o, kv.second.min());
            o << ", \"max\": ";
            appendNumber(o, kv.second.max());
            o << ", \"p50\": ";
            appendNumber(o, kv.second.percentile(0.5));
            o << ", \"p99\": ";
            appendNumber(o, kv.second.percentile(0.99));
            o << ", \"p999\": ";
            appendNumber(o, kv.second.percentile(0.999));
            o << ", \"count\": " << kv.second.count() << "}";
        }
        o << (first ? "}" : "\n      }") << "\n    }";
    }
    o << "\n  ]\n}\n";
    return o.str();
}

void
MetricsRegistry::writeJson(const std::string &path) const
{
    std::ofstream out(path);
    if (!out)
        fatal("cannot write metrics file '%s'", path.c_str());
    out << toJson();
    if (!out)
        fatal("short write to metrics file '%s'", path.c_str());
}

} // namespace vans
