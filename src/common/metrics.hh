/**
 * @file
 * Machine-readable metrics export.
 *
 * A MetricsRegistry collects references to the StatGroups of a run
 * (every component already owns one) and renders everything --
 * scalars, averages, and StatDistribution percentiles (p50/p99/p999)
 * -- as one JSON document. This replaces scraping the ad-hoc text of
 * StatGroup::dump() in bench harnesses and scripts: the JSON carries
 * exactly the same values (the observability tests assert the
 * equivalence), plus the distribution tails dump() never had.
 *
 * The registry holds raw const pointers and renders lazily: the
 * referenced groups must outlive it, which is natural because every
 * group is owned by a component of the system being reported on.
 */

#ifndef VANS_COMMON_METRICS_HH
#define VANS_COMMON_METRICS_HH

#include <string>
#include <vector>

#include "common/stats.hh"

namespace vans
{

/** Collects StatGroups and emits one JSON metrics document. */
// simlint-allow(statscover: the registry is the sink end of the
// metrics walk; `groups` holds what components registered, it is not
// itself a component stat)
class MetricsRegistry
{
  public:
    /** Register @p group; it must outlive this registry. */
    void add(const StatGroup &group) { groups.push_back(&group); }

    std::size_t size() const { return groups.size(); }

    const std::vector<const StatGroup *> &all() const
    {
        return groups;
    }

    /**
     * Render every registered group as JSON:
     * {"groups":[{"name":...,"scalars":{...},"averages":{...},
     *             "distributions":{...}}]}.
     */
    std::string toJson() const;

    /** Write toJson() to @p path (fatal on I/O error). */
    void writeJson(const std::string &path) const;

  private:
    std::vector<const StatGroup *> groups;
};

} // namespace vans

#endif // VANS_COMMON_METRICS_HH
