#include "common/parallel.hh"

#include <atomic>
#include <cstdlib>
#include <exception>
#include <utility>

namespace vans
{

unsigned
hardwareThreads()
{
    if (const char *env = std::getenv("VANS_THREADS")) {
        long v = std::strtol(env, nullptr, 10);
        return v >= 1 ? static_cast<unsigned>(v) : 1u;
    }
    unsigned hw = std::thread::hardware_concurrency();
    return hw >= 1 ? hw : 1u;
}

ThreadPool::ThreadPool(unsigned threads)
    : numThreads(threads ? threads : hardwareThreads())
{
    workers.reserve(numThreads);
    for (unsigned i = 0; i < numThreads; ++i)
        workers.emplace_back([this] { workerLoop(); });
}

ThreadPool::~ThreadPool()
{
    {
        MutexLock lock(mtx);
        stopping = true;
    }
    taskReady.notify_all();
    for (auto &w : workers)
        w.join();
}

void
ThreadPool::submit(std::function<void()> task)
{
    {
        MutexLock lock(mtx);
        tasks.push_back(std::move(task));
        ++inFlight;
    }
    taskReady.notify_one();
}

void
ThreadPool::wait()
{
    MutexLock lock(mtx);
    while (inFlight != 0)
        allDone.wait(lock.native());
}

namespace
{
/** Set while the current thread is a pool worker: nested
 *  parallelFor calls degrade to inline execution instead of
 *  deadlocking on their own pool. */
thread_local bool insidePoolWorker = false;
} // namespace

void
ThreadPool::workerLoop()
{
    insidePoolWorker = true;
    for (;;) {
        std::function<void()> task;
        {
            MutexLock lock(mtx);
            while (!stopping && tasks.empty())
                taskReady.wait(lock.native());
            if (tasks.empty())
                return; // stopping and drained
            task = std::move(tasks.front());
            tasks.pop_front();
        }
        task();
        {
            MutexLock lock(mtx);
            --inFlight;
        }
        allDone.notify_all();
    }
}

ThreadPool &
ThreadPool::shared()
{
    // simlint-allow: magic static; the pool locks internally.
    static ThreadPool pool;
    return pool;
}

void
parallelFor(std::size_t n,
            const std::function<void(std::size_t)> &fn,
            ThreadPool *pool)
{
    if (n == 0)
        return;
    if (insidePoolWorker) {
        for (std::size_t i = 0; i < n; ++i)
            fn(i);
        return;
    }
    ThreadPool &p = pool ? *pool : ThreadPool::shared();
    if (n == 1 || p.size() <= 1) {
        for (std::size_t i = 0; i < n; ++i)
            fn(i);
        return;
    }

    // Work-stealing-by-counter: each worker task pulls the next
    // un-started index until the range drains. Result ordering is
    // the caller's concern (results indexed by i are deterministic
    // regardless of which worker ran which i).
    auto next = std::make_shared<std::atomic<std::size_t>>(0);
    auto firstError = std::make_shared<std::atomic<bool>>(false);
    auto error = std::make_shared<std::exception_ptr>();
    auto errorMtx = std::make_shared<std::mutex>();

    std::size_t lanes = std::min<std::size_t>(p.size(), n);
    for (std::size_t lane = 0; lane < lanes; ++lane) {
        p.submit([&fn, n, next, firstError, error, errorMtx] {
            for (;;) {
                std::size_t i =
                    next->fetch_add(1, std::memory_order_relaxed);
                if (i >= n || firstError->load())
                    return;
                try {
                    fn(i);
                } catch (...) {
                    std::lock_guard<std::mutex> lock(*errorMtx);
                    if (!firstError->exchange(true))
                        *error = std::current_exception();
                }
            }
        });
    }
    p.wait();
    if (firstError->load())
        std::rethrow_exception(*error);
}

} // namespace vans
