/**
 * @file
 * Host-side parallelism for the simulator harness.
 *
 * Simulated time is inherently serial *within* one EventQueue, but
 * characterization sweeps (Figs. 5-10, Table II) re-run the whole
 * pipeline at dozens of independent configuration points. ThreadPool
 * and parallelFor fan those points out across host cores; each point
 * builds its own (EventQueue, MemorySystem, Driver) triple so no
 * simulated state is ever shared between threads.
 *
 * Thread count resolution: the VANS_THREADS environment variable
 * overrides std::thread::hardware_concurrency(). VANS_THREADS=1
 * forces every parallelFor onto the calling thread, which is the
 * reference execution the determinism tests compare against.
 */

#ifndef VANS_COMMON_PARALLEL_HH
#define VANS_COMMON_PARALLEL_HH

#include <condition_variable>
#include <cstddef>
#include <deque>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

/**
 * Clang thread-safety analysis (-Wthread-safety). The macros expand
 * to nothing under gcc; CI's clang lint lane compiles the
 * concurrency layer with -Wthread-safety -Werror so a member access
 * outside its lock fails the build there. Keep every annotation on
 * the declaration the analysis needs it on:
 *
 *   VANS_GUARDED_BY(m)   data member readable/writable only under m
 *   VANS_REQUIRES(m)     function must be called with m held
 *   VANS_ACQUIRE/RELEASE lock transitions (used by the wrappers)
 */
#if defined(__clang__)
#define VANS_TS_ATTR(x) __attribute__((x))
#else
#define VANS_TS_ATTR(x)
#endif

#define VANS_CAPABILITY(name) VANS_TS_ATTR(capability(name))
#define VANS_SCOPED_CAPABILITY VANS_TS_ATTR(scoped_lockable)
#define VANS_GUARDED_BY(m) VANS_TS_ATTR(guarded_by(m))
#define VANS_REQUIRES(m) VANS_TS_ATTR(requires_capability(m))
#define VANS_ACQUIRE(...) \
    VANS_TS_ATTR(acquire_capability(__VA_ARGS__))
#define VANS_RELEASE(...) \
    VANS_TS_ATTR(release_capability(__VA_ARGS__))
#define VANS_EXCLUDES(m) VANS_TS_ATTR(locks_excluded(m))

namespace vans
{

/**
 * Worker threads to use for sweep fan-out: VANS_THREADS if set
 * (clamped to >= 1), otherwise the hardware concurrency.
 */
unsigned hardwareThreads();

/**
 * std::mutex with a thread-safety capability attached, so members
 * can be declared VANS_GUARDED_BY it. Condition-variable waits go
 * through MutexLock::native().
 */
class VANS_CAPABILITY("mutex") Mutex
{
  public:
    void lock() VANS_ACQUIRE() { m.lock(); }
    void unlock() VANS_RELEASE() { m.unlock(); }

  private:
    friend class MutexLock;
    std::mutex m;
};

/**
 * Scoped lock over Mutex (the annotated std::lock_guard /
 * std::unique_lock). native() exposes the underlying unique_lock for
 * condition_variable::wait; write waits as explicit
 * `while (!cond) cv.wait(lock.native());` loops so the analysis sees
 * every read of the guarded condition under the capability.
 */
class VANS_SCOPED_CAPABILITY MutexLock
{
  public:
    explicit MutexLock(Mutex &mu) VANS_ACQUIRE(mu) : lk(mu.m) {}
    ~MutexLock() VANS_RELEASE() {}

    MutexLock(const MutexLock &) = delete;
    MutexLock &operator=(const MutexLock &) = delete;

    std::unique_lock<std::mutex> &native() { return lk; }

  private:
    std::unique_lock<std::mutex> lk;
};

/** A fixed-size pool of worker threads draining a task queue. */
class ThreadPool
{
  public:
    /** @param threads Worker count; 0 means hardwareThreads(). */
    explicit ThreadPool(unsigned threads = 0);
    ~ThreadPool();

    ThreadPool(const ThreadPool &) = delete;
    ThreadPool &operator=(const ThreadPool &) = delete;

    /** Enqueue @p task for execution on some worker. */
    void submit(std::function<void()> task);

    /** Block until every submitted task has finished. */
    void wait();

    unsigned size() const { return numThreads; }

    /** Lazily constructed process-wide pool (hardwareThreads()). */
    static ThreadPool &shared();

  private:
    void workerLoop();

    std::vector<std::thread> workers;
    Mutex mtx;
    std::deque<std::function<void()>> tasks VANS_GUARDED_BY(mtx);
    std::condition_variable taskReady;
    std::condition_variable allDone;
    std::size_t inFlight VANS_GUARDED_BY(mtx) = 0;
    bool stopping VANS_GUARDED_BY(mtx) = false;
    unsigned numThreads;
};

/**
 * Run fn(i) for every i in [0, n). Iterations are distributed over
 * @p pool (nullptr: the shared pool); with a single worker or n <= 1
 * everything runs inline on the calling thread. Blocks until all
 * iterations finished. The first exception thrown by an iteration is
 * rethrown on the calling thread after the loop drains.
 */
void parallelFor(std::size_t n,
                 const std::function<void(std::size_t)> &fn,
                 ThreadPool *pool = nullptr);

} // namespace vans

#endif // VANS_COMMON_PARALLEL_HH
