/**
 * @file
 * Host-side parallelism for the simulator harness.
 *
 * Simulated time is inherently serial *within* one EventQueue, but
 * characterization sweeps (Figs. 5-10, Table II) re-run the whole
 * pipeline at dozens of independent configuration points. ThreadPool
 * and parallelFor fan those points out across host cores; each point
 * builds its own (EventQueue, MemorySystem, Driver) triple so no
 * simulated state is ever shared between threads.
 *
 * Thread count resolution: the VANS_THREADS environment variable
 * overrides std::thread::hardware_concurrency(). VANS_THREADS=1
 * forces every parallelFor onto the calling thread, which is the
 * reference execution the determinism tests compare against.
 */

#ifndef VANS_COMMON_PARALLEL_HH
#define VANS_COMMON_PARALLEL_HH

#include <condition_variable>
#include <cstddef>
#include <deque>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace vans
{

/**
 * Worker threads to use for sweep fan-out: VANS_THREADS if set
 * (clamped to >= 1), otherwise the hardware concurrency.
 */
unsigned hardwareThreads();

/** A fixed-size pool of worker threads draining a task queue. */
class ThreadPool
{
  public:
    /** @param threads Worker count; 0 means hardwareThreads(). */
    explicit ThreadPool(unsigned threads = 0);
    ~ThreadPool();

    ThreadPool(const ThreadPool &) = delete;
    ThreadPool &operator=(const ThreadPool &) = delete;

    /** Enqueue @p task for execution on some worker. */
    void submit(std::function<void()> task);

    /** Block until every submitted task has finished. */
    void wait();

    unsigned size() const { return numThreads; }

    /** Lazily constructed process-wide pool (hardwareThreads()). */
    static ThreadPool &shared();

  private:
    void workerLoop();

    std::vector<std::thread> workers;
    std::deque<std::function<void()>> tasks;
    std::mutex mtx;
    std::condition_variable taskReady;
    std::condition_variable allDone;
    std::size_t inFlight = 0;
    bool stopping = false;
    unsigned numThreads;
};

/**
 * Run fn(i) for every i in [0, n). Iterations are distributed over
 * @p pool (nullptr: the shared pool); with a single worker or n <= 1
 * everything runs inline on the calling thread. Blocks until all
 * iterations finished. The first exception thrown by an iteration is
 * rethrown on the calling thread after the loop drains.
 */
void parallelFor(std::size_t n,
                 const std::function<void(std::size_t)> &fn,
                 ThreadPool *pool = nullptr);

} // namespace vans

#endif // VANS_COMMON_PARALLEL_HH
