#include "common/request.hh"

namespace vans
{

const char *
memOpName(MemOp op)
{
    switch (op) {
      case MemOp::Read:
        return "read";
      case MemOp::ReadNT:
        return "read-nt";
      case MemOp::Write:
        return "write";
      case MemOp::WriteNT:
        return "write-nt";
      case MemOp::Clwb:
        return "clwb";
      case MemOp::Clflushopt:
        return "clflushopt";
      case MemOp::Fence:
        return "fence";
      case MemOp::Sfence:
        return "sfence";
    }
    return "?";
}

} // namespace vans
