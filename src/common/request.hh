/**
 * @file
 * Memory request descriptor shared by every memory model in the tree.
 */

#ifndef VANS_COMMON_REQUEST_HH
#define VANS_COMMON_REQUEST_HH

#include <cstdint>
#include <functional>
#include <memory>

#include "common/types.hh"

namespace vans::obs
{
struct ReqTrace;
} // namespace vans::obs

namespace vans
{

/** Kinds of memory operations a front end can issue. */
enum class MemOp : std::uint8_t
{
    Read,      ///< Regular (cacheable) load.
    ReadNT,    ///< Non-temporal load (bypasses CPU caches).
    Write,     ///< Regular store / cache writeback.
    WriteNT,   ///< Non-temporal store (bypasses CPU caches).
    Clwb,      ///< Cache-line writeback towards the ADR domain.
    Fence,     ///< Ordering / persistence fence (mfence + sfence).
};

/** @return true for the read-kind operations. */
constexpr bool
isRead(MemOp op)
{
    return op == MemOp::Read || op == MemOp::ReadNT;
}

/** @return true for the write-kind operations (incl. clwb). */
constexpr bool
isWrite(MemOp op)
{
    return op == MemOp::Write || op == MemOp::WriteNT ||
           op == MemOp::Clwb;
}

/** Human-readable name of a MemOp. */
const char *memOpName(MemOp op);

struct Request;
using RequestPtr = std::shared_ptr<Request>;

/**
 * One memory request. A request semantically completes when:
 *  - reads: data has returned to the issuer;
 *  - NT stores / clwb: the data reached the ADR persistence domain
 *    (accepted into the iMC write pending queue);
 *  - fences: all prior writes from this issuer are in the ADR domain
 *    and on-DIMM combining state is flushed.
 */
struct Request
{
    std::uint64_t id = 0;         ///< Unique id (assigned by issuer).
    Addr addr = 0;                ///< Physical address.
    std::uint32_t size = 64;      ///< Bytes (<= cache line for timing).
    MemOp op = MemOp::Read;

    Tick issueTick = 0;           ///< When the front end issued it.
    Tick completeTick = 0;        ///< Set when onComplete fires.

    /**
     * Hint used by Pre-translation (paper section V-B): the request
     * was marked with mkpt, so the DIMM should return the TLB entry
     * for the pointer stored at this address along with the data.
     */
    bool preTranslate = false;

    /**
     * Lifecycle hop recording (common/trace_event.hh). Null unless
     * the servicing system runs with tracing enabled; allocated by
     * TraceRecorder::onIssue, never by the request itself, so the
     * untraced path stays allocation-free.
     */
    std::shared_ptr<obs::ReqTrace> trace;

    /** Completion callback; may be empty. */
    std::function<void(Request &)> onComplete;

    /** Fire the completion callback exactly once. */
    void
    complete(Tick when)
    {
        completeTick = when;
        if (onComplete) {
            auto cb = std::move(onComplete);
            onComplete = nullptr;
            cb(*this);
        }
    }

    /** Latency from issue to completion in ticks. */
    Tick latency() const { return completeTick - issueTick; }
};

/** Convenience factory. */
inline RequestPtr
makeRequest(Addr addr, MemOp op, std::uint32_t size = cacheLineSize)
{
    auto r = std::make_shared<Request>();
    r->addr = addr;
    r->op = op;
    r->size = size;
    return r;
}

} // namespace vans

#endif // VANS_COMMON_REQUEST_HH
