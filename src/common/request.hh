/**
 * @file
 * Memory request descriptor shared by every memory model in the tree.
 *
 * Requests are pool-allocated (common/request_pool.hh): components
 * never own a Request, they hold a RequestHandle into the system's
 * RequestPool and dereference it on demand. The descriptor itself is
 * allocation-free -- the completion callback is an InplaceFunction
 * (typical captures stored inline) and the trace hop log is a raw
 * pointer into the pool's recycled per-slot ReqTrace slab.
 */

#ifndef VANS_COMMON_REQUEST_HH
#define VANS_COMMON_REQUEST_HH

#include <cstdint>

#include "common/inplace_function.hh"
#include "common/types.hh"

namespace vans::obs
{
struct ReqTrace;
} // namespace vans::obs

namespace vans
{

/** Kinds of memory operations a front end can issue. */
enum class MemOp : std::uint8_t
{
    Read,       ///< Regular (cacheable) load.
    ReadNT,     ///< Non-temporal load (bypasses CPU caches).
    Write,      ///< Regular store / cache writeback.
    WriteNT,    ///< Non-temporal store (bypasses CPU caches).
    Clwb,       ///< Cache-line writeback towards the ADR domain.
    Clflushopt, ///< Writeback + invalidate towards the ADR domain.
    Fence,      ///< Full fence: write-path quiescence through the
                ///< DIMM (mfence-and-drain semantics).
    Sfence,     ///< Store fence: orders prior flushes/NT stores at
                ///< the ADR boundary (WPQ acceptance), nothing more.
};

/** @return true for the read-kind operations. */
constexpr bool
isRead(MemOp op)
{
    return op == MemOp::Read || op == MemOp::ReadNT;
}

/** @return true for the write-kind operations (incl. the flushes). */
constexpr bool
isWrite(MemOp op)
{
    return op == MemOp::Write || op == MemOp::WriteNT ||
           op == MemOp::Clwb || op == MemOp::Clflushopt;
}

/** @return true for the fence-kind operations. */
constexpr bool
isFence(MemOp op)
{
    return op == MemOp::Fence || op == MemOp::Sfence;
}

/** Human-readable name of a MemOp. */
const char *memOpName(MemOp op);

struct Request;

/** Completion callback type (move-only, small captures inline). */
using RequestCallback = InplaceFunction<void(Request &)>;

/**
 * One memory request. A request semantically completes when:
 *  - reads: data has returned to the issuer;
 *  - NT stores / clwb: the data reached the ADR persistence domain
 *    (accepted into the iMC write pending queue);
 *  - fences: all prior writes from this issuer are in the ADR domain
 *    and on-DIMM combining state is flushed.
 *
 * Ownership protocol: the issuer allocates a handle from the pool,
 * fills the descriptor in, and issues; ownership returns to the
 * issuer when onComplete fires. Only the issuer releases the handle
 * (inside or after its completion callback), and no component may
 * touch a request after calling complete() on it.
 */
struct Request
{
    std::uint64_t id = 0;         ///< Unique id (assigned by issuer).
    Addr addr = 0;                ///< Physical address.
    std::uint32_t size = 64;      ///< Bytes (<= cache line for timing).
    MemOp op = MemOp::Read;

    Tick issueTick = 0;           ///< When the front end issued it.
    Tick completeTick = 0;        ///< Set when onComplete fires.

    /**
     * Hint used by Pre-translation (paper section V-B): the request
     * was marked with mkpt, so the DIMM should return the TLB entry
     * for the pointer stored at this address along with the data.
     */
    bool preTranslate = false;

    /**
     * Lifecycle hop recording (common/trace_event.hh). Null unless
     * the servicing system runs with tracing enabled; points into the
     * pool's per-slot ReqTrace slab (attached at issue, recycled with
     * the slot), so the untraced path stays allocation-free.
     */
    obs::ReqTrace *trace = nullptr;

    /** Completion callback; may be empty. */
    RequestCallback onComplete;

    /** Fire the completion callback exactly once. */
    void
    complete(Tick when)
    {
        completeTick = when;
        if (onComplete) {
            auto cb = std::move(onComplete);
            onComplete = nullptr;
            // The callback may release this request back to its pool:
            // nothing below may touch *this after cb returns.
            cb(*this);
        }
    }

    /** Latency from issue to completion in ticks. */
    Tick latency() const { return completeTick - issueTick; }
};

} // namespace vans

#endif // VANS_COMMON_REQUEST_HH
