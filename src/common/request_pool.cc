#include "common/request_pool.hh"

#include "common/snapshot.hh"
#include "common/stats.hh"
#include "common/trace_event.hh"

namespace vans
{

// Out of line so the unique_ptr<ReqTrace[]> deleter instantiates with
// the complete type.
RequestPool::RequestPool() = default;
RequestPool::~RequestPool() = default;

void
RequestPool::growChunk()
{
    // simlint-allow(hotpath: slab growth is amortized -- it happens
    // only when the in-flight depth exceeds every previous peak, and
    // steady state never reaches this branch)
    chunks.push_back(std::make_unique<Cell[]>(chunkSize));
    std::uint32_t base = slabSize;
    slabSize += chunkSize;
    // Push in reverse so the lowest slot pops first: fresh worlds
    // hand out slot 0, 1, 2, ... which keeps handle values (and the
    // recycle order after a burst) easy to reason about in tests.
    for (std::uint32_t i = chunkSize; i-- > 0;)
        freeSlots.push_back(base + i);
    ++numGrowths;
}

RequestHandle
RequestPool::alloc()
{
    if (freeSlots.empty())
        growChunk();
    else
        ++numRecycles;
    std::uint32_t slot = freeSlots.back();
    freeSlots.pop_back();

    Cell &c = cell(slot);
    c.liveFlag = true;
    Request &r = c.req;
    r.id = 0;
    r.addr = 0;
    r.size = cacheLineSize;
    r.op = MemOp::Read;
    r.issueTick = 0;
    r.completeTick = 0;
    r.preTranslate = false;
    r.trace = nullptr;
    r.onComplete = nullptr;

    ++numAllocs;
    ++numLive;
    if (numLive > maxLive)
        maxLive = numLive;
    return RequestHandle::make(slot, c.gen);
}

void
RequestPool::release(RequestHandle h)
{
    Cell &c = checkedCell(h);
    // Drop any unfired callback now so captured state (pool pointers,
    // completion flags) does not linger in a dead slot.
    c.req.onComplete = nullptr;
    c.req.trace = nullptr;
    c.liveFlag = false;
    if (++c.gen == 0)
        c.gen = 1; // Generation 0 is reserved for the null handle.
    freeSlots.push_back(h.slot());
    ++numReleases;
    --numLive;
}

bool
RequestPool::valid(RequestHandle h) const
{
    std::uint32_t slot = h.slot();
    return slot < slabSize && cell(slot).liveFlag &&
           cell(slot).gen == h.generation();
}

obs::ReqTrace &
RequestPool::traceFor(RequestHandle h)
{
    Cell &c = checkedCell(h);
    (void)c;
    std::uint32_t ci = h.slot() >> chunkShift;
    if (traceChunks.size() <= ci)
        traceChunks.resize(ci + 1);
    if (!traceChunks[ci]) {
        // One-time lazy chunk allocation on a traced run's first
        // touch; every recycle of the slot reuses the same ReqTrace.
        // simlint-allow(hotpath: lazy one-time trace-slab growth)
        traceChunks[ci] = std::make_unique<obs::ReqTrace[]>(chunkSize);
    }
    return traceChunks[ci][h.slot() & (chunkSize - 1)];
}

void
RequestPool::statsInto(StatGroup &stats) const
{
    stats.scalar("allocs").set(numAllocs);
    stats.scalar("releases").set(numReleases);
    stats.scalar("recycles").set(numRecycles);
    stats.scalar("chunk_growths").set(numGrowths);
    stats.scalar("peak_live").set(maxLive);
    stats.scalar("live").set(numLive);
    stats.scalar("capacity").set(slabSize);
}

void
RequestPool::snapshotTo(snapshot::StateSink &sink) const
{
    VANS_REQUIRE("reqpool", 0, numLive == 0,
                 "snapshot of a pool with %zu live requests "
                 "(the world is not quiescent)",
                 numLive);
    sink.tag("reqpool");
    sink.u64(slabSize);
    sink.u64(freeSlots.size());
    for (std::uint32_t s : freeSlots)
        sink.u64(s);
    for (std::uint32_t s = 0; s < slabSize; ++s)
        sink.u64(cell(s).gen);
    sink.u64(numAllocs);
    sink.u64(numReleases);
    sink.u64(numRecycles);
    sink.u64(numGrowths);
    sink.u64(maxLive);
}

void
RequestPool::restoreFrom(snapshot::StateSource &src)
{
    VANS_REQUIRE("reqpool", 0, numLive == 0,
                 "restore into a pool with %zu live requests",
                 numLive);
    src.tag("reqpool");
    std::uint64_t target = src.u64();
    VANS_REQUIRE("reqpool", 0, target % chunkSize == 0,
                 "snapshot slab size %llu is not chunk-aligned",
                 static_cast<unsigned long long>(target));
    // Grow (never shrink) to the captured capacity, then overwrite
    // the free list with the captured recycle order so the restored
    // world hands out the exact handle sequence the captured one
    // would have.
    while (slabSize < target) {
        chunks.push_back(std::make_unique<Cell[]>(chunkSize));
        slabSize += chunkSize;
    }
    freeSlots.clear();
    std::uint64_t nfree = src.u64();
    VANS_REQUIRE("reqpool", 0, nfree == slabSize,
                 "free list holds %llu of %u slots at restore",
                 static_cast<unsigned long long>(nfree), slabSize);
    freeSlots.reserve(nfree);
    for (std::uint64_t i = 0; i < nfree; ++i)
        freeSlots.push_back(static_cast<std::uint32_t>(src.u64()));
    for (std::uint32_t s = 0; s < slabSize; ++s) {
        cell(s).gen = static_cast<std::uint32_t>(src.u64());
        cell(s).liveFlag = false;
    }
    numAllocs = src.u64();
    numReleases = src.u64();
    numRecycles = src.u64();
    numGrowths = src.u64();
    maxLive = src.u64();
}

} // namespace vans
