/**
 * @file
 * Slab-backed pool of Request descriptors with generation-checked
 * handles.
 *
 * Every memory system owns one RequestPool. Requests live in chunked
 * storage that never moves (the same idiom as the event kernel's
 * callback slab), components hold a 64-bit RequestHandle -- 32-bit
 * slot in the low half, 32-bit generation in the high half -- and a
 * retired slot recycles through a LIFO free list after its generation
 * is bumped. Dereferencing a stale handle is therefore a loud
 * VANS_REQUIRE failure instead of a use-after-free, and steady-state
 * issue/retire performs zero allocations once the slab has grown to
 * the peak in-flight depth.
 *
 * The per-request trace hop log recycles in an adjacent slab keyed by
 * the same slot: traced runs reuse one ReqTrace (and its grown hops
 * capacity) per slot instead of allocating per request.
 *
 * Threading (sharded kernel): slots are allocated and released on the
 * core side only -- issue happens from the driver/core context and
 * completion callbacks run in phase B while the channel shards are
 * parked. Shards only read through get() during phase A. The two
 * phases never overlap, so the pool needs no synchronization and the
 * free-list order (hence every handle value) is deterministic for any
 * kernel thread count.
 */

#ifndef VANS_COMMON_REQUEST_POOL_HH
#define VANS_COMMON_REQUEST_POOL_HH

#include <cstdint>
#include <memory>
#include <vector>

#include "common/check.hh"
#include "common/request.hh"

namespace vans::snapshot
{
class StateSink;
class StateSource;
} // namespace vans::snapshot

namespace vans
{

class StatGroup;

/**
 * Opaque 64-bit reference to a pooled Request: low 32 bits index the
 * slot, high 32 bits carry the slot's generation at allocation time.
 * Generations start at 1, so a default-constructed handle (bits == 0)
 * is never valid.
 */
struct RequestHandle
{
    std::uint64_t bits = 0;

    std::uint32_t slot() const
    {
        return static_cast<std::uint32_t>(bits);
    }
    std::uint32_t generation() const
    {
        return static_cast<std::uint32_t>(bits >> 32);
    }

    explicit operator bool() const { return bits != 0; }
    bool operator==(const RequestHandle &o) const
    {
        return bits == o.bits;
    }
    bool operator!=(const RequestHandle &o) const
    {
        return bits != o.bits;
    }

    static RequestHandle
    make(std::uint32_t slot, std::uint32_t gen)
    {
        return {(static_cast<std::uint64_t>(gen) << 32) | slot};
    }
};

/** The slab allocator behind every in-flight Request. */
// simlint-hot
class RequestPool
{
  public:
    // Both out of line: the trace slab's unique_ptr<ReqTrace[]>
    // needs the complete type, which this header only forward-
    // declares.
    RequestPool();
    ~RequestPool();
    RequestPool(const RequestPool &) = delete;
    RequestPool &operator=(const RequestPool &) = delete;

    /**
     * Allocate a fresh request (fields reset to defaults). Recycles
     * the most recently released slot when one is free; grows the
     * slab by one chunk otherwise.
     */
    RequestHandle alloc();

    /** Dereference @p h; aborts loudly on a stale or empty handle. */
    Request &
    get(RequestHandle h)
    {
        Cell &c = checkedCell(h);
        return c.req;
    }

    const Request &
    get(RequestHandle h) const
    {
        return const_cast<RequestPool *>(this)->get(h);
    }

    /**
     * Return @p h's slot to the free list. The slot's generation is
     * bumped, so every outstanding copy of the handle goes stale.
     * Only the issuer calls this, after (or inside) its completion
     * callback.
     */
    void release(RequestHandle h);

    /** True when @p h currently dereferences (probe, never aborts). */
    bool valid(RequestHandle h) const;

    /**
     * The recycled per-slot trace hop log (traced runs only). Lazily
     * allocates the slot's chunk of the adjacent trace slab on first
     * use; afterwards the same ReqTrace -- with its grown hops
     * capacity -- serves every request that recycles the slot.
     */
    obs::ReqTrace &traceFor(RequestHandle h);

    /** Requests currently allocated. */
    std::size_t live() const { return numLive; }

    /** Total slots in the slab (grows, never shrinks). */
    std::uint32_t capacity() const { return slabSize; }

    /** Export pool counters as scalars of @p stats. */
    void statsInto(StatGroup &stats) const;

    /**
     * Serialize the pool's warm shape: slab size, free-list order,
     * per-slot generations and the counters. Requires live() == 0
     * (the snapshot contract demands a quiescent world, and at
     * quiescence every request has been released).
     */
    void snapshotTo(snapshot::StateSink &sink) const;

    /** Restore into this pool, which must hold no live requests. */
    void restoreFrom(snapshot::StateSource &src);

  private:
    /** Slots per slab chunk (power of two; chunks never move). */
    static constexpr std::uint32_t chunkShift = 7;
    static constexpr std::uint32_t chunkSize = 1u << chunkShift;

    struct Cell
    {
        // simlint-transient(snapshots require live() == 0, so every
        // cell's request is dead at capture; a restored world fills
        // slots afresh through alloc())
        Request req;
        std::uint32_t gen = 1;
        // simlint-transient(false for every slot of a quiescent pool;
        // restoreFrom re-clears it explicitly)
        bool liveFlag = false;
    };

    Cell &
    cell(std::uint32_t slot)
    {
        return chunks[slot >> chunkShift][slot & (chunkSize - 1)];
    }

    const Cell &
    cell(std::uint32_t slot) const
    {
        return chunks[slot >> chunkShift][slot & (chunkSize - 1)];
    }

    Cell &
    checkedCell(RequestHandle h)
    {
        std::uint32_t slot = h.slot();
        VANS_REQUIRE("reqpool", 0,
                     slot < slabSize && cell(slot).liveFlag &&
                         cell(slot).gen == h.generation(),
                     "stale request handle: slot %u gen %u "
                     "(slab %u slots, slot gen %u, %s)",
                     slot, h.generation(), slabSize,
                     slot < slabSize ? cell(slot).gen : 0,
                     slot < slabSize && cell(slot).liveFlag
                         ? "live"
                         : "released");
        return cell(slot);
    }

    void growChunk();

    /**
     * Request storage. Chunks never move, so a Request& stays valid
     * across slab growth (an issuing callback may allocate).
     */
    // simlint-transient(slab cells hold in-flight requests only, and
    // snapshotTo REQUIREs live() == 0: every cell is dead at capture
    // and the generations that matter are serialized separately)
    std::vector<std::unique_ptr<Cell[]>> chunks;

    /**
     * Adjacent ReqTrace slab, keyed by the same slot; chunks are
     * allocated lazily (first traced request touching the chunk) and
     * recycled with the request slot.
     */
    // simlint-transient(observability-only: a restored world records
    // a fresh trace, mirroring the TraceRecorder snapshot contract)
    std::vector<std::unique_ptr<obs::ReqTrace[]>> traceChunks;

    std::vector<std::uint32_t> freeSlots; ///< LIFO recycle order.

    std::uint32_t slabSize = 0;
    std::size_t numLive = 0;
    std::size_t maxLive = 0;
    std::uint64_t numAllocs = 0;
    std::uint64_t numReleases = 0;
    std::uint64_t numRecycles = 0;
    std::uint64_t numGrowths = 0;
};

} // namespace vans

#endif // VANS_COMMON_REQUEST_POOL_HH
