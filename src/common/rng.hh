/**
 * @file
 * Deterministic pseudo-random number generation.
 *
 * All stochastic behaviour in the simulator and workload generators
 * flows through Rng so that runs are reproducible given a seed.
 * The core is SplitMix64 (fast, well distributed, tiny state).
 */

#ifndef VANS_COMMON_RNG_HH
#define VANS_COMMON_RNG_HH

#include <cstdint>
#include <vector>

namespace vans
{

/** Seedable deterministic RNG (SplitMix64). */
class Rng
{
  public:
    explicit Rng(std::uint64_t seed = 0x9e3779b97f4a7c15ull)
        : state(seed)
    {}

    /** Next raw 64-bit value. */
    std::uint64_t
    next()
    {
        std::uint64_t z = (state += 0x9e3779b97f4a7c15ull);
        z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
        z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
        return z ^ (z >> 31);
    }

    /** Uniform integer in [0, bound). @p bound must be nonzero. */
    std::uint64_t
    below(std::uint64_t bound)
    {
        return next() % bound;
    }

    /** Uniform double in [0, 1). */
    double
    uniform()
    {
        return static_cast<double>(next() >> 11) * 0x1.0p-53;
    }

    /** Fisher-Yates shuffle. */
    template <typename T>
    void
    shuffle(std::vector<T> &v)
    {
        for (std::size_t i = v.size(); i > 1; --i) {
            std::size_t j = static_cast<std::size_t>(below(i));
            std::swap(v[i - 1], v[j]);
        }
    }

  private:
    std::uint64_t state;
};

} // namespace vans

#endif // VANS_COMMON_RNG_HH
