#include "common/sharded_kernel.hh"

#include <algorithm>

#include "common/check.hh"
#include "common/parallel.hh"
#include "common/stats.hh"

namespace vans
{

namespace
{

inline void
cpuRelax()
{
#if defined(__x86_64__) || defined(__i386__)
    __builtin_ia32_pause();
#else
    std::this_thread::yield();
#endif
}

} // namespace

ShardedKernel::ShardedKernel(unsigned num_channels, Tick window_ticks,
                             unsigned threads)
    : windowTicks(window_ticks)
{
    VANS_REQUIRE("sharded", 0, num_channels >= 1,
                 "a sharded kernel needs at least one channel shard");
    VANS_REQUIRE("sharded", 0, window_ticks > 0,
                 "window lookahead must be positive");
    shards.reserve(num_channels);
    for (unsigned i = 0; i < num_channels; ++i)
        shards.push_back(std::make_unique<Shard>());

    unsigned t = threads ? threads : hardwareThreads();
    numThreads = std::max(1u, std::min(t, num_channels));
    // Spinning only pays when another core can make progress while
    // we wait; on a single-CPU host go straight to the condition
    // variable.
    spinLimit = std::thread::hardware_concurrency() > 1 ? 4000 : 0;
    for (unsigned w = 1; w < numThreads; ++w)
        workers.emplace_back([this, w] { workerMain(w); });
}

ShardedKernel::~ShardedKernel()
{
    {
        MutexLock lk(mx);
        stopFlag.store(true, std::memory_order_release);
        epoch.fetch_add(1, std::memory_order_release);
        cvStart.notify_all();
    }
    for (auto &w : workers)
        w.join();
}

void
ShardedKernel::toCore(unsigned ci, Tick when, EventQueue::Callback cb)
{
    VANS_REQUIRE("sharded", when, ci < shards.size(),
                 "toCore from unknown shard %u (of %zu)", ci,
                 shards.size());
    shards[ci]->outbox.push_back(Shard::Msg{when, std::move(cb)});
}

void
ShardedKernel::workerMain(unsigned w)
{
    std::uint64_t seen = 0;
    for (;;) {
        for (int i = 0;
             i < spinLimit &&
             epoch.load(std::memory_order_acquire) == seen;
             ++i)
            cpuRelax();
        if (epoch.load(std::memory_order_acquire) == seen) {
            MutexLock lk(mx);
            while (epoch.load(std::memory_order_relaxed) == seen)
                cvStart.wait(lk.native());
        }
        seen = epoch.load(std::memory_order_acquire);
        if (stopFlag.load(std::memory_order_acquire))
            return;
        Tick limit = phaseLimit;
        for (std::size_t i = w; i < shards.size(); i += numThreads) {
            if (shards[i]->hasWork)
                shards[i]->q.runWindow(limit);
        }
        if (doneCount.fetch_sub(1, std::memory_order_acq_rel) == 1) {
            MutexLock lk(mx);
            cvDone.notify_one();
        }
    }
}

void
ShardedKernel::runChannels(Tick limit)
{
    // Freeze the work partition for this window. Results never depend
    // on it: a shard with no events below the limit only has its
    // clock advanced, which any thread may do.
    bool remote_work = false;
    for (std::size_t i = 0; i < shards.size(); ++i) {
        Shard &s = *shards[i];
        s.hasWork = !s.q.empty() && s.q.nextAt() < limit;
        if (s.hasWork && numThreads > 1 && (i % numThreads) != 0)
            remote_work = true;
    }

    if (!remote_work) {
        // Every active shard belongs to this thread (or there are no
        // workers): run phase A inline, no barrier traffic. This is
        // the common case for single-channel worlds.
        for (auto &sp : shards)
            sp->q.runWindow(limit);
        return;
    }

    ++numDispatches;
    phaseLimit = limit;
    doneCount.store(numThreads - 1, std::memory_order_relaxed);
    {
        MutexLock lk(mx);
        epoch.fetch_add(1, std::memory_order_release);
        cvStart.notify_all();
    }
    // This thread doubles as worker 0. It also advances the clocks of
    // other workers' idle shards -- disjoint from what those workers
    // touch (their hasWork shards), so no two threads share a shard.
    for (std::size_t i = 0; i < shards.size(); ++i) {
        if ((i % numThreads) == 0 || !shards[i]->hasWork)
            shards[i]->q.runWindow(limit);
    }
    for (int i = 0;
         i < spinLimit && doneCount.load(std::memory_order_acquire) != 0;
         ++i)
        cpuRelax();
    if (doneCount.load(std::memory_order_acquire) != 0) {
        MutexLock lk(mx);
        while (doneCount.load(std::memory_order_relaxed) != 0)
            cvDone.wait(lk.native());
    }
}

void
ShardedKernel::mergeOutboxes()
{
    // Shard order then append order; the core heap orders by tick
    // first, so the effective delivery order is (tick, shard,
    // append-order) -- fixed for any thread count.
    for (auto &sp : shards) {
        for (Shard::Msg &m : sp->outbox) {
            coreQ.schedule(m.when, std::move(m.cb));
            ++numCrossSends;
        }
        sp->outbox.clear();
    }
}

bool
ShardedKernel::step()
{
    if (!coreQ.empty() && coreQ.nextAt() < windowLimit) {
        coreQ.step();
        return true;
    }
    // Core exhausted inside the current window: find the next
    // pending tick anywhere and open the window containing it.
    // Skipping idle simulated time here is what keeps sparse
    // (think-time) phases from burning windows.
    bool any = !coreQ.empty();
    Tick next = any ? coreQ.nextAt() : 0;
    for (const auto &sp : shards) {
        if (!sp->q.empty()) {
            Tick t = sp->q.nextAt();
            if (!any || t < next) {
                next = t;
                any = true;
            }
        }
    }
    if (!any)
        return false; // Outboxes are empty between steps.
    Tick start = std::max(next, windowLimit);
    // Phase B of the previous window is complete; drag the core
    // clock up to the new window's start (it has no events before
    // it). Without this, shard-only churn -- refresh timers during a
    // quiescence drain -- leaves the core clock behind, and the next
    // driver-context issue would schedule its channel arrival at
    // core_now + lookahead, in the shards' logical past.
    coreQ.runWindow(start);
    windowLimit = start + windowTicks;
    ++numWindows;
    runChannels(windowLimit);
    mergeOutboxes();
    // Return after ONE window even when no core event came out of
    // it: callers poll predicates between steps, and a shard-side
    // guarded timer (the AIT buffer's DRAM refresh) keeps its queue
    // populated indefinitely -- looping here until a core event
    // appeared would never hand control back.
    return true;
}

bool
ShardedKernel::idle() const
{
    if (!coreQ.empty())
        return false;
    for (const auto &sp : shards) {
        if (!sp->q.empty() || !sp->outbox.empty())
            return false;
    }
    return true;
}

void
ShardedKernel::setWindowLimitTick(Tick t)
{
    VANS_REQUIRE("sharded", coreQ.curTick(), windowLimit <= t,
                 "window limit restored backwards (%llu -> %llu)",
                 static_cast<unsigned long long>(windowLimit),
                 static_cast<unsigned long long>(t));
    windowLimit = t;
}

void
ShardedKernel::statsInto(StatGroup &stats) const
{
    stats.scalar("windows_run").set(numWindows);
    stats.scalar("cross_sends").set(numCrossSends);
    stats.scalar("shard_count").set(shards.size());
}

} // namespace vans
