/**
 * @file
 * Conservative-window parallel discrete-event kernel.
 *
 * One simulated world, many event queues: a *core* queue (the driver,
 * fences, completions -- everything the "CPU side" of the model does)
 * plus one *shard* queue per iMC channel. The channel pipelines
 * (WPQ/RPQ, DDR-T bus, DIMM LSQ/RMW/AIT/media/wear) are already
 * channel-private, so shards never talk to each other; every
 * cross-shard edge goes through the core and pays the coreToImcNs
 * hop. That hop is the *lookahead*: within any window of W =
 * coreToImcNs, nothing a channel does can affect another channel,
 * and nothing the core does can reach a channel before the window
 * ends.
 *
 * Each window [T, T+W) runs in two phases:
 *
 *  Phase A  all channel shards execute their events with when < T+W,
 *           in parallel. Channel->core messages (write completions at
 *           WPQ entry, read data at the core, deferred lifecycle
 *           observations) are appended to a per-shard outbox, not
 *           delivered.
 *  Barrier  outboxes merge into the core queue in (tick, shard,
 *           append-order) order -- the heap orders by tick first and
 *           the merge enqueues shard 0's messages before shard 1's,
 *           so equal-tick messages execute in shard order.
 *  Phase B  the core shard executes the same window [T, T+W) on the
 *           calling thread. Core->channel sends (request dispatch
 *           after dimmOf routing, fence-driven seals) schedule
 *           directly into the parked channel queues; a core event at
 *           tick t schedules channel work at t + coreToImcNs >= T+W,
 *           which is at or after the channel clocks (runWindow leaves
 *           every shard clock at T+W), so nothing lands in a shard's
 *           past.
 *
 * Phase B resolving *after* phase A is what makes the model's
 * zero-latency channel->core write completion (ADR: a store completes
 * the instant it enters the WPQ) legal under conservative windowing:
 * the completion is produced in phase A at tick t and consumed in
 * phase B at the same tick t.
 *
 * Determinism: window boundaries derive only from queue contents
 * (next window start = earliest pending tick anywhere, clamped
 * monotone), shard execution is independent, and the merge order is
 * fixed. The worker count changes only which host thread runs a
 * shard, so execution is bit-identical for any VANS_THREADS -- the
 * same guarantee sweep-level parallelism gives across worlds, here
 * inside one world.
 */

#ifndef VANS_COMMON_SHARDED_KERNEL_HH
#define VANS_COMMON_SHARDED_KERNEL_HH

#include <atomic>
#include <condition_variable>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

#include "common/event_queue.hh"
#include "common/parallel.hh"
#include "common/types.hh"

namespace vans
{

class StatGroup;

/** A sharded discrete-event kernel for one multi-channel world. */
// simlint-hot
class ShardedKernel
{
  public:
    /**
     * @param num_channels One shard per iMC channel.
     * @param window_ticks Lookahead W; must not exceed the minimum
     *        cross-shard latency (the coreToImcNs hop).
     * @param threads Host threads for phase A; 0 means
     *        hardwareThreads() (VANS_THREADS respected). Capped at
     *        num_channels; thread count never changes results.
     */
    ShardedKernel(unsigned num_channels, Tick window_ticks,
                  unsigned threads = 0);
    ~ShardedKernel();

    ShardedKernel(const ShardedKernel &) = delete;
    ShardedKernel &operator=(const ShardedKernel &) = delete;

    /** The core (driver-side) queue. Global time for the world. */
    EventQueue &core() { return coreQ; }

    /** Channel shard @p ci's private queue. */
    EventQueue &channelQueue(unsigned ci) { return shards[ci]->q; }

    unsigned numChannels() const
    {
        return static_cast<unsigned>(shards.size());
    }

    Tick window() const { return windowTicks; }
    unsigned threadCount() const { return numThreads; }
    Tick curTick() const { return coreQ.curTick(); }

    /**
     * Send a message from channel shard @p ci to the core: @p cb will
     * run on the core queue at @p when. Legal only from the sending
     * shard's executor during phase A (the outbox is single-producer)
     * or from the main thread between phases. Delivery happens at the
     * next barrier in deterministic (tick, shard, append-order)
     * order.
     */
    void toCore(unsigned ci, Tick when, EventQueue::Callback cb);

    /**
     * Execute one core event, advancing windows (phase A + merge) as
     * needed until the core has one. @return false only when every
     * queue in the world has drained. The sharded analogue of
     * EventQueue::step(), with identical driver-visible semantics:
     * core().curTick() is the tick of the last executed core event.
     */
    bool step();

    /** True when every queue (core and shards) has drained. */
    bool idle() const;

    /** Windows advanced so far (diagnostics). */
    std::uint64_t windowsRun() const { return numWindows; }

    /** Phase-A dispatches that actually woke worker threads. */
    std::uint64_t workerDispatches() const { return numDispatches; }

    /** Channel->core messages merged so far. */
    std::uint64_t crossSends() const { return numCrossSends; }

    /**
     * End of the current window (exclusive). Serialized by snapshots
     * so a restored world reproduces the exact window boundaries --
     * and therefore the exact event schedule -- of a world that
     * never stopped.
     */
    Tick windowLimitTick() const { return windowLimit; }
    void setWindowLimitTick(Tick t);

    /**
     * Deterministic kernel counters (windows, cross-shard sends) as
     * scalars of @p stats. Host-side counters that vary with the
     * thread count (worker dispatches) are deliberately excluded:
     * metrics exports must byte-compare across VANS_THREADS.
     */
    void statsInto(StatGroup &stats) const;

  private:
    /** Per-channel shard, padded so hot clocks don't false-share. */
    struct alignas(64) Shard
    {
        EventQueue q;
        /** Channel->core messages buffered during phase A. */
        struct Msg
        {
            Tick when;
            EventQueue::Callback cb;
        };
        std::vector<Msg> outbox;
        /** Set by the dispatcher: events pending below the limit. */
        bool hasWork = false;
    };

    /** Phase A: run every shard up to @p limit (parallel). */
    void runChannels(Tick limit);

    /** Barrier: merge all outboxes into the core queue. */
    void mergeOutboxes();

    void workerMain(unsigned w);

    std::vector<std::unique_ptr<Shard>> shards;
    EventQueue coreQ;
    Tick windowTicks;
    Tick windowLimit = 0;
    std::uint64_t numWindows = 0;
    std::uint64_t numDispatches = 0;
    std::uint64_t numCrossSends = 0;

    // Worker runtime: shard i belongs to worker (i % numThreads);
    // worker 0 is the calling thread. Workers spin briefly on the
    // epoch (cheap when windows are back-to-back on a busy multicore
    // run), then sleep on the condition variable.
    std::vector<std::thread> workers;
    unsigned numThreads = 1;
    int spinLimit = 0;
    /**
     * Guards only the wakeup handshake (the condition variables'
     * wait predicates read epoch/doneCount under it). The window
     * payload -- phaseLimit, each Shard's hasWork flag and queue --
     * is NOT mutex-guarded: it is published to workers by the epoch
     * release store and handed back by the doneCount acq_rel
     * decrement, so -Wthread-safety sees no guarded access to it.
     */
    Mutex mx;
    std::condition_variable cvStart;
    std::condition_variable cvDone;
    std::atomic<std::uint64_t> epoch{0};
    std::atomic<unsigned> doneCount{0};
    std::atomic<bool> stopFlag{false};
    Tick phaseLimit = 0; ///< Published by the epoch release store.
};

} // namespace vans

#endif // VANS_COMMON_SHARDED_KERNEL_HH
