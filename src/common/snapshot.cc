#include "common/snapshot.hh"

#include <cstring>

#include "common/check.hh"
#include "common/mem_system.hh"

namespace vans::snapshot
{

// One-byte type codes prefixing every serialized value.
static constexpr std::uint8_t kTag = 0xA0;
static constexpr std::uint8_t kU64 = 0xA1;
static constexpr std::uint8_t kF64 = 0xA2;
static constexpr std::uint8_t kBool = 0xA3;
static constexpr std::uint8_t kStr = 0xA4;

void
StateSink::raw(const void *p, std::size_t n)
{
    const auto *b = static_cast<const std::uint8_t *>(p);
    bytes.insert(bytes.end(), b, b + n);
}

void
StateSink::tag(const char *name)
{
    bytes.push_back(kTag);
    std::uint64_t len = std::strlen(name);
    raw(&len, sizeof(len));
    raw(name, len);
}

void
StateSink::u64(std::uint64_t v)
{
    bytes.push_back(kU64);
    raw(&v, sizeof(v));
}

void
StateSink::f64(double v)
{
    bytes.push_back(kF64);
    raw(&v, sizeof(v));
}

void
StateSink::boolean(bool v)
{
    bytes.push_back(kBool);
    bytes.push_back(v ? 1 : 0);
}

void
StateSink::str(const std::string &s)
{
    bytes.push_back(kStr);
    std::uint64_t len = s.size();
    raw(&len, sizeof(len));
    raw(s.data(), len);
}

std::uint8_t
StateSource::code(std::uint8_t expect)
{
    VANS_REQUIRE("snapshot", 0, off < bytes.size(),
                 "state stream exhausted (wanted code 0x%02x)",
                 expect);
    std::uint8_t c = bytes[off++];
    VANS_REQUIRE("snapshot", 0, c == expect,
                 "state stream type mismatch: got 0x%02x, "
                 "wanted 0x%02x at offset %zu",
                 c, expect, off - 1);
    return c;
}

void
StateSource::raw(void *p, std::size_t n)
{
    VANS_REQUIRE("snapshot", 0, off + n <= bytes.size(),
                 "state stream truncated (%zu wanted, %zu left)", n,
                 bytes.size() - off);
    std::memcpy(p, bytes.data() + off, n);
    off += n;
}

void
StateSource::tag(const char *name)
{
    code(kTag);
    std::uint64_t len = 0;
    raw(&len, sizeof(len));
    VANS_REQUIRE("snapshot", 0, off + len <= bytes.size(),
                 "state stream truncated inside tag");
    std::string got(reinterpret_cast<const char *>(bytes.data() + off),
                    len);
    off += len;
    VANS_REQUIRE("snapshot", 0, got == name,
                 "section tag mismatch: stream has \"%s\", "
                 "restorer wants \"%s\"",
                 got.c_str(), name);
}

std::uint64_t
StateSource::u64()
{
    code(kU64);
    std::uint64_t v = 0;
    raw(&v, sizeof(v));
    return v;
}

double
StateSource::f64()
{
    code(kF64);
    double v = 0;
    raw(&v, sizeof(v));
    return v;
}

bool
StateSource::boolean()
{
    code(kBool);
    VANS_REQUIRE("snapshot", 0, off < bytes.size(),
                 "state stream truncated inside bool");
    return bytes[off++] != 0;
}

std::string
StateSource::str()
{
    code(kStr);
    std::uint64_t len = 0;
    raw(&len, sizeof(len));
    VANS_REQUIRE("snapshot", 0, off + len <= bytes.size(),
                 "state stream truncated inside string");
    std::string s(reinterpret_cast<const char *>(bytes.data() + off),
                  len);
    off += len;
    return s;
}

WorldSnapshot
WorldSnapshot::capture(EventQueue &eq, const MemorySystem &sys)
{
    VANS_REQUIRE("snapshot", eq.curTick(), sys.snapshotSupported(),
                 "capture of a system without snapshot support");
    VANS_REQUIRE("snapshot", eq.curTick(), sys.quiescent(),
                 "capture of a non-quiescent world");
    StateSink sink;
    sink.tag("world");
    eq.snapshotTo(sink);
    sys.snapshotTo(sink);
    sink.tag("world-end");
    WorldSnapshot snap;
    snap.image = sink.take();
    return snap;
}

void
WorldSnapshot::restoreInto(EventQueue &eq, MemorySystem &sys) const
{
    VANS_REQUIRE("snapshot", eq.curTick(), valid(),
                 "restore from an empty snapshot");
    VANS_REQUIRE("snapshot", eq.curTick(), sys.snapshotSupported(),
                 "restore into a system without snapshot support");
    StateSource src(image);
    src.tag("world");
    eq.restoreFrom(src);
    sys.restoreFrom(src);
    src.tag("world-end");
    VANS_REQUIRE("snapshot", eq.curTick(), src.exhausted(),
                 "trailing bytes after world restore");
}

void
awaitQuiescence(EventQueue &eq, MemorySystem &sys,
                std::uint64_t maxEvents)
{
    // The drain condition lives on MemorySystem so every idle-out
    // loop (driver, snapshot capture, crash harness) shares one
    // definition of "done"; @p eq is unused beyond the signature
    // kept for existing call sites -- the system steps itself
    // (sharded kernels advance their shards through step()).
    (void)eq;
    sys.drain(maxEvents);
}

} // namespace vans::snapshot
