/**
 * @file
 * Warm-world snapshot/fork framework.
 *
 * A sweep re-pays a multi-thousand-line warm-up per point unless the
 * warm state can be captured once and cloned. This header provides
 * the pieces: a typed byte-stream (StateSink / StateSource) every
 * stateful component serializes itself through, and a WorldSnapshot
 * that captures a quiescent (EventQueue, MemorySystem) pair and
 * restores it into a freshly built world in O(state) with zero
 * re-simulation.
 *
 * The stream is *typed*: every value carries a one-byte type code and
 * every component section opens with a named tag, so a component
 * added, removed, or reordered between capture and restore fails a
 * VANS_REQUIRE immediately instead of silently mis-restoring state.
 *
 * Quiescence contract: a world may only be captured when no request
 * is in flight anywhere in the model (see VansSystem::quiescent()).
 * The only events pending at that point are idempotent, guarded
 * timers (the DRAM controllers' refresh wakeups), which the owning
 * component re-arms during restoreFrom(). Restore therefore schedules
 * its re-armed timers before the caller issues any new work, so those
 * timers keep lower sequence numbers than every measurement event --
 * exactly the order the continuously-run reference world executes,
 * which is what makes a forked run tick-for-tick identical to it.
 */

#ifndef VANS_COMMON_SNAPSHOT_HH
#define VANS_COMMON_SNAPSHOT_HH

#include <cstdint>
#include <string>
#include <vector>

namespace vans
{
class EventQueue;
class MemorySystem;
} // namespace vans

namespace vans::snapshot
{

/** Serialization sink: components append typed values. */
class StateSink
{
  public:
    /** Open a named section (verified on restore). */
    void tag(const char *name);

    void u64(std::uint64_t v);
    void f64(double v);
    void boolean(bool v);
    void str(const std::string &s);

    const std::vector<std::uint8_t> &data() const { return bytes; }
    std::vector<std::uint8_t> take() { return std::move(bytes); }

  private:
    void raw(const void *p, std::size_t n);

    std::vector<std::uint8_t> bytes;
};

/** Deserialization source: typed reads mirror StateSink writes. */
class StateSource
{
  public:
    explicit StateSource(const std::vector<std::uint8_t> &buf)
        : bytes(buf)
    {}

    /** Consume a section tag; panics when it does not match. */
    void tag(const char *name);

    std::uint64_t u64();
    double f64();
    bool boolean();
    std::string str();

    /** True once every byte has been consumed. */
    bool exhausted() const { return off == bytes.size(); }

  private:
    std::uint8_t code(std::uint8_t expect);
    void raw(void *p, std::size_t n);

    const std::vector<std::uint8_t> &bytes;
    std::size_t off = 0;
};

/**
 * An opaque, self-describing image of one quiescent simulated world
 * (event-kernel counters + the full memory-system state).
 */
class WorldSnapshot
{
  public:
    WorldSnapshot() = default;

    /**
     * Capture @p sys (clocked by @p eq). The system must support
     * snapshotting and be quiescent; both are VANS_REQUIREd.
     */
    static WorldSnapshot capture(EventQueue &eq,
                                 const MemorySystem &sys);

    /**
     * Restore into a freshly built world: @p eq must be empty and at
     * tick 0, @p sys built by the same factory/config as the captured
     * system. Re-arms the components' guarded timer events.
     */
    void restoreInto(EventQueue &eq, MemorySystem &sys) const;

    bool valid() const { return !image.empty(); }
    std::size_t sizeBytes() const { return image.size(); }

  private:
    std::vector<std::uint8_t> image;
};

/**
 * Step @p eq until @p sys reports quiescent() (in-flight work done,
 * perpetual guarded timers may remain pending). Panics if the queue
 * drains or @p maxEvents fire without reaching quiescence.
 */
void awaitQuiescence(EventQueue &eq, MemorySystem &sys,
                     std::uint64_t maxEvents = 50000000);

} // namespace vans::snapshot

#endif // VANS_COMMON_SNAPSHOT_HH
