#include "common/stats.hh"

#include <cmath>
#include <sstream>

#include "common/check.hh"
#include "common/snapshot.hh"

namespace vans
{

double
StatDistribution::percentile(double p) const
{
    if (samples.empty())
        return 0;
    std::vector<double> sorted(samples);
    std::sort(sorted.begin(), sorted.end());
    if (p <= 0)
        return sorted.front();
    if (p >= 1)
        return sorted.back();
    double idx = p * static_cast<double>(sorted.size() - 1);
    std::size_t lo = static_cast<std::size_t>(std::floor(idx));
    std::size_t hi = static_cast<std::size_t>(std::ceil(idx));
    double frac = idx - static_cast<double>(lo);
    return sorted[lo] * (1 - frac) + sorted[hi] * frac;
}

double
StatDistribution::fractionAbove(double threshold) const
{
    if (samples.empty())
        return 0;
    std::size_t n = 0;
    for (double v : samples) {
        if (v > threshold)
            ++n;
    }
    return static_cast<double>(n) / static_cast<double>(samples.size());
}

std::string
StatGroup::dump() const
{
    std::ostringstream out;
    for (const auto &kv : scalars) {
        out << groupName << '.' << kv.first << " = "
            << kv.second.value() << '\n';
    }
    for (const auto &kv : averages) {
        out << groupName << '.' << kv.first << " = "
            << kv.second.mean() << " (n=" << kv.second.count()
            << ", min=" << kv.second.min()
            << ", max=" << kv.second.max() << ")\n";
    }
    for (const auto &kv : distributions) {
        out << groupName << '.' << kv.first << " = "
            << kv.second.mean() << " (n=" << kv.second.count()
            << ", p50=" << kv.second.percentile(0.5)
            << ", p99=" << kv.second.percentile(0.99)
            << ", p999=" << kv.second.percentile(0.999) << ")\n";
    }
    return out.str();
}

void
StatGroup::reset()
{
    for (auto &kv : scalars)
        kv.second.reset();
    for (auto &kv : averages)
        kv.second.reset();
    for (auto &kv : distributions)
        kv.second.reset();
}

void
StatGroup::snapshotTo(snapshot::StateSink &sink) const
{
    sink.tag("stats");
    sink.str(groupName);
    sink.u64(scalars.size());
    for (const auto &kv : scalars) { // std::map: sorted, stable
        sink.str(kv.first);
        sink.u64(kv.second.value());
    }
    sink.u64(averages.size());
    for (const auto &kv : averages) {
        sink.str(kv.first);
        sink.f64(kv.second.rawSum());
        sink.u64(kv.second.count());
        sink.f64(kv.second.rawMin());
        sink.f64(kv.second.rawMax());
    }
}

void
StatGroup::restoreFrom(snapshot::StateSource &src)
{
    src.tag("stats");
    std::string name = src.str();
    VANS_REQUIRE("stats", 0, name == groupName,
                 "stat group mismatch: stream has \"%s\", "
                 "restorer is \"%s\"",
                 name.c_str(), groupName.c_str());
    scalars.clear();
    averages.clear();
    std::uint64_t ns = src.u64();
    for (std::uint64_t i = 0; i < ns; ++i) {
        std::string key = src.str();
        scalars[key].set(src.u64());
    }
    std::uint64_t na = src.u64();
    for (std::uint64_t i = 0; i < na; ++i) {
        std::string key = src.str();
        double sum = src.f64();
        std::uint64_t cnt = src.u64();
        double lo = src.f64();
        double hi = src.f64();
        averages[key].restoreRaw(sum, cnt, lo, hi);
    }
}

bool
StatGroup::identicalTo(const StatGroup &other) const
{
    if (scalars.size() != other.scalars.size() ||
        averages.size() != other.averages.size())
        return false;
    for (const auto &kv : scalars) {
        auto it = other.scalars.find(kv.first);
        if (it == other.scalars.end() ||
            it->second.value() != kv.second.value())
            return false;
    }
    for (const auto &kv : averages) {
        auto it = other.averages.find(kv.first);
        if (it == other.averages.end() ||
            it->second.rawSum() != kv.second.rawSum() ||
            it->second.count() != kv.second.count() ||
            it->second.rawMin() != kv.second.rawMin() ||
            it->second.rawMax() != kv.second.rawMax())
            return false;
    }
    return true;
}

} // namespace vans
