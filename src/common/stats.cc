#include "common/stats.hh"

#include <cmath>
#include <sstream>

namespace vans
{

double
StatDistribution::percentile(double p) const
{
    if (samples.empty())
        return 0;
    std::vector<double> sorted(samples);
    std::sort(sorted.begin(), sorted.end());
    if (p <= 0)
        return sorted.front();
    if (p >= 1)
        return sorted.back();
    double idx = p * static_cast<double>(sorted.size() - 1);
    std::size_t lo = static_cast<std::size_t>(std::floor(idx));
    std::size_t hi = static_cast<std::size_t>(std::ceil(idx));
    double frac = idx - static_cast<double>(lo);
    return sorted[lo] * (1 - frac) + sorted[hi] * frac;
}

double
StatDistribution::fractionAbove(double threshold) const
{
    if (samples.empty())
        return 0;
    std::size_t n = 0;
    for (double v : samples) {
        if (v > threshold)
            ++n;
    }
    return static_cast<double>(n) / static_cast<double>(samples.size());
}

std::string
StatGroup::dump() const
{
    std::ostringstream out;
    for (const auto &kv : scalars) {
        out << groupName << '.' << kv.first << " = "
            << kv.second.value() << '\n';
    }
    for (const auto &kv : averages) {
        out << groupName << '.' << kv.first << " = "
            << kv.second.mean() << " (n=" << kv.second.count()
            << ", min=" << kv.second.min()
            << ", max=" << kv.second.max() << ")\n";
    }
    return out.str();
}

void
StatGroup::reset()
{
    for (auto &kv : scalars)
        kv.second.reset();
    for (auto &kv : averages)
        kv.second.reset();
}

} // namespace vans
