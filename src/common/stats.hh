/**
 * @file
 * Lightweight statistics framework.
 *
 * Components own Scalar / Average / Histogram stats and register them
 * with a StatGroup so experiment harnesses can dump everything by
 * name. Histogram keeps raw samples bounded by reservoir limits so
 * tail percentiles stay queryable even across very long runs.
 */

#ifndef VANS_COMMON_STATS_HH
#define VANS_COMMON_STATS_HH

#include <algorithm>
#include <cstdint>
#include <limits>
#include <map>
#include <string>
#include <vector>

namespace vans::snapshot
{
class StateSink;
class StateSource;
} // namespace vans::snapshot

namespace vans
{

/** A monotonically accumulating counter. */
class StatScalar
{
  public:
    void inc(std::uint64_t n = 1) { total += n; }
    void set(std::uint64_t v) { total = v; }
    std::uint64_t value() const { return total; }
    void reset() { total = 0; }

  private:
    std::uint64_t total = 0;
};

/** Running mean / min / max of a double-valued sample stream. */
class StatAverage
{
  public:
    void
    sample(double v)
    {
        sum += v;
        ++n;
        lo = std::min(lo, v);
        hi = std::max(hi, v);
    }

    double mean() const { return n ? sum / static_cast<double>(n) : 0; }
    double min() const { return n ? lo : 0; }
    double max() const { return n ? hi : 0; }
    std::uint64_t count() const { return n; }

    void
    reset()
    {
        sum = 0;
        n = 0;
        lo = std::numeric_limits<double>::max();
        hi = std::numeric_limits<double>::lowest();
    }

    /**
     * Raw state access for snapshot serialization (mean()*count()
     * would not round-trip the sum bit-exactly).
     */
    double rawSum() const { return sum; }
    double rawMin() const { return lo; }
    double rawMax() const { return hi; }
    void
    restoreRaw(double s, std::uint64_t cnt, double l, double h)
    {
        sum = s;
        n = cnt;
        lo = l;
        hi = h;
    }

  private:
    double sum = 0;
    std::uint64_t n = 0;
    double lo = std::numeric_limits<double>::max();
    double hi = std::numeric_limits<double>::lowest();
};

/**
 * Sample distribution that retains individual samples (up to a cap)
 * so percentiles and tail counts can be computed after a run.
 */
// simlint-allow(statscover: this IS the stats framework -- the
// nested StatAverage is exported through the group that owns the
// distribution, not through a walk of its own)
class StatDistribution
{
  public:
    explicit StatDistribution(std::size_t max_samples = 1u << 20)
        : cap(max_samples)
    {}

    void
    sample(double v)
    {
        avg.sample(v);
        if (samples.size() < cap)
            samples.push_back(v);
    }

    double mean() const { return avg.mean(); }
    double min() const { return avg.min(); }
    double max() const { return avg.max(); }
    std::uint64_t count() const { return avg.count(); }

    /** p in [0,1]; interpolated percentile over retained samples. */
    double percentile(double p) const;

    /** Fraction of retained samples strictly above @p threshold. */
    double fractionAbove(double threshold) const;

    const std::vector<double> &raw() const { return samples; }

    void
    reset()
    {
        avg.reset();
        samples.clear();
    }

  private:
    StatAverage avg;
    std::vector<double> samples;
    std::size_t cap;
};

/** Named registry of stats belonging to one component. */
// simlint-allow(statscover: StatGroup is the unit the
// MetricsRegistry walk iterates -- its containers are the walk's
// leaves, not members that need re-exporting)
class StatGroup
{
  public:
    explicit StatGroup(std::string group_name)
        : groupName(std::move(group_name))
    {}

    StatScalar &scalar(const std::string &name)
    {
        return scalars[name];
    }

    StatAverage &average(const std::string &name)
    {
        return averages[name];
    }

    /**
     * Sample distribution (percentile-capable). Distributions are
     * observability-only: they are not serialized by snapshotTo()
     * and do not participate in identicalTo(), so adding one never
     * perturbs the warm-world fork contract.
     */
    StatDistribution &distribution(const std::string &name)
    {
        return distributions[name];
    }

    const std::string &name() const { return groupName; }

    /** Iteration access for the metrics exporter (sorted by name). */
    const std::map<std::string, StatScalar> &allScalars() const
    {
        return scalars;
    }
    const std::map<std::string, StatAverage> &allAverages() const
    {
        return averages;
    }
    const std::map<std::string, StatDistribution> &
    allDistributions() const
    {
        return distributions;
    }

    /** Value of a scalar, 0 if never touched. */
    std::uint64_t
    scalarValue(const std::string &name) const
    {
        auto it = scalars.find(name);
        return it == scalars.end() ? 0 : it->second.value();
    }

    /** Render "group.stat = value" lines. */
    std::string dump() const;

    void reset();

    /** Serialize every scalar and average (by name, bit-exact). */
    void snapshotTo(snapshot::StateSink &sink) const;

    /** Restore stats serialized by snapshotTo(). */
    void restoreFrom(snapshot::StateSource &src);

    /** True when both groups hold identical stats (test helper). */
    bool identicalTo(const StatGroup &other) const;

  private:
    std::string groupName;
    std::map<std::string, StatScalar> scalars;
    std::map<std::string, StatAverage> averages;
    // simlint-transient(distributions are observability-only by
    // documented contract: snapshotTo serializes scalars and
    // averages, and identicalTo ignores distributions, so adding one
    // never perturbs the warm-world fork)
    std::map<std::string, StatDistribution> distributions;
};

} // namespace vans

#endif // VANS_COMMON_STATS_HH
