/**
 * @file
 * SweepRunner: deterministic fan-out of independent simulation
 * points.
 *
 * A sweep point is a pure function of its index: it builds its own
 * (EventQueue, MemorySystem, Driver) world, runs it, and returns a
 * result. Because points share no simulated state and results are
 * collected by index, the output is bit-identical whatever the
 * thread count -- SweepRunner(1) is the reference serial execution
 * the tests compare against.
 *
 * Warm-once mode: many sweeps run an identical warm-up phase at
 * every point before the point-specific measurement. mapFromWarm()
 * runs that warm-up exactly once on a prototype world, captures a
 * WorldSnapshot at quiescence, and restores it into each point's
 * fresh world in O(state) -- bit-identical to the cold-per-point
 * run (the fork-fidelity tests assert this), at a fraction of the
 * wall clock.
 */

#ifndef VANS_COMMON_SWEEP_HH
#define VANS_COMMON_SWEEP_HH

#include <cstdint>
#include <functional>
#include <memory>
#include <vector>

#include "common/event_queue.hh"
#include "common/mem_system.hh"
#include "common/parallel.hh"
#include "common/sharded_kernel.hh"
#include "common/snapshot.hh"

namespace vans
{

/** Builds a memory system whose channels live on @p kern's shards. */
using ShardedFactory =
    std::function<std::unique_ptr<MemorySystem>(ShardedKernel &)>;

/** Runs indexed, independent simulation points across host cores. */
class SweepRunner
{
  public:
    /** Fan out over the process-wide shared pool. */
    SweepRunner() : threads(hardwareThreads()) {}

    /**
     * Fan out over a private pool of exactly @p t workers (t <= 1:
     * run inline on the calling thread).
     */
    explicit SweepRunner(unsigned t) : threads(t < 1 ? 1 : t)
    {
        if (threads > 1)
            ownPool = std::make_unique<ThreadPool>(threads);
    }

    /**
     * Evaluate fn(i) for i in [0, n); results collected in index
     * order. R must be default-constructible and movable. The
     * callable is taken as a template parameter -- no wrapping into
     * std::function on the serial path.
     */
    template <typename R, typename Fn>
    std::vector<R>
    map(std::size_t n, Fn &&fn) const
    {
        std::vector<R> out(n);
        forEach(n, [&out, &fn](std::size_t i) { out[i] = fn(i); });
        return out;
    }

    /** Run fn(i) for i in [0, n) with no result collection. */
    template <typename Fn>
    void
    forEach(std::size_t n, Fn &&fn) const
    {
        if (threads <= 1) {
            for (std::size_t i = 0; i < n; ++i)
                fn(i);
            return;
        }
        // Only the parallel path pays the type-erasure toll, and
        // there it is one std::function per sweep, not per point.
        parallelFor(n, std::function<void(std::size_t)>(
                           [&fn](std::size_t i) { fn(i); }),
                    ownPool.get());
    }

    /**
     * A captured warm world: the reusable product of warmOnce().
     * Holds the factory, the warm-up routine (for the cold fallback)
     * and, when the system supports snapshotting, the WorldSnapshot
     * taken at quiescence. One WarmStart can feed any number of
     * mapForked() sweeps -- multi-stage probers warm once and fork
     * every stage from the same image.
     */
    struct WarmStart
    {
        SystemFactory factory;
        std::function<void(MemorySystem &)> warm;
        snapshot::WorldSnapshot snap; ///< empty => cold fallback

        bool forked() const { return snap.valid(); }
    };

    /**
     * Run @p warm on one prototype world built from @p factory, step
     * it to quiescence and capture its snapshot. When the factory's
     * system does not support snapshots, the returned WarmStart
     * instead remembers @p warm so mapForked() can re-run it per
     * point (the cold fallback).
     */
    WarmStart
    warmOnce(const SystemFactory &factory,
             std::function<void(MemorySystem &)> warm) const
    {
        WarmStart ws;
        ws.factory = factory;
        ws.warm = std::move(warm);
        EventQueue eq;
        std::unique_ptr<MemorySystem> proto = ws.factory(eq);
        if (proto->snapshotSupported()) {
            ws.warm(*proto);
            snapshot::awaitQuiescence(eq, *proto);
            ws.snap = snapshot::WorldSnapshot::capture(eq, *proto);
        }
        return ws;
    }

    /**
     * Evaluate fn(MemorySystem&, i) for i in [0, n), each point on a
     * freshly built world forked from @p ws: restored from its
     * snapshot in O(state), or -- cold fallback -- re-warmed from
     * scratch. Either way every point sees the identical quiescent
     * warm state, so results are bit-identical to the serial
     * cold-per-point run whatever the thread count.
     */
    template <typename R, typename PointFn>
    std::vector<R>
    mapForked(const WarmStart &ws, std::size_t n, PointFn &&fn) const
    {
        std::vector<R> out(n);
        forEach(n, [&](std::size_t i) {
            EventQueue eq;
            std::unique_ptr<MemorySystem> sys = ws.factory(eq);
            if (ws.snap.valid()) {
                ws.snap.restoreInto(eq, *sys);
            } else {
                ws.warm(*sys);
                snapshot::awaitQuiescence(eq, *sys);
            }
            out[i] = fn(*sys, i);
        });
        return out;
    }

    /**
     * Warm-once / fork-many sweep: warmOnce() + one mapForked().
     * Builds one prototype world from @p factory, runs
     * warm(MemorySystem&) on it, steps it to quiescence and captures
     * a WorldSnapshot; then evaluates fn(MemorySystem&, i) for i in
     * [0, n), each point on a freshly built world restored from the
     * snapshot (or re-warmed, for systems without snapshot support).
     */
    template <typename R, typename WarmFn, typename PointFn>
    std::vector<R>
    mapFromWarm(const SystemFactory &factory, WarmFn &&warm,
                std::size_t n, PointFn &&fn) const
    {
        return mapForked<R>(
            warmOnce(factory, std::forward<WarmFn>(warm)), n,
            std::forward<PointFn>(fn));
    }

    /**
     * Run ONE world with intra-world parallelism instead of fanning
     * out across worlds: builds a ShardedKernel with one shard per
     * channel and this runner's thread count, hands it to @p factory
     * to wire up the system, then evaluates body(MemorySystem&).
     * Complements map()/mapForked(): a sweep spreads independent
     * points across cores; runSharded() spreads one point's channel
     * pipelines. The kernel's conservative-window execution keeps
     * the result bit-identical for any thread count, so
     * SweepRunner(1).runSharded(...) is the reference serial run.
     * The kernel (and its worker threads) outlives the system it
     * feeds; both are torn down before runSharded() returns.
     */
    template <typename Fn>
    auto
    runSharded(unsigned channels, Tick window,
               const ShardedFactory &factory, Fn &&body) const
    {
        ShardedKernel kern(channels, window, threads);
        std::unique_ptr<MemorySystem> sys = factory(kern);
        return body(*sys);
    }

    unsigned threadCount() const { return threads; }

    /**
     * Stream-independent per-point seed: mixes a base seed with the
     * point index (SplitMix64 finalizer) so neighbouring points get
     * uncorrelated streams while staying reproducible.
     */
    static std::uint64_t
    pointSeed(std::uint64_t base, std::size_t i)
    {
        std::uint64_t z =
            base + (static_cast<std::uint64_t>(i) + 1) *
                       0x9e3779b97f4a7c15ull;
        z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
        z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
        return z ^ (z >> 31);
    }

  private:
    unsigned threads;
    std::unique_ptr<ThreadPool> ownPool;
};

} // namespace vans

#endif // VANS_COMMON_SWEEP_HH
