/**
 * @file
 * SweepRunner: deterministic fan-out of independent simulation
 * points.
 *
 * A sweep point is a pure function of its index: it builds its own
 * (EventQueue, MemorySystem, Driver) world, runs it, and returns a
 * result. Because points share no simulated state and results are
 * collected by index, the output is bit-identical whatever the
 * thread count -- SweepRunner(1) is the reference serial execution
 * the tests compare against.
 */

#ifndef VANS_COMMON_SWEEP_HH
#define VANS_COMMON_SWEEP_HH

#include <cstdint>
#include <functional>
#include <memory>
#include <vector>

#include "common/parallel.hh"

namespace vans
{

/** Runs indexed, independent simulation points across host cores. */
class SweepRunner
{
  public:
    /** Fan out over the process-wide shared pool. */
    SweepRunner() : threads(hardwareThreads()) {}

    /**
     * Fan out over a private pool of exactly @p t workers (t <= 1:
     * run inline on the calling thread).
     */
    explicit SweepRunner(unsigned t) : threads(t < 1 ? 1 : t)
    {
        if (threads > 1)
            ownPool = std::make_unique<ThreadPool>(threads);
    }

    /**
     * Evaluate fn(i) for i in [0, n); results collected in index
     * order. R must be default-constructible and movable.
     */
    template <typename R>
    std::vector<R>
    map(std::size_t n,
        const std::function<R(std::size_t)> &fn) const
    {
        std::vector<R> out(n);
        forEach(n, [&out, &fn](std::size_t i) { out[i] = fn(i); });
        return out;
    }

    /** Run fn(i) for i in [0, n) with no result collection. */
    void
    forEach(std::size_t n,
            const std::function<void(std::size_t)> &fn) const
    {
        if (threads <= 1) {
            for (std::size_t i = 0; i < n; ++i)
                fn(i);
            return;
        }
        parallelFor(n, fn, ownPool.get());
    }

    unsigned threadCount() const { return threads; }

    /**
     * Stream-independent per-point seed: mixes a base seed with the
     * point index (SplitMix64 finalizer) so neighbouring points get
     * uncorrelated streams while staying reproducible.
     */
    static std::uint64_t
    pointSeed(std::uint64_t base, std::size_t i)
    {
        std::uint64_t z =
            base + (static_cast<std::uint64_t>(i) + 1) *
                       0x9e3779b97f4a7c15ull;
        z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
        z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
        return z ^ (z >> 31);
    }

  private:
    unsigned threads;
    std::unique_ptr<ThreadPool> ownPool;
};

} // namespace vans

#endif // VANS_COMMON_SWEEP_HH
