#include "common/trace_event.hh"

#include <cstdlib>
#include <fstream>
#include <sstream>

#include "common/check.hh"
#include "common/logging.hh"

namespace vans::obs
{

bool
envTraceEnabled()
{
    // simlint-allow: written once on first use, read-only after.
    static const bool enabled = [] {
        const char *v = std::getenv("VANS_TRACE");
        if (!v)
            return false;
        std::string s(v);
        return s == "1" || s == "on" || s == "yes" || s == "true";
    }();
    return enabled;
}

const char *
reqStageName(verify::ReqStage s)
{
    switch (s) {
      case verify::ReqStage::Issued:
        return "Issued";
      case verify::ReqStage::Queued:
        return "Queued";
      case verify::ReqStage::Serviced:
        return "Serviced";
      case verify::ReqStage::Retired:
        return "Retired";
    }
    return "?";
}

TrackId
TraceRecorder::track(const std::string &name)
{
    auto it = trackIds.find(name);
    if (it != trackIds.end())
        return it->second;
    TrackId id = static_cast<TrackId>(trackNames.size());
    trackNames.push_back(name);
    trackIds.emplace(name, id);
    return id;
}

LabelId
TraceRecorder::label(const std::string &name)
{
    auto it = labelIds.find(name);
    if (it != labelIds.end())
        return it->second;
    LabelId id = static_cast<LabelId>(labelNames.size());
    labelNames.push_back(name);
    labelIds.emplace(name, id);
    return id;
}

void
TraceRecorder::span(TrackId t, LabelId l, Tick begin, Tick end)
{
    TraceEvent e;
    e.kind = TraceEvent::Kind::Span;
    e.track = t;
    e.label = l;
    e.begin = begin;
    e.end = end;
    evs.push_back(e);
}

void
TraceRecorder::spanAddr(TrackId t, LabelId l, Tick begin, Tick end,
                        Addr addr)
{
    TraceEvent e;
    e.kind = TraceEvent::Kind::Span;
    e.track = t;
    e.label = l;
    e.begin = begin;
    e.end = end;
    e.addr = addr;
    e.hasAddr = true;
    evs.push_back(e);
}

void
TraceRecorder::instant(TrackId t, LabelId l, Tick at)
{
    TraceEvent e;
    e.kind = TraceEvent::Kind::Instant;
    e.track = t;
    e.label = l;
    e.begin = at;
    evs.push_back(e);
}

void
TraceRecorder::instant(TrackId t, LabelId l, Tick at, Addr addr)
{
    TraceEvent e;
    e.kind = TraceEvent::Kind::Instant;
    e.track = t;
    e.label = l;
    e.begin = at;
    e.addr = addr;
    e.hasAddr = true;
    evs.push_back(e);
}

void
TraceRecorder::counter(TrackId t, LabelId l, Tick at, double value)
{
    TraceEvent e;
    e.kind = TraceEvent::Kind::Counter;
    e.track = t;
    e.label = l;
    e.begin = at;
    e.value = value;
    evs.push_back(e);
}

std::uint64_t
TraceRecorder::flowBegin(TrackId t, LabelId l, Tick at)
{
    TraceEvent e;
    e.kind = TraceEvent::Kind::FlowBegin;
    e.track = t;
    e.label = l;
    e.begin = at;
    e.id = nextFlowId++;
    evs.push_back(e);
    return e.id;
}

void
TraceRecorder::flowEnd(TrackId t, LabelId l, Tick at,
                       std::uint64_t flow_id)
{
    TraceEvent e;
    e.kind = TraceEvent::Kind::FlowEnd;
    e.track = t;
    e.label = l;
    e.begin = at;
    e.id = flow_id;
    evs.push_back(e);
}

void
TraceRecorder::onIssue(Request &r, Tick now)
{
    // The hop log is attached by the owning system (a recycled
    // per-slot ReqTrace from its RequestPool); a request without one
    // records nothing.
    if (!r.trace)
        return;
    r.trace->hops.clear();
    r.trace->hops.push_back({verify::ReqStage::Issued, now, now});
}

void
TraceRecorder::advanceHop(Request &r, verify::ReqStage to, Tick now)
{
    if (!r.trace || r.trace->hops.empty())
        return; // Issued elsewhere (untraced front end): ignore.
    ReqHop &open = r.trace->hops.back();
    // Re-queueing while waiting on a resource is legal (the
    // lifecycle checker allows it); only forward transitions open a
    // new hop.
    if (to <= open.stage)
        return;
    open.exit = now;
    r.trace->hops.push_back({to, now, now});
}

void
TraceRecorder::onQueued(Request &r, Tick now)
{
    advanceHop(r, verify::ReqStage::Queued, now);
}

void
TraceRecorder::onServiced(Request &r, Tick now)
{
    advanceHop(r, verify::ReqStage::Serviced, now);
}

void
TraceRecorder::onRetire(Request &r, Tick now)
{
    advanceHop(r, verify::ReqStage::Retired, now);
    if (!r.trace || r.trace->hops.empty())
        return;
    r.trace->hops.back().exit = now;
    // Emit each hop as a nested async slice keyed by the request id:
    // Perfetto groups same-id async events onto one request lane.
    for (const ReqHop &h : r.trace->hops) {
        TraceEvent b;
        b.kind = TraceEvent::Kind::AsyncBegin;
        b.label = label(reqStageName(h.stage));
        b.begin = h.enter;
        b.id = r.id;
        b.addr = r.addr;
        b.hasAddr = true;
        evs.push_back(b);
        TraceEvent e;
        e.kind = TraceEvent::Kind::AsyncEnd;
        e.label = b.label;
        e.begin = h.exit;
        e.id = r.id;
        evs.push_back(e);
    }
}

namespace
{

/** Chrome timestamps are microseconds; ticks are picoseconds. */
std::string
fmtTs(Tick t)
{
    // Render tick / 1e6 exactly: <us>.<6 digit remainder>.
    char buf[40];
    std::snprintf(buf, sizeof(buf), "%llu.%06llu",
                  static_cast<unsigned long long>(t / 1000000),
                  static_cast<unsigned long long>(t % 1000000));
    return buf;
}

void
appendCommon(std::ostringstream &o, const char *ph,
             const std::string &name, unsigned tid, Tick ts)
{
    o << "{\"ph\":\"" << ph << "\",\"name\":\"" << name
      << "\",\"pid\":1,\"tid\":" << tid << ",\"ts\":" << fmtTs(ts);
}

} // namespace

std::string
TraceRecorder::toChromeJson() const
{
    std::ostringstream o;
    o << "{\"displayTimeUnit\":\"ns\",\"traceEvents\":[";
    bool first = true;
    auto sep = [&first, &o] {
        if (!first)
            o << ",";
        first = false;
        o << "\n";
    };

    // Track metadata: one named thread per component instance. The
    // request lanes (async events) live on tid 0.
    sep();
    o << "{\"ph\":\"M\",\"name\":\"process_name\",\"pid\":1,"
         "\"args\":{\"name\":\"vans\"}}";
    for (std::size_t t = 0; t < trackNames.size(); ++t) {
        sep();
        o << "{\"ph\":\"M\",\"name\":\"thread_name\",\"pid\":1,"
             "\"tid\":"
          << (t + 1) << ",\"args\":{\"name\":\"" << trackNames[t]
          << "\"}}";
        sep();
        o << "{\"ph\":\"M\",\"name\":\"thread_sort_index\",\"pid\":1,"
             "\"tid\":"
          << (t + 1) << ",\"args\":{\"sort_index\":" << (t + 1)
          << "}}";
    }

    for (const TraceEvent &e : evs) {
        unsigned tid = e.track + 1u;
        switch (e.kind) {
          case TraceEvent::Kind::Span: {
            sep();
            appendCommon(o, "X", labelNames[e.label], tid, e.begin);
            o << ",\"dur\":" << fmtTs(e.end - e.begin)
              << ",\"cat\":\"sim\"";
            if (e.hasAddr) {
                o << ",\"args\":{\"addr\":\"0x" << std::hex << e.addr
                  << std::dec << "\"}";
            }
            o << "}";
            break;
          }
          case TraceEvent::Kind::Instant: {
            sep();
            appendCommon(o, "i", labelNames[e.label], tid, e.begin);
            o << ",\"cat\":\"sim\",\"s\":\"t\"";
            if (e.hasAddr) {
                o << ",\"args\":{\"addr\":\"0x" << std::hex << e.addr
                  << std::dec << "\"}";
            }
            o << "}";
            break;
          }
          case TraceEvent::Kind::Counter: {
            sep();
            appendCommon(o, "C",
                         trackNames[e.track] + "." +
                             labelNames[e.label],
                         tid, e.begin);
            o << ",\"args\":{\"value\":" << e.value << "}}";
            break;
          }
          case TraceEvent::Kind::FlowBegin: {
            sep();
            appendCommon(o, "s", labelNames[e.label], tid, e.begin);
            o << ",\"cat\":\"flow\",\"id\":" << e.id << "}";
            break;
          }
          case TraceEvent::Kind::FlowEnd: {
            sep();
            appendCommon(o, "f", labelNames[e.label], tid, e.begin);
            o << ",\"cat\":\"flow\",\"bp\":\"e\",\"id\":" << e.id
              << "}";
            break;
          }
          case TraceEvent::Kind::AsyncBegin: {
            sep();
            appendCommon(o, "b", labelNames[e.label], 0, e.begin);
            o << ",\"cat\":\"request\",\"id\":" << e.id;
            if (e.hasAddr) {
                o << ",\"args\":{\"addr\":\"0x" << std::hex << e.addr
                  << std::dec << "\"}";
            }
            o << "}";
            break;
          }
          case TraceEvent::Kind::AsyncEnd: {
            sep();
            appendCommon(o, "e", labelNames[e.label], 0, e.begin);
            o << ",\"cat\":\"request\",\"id\":" << e.id << "}";
            break;
          }
        }
    }
    o << "\n]}\n";
    return o.str();
}

void
TraceRecorder::writeChromeJson(const std::string &path) const
{
    std::ofstream out(path);
    if (!out)
        fatal("cannot write trace file '%s'", path.c_str());
    out << toChromeJson();
    if (!out)
        fatal("short write to trace file '%s'", path.c_str());
}

TraceRecorder
mergeRecorders(const std::vector<const TraceRecorder *> &parts)
{
    TraceRecorder merged;
    const std::uint64_t nparts = parts.size();
    for (std::size_t p = 0; p < parts.size(); ++p) {
        const TraceRecorder &part = *parts[p];
        std::vector<TrackId> tmap(part.numTracks());
        for (std::size_t t = 0; t < part.numTracks(); ++t) {
            tmap[t] = merged.track(
                part.trackName(static_cast<TrackId>(t)));
        }
        std::vector<LabelId> lmap(part.numLabels());
        for (std::size_t l = 0; l < part.numLabels(); ++l) {
            lmap[l] = merged.label(
                part.labelName(static_cast<LabelId>(l)));
        }
        for (const TraceEvent &ev : part.events()) {
            TraceEvent e = ev;
            e.track = tmap[e.track];
            e.label = lmap[e.label];
            if (e.kind == TraceEvent::Kind::FlowBegin ||
                e.kind == TraceEvent::Kind::FlowEnd) {
                // Per-recorder flow counters restart at 1 in every
                // part; spread them into disjoint id spaces. A flow
                // never crosses recorders (both ends live on the
                // same shard's tracks), so remapping per part is
                // sound.
                e.id = e.id * nparts + p;
            }
            merged.appendEvent(e);
        }
    }
    return merged;
}

} // namespace vans::obs
