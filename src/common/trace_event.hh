/**
 * @file
 * Request-path tracing: a per-run span recorder with a Chrome
 * trace-event / Perfetto JSON exporter.
 *
 * The recorder is the observability mirror of the verification stack:
 * where the RequestLifecycleChecker *asserts* that every request walks
 * Issued -> Queued -> Serviced -> Retired, the TraceRecorder *records*
 * the same transitions (plus per-component activity spans) so a run
 * can be opened in Perfetto / chrome://tracing and read like a
 * flamegraph of simulated time. Both observers hang off the identical
 * call sites in the iMC and VansSystem, so instrumentation and
 * verification share one source of truth for what the stages mean.
 *
 * Model:
 *  - a *track* is one component instance (imc.ch0.bus, dimm0.lsq,
 *    dimm0.media.p3, ...), interned once at attach time;
 *  - a *span* is a [begin, end] tick interval on a track, optionally
 *    tagged with an address;
 *  - request lifecycle hops are accumulated on the Request itself
 *    (obs::ReqTrace) and emitted as nested async slices keyed by the
 *    request id when the request retires;
 *  - wear-leveling migrations emit flow events connecting the
 *    migration span (wear track) to every write stall it causes
 *    (AIT track).
 *
 * Disabled-path cost: components hold a raw `TraceRecorder *` that is
 * nullptr unless tracing is on ([trace] enable or VANS_TRACE=1); every
 * instrumentation site is one branch on that cached pointer and
 * allocates nothing. simlint's `tracebyvalue` rule enforces the
 * pointer-only discipline in src/.
 *
 * Time: 1 tick = 1 ps (common/types.hh); the exporter emits Chrome's
 * microsecond timestamps as tick / 1e6 with full precision.
 */

#ifndef VANS_COMMON_TRACE_EVENT_HH
#define VANS_COMMON_TRACE_EVENT_HH

#include <cstdint>
#include <string>
#include <unordered_map>
#include <vector>

#include "common/lifecycle.hh"
#include "common/request.hh"
#include "common/types.hh"

namespace vans::obs
{

/** True when the VANS_TRACE environment variable enables tracing. */
bool envTraceEnabled();

/** Interned track (component instance) identifier. */
using TrackId = std::uint16_t;

/** Interned label (stage / operation name) identifier. */
using LabelId = std::uint16_t;

/** Stage name shared with the lifecycle checker's ReqStage order. */
const char *reqStageName(verify::ReqStage s);

/** One lifecycle hop of a request through a component stage. */
struct ReqHop
{
    verify::ReqStage stage;
    Tick enter = 0;
    Tick exit = 0;

    bool
    operator==(const ReqHop &o) const
    {
        return stage == o.stage && enter == o.enter && exit == o.exit;
    }
};

/** Per-request hop accumulator, allocated only when tracing is on. */
struct ReqTrace
{
    std::vector<ReqHop> hops;
};

/** One recorded trace event (POD; rendered to JSON at export). */
struct TraceEvent
{
    enum class Kind : std::uint8_t
    {
        Span,       ///< Complete slice [begin, end] on a track.
        Instant,    ///< Point-in-time marker on a track.
        Counter,    ///< Sampled counter value at a tick.
        FlowBegin,  ///< Flow arrow source (inside a span).
        FlowEnd,    ///< Flow arrow sink (inside a span).
        AsyncBegin, ///< Nested async slice open (request hops).
        AsyncEnd,   ///< Nested async slice close.
    };

    Kind kind;
    TrackId track = 0;
    LabelId label = 0;
    Tick begin = 0;
    Tick end = 0;             ///< Spans only.
    std::uint64_t id = 0;     ///< Flow / async (request) id.
    Addr addr = 0;            ///< Valid when hasAddr.
    double value = 0;         ///< Counters only.
    bool hasAddr = false;

    bool
    operator==(const TraceEvent &o) const
    {
        return kind == o.kind && track == o.track &&
               label == o.label && begin == o.begin && end == o.end &&
               id == o.id && addr == o.addr && value == o.value &&
               hasAddr == o.hasAddr;
    }
};

/** Per-run span recorder + Chrome trace-event JSON exporter. */
class TraceRecorder
{
  public:
    /** Intern @p name as a track; stable id for the run. */
    TrackId track(const std::string &name);

    /** Intern @p name as a span/instant/counter label. */
    LabelId label(const std::string &name);

    void span(TrackId t, LabelId l, Tick begin, Tick end);
    void spanAddr(TrackId t, LabelId l, Tick begin, Tick end,
                  Addr addr);
    void instant(TrackId t, LabelId l, Tick at);
    void instant(TrackId t, LabelId l, Tick at, Addr addr);
    void counter(TrackId t, LabelId l, Tick at, double value);

    /** Open a flow arrow inside an enclosing span. @return flow id. */
    std::uint64_t flowBegin(TrackId t, LabelId l, Tick at);

    /** Close flow @p flow_id inside an enclosing span on @p t. */
    void flowEnd(TrackId t, LabelId l, Tick at,
                 std::uint64_t flow_id);

    /**
     * Request lifecycle hops, mirroring RequestLifecycleChecker:
     * onIssue opens the hop list; each later stage closes the open
     * hop and opens the next; onRetire closes the list and emits the
     * hops as nested async slices keyed by the request id.
     */
    void onIssue(Request &r, Tick now);
    void onQueued(Request &r, Tick now);
    void onServiced(Request &r, Tick now);
    void onRetire(Request &r, Tick now);

    const std::vector<TraceEvent> &events() const { return evs; }

    /** Track name for @p t (export / tests). */
    const std::string &trackName(TrackId t) const
    {
        return trackNames[t];
    }
    const std::string &labelName(LabelId l) const
    {
        return labelNames[l];
    }
    std::size_t numTracks() const { return trackNames.size(); }
    std::size_t numLabels() const { return labelNames.size(); }

    /**
     * Append an already-built event (merge support: mergeRecorders
     * re-emits remapped events from per-shard recordings).
     */
    void appendEvent(const TraceEvent &ev) { evs.push_back(ev); }

    /**
     * Drop recorded events (interned tables survive, so ids stay
     * stable). Used to cut warm-up noise out of a measured trace.
     */
    void clear() { evs.clear(); }

    /** Render the whole recording as Chrome trace-event JSON. */
    std::string toChromeJson() const;

    /** Write toChromeJson() to @p path (fatal on I/O error). */
    void writeChromeJson(const std::string &path) const;

  private:
    void advanceHop(Request &r, verify::ReqStage to, Tick now);

    std::vector<std::string> trackNames;
    std::vector<std::string> labelNames;
    std::unordered_map<std::string, TrackId> trackIds;
    std::unordered_map<std::string, LabelId> labelIds;
    std::vector<TraceEvent> evs;
    std::uint64_t nextFlowId = 1;
};

/**
 * Stitch several recordings (the core + per-shard recorders of one
 * sharded world) into one timeline. Tracks and labels are re-interned
 * by name (shard recorders use globally unique track names); flow ids
 * are namespaced per part so per-recorder counters never collide;
 * async (request) ids are global request ids and pass through. Part
 * order and per-part event order are deterministic, so the merged
 * recording -- and its toChromeJson() rendering -- byte-compares
 * across kernel thread counts.
 */
TraceRecorder
mergeRecorders(const std::vector<const TraceRecorder *> &parts);

} // namespace vans::obs

#endif // VANS_COMMON_TRACE_EVENT_HH
