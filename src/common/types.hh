/**
 * @file
 * Fundamental simulation types and time/clock helpers.
 *
 * The whole simulator runs on a single global time base measured in
 * ticks, where one tick is one picosecond (the gem5 convention). All
 * component latencies are expressed in ticks; helpers below convert
 * from nanoseconds and from clock cycles of arbitrary frequencies.
 */

#ifndef VANS_COMMON_TYPES_HH
#define VANS_COMMON_TYPES_HH

#include <cstdint>

namespace vans
{

/** Simulated time in picoseconds. */
using Tick = std::uint64_t;

/** Physical (CPU-visible) memory address. */
using Addr = std::uint64_t;

/** Ticks per nanosecond: 1 tick = 1 ps. */
constexpr Tick tickPerNs = 1000;

/** Convert nanoseconds (possibly fractional) to ticks. */
constexpr Tick
nsToTicks(double ns)
{
    return static_cast<Tick>(ns * static_cast<double>(tickPerNs));
}

/** Convert ticks to nanoseconds. */
constexpr double
ticksToNs(Tick t)
{
    return static_cast<double>(t) / static_cast<double>(tickPerNs);
}

/**
 * A simple clock domain: converts cycles of a component running at
 * a given frequency into global ticks.
 */
class ClockDomain
{
  public:
    /** @param mhz Clock frequency in MHz. */
    explicit ClockDomain(double mhz)
        : periodTicks(static_cast<Tick>(1e6 / mhz + 0.5))
    {}

    /** Tick duration of @p cycles clock cycles. */
    Tick cycles(std::uint64_t n) const { return n * periodTicks; }

    /** Duration of a single cycle in ticks. */
    Tick period() const { return periodTicks; }

    /** Round @p t up to the next clock edge. */
    Tick
    nextEdge(Tick t) const
    {
        return ((t + periodTicks - 1) / periodTicks) * periodTicks;
    }

  private:
    Tick periodTicks;
};

/** Cache line size used throughout (bytes). */
constexpr std::uint32_t cacheLineSize = 64;

/** Align @p addr down to a power-of-two boundary @p align. */
constexpr Addr
alignDown(Addr addr, std::uint64_t align)
{
    return addr & ~(align - 1);
}

/** Align @p addr up to a power-of-two boundary @p align. */
constexpr Addr
alignUp(Addr addr, std::uint64_t align)
{
    return (addr + align - 1) & ~(align - 1);
}

/** True if @p v is a power of two (and nonzero). */
constexpr bool
isPowerOf2(std::uint64_t v)
{
    return v != 0 && (v & (v - 1)) == 0;
}

/** Integer log2 of a power of two. */
constexpr unsigned
log2i(std::uint64_t v)
{
    unsigned r = 0;
    while (v > 1) {
        v >>= 1;
        ++r;
    }
    return r;
}

} // namespace vans

#endif // VANS_COMMON_TYPES_HH
