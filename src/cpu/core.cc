#include "cpu/core.hh"

#include "common/logging.hh"

namespace vans::cpu
{

CpuCore::CpuCore(MemorySystem &memory, cache::Hierarchy &hier,
                 const CoreParams &params)
    : mem(memory),
      eq(memory.eventQueue()),
      caches(hier),
      p(params),
      statGroup("core")
{}

void
CpuCore::syncTo(Tick when)
{
    if (eq.curTick() >= when)
        return;
    bool fired = false;
    eq.schedule(when, [&fired] { fired = true; });
    while (!fired) {
        if (!eq.step())
            panic("event queue drained while syncing core time");
    }
}

std::shared_ptr<CpuCore::Pending>
CpuCore::issueRead(Addr addr, bool pre_translate)
{
    auto pending = std::make_shared<Pending>();
    syncTo(coreTime);
    RequestHandle h = mem.makeRequest(addr, MemOp::Read);
    Request &req = mem.request(h);
    req.preTranslate = pre_translate;
    req.onComplete = [pending, p = &mem.pool(), h](Request &r) {
        pending->done = true;
        pending->at = r.completeTick;
        p->release(h);
    };
    if (!loadFilter || loadFilter(req))
        mem.issue(h);
    else
        req.complete(eq.curTick()); // Absorbed by an optimization.
    return pending;
}

std::shared_ptr<CpuCore::Pending>
CpuCore::issueReadAfter(const std::shared_ptr<Pending> &after,
                        Addr addr, bool pre_translate)
{
    if (!after || after->done)
        return issueRead(addr, pre_translate);
    auto pending = std::make_shared<Pending>();
    // Poll-free chaining: schedule the issue when the prerequisite
    // completes by wrapping its completion flag in a watcher event.
    auto watcher = std::make_shared<std::function<void()>>();
    *watcher = [this, after, addr, pre_translate, pending, watcher] {
        if (!after->done) {
            eq.scheduleAfter(nsToTicks(5), *watcher);
            return;
        }
        RequestHandle h = mem.makeRequest(addr, MemOp::Read);
        Request &req = mem.request(h);
        req.preTranslate = pre_translate;
        req.onComplete = [pending, p = &mem.pool(), h](Request &r) {
            pending->done = true;
            pending->at = r.completeTick;
            p->release(h);
        };
        mem.issue(h);
    };
    eq.scheduleAfter(nsToTicks(5), *watcher);
    return pending;
}

void
CpuCore::issueWrite(Addr addr, MemOp op)
{
    syncTo(coreTime);
    ++storesInFlight;
    RequestHandle h = mem.makeRequest(addr, op);
    mem.request(h).onComplete = [this, h](Request &) {
        --storesInFlight;
        mem.pool().release(h);
    };
    mem.issue(h);

    // Store-buffer stall: wait for drainage when full.
    while (storesInFlight >= p.storeBuffer) {
        if (!eq.step())
            panic("event queue drained during store stall");
    }
    coreTime = std::max(coreTime, eq.curTick());
}

Tick
CpuCore::waitFor(const std::shared_ptr<Pending> &pending)
{
    while (!pending->done) {
        if (!eq.step())
            panic("event queue drained during load wait");
    }
    return pending->at;
}

CoreStats
CpuCore::run(trace::TraceSource &src, std::uint64_t max_insts)
{
    CoreStats out;
    Tick start = eq.curTick();
    coreTime = start;
    Tick cycle = nsToTicks(1.0 / p.freqGhz);

    std::uint64_t llc_miss_start =
        caches.llc().stats().scalarValue("misses");
    std::uint64_t walks_start =
        caches.tlb().stats().scalarValue("walks");

    trace::TraceInst inst;
    std::shared_ptr<Pending> last_load;
    bool next_load_marked = false;
    bool prev_load_marked = false;
    double read_stall_ns = 0;

    while (out.instructions < max_insts && src.next(inst)) {
        switch (inst.type) {
          case trace::InstType::NonMem: {
            out.instructions += inst.count;
            coreTime += cycle * inst.count / p.width;
            break;
          }
          case trace::InstType::Mkpt: {
            // Pre-translation hint: mark the next load.
            next_load_marked = true;
            out.instructions += 1;
            break;
          }
          case trace::InstType::Load: {
            out.instructions += 1;
            ++out.memReads;
            Tick t0 = coreTime;

            if (inst.dependsOnPrev && last_load &&
                !last_load->done) {
                Tick done_at = waitFor(last_load);
                coreTime = std::max(coreTime, done_at);
            }

            // TLB. Pre-translation can deliver the entry for a
            // dependent load that follows a marked (mkpt) load --
            // the entry arrived with the previous load's data.
            auto &tlb = caches.tlb();
            bool assisted = inst.dependsOnPrev && prev_load_marked &&
                            tlbAssist && tlbAssist(inst.addr);
            std::shared_ptr<Pending> walk_pend;
            if (assisted) {
                tlb.install(inst.addr);
            } else {
                auto tr = tlb.access(inst.addr);
                if (tr.walk) {
                    coreTime += nsToTicks(p.walkFixedNs);
                    // Page-table access through the caches. A PTE
                    // LLC miss gates *this* load (the hardware
                    // walker runs it), not the pipeline.
                    Addr pte = p.pageTableBase +
                               (inst.addr / 4096) * 8;
                    auto walk = caches.access(pte, false);
                    coreTime += nsToTicks(walk.chargeNs);
                    if (walk.llcMiss) {
                        walk_pend = issueRead(
                            alignDown(pte, cacheLineSize), false);
                    }
                }
            }

            auto res = caches.access(inst.addr, false);
            coreTime += nsToTicks(res.chargeNs);
            if (res.llcMiss || walk_pend) {
                if (res.llcMiss && res.l3Writeback)
                    issueWrite(res.writebackAddr, MemOp::Write);
                // MLP limit.
                while (loadsInFlight.size() >= p.maxLoads) {
                    Tick done_at = waitFor(loadsInFlight.front());
                    loadsInFlight.pop_front();
                    coreTime = std::max(coreTime, done_at);
                }
                if (res.llcMiss) {
                    last_load = issueReadAfter(walk_pend, inst.addr,
                                               next_load_marked);
                } else {
                    // Cache hit whose translation is in flight.
                    last_load = walk_pend;
                }
                loadsInFlight.push_back(last_load);
                if (inst.dependsOnPrev) {
                    // Dependent chain: the consumer needs the data.
                    Tick done_at = waitFor(last_load);
                    coreTime = std::max(coreTime, done_at);
                }
            } else {
                last_load = nullptr;
            }
            prev_load_marked = next_load_marked;
            next_load_marked = false;
            read_stall_ns += ticksToNs(coreTime - t0);
            break;
          }
          case trace::InstType::Store:
          case trace::InstType::StoreNT: {
            out.instructions += 1;
            ++out.memWrites;
            if (inst.type == trace::InstType::Store) {
                auto res = caches.access(inst.addr, true);
                coreTime += nsToTicks(res.chargeNs);
                if (res.llcMiss) {
                    // Write-allocate RFO read, non-blocking.
                    while (loadsInFlight.size() >= p.maxLoads) {
                        Tick done_at =
                            waitFor(loadsInFlight.front());
                        loadsInFlight.pop_front();
                        coreTime = std::max(coreTime, done_at);
                    }
                    loadsInFlight.push_back(
                        issueRead(inst.addr, false));
                }
                if (res.l3Writeback)
                    issueWrite(res.writebackAddr, MemOp::Write);
            } else {
                issueWrite(inst.addr, MemOp::WriteNT);
            }
            coreTime += cycle / p.width;
            break;
          }
          case trace::InstType::Clwb: {
            out.instructions += 1;
            if (caches.clean(inst.addr))
                issueWrite(alignDown(inst.addr, cacheLineSize),
                           MemOp::Clwb);
            coreTime += cycle / p.width;
            break;
          }
          case trace::InstType::Clflushopt: {
            out.instructions += 1;
            if (caches.invalidate(inst.addr))
                issueWrite(alignDown(inst.addr, cacheLineSize),
                           MemOp::Clflushopt);
            coreTime += cycle / p.width;
            break;
          }
          case trace::InstType::Fence:
          case trace::InstType::Sfence: {
            out.instructions += 1;
            syncTo(coreTime);
            MemOp op = inst.type == trace::InstType::Fence
                           ? MemOp::Fence
                           : MemOp::Sfence;
            RequestHandle h = mem.makeRequest(0, op, 0);
            bool done = false;
            Tick at = 0;
            mem.request(h).onComplete =
                [&done, &at, p = &mem.pool(), h](Request &r) {
                    done = true;
                    at = r.completeTick;
                    p->release(h);
                };
            mem.issue(h);
            while (!done) {
                if (!eq.step())
                    panic("queue drained during fence");
            }
            coreTime = std::max(coreTime, at);
            break;
          }
        }
    }

    // Drain outstanding loads.
    while (!loadsInFlight.empty()) {
        Tick done_at = waitFor(loadsInFlight.front());
        loadsInFlight.pop_front();
        coreTime = std::max(coreTime, done_at);
    }
    syncTo(coreTime);

    out.elapsed = coreTime - start;
    double cycles = static_cast<double>(out.elapsed) /
                    static_cast<double>(cycle);
    out.ipc = cycles > 0
                  ? static_cast<double>(out.instructions) / cycles
                  : 0;
    double kilo_insts =
        static_cast<double>(out.instructions) / 1000.0;
    out.llcMpki =
        kilo_insts > 0
            ? static_cast<double>(
                  caches.llc().stats().scalarValue("misses") -
                  llc_miss_start) /
                  kilo_insts
            : 0;
    out.tlbMpki =
        kilo_insts > 0
            ? static_cast<double>(
                  caches.tlb().stats().scalarValue("walks") -
                  walks_start) /
                  kilo_insts
            : 0;
    out.readStallNs = read_stall_ns;
    out.otherNs = ticksToNs(out.elapsed) - read_stall_ns;
    return out;
}

} // namespace vans::cpu
