/**
 * @file
 * Trace-driven CPU core model -- the gem5 substitute for the paper's
 * full-system experiments (Figs 11-13).
 *
 * The model is an interval-style out-of-order core: non-memory
 * instructions retire at the pipeline width; independent loads
 * overlap up to an MSHR/MLP limit; dependent (pointer-chasing) loads
 * serialize; stores retire through a store buffer and only stall
 * when it fills. TLB walks charge a fixed walk latency plus a
 * cacheable page-table access. This reproduces the quantities the
 * paper validates on -- IPC, LLC MPKI, TLB MPKI, and read-CPI
 * attribution -- without modeling an ISA.
 */

#ifndef VANS_CPU_CORE_HH
#define VANS_CPU_CORE_HH

#include <cstdint>
#include <deque>
#include <memory>

#include "cache/hierarchy.hh"
#include "common/mem_system.hh"
#include "common/stats.hh"
#include "trace/trace.hh"

namespace vans::cpu
{

/** Core configuration (Table V CPU section). */
struct CoreParams
{
    double freqGhz = 2.2;
    unsigned width = 4;        ///< Retire width (non-mem IPC cap).
    unsigned maxLoads = 10;    ///< MSHR-style load MLP limit.
    unsigned storeBuffer = 56; ///< Outstanding stores before stall.
    double walkFixedNs = 30;   ///< Page-walk control overhead.
    /** Address base for the synthetic page-table accesses. */
    Addr pageTableBase = 3ull << 30;
};

/** Aggregate results of one core run. */
struct CoreStats
{
    std::uint64_t instructions = 0;
    std::uint64_t memReads = 0;
    std::uint64_t memWrites = 0;
    Tick elapsed = 0;
    double ipc = 0;
    double llcMpki = 0;
    double tlbMpki = 0;
    /** Cycle split for Fig 12a: stalls attributable to reads vs
     *  everything else. */
    double readStallNs = 0;
    double otherNs = 0;
};

/** Runs instruction traces against a cache hierarchy + memory. */
class CpuCore
{
  public:
    CpuCore(MemorySystem &mem, cache::Hierarchy &caches,
            const CoreParams &params = {});

    /**
     * Execute up to @p max_insts instructions from @p src.
     * The Pre-translation optimization (when attached via
     * opt::PreTranslation) observes the mkpt markers in the trace.
     */
    CoreStats run(trace::TraceSource &src, std::uint64_t max_insts);

    /** Hook invoked on every load issued to memory (for opt). */
    std::function<bool(const Request &)> loadFilter;

    /**
     * Hook consulted before a TLB walk: return true if an external
     * mechanism (Pre-translation's RLB) already has the entry.
     */
    std::function<bool(Addr)> tlbAssist;

    cache::Hierarchy &hierarchy() { return caches; }
    StatGroup &stats() { return statGroup; }

  private:
    /** Advance the event queue to @p when. */
    void syncTo(Tick when);

    /** Issue a memory read, returns a completion flag holder. */
    struct Pending
    {
        bool done = false;
        Tick at = 0;
    };
    std::shared_ptr<Pending> issueRead(Addr addr, bool pre_translate);

    /**
     * Issue a read that must wait for @p after (a page-walk PTE
     * fetch) before going to memory: the translation gates *this*
     * load, not the pipeline -- independent work keeps flowing.
     */
    std::shared_ptr<Pending>
    issueReadAfter(const std::shared_ptr<Pending> &after, Addr addr,
                   bool pre_translate);

    void issueWrite(Addr addr, MemOp op);

    /** Block until @p p completes; @return completion tick. */
    Tick waitFor(const std::shared_ptr<Pending> &p);

    MemorySystem &mem;
    EventQueue &eq;
    cache::Hierarchy &caches;
    CoreParams p;

    Tick coreTime = 0;
    std::deque<std::shared_ptr<Pending>> loadsInFlight;
    unsigned storesInFlight = 0;

    StatGroup statGroup;
};

} // namespace vans::cpu

#endif // VANS_CPU_CORE_HH
