#include "dram/address_map.hh"

#include "common/logging.hh"

namespace vans::dram
{

AddressMap::AddressMap(const DramGeometry &g, MapScheme s)
    : geom(g), scheme(s)
{
    if (!isPowerOf2(geom.rowBytes) || !isPowerOf2(geom.banksPerGroup) ||
        !isPowerOf2(geom.bankGroups) || !isPowerOf2(geom.ranks)) {
        fatal("DRAM geometry values must be powers of two");
    }
    colBits = log2i(geom.rowBytes / cacheLineSize);
    bankBits = log2i(geom.banksPerGroup);
    bgBits = log2i(geom.bankGroups);
    rankBits = log2i(geom.ranks);
}

DramCoord
AddressMap::decode(Addr addr) const
{
    DramCoord c;
    std::uint64_t a = addr / cacheLineSize;

    auto take = [&a](unsigned bits) {
        std::uint64_t v = a & ((1ull << bits) - 1);
        a >>= bits;
        return v;
    };

    switch (scheme) {
      case MapScheme::RowBankCol:
        c.column = take(colBits);
        c.bank = static_cast<unsigned>(take(bankBits));
        c.bankGroup = static_cast<unsigned>(take(bgBits));
        c.rank = static_cast<unsigned>(take(rankBits));
        c.row = a;
        break;
      case MapScheme::BankStripe: {
        // Low two column bits stay contiguous (one 256B chunk), then
        // banks stripe, then the rest of the columns, then the row.
        unsigned lo_bits = colBits >= 2 ? 2 : colBits;
        std::uint64_t col_lo = take(lo_bits);
        c.bank = static_cast<unsigned>(take(bankBits));
        c.bankGroup = static_cast<unsigned>(take(bgBits));
        c.rank = static_cast<unsigned>(take(rankBits));
        std::uint64_t col_hi = take(colBits - lo_bits);
        c.column = (col_hi << lo_bits) | col_lo;
        c.row = a;
        break;
      }
    }
    c.row %= geom.rowsPerBank();
    return c;
}

} // namespace vans::dram
