/**
 * @file
 * Physical-address to DRAM-coordinate decomposition.
 *
 * Default scheme is row : rank : bank-group : bank : column : offset
 * (from MSB to LSB), i.e. consecutive cache lines walk the columns of
 * one row, then switch banks -- the classic open-page-friendly map.
 * An interleaved variant swaps bank bits below the column bits so
 * consecutive lines stripe across banks (bank-interleaved map).
 */

#ifndef VANS_DRAM_ADDRESS_MAP_HH
#define VANS_DRAM_ADDRESS_MAP_HH

#include <cstdint>

#include "common/types.hh"
#include "dram/timing.hh"

namespace vans::dram
{

/** Decoded DRAM coordinates for one address. */
struct DramCoord
{
    unsigned rank = 0;
    unsigned bankGroup = 0;
    unsigned bank = 0;
    std::uint64_t row = 0;
    std::uint64_t column = 0; ///< In cache-line-sized units.

    bool
    sameBank(const DramCoord &o) const
    {
        return rank == o.rank && bankGroup == o.bankGroup &&
               bank == o.bank;
    }
};

/** Address-mapping policy. */
enum class MapScheme : std::uint8_t
{
    RowBankCol,  ///< Row : rank : bg : bank : col : offset.
    BankStripe,  ///< Row : col-hi : rank : bg : bank : col-lo : offset.
};

/** Maps physical addresses onto DRAM coordinates. */
class AddressMap
{
  public:
    AddressMap(const DramGeometry &geom, MapScheme scheme);

    /** Decode @p addr (any alignment) into bank coordinates. */
    DramCoord decode(Addr addr) const;

    const DramGeometry &geometry() const { return geom; }

  private:
    DramGeometry geom;
    MapScheme scheme;
    unsigned colBits;  ///< log2(rowBytes / cacheLineSize).
    unsigned bankBits;
    unsigned bgBits;
    unsigned rankBits;
};

} // namespace vans::dram

#endif // VANS_DRAM_ADDRESS_MAP_HH
