#include "dram/checker.hh"

#include <limits>

#include "common/check.hh"
#include "common/logging.hh"
#include "common/snapshot.hh"

namespace vans::dram
{

Ddr4Checker::Ddr4Checker(const DramTiming &timing,
                         const DramGeometry &geometry)
    : spec(timing), geom(geometry)
{
    reset();
}

void
Ddr4Checker::reset()
{
    banks.assign(geom.totalBanks(), CheckBank{});
    lastCasGroup.assign(geom.ranks * geom.bankGroups, 0);
    casSeenGroup.assign(geom.ranks * geom.bankGroups, false);
    lastActGroup.assign(geom.ranks * geom.bankGroups, 0);
    actSeenGroup.assign(geom.ranks * geom.bankGroups, false);
    lastCasAny = 0;
    casSeen = false;
    lastActAny = 0;
    actSeen = false;
    lastWrDataEndAny = 0;
    wrSeen = false;
    actWindow.clear();
    refDoneAt = 0;
    lastRef = 0;
    refSeen = false;
    numFed = 0;
    viols.clear();
}

unsigned
Ddr4Checker::bankIdx(const DramCommand &c) const
{
    return (c.rank * geom.bankGroups + c.bankGroup) *
               geom.banksPerGroup + c.bank;
}

unsigned
Ddr4Checker::groupIdx(const DramCommand &c) const
{
    return c.rank * geom.bankGroups + c.bankGroup;
}

void
Ddr4Checker::fail(const char *rule, std::string detail)
{
    viols.push_back({static_cast<std::size_t>(numFed), rule,
                     std::move(detail)});
}

void
Ddr4Checker::needGap(const char *rule, Tick earlier, unsigned cycles,
                     Tick now)
{
    Tick need = earlier + spec.cyc(cycles);
    if (now < need) {
        fail(rule, strFormat("needs %llu ticks, got %llu",
                             static_cast<unsigned long long>(
                                 spec.cyc(cycles)),
                             static_cast<unsigned long long>(
                                 now - earlier)));
    }
}

void
Ddr4Checker::feed(const DramCommand &c)
{
    Tick now = c.tick;

    switch (c.cmd) {
      case DramCmd::ACT: {
        CheckBank &b = banks[bankIdx(c)];
        if (b.open)
            fail("ACT-on-open", "bank already has an open row");
        if (b.everActed)
            needGap("tRC", b.lastAct, spec.tRC, now);
        if (b.everPre)
            needGap("tRP", b.lastPre, spec.tRP, now);
        if (actSeenGroup[groupIdx(c)]) {
            needGap("tRRD_L", lastActGroup[groupIdx(c)], spec.tRRD_L,
                    now);
        }
        if (actSeen && lastActAny != now)
            needGap("tRRD_S", lastActAny, spec.tRRD_S, now);
        if (now < refDoneAt)
            fail("tRFC", "ACT during refresh cycle");
        if (actWindow.size() >= 4)
            needGap("tFAW", actWindow.front(), spec.tFAW, now);
        actWindow.push_back(now);
        while (actWindow.size() > 4)
            actWindow.pop_front();
        b.open = true;
        b.row = c.row;
        b.lastAct = now;
        b.everActed = true;
        lastActGroup[groupIdx(c)] = now;
        actSeenGroup[groupIdx(c)] = true;
        lastActAny = now;
        actSeen = true;
        break;
      }
      case DramCmd::RD:
      case DramCmd::WR: {
        CheckBank &b = banks[bankIdx(c)];
        if (!b.open) {
            fail("CAS-on-closed", "no open row");
        } else if (b.row != c.row) {
            fail("CAS-row-mismatch",
                 strFormat("open row %llu, CAS row %llu",
                           static_cast<unsigned long long>(b.row),
                           static_cast<unsigned long long>(c.row)));
        }
        if (b.everActed)
            needGap("tRCD", b.lastAct, spec.tRCD, now);
        if (casSeenGroup[groupIdx(c)]) {
            needGap("tCCD_L", lastCasGroup[groupIdx(c)], spec.tCCD_L,
                    now);
        }
        if (casSeen)
            needGap("tCCD_S", lastCasAny, spec.tCCD_S, now);
        if (c.cmd == DramCmd::RD && wrSeen) {
            // tWTR measured from write data end to read command.
            Tick need = lastWrDataEndAny + spec.cyc(spec.tWTR_L);
            if (now < need && lastWrDataEndAny > 0)
                fail("tWTR", "read too soon after write data");
        }
        Tick data_end = now +
            spec.cyc(c.cmd == DramCmd::WR ? spec.tCWL : spec.tCL) +
            spec.burstTicks();
        if (c.cmd == DramCmd::WR) {
            b.lastWrDataEnd = data_end;
            b.everWr = true;
            lastWrDataEndAny = std::max(lastWrDataEndAny, data_end);
            wrSeen = true;
        } else {
            b.lastRd = now;
            b.everRd = true;
        }
        lastCasGroup[groupIdx(c)] = now;
        casSeenGroup[groupIdx(c)] = true;
        lastCasAny = now;
        casSeen = true;
        break;
      }
      case DramCmd::PRE: {
        CheckBank &b = banks[bankIdx(c)];
        if (!b.open) {
            fail("PRE-on-closed", "bank already precharged");
            break;
        }
        needGap("tRAS", b.lastAct, spec.tRAS, now);
        if (b.everRd)
            needGap("tRTP", b.lastRd, spec.tRTP, now);
        if (b.everWr && now < b.lastWrDataEnd + spec.cyc(spec.tWR))
            fail("tWR", "precharge before write recovery");
        b.open = false;
        b.lastPre = now;
        b.everPre = true;
        break;
      }
      case DramCmd::REF: {
        for (std::size_t bi = 0; bi < banks.size(); ++bi) {
            if (banks[bi].open) {
                fail("REF-open-bank",
                     strFormat("bank %zu open during refresh", bi));
            }
        }
        // Refresh cadence: the average interval must stay within
        // the JEDEC 9*tREFI postponement bound.
        if (spec.tREFI && refSeen &&
            now - lastRef > spec.cyc(9 * spec.tREFI)) {
            fail("tREFI", "refresh postponed past 9*tREFI");
        }
        lastRef = now;
        refSeen = true;
        refDoneAt = now + spec.cyc(spec.tRFC);
        break;
      }
    }

    ++numFed;
}

std::vector<Violation>
Ddr4Checker::check(const std::vector<DramCommand> &cmds)
{
    reset();
    for (const DramCommand &c : cmds)
        feed(c);
    std::vector<Violation> out = std::move(viols);
    viols.clear();
    return out;
}

void
Ddr4Checker::snapshotTo(snapshot::StateSink &sink) const
{
    VANS_REQUIRE("ddr4-checker", 0, viols.empty(),
                 "snapshot of a checker holding %zu violations",
                 viols.size());
    sink.tag("ddr4-checker");
    sink.u64(banks.size());
    for (const CheckBank &b : banks) {
        sink.boolean(b.open);
        sink.u64(b.row);
        sink.u64(b.lastAct);
        sink.u64(b.lastPre);
        sink.u64(b.lastRd);
        sink.u64(b.lastWrDataEnd);
        sink.boolean(b.everActed);
        sink.boolean(b.everPre);
        sink.boolean(b.everRd);
        sink.boolean(b.everWr);
    }
    sink.u64(lastCasGroup.size());
    for (std::size_t g = 0; g < lastCasGroup.size(); ++g) {
        sink.u64(lastCasGroup[g]);
        sink.boolean(casSeenGroup[g]);
        sink.u64(lastActGroup[g]);
        sink.boolean(actSeenGroup[g]);
    }
    sink.u64(lastCasAny);
    sink.boolean(casSeen);
    sink.u64(lastActAny);
    sink.boolean(actSeen);
    sink.u64(lastWrDataEndAny);
    sink.boolean(wrSeen);
    sink.u64(actWindow.size());
    for (Tick t : actWindow)
        sink.u64(t);
    sink.u64(refDoneAt);
    sink.u64(lastRef);
    sink.boolean(refSeen);
    sink.u64(numFed);
}

void
Ddr4Checker::restoreFrom(snapshot::StateSource &src)
{
    src.tag("ddr4-checker");
    reset();
    std::uint64_t nb = src.u64();
    VANS_REQUIRE("ddr4-checker", 0, nb == banks.size(),
                 "bank count mismatch (%llu vs %zu)",
                 static_cast<unsigned long long>(nb), banks.size());
    for (CheckBank &b : banks) {
        b.open = src.boolean();
        b.row = src.u64();
        b.lastAct = src.u64();
        b.lastPre = src.u64();
        b.lastRd = src.u64();
        b.lastWrDataEnd = src.u64();
        b.everActed = src.boolean();
        b.everPre = src.boolean();
        b.everRd = src.boolean();
        b.everWr = src.boolean();
    }
    std::uint64_t ng = src.u64();
    VANS_REQUIRE("ddr4-checker", 0, ng == lastCasGroup.size(),
                 "group count mismatch (%llu vs %zu)",
                 static_cast<unsigned long long>(ng),
                 lastCasGroup.size());
    for (std::size_t g = 0; g < lastCasGroup.size(); ++g) {
        lastCasGroup[g] = src.u64();
        casSeenGroup[g] = src.boolean();
        lastActGroup[g] = src.u64();
        actSeenGroup[g] = src.boolean();
    }
    lastCasAny = src.u64();
    casSeen = src.boolean();
    lastActAny = src.u64();
    actSeen = src.boolean();
    lastWrDataEndAny = src.u64();
    wrSeen = src.boolean();
    actWindow.clear();
    std::uint64_t nw = src.u64();
    for (std::uint64_t i = 0; i < nw; ++i)
        actWindow.push_back(src.u64());
    refDoneAt = src.u64();
    lastRef = src.u64();
    refSeen = src.boolean();
    numFed = src.u64();
}

} // namespace vans::dram
