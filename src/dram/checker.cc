#include "dram/checker.hh"

#include <deque>
#include <limits>

#include "common/logging.hh"

namespace vans::dram
{

namespace
{

struct CheckBank
{
    bool open = false;
    std::uint64_t row = 0;
    Tick lastAct = 0;
    Tick lastPre = 0;
    Tick lastRd = 0;
    Tick lastWrDataEnd = 0;
    bool everActed = false;
    bool everPre = false;
    bool everRd = false;
    bool everWr = false;
};

} // namespace

Ddr4Checker::Ddr4Checker(const DramTiming &timing,
                         const DramGeometry &geometry)
    : spec(timing), geom(geometry)
{}

std::vector<Violation>
Ddr4Checker::check(const std::vector<DramCommand> &cmds)
{
    std::vector<Violation> out;
    std::vector<CheckBank> banks(geom.totalBanks());
    std::vector<Tick> lastCasGroup(geom.ranks * geom.bankGroups, 0);
    std::vector<bool> casSeenGroup(geom.ranks * geom.bankGroups, false);
    std::vector<Tick> lastActGroup(geom.ranks * geom.bankGroups, 0);
    std::vector<bool> actSeenGroup(geom.ranks * geom.bankGroups, false);
    Tick lastCasAny = 0;
    bool casSeen = false;
    Tick lastActAny = 0;
    bool actSeen = false;
    Tick lastWrDataEndAny = 0;
    bool wrSeen = false;
    std::deque<Tick> actWindow;
    Tick refDoneAt = 0;

    auto bankIdx = [&](const DramCommand &c) {
        return (c.rank * geom.bankGroups + c.bankGroup) *
                   geom.banksPerGroup + c.bank;
    };
    auto groupIdx = [&](const DramCommand &c) {
        return c.rank * geom.bankGroups + c.bankGroup;
    };
    auto fail = [&](std::size_t i, const char *rule,
                    std::string detail) {
        out.push_back({i, rule, std::move(detail)});
    };
    auto needGap = [&](std::size_t i, const char *rule, Tick earlier,
                       unsigned cycles, Tick now) {
        Tick need = earlier + spec.cyc(cycles);
        if (now < need) {
            fail(i, rule,
                 strFormat("needs %llu ticks, got %llu",
                           static_cast<unsigned long long>(
                               spec.cyc(cycles)),
                           static_cast<unsigned long long>(
                               now - earlier)));
        }
    };

    for (std::size_t i = 0; i < cmds.size(); ++i) {
        const DramCommand &c = cmds[i];
        Tick now = c.tick;

        switch (c.cmd) {
          case DramCmd::ACT: {
            CheckBank &b = banks[bankIdx(c)];
            if (b.open)
                fail(i, "ACT-on-open", "bank already has an open row");
            if (b.everActed)
                needGap(i, "tRC", b.lastAct, spec.tRC, now);
            if (b.everPre)
                needGap(i, "tRP", b.lastPre, spec.tRP, now);
            if (actSeenGroup[groupIdx(c)]) {
                needGap(i, "tRRD_L", lastActGroup[groupIdx(c)],
                        spec.tRRD_L, now);
            }
            if (actSeen && lastActAny != now)
                needGap(i, "tRRD_S", lastActAny, spec.tRRD_S, now);
            if (now < refDoneAt)
                fail(i, "tRFC", "ACT during refresh cycle");
            if (actWindow.size() >= 4)
                needGap(i, "tFAW", actWindow.front(), spec.tFAW, now);
            actWindow.push_back(now);
            while (actWindow.size() > 4)
                actWindow.pop_front();
            b.open = true;
            b.row = c.row;
            b.lastAct = now;
            b.everActed = true;
            lastActGroup[groupIdx(c)] = now;
            actSeenGroup[groupIdx(c)] = true;
            lastActAny = now;
            actSeen = true;
            break;
          }
          case DramCmd::RD:
          case DramCmd::WR: {
            CheckBank &b = banks[bankIdx(c)];
            if (!b.open) {
                fail(i, "CAS-on-closed", "no open row");
            } else if (b.row != c.row) {
                fail(i, "CAS-row-mismatch",
                     strFormat("open row %llu, CAS row %llu",
                               static_cast<unsigned long long>(b.row),
                               static_cast<unsigned long long>(c.row)));
            }
            if (b.everActed)
                needGap(i, "tRCD", b.lastAct, spec.tRCD, now);
            if (casSeenGroup[groupIdx(c)]) {
                needGap(i, "tCCD_L", lastCasGroup[groupIdx(c)],
                        spec.tCCD_L, now);
            }
            if (casSeen)
                needGap(i, "tCCD_S", lastCasAny, spec.tCCD_S, now);
            if (c.cmd == DramCmd::RD && wrSeen) {
                // tWTR measured from write data end to read command.
                Tick need = lastWrDataEndAny + spec.cyc(spec.tWTR_L);
                if (now < need && lastWrDataEndAny > 0)
                    fail(i, "tWTR", "read too soon after write data");
            }
            Tick data_end = now +
                spec.cyc(c.cmd == DramCmd::WR ? spec.tCWL : spec.tCL) +
                spec.burstTicks();
            if (c.cmd == DramCmd::WR) {
                b.lastWrDataEnd = data_end;
                b.everWr = true;
                lastWrDataEndAny = std::max(lastWrDataEndAny, data_end);
                wrSeen = true;
            } else {
                b.lastRd = now;
                b.everRd = true;
            }
            lastCasGroup[groupIdx(c)] = now;
            casSeenGroup[groupIdx(c)] = true;
            lastCasAny = now;
            casSeen = true;
            break;
          }
          case DramCmd::PRE: {
            CheckBank &b = banks[bankIdx(c)];
            if (!b.open) {
                fail(i, "PRE-on-closed", "bank already precharged");
                break;
            }
            needGap(i, "tRAS", b.lastAct, spec.tRAS, now);
            if (b.everRd)
                needGap(i, "tRTP", b.lastRd, spec.tRTP, now);
            if (b.everWr && now < b.lastWrDataEnd + spec.cyc(spec.tWR))
                fail(i, "tWR", "precharge before write recovery");
            b.open = false;
            b.lastPre = now;
            b.everPre = true;
            break;
          }
          case DramCmd::REF: {
            for (std::size_t bi = 0; bi < banks.size(); ++bi) {
                if (banks[bi].open) {
                    fail(i, "REF-open-bank",
                         strFormat("bank %zu open during refresh", bi));
                }
            }
            refDoneAt = now + spec.cyc(spec.tRFC);
            break;
          }
        }
    }

    // Refresh cadence: average interval must stay within the JEDEC
    // 9*tREFI postponement bound.
    if (spec.tREFI) {
        Tick last_ref = 0;
        bool seen = false;
        for (std::size_t i = 0; i < cmds.size(); ++i) {
            if (cmds[i].cmd != DramCmd::REF)
                continue;
            if (seen &&
                cmds[i].tick - last_ref > spec.cyc(9 * spec.tREFI)) {
                out.push_back({i, "tREFI",
                               "refresh postponed past 9*tREFI"});
            }
            last_ref = cmds[i].tick;
            seen = true;
        }
    }

    return out;
}

} // namespace vans::dram
