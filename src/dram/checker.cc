#include "dram/checker.hh"

#include <limits>

#include "common/logging.hh"

namespace vans::dram
{

Ddr4Checker::Ddr4Checker(const DramTiming &timing,
                         const DramGeometry &geometry)
    : spec(timing), geom(geometry)
{
    reset();
}

void
Ddr4Checker::reset()
{
    banks.assign(geom.totalBanks(), CheckBank{});
    lastCasGroup.assign(geom.ranks * geom.bankGroups, 0);
    casSeenGroup.assign(geom.ranks * geom.bankGroups, false);
    lastActGroup.assign(geom.ranks * geom.bankGroups, 0);
    actSeenGroup.assign(geom.ranks * geom.bankGroups, false);
    lastCasAny = 0;
    casSeen = false;
    lastActAny = 0;
    actSeen = false;
    lastWrDataEndAny = 0;
    wrSeen = false;
    actWindow.clear();
    refDoneAt = 0;
    lastRef = 0;
    refSeen = false;
    numFed = 0;
    viols.clear();
}

unsigned
Ddr4Checker::bankIdx(const DramCommand &c) const
{
    return (c.rank * geom.bankGroups + c.bankGroup) *
               geom.banksPerGroup + c.bank;
}

unsigned
Ddr4Checker::groupIdx(const DramCommand &c) const
{
    return c.rank * geom.bankGroups + c.bankGroup;
}

void
Ddr4Checker::fail(const char *rule, std::string detail)
{
    viols.push_back({static_cast<std::size_t>(numFed), rule,
                     std::move(detail)});
}

void
Ddr4Checker::needGap(const char *rule, Tick earlier, unsigned cycles,
                     Tick now)
{
    Tick need = earlier + spec.cyc(cycles);
    if (now < need) {
        fail(rule, strFormat("needs %llu ticks, got %llu",
                             static_cast<unsigned long long>(
                                 spec.cyc(cycles)),
                             static_cast<unsigned long long>(
                                 now - earlier)));
    }
}

void
Ddr4Checker::feed(const DramCommand &c)
{
    Tick now = c.tick;

    switch (c.cmd) {
      case DramCmd::ACT: {
        CheckBank &b = banks[bankIdx(c)];
        if (b.open)
            fail("ACT-on-open", "bank already has an open row");
        if (b.everActed)
            needGap("tRC", b.lastAct, spec.tRC, now);
        if (b.everPre)
            needGap("tRP", b.lastPre, spec.tRP, now);
        if (actSeenGroup[groupIdx(c)]) {
            needGap("tRRD_L", lastActGroup[groupIdx(c)], spec.tRRD_L,
                    now);
        }
        if (actSeen && lastActAny != now)
            needGap("tRRD_S", lastActAny, spec.tRRD_S, now);
        if (now < refDoneAt)
            fail("tRFC", "ACT during refresh cycle");
        if (actWindow.size() >= 4)
            needGap("tFAW", actWindow.front(), spec.tFAW, now);
        actWindow.push_back(now);
        while (actWindow.size() > 4)
            actWindow.pop_front();
        b.open = true;
        b.row = c.row;
        b.lastAct = now;
        b.everActed = true;
        lastActGroup[groupIdx(c)] = now;
        actSeenGroup[groupIdx(c)] = true;
        lastActAny = now;
        actSeen = true;
        break;
      }
      case DramCmd::RD:
      case DramCmd::WR: {
        CheckBank &b = banks[bankIdx(c)];
        if (!b.open) {
            fail("CAS-on-closed", "no open row");
        } else if (b.row != c.row) {
            fail("CAS-row-mismatch",
                 strFormat("open row %llu, CAS row %llu",
                           static_cast<unsigned long long>(b.row),
                           static_cast<unsigned long long>(c.row)));
        }
        if (b.everActed)
            needGap("tRCD", b.lastAct, spec.tRCD, now);
        if (casSeenGroup[groupIdx(c)]) {
            needGap("tCCD_L", lastCasGroup[groupIdx(c)], spec.tCCD_L,
                    now);
        }
        if (casSeen)
            needGap("tCCD_S", lastCasAny, spec.tCCD_S, now);
        if (c.cmd == DramCmd::RD && wrSeen) {
            // tWTR measured from write data end to read command.
            Tick need = lastWrDataEndAny + spec.cyc(spec.tWTR_L);
            if (now < need && lastWrDataEndAny > 0)
                fail("tWTR", "read too soon after write data");
        }
        Tick data_end = now +
            spec.cyc(c.cmd == DramCmd::WR ? spec.tCWL : spec.tCL) +
            spec.burstTicks();
        if (c.cmd == DramCmd::WR) {
            b.lastWrDataEnd = data_end;
            b.everWr = true;
            lastWrDataEndAny = std::max(lastWrDataEndAny, data_end);
            wrSeen = true;
        } else {
            b.lastRd = now;
            b.everRd = true;
        }
        lastCasGroup[groupIdx(c)] = now;
        casSeenGroup[groupIdx(c)] = true;
        lastCasAny = now;
        casSeen = true;
        break;
      }
      case DramCmd::PRE: {
        CheckBank &b = banks[bankIdx(c)];
        if (!b.open) {
            fail("PRE-on-closed", "bank already precharged");
            break;
        }
        needGap("tRAS", b.lastAct, spec.tRAS, now);
        if (b.everRd)
            needGap("tRTP", b.lastRd, spec.tRTP, now);
        if (b.everWr && now < b.lastWrDataEnd + spec.cyc(spec.tWR))
            fail("tWR", "precharge before write recovery");
        b.open = false;
        b.lastPre = now;
        b.everPre = true;
        break;
      }
      case DramCmd::REF: {
        for (std::size_t bi = 0; bi < banks.size(); ++bi) {
            if (banks[bi].open) {
                fail("REF-open-bank",
                     strFormat("bank %zu open during refresh", bi));
            }
        }
        // Refresh cadence: the average interval must stay within
        // the JEDEC 9*tREFI postponement bound.
        if (spec.tREFI && refSeen &&
            now - lastRef > spec.cyc(9 * spec.tREFI)) {
            fail("tREFI", "refresh postponed past 9*tREFI");
        }
        lastRef = now;
        refSeen = true;
        refDoneAt = now + spec.cyc(spec.tRFC);
        break;
      }
    }

    ++numFed;
}

std::vector<Violation>
Ddr4Checker::check(const std::vector<DramCommand> &cmds)
{
    reset();
    for (const DramCommand &c : cmds)
        feed(c);
    std::vector<Violation> out = std::move(viols);
    viols.clear();
    return out;
}

} // namespace vans::dram
