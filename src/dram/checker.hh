/**
 * @file
 * DDR4 protocol legality checker.
 *
 * Substitutes for the Micron Verilog verification model + Cadence
 * toolchain the paper uses (section IV-B): given the command trace a
 * controller emitted, verify that every inter-command timing and
 * state constraint holds. The checker is intentionally independent
 * of the controller implementation -- it re-derives bank state from
 * the command stream alone, so controller bugs cannot hide.
 *
 * Checked rules:
 *  - ACT only to a precharged bank; tRC since previous ACT (same
 *    bank); tRRD_S/L since previous ACT (other banks); tFAW over any
 *    four consecutive ACTs per rank; tRP since the closing PRE.
 *  - RD/WR only to an open row, tRCD after its ACT; tCCD_S/L since
 *    the previous CAS; reads respect tWTR_S/L after write data.
 *  - PRE respects tRAS after ACT, tRTP after RD, tWR after WR data.
 *  - REF only with all banks precharged; tRFC before the next ACT;
 *    average REF cadence within tREFI (9x margin, matching JEDEC
 *    postponement rules) -- violations reported as warnings.
 */

#ifndef VANS_DRAM_CHECKER_HH
#define VANS_DRAM_CHECKER_HH

#include <string>
#include <vector>

#include "dram/command.hh"
#include "dram/timing.hh"

namespace vans::dram
{

/** One detected protocol violation. */
struct Violation
{
    std::size_t cmdIndex;
    std::string rule;
    std::string detail;
};

/** Re-derives bank state from a command stream and checks legality. */
class Ddr4Checker
{
  public:
    Ddr4Checker(const DramTiming &timing, const DramGeometry &geometry);

    /** Check a full trace. @return all violations found. */
    std::vector<Violation> check(const std::vector<DramCommand> &cmds);

  private:
    DramTiming spec;
    DramGeometry geom;
};

} // namespace vans::dram

#endif // VANS_DRAM_CHECKER_HH
