/**
 * @file
 * DDR4 protocol legality checker.
 *
 * Substitutes for the Micron Verilog verification model + Cadence
 * toolchain the paper uses (section IV-B): given the command trace a
 * controller emitted, verify that every inter-command timing and
 * state constraint holds. The checker is intentionally independent
 * of the controller implementation -- it re-derives bank state from
 * the command stream alone, so controller bugs cannot hide.
 *
 * Checked rules:
 *  - ACT only to a precharged bank; tRC since previous ACT (same
 *    bank); tRRD_S/L since previous ACT (other banks); tFAW over any
 *    four consecutive ACTs per rank; tRP since the closing PRE.
 *  - RD/WR only to an open row, tRCD after its ACT; tCCD_S/L since
 *    the previous CAS; reads respect tWTR_S/L after write data.
 *  - PRE respects tRAS after ACT, tRTP after RD, tWR after WR data.
 *  - REF only with all banks precharged; tRFC before the next ACT;
 *    average REF cadence within tREFI (9x margin, matching JEDEC
 *    postponement rules).
 *
 * Two usage modes share the same rule engine:
 *  - batch: check(trace) over a recorded command vector (tests);
 *  - online: feed(cmd) per command as the controller emits it --
 *    no trace storage, O(1) state -- which is how verify=on wires
 *    the checker into every live controller, including the on-DIMM
 *    DRAM inside each simulated NVRAM DIMM.
 */

#ifndef VANS_DRAM_CHECKER_HH
#define VANS_DRAM_CHECKER_HH

#include <deque>
#include <string>
#include <vector>

#include "dram/command.hh"
#include "dram/timing.hh"

namespace vans::snapshot
{
class StateSink;
class StateSource;
} // namespace vans::snapshot

namespace vans::dram
{

/** One detected protocol violation. */
struct Violation
{
    std::size_t cmdIndex;
    std::string rule;
    std::string detail;
};

/** Re-derives bank state from a command stream and checks legality. */
class Ddr4Checker
{
  public:
    Ddr4Checker(const DramTiming &timing, const DramGeometry &geometry);

    /** Check a full trace. @return all violations found. */
    std::vector<Violation> check(const std::vector<DramCommand> &cmds);

    /** Online mode: account one emitted command. */
    void feed(const DramCommand &cmd);

    /** Violations accumulated by feed() so far. */
    const std::vector<Violation> &violations() const { return viols; }

    /** Commands fed so far (batch or online). */
    std::uint64_t commandsChecked() const { return numFed; }

    /** Drop all per-stream state and findings. */
    void reset();

    /**
     * Serialize the re-derived protocol state so a restored
     * controller's checker picks up mid-stream (a fresh checker
     * would flag CAS commands to rows it never saw opened).
     * Requires a clean checker (no accumulated violations).
     */
    void snapshotTo(snapshot::StateSink &sink) const;
    void restoreFrom(snapshot::StateSource &src);

  private:
    struct CheckBank
    {
        bool open = false;
        std::uint64_t row = 0;
        Tick lastAct = 0;
        Tick lastPre = 0;
        Tick lastRd = 0;
        Tick lastWrDataEnd = 0;
        bool everActed = false;
        bool everPre = false;
        bool everRd = false;
        bool everWr = false;
    };

    unsigned bankIdx(const DramCommand &c) const;
    unsigned groupIdx(const DramCommand &c) const;
    void fail(const char *rule, std::string detail);
    void needGap(const char *rule, Tick earlier, unsigned cycles,
                 Tick now);

    // simlint-transient(construction-time configuration: the
    // restoring world is built from the same DramTiming before
    // restoreFrom runs, so serializing it would only duplicate the
    // config file)
    DramTiming spec;
    // simlint-transient(construction-time configuration, fixed by
    // the address-map geometry the restoring world was built with)
    DramGeometry geom;

    // Re-derived protocol state (reset() restores all of it).
    std::vector<CheckBank> banks;
    std::vector<Tick> lastCasGroup;
    std::vector<bool> casSeenGroup;
    std::vector<Tick> lastActGroup;
    std::vector<bool> actSeenGroup;
    Tick lastCasAny = 0;
    bool casSeen = false;
    Tick lastActAny = 0;
    bool actSeen = false;
    Tick lastWrDataEndAny = 0;
    bool wrSeen = false;
    std::deque<Tick> actWindow;
    Tick refDoneAt = 0;
    Tick lastRef = 0;
    bool refSeen = false;

    std::uint64_t numFed = 0;
    // simlint-transient(snapshotTo REQUIREs viols.empty -- a world
    // with recorded protocol violations has already failed and must
    // not be captured, so there is nothing to restore)
    std::vector<Violation> viols;
};

} // namespace vans::dram

#endif // VANS_DRAM_CHECKER_HH
