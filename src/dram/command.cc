#include "dram/command.hh"

#include "common/logging.hh"

namespace vans::dram
{

const char *
dramCmdName(DramCmd cmd)
{
    switch (cmd) {
      case DramCmd::ACT:
        return "ACT";
      case DramCmd::RD:
        return "RD";
      case DramCmd::WR:
        return "WR";
      case DramCmd::PRE:
        return "PRE";
      case DramCmd::REF:
        return "REF";
    }
    return "?";
}

std::string
DramCommand::str() const
{
    return strFormat("%10llu %-3s r%u bg%u b%u row%llu col%llu",
                     static_cast<unsigned long long>(tick),
                     dramCmdName(cmd), rank, bankGroup, bank,
                     static_cast<unsigned long long>(row),
                     static_cast<unsigned long long>(column));
}

} // namespace vans::dram
