/**
 * @file
 * DRAM command stream records, consumed by the protocol checker and
 * the optional command tracer.
 */

#ifndef VANS_DRAM_COMMAND_HH
#define VANS_DRAM_COMMAND_HH

#include <cstdint>
#include <string>
#include <vector>

#include "common/types.hh"

namespace vans::dram
{

/** DRAM bus command types (RD/WR carry auto-precharge variants). */
enum class DramCmd : std::uint8_t
{
    ACT,
    RD,
    WR,
    PRE,
    REF,
};

/** Name of a DramCmd. */
const char *dramCmdName(DramCmd cmd);

/** One issued command with full bank coordinates. */
struct DramCommand
{
    Tick tick = 0;
    DramCmd cmd = DramCmd::ACT;
    unsigned rank = 0;
    unsigned bankGroup = 0;
    unsigned bank = 0;
    std::uint64_t row = 0;
    std::uint64_t column = 0;

    std::string str() const;
};

/** Append-only command trace. */
class CommandTrace
{
  public:
    void
    record(const DramCommand &cmd)
    {
        if (enabled)
            cmds.push_back(cmd);
    }

    void setEnabled(bool on) { enabled = on; }
    bool isEnabled() const { return enabled; }
    const std::vector<DramCommand> &commands() const { return cmds; }
    void clear() { cmds.clear(); }

  private:
    bool enabled = false;
    std::vector<DramCommand> cmds;
};

} // namespace vans::dram

#endif // VANS_DRAM_COMMAND_HH
