#include "dram/controller.hh"

#include <algorithm>
#include <limits>

#include "common/check.hh"
#include "common/logging.hh"
#include "common/snapshot.hh"
#include "common/trace_event.hh"

namespace vans::dram
{

namespace
{
constexpr Tick never = std::numeric_limits<Tick>::max();
} // namespace

DramController::DramController(EventQueue &eq, const DramTiming &timing,
                               const DramGeometry &geometry,
                               SchedPolicy sched_policy, MapScheme ms,
                               std::string name)
    : eventq(eq),
      spec(timing),
      map(geometry, ms),
      policy(sched_policy),
      banks(geometry.totalBanks()),
      lastCasInGroup(geometry.ranks * geometry.bankGroups, 0),
      lastActInGroup(geometry.ranks * geometry.bankGroups, 0),
      nextRefresh(spec.tREFI ? spec.cyc(spec.tREFI) : never),
      statGroup(std::move(name))
{
    if (verify::envEnabled())
        enableOnlineCheck();
    cacheStatPointers();
}

void
DramController::cacheStatPointers()
{
    // Touch every stat this controller ever records so the map nodes
    // exist up front: a first-touch inside the event loop (e.g. the
    // first refresh) would otherwise allocate mid-run.
    for (const char *name :
         {"row_hits", "row_conflicts", "row_misses", "cmd_act",
          "cmd_pre", "cmd_rd", "cmd_wr", "cmd_ref", "read_accesses",
          "write_accesses", "bytes_read", "bytes_written"})
        statGroup.scalar(name);
    sReadLatency = &statGroup.average("read_latency_ns");
    sWriteLatency = &statGroup.average("write_latency_ns");
}

void
DramController::enableOnlineCheck()
{
    if (!checker)
        // simlint-allow(hotpath: one-shot setup called before the
        // run starts, never from an event)
        checker = std::make_unique<Ddr4Checker>(spec, map.geometry());
}

void
DramController::attachTracer(obs::TraceRecorder &rec,
                             const std::string &track_name)
{
    tracer = &rec;
    traceTrack = rec.track(track_name);
    lblRead = rec.label("dram_rd");
    lblWrite = rec.label("dram_wr");
}

DramController::~DramController()
{
    if (!checker || checker->violations().empty())
        return;
    const Violation &v = checker->violations().front();
    panic("DDR4 protocol violation in %s: %s at cmd %zu: %s "
          "(%zu total violations over %llu commands)",
          statGroup.name().c_str(), v.rule.c_str(), v.cmdIndex,
          v.detail.c_str(), checker->violations().size(),
          static_cast<unsigned long long>(checker->commandsChecked()));
}

void
DramController::emit(const DramCommand &cmd)
{
    cmdTrace.record(cmd);
    if (checker)
        checker->feed(cmd);
}

std::uint32_t
DramController::allocParent(unsigned remaining, DoneCallback done)
{
    std::uint32_t idx;
    if (freeParents.empty()) {
        idx = static_cast<std::uint32_t>(parents.size());
        // simlint-allow(hotpath: slab growth is amortized -- only a
        // new peak of in-flight accesses reaches this branch)
        parents.emplace_back();
    } else {
        idx = freeParents.back();
        freeParents.pop_back();
    }
    Parent &p = parents[idx];
    p.remaining = remaining;
    p.done = std::move(done);
    p.lastData = 0;
    return idx;
}

void
DramController::releaseParent(std::uint32_t idx)
{
    parents[idx].done = nullptr;
    freeParents.push_back(idx);
}

void
DramController::access(Addr addr, bool write, std::uint32_t size,
                       DoneCallback done)
{
    unsigned lines = (size + cacheLineSize - 1) / cacheLineSize;
    if (lines == 0)
        lines = 1;

    // One recycled fan-in slot per access, shared by its line splits.
    std::uint32_t parent = allocParent(lines, std::move(done));

    Addr base = alignDown(addr, cacheLineSize);
    for (unsigned i = 0; i < lines; ++i) {
        LineReq r;
        r.addr = base + static_cast<Addr>(i) * cacheLineSize;
        r.coord = map.decode(r.addr);
        r.write = write;
        r.enqueueTick = eventq.curTick();
        r.seq = nextSeq++;
        r.parentIdx = parent;
        (write ? writeQueue : readQueue).push_back(r);
    }
    statGroup.scalar(write ? "write_accesses" : "read_accesses").inc();
    statGroup.scalar(write ? "bytes_written" : "bytes_read").inc(size);
    scheduleWakeup(eventq.curTick());
}

void
DramController::scheduleWakeup(Tick when)
{
    when = std::max(when, eventq.curTick());
    if (wakeupScheduled && wakeupAt <= when)
        return;
    wakeupScheduled = true;
    wakeupAt = when;
    eventq.schedule(when, [this, when] {
        if (wakeupScheduled && wakeupAt == when) {
            wakeupScheduled = false;
            process();
        }
    });
}

Tick
DramController::earliestIssue(const LineReq &r) const
{
    const BankState &b = banks[bankIndex(r.coord)];
    Tick t = cmdBusFree;
    if (b.open && b.row == r.coord.row) {
        // CAS path.
        t = std::max(t, b.casReady);
        unsigned g = r.coord.rank * map.geometry().bankGroups +
                     r.coord.bankGroup;
        Tick ccd = std::max(lastCasInGroup[g] + spec.cyc(spec.tCCD_L),
                            lastCasAny + spec.cyc(spec.tCCD_S));
        t = std::max(t, ccd);
        if (!r.write) {
            // tWTR: write data end -> read CAS.
            t = std::max(t, lastWrDataEnd + spec.cyc(spec.tWTR_L));
        }
        t = std::max(t, dataBusFree);
        return t;
    }
    if (b.open) {
        // Row conflict: need PRE first.
        return std::max(t, b.preReady);
    }
    // Closed: need ACT.
    t = std::max(t, b.actReady);
    unsigned g = r.coord.rank * map.geometry().bankGroups +
                 r.coord.bankGroup;
    Tick rrd = std::max(lastActInGroup[g] + spec.cyc(spec.tRRD_L),
                        lastActAny + spec.cyc(spec.tRRD_S));
    t = std::max(t, rrd);
    if (actWindow.size() >= 4)
        t = std::max(t, actWindow.front() + spec.cyc(spec.tFAW));
    return t;
}

void
DramController::issueAct(const DramCoord &c)
{
    BankState &b = banks[bankIndex(c)];
    Tick now = eventq.curTick();
    b.open = true;
    b.row = c.row;
    b.casReady = now + spec.cyc(spec.tRCD);
    b.preReady = now + spec.cyc(spec.tRAS);
    b.actReady = now + spec.cyc(spec.tRC);

    unsigned g = c.rank * map.geometry().bankGroups + c.bankGroup;
    lastActInGroup[g] = now;
    lastActAny = now;
    actWindow.push_back(now);
    while (actWindow.size() > 4)
        actWindow.pop_front();

    cmdBusFree = now + spec.period();
    statGroup.scalar("cmd_act").inc();
    emit({now, DramCmd::ACT, c.rank, c.bankGroup, c.bank,
                     c.row, 0});
}

void
DramController::issuePre(const DramCoord &c)
{
    BankState &b = banks[bankIndex(c)];
    Tick now = eventq.curTick();
    b.open = false;
    b.actReady = std::max(b.actReady, now + spec.cyc(spec.tRP));
    cmdBusFree = now + spec.period();
    statGroup.scalar("cmd_pre").inc();
    emit({now, DramCmd::PRE, c.rank, c.bankGroup, c.bank,
                     b.row, 0});
}

void
DramController::issueCas(const LineReq &r)
{
    BankState &b = banks[bankIndex(r.coord)];
    Tick now = eventq.curTick();
    Tick lat = r.write ? spec.cyc(spec.tCWL) : spec.cyc(spec.tCL);
    Tick data_start = now + lat;
    Tick data_end = data_start + spec.burstTicks();

    dataBusFree = data_end;
    unsigned g = r.coord.rank * map.geometry().bankGroups +
                 r.coord.bankGroup;
    lastCasInGroup[g] = now;
    lastCasAny = now;

    if (r.write) {
        lastWrDataEnd = data_end;
        // Write recovery gates the next PRE of this bank.
        b.preReady = std::max(b.preReady,
                              data_end + spec.cyc(spec.tWR));
        statGroup.scalar("cmd_wr").inc();
    } else {
        b.preReady = std::max(b.preReady, now + spec.cyc(spec.tRTP));
        statGroup.scalar("cmd_rd").inc();
    }

    cmdBusFree = now + spec.period();
    emit({now, r.write ? DramCmd::WR : DramCmd::RD,
                     r.coord.rank, r.coord.bankGroup, r.coord.bank,
                     r.coord.row, r.coord.column});

    std::uint32_t pi = r.parentIdx;
    Tick enq = r.enqueueTick;
    bool write = r.write;
    eventq.schedule(data_end, [this, pi, data_end, enq, write] {
        Parent &pa = parents[pi];
        pa.lastData = std::max(pa.lastData, data_end);
        if (--pa.remaining == 0) {
            (write ? sWriteLatency : sReadLatency)
                ->sample(ticksToNs(data_end - enq));
            if (tracer) [[unlikely]] {
                tracer->span(traceTrack, write ? lblWrite : lblRead,
                             enq, data_end);
            }
            // Move the callback out and recycle the slot first: the
            // callback may re-enter access(), and slab growth there
            // would invalidate pa.
            DoneCallback done = std::move(pa.done);
            releaseParent(pi);
            if (done)
                done(data_end);
        }
    });
}

void
DramController::doRefresh()
{
    Tick now = eventq.curTick();
    // Close every open bank first (the process() caller already
    // waited for each bank's preReady), then refresh after tRP.
    const auto &g = map.geometry();
    for (unsigned i = 0; i < banks.size(); ++i) {
        BankState &b = banks[i];
        if (b.open) {
            DramCoord c;
            c.bank = i % g.banksPerGroup;
            c.bankGroup = (i / g.banksPerGroup) % g.bankGroups;
            c.rank = i / (g.banksPerGroup * g.bankGroups);
            c.row = b.row;
            statGroup.scalar("cmd_pre").inc();
            emit({now, DramCmd::PRE, c.rank, c.bankGroup,
                             c.bank, b.row, 0});
            b.open = false;
        }
    }
    Tick ref_at = now + spec.cyc(spec.tRP);
    for (auto &b : banks) {
        b.actReady = std::max(b.actReady,
                              ref_at + spec.cyc(spec.tRFC));
    }
    cmdBusFree = std::max(cmdBusFree, ref_at + spec.period());
    statGroup.scalar("cmd_ref").inc();
    emit({ref_at, DramCmd::REF, 0, 0, 0, 0, 0});
    nextRefresh += spec.cyc(spec.tREFI);
    refreshPending = false;
}

void
DramController::process()
{
    Tick now = eventq.curTick();

    // Refresh has priority once due.
    if (spec.tREFI && now >= nextRefresh) {
        // Wait until every open bank may precharge.
        Tick ready = cmdBusFree;
        for (const auto &b : banks) {
            if (b.open)
                ready = std::max(ready, b.preReady);
        }
        if (ready <= now) {
            doRefresh();
            if (!readQueue.empty() || !writeQueue.empty())
                scheduleWakeup(now + spec.period());
            else if (spec.tREFI)
                scheduleWakeup(nextRefresh);
            return;
        }
        scheduleWakeup(ready);
        return;
    }

    if (readQueue.empty() && writeQueue.empty()) {
        if (spec.tREFI)
            scheduleWakeup(nextRefresh);
        return;
    }

    // Pick a request within a queue: FR-FCFS prefers ready row hits,
    // then any ready request, oldest first. The write scan is
    // bounded to the scheduler window. Index-based: the queues are
    // vectors ordered by arrival.
    constexpr std::size_t none = static_cast<std::size_t>(-1);
    auto pick = [&](const FifoRing<LineReq> &q, unsigned window) {
        std::size_t best = none;
        std::size_t limit = std::min<std::size_t>(q.size(), window);
        for (std::size_t i = 0; i < limit; ++i) {
            if (earliestIssue(q.at(i)) > now)
                continue;
            const BankState &b = banks[bankIndex(q.at(i).coord)];
            if (b.open && b.row == q.at(i).coord.row)
                return i; // Oldest ready row hit wins.
            if (best == none)
                best = i;
        }
        return best;
    };
    auto earliest = [&](const FifoRing<LineReq> &q, unsigned window) {
        Tick best = never;
        std::size_t limit = std::min<std::size_t>(q.size(), window);
        for (std::size_t i = 0; i < limit; ++i)
            best = std::min(best, earliestIssue(q.at(i)));
        return best;
    };

    FifoRing<LineReq> *src = nullptr;
    std::size_t chosen = none;
    if (policy == SchedPolicy::FCFS) {
        // Strict arrival order across both queues.
        bool read_first =
            !readQueue.empty() &&
            (writeQueue.empty() ||
             readQueue.front().seq < writeQueue.front().seq);
        src = read_first ? &readQueue : &writeQueue;
        if (earliestIssue(src->front()) > now) {
            scheduleWakeup(std::max(earliestIssue(src->front()),
                                    now + 1));
            return;
        }
        chosen = 0;
    } else {
        // Strict read priority: while any read is queued, writes
        // hold. A continuous write stream would otherwise keep
        // pushing the write-to-read turnaround (tWTR) ahead of a
        // waiting read forever; writes are posted and drain in the
        // read-free gaps.
        if (!readQueue.empty()) {
            src = &readQueue;
            chosen = pick(readQueue, 64);
            if (chosen == none) {
                scheduleWakeup(
                    std::max(earliest(readQueue, 64), now + 1));
                return;
            }
        } else {
            src = &writeQueue;
            chosen = pick(writeQueue, writeScanWindow);
            if (chosen == none) {
                scheduleWakeup(std::max(
                    earliest(writeQueue, writeScanWindow), now + 1));
                return;
            }
        }
    }

    if (issueFor(src->at(chosen)))
        src->eraseAt(chosen);
    scheduleWakeup(now + spec.period());
}

void
DramController::snapshotTo(snapshot::StateSink &sink) const
{
    VANS_REQUIRE("dram", eventq.curTick(),
                 readQueue.empty() && writeQueue.empty(),
                 "snapshot with %zu line requests queued",
                 readQueue.size() + writeQueue.size());
    sink.tag("dram-ctrl");
    sink.str(statGroup.name());
    sink.u64(banks.size());
    for (const BankState &b : banks) {
        sink.boolean(b.open);
        sink.u64(b.row);
        sink.u64(b.actReady);
        sink.u64(b.casReady);
        sink.u64(b.preReady);
    }
    sink.u64(nextSeq);
    sink.u64(lastCasInGroup.size());
    for (std::size_t g = 0; g < lastCasInGroup.size(); ++g) {
        sink.u64(lastCasInGroup[g]);
        sink.u64(lastActInGroup[g]);
    }
    sink.u64(lastCasAny);
    sink.u64(lastActAny);
    sink.u64(actWindow.size());
    for (std::size_t i = 0; i < actWindow.size(); ++i)
        sink.u64(actWindow.at(i));
    sink.u64(lastWrDataEnd);
    sink.u64(dataBusFree);
    sink.u64(cmdBusFree);
    sink.u64(nextRefresh);
    sink.boolean(refreshPending);
    sink.boolean(wakeupScheduled);
    sink.u64(wakeupAt);
    statGroup.snapshotTo(sink);
    sink.boolean(checker != nullptr);
    if (checker)
        checker->snapshotTo(sink);
}

void
DramController::restoreFrom(snapshot::StateSource &src)
{
    VANS_REQUIRE("dram", eventq.curTick(),
                 readQueue.empty() && writeQueue.empty() &&
                     !wakeupScheduled,
                 "restore into a controller already in use");
    src.tag("dram-ctrl");
    std::string who = src.str();
    VANS_REQUIRE("dram", eventq.curTick(), who == statGroup.name(),
                 "controller mismatch: stream has \"%s\", "
                 "restorer is \"%s\"",
                 who.c_str(), statGroup.name().c_str());
    std::uint64_t nb = src.u64();
    VANS_REQUIRE("dram", eventq.curTick(), nb == banks.size(),
                 "bank count mismatch (%llu vs %zu)",
                 static_cast<unsigned long long>(nb), banks.size());
    for (BankState &b : banks) {
        b.open = src.boolean();
        b.row = src.u64();
        b.actReady = src.u64();
        b.casReady = src.u64();
        b.preReady = src.u64();
    }
    nextSeq = src.u64();
    std::uint64_t ng = src.u64();
    VANS_REQUIRE("dram", eventq.curTick(),
                 ng == lastCasInGroup.size(),
                 "group count mismatch (%llu vs %zu)",
                 static_cast<unsigned long long>(ng),
                 lastCasInGroup.size());
    for (std::size_t g = 0; g < lastCasInGroup.size(); ++g) {
        lastCasInGroup[g] = src.u64();
        lastActInGroup[g] = src.u64();
    }
    lastCasAny = src.u64();
    lastActAny = src.u64();
    actWindow.clear();
    std::uint64_t nw = src.u64();
    for (std::uint64_t i = 0; i < nw; ++i)
        actWindow.push_back(src.u64());
    lastWrDataEnd = src.u64();
    dataBusFree = src.u64();
    cmdBusFree = src.u64();
    nextRefresh = src.u64();
    refreshPending = src.boolean();
    bool wakeup = src.boolean();
    Tick wakeup_at = src.u64();
    statGroup.restoreFrom(src);
    cacheStatPointers(); // restoreFrom rebuilt the stat maps.
    bool had_checker = src.boolean();
    if (had_checker && checker)
        checker->restoreFrom(src);
    else if (had_checker && !checker) {
        // Captured in verified mode, restored without: consume the
        // checker section so the stream stays aligned.
        Ddr4Checker scratch(spec, map.geometry());
        scratch.restoreFrom(src);
    }
    // Re-arm the refresh wakeup the captured world had pending. The
    // guarded closure matches scheduleWakeup()'s exactly, and runs
    // before any post-restore work because restore happens before
    // the caller issues anything new.
    if (wakeup) {
        wakeupScheduled = true;
        wakeupAt = wakeup_at;
        Tick when = wakeup_at;
        eventq.schedule(when, [this, when] {
            if (wakeupScheduled && wakeupAt == when) {
                wakeupScheduled = false;
                process();
            }
        });
    }
}

bool
DramController::issueFor(LineReq &r)
{
    // Hit/miss/conflict classification happens once per line
    // request, at its first service attempt.
    BankState &b = banks[bankIndex(r.coord)];
    if (b.open && b.row == r.coord.row) {
        if (!r.classified)
            statGroup.scalar("row_hits").inc();
        r.classified = true;
        issueCas(r);
        return true;
    }
    if (b.open) {
        if (!r.classified)
            statGroup.scalar("row_conflicts").inc();
        r.classified = true;
        issuePre(r.coord);
        return false;
    }
    if (!r.classified)
        statGroup.scalar("row_misses").inc();
    r.classified = true;
    issueAct(r.coord);
    return false;
}

} // namespace vans::dram
