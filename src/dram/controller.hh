/**
 * @file
 * Banked DRAM channel controller with open-page policy and a choice
 * of FCFS or FR-FCFS scheduling.
 *
 * The controller accepts byte-addressed accesses of any size, splits
 * them into cache-line column transactions, and issues ACT/PRE/RD/WR
 * /REF commands respecting the full JEDEC constraint set (tRCD, tRP,
 * tRAS, tRC, tCCD_S/L, tRRD_S/L, tFAW, tWR, tWTR_S/L, tRTP, tRFC,
 * tREFI). An access completes when the last data beat of its last
 * burst leaves (read) or enters (write) the device.
 *
 * The same controller class serves three masters in this repo: the
 * DDR4 main memory of the baseline systems, the small on-DIMM DRAM
 * that backs the AIT inside the NVRAM DIMM, and (with pcmLike()
 * timing) the Ramulator-style PCM baseline.
 */

#ifndef VANS_DRAM_CONTROLLER_HH
#define VANS_DRAM_CONTROLLER_HH

#include <cstdint>
#include <memory>
#include <vector>

#include "common/event_queue.hh"
#include "common/fifo_ring.hh"
#include "common/inplace_function.hh"
#include "common/stats.hh"
#include "common/types.hh"
#include "dram/address_map.hh"
#include "dram/checker.hh"
#include "dram/command.hh"
#include "dram/timing.hh"

namespace vans::obs
{
class TraceRecorder;
} // namespace vans::obs

namespace vans::dram
{

/** Controller scheduling policy. */
enum class SchedPolicy : std::uint8_t
{
    FCFS,
    FRFCFS,
};

/** One DRAM channel: banks, timing state, request queue. */
// simlint-hot
class DramController
{
  public:
    using DoneCallback = InplaceFunction<void(Tick)>;

    DramController(EventQueue &eq, const DramTiming &timing,
                   const DramGeometry &geometry,
                   SchedPolicy policy = SchedPolicy::FRFCFS,
                   MapScheme map = MapScheme::RowBankCol,
                   std::string name = "dram");
    ~DramController();

    /**
     * Enqueue an access; @p done fires at data completion time.
     * Accesses larger than a line become multiple line transactions
     * over consecutive addresses and complete with the last one.
     */
    void access(Addr addr, bool write, std::uint32_t size,
                DoneCallback done);

    /** Number of queued (incomplete) line transactions. */
    std::size_t
    queueDepth() const
    {
        return readQueue.size() + writeQueue.size();
    }

    /** Statistics group (row hits, misses, commands, bytes). */
    StatGroup &stats() { return statGroup; }
    const StatGroup &statsConst() const { return statGroup; }

    /** Command trace for the protocol checker. */
    CommandTrace &trace() { return cmdTrace; }

    /**
     * Verified mode: feed every emitted command through an online
     * Ddr4Checker (no trace storage) and panic at teardown on any
     * protocol violation. Auto-enabled for every controller when
     * VANS_VERIFY is set, so all DRAM-touching tests get the checker
     * for free; call this to force it regardless of the environment.
     */
    void enableOnlineCheck();

    /** Online checker (nullptr when verified mode is off). */
    const Ddr4Checker *onlineChecker() const { return checker.get(); }

    /**
     * Attach tracing: one track for this channel, a span per access
     * from enqueue to last data beat. Pointer only (tracebyvalue
     * rule): the recorder lives in the owning memory system.
     */
    void attachTracer(obs::TraceRecorder &rec,
                      const std::string &track_name);

    const DramTiming &timing() const { return spec; }
    const DramGeometry &geometry() const { return map.geometry(); }

    /**
     * Serialize bank/timing state, stats and (when present) the
     * online checker. Requires empty request queues; the command
     * trace is not preserved (a restored world records a fresh
     * trace). The pending refresh wakeup is re-armed on restore.
     */
    void snapshotTo(snapshot::StateSink &sink) const;
    void restoreFrom(snapshot::StateSource &src);

  private:
    // simlint-transient(Parent fan-in nodes exist only while a line
    // request is in flight; snapshotTo REQUIREs both request queues
    // empty, so none can be live at capture)
    struct Parent
    {
        unsigned remaining;
        DoneCallback done;
        Tick lastData = 0;
    };

    // simlint-transient(LineReq entries live in readQueue/writeQueue,
    // which snapshotTo REQUIREs empty -- in-flight requests are never
    // part of a captured world)
    struct LineReq
    {
        DramCoord coord;
        Addr addr;
        bool write;
        Tick enqueueTick;
        std::uint64_t seq = 0;   ///< Arrival order (FCFS).
        bool classified = false; ///< Hit/miss stat recorded.
        std::uint32_t parentIdx = 0; ///< Fan-in slot in parents.
    };

    struct BankState
    {
        bool open = false;
        std::uint64_t row = 0;
        Tick actReady = 0; ///< Earliest next ACT.
        Tick casReady = 0; ///< Earliest next RD/WR (row must be open).
        Tick preReady = 0; ///< Earliest next PRE.
    };

    /** Flattened bank index. */
    unsigned
    bankIndex(const DramCoord &c) const
    {
        const auto &g = map.geometry();
        return (c.rank * g.bankGroups + c.bankGroup) *
                   g.banksPerGroup + c.bank;
    }

    void scheduleWakeup(Tick when);
    void process();

    /** Record @p cmd in the trace and feed the online checker. */
    void emit(const DramCommand &cmd);

    /** Earliest tick the next required command for @p r can issue. */
    Tick earliestIssue(const LineReq &r) const;

    /** Issue the next required command for @p r at the current tick.
     *  @return true if @p r received its CAS (data scheduled). */
    bool issueFor(LineReq &r);

    void issueAct(const DramCoord &c);
    void issuePre(const DramCoord &c);
    void issueCas(const LineReq &r);
    void doRefresh();

    EventQueue &eventq;
    // simlint-transient(construction-time configuration: the
    // restoring controller is built from the same spec, and
    // restoreFrom only reads it to size the scratch checker)
    DramTiming spec;
    // simlint-transient(construction-time configuration shared by
    // capture and restore worlds; never mutated after the ctor)
    AddressMap map;
    // simlint-transient(construction-time configuration: scheduler
    // policy enum fixed at build time)
    SchedPolicy policy;

    /** Grab a fan-in slot from the recycled parent slab. */
    std::uint32_t allocParent(unsigned remaining, DoneCallback done);
    /** Return a completed fan-in slot to the free list. */
    void releaseParent(std::uint32_t idx);

    std::vector<BankState> banks;
    /** Reads and writes queue separately: reads have strict
     *  priority (writes are posted), and the write scan is bounded
     *  to a scheduler window to keep per-command cost constant.
     *  Ring-buffered, index-addressed: the windowed scan stays
     *  contiguous in practice, the scheduler erase shifts only the
     *  scan-window prefix (a sustained read stream legitimately
     *  starves posted writes into a very deep queue, so an erase
     *  proportional to depth would go quadratic), and the warm
     *  capacity makes steady-state admission allocation-free. */
    FifoRing<LineReq> readQueue;
    FifoRing<LineReq> writeQueue;
    /**
     * Recycled fan-in nodes, one per in-flight access (all its line
     * splits share the slot). Index-addressed so slab growth never
     * invalidates a reference held by a scheduled data event.
     */
    // simlint-transient(fan-in slots only carry in-flight accesses,
    // and snapshotTo REQUIREs both request queues empty; the free
    // list rebuilds as a restored world issues fresh accesses)
    std::vector<Parent> parents;
    // simlint-transient(free-list over parents, which are all free at
    // capture since the request queues are REQUIREd empty)
    std::vector<std::uint32_t> freeParents;
    std::uint64_t nextSeq = 0;
    static constexpr unsigned writeScanWindow = 32;

    /** Per-(rank,bankgroup) last CAS for tCCD_L / tRRD_L tracking. */
    std::vector<Tick> lastCasInGroup;
    std::vector<Tick> lastActInGroup;
    Tick lastCasAny = 0;
    Tick lastActAny = 0;
    FifoRing<Tick> actWindow; ///< For tFAW.
    Tick lastWrDataEnd = 0;     ///< For tWTR.
    Tick dataBusFree = 0;
    Tick cmdBusFree = 0;

    Tick nextRefresh;
    bool refreshPending = false;

    bool wakeupScheduled = false;
    Tick wakeupAt = 0;

    StatGroup statGroup;
    /** Cached latency averages: the names exceed std::string's SSO
     *  and the data-completion event must not allocate per access. */
    // simlint-transient(re-resolved by cacheStatPointers after
    // restoreFrom rebuilds the stat maps)
    StatAverage *sReadLatency = nullptr;
    // simlint-transient(re-resolved by cacheStatPointers after
    // restoreFrom rebuilds the stat maps)
    StatAverage *sWriteLatency = nullptr;
    /** Re-resolve the cached stat pointers (ctor and post-restore). */
    void cacheStatPointers();
    // simlint-transient(the command trace is documented as not
    // preserved across snapshot -- a restored world records a fresh
    // trace, which the snapshot-identity test relies on)
    CommandTrace cmdTrace;
    /** Online protocol checker; allocated only in verified mode. */
    std::unique_ptr<Ddr4Checker> checker;

    obs::TraceRecorder *tracer = nullptr;
    // simlint-transient(trace wiring assigned by attachTracer after
    // construction; a restored world re-attaches its own recorder)
    std::uint16_t traceTrack = 0;
    // simlint-transient(trace label id, re-interned on attachTracer)
    std::uint16_t lblRead = 0;
    // simlint-transient(trace label id, re-interned on attachTracer)
    std::uint16_t lblWrite = 0;
};

} // namespace vans::dram

#endif // VANS_DRAM_CONTROLLER_HH
