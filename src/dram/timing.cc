#include "dram/timing.hh"

namespace vans::dram
{

DramTiming
DramTiming::ddr4_2666()
{
    DramTiming t;
    t.name = "ddr4-2666";
    return t;
}

DramTiming
DramTiming::ddr4OnDimm()
{
    DramTiming t = ddr4_2666();
    t.name = "ddr4-ondimm";
    return t;
}

DramTiming
DramTiming::ddr3_1600()
{
    DramTiming t;
    t.name = "ddr3-1600";
    t.clockMhz = 800.0;
    t.tCL = 11;
    t.tCWL = 8;
    t.tRCD = 11;
    t.tRP = 11;
    t.tRAS = 28;
    t.tRC = 39;
    t.tCCD_S = 4;  // DDR3 has no bank groups; S==L.
    t.tCCD_L = 4;
    t.tRRD_S = 5;
    t.tRRD_L = 5;
    t.tFAW = 24;
    t.tWR = 12;
    t.tWTR_S = 6;
    t.tWTR_L = 6;
    t.tRTP = 6;
    t.tRFC = 208;
    t.tREFI = 6240;
    return t;
}

DramTiming
DramTiming::pcmLike()
{
    // Ramulator-style PCM: DRAM protocol, stretched array timings.
    // Row activation (array read) ~4x DDR4, write recovery (cell
    // programming) ~12x, and no refresh because cells are NV.
    DramTiming t = ddr4_2666();
    t.name = "pcm-ddr";
    t.tRCD = 76;        // ~57 ns array read.
    t.tRAS = 120;
    t.tRC = 150;
    t.tWR = 240;        // ~180 ns cell write.
    t.tRFC = 0;
    t.tREFI = 0;        // Non-volatile: no refresh.
    return t;
}

} // namespace vans::dram
