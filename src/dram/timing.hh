/**
 * @file
 * DRAM timing parameter sets and device geometry.
 *
 * Timings are stored in device clock cycles (the JEDEC convention)
 * plus the bus clock frequency; helpers convert to global ticks. The
 * presets cover the configurations used across the experiments:
 * DDR4-2666 main memory (Table V), the small on-DIMM DDR4 that hosts
 * the AIT, legacy DDR3-1600 (for the DRAMSim2-style baseline of
 * Fig 3a), and a PCM-on-DDR parameter set that mimics how
 * Ramulator's PCM model stretches DRAM timings.
 */

#ifndef VANS_DRAM_TIMING_HH
#define VANS_DRAM_TIMING_HH

#include <cstdint>
#include <string>

#include "common/types.hh"

namespace vans::dram
{

/** JEDEC-style timing parameters in device clock cycles. */
struct DramTiming
{
    std::string name = "ddr4-2666";
    double clockMhz = 1333.0; ///< Bus clock (data rate = 2x).
    unsigned burstLength = 8; ///< BL8 -> 4 clock data beats.

    unsigned tCL = 19;    ///< CAS latency.
    unsigned tCWL = 14;   ///< CAS write latency.
    unsigned tRCD = 19;   ///< ACT -> CAS.
    unsigned tRP = 19;    ///< PRE -> ACT.
    unsigned tRAS = 43;   ///< ACT -> PRE.
    unsigned tRC = 62;    ///< ACT -> ACT (same bank).
    unsigned tCCD_S = 4;  ///< CAS -> CAS, different bank group.
    unsigned tCCD_L = 6;  ///< CAS -> CAS, same bank group.
    unsigned tRRD_S = 4;  ///< ACT -> ACT, different bank group.
    unsigned tRRD_L = 6;  ///< ACT -> ACT, same bank group.
    unsigned tFAW = 24;   ///< Four-ACT window.
    unsigned tWR = 20;    ///< Write recovery (WR data end -> PRE).
    unsigned tWTR_S = 4;  ///< WR data end -> RD, diff bank group.
    unsigned tWTR_L = 10; ///< WR data end -> RD, same bank group.
    unsigned tRTP = 10;   ///< RD -> PRE.
    unsigned tRFC = 467;  ///< Refresh cycle time.
    unsigned tREFI = 10400; ///< Refresh interval.

    /** Duration of @p cycles device cycles in ticks. */
    Tick
    cyc(std::uint64_t cycles) const
    {
        return static_cast<Tick>(static_cast<double>(cycles) * 1e6 /
                                 clockMhz);
    }

    /** One clock period in ticks. */
    Tick period() const { return cyc(1); }

    /** Data transfer time of one burst (BL/2 clocks). */
    Tick burstTicks() const { return cyc(burstLength / 2); }

    /** DDR4-2666 with Table V latencies (19-19-19-43). */
    static DramTiming ddr4_2666();

    /** The small on-DIMM DDR4 device hosting AIT state. */
    static DramTiming ddr4OnDimm();

    /** DDR3-1600 (11-11-11-28) for the legacy-simulator baseline. */
    static DramTiming ddr3_1600();

    /**
     * PCM-on-DDR timing a la Ramulator's PCM model: read row cycles
     * stretched ~4x, write recovery ~12x, no refresh.
     */
    static DramTiming pcmLike();
};

/** Device geometry: how many banks and how big each row is. */
struct DramGeometry
{
    unsigned ranks = 1;
    unsigned bankGroups = 4;
    unsigned banksPerGroup = 4;
    std::uint64_t rowBytes = 8192;
    std::uint64_t capacityBytes = 4ull << 30;

    unsigned totalBanks() const { return ranks * bankGroups *
                                         banksPerGroup; }

    std::uint64_t
    rowsPerBank() const
    {
        return capacityBytes / (rowBytes * totalBanks());
    }
};

} // namespace vans::dram

#endif // VANS_DRAM_TIMING_HH
