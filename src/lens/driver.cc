#include "lens/driver.hh"

#include "common/check.hh"
#include "common/logging.hh"
#include "common/trace_event.hh"

namespace vans::lens
{

Driver::Driver(MemorySystem &memory)
    : mem(memory), eq(memory.eventQueue())
{
    tracer = mem.tracer();
    if (tracer) [[unlikely]] {
        traceTrack = tracer->track("lens");
        lblRead = tracer->label("op_rd");
        lblWrite = tracer->label("op_wr");
        lblFence = tracer->label("op_fence");
        lblFlush = tracer->label("op_flush");
        lblSfence = tracer->label("op_sfence");
    }
}

void
Driver::runUntil(const std::function<bool()> &pred)
{
    // Step the system, not the raw queue: a sharded system advances
    // its channel shards here while the core queue may be empty.
    while (!pred()) {
        if (!mem.step())
            panic("event queue drained before condition was met");
    }
}

void
Driver::drain()
{
    mem.drain();
}

void
Driver::idle(Tick ticks)
{
    Tick target = eq.curTick() + ticks;
    bool fired = false;
    eq.schedule(target, [&fired] { fired = true; });
    runUntil([&fired] { return fired; });
}

Tick
Driver::read(Addr addr, std::uint32_t size)
{
    RequestHandle h = mem.makeRequest(addr, MemOp::ReadNT, size);
    bool done = false;
    Tick lat = 0;
    mem.request(h).onComplete = [&done, &lat](Request &r) {
        done = true;
        lat = r.latency();
    };
    Tick start = eq.curTick();
    mem.issue(h);
    runUntil([&done] { return done; });
    mem.pool().release(h);
    // A zero-latency load would mean the model handed data back in
    // the issuing event -- a measurement artifact, not a memory.
    VANS_INVARIANT("lens.driver", eq.curTick(), lat > 0,
                   "read of %llx measured zero latency",
                   static_cast<unsigned long long>(addr));
    if (tracer) [[unlikely]]
        tracer->spanAddr(traceTrack, lblRead, start, start + lat,
                         addr);
    return lat;
}

Tick
Driver::write(Addr addr, std::uint32_t size)
{
    RequestHandle h = mem.makeRequest(addr, MemOp::WriteNT, size);
    bool done = false;
    Tick lat = 0;
    mem.request(h).onComplete = [&done, &lat](Request &r) {
        done = true;
        lat = r.latency();
    };
    Tick start = eq.curTick();
    mem.issue(h);
    runUntil([&done] { return done; });
    mem.pool().release(h);
    if (tracer) [[unlikely]]
        tracer->spanAddr(traceTrack, lblWrite, start, start + lat,
                         addr);
    return lat;
}

Tick
Driver::fence()
{
    RequestHandle h = mem.makeRequest(0, MemOp::Fence, 0);
    bool done = false;
    Tick lat = 0;
    mem.request(h).onComplete = [&done, &lat](Request &r) {
        done = true;
        lat = r.latency();
    };
    Tick start = eq.curTick();
    mem.issue(h);
    runUntil([&done] { return done; });
    mem.pool().release(h);
    if (tracer) [[unlikely]]
        tracer->span(traceTrack, lblFence, start, start + lat);
    return lat;
}

Tick
Driver::syncOp(Addr addr, MemOp op, std::uint32_t size,
               std::uint16_t lbl, bool span_addr)
{
    RequestHandle h = mem.makeRequest(addr, op, size);
    bool done = false;
    Tick lat = 0;
    mem.request(h).onComplete = [&done, &lat](Request &r) {
        done = true;
        lat = r.latency();
    };
    Tick start = eq.curTick();
    mem.issue(h);
    runUntil([&done] { return done; });
    mem.pool().release(h);
    if (tracer) [[unlikely]] {
        if (span_addr)
            tracer->spanAddr(traceTrack, lbl, start, start + lat,
                             addr);
        else
            tracer->span(traceTrack, lbl, start, start + lat);
    }
    return lat;
}

Tick
Driver::clwb(Addr addr)
{
    return syncOp(addr, MemOp::Clwb, cacheLineSize, lblFlush, true);
}

Tick
Driver::clflushopt(Addr addr)
{
    return syncOp(addr, MemOp::Clflushopt, cacheLineSize, lblFlush,
                  true);
}

Tick
Driver::sfence()
{
    return syncOp(0, MemOp::Sfence, 0, lblSfence, false);
}

Tick
Driver::persistBlockNt(Addr base, std::uint32_t block_bytes,
                       unsigned outstanding, double issue_gap_ns)
{
    Tick start = eq.curTick();
    unsigned lines = block_bytes / cacheLineSize;
    std::vector<Addr> addrs;
    addrs.reserve(lines);
    for (unsigned i = 0; i < lines; ++i)
        addrs.push_back(base + static_cast<Addr>(i) * cacheLineSize);
    streamOps(addrs, MemOp::WriteNT, outstanding,
              nsToTicks(issue_gap_ns));
    sfence();
    return eq.curTick() - start;
}

Tick
Driver::persistBlockCached(Addr base, std::uint32_t block_bytes,
                           unsigned outstanding, double issue_gap_ns)
{
    Tick start = eq.curTick();
    unsigned lines = block_bytes / cacheLineSize;
    std::vector<Addr> addrs;
    addrs.reserve(lines);
    for (unsigned i = 0; i < lines; ++i)
        addrs.push_back(base + static_cast<Addr>(i) * cacheLineSize);
    streamOps(addrs, MemOp::Clwb, outstanding,
              nsToTicks(issue_gap_ns));
    sfence();
    return eq.curTick() - start;
}

Tick
Driver::streamOps(const std::vector<Addr> &addrs, MemOp op,
                  unsigned max_in_flight, Tick issue_gap)
{
    if (addrs.empty())
        return 0;
    Tick start = eq.curTick();
    std::size_t issued = 0;
    std::size_t completed = 0;
    std::size_t in_flight = 0;
    Tick next_allowed = 0;

    while (completed < addrs.size()) {
        if (issued < addrs.size() && in_flight < max_in_flight) {
            if (eq.curTick() >= next_allowed) {
                RequestHandle h = mem.makeRequest(addrs[issued], op);
                // The stream loop never revisits a request: release
                // the slot right inside the completion callback.
                mem.request(h).onComplete =
                    [&completed, &in_flight, p = &mem.pool(),
                     h](Request &) {
                        ++completed;
                        --in_flight;
                        p->release(h);
                    };
                ++issued;
                ++in_flight;
                next_allowed = eq.curTick() + issue_gap;
                mem.issue(h);
                continue;
            }
            // Blocked only by the issue gap: advance to it.
            bool fired = false;
            eq.schedule(next_allowed, [&fired] { fired = true; });
            runUntil([&fired] { return fired; });
            continue;
        }
        std::size_t before = completed;
        runUntil([&completed, before] { return completed > before; });
    }
    // Every issued request must have retired before the elapsed time
    // is read off -- a leftover in-flight op would attribute its
    // latency to the next measurement phase.
    VANS_INVARIANT("lens.driver", eq.curTick(),
                   issued == addrs.size() && in_flight == 0,
                   "stream ended with %zu/%zu issued, %zu in flight",
                   issued, addrs.size(), in_flight);
    return eq.curTick() - start;
}

Tick
Driver::streamReads(const std::vector<Addr> &addrs, unsigned mlp)
{
    return streamOps(addrs, MemOp::ReadNT, mlp, 0);
}

Tick
Driver::streamWrites(const std::vector<Addr> &addrs,
                     unsigned outstanding, double issue_gap_ns)
{
    return streamOps(addrs, MemOp::WriteNT, outstanding,
                     nsToTicks(issue_gap_ns));
}

Tick
Driver::readBlock(Addr base, std::uint32_t block_bytes)
{
    Tick start = eq.curTick();
    // Dependent first line: the pointer itself.
    read(base);
    unsigned lines = block_bytes / cacheLineSize;
    if (lines > 1) {
        std::vector<Addr> rest;
        rest.reserve(lines - 1);
        for (unsigned i = 1; i < lines; ++i)
            rest.push_back(base + static_cast<Addr>(i) *
                                      cacheLineSize);
        streamReads(rest, 8);
    }
    return eq.curTick() - start;
}

Tick
Driver::writeBlock(Addr base, std::uint32_t block_bytes)
{
    Tick start = eq.curTick();
    unsigned lines = block_bytes / cacheLineSize;
    for (unsigned i = 0; i < lines; ++i)
        write(base + static_cast<Addr>(i) * cacheLineSize);
    return eq.curTick() - start;
}

} // namespace vans::lens
