/**
 * @file
 * The LENS execution driver: runs "simulated software" against any
 * MemorySystem.
 *
 * The real LENS is a Linux kernel module issuing AVX512 non-temporal
 * loads/stores at Optane hardware. Here the same access sequences are
 * issued at a simulated memory system, stepping the event queue until
 * each operation's completion callback fires. Because both the real
 * and the simulated target are driven through identical request
 * streams, the prober logic on top is oblivious to which one it is
 * profiling -- that is the property that makes the planted-parameter
 * recovery tests meaningful.
 */

#ifndef VANS_LENS_DRIVER_HH
#define VANS_LENS_DRIVER_HH

#include <cstdint>
#include <functional>
#include <vector>

#include "common/mem_system.hh"
#include "common/types.hh"

namespace vans::lens
{

/** Synchronous and bounded-overlap access primitives. */
class Driver
{
  public:
    explicit Driver(MemorySystem &mem);

    /** Issue one NT read and wait for the data. @return latency. */
    Tick read(Addr addr, std::uint32_t size = cacheLineSize);

    /** Issue one NT store and wait for ADR acceptance. @return
     *  latency. */
    Tick write(Addr addr, std::uint32_t size = cacheLineSize);

    /** Issue a persistence fence and wait. @return latency. */
    Tick fence();

    /** Issue one clwb writeback and wait for ADR acceptance. */
    Tick clwb(Addr addr);

    /** Issue one clflushopt (writeback + invalidate) and wait. */
    Tick clflushopt(Addr addr);

    /**
     * Issue an sfence and wait: ADR-acceptance ordering only, the
     * persistence barrier of the flush/NT-store discipline. Strictly
     * weaker (and cheaper) than fence().
     */
    Tick sfence();

    /**
     * Persist a block the NT way: stream NT stores over it, then
     * sfence. @return total elapsed ticks -- the cost-model
     * regression tests pin the ntstore-vs-clwb crossover with this
     * pair.
     */
    Tick persistBlockNt(Addr base, std::uint32_t block_bytes,
                        unsigned outstanding = 8,
                        double issue_gap_ns = 6.0);

    /** Persist a block the cached way: clwb every line, then
     *  sfence. */
    Tick persistBlockCached(Addr base, std::uint32_t block_bytes,
                            unsigned outstanding = 8,
                            double issue_gap_ns = 6.0);

    /**
     * Issue reads for every address with at most @p mlp in flight.
     * @return total elapsed ticks from first issue to last data.
     */
    Tick streamReads(const std::vector<Addr> &addrs, unsigned mlp);

    /**
     * Same for NT stores (outstanding-store-buffer model).
     * @p issue_gap_ns models the core's store issue rate: even with
     * buffer space, stores leave the core no faster than one per
     * gap.
     */
    Tick streamWrites(const std::vector<Addr> &addrs,
                      unsigned outstanding,
                      double issue_gap_ns = 6.0);

    /** Shared machinery for the two stream calls. */
    Tick streamOps(const std::vector<Addr> &addrs, MemOp op,
                   unsigned max_in_flight, Tick issue_gap);

    /**
     * Read a block of @p block_bytes at @p base: the first line is a
     * dependent (pointer) load; the remaining lines overlap.
     * @return elapsed ticks for the whole block.
     */
    Tick readBlock(Addr base, std::uint32_t block_bytes);

    /** Write a block sequentially, one store at a time. */
    Tick writeBlock(Addr base, std::uint32_t block_bytes);

    /** Step the event queue until @p pred returns true. */
    void runUntil(const std::function<bool()> &pred);

    /**
     * Let the system idle out: run until quiescent() (shared
     * MemorySystem::drain condition). This -- never event-queue
     * emptiness -- is how a workload ends: a world whose DRAM path
     * was touched keeps its refresh wakeup armed forever, so its
     * queue never empties.
     */
    void drain();

    /** Advance simulated time by @p ticks (think time). */
    void idle(Tick ticks);

    MemorySystem &memory() { return mem; }
    Tick now() const { return eq.curTick(); }

  private:
    /** Shared body of the synchronous single-request ops. */
    Tick syncOp(Addr addr, MemOp op, std::uint32_t size,
                std::uint16_t lbl, bool span_addr);

    MemorySystem &mem;
    EventQueue &eq;

    /**
     * Driver-side view of the system's trace recorder (nullptr when
     * untraced): each synchronous read/write/fence op contributes a
     * span on the "lens" track so the traced timeline shows what the
     * simulated software was doing around each component's activity.
     */
    obs::TraceRecorder *tracer = nullptr;
    std::uint16_t traceTrack = 0;
    std::uint16_t lblRead = 0;
    std::uint16_t lblWrite = 0;
    std::uint16_t lblFence = 0;
    std::uint16_t lblFlush = 0;
    std::uint16_t lblSfence = 0;
};

} // namespace vans::lens

#endif // VANS_LENS_DRIVER_HH
