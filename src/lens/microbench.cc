#include "lens/microbench.hh"

#include <algorithm>

#include "common/logging.hh"

namespace vans::lens
{

std::vector<Addr>
chaseOrder(Addr base, std::uint64_t region_bytes,
           std::uint32_t block_bytes, std::uint64_t max_blocks,
           std::uint64_t seed)
{
    Rng rng(seed * 0x2545f4914f6cdd1dull + 1);
    std::uint64_t blocks = region_bytes / block_bytes;
    if (blocks == 0)
        blocks = 1;
    std::vector<Addr> order;
    if (blocks <= max_blocks) {
        order.reserve(blocks);
        for (std::uint64_t i = 0; i < blocks; ++i)
            order.push_back(base + i * block_bytes);
        rng.shuffle(order);
    } else {
        // Uniform sample without immediate repeats: steady-state hit
        // ratios only depend on the fraction of the region resident
        // in each buffer level.
        order.reserve(max_blocks);
        Addr last = ~0ull;
        for (std::uint64_t i = 0; i < max_blocks; ++i) {
            Addr a;
            do {
                a = base + rng.below(blocks) * block_bytes;
            } while (a == last);
            order.push_back(a);
            last = a;
        }
    }
    return order;
}

PtrChaseResult
ptrChase(Driver &drv, const PtrChaseParams &p)
{
    std::uint64_t lines_per_block = p.blockBytes / cacheLineSize;
    if (lines_per_block == 0)
        fatal("PC-Block smaller than a cache line");

    std::uint64_t want_lines = p.warmupLines + p.measureLines;
    std::uint64_t want_blocks =
        (want_lines + lines_per_block - 1) / lines_per_block;

    auto order = chaseOrder(p.base, p.regionBytes, p.blockBytes,
                            want_blocks, p.seed);

    auto run_phase = [&](std::uint64_t lines_target,
                         std::uint64_t &cursor) {
        Tick start = drv.now();
        std::uint64_t done_lines = 0;
        if (p.writeMode) {
            // NT stores leave the core through the store buffer:
            // overlapped, paced by the core's issue rate. This is
            // what lets the WPQ/LSQ drain rates surface as the
            // per-line store cost.
            std::vector<Addr> addrs;
            addrs.reserve(lines_target + lines_per_block);
            while (done_lines < lines_target) {
                Addr a = order[cursor % order.size()];
                ++cursor;
                for (std::uint64_t l = 0; l < lines_per_block; ++l)
                    addrs.push_back(a + l * cacheLineSize);
                done_lines += lines_per_block;
            }
            drv.streamWrites(addrs, 16);
        } else if (p.mlp <= 1) {
            // Latency mode: a dependent chain across blocks.
            while (done_lines < lines_target) {
                drv.readBlock(order[cursor % order.size()],
                              p.blockBytes);
                ++cursor;
                done_lines += lines_per_block;
            }
        } else {
            // Bandwidth mode: overlapped line stream in block order.
            std::vector<Addr> addrs;
            addrs.reserve(lines_target + lines_per_block);
            while (done_lines < lines_target) {
                Addr a = order[cursor % order.size()];
                ++cursor;
                for (std::uint64_t l = 0; l < lines_per_block; ++l)
                    addrs.push_back(a + l * cacheLineSize);
                done_lines += lines_per_block;
            }
            drv.streamReads(addrs, p.mlp);
        }
        return std::pair<Tick, std::uint64_t>(drv.now() - start,
                                              done_lines);
    };

    if (p.coverageWarm) {
        // One touch per 4KB page the chase will visit, in address
        // order; pages outside the sampled order stay cold (they
        // cannot influence the measurement).
        std::uint32_t stride =
            std::max<std::uint32_t>(4096, p.blockBytes);
        std::vector<Addr> touch;
        touch.reserve(order.size());
        for (Addr a : order)
            touch.push_back(alignDown(a, stride));
        std::sort(touch.begin(), touch.end());
        touch.erase(std::unique(touch.begin(), touch.end()),
                    touch.end());
        if (p.writeMode)
            drv.streamWrites(touch, 16);
        else
            drv.streamReads(touch, 16);
    }

    std::uint64_t cursor = 0;
    run_phase(p.warmupLines, cursor);
    auto [elapsed, lines] = run_phase(p.measureLines, cursor);

    PtrChaseResult res;
    res.elapsed = elapsed;
    res.lines = lines;
    res.nsPerLine = lines ? ticksToNs(elapsed) /
                            static_cast<double>(lines)
                          : 0;
    return res;
}

RawResult
readAfterWrite(Driver &drv, Addr base, std::uint64_t region_bytes,
               std::uint32_t block_bytes, std::uint64_t seed)
{
    // Bound the work: the behaviour is periodic in the region once
    // buffers reach steady state.
    std::uint64_t max_blocks = 4096;
    auto order = chaseOrder(base, region_bytes, block_bytes,
                            max_blocks, seed);
    std::uint64_t lines_per_block = block_bytes / cacheLineSize;

    // Warm: one full write+read pass.
    for (Addr a : order)
        drv.writeBlock(a, block_bytes);
    for (Addr a : order)
        drv.readBlock(a, block_bytes);

    Tick start = drv.now();
    for (Addr a : order)
        drv.writeBlock(a, block_bytes);
    for (Addr a : order)
        drv.readBlock(a, block_bytes);
    Tick elapsed = drv.now() - start;

    RawResult r;
    std::uint64_t lines = order.size() * lines_per_block;
    // Roundtrip: one write plus one read per line.
    r.rawNsPerLine = ticksToNs(elapsed) / static_cast<double>(lines);
    return r;
}

OverwriteResult
overwrite(Driver &drv, Addr base, std::uint64_t region_bytes,
          std::uint64_t iterations)
{
    OverwriteResult res;
    res.iterationNs.reserve(iterations);
    std::uint64_t lines = std::max<std::uint64_t>(
        region_bytes / cacheLineSize, 1);

    for (std::uint64_t it = 0; it < iterations; ++it) {
        Tick start = drv.now();
        for (std::uint64_t l = 0; l < lines; ++l)
            drv.write(base + l * cacheLineSize);
        drv.fence();
        res.iterationNs.push_back(ticksToNs(drv.now() - start));
    }

    if (!res.iterationNs.empty()) {
        std::vector<double> sorted(res.iterationNs);
        std::sort(sorted.begin(), sorted.end());
        res.medianNs = sorted[sorted.size() / 2];
        double sum = 0;
        for (double v : res.iterationNs)
            sum += v;
        res.meanNs = sum / static_cast<double>(res.iterationNs.size());
    }
    return res;
}

StrideResult
stride(Driver &drv, Addr base, std::uint64_t count,
       std::uint64_t stride_bytes, bool write_mode, unsigned mlp)
{
    std::vector<Addr> addrs;
    addrs.reserve(count);
    for (std::uint64_t i = 0; i < count; ++i)
        addrs.push_back(base + i * stride_bytes);

    Tick elapsed = write_mode ? drv.streamWrites(addrs, mlp)
                              : drv.streamReads(addrs, mlp);
    StrideResult r;
    r.elapsed = elapsed;
    r.accesses = count;
    double bytes = static_cast<double>(count) * cacheLineSize;
    double secs = ticksToNs(elapsed) * 1e-9;
    r.gbPerSec = secs > 0 ? bytes / secs / 1e9 : 0;
    return r;
}

} // namespace vans::lens
