/**
 * @file
 * The three LENS microbenchmarks (paper Table II): pointer chasing,
 * overwrite, and stride -- plus the read-after-write variant.
 *
 * Pointer chasing divides a PC-Region into PC-Blocks, visits the
 * blocks in a seeded random order and accesses lines sequentially
 * within a block. Two modes matter:
 *  - latency mode (dependent chain across blocks): exposes buffer
 *    capacities as latency plateaus;
 *  - bandwidth mode (overlapped accesses): exposes read/write
 *    amplification as throughput loss, which is how the
 *    amplification *score* is measured without hardware counters.
 *
 * Overwrite repeatedly writes the same region with a persistence
 * fence per iteration and records every iteration's latency -- the
 * wear-leveling tail detector.
 *
 * Stride reads/writes a strided address pattern with configurable
 * overlap -- the bandwidth and interleave probe.
 */

#ifndef VANS_LENS_MICROBENCH_HH
#define VANS_LENS_MICROBENCH_HH

#include <cstdint>
#include <vector>

#include "common/rng.hh"
#include "common/types.hh"
#include "lens/driver.hh"

namespace vans::lens
{

/** Result of one pointer-chasing run. */
struct PtrChaseResult
{
    double nsPerLine = 0;     ///< Average latency per cache line.
    std::uint64_t lines = 0;  ///< Lines measured.
    Tick elapsed = 0;
};

/** Parameters for pointer chasing. */
struct PtrChaseParams
{
    Addr base = 0;
    std::uint64_t regionBytes = 4096;
    std::uint32_t blockBytes = 64;
    bool writeMode = false;      ///< Stores instead of loads.
    unsigned mlp = 1;            ///< 1 = latency mode; >1 = bandwidth.
    std::uint64_t warmupLines = 12000;
    std::uint64_t measureLines = 8000;
    std::uint64_t seed = 1;
    /**
     * Precede the warmup with one coarse touch of the whole region
     * (one line per 4KB page). A machine that has been running a
     * sweep for a while has its translation buffers populated with
     * the region's pages; a freshly cloned per-point system has
     * not. The coverage pass restores that steady-state residency,
     * so isolated sweep points measure the same plateaus a warm
     * sequential sweep does.
     */
    bool coverageWarm = false;
};

/** Run pointer chasing against @p drv's memory system. */
PtrChaseResult ptrChase(Driver &drv, const PtrChaseParams &p);

/** Result of a read-after-write run. */
struct RawResult
{
    double rawNsPerLine = 0; ///< Write-then-read roundtrip per line.
};

/**
 * Read-after-write: write all blocks in pointer-chasing order, then
 * read them back in the same order (paper section III-A variant 3).
 * The roundtrip per line is (write phase + read phase) / lines.
 */
RawResult readAfterWrite(Driver &drv, Addr base,
                         std::uint64_t region_bytes,
                         std::uint32_t block_bytes,
                         std::uint64_t seed = 1);

/** Result of an overwrite run. */
struct OverwriteResult
{
    std::vector<double> iterationNs; ///< Per-iteration latency.
    double medianNs = 0;
    double meanNs = 0;
};

/**
 * Overwrite: write @p region_bytes sequentially with NT stores, then
 * fence; repeat @p iterations times recording each iteration's
 * latency.
 */
OverwriteResult overwrite(Driver &drv, Addr base,
                          std::uint64_t region_bytes,
                          std::uint64_t iterations);

/** Result of a stride run. */
struct StrideResult
{
    double gbPerSec = 0;
    Tick elapsed = 0;
    std::uint64_t accesses = 0;
};

/**
 * Stride: access @p count lines spaced @p stride_bytes apart with
 * @p mlp outstanding operations.
 */
StrideResult stride(Driver &drv, Addr base, std::uint64_t count,
                    std::uint64_t stride_bytes, bool write_mode,
                    unsigned mlp);

/**
 * Build the seeded random block visit order used by pointer chasing:
 * if the region has more blocks than @p max_blocks, a uniform sample
 * is used (steady-state residency only needs coverage of the buffer
 * capacities, not the whole region).
 */
std::vector<Addr> chaseOrder(Addr base, std::uint64_t region_bytes,
                             std::uint32_t block_bytes,
                             std::uint64_t max_blocks,
                             std::uint64_t seed);

} // namespace vans::lens

#endif // VANS_LENS_MICROBENCH_HH
