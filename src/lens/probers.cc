#include "lens/probers.hh"

#include <algorithm>
#include <cmath>

#include "common/logging.hh"

namespace vans::lens
{

namespace
{

/** Round to the nearest power of two (for reporting sizes). */
std::uint64_t
roundPow2(double v)
{
    if (v <= 1)
        return 1;
    double l = std::log2(v);
    return 1ull << static_cast<unsigned>(std::lround(l));
}

/**
 * Knee of a declining score curve: the first x whose score is within
 * @p slack of the curve's minimum. This is the operational "score
 * drops to one" rule with robustness to constant offsets.
 */
std::uint64_t
ampKnee(const Curve &score, double slack = 0.10)
{
    if (score.empty())
        return 0;
    double lo = score.minY();
    for (const auto &p : score.points()) {
        if (p.y <= lo * (1.0 + slack))
            return static_cast<std::uint64_t>(p.x);
    }
    return static_cast<std::uint64_t>(score.points().back().x);
}

} // namespace

BufferProbe
runBufferProber(Driver &drv, const BufferProberParams &p)
{
    BufferProbe out;

    auto sweep = logSweep(p.minRegion, p.maxRegion);

    // ---- Capacity detection: latency-mode pointer chasing -------
    for (std::uint64_t region : sweep) {
        PtrChaseParams pc;
        pc.base = p.base;
        pc.regionBytes = region;
        pc.blockBytes = 64;
        pc.warmupLines = p.warmupLines;
        pc.measureLines = p.measureLines;
        pc.seed = region;
        auto ld = ptrChase(drv, pc);
        out.loadCurve.add(static_cast<double>(region), ld.nsPerLine);

        pc.writeMode = true;
        auto st = ptrChase(drv, pc);
        out.storeCurve.add(static_cast<double>(region), st.nsPerLine);
        drv.fence();
    }

    // 256B-block variant (Fig 5b): same sweep from 256B up.
    for (std::uint64_t region : sweep) {
        if (region < 256)
            continue;
        PtrChaseParams pc;
        pc.base = p.base;
        pc.regionBytes = region;
        pc.blockBytes = 256;
        pc.warmupLines = p.warmupLines;
        pc.measureLines = p.measureLines;
        pc.seed = region + 7;
        auto ld = ptrChase(drv, pc);
        out.load256Curve.add(static_cast<double>(region),
                             ld.nsPerLine);
        pc.writeMode = true;
        auto st = ptrChase(drv, pc);
        out.store256Curve.add(static_cast<double>(region),
                              st.nsPerLine);
        drv.fence();
    }

    auto rd_infl = out.loadCurve.findInflections(p.inflectionThreshold);
    auto wr_infl =
        out.storeCurve.findInflections(p.inflectionThreshold);
    for (double x : rd_infl)
        out.readBufferCapacities.push_back(roundPow2(x));
    for (double x : wr_infl)
        out.writeQueueCapacities.push_back(roundPow2(x));
    out.levelLatenciesNs = out.loadCurve.segmentLevels(rd_infl);

    std::uint64_t cap_l1 = out.readBufferCapacities.empty()
                               ? (16ull << 10)
                               : out.readBufferCapacities.front();
    std::uint64_t cap_l2 = out.readBufferCapacities.size() > 1
                               ? out.readBufferCapacities[1]
                               : (16ull << 20);

    // ---- RaW hierarchy test (Fig 5c) ------------------------------
    for (std::uint64_t region : sweep) {
        if (region > (cap_l2 * 4) || region < 64)
            continue;
        auto raw = readAfterWrite(drv, p.base, region, 64, region);
        double sum =
            out.loadCurve.valueAt(static_cast<double>(region)) +
            out.storeCurve.valueAt(static_cast<double>(region));
        out.rawCurve.add(static_cast<double>(region),
                         raw.rawNsPerLine);
        out.rwSumCurve.add(static_cast<double>(region), sum);
        drv.fence();
    }
    // Inclusive if there is no parallel-fast-forward speedup at the
    // L2 working set: RaW stays at or above the independent R+W sum.
    double raw_l2 = out.rawCurve.valueAt(
        static_cast<double>(cap_l2) / 2.0);
    double sum_l2 = out.rwSumCurve.valueAt(
        static_cast<double>(cap_l2) / 2.0);
    out.inclusiveHierarchy = raw_l2 >= 0.85 * sum_l2;

    // ---- Read amplification (Fig 6a): bandwidth-mode chasing ----
    std::vector<std::uint64_t> block_sweep = {64,  128,  256, 512,
                                              1024, 2048, 4096};
    auto amp_point = [&](std::uint64_t fit_region,
                         std::uint64_t ov_region,
                         std::uint64_t block) {
        PtrChaseParams pc;
        pc.base = p.base;
        pc.blockBytes = static_cast<std::uint32_t>(block);
        pc.mlp = 8;
        pc.warmupLines = 6000;
        pc.measureLines = 4000;
        pc.regionBytes = fit_region;
        pc.seed = block;
        double fit = ptrChase(drv, pc).nsPerLine;
        pc.regionBytes = ov_region;
        double ov = ptrChase(drv, pc).nsPerLine;
        return fit > 0 ? ov / fit : 0.0;
    };

    for (std::uint64_t block : block_sweep) {
        double s1 = amp_point(cap_l1 / 2,
                              std::min(cap_l1 * 4, cap_l2 / 4), block);
        out.readAmpL1.add(static_cast<double>(block), s1);
        double s2 = amp_point(cap_l2 / 2, cap_l2 * 4, block);
        out.readAmpL2.add(static_cast<double>(block), s2);
    }
    out.readEntrySizeL1 = ampKnee(out.readAmpL1);
    out.readEntrySizeL2 = ampKnee(out.readAmpL2);

    // ---- Write amplification (Fig 6b): fence-per-block variant --
    std::uint64_t wq_l1 = out.writeQueueCapacities.empty()
                              ? 512
                              : out.writeQueueCapacities.front();
    std::uint64_t wq_l2 = out.writeQueueCapacities.size() > 1
                              ? out.writeQueueCapacities[1]
                              : (4ull << 10);
    auto wamp_point = [&](std::uint64_t fit_region,
                          std::uint64_t ov_region,
                          std::uint64_t block) {
        auto run = [&](std::uint64_t region) {
            auto order = chaseOrder(p.base, region,
                                    static_cast<std::uint32_t>(block),
                                    512, block + region);
            // Warm.
            for (std::size_t i = 0; i < order.size() / 2; ++i)
                drv.writeBlock(order[i],
                               static_cast<std::uint32_t>(block));
            drv.fence();
            Tick start = drv.now();
            std::uint64_t lines = 0;
            for (Addr a : order) {
                drv.writeBlock(a, static_cast<std::uint32_t>(block));
                drv.fence();
                lines += block / cacheLineSize;
            }
            return ticksToNs(drv.now() - start) /
                   static_cast<double>(lines);
        };
        double fit = run(fit_region);
        double ov = run(ov_region);
        return fit > 0 ? ov / fit : 0.0;
    };

    for (std::uint64_t block : block_sweep) {
        if (block > wq_l2)
            continue;
        double s1 = wamp_point(wq_l1 / 2, wq_l1 * 4, block);
        out.writeAmpWpq.add(static_cast<double>(block), s1);
        double s2 = wamp_point(wq_l2 / 2, wq_l2 * 4, block);
        out.writeAmpLsq.add(static_cast<double>(block), s2);
    }

    return out;
}

PolicyProbe
runPolicyProber(Driver &drv, const PolicyProberParams &p)
{
    PolicyProbe out;

    // ---- Migration latency and frequency (Fig 7b) ----------------
    auto ow = overwrite(drv, p.base, 256, p.overwriteIterations);
    out.overwriteIterationNs = ow.iterationNs;
    out.normalWriteNs = ow.medianNs;

    std::vector<std::size_t> tail_idx;
    double tail_sum = 0;
    for (std::size_t i = 0; i < ow.iterationNs.size(); ++i) {
        if (ow.iterationNs[i] > p.tailThreshold * ow.medianNs) {
            tail_idx.push_back(i);
            tail_sum += ow.iterationNs[i];
        }
    }
    if (!tail_idx.empty()) {
        out.tailLatencyUs =
            tail_sum / static_cast<double>(tail_idx.size()) / 1000.0;
        if (tail_idx.size() > 1) {
            double interval_sum = 0;
            for (std::size_t i = 1; i < tail_idx.size(); ++i)
                interval_sum += static_cast<double>(tail_idx[i] -
                                                    tail_idx[i - 1]);
            out.tailIntervalWrites =
                interval_sum / static_cast<double>(tail_idx.size() - 1);
        }
    }

    // ---- Wear granularity (Fig 7c) --------------------------------
    // Offset the base so power-of-two regions straddle wear blocks
    // the way an arbitrary software allocation would.
    std::size_t point = 0;
    double first_ratio = -1;
    for (std::uint64_t region : p.tailRegions) {
        Addr base = p.base + (1ull << 30) +
                    (static_cast<Addr>(point) << 26) + (32ull << 10);
        std::uint64_t iters =
            std::max<std::uint64_t>(p.tailSweepBytes / region, 4);
        auto sweep_ow = overwrite(drv, base, region, iters);
        std::uint64_t tails = 0;
        for (double v : sweep_ow.iterationNs) {
            if (v > p.tailThreshold * sweep_ow.medianNs)
                ++tails;
        }
        std::uint64_t writes_256 =
            iters * std::max<std::uint64_t>(region / 256, 1);
        double ratio = writes_256
                           ? static_cast<double>(tails) * 1000.0 /
                                 static_cast<double>(writes_256)
                           : 0;
        out.tailRatioCurve.add(static_cast<double>(region), ratio);
        if (first_ratio < 0)
            first_ratio = ratio;
        if (out.wearBlockSize == 0 && first_ratio > 0 &&
            ratio < 0.2 * first_ratio) {
            out.wearBlockSize = region;
        }
        ++point;
    }

    return out;
}

void
runInterleaveProbe(Driver &interleaved, Driver &single,
                   PolicyProbe &out, std::uint64_t max_bytes)
{
    // Deep store buffer so a fresh DIMM's WPQ can absorb a burst
    // while the previous DIMM is still draining -- the overlap that
    // makes interleaving visible to single-thread sequential writes.
    auto measure = [](Driver &d, std::uint64_t bytes) {
        std::vector<Addr> addrs;
        for (Addr a = 0; a < bytes; a += cacheLineSize)
            addrs.push_back(a);
        Tick t = d.streamWrites(addrs, 32, 3.0);
        d.fence();
        return ticksToNs(t) / 1000.0; // us
    };

    std::uint64_t divergence = 0;
    for (std::uint64_t bytes = 512; bytes <= max_bytes; bytes += 512) {
        double t_int = measure(interleaved, bytes);
        double t_one = measure(single, bytes);
        out.seqWriteInterleaved.add(static_cast<double>(bytes), t_int);
        out.seqWriteSingle.add(static_cast<double>(bytes), t_one);
        if (divergence == 0 && t_one > 1.15 * t_int)
            divergence = bytes;
    }
    // The largest block written to a single DIMM before striping
    // helps is the interleave granularity.
    if (divergence > 512)
        out.interleaveGranularity = roundPow2(
            static_cast<double>(divergence - 512));
}

PerfProbe
runPerfProber(Driver &drv, const BufferProbe &buffers, Addr base)
{
    PerfProbe out;

    std::uint64_t seq_lines = 32768;
    out.seqReadGbps =
        stride(drv, base, seq_lines, cacheLineSize, false, 16)
            .gbPerSec;
    out.seqWriteGbps =
        stride(drv, base, seq_lines, cacheLineSize, true, 16).gbPerSec;
    drv.fence();

    // Random: one line per 4KB page over a large span defeats every
    // buffer level.
    std::uint64_t span_pages = 16384;
    auto order = chaseOrder(base, span_pages * 4096, 4096, 16384, 99);
    Tick t = drv.streamReads(order, 16);
    double bytes = static_cast<double>(order.size()) * cacheLineSize;
    out.randReadGbps = bytes / (ticksToNs(t) * 1e-9) / 1e9;
    t = drv.streamWrites(order, 16);
    drv.fence();
    out.randWriteGbps = bytes / (ticksToNs(t) * 1e-9) / 1e9;

    out.levelLatenciesNs = buffers.levelLatenciesNs;
    return out;
}

} // namespace vans::lens
