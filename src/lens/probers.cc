#include "lens/probers.hh"

#include <algorithm>
#include <cmath>

#include "common/logging.hh"

namespace vans::lens
{

namespace
{

/** Round to the nearest power of two (for reporting sizes). */
std::uint64_t
roundPow2(double v)
{
    if (v <= 1)
        return 1;
    double l = std::log2(v);
    return 1ull << static_cast<unsigned>(std::lround(l));
}

/**
 * Knee of a declining score curve: the first x whose score is within
 * @p slack of the curve's minimum. This is the operational "score
 * drops to one" rule with robustness to constant offsets.
 */
std::uint64_t
ampKnee(const Curve &score, double slack = 0.10)
{
    if (score.empty())
        return 0;
    double lo = score.minY();
    for (const auto &p : score.points()) {
        if (p.y <= lo * (1.0 + slack))
            return static_cast<std::uint64_t>(p.x);
    }
    return static_cast<std::uint64_t>(score.points().back().x);
}

/** Build a fresh world from @p factory and run @p fn's measurements
 *  in it. The world is torn down when the point finishes. */
template <typename Fn>
auto
withFreshSystem(const SystemFactory &factory, Fn &&fn)
{
    EventQueue eq;
    auto sys = factory(eq);
    Driver drv(*sys);
    return fn(drv);
}

/**
 * Shared read-only warm phase for forked sweeps: one touch per 4KB
 * page over each span, streamed with moderate overlap. This restores
 * the translation/buffer residency a long-running serial sweep
 * leaves behind, and because it is read-only it leaves the wear
 * state untouched -- every forked point still starts from virgin
 * wear counters, exactly like the cold reference run.
 */
void
warmCoverage(MemorySystem &sys,
             const std::vector<std::pair<Addr, std::uint64_t>> &spans)
{
    Driver drv(sys);
    std::vector<Addr> touch;
    for (const auto &[base, bytes] : spans) {
        for (Addr a = alignDown(base, 4096); a < base + bytes;
             a += 4096)
            touch.push_back(a);
    }
    drv.streamReads(touch, 16);
    drv.fence();
}

// ---- Per-point measurement bodies ---------------------------------
//
// Each function below is one self-contained sweep point, shared by
// the serial (one warm driver, points in order) and parallel (fresh
// system per point) prober paths, so the two paths cannot drift.

/** One latency-sweep point: dependent-load and store ns/CL. */
struct LatPoint
{
    double ld = 0;
    double st = 0;
};

LatPoint
latencyPoint(Driver &drv, const BufferProberParams &p,
             std::uint64_t region, std::uint32_t block,
             std::uint64_t seed, bool coverage_warm = false)
{
    PtrChaseParams pc;
    pc.base = p.base;
    pc.regionBytes = region;
    pc.blockBytes = block;
    pc.warmupLines = p.warmupLines;
    pc.measureLines = p.measureLines;
    pc.seed = seed;
    pc.coverageWarm = coverage_warm;
    LatPoint out;
    out.ld = ptrChase(drv, pc).nsPerLine;
    pc.writeMode = true;
    out.st = ptrChase(drv, pc).nsPerLine;
    drv.fence();
    return out;
}

/** One RaW point: read-after-write roundtrip ns/CL. */
double
rawPoint(Driver &drv, Addr base, std::uint64_t region)
{
    auto raw = readAfterWrite(drv, base, region, 64, region);
    drv.fence();
    return raw.rawNsPerLine;
}

/** One read-amplification point: overflow/fit latency ratio. */
double
readAmpPoint(Driver &drv, Addr base, std::uint64_t fit_region,
             std::uint64_t ov_region, std::uint64_t block,
             bool coverage_warm = false)
{
    PtrChaseParams pc;
    pc.base = base;
    pc.blockBytes = static_cast<std::uint32_t>(block);
    pc.mlp = 8;
    pc.warmupLines = 6000;
    pc.measureLines = 4000;
    // Warm the fit run only: a fitting region is resident at steady
    // state, while the overflow run's misses ARE the signal.
    pc.coverageWarm = coverage_warm;
    pc.regionBytes = fit_region;
    pc.seed = block;
    double fit = ptrChase(drv, pc).nsPerLine;
    pc.coverageWarm = false;
    pc.regionBytes = ov_region;
    double ov = ptrChase(drv, pc).nsPerLine;
    return fit > 0 ? ov / fit : 0.0;
}

/** One write-amplification point (fence-per-block variant). */
double
writeAmpPoint(Driver &drv, Addr base, std::uint64_t fit_region,
              std::uint64_t ov_region, std::uint64_t block,
              bool coverage_warm = false)
{
    auto run = [&](std::uint64_t region, bool read_warm) {
        auto order = chaseOrder(base, region,
                                static_cast<std::uint32_t>(block),
                                512, block + region);
        if (read_warm) {
            // A fitting region is resident in the combining buffers
            // at steady state, so sub-granule stores hit instead of
            // paying a media read-modify-write. Populate them with a
            // read pass; the overflow run stays cold -- its RMWs are
            // the amplification signal.
            for (Addr a : order)
                drv.readBlock(a, static_cast<std::uint32_t>(block));
            drv.fence();
        }
        // Warm.
        for (std::size_t i = 0; i < order.size() / 2; ++i)
            drv.writeBlock(order[i],
                           static_cast<std::uint32_t>(block));
        drv.fence();
        Tick start = drv.now();
        std::uint64_t lines = 0;
        for (Addr a : order) {
            drv.writeBlock(a, static_cast<std::uint32_t>(block));
            drv.fence();
            lines += block / cacheLineSize;
        }
        return ticksToNs(drv.now() - start) /
               static_cast<double>(lines);
    };
    double fit = run(fit_region, coverage_warm);
    double ov = run(ov_region, false);
    return fit > 0 ? ov / fit : 0.0;
}

/** Base of wear-granularity point @p point: offset so power-of-two
 *  regions straddle wear blocks the way an arbitrary software
 *  allocation would. */
Addr
tailBase(const PolicyProberParams &p, std::size_t point)
{
    return p.base + (1ull << 30) +
           (static_cast<Addr>(point) << 26) + (32ull << 10);
}

/** One wear-granularity point (Fig 7c): tails per kilo-write. */
double
tailRatioPoint(Driver &drv, const PolicyProberParams &p,
               std::uint64_t region, std::size_t point)
{
    Addr base = tailBase(p, point);
    std::uint64_t iters =
        std::max<std::uint64_t>(p.tailSweepBytes / region, 4);
    auto sweep_ow = overwrite(drv, base, region, iters);
    std::uint64_t tails = 0;
    for (double v : sweep_ow.iterationNs) {
        if (v > p.tailThreshold * sweep_ow.medianNs)
            ++tails;
    }
    std::uint64_t writes_256 =
        iters * std::max<std::uint64_t>(region / 256, 1);
    return writes_256 ? static_cast<double>(tails) * 1000.0 /
                            static_cast<double>(writes_256)
                      : 0;
}

/** Migration latency/frequency analysis on the overwrite series. */
void
analyzeOverwriteTail(Driver &drv, const PolicyProberParams &p,
                     PolicyProbe &out)
{
    auto ow = overwrite(drv, p.base, 256, p.overwriteIterations);
    out.overwriteIterationNs = ow.iterationNs;
    out.normalWriteNs = ow.medianNs;

    std::vector<std::size_t> tail_idx;
    double tail_sum = 0;
    for (std::size_t i = 0; i < ow.iterationNs.size(); ++i) {
        if (ow.iterationNs[i] > p.tailThreshold * ow.medianNs) {
            tail_idx.push_back(i);
            tail_sum += ow.iterationNs[i];
        }
    }
    if (!tail_idx.empty()) {
        out.tailLatencyUs =
            tail_sum / static_cast<double>(tail_idx.size()) / 1000.0;
        if (tail_idx.size() > 1) {
            double interval_sum = 0;
            for (std::size_t i = 1; i < tail_idx.size(); ++i)
                interval_sum += static_cast<double>(tail_idx[i] -
                                                    tail_idx[i - 1]);
            out.tailIntervalWrites =
                interval_sum / static_cast<double>(tail_idx.size() - 1);
        }
    }
}

/** Sequential-write execution time in us (interleave detector). */
double
seqWritePoint(Driver &d, std::uint64_t bytes)
{
    // Deep store buffer so a fresh DIMM's WPQ can absorb a burst
    // while the previous DIMM is still draining -- the overlap that
    // makes interleaving visible to single-thread sequential writes.
    std::vector<Addr> addrs;
    for (Addr a = 0; a < bytes; a += cacheLineSize)
        addrs.push_back(a);
    Tick t = d.streamWrites(addrs, 32, 3.0);
    d.fence();
    return ticksToNs(t) / 1000.0; // us
}

// ---- Analysis shared by the serial and parallel paths -------------

/** Fill capacities/latencies/entry sizes from the collected curves. */
void
finishBufferAnalysis(BufferProbe &out, const BufferProberParams &p)
{
    auto rd_infl = out.loadCurve.findInflections(p.inflectionThreshold);
    auto wr_infl =
        out.storeCurve.findInflections(p.inflectionThreshold);
    for (double x : rd_infl)
        out.readBufferCapacities.push_back(roundPow2(x));
    for (double x : wr_infl)
        out.writeQueueCapacities.push_back(roundPow2(x));
    out.levelLatenciesNs = out.loadCurve.segmentLevels(rd_infl);
}

/** Inclusive if there is no parallel-fast-forward speedup at the
 *  L2 working set: RaW stays at or above the independent R+W sum. */
void
finishRawAnalysis(BufferProbe &out, std::uint64_t cap_l2)
{
    double raw_l2 = out.rawCurve.valueAt(
        static_cast<double>(cap_l2) / 2.0);
    double sum_l2 = out.rwSumCurve.valueAt(
        static_cast<double>(cap_l2) / 2.0);
    out.inclusiveHierarchy = raw_l2 >= 0.85 * sum_l2;
}

/** Detected L1/L2 read capacities with the standard fallbacks. */
std::pair<std::uint64_t, std::uint64_t>
readCaps(const BufferProbe &out)
{
    std::uint64_t cap_l1 = out.readBufferCapacities.empty()
                               ? (16ull << 10)
                               : out.readBufferCapacities.front();
    std::uint64_t cap_l2 = out.readBufferCapacities.size() > 1
                               ? out.readBufferCapacities[1]
                               : (16ull << 20);
    return {cap_l1, cap_l2};
}

/** Detected L1/L2 write-queue capacities with fallbacks. */
std::pair<std::uint64_t, std::uint64_t>
writeCaps(const BufferProbe &out)
{
    std::uint64_t wq_l1 = out.writeQueueCapacities.empty()
                              ? 512
                              : out.writeQueueCapacities.front();
    std::uint64_t wq_l2 = out.writeQueueCapacities.size() > 1
                              ? out.writeQueueCapacities[1]
                              : (4ull << 10);
    return {wq_l1, wq_l2};
}

/** Scan the collected tail ratios for the wear-block collapse. */
void
finishTailAnalysis(PolicyProbe &out)
{
    double first_ratio = -1;
    for (const auto &pt : out.tailRatioCurve.points()) {
        if (first_ratio < 0)
            first_ratio = pt.y;
        if (out.wearBlockSize == 0 && first_ratio > 0 &&
            pt.y < 0.2 * first_ratio) {
            out.wearBlockSize = static_cast<std::uint64_t>(pt.x);
        }
    }
}

/** The largest block written to a single DIMM before striping
 *  helps is the interleave granularity. */
void
finishInterleaveAnalysis(PolicyProbe &out)
{
    std::uint64_t divergence = 0;
    for (std::size_t i = 0; i < out.seqWriteSingle.size(); ++i) {
        double t_int = out.seqWriteInterleaved[i].y;
        double t_one = out.seqWriteSingle[i].y;
        if (divergence == 0 && t_one > 1.15 * t_int)
            divergence =
                static_cast<std::uint64_t>(out.seqWriteSingle[i].x);
    }
    if (divergence > 512)
        out.interleaveGranularity = roundPow2(
            static_cast<double>(divergence - 512));
}

constexpr std::uint64_t ampBlockSweep[] = {64,   128,  256, 512,
                                           1024, 2048, 4096};

} // namespace

BufferProbe
runBufferProber(Driver &drv, const BufferProberParams &p)
{
    BufferProbe out;

    auto sweep = logSweep(p.minRegion, p.maxRegion);

    // ---- Capacity detection: latency-mode pointer chasing -------
    for (std::uint64_t region : sweep) {
        auto pt = latencyPoint(drv, p, region, 64, region);
        out.loadCurve.add(static_cast<double>(region), pt.ld);
        out.storeCurve.add(static_cast<double>(region), pt.st);
    }

    // 256B-block variant (Fig 5b): same sweep from 256B up.
    for (std::uint64_t region : sweep) {
        if (region < 256)
            continue;
        auto pt = latencyPoint(drv, p, region, 256, region + 7);
        out.load256Curve.add(static_cast<double>(region), pt.ld);
        out.store256Curve.add(static_cast<double>(region), pt.st);
    }

    finishBufferAnalysis(out, p);
    auto [cap_l1, cap_l2] = readCaps(out);

    // ---- RaW hierarchy test (Fig 5c) ------------------------------
    for (std::uint64_t region : sweep) {
        if (region > (cap_l2 * 4) || region < 64)
            continue;
        double raw_ns = rawPoint(drv, p.base, region);
        double sum =
            out.loadCurve.valueAt(static_cast<double>(region)) +
            out.storeCurve.valueAt(static_cast<double>(region));
        out.rawCurve.add(static_cast<double>(region), raw_ns);
        out.rwSumCurve.add(static_cast<double>(region), sum);
    }
    finishRawAnalysis(out, cap_l2);

    // ---- Read amplification (Fig 6a): bandwidth-mode chasing ----
    for (std::uint64_t block : ampBlockSweep) {
        double s1 = readAmpPoint(drv, p.base, cap_l1 / 2,
                                 std::min(cap_l1 * 4, cap_l2 / 4),
                                 block);
        out.readAmpL1.add(static_cast<double>(block), s1);
        double s2 = readAmpPoint(drv, p.base, cap_l2 / 2, cap_l2 * 4,
                                 block);
        out.readAmpL2.add(static_cast<double>(block), s2);
    }
    out.readEntrySizeL1 = ampKnee(out.readAmpL1);
    out.readEntrySizeL2 = ampKnee(out.readAmpL2);

    // ---- Write amplification (Fig 6b): fence-per-block variant --
    auto [wq_l1, wq_l2] = writeCaps(out);
    for (std::uint64_t block : ampBlockSweep) {
        if (block > wq_l2)
            continue;
        double s1 =
            writeAmpPoint(drv, p.base, wq_l1 / 2, wq_l1 * 4, block);
        out.writeAmpWpq.add(static_cast<double>(block), s1);
        double s2 =
            writeAmpPoint(drv, p.base, wq_l2 / 2, wq_l2 * 4, block);
        out.writeAmpLsq.add(static_cast<double>(block), s2);
    }

    return out;
}

BufferProbe
runBufferProber(const SystemFactory &factory,
                const BufferProberParams &p, const SweepRunner &sweep)
{
    BufferProbe out;

    auto regions = logSweep(p.minRegion, p.maxRegion);

    // Warm once: page-granular read coverage of the whole sweep
    // span, captured at quiescence. Every stage below forks its
    // points from this one image in O(state) instead of re-warming
    // a fresh world per point (cold fallback when the system cannot
    // snapshot).
    auto ws = sweep.warmOnce(factory, [&p](MemorySystem &sys) {
        warmCoverage(sys, {{p.base, p.maxRegion}});
    });

    // ---- Stage 1: both latency sweeps as one flat point batch ----
    struct LatDesc
    {
        std::uint64_t region;
        std::uint32_t block;
        std::uint64_t seed;
    };
    std::vector<LatDesc> lat;
    for (std::uint64_t region : regions)
        lat.push_back({region, 64, region});
    for (std::uint64_t region : regions) {
        if (region >= 256)
            lat.push_back({region, 256, region + 7});
    }

    auto lat_res = sweep.mapForked<LatPoint>(
        ws, lat.size(), [&](MemorySystem &sys, std::size_t i) {
            Driver drv(sys);
            // coverageWarm on top of the shared image: region-local
            // residency is still each point's own.
            return latencyPoint(drv, p, lat[i].region, lat[i].block,
                                lat[i].seed, true);
        });
    for (std::size_t i = 0; i < lat.size(); ++i) {
        double x = static_cast<double>(lat[i].region);
        if (lat[i].block == 64) {
            out.loadCurve.add(x, lat_res[i].ld);
            out.storeCurve.add(x, lat_res[i].st);
        } else {
            out.load256Curve.add(x, lat_res[i].ld);
            out.store256Curve.add(x, lat_res[i].st);
        }
    }

    finishBufferAnalysis(out, p);
    auto [cap_l1, cap_l2] = readCaps(out);

    // ---- Stage 2: RaW sweep (needs cap_l2 from stage 1) ----------
    std::vector<std::uint64_t> raw_regions;
    for (std::uint64_t region : regions) {
        if (region <= (cap_l2 * 4) && region >= 64)
            raw_regions.push_back(region);
    }
    auto raw_res = sweep.mapForked<double>(
        ws, raw_regions.size(), [&](MemorySystem &sys, std::size_t i) {
            Driver drv(sys);
            return rawPoint(drv, p.base, raw_regions[i]);
        });
    for (std::size_t i = 0; i < raw_regions.size(); ++i) {
        double x = static_cast<double>(raw_regions[i]);
        out.rawCurve.add(x, raw_res[i]);
        out.rwSumCurve.add(x, out.loadCurve.valueAt(x) +
                                  out.storeCurve.valueAt(x));
    }
    finishRawAnalysis(out, cap_l2);

    // ---- Stage 3: read + write amplification points --------------
    auto [wq_l1, wq_l2] = writeCaps(out);
    struct AmpDesc
    {
        bool write;
        bool level2;
        std::uint64_t block;
    };
    std::vector<AmpDesc> amps;
    for (std::uint64_t block : ampBlockSweep) {
        amps.push_back({false, false, block});
        amps.push_back({false, true, block});
    }
    for (std::uint64_t block : ampBlockSweep) {
        if (block <= wq_l2) {
            amps.push_back({true, false, block});
            amps.push_back({true, true, block});
        }
    }
    auto amp_res = sweep.mapForked<double>(
        ws, amps.size(),
        [&, cl1 = cap_l1, cl2 = cap_l2, wl1 = wq_l1,
         wl2 = wq_l2](MemorySystem &sys, std::size_t i) {
            const AmpDesc &d = amps[i];
            Driver drv(sys);
            if (d.write) {
                std::uint64_t fit = d.level2 ? wl2 / 2 : wl1 / 2;
                std::uint64_t ov = d.level2 ? wl2 * 4 : wl1 * 4;
                return writeAmpPoint(drv, p.base, fit, ov, d.block,
                                     true);
            }
            std::uint64_t fit = d.level2 ? cl2 / 2 : cl1 / 2;
            std::uint64_t ov =
                d.level2 ? cl2 * 4 : std::min(cl1 * 4, cl2 / 4);
            return readAmpPoint(drv, p.base, fit, ov, d.block, true);
        });
    for (std::size_t i = 0; i < amps.size(); ++i) {
        const AmpDesc &d = amps[i];
        double x = static_cast<double>(d.block);
        Curve &c = d.write ? (d.level2 ? out.writeAmpLsq
                                       : out.writeAmpWpq)
                           : (d.level2 ? out.readAmpL2
                                       : out.readAmpL1);
        c.add(x, amp_res[i]);
    }
    out.readEntrySizeL1 = ampKnee(out.readAmpL1);
    out.readEntrySizeL2 = ampKnee(out.readAmpL2);

    return out;
}

PolicyProbe
runPolicyProber(Driver &drv, const PolicyProberParams &p)
{
    PolicyProbe out;

    // ---- Migration latency and frequency (Fig 7b) ----------------
    analyzeOverwriteTail(drv, p, out);

    // ---- Wear granularity (Fig 7c) --------------------------------
    std::size_t point = 0;
    for (std::uint64_t region : p.tailRegions) {
        double ratio = tailRatioPoint(drv, p, region, point);
        out.tailRatioCurve.add(static_cast<double>(region), ratio);
        ++point;
    }
    finishTailAnalysis(out);

    return out;
}

PolicyProbe
runPolicyProber(const SystemFactory &factory,
                const PolicyProberParams &p, const SweepRunner &sweep)
{
    PolicyProbe out;

    // Warm once: read coverage of every region the points will
    // overwrite. Read-only, so the forked points' wear counters
    // start from zero exactly as in the cold run -- the migration
    // tails are the signal and must not be pre-aged.
    auto ws = sweep.warmOnce(factory, [&p](MemorySystem &sys) {
        std::vector<std::pair<Addr, std::uint64_t>> spans;
        spans.emplace_back(p.base, 4096);
        for (std::size_t i = 0; i < p.tailRegions.size(); ++i)
            spans.emplace_back(tailBase(p, i), p.tailRegions[i]);
        warmCoverage(sys, spans);
    });

    // The overwrite series is one long dependent run; the region
    // sweep fans out. Run the former as point 0 alongside the sweep.
    auto ratios = sweep.mapForked<double>(
        ws, p.tailRegions.size() + 1,
        [&](MemorySystem &sys, std::size_t i) {
            Driver drv(sys);
            if (i == 0) {
                analyzeOverwriteTail(drv, p, out);
                return 0.0;
            }
            return tailRatioPoint(drv, p, p.tailRegions[i - 1],
                                  i - 1);
        });
    for (std::size_t i = 0; i < p.tailRegions.size(); ++i) {
        out.tailRatioCurve.add(static_cast<double>(p.tailRegions[i]),
                               ratios[i + 1]);
    }
    finishTailAnalysis(out);

    return out;
}

void
runInterleaveProbe(Driver &interleaved, Driver &single,
                   PolicyProbe &out, std::uint64_t max_bytes)
{
    for (std::uint64_t bytes = 512; bytes <= max_bytes; bytes += 512) {
        double t_int = seqWritePoint(interleaved, bytes);
        double t_one = seqWritePoint(single, bytes);
        out.seqWriteInterleaved.add(static_cast<double>(bytes), t_int);
        out.seqWriteSingle.add(static_cast<double>(bytes), t_one);
    }
    finishInterleaveAnalysis(out);
}

void
runInterleaveProbe(const SystemFactory &interleavedFactory,
                   const SystemFactory &singleFactory,
                   PolicyProbe &out, std::uint64_t max_bytes,
                   const SweepRunner &sweep)
{
    std::vector<std::uint64_t> sizes;
    for (std::uint64_t bytes = 512; bytes <= max_bytes; bytes += 512)
        sizes.push_back(bytes);

    struct Pair
    {
        double interleaved = 0;
        double single = 0;
    };
    // Deliberately cold (no warm fork): the interleave detector's
    // signal is a fresh DIMM's WPQ absorbing a write burst, so every
    // point must start from untouched queues.
    auto res = sweep.map<Pair>(sizes.size(), [&](std::size_t i) {
        Pair pt;
        pt.interleaved =
            withFreshSystem(interleavedFactory, [&](Driver &d) {
                return seqWritePoint(d, sizes[i]);
            });
        pt.single = withFreshSystem(singleFactory, [&](Driver &d) {
            return seqWritePoint(d, sizes[i]);
        });
        return pt;
    });
    for (std::size_t i = 0; i < sizes.size(); ++i) {
        out.seqWriteInterleaved.add(static_cast<double>(sizes[i]),
                                    res[i].interleaved);
        out.seqWriteSingle.add(static_cast<double>(sizes[i]),
                               res[i].single);
    }
    finishInterleaveAnalysis(out);
}

PerfProbe
runPerfProber(Driver &drv, const BufferProbe &buffers, Addr base)
{
    PerfProbe out;

    std::uint64_t seq_lines = 32768;
    out.seqReadGbps =
        stride(drv, base, seq_lines, cacheLineSize, false, 16)
            .gbPerSec;
    out.seqWriteGbps =
        stride(drv, base, seq_lines, cacheLineSize, true, 16).gbPerSec;
    drv.fence();

    // Random: one line per 4KB page over a large span defeats every
    // buffer level.
    std::uint64_t span_pages = 16384;
    auto order = chaseOrder(base, span_pages * 4096, 4096, 16384, 99);
    Tick t = drv.streamReads(order, 16);
    double bytes = static_cast<double>(order.size()) * cacheLineSize;
    out.randReadGbps = bytes / (ticksToNs(t) * 1e-9) / 1e9;
    t = drv.streamWrites(order, 16);
    drv.fence();
    out.randWriteGbps = bytes / (ticksToNs(t) * 1e-9) / 1e9;

    out.levelLatenciesNs = buffers.levelLatenciesNs;
    return out;
}

} // namespace vans::lens
