/**
 * @file
 * The three LENS probers (paper section III-A): buffer, policy, and
 * performance. Each runs microbenchmarks against a black-box
 * MemorySystem and reverse engineers microarchitectural parameters
 * from the latency/bandwidth patterns alone.
 */

#ifndef VANS_LENS_PROBERS_HH
#define VANS_LENS_PROBERS_HH

#include <cstdint>
#include <string>
#include <vector>

#include "common/curve.hh"
#include "common/mem_system.hh"
#include "common/sweep.hh"
#include "lens/driver.hh"
#include "lens/microbench.hh"

namespace vans::lens
{

/** Everything the buffer prober reverse engineers. */
struct BufferProbe
{
    Curve loadCurve{"ld"};  ///< ns/CL vs region (64B block).
    Curve storeCurve{"st"}; ///< ns/CL vs region (64B block).
    Curve load256Curve{"ld-256"};
    Curve store256Curve{"st-256"};
    Curve rawCurve{"RaW"};
    Curve rwSumCurve{"R+W"};
    Curve readAmpL1{"rmw-amp"};  ///< Score vs block size.
    Curve readAmpL2{"ait-amp"};
    Curve writeAmpWpq{"wpq-amp"};
    Curve writeAmpLsq{"lsq-amp"};

    /** Detected read buffer capacities (inflections), small first. */
    std::vector<std::uint64_t> readBufferCapacities;
    /** Detected write queue capacities, small first. */
    std::vector<std::uint64_t> writeQueueCapacities;
    /** Detected entry sizes of the two read buffer levels. */
    std::uint64_t readEntrySizeL1 = 0;
    std::uint64_t readEntrySizeL2 = 0;
    /** True when RaW shows no parallel fast-forward speedup
     *  (=> multi-level inclusive hierarchy, paper Fig 5c). */
    bool inclusiveHierarchy = false;
    /** Latency plateau per read level, low level first (ns). */
    std::vector<double> levelLatenciesNs;
};

/** Buffer prober configuration. */
struct BufferProberParams
{
    Addr base = 0;
    std::uint64_t minRegion = 64;
    std::uint64_t maxRegion = 256ull << 20;
    double inflectionThreshold = 0.22;
    std::uint64_t warmupLines = 12000;
    std::uint64_t measureLines = 6000;
};

/** Runs the buffer-capacity / entry-size / hierarchy analysis. */
BufferProbe runBufferProber(Driver &drv, const BufferProberParams &p);

/**
 * Parallel variant: every sweep point runs against a fresh system
 * built by @p factory, fanned out by @p sweep. Results are collected
 * in point order and are bit-identical whatever the thread count
 * (SweepRunner(1) is the serial reference). Only usable against
 * simulated systems that can be cloned; the Driver& overload remains
 * for single-instance (hardware-like) targets.
 */
BufferProbe runBufferProber(const SystemFactory &factory,
                            const BufferProberParams &p,
                            const SweepRunner &sweep = SweepRunner{});

/** Everything the policy prober reverse engineers. */
struct PolicyProbe
{
    std::vector<double> overwriteIterationNs; ///< Fig 7b raw series.
    double normalWriteNs = 0;
    double tailLatencyUs = 0;       ///< Detected migration latency.
    double tailIntervalWrites = 0;  ///< Writes between migrations.
    Curve tailRatioCurve{"tail-ratio"}; ///< Fig 7c.
    std::uint64_t wearBlockSize = 0;
    Curve seqWriteInterleaved{"interleaved"};  ///< Fig 7a.
    Curve seqWriteSingle{"non-interleaved"};
    std::uint64_t interleaveGranularity = 0;
};

/** Policy prober configuration. */
struct PolicyProberParams
{
    Addr base = 1ull << 20;
    std::uint64_t overwriteIterations = 60000;
    double tailThreshold = 8.0; ///< x median = a tail.
    /** Region sizes for the wear-granularity sweep. */
    std::vector<std::uint64_t> tailRegions =
        {256, 1024, 8192, 65536, 262144, 524288};
    /** Total bytes written per tail-sweep point. */
    std::uint64_t tailSweepBytes = 24ull << 20;
};

/**
 * Runs the wear-leveling tail analysis on @p drv. The interleaving
 * analysis needs two machines (interleaved and not); it is exposed
 * separately below.
 */
PolicyProbe runPolicyProber(Driver &drv, const PolicyProberParams &p);

/** Parallel variant; see the BufferProbe factory overload. */
PolicyProbe runPolicyProber(const SystemFactory &factory,
                            const PolicyProberParams &p,
                            const SweepRunner &sweep = SweepRunner{});

/**
 * Interleave detector: measures sequential-write execution time vs
 * size on both systems and reports the granularity (paper Fig 7a).
 * Fills the interleave fields of @p out.
 */
void runInterleaveProbe(Driver &interleaved, Driver &single,
                        PolicyProbe &out,
                        std::uint64_t max_bytes = 16384);

/** Parallel variant: fresh interleaved + single systems per point. */
void runInterleaveProbe(const SystemFactory &interleavedFactory,
                        const SystemFactory &singleFactory,
                        PolicyProbe &out,
                        std::uint64_t max_bytes = 16384,
                        const SweepRunner &sweep = SweepRunner{});

/** Performance prober output: per-level bandwidth and latency. */
struct PerfProbe
{
    double seqReadGbps = 0;
    double seqWriteGbps = 0;
    double randReadGbps = 0;
    double randWriteGbps = 0;
    /** Estimated access latency of each read level (ns). */
    std::vector<double> levelLatenciesNs;
};

/** Runs bandwidth measurements + latency attribution. */
PerfProbe runPerfProber(Driver &drv, const BufferProbe &buffers,
                        Addr base = 0);

} // namespace vans::lens

#endif // VANS_LENS_PROBERS_HH
