#include "lens/report.hh"

#include <sstream>

#include "common/ascii_chart.hh"

namespace vans::lens
{

LensReport
runLens(Driver &drv, const LensParams &params)
{
    LensReport rep;
    rep.systemName = drv.memory().name();
    rep.buffers = runBufferProber(drv, params.buffer);
    if (params.runPolicy)
        rep.policy = runPolicyProber(drv, params.policy);
    if (params.runPerf)
        rep.perf = runPerfProber(drv, rep.buffers,
                                 params.buffer.base);
    return rep;
}

LensReport
runLens(const SystemFactory &factory, const LensParams &params,
        const SweepRunner &sweep)
{
    LensReport rep;
    rep.buffers = runBufferProber(factory, params.buffer, sweep);
    if (params.runPolicy)
        rep.policy = runPolicyProber(factory, params.policy, sweep);

    EventQueue eq;
    auto sys = factory(eq);
    rep.systemName = sys->name();
    if (params.runPerf) {
        Driver drv(*sys);
        rep.perf = runPerfProber(drv, rep.buffers,
                                 params.buffer.base);
    }
    return rep;
}

std::string
LensReport::summary() const
{
    std::ostringstream out;
    out << "LENS characterization of '" << systemName << "'\n";

    out << "  read buffer levels:";
    for (auto c : buffers.readBufferCapacities)
        out << ' ' << formatSize(c);
    out << '\n';

    out << "  write queue levels:";
    for (auto c : buffers.writeQueueCapacities)
        out << ' ' << formatSize(c);
    out << '\n';

    out << "  read entry sizes: L1=" << formatSize(
               buffers.readEntrySizeL1)
        << " L2=" << formatSize(buffers.readEntrySizeL2) << '\n';

    out << "  hierarchy: "
        << (buffers.inclusiveHierarchy ? "two-level inclusive"
                                       : "independent buffers")
        << '\n';

    out << "  level latencies (ns):";
    for (double l : buffers.levelLatenciesNs)
        out << ' ' << fmtDouble(l, 1);
    out << '\n';

    if (policy.tailLatencyUs > 0) {
        out << "  migration: tail=" << fmtDouble(policy.tailLatencyUs, 1)
            << "us every ~"
            << fmtDouble(policy.tailIntervalWrites, 0)
            << " writes, block="
            << formatSize(policy.wearBlockSize) << '\n';
    }
    if (policy.interleaveGranularity > 0) {
        out << "  interleave granularity: "
            << formatSize(policy.interleaveGranularity) << '\n';
    }

    out << "  bandwidth (GB/s): seq-rd="
        << fmtDouble(perf.seqReadGbps, 2)
        << " seq-wr=" << fmtDouble(perf.seqWriteGbps, 2)
        << " rand-rd=" << fmtDouble(perf.randReadGbps, 2)
        << " rand-wr=" << fmtDouble(perf.randWriteGbps, 2) << '\n';

    return out.str();
}

} // namespace vans::lens
