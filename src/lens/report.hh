/**
 * @file
 * Top-level LENS entry point: run all probers against a memory
 * system and assemble the reverse-engineered architecture report
 * (the right-hand side of the paper's Fig 4).
 */

#ifndef VANS_LENS_REPORT_HH
#define VANS_LENS_REPORT_HH

#include <string>

#include "lens/probers.hh"

namespace vans::lens
{

/** Complete LENS characterization of one memory system. */
struct LensReport
{
    std::string systemName;
    BufferProbe buffers;
    PolicyProbe policy;
    PerfProbe perf;

    /** Render a human-readable summary (Fig 4-style parameters). */
    std::string summary() const;
};

/** Knobs for a full LENS run. */
struct LensParams
{
    BufferProberParams buffer;
    PolicyProberParams policy;
    bool runPolicy = true;
    bool runPerf = true;
};

/** Run every prober against @p drv's memory system. */
LensReport runLens(Driver &drv, const LensParams &params = {});

/**
 * Parallel variant: probers fan their sweep points out across
 * @p sweep, one fresh factory-built system per point. Only valid
 * for cloneable (simulated) targets; results are bit-identical for
 * any thread count.
 */
LensReport runLens(const SystemFactory &factory,
                   const LensParams &params = {},
                   const SweepRunner &sweep = SweepRunner{});

} // namespace vans::lens

#endif // VANS_LENS_REPORT_HH
