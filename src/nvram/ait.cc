#include "nvram/ait.hh"

#include <vector>

#include "common/check.hh"
#include "common/logging.hh"
#include "common/snapshot.hh"
#include "common/trace_event.hh"

namespace vans::nvram
{

namespace
{

dram::DramGeometry
onDimmDramGeometry()
{
    dram::DramGeometry g;
    g.capacityBytes = 512ull << 20; // Table V: 512MB DDR4.
    g.rowBytes = 8192;
    return g;
}

} // namespace

Ait::Ait(EventQueue &eq, const NvramConfig &config,
         const std::string &name)
    : eventq(eq),
      cfg(config),
      media(eq, config),
      wear(eq, config),
      dram(eq, config.dramTiming, onDimmDramGeometry(),
           dram::SchedPolicy::FRFCFS, dram::MapScheme::RowBankCol,
           name + ".dram"),
      bufLru(config.aitBufEntries),
      tlc(tlcCapacity),
      statGroup(name)
{}

void
Ait::attachTracer(obs::TraceRecorder &rec,
                  const std::string &track_name)
{
    tracer = &rec;
    traceTrack = rec.track(track_name);
    lblMiss = rec.label("miss_fetch");
    lblStall = rec.label("wear_stall");
    media.attachTracer(rec, track_name + ".media");
    wear.attachTracer(rec, track_name + ".wear");
    dram.attachTracer(rec, track_name + ".dram");
}

Addr
Ait::bufferSlotAddr(Addr addr) const
{
    // Buffer slots occupy the bottom of the on-DIMM DRAM; the slot
    // index is derived from the page so repeated accesses map to
    // stable DRAM rows (the timing, not the content, matters).
    Addr page = pageOf(addr);
    Addr slot = (page / cfg.aitLineBytes) % cfg.aitBufEntries;
    return slot * cfg.aitLineBytes + (addr % cfg.aitLineBytes);
}

Addr
Ait::tableEntryAddr(Addr page) const
{
    // Table region sits above the buffer region in on-DIMM DRAM.
    Addr table_base =
        static_cast<Addr>(cfg.aitBufEntries) * cfg.aitLineBytes;
    Addr index = (page / cfg.aitLineBytes) % (1ull << 22);
    return table_base + index * cacheLineSize;
}

Addr
Ait::mediaAddrOf(Addr addr) const
{
    // Identity map: migrations move data between physical media
    // locations, but for timing purposes only the partition spread
    // matters, which the identity map preserves.
    return addr;
}

bool
Ait::tableCacheHit(Addr page)
{
    return tlc.touch(page);
}

void
Ait::tableCacheInsert(Addr page)
{
    if (tlc.contains(page))
        return;
    Addr evicted = 0;
    tlc.insert(page, evicted);
}

bool
Ait::bufferHit(Addr page)
{
    return bufLru.touch(page);
}

void
Ait::installPage(Addr page)
{
    if (bufLru.contains(page))
        return;
    // Write-through buffer: the victim is never dirty, drop it.
    Addr evicted = 0;
    if (bufLru.insert(page, evicted))
        statGroup.scalar("buf_evictions").inc();
    // The resident set is bounded by the 4096 x 4KB (16MB) on-DIMM
    // DRAM budget.
    VANS_AUDIT("ait", eventq.curTick(),
               bufLru.size() <= cfg.aitBufEntries,
               "buffer books diverged: lru %zu, cap %u",
               bufLru.size(), cfg.aitBufEntries);
}

void
Ait::read(Addr addr, DoneCallback done)
{
    Addr page = pageOf(addr);
    Tick tag_done = eventq.curTick() + nsToTicks(cfg.aitTagNs);
    statGroup.scalar("reads").inc();

    if (preTranslationFetch) {
        // One extra on-DIMM DRAM access fetches the Pre-translation
        // entry linked from the AIT entry (paper Fig 13b step 2-3).
        // The hook member is consulted again at completion time (it
        // is installed once at setup and never swapped mid-run).
        Addr pt_addr = tableEntryAddr(page) + 8;
        eventq.schedule(tag_done, [this, pt_addr, addr] {
            dram.access(pt_addr, false, cacheLineSize,
                        [this, addr](Tick t) {
                            if (preTranslationFetch)
                                preTranslationFetch(addr, t);
                        });
        });
    }

    if (bufferHit(page)) {
        statGroup.scalar("buf_hits").inc();
        // Even a buffer hit consults the translation entry (wear
        // records live there): one extra on-DIMM DRAM access unless
        // the translation cache has the page, then the 256B data
        // read.
        bool tlc_hit = tableCacheHit(page);
        eventq.schedule(tag_done, [this, addr, page, tlc_hit,
                                   done = std::move(done)]() mutable {
            if (tlc_hit) {
                dram.access(bufferSlotAddr(addr), false,
                            cfg.rmwLineBytes, std::move(done));
                return;
            }
            dram.access(tableEntryAddr(page), false, cacheLineSize,
                        [this, addr, page,
                         done = std::move(done)](Tick) mutable {
                            tableCacheInsert(page);
                            dram.access(bufferSlotAddr(addr), false,
                                        cfg.rmwLineBytes,
                                        std::move(done));
                        });
        });
        return;
    }

    statGroup.scalar("buf_misses").inc();
    Tick t0 = eventq.curTick();
    eventq.schedule(tag_done, [this, addr, page, t0,
                               done = std::move(done)]() mutable {
        startMissFetch(addr, page, t0, std::move(done));
    });
}

void
Ait::startMissFetch(Addr addr, Addr page, Tick t0, DoneCallback done)
{
    // Miss: translation lookup (DRAM read), then fetch the critical
    // chunk from media; the rest of the 4KB line fills in the
    // background while the requester proceeds. New misses throttle
    // when the fill engine backs up -- the media must actually
    // absorb 4KB per miss (this is the AIT read amplification).
    if (media.fillBacklog() > 24) {
        statGroup.scalar("fill_throttle").inc();
        eventq.scheduleAfter(
            nsToTicks(cfg.mediaReadNs),
            [this, addr, page, t0,
             done = std::move(done)]() mutable {
                startMissFetch(addr, page, t0, std::move(done));
            });
        return;
    }
    dram.access(
        tableEntryAddr(page), false, cacheLineSize,
        [this, addr, page, t0,
         done = std::move(done)](Tick t1) mutable {
            statGroup.average("miss_table_ns")
                .sample(ticksToNs(t1 - t0));
            tableCacheInsert(page);
            Addr crit = alignDown(mediaAddrOf(addr),
                                  cfg.mediaChunkBytes);
            media.readChunk(
                crit, [this, addr, page, t0, t1,
                       done = std::move(done)](Tick t) mutable {
                    statGroup.average("miss_crit_ns")
                        .sample(ticksToNs(t - t1));
                    if (tracer) [[unlikely]]
                        tracer->spanAddr(traceTrack, lblMiss, t0, t,
                                         addr);
                    installPage(page);
                    statGroup.scalar("media_fills").inc();
                    if (done)
                        done(t);
                    // Background fill of the remaining chunks,
                    // mirrored into the buffer slot with one
                    // row-friendly 4KB DRAM write once the last
                    // chunk lands. Demand reads outrank these
                    // writes at both the media and the DRAM
                    // controller, so the latency plateaus are
                    // unaffected while the fill bandwidth cost
                    // is real.
                    unsigned chunks = cfg.aitLineBytes /
                                      cfg.mediaChunkBytes;
                    Addr base = pageOf(mediaAddrOf(addr));
                    Addr crit_c = alignDown(mediaAddrOf(addr),
                                            cfg.mediaChunkBytes);
                    // simlint-allow(hotpath: one countdown cell per
                    // AIT miss, whose cost is already a media read;
                    // misses are bounded by the buffer miss rate,
                    // not the event rate)
                    auto left = std::make_shared<unsigned>(
                        chunks - 1);
                    for (unsigned i = 0; i < chunks; ++i) {
                        Addr c = base + static_cast<Addr>(i) *
                                            cfg.mediaChunkBytes;
                        if (c == crit_c)
                            continue;
                        media.readChunkBackground(
                            c, [this, page, left](Tick) {
                                if (--*left == 0) {
                                    dram.access(
                                        bufferSlotAddr(page),
                                        true, cfg.aitLineBytes,
                                        nullptr);
                                }
                            });
                    }
                });
        });
}

void
Ait::readForFill(Addr addr, DoneCallback done)
{
    Addr page = pageOf(addr);
    Tick tag_done = eventq.curTick() + nsToTicks(cfg.aitTagNs);
    statGroup.scalar("fill_reads").inc();

    if (bufferHit(page)) {
        statGroup.scalar("buf_hits").inc();
        bool tlc_hit = tableCacheHit(page);
        eventq.schedule(tag_done, [this, addr, page, tlc_hit,
                                   done = std::move(done)]() mutable {
            if (tlc_hit) {
                dram.access(bufferSlotAddr(addr), false,
                            cfg.rmwLineBytes, std::move(done));
                return;
            }
            dram.access(tableEntryAddr(page), false, cacheLineSize,
                        [this, addr, page,
                         done = std::move(done)](Tick) mutable {
                            tableCacheInsert(page);
                            dram.access(bufferSlotAddr(addr), false,
                                        cfg.rmwLineBytes,
                                        std::move(done));
                        });
        });
        return;
    }

    // No-allocate: one translation lookup plus a single media chunk.
    statGroup.scalar("buf_misses").inc();
    eventq.schedule(tag_done, [this, addr, page,
                               done = std::move(done)]() mutable {
        dram.access(tableEntryAddr(page), false, cacheLineSize,
                    [this, addr,
                     done = std::move(done)](Tick) mutable {
                        Addr chunk = alignDown(mediaAddrOf(addr),
                                               cfg.mediaChunkBytes);
                        media.readChunk(chunk, std::move(done));
                    });
    });
}

bool
Ait::canAcceptWrite() const
{
    return intakeCount < writeIntakeDepth;
}

void
Ait::intakePush(PendingWrite w)
{
    intakeRing[(intakeHead + intakeCount) % writeIntakeDepth] =
        std::move(w);
    ++intakeCount;
}

Ait::PendingWrite
Ait::intakePop()
{
    PendingWrite w = std::move(intakeRing[intakeHead]);
    intakeHead = (intakeHead + 1) % writeIntakeDepth;
    --intakeCount;
    return w;
}

void
Ait::acceptWrite(Addr addr, DoneCallback done)
{
    // The RMW buffer must probe canAcceptWrite first: the intake is
    // the bounded queue that turns media pressure into upstream
    // stalls instead of unbounded buffering.
    VANS_REQUIRE("ait", eventq.curTick(), canAcceptWrite(),
                 "write intake overflow (%zu queued, bound %zu)",
                 intakeCount, writeIntakeDepth);
    intakePush(PendingWrite{addr, std::move(done), eventq.curTick()});
    statGroup.scalar("writes").inc();
    if (!drainBusy)
        drainWrites();
}

void
Ait::drainWrites()
{
    if (intakeCount == 0) {
        drainBusy = false;
        return;
    }
    drainBusy = true;
    PendingWrite &head = intakeFront();
    Tick now = eventq.curTick();

    // Lazy cache (paper section V-C): absorbed writes skip both the
    // media write and the wear accounting.
    if (writeAbsorber && writeAbsorber(head.addr)) {
        PendingWrite w = intakePop();
        statGroup.scalar("lazy_absorbed").inc();
        Tick at = now + nsToTicks(lazyAbsorbNs);
        if (w.done) {
            eventq.schedule(at,
                            [done = std::move(w.done), at]() mutable {
                                done(at);
                            });
        }
        if (onWriteSpaceFreed)
            onWriteSpaceFreed();
        eventq.scheduleAfter(nsToTicks(2), [this] { drainWrites(); });
        return;
    }

    // Wear-leveling stall: writes to a migrating block wait for the
    // migration to finish (paper: "AIT stalls the inflight CPU
    // writes to this block").
    Tick blocked = wear.blockedUntil(head.addr);
    if (blocked > now) {
        statGroup.scalar("migration_stalls").inc();
        if (tracer) [[unlikely]] {
            // The stall slice spans the wait; the flow arrow ties it
            // back to the migration span on the wear track.
            tracer->spanAddr(traceTrack, lblStall, now, blocked,
                             head.addr);
            std::uint64_t flow = wear.migrationFlowId(head.addr);
            if (flow)
                tracer->flowEnd(traceTrack, lblStall, now, flow);
        }
        eventq.schedule(blocked, [this] { drainWrites(); });
        return;
    }

    // Media admission: propagate write pressure upstream.
    Addr media_addr = alignDown(mediaAddrOf(head.addr),
                                cfg.mediaChunkBytes);
    if (!media.canAccept(media_addr)) {
        Tick retry = std::max(media.partitionFreeAt(media_addr),
                              now + 1);
        eventq.schedule(retry, [this] { drainWrites(); });
        return;
    }

    PendingWrite w = intakePop();

    // Write-through: media write plus a buffer-slot update when the
    // page is resident (mirrored so later reads hit in the buffer).
    wear.onMediaWrite(w.addr);
    media.writeChunk(media_addr, nullptr);
    if (bufLru.contains(pageOf(w.addr))) {
        dram.access(bufferSlotAddr(w.addr), true, cfg.rmwLineBytes,
                    nullptr);
    }
    statGroup.average("write_intake_ns")
        .sample(ticksToNs(now - w.enqueueTick));
    if (w.done)
        w.done(now);
    if (onWriteSpaceFreed)
        onWriteSpaceFreed();

    // Pace intake draining at the media write issue rate of one
    // chunk per partition-turn; the canAccept() check above supplies
    // the real backpressure.
    eventq.scheduleAfter(nsToTicks(2), [this] { drainWrites(); });
}

void
Ait::snapshotTo(snapshot::StateSink &sink) const
{
    VANS_REQUIRE("ait", eventq.curTick(), writeQuiescent(),
                 "snapshot with %zu queued writes (drain %d)",
                 intakeCount, static_cast<int>(drainBusy));
    sink.tag("ait");
    sink.u64(bufLru.size());
    bufLru.forEachMruToLru([&sink](Addr page) { sink.u64(page); });
    sink.u64(tlc.size());
    tlc.forEachMruToLru([&sink](Addr page) { sink.u64(page); });
    statGroup.snapshotTo(sink);
    media.snapshotTo(sink);
    wear.snapshotTo(sink);
    dram.snapshotTo(sink);
}

void
Ait::restoreFrom(snapshot::StateSource &src)
{
    VANS_REQUIRE("ait", eventq.curTick(),
                 writeQuiescent() && bufLru.size() == 0 &&
                     tlc.size() == 0,
                 "restore into a non-fresh AIT");
    src.tag("ait");
    // Keys arrive MRU-first; inserting in reverse (LRU-first)
    // reproduces the exact recency order.
    std::vector<Addr> order(src.u64());
    for (Addr &page : order)
        page = src.u64();
    Addr evicted = 0;
    for (auto it = order.rbegin(); it != order.rend(); ++it)
        bufLru.insert(*it, evicted);
    order.resize(src.u64());
    for (Addr &page : order)
        page = src.u64();
    for (auto it = order.rbegin(); it != order.rend(); ++it)
        tlc.insert(*it, evicted);
    statGroup.restoreFrom(src);
    media.restoreFrom(src);
    wear.restoreFrom(src);
    dram.restoreFrom(src);
}

} // namespace vans::nvram
