/**
 * @file
 * Address Indirection Table (AIT) model: translation table + data
 * buffer, both living in the on-DIMM DRAM (paper sections III-C and
 * IV-A).
 *
 * Responsibilities:
 *  - CPU-address to media-address indirection at 4KB granularity.
 *    The translation table is an array in on-DIMM DRAM; a lookup is
 *    a 64B DRAM read on the critical path of every buffer miss.
 *  - The AIT Buffer: 4096 x 4KB (16MB) of media data cached in the
 *    on-DIMM DRAM. Read hits cost one 256B DRAM access. Read misses
 *    fetch the critical 256B media chunk first (the requester
 *    unblocks as soon as it arrives) and fill the remaining chunks
 *    of the 4KB line in the background.
 *  - Writes are write-through to media: every 256B write the RMW
 *    buffer drains here is forwarded to the media (and mirrored into
 *    the buffer when the line is resident). This is what makes
 *    sustained write bandwidth media-limited and what feeds the
 *    wear-leveling counters.
 *  - Wear-leveling stalls: a write targeting a migrating 64KB block
 *    waits until the migration completes (the Fig 7b tail).
 *
 * Backpressure: writes enter through a small bounded intake ring;
 * canAcceptWrite()/onWriteSpaceFreed propagate media write pressure
 * back to the RMW buffer and ultimately to the CPU store stream.
 *
 * Hot-path containers are allocation-free: both LRUs are flat
 * array-backed FlatLru sets and the write intake is a fixed ring,
 * so the steady-state read/write paths allocate nothing.
 */

#ifndef VANS_NVRAM_AIT_HH
#define VANS_NVRAM_AIT_HH

#include <array>
#include <cstdint>

#include "common/event_queue.hh"
#include "common/flat_lru.hh"
#include "common/inplace_function.hh"
#include "common/stats.hh"
#include "common/types.hh"
#include "dram/controller.hh"
#include "nvram/media.hh"
#include "nvram/nvram_config.hh"
#include "nvram/wear_leveler.hh"

namespace vans::nvram
{

/** The AIT: translation + buffering between RMW buffer and media. */
// simlint-hot
class Ait
{
  public:
    using DoneCallback = InplaceFunction<void(Tick)>;

    Ait(EventQueue &eq, const NvramConfig &cfg,
        const std::string &name);

    /**
     * Read one RMW-granularity line (cfg.rmwLineBytes, aligned) at
     * CPU address @p addr. @p done fires when the data is available
     * to the RMW buffer. Misses allocate a buffer line.
     */
    void read(Addr addr, DoneCallback done);

    /**
     * Read for an RMW write-fill: fetches exactly one media chunk,
     * does not allocate a buffer line on miss (write fills must not
     * pollute the read-caching AIT buffer).
     */
    void readForFill(Addr addr, DoneCallback done);

    /** True while the write intake has room. */
    bool canAcceptWrite() const;

    /**
     * Accept one 256B write (write-through to media). @p done fires
     * when the write has been issued to the media queue -- i.e. it
     * is ordered and durable-bound; this is the point the fence
     * quiescence check uses.
     */
    void acceptWrite(Addr addr, DoneCallback done);

    /** Registered by the RMW buffer to learn about freed intake. */
    InplaceFunction<void()> onWriteSpaceFreed;

    /** True when no writes are queued or mid-flight in the AIT. */
    bool writeQuiescent() const { return intakeCount == 0 &&
                                         !drainBusy; }

    /** Snapshot precondition: write path and submodels all idle. */
    bool
    quiescent() const
    {
        return writeQuiescent() && media.pendingOps() == 0 &&
               wear.activeMigrations() == 0 && dram.queueDepth() == 0;
    }

    WearLeveler &wearLeveler() { return wear; }
    XPointMedia &mediaDev() { return media; }
    dram::DramController &dramCtrl() { return dram; }
    StatGroup &stats() { return statGroup; }

    /**
     * Attach tracing to this AIT and its submodels (media
     * partitions, wear leveler, on-DIMM DRAM). The AIT track shows
     * miss fetches and wear-leveling write stalls; a stall slice
     * carries a flow arrow from the migration that caused it.
     * Pointer only; the recorder outlives the model tree.
     */
    void attachTracer(obs::TraceRecorder &rec,
                      const std::string &track_name);

    /** Resident AIT-buffer lines (invariant checker / probers). */
    std::size_t bufferOccupancy() const { return bufLru.size(); }

    /** Writes currently queued in the bounded intake. */
    std::size_t writeIntakeOccupancy() const { return intakeCount; }

    /** Configured intake bound. */
    std::size_t writeIntakeCapacity() const
    {
        return writeIntakeDepth;
    }

    /**
     * Pre-translation support (paper section V-B): when set, read()
     * also performs the extra on-DIMM DRAM access that fetches the
     * Pre-translation entry for this address. The hook receives the
     * address and the tick the entry becomes available.
     */
    InplaceFunction<void(Addr, Tick)> preTranslationFetch;

    /**
     * Lazy-cache support (paper section V-C): consulted before each
     * media write. Returning true absorbs the write into the lazy
     * cache -- no media write, no wear -- and the AIT completes it
     * after @ref lazyAbsorbNs instead.
     */
    InplaceFunction<bool(Addr)> writeAbsorber;

    /** Service time of an absorbed (lazy-cached) write, ns. */
    // simlint-transient(tuning knob set once at wiring time next to
    // writeAbsorber; both worlds of a fork are configured
    // identically before restore)
    double lazyAbsorbNs = 15;

    /**
     * Serialize buffer/translation residency (recency order),
     * stats, and the media/wear/DRAM submodels. Requires
     * writeQuiescent() and idle submodels.
     */
    void snapshotTo(snapshot::StateSink &sink) const;
    void restoreFrom(snapshot::StateSource &src);

  private:
    // simlint-transient(intake-ring payload; snapshotTo REQUIREs
    // writeQuiescent so no pending write exists at capture)
    struct PendingWrite
    {
        Addr addr = 0;
        DoneCallback done;
        Tick enqueueTick = 0;
    };

    Addr pageOf(Addr addr) const { return alignDown(addr,
                                                    cfg.aitLineBytes); }

    /** On-DIMM DRAM address of buffer slot content for @p addr. */
    Addr bufferSlotAddr(Addr addr) const;

    /** On-DIMM DRAM address of the translation entry for a page. */
    Addr tableEntryAddr(Addr page) const;

    /** Media address for @p addr (identity + migration salt). */
    Addr mediaAddrOf(Addr addr) const;

    /** Look up page in buffer; bumps LRU on hit. */
    bool bufferHit(Addr page);

    /** Install @p page, evicting LRU if needed. */
    void installPage(Addr page);

    bool tableCacheHit(Addr page);
    void tableCacheInsert(Addr page);

    /**
     * Miss path: translation lookup, critical-chunk media fetch,
     * background line fill. Re-schedules itself while the fill
     * engine is backed up, carrying @p done through by move.
     */
    void startMissFetch(Addr addr, Addr page, Tick t0,
                        DoneCallback done);

    void drainWrites();

    EventQueue &eventq;
    // simlint-transient(construction-time configuration: capture and
    // restore worlds are built from the same NvramConfig)
    NvramConfig cfg;
    XPointMedia media;
    WearLeveler wear;
    dram::DramController dram;

    /** Resident pages, most recent first. */
    FlatLru bufLru;

    /** Small translation cache in the DIMM controller: pages whose
     *  AIT entry was read recently skip the table DRAM access.
     *  Pointer chases over many pages miss it (the latency curves
     *  keep the table cost); streaming accesses hit it (sustained
     *  bandwidth is data-limited, as measured on the device). */
    FlatLru tlc;
    static constexpr std::size_t tlcCapacity = 128;

    /** Bounded write intake as a fixed-capacity ring. */
    static constexpr std::size_t writeIntakeDepth = 4;
    // simlint-transient(snapshotTo REQUIREs writeQuiescent, which
    // means intakeCount == 0: every ring slot is dead at capture)
    std::array<PendingWrite, writeIntakeDepth> intakeRing;
    // simlint-transient(ring cursor over an empty ring; any start
    // position replays identically because push and pop always move
    // together)
    std::size_t intakeHead = 0;
    // simlint-transient(provably 0 at capture: writeQuiescent is the
    // snapshot precondition)
    std::size_t intakeCount = 0;
    // simlint-transient(provably false at capture: writeQuiescent is
    // the snapshot precondition)
    bool drainBusy = false;

    PendingWrite &intakeFront() { return intakeRing[intakeHead]; }
    void intakePush(PendingWrite w);
    PendingWrite intakePop();

    StatGroup statGroup;

    obs::TraceRecorder *tracer = nullptr;
    // simlint-transient(trace wiring assigned by attachTracer after
    // construction; a restored world re-attaches its own recorder)
    std::uint16_t traceTrack = 0;
    // simlint-transient(trace label id, re-interned on attachTracer)
    std::uint16_t lblMiss = 0;
    // simlint-transient(trace label id, re-interned on attachTracer)
    std::uint16_t lblStall = 0;
};

} // namespace vans::nvram

#endif // VANS_NVRAM_AIT_HH
