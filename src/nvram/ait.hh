/**
 * @file
 * Address Indirection Table (AIT) model: translation table + data
 * buffer, both living in the on-DIMM DRAM (paper sections III-C and
 * IV-A).
 *
 * Responsibilities:
 *  - CPU-address to media-address indirection at 4KB granularity.
 *    The translation table is an array in on-DIMM DRAM; a lookup is
 *    a 64B DRAM read on the critical path of every buffer miss.
 *  - The AIT Buffer: 4096 x 4KB (16MB) of media data cached in the
 *    on-DIMM DRAM. Read hits cost one 256B DRAM access. Read misses
 *    fetch the critical 256B media chunk first (the requester
 *    unblocks as soon as it arrives) and fill the remaining chunks
 *    of the 4KB line in the background.
 *  - Writes are write-through to media: every 256B write the RMW
 *    buffer drains here is forwarded to the media (and mirrored into
 *    the buffer when the line is resident). This is what makes
 *    sustained write bandwidth media-limited and what feeds the
 *    wear-leveling counters.
 *  - Wear-leveling stalls: a write targeting a migrating 64KB block
 *    waits until the migration completes (the Fig 7b tail).
 *
 * Backpressure: writes enter through a small bounded intake queue;
 * canAcceptWrite()/onWriteSpaceFreed propagate media write pressure
 * back to the RMW buffer and ultimately to the CPU store stream.
 */

#ifndef VANS_NVRAM_AIT_HH
#define VANS_NVRAM_AIT_HH

#include <cstdint>
#include <deque>
#include <functional>
#include <list>
#include <memory>
#include <unordered_map>

#include "common/event_queue.hh"
#include "common/stats.hh"
#include "common/types.hh"
#include "dram/controller.hh"
#include "nvram/media.hh"
#include "nvram/nvram_config.hh"
#include "nvram/wear_leveler.hh"

namespace vans::nvram
{

/** The AIT: translation + buffering between RMW buffer and media. */
class Ait
{
  public:
    using DoneCallback = std::function<void(Tick)>;

    Ait(EventQueue &eq, const NvramConfig &cfg,
        const std::string &name);

    /**
     * Read one RMW-granularity line (cfg.rmwLineBytes, aligned) at
     * CPU address @p addr. @p done fires when the data is available
     * to the RMW buffer. Misses allocate a buffer line.
     */
    void read(Addr addr, DoneCallback done);

    /**
     * Read for an RMW write-fill: fetches exactly one media chunk,
     * does not allocate a buffer line on miss (write fills must not
     * pollute the read-caching AIT buffer).
     */
    void readForFill(Addr addr, DoneCallback done);

    /** True while the write intake has room. */
    bool canAcceptWrite() const;

    /**
     * Accept one 256B write (write-through to media). @p done fires
     * when the write has been issued to the media queue -- i.e. it
     * is ordered and durable-bound; this is the point the fence
     * quiescence check uses.
     */
    void acceptWrite(Addr addr, DoneCallback done);

    /** Registered by the RMW buffer to learn about freed intake. */
    std::function<void()> onWriteSpaceFreed;

    /** True when no writes are queued or mid-flight in the AIT. */
    bool writeQuiescent() const { return writeIntake.empty() &&
                                         !drainBusy; }

    WearLeveler &wearLeveler() { return wear; }
    XPointMedia &mediaDev() { return media; }
    dram::DramController &dramCtrl() { return dram; }
    StatGroup &stats() { return statGroup; }

    /** Resident AIT-buffer lines (invariant checker / probers). */
    std::size_t bufferOccupancy() const { return bufferMap.size(); }

    /** Writes currently queued in the bounded intake. */
    std::size_t writeIntakeOccupancy() const
    {
        return writeIntake.size();
    }

    /** Configured intake bound. */
    std::size_t writeIntakeCapacity() const
    {
        return writeIntakeDepth;
    }

    /**
     * Pre-translation support (paper section V-B): when set, read()
     * also performs the extra on-DIMM DRAM access that fetches the
     * Pre-translation entry for this address. The hook receives the
     * address and the tick the entry becomes available.
     */
    std::function<void(Addr, Tick)> preTranslationFetch;

    /**
     * Lazy-cache support (paper section V-C): consulted before each
     * media write. Returning true absorbs the write into the lazy
     * cache -- no media write, no wear -- and the AIT completes it
     * after @ref lazyAbsorbNs instead.
     */
    std::function<bool(Addr)> writeAbsorber;

    /** Service time of an absorbed (lazy-cached) write, ns. */
    double lazyAbsorbNs = 15;

  private:
    struct BufferEntry
    {
        Addr page; ///< CPU page address (aligned to aitLineBytes).
        bool fillComplete = true;
    };

    using LruList = std::list<BufferEntry>;

    struct PendingWrite
    {
        Addr addr;
        DoneCallback done;
        Tick enqueueTick;
    };

    Addr pageOf(Addr addr) const { return alignDown(addr,
                                                    cfg.aitLineBytes); }

    /** On-DIMM DRAM address of buffer slot content for @p addr. */
    Addr bufferSlotAddr(Addr addr) const;

    /** On-DIMM DRAM address of the translation entry for a page. */
    Addr tableEntryAddr(Addr page) const;

    /** Media address for @p addr (identity + migration salt). */
    Addr mediaAddrOf(Addr addr) const;

    /** Look up page in buffer; bumps LRU on hit. */
    bool bufferHit(Addr page);

    /** Install @p page, evicting LRU if needed. */
    void installPage(Addr page);

    void drainWrites();

    EventQueue &eventq;
    NvramConfig cfg;
    XPointMedia media;
    WearLeveler wear;
    dram::DramController dram;

    LruList lru; ///< Front = most recent.
    std::unordered_map<Addr, LruList::iterator> bufferMap;

    /** Small translation cache in the DIMM controller: pages whose
     *  AIT entry was read recently skip the table DRAM access.
     *  Pointer chases over many pages miss it (the latency curves
     *  keep the table cost); streaming accesses hit it (sustained
     *  bandwidth is data-limited, as measured on the device). */
    std::list<Addr> tlcLru;
    std::unordered_map<Addr, std::list<Addr>::iterator> tlcMap;
    std::size_t tlcCapacity = 128;

    bool tableCacheHit(Addr page);
    void tableCacheInsert(Addr page);

    std::deque<PendingWrite> writeIntake;
    std::size_t writeIntakeDepth = 4;
    bool drainBusy = false;

    StatGroup statGroup;
};

} // namespace vans::nvram

#endif // VANS_NVRAM_AIT_HH
