#include "nvram/dimm.hh"

namespace vans::nvram
{

NvramDimm::NvramDimm(EventQueue &eq, const NvramConfig &config,
                     const std::string &name)
    : eventq(eq),
      cfg(config),
      aitStage(eq, config, name + ".ait"),
      rmwStage(eq, config, aitStage, name + ".rmw"),
      lsqStage(eq, config, rmwStage, name + ".lsq")
{}

void
NvramDimm::read(Addr addr, DoneCallback done)
{
    // DIMM controller pipeline + LSQ probe.
    Tick probe_at = eventq.curTick() +
                    nsToTicks(cfg.dimmCtrlNs + cfg.lsqProbeNs);
    eventq.schedule(probe_at, [this, addr,
                               done = std::move(done)]() mutable {
        bool hazard = lsqStage.readProbe(
            addr, [this, addr, done](Tick) mutable {
                // The pending write has reached the RMW buffer; the
                // read now completes from there.
                rmwStage.read(addr, std::move(done));
            });
        if (!hazard)
            rmwStage.read(addr, std::move(done));
    });
}

} // namespace vans::nvram
