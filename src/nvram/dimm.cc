#include "nvram/dimm.hh"

#include "common/check.hh"
#include "common/snapshot.hh"

namespace vans::nvram
{

NvramDimm::NvramDimm(EventQueue &eq, const NvramConfig &config,
                     const std::string &name)
    : eventq(eq),
      cfg(config),
      aitStage(eq, config, name + ".ait"),
      rmwStage(eq, config, aitStage, name + ".rmw"),
      lsqStage(eq, config, rmwStage, name + ".lsq")
{}

void
NvramDimm::read(Addr addr, DoneCallback done)
{
    // DIMM controller pipeline + LSQ probe.
    Tick probe_at = eventq.curTick() +
                    nsToTicks(cfg.dimmCtrlNs + cfg.lsqProbeNs);
    eventq.schedule(probe_at, [this, addr,
                               done = std::move(done)]() mutable {
        // Peek first so the move-only callback goes down exactly one
        // path; readProbe commits the force-drain.
        if (lsqStage.pendingLine(addr)) {
            bool hazard = lsqStage.readProbe(
                addr, [this, addr,
                       done = std::move(done)](Tick) mutable {
                    // The pending write has reached the RMW buffer;
                    // the read now completes from there.
                    rmwStage.read(addr, std::move(done));
                });
            VANS_INVARIANT("dimm", eventq.curTick(), hazard,
                           "pendingLine/readProbe disagree at %llx",
                           static_cast<unsigned long long>(addr));
            return;
        }
        rmwStage.read(addr, std::move(done));
    });
}

void
NvramDimm::snapshotTo(snapshot::StateSink &sink) const
{
    sink.tag("nvram-dimm");
    lsqStage.snapshotTo(sink);
    rmwStage.snapshotTo(sink);
    aitStage.snapshotTo(sink);
}

void
NvramDimm::restoreFrom(snapshot::StateSource &src)
{
    src.tag("nvram-dimm");
    lsqStage.restoreFrom(src);
    rmwStage.restoreFrom(src);
    aitStage.restoreFrom(src);
}

} // namespace vans::nvram
