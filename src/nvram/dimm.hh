/**
 * @file
 * One NVRAM DIMM: the DDR-T endpoint that ties together the on-DIMM
 * LSQ, RMW buffer, AIT and media into the pipeline of Fig 8.
 */

#ifndef VANS_NVRAM_DIMM_HH
#define VANS_NVRAM_DIMM_HH

#include <memory>
#include <string>

#include "common/event_queue.hh"
#include "common/inplace_function.hh"
#include "common/types.hh"
#include "nvram/ait.hh"
#include "nvram/lsq.hh"
#include "nvram/nvram_config.hh"
#include "nvram/rmw_buffer.hh"

namespace vans::nvram
{

/** A complete Optane-style DIMM behind one DDR-T channel. */
// simlint-hot
class NvramDimm
{
  public:
    using DoneCallback = InplaceFunction<void(Tick)>;

    NvramDimm(EventQueue &eq, const NvramConfig &cfg,
              const std::string &name);

    /** True while the LSQ can admit one 64B write from the bus. */
    bool canAcceptWrite(Addr addr) const
    {
        return lsqStage.canAcceptWrite(addr);
    }

    /** Admit one 64B write from the bus into the LSQ. */
    void acceptWrite(Addr addr) { lsqStage.acceptWrite(addr); }

    /**
     * Service a 64B read. @p done fires when the data is staged at
     * the DIMM controller, ready for the grant/data-return phase.
     * Handles the LSQ read-after-write hazard by force-draining and
     * retrying against the RMW buffer.
     */
    void read(Addr addr, DoneCallback done);

    /** Fence support: close every combining epoch. */
    void seal() { lsqStage.seal(); }

    /** True when no write is pending anywhere in the DIMM. */
    bool
    writeQuiescent() const
    {
        return lsqStage.writeQuiescent() && rmwStage.writeQuiescent() &&
               aitStage.writeQuiescent();
    }

    /** Snapshot precondition: all three stages fully idle. */
    bool
    quiescent() const
    {
        return lsqStage.quiescent() && rmwStage.quiescent() &&
               aitStage.quiescent();
    }

    /** Forwarded to the iMC so WPQ draining can resume. */
    void
    setWriteSpaceCallback(InplaceFunction<void()> cb)
    {
        lsqStage.onSpaceFreed = std::move(cb);
    }

    Lsq &lsq() { return lsqStage; }
    RmwBuffer &rmw() { return rmwStage; }
    Ait &ait() { return aitStage; }

    /** Attach tracing to every stage of this DIMM. Pointer only. */
    void
    attachTracer(obs::TraceRecorder &rec, const std::string &name)
    {
        lsqStage.attachTracer(rec, name + ".lsq");
        rmwStage.attachTracer(rec, name + ".rmw");
        aitStage.attachTracer(rec, name + ".ait");
    }

    /** Serialize all three stages (each REQUIREs its quiescence). */
    void snapshotTo(snapshot::StateSink &sink) const;
    void restoreFrom(snapshot::StateSource &src);

  private:
    EventQueue &eventq;
    // simlint-transient(construction-time configuration: capture and
    // restore worlds are built from the same NvramConfig)
    NvramConfig cfg;
    Ait aitStage;
    RmwBuffer rmwStage;
    Lsq lsqStage;
};

} // namespace vans::nvram

#endif // VANS_NVRAM_DIMM_HH
