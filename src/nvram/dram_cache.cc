#include "nvram/dram_cache.hh"

#include <algorithm>

#include "common/check.hh"
#include "common/logging.hh"
#include "common/snapshot.hh"
#include "common/trace_event.hh"

namespace vans::nvram
{

namespace
{

dram::DramGeometry
cacheDramGeometry(const NvramConfig &cfg)
{
    dram::DramGeometry g;
    g.capacityBytes = cfg.dcacheCapacity;
    g.rowBytes = 8192;
    // Test-size caches: shrink the page, then the bank fan-out,
    // until the mapping has at least one row per bank (validate()
    // guarantees a power-of-two capacity of at least one line).
    while (g.rowBytes > cacheLineSize &&
           g.rowBytes * g.totalBanks() > g.capacityBytes)
        g.rowBytes /= 2;
    while (g.totalBanks() > 1 &&
           g.rowBytes * g.totalBanks() > g.capacityBytes) {
        if (g.bankGroups > 1)
            g.bankGroups /= 2;
        else
            g.banksPerGroup /= 2;
    }
    return g;
}

} // namespace

DramCache::DramCache(EventQueue &eq, const NvramConfig &config,
                     NvramDimm &nvm_dimm, const std::string &name)
    : eventq(eq),
      cfg(config),
      nvm(nvm_dimm),
      numSets(config.dcacheCapacity / cacheLineSize),
      tags(numSets, 0),
      lineState(numSets, 0),
      statGroup(name),
      dram(eq, config.dcacheTiming, cacheDramGeometry(config),
           dram::SchedPolicy::FRFCFS, dram::MapScheme::RowBankCol,
           name + ".dram")
{
    VANS_REQUIRE("dcache", 0,
                 numSets > 0 && (numSets & (numSets - 1)) == 0,
                 "set count %llu is not a power of two "
                 "(dcache_capacity %llu)",
                 static_cast<unsigned long long>(numSets),
                 static_cast<unsigned long long>(
                     cfg.dcacheCapacity));
    fetching.reserve(cfg.rpqEntries);
    missWaiters.reserve(cfg.rpqEntries);
    waiterScratch.reserve(cfg.rpqEntries);
    cacheStatPointers();
}

void
DramCache::cacheStatPointers()
{
    sHits = &statGroup.scalar("hits");
    sMisses = &statGroup.scalar("misses");
    sMshrMerges = &statGroup.scalar("mshr_merges");
    sFills = &statGroup.scalar("fills");
    sDirtyEvicts = &statGroup.scalar("dirty_evicts");
    sWriteThroughs = &statGroup.scalar("writethroughs");
    sInvalidates = &statGroup.scalar("invalidates");
    sWbWriteHits = &statGroup.scalar("wb_write_hits");
    sWbWriteMisses = &statGroup.scalar("wb_write_misses");
    sNvmLineWrites = &statGroup.scalar("nvm_line_writes");
    sHitRatio = &statGroup.average("hit_ratio");
}

void
DramCache::attachTracer(obs::TraceRecorder &rec,
                        const std::string &track_name)
{
    tracer = &rec;
    traceTrack = rec.track(track_name);
    lblMiss = rec.label("dc_miss");
    lblEvict = rec.label("dc_evict");
    dram.attachTracer(rec, track_name + ".dram");
}

bool
DramCache::contains(Addr line) const
{
    return present(setOf(line), alignDown(line, cacheLineSize));
}

bool
DramCache::isDirty(Addr line) const
{
    Addr l = alignDown(line, cacheLineSize);
    std::uint64_t set = setOf(l);
    return present(set, l) && (lineState[set] & kDirty) != 0;
}

bool
DramCache::fetchInFlight(Addr line) const
{
    for (const auto &[l, t] : fetching) {
        if (l == line)
            return true;
    }
    return false;
}

void
DramCache::read(Addr addr, DoneCallback done)
{
    Addr line = alignDown(addr, cacheLineSize);
    std::uint64_t set = setOf(line);
    bool hit = present(set, line);
    sHitRatio->sample(hit ? 1.0 : 0.0);
    if (hit) {
        sHits->inc();
        // Data lives in the cache DIMM: one 64B DRAM access at DDR4
        // timing is the whole service.
        dram.access(slotAddr(set), false, cacheLineSize,
                    std::move(done));
        return;
    }
    sMisses->inc();
    bool merged = fetchInFlight(line);
    missWaiters.emplace_back(line, std::move(done));
    if (merged) {
        // MSHR merge: ride the outstanding fetch.
        sMshrMerges->inc();
        return;
    }
    fetching.emplace_back(line, eventq.curTick());
    nvm.read(line, [this, line](Tick) { fillArrived(line); });
}

void
DramCache::fillArrived(Addr line)
{
    Tick now = eventq.curTick();
    std::uint64_t set = setOf(line);
    // A write-allocate may have installed the line while the fetch
    // was in flight; keep its (dirty) copy -- the NVM data is stale
    // against it.
    if (!present(set, line)) {
        installLine(line, false);
        sFills->inc();
        dramWrite(line);
    }
    // Retire the MSHR before waking waiters: a released callback may
    // immediately issue another read of the same line, which must
    // see the installed tag, not the dead fetch entry.
    for (std::size_t i = 0; i < fetching.size(); ++i) {
        if (fetching[i].first == line) {
            if (tracer) [[unlikely]] {
                tracer->span(traceTrack, lblMiss,
                             fetching[i].second, now);
            }
            fetching[i] = fetching.back();
            fetching.pop_back();
            break;
        }
    }
    // Wake every read merged onto this fetch, in issue order (the
    // flat vector preserves insertion order per line, exactly like
    // the iMC's WPQ read hazards).
    waiterScratch.clear();
    std::size_t kept = 0;
    for (std::size_t i = 0; i < missWaiters.size(); ++i) {
        if (missWaiters[i].first == line)
            waiterScratch.push_back(std::move(missWaiters[i].second));
        else
            missWaiters[kept++] = std::move(missWaiters[i]);
    }
    missWaiters.resize(kept);
    for (DoneCallback &cb : waiterScratch)
        cb(now);
}

void
DramCache::installLine(Addr line, bool dirty)
{
    std::uint64_t set = setOf(line);
    if ((lineState[set] & (kValid | kDirty)) == (kValid | kDirty) &&
        tags[set] != line) {
        // Direct-mapped conflict with a dirty resident: the victim's
        // only up-to-date copy is here, write it back to the DIMM.
        sDirtyEvicts->inc();
        if (tracer) [[unlikely]] {
            Tick now = eventq.curTick();
            tracer->span(traceTrack, lblEvict, now,
                         now + nsToTicks(cfg.busCmdNs +
                                         cfg.busDataPer64bNs));
        }
        pushNvmWrite(tags[set]);
    }
    tags[set] = line;
    lineState[set] =
        static_cast<std::uint8_t>(kValid | (dirty ? kDirty : 0));
}

void
DramCache::accept(Addr line, std::uint8_t kind)
{
    std::uint64_t set = setOf(line);
    bool was_present = present(set, line);
    if ((kind & kWriteThrough) != 0) {
        // Persist-kind store: the DIMM must see it (clwb / ntstore
        // keep their App Direct durability path through the volatile
        // cache).
        sWriteThroughs->inc();
        pushNvmWrite(line);
        if (was_present) {
            if ((kind & kInvalidate) != 0) {
                // clflushopt: writeback + invalidate.
                sInvalidates->inc();
                lineState[set] = 0;
            } else {
                // The cached copy now matches the DIMM: clean.
                lineState[set] = kValid;
                dramWrite(line);
            }
        }
        return;
    }
    // Plain store: write-back allocate. The WPQ drained the full
    // 64B line, so a miss installs without fetching from the DIMM.
    if (was_present)
        sWbWriteHits->inc();
    else
        sWbWriteMisses->inc();
    installLine(line, true);
    lineState[set] = kValid | kDirty;
    dramWrite(line);
}

void
DramCache::dramWrite(Addr line)
{
    // Background DRAM array write (fill or copy-update): nothing
    // waits on it, but quiescence must.
    ++outstandingDramWrites;
    dram.access(slotAddr(setOf(line)), true, cacheLineSize,
                [this](Tick) { --outstandingDramWrites; });
}

void
DramCache::pushNvmWrite(Addr line)
{
    sNvmLineWrites->inc();
    nvmWbQueue.push_back(line);
    drainNvmWrites();
}

void
DramCache::drainNvmWrites()
{
    if (nvmDrainBusy || nvmWbQueue.empty())
        return;
    Addr line = nvmWbQueue.front();
    if (!nvm.canAcceptWrite(line))
        return; // Resumed by the DIMM's write-space callback.
    nvmDrainBusy = true;
    nvmWbQueue.pop_front();
    nvm.acceptWrite(line);
    // One handoff per DDR-T write beat: the cache-to-DIMM hop rides
    // the same channel wires as an App Direct WPQ drain.
    eventq.scheduleAfter(
        nsToTicks(cfg.busCmdNs + cfg.busDataPer64bNs), [this] {
            nvmDrainBusy = false;
            drainNvmWrites();
            if (nvmWbQueue.size() < nvmWbWindow && onSpaceFreed)
                onSpaceFreed();
        });
}

void
DramCache::snapshotTo(snapshot::StateSink &sink) const
{
    VANS_REQUIRE("dcache", eventq.curTick(), quiescent(),
                 "snapshot of a non-quiescent DRAM cache");
    sink.tag("dcache");
    sink.u64(numSets);
    std::uint64_t valid = 0;
    for (std::uint64_t set = 0; set < numSets; ++set) {
        if ((lineState[set] & kValid) != 0)
            ++valid;
    }
    // Sparse tag store in set order: (set, tag, dirty) triples.
    sink.u64(valid);
    for (std::uint64_t set = 0; set < numSets; ++set) {
        if ((lineState[set] & kValid) == 0)
            continue;
        sink.u64(set);
        sink.u64(tags[set]);
        sink.boolean((lineState[set] & kDirty) != 0);
    }
    statGroup.snapshotTo(sink);
    dram.snapshotTo(sink);
}

void
DramCache::restoreFrom(snapshot::StateSource &src)
{
    VANS_REQUIRE("dcache", eventq.curTick(), quiescent(),
                 "restore into a non-quiescent DRAM cache");
    src.tag("dcache");
    std::uint64_t n = src.u64();
    VANS_REQUIRE("dcache", eventq.curTick(), n == numSets,
                 "set count mismatch (%llu vs %llu): capture and "
                 "restore worlds must share dcache_capacity",
                 static_cast<unsigned long long>(n),
                 static_cast<unsigned long long>(numSets));
    std::fill(tags.begin(), tags.end(), 0);
    std::fill(lineState.begin(), lineState.end(),
              static_cast<std::uint8_t>(0));
    std::uint64_t valid = src.u64();
    for (std::uint64_t i = 0; i < valid; ++i) {
        std::uint64_t set = src.u64();
        VANS_REQUIRE("dcache", eventq.curTick(), set < numSets,
                     "snapshot set %llu beyond %llu sets",
                     static_cast<unsigned long long>(set),
                     static_cast<unsigned long long>(numSets));
        tags[set] = src.u64();
        lineState[set] = static_cast<std::uint8_t>(
            kValid | (src.boolean() ? kDirty : 0));
    }
    statGroup.restoreFrom(src);
    dram.restoreFrom(src);
    cacheStatPointers();
}

} // namespace vans::nvram
