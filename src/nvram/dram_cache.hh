/**
 * @file
 * Memory-mode DRAM cache: a direct-mapped, 64B-line cache of NVM
 * contents held in a full-size DDR4 DIMM on the same channel (paper
 * section II-A's "Memory mode", the 2LM configuration).
 *
 * One DramCache sits between the iMC channel front-end and the NVM
 * DIMM backend of its channel:
 *  - a read that hits completes at DRAM latency (one 64B access on
 *    the cache DIMM's DramController);
 *  - a read that misses fetches the line from the NVM DIMM, unblocks
 *    the requester as soon as the NVM data arrives, and fills the
 *    DRAM copy in the background. Concurrent misses to the same line
 *    merge onto one fetch (MSHR behaviour);
 *  - a fill or write-allocate that displaces a valid dirty line
 *    issues an NVM writeback for the victim;
 *  - WPQ-drained stores arrive with a write kind: plain stores
 *    allocate write-back (dirty, volatile until evicted); flush-kind
 *    stores (clwb / ntstore) write through to the NVM DIMM so the
 *    persistence instructions keep their App Direct meaning; a
 *    clflushopt additionally invalidates the cached copy.
 *
 * The cache is volatile: dirty lines die with a power cut, which is
 * why Memory mode reports persistSupported() == false at the system
 * level and why the write-through path exists at all.
 *
 * All state is channel-side: in sharded mode the cache is clocked by
 * its channel's shard queue and touched only by that shard (or by
 * the core between phases), so serial and sharded runs stay
 * bit-identical.
 */

#ifndef VANS_NVRAM_DRAM_CACHE_HH
#define VANS_NVRAM_DRAM_CACHE_HH

#include <cstdint>
#include <string>
#include <utility>
#include <vector>

#include "common/event_queue.hh"
#include "common/fifo_ring.hh"
#include "common/inplace_function.hh"
#include "common/stats.hh"
#include "common/types.hh"
#include "dram/controller.hh"
#include "nvram/dimm.hh"
#include "nvram/nvram_config.hh"

namespace vans::nvram
{

/** Direct-mapped DRAM cache in front of one NVM channel. */
// simlint-hot
class DramCache
{
  public:
    using DoneCallback = InplaceFunction<void(Tick)>;

    /** Write kinds, OR-merged per WPQ line (a merge of a plain store
     *  and a clwb must still write through). */
    static constexpr std::uint8_t kWriteBack = 0;
    /** The store carries persist semantics: forward to the DIMM. */
    static constexpr std::uint8_t kWriteThrough = 1;
    /** Drop the cached copy after the write-through (clflushopt). */
    static constexpr std::uint8_t kInvalidate = 2;

    DramCache(EventQueue &eq, const NvramConfig &cfg,
              NvramDimm &nvm_dimm, const std::string &name);

    /**
     * Service one 64B read. @p done fires when the data is staged on
     * the channel side (DRAM hit latency, or NVM fetch latency on a
     * miss), ready for the iMC's grant/data-return phase.
     */
    void read(Addr addr, DoneCallback done);

    /**
     * WPQ drain admission probe: true while the cache's NVM
     * writeback window has room. The window bounds the write-through
     * and dirty-evict traffic queued toward the DIMM, propagating
     * NVM write pressure back to the WPQ (and the CPU store stream).
     */
    bool canAcceptWrite() const
    {
        return nvmWbQueue.size() < nvmWbWindow;
    }

    /** Admit one 64B line from the WPQ drain with its write kind. */
    void accept(Addr line, std::uint8_t kind);

    /** Registered by the iMC so a drained writeback resumes the
     *  WPQ drain of this channel. */
    InplaceFunction<void()> onSpaceFreed;

    /** Wired to the NVM DIMM's write-space callback: LSQ room freed,
     *  resume forwarding queued writebacks. */
    void nvmSpaceFreed() { drainNvmWrites(); }

    /** True when no write is queued or mid-flight toward the DIMM.
     *  Dirty cached lines do NOT count: they are volatile by design
     *  and no fence flushes them. */
    bool writeQuiescent() const
    {
        return nvmWbQueue.empty() && !nvmDrainBusy;
    }

    /** Snapshot precondition: no fetch, fill, or writeback anywhere
     *  in flight and the cache DIMM's controller idle. */
    bool
    quiescent() const
    {
        return fetching.empty() && missWaiters.empty() &&
               writeQuiescent() && outstandingDramWrites == 0 &&
               dram.queueDepth() == 0;
    }

    /** Tag probe (tests / reference-model checks). */
    bool contains(Addr line) const;

    /** Dirty probe (tests / reference-model checks). */
    bool isDirty(Addr line) const;

    StatGroup &stats() { return statGroup; }
    dram::DramController &dramCtrl() { return dram; }

    /** Configured set count (capacity / 64). */
    std::uint64_t sets() const { return numSets; }

    /**
     * Attach tracing: one track for the cache (miss-fetch and
     * dirty-evict spans) plus the cache DIMM controller's track.
     * Pointer only; the recorder outlives the model tree.
     */
    void attachTracer(obs::TraceRecorder &rec,
                      const std::string &track_name);

    /**
     * Serialize the tag/dirty metadata (sparse, set order), stats
     * and the cache DIMM controller. Requires quiescent(): MSHRs,
     * waiters and the writeback queue are provably empty at capture.
     */
    void snapshotTo(snapshot::StateSink &sink) const;
    void restoreFrom(snapshot::StateSource &src);

  private:
    /** Line-state bits packed into lineState[set]. */
    static constexpr std::uint8_t kValid = 1;
    static constexpr std::uint8_t kDirty = 2;

    std::uint64_t setOf(Addr line) const
    {
        return (line / cacheLineSize) & (numSets - 1);
    }

    /** DRAM-side address of a set's data slot. */
    Addr slotAddr(std::uint64_t set) const
    {
        return static_cast<Addr>(set) * cacheLineSize;
    }

    bool present(std::uint64_t set, Addr line) const
    {
        return (lineState[set] & kValid) != 0 && tags[set] == line;
    }

    /** True while an NVM fetch for @p line is outstanding. */
    bool fetchInFlight(Addr line) const;

    /**
     * Install @p line over its set, writebacking a valid dirty
     * victim first. Does not touch the DRAM data array -- callers
     * issue their own data access.
     */
    void installLine(Addr line, bool dirty);

    /** Queue one 64B NVM writeback and poke the forward loop. */
    void pushNvmWrite(Addr line);

    /** Forward queued writebacks into the DIMM's LSQ, one per
     *  handoff slot, paced like a DDR-T write beat. */
    void drainNvmWrites();

    /** NVM fetch completion: fill, then wake the line's waiters. */
    void fillArrived(Addr line);

    /** Background DRAM write (fill or copy-update), tracked only
     *  for quiescence. */
    void dramWrite(Addr line);

    EventQueue &eventq; ///< The owning channel's queue.
    // simlint-transient(construction-time configuration: capture and
    // restore worlds are built from the same NvramConfig)
    NvramConfig cfg;
    NvramDimm &nvm;

    // simlint-transient(derived from cfg.dcacheCapacity at
    // construction; restoreFrom REQUIREs the stream to match)
    std::uint64_t numSets;
    /** Per-set tag: the full line address cached in the set. */
    std::vector<Addr> tags;
    /** Per-set kValid/kDirty bits. */
    std::vector<std::uint8_t> lineState;

    /** Lines with an outstanding NVM fetch and its start tick (the
     *  MSHR set; linear scan over <= rpqEntries lines, reserved at
     *  construction). */
    // simlint-transient(provably empty at capture: quiescent() is
    // the snapshot precondition)
    std::vector<std::pair<Addr, Tick>> fetching;
    /** Reads blocked on an outstanding fetch, insertion-ordered per
     *  line like the iMC's wpqReadHazards. */
    // simlint-transient(waiters require a fetching entry, and the
    // MSHR set is empty at quiescence)
    std::vector<std::pair<Addr, DoneCallback>> missWaiters;
    /** Fill-time staging for released waiters, hoisted out of
     *  fillArrived so the event path reuses its capacity. */
    // simlint-transient(scratch: cleared before every use and dead
    // between fills)
    std::vector<DoneCallback> waiterScratch;

    /** Writebacks and write-throughs queued toward the NVM DIMM. */
    // simlint-transient(provably empty at capture: writeQuiescent()
    // folds into quiescent(), the snapshot precondition)
    FifoRing<Addr> nvmWbQueue;
    // simlint-transient(provably false at capture: quiescent() is
    // the snapshot precondition)
    bool nvmDrainBusy = false;
    /** WPQ admission closes while this many writebacks queue up. */
    static constexpr std::size_t nvmWbWindow = 16;

    /** Background DRAM array writes in flight (fills and clean
     *  copy-updates). */
    // simlint-transient(provably 0 at capture: quiescent() counts
    // them)
    std::uint32_t outstandingDramWrites = 0;

    StatGroup statGroup;
    /** Cached hot-path counters: StatGroup::scalar takes a string
     *  key, which is off the hot path once these are resolved.
     *  Re-cached after restoreFrom (restore rebuilds the maps). */
    // simlint-transient(cached pointer into statGroup, which is
    // serialized; cacheStatPointers re-resolves after restore)
    StatScalar *sHits = nullptr;
    // simlint-transient(cached pointer into statGroup; re-resolved
    // by cacheStatPointers after restore)
    StatScalar *sMisses = nullptr;
    // simlint-transient(cached pointer into statGroup; re-resolved
    // by cacheStatPointers after restore)
    StatScalar *sMshrMerges = nullptr;
    // simlint-transient(cached pointer into statGroup; re-resolved
    // by cacheStatPointers after restore)
    StatScalar *sFills = nullptr;
    // simlint-transient(cached pointer into statGroup; re-resolved
    // by cacheStatPointers after restore)
    StatScalar *sDirtyEvicts = nullptr;
    // simlint-transient(cached pointer into statGroup; re-resolved
    // by cacheStatPointers after restore)
    StatScalar *sWriteThroughs = nullptr;
    // simlint-transient(cached pointer into statGroup; re-resolved
    // by cacheStatPointers after restore)
    StatScalar *sInvalidates = nullptr;
    // simlint-transient(cached pointer into statGroup; re-resolved
    // by cacheStatPointers after restore)
    StatScalar *sWbWriteHits = nullptr;
    // simlint-transient(cached pointer into statGroup; re-resolved
    // by cacheStatPointers after restore)
    StatScalar *sWbWriteMisses = nullptr;
    // simlint-transient(cached pointer into statGroup; re-resolved
    // by cacheStatPointers after restore)
    StatScalar *sNvmLineWrites = nullptr;
    // simlint-transient(cached pointer into statGroup; re-resolved
    // by cacheStatPointers after restore)
    StatAverage *sHitRatio = nullptr;
    /** Re-resolve the cached stat pointers (ctor and post-restore). */
    void cacheStatPointers();

    dram::DramController dram;

    obs::TraceRecorder *tracer = nullptr;
    // simlint-transient(trace wiring assigned by attachTracer after
    // construction; a restored world re-attaches its own recorder)
    std::uint16_t traceTrack = 0;
    // simlint-transient(trace label id, re-interned on attachTracer)
    std::uint16_t lblMiss = 0;
    // simlint-transient(trace label id, re-interned on attachTracer)
    std::uint16_t lblEvict = 0;
};

} // namespace vans::nvram

#endif // VANS_NVRAM_DRAM_CACHE_HH
