#include "nvram/imc.hh"

#include "common/check.hh"
#include "common/logging.hh"
#include "common/snapshot.hh"
#include "common/trace_event.hh"

namespace vans::nvram
{

Imc::Imc(EventQueue &eq, const NvramConfig &config,
         const std::string &name)
    : eventq(eq), cfg(config), statGroup(name)
{
    channels.resize(cfg.numDimms);
    for (unsigned i = 0; i < cfg.numDimms; ++i) {
        channels[i].dimm = std::make_unique<NvramDimm>(
            eq, cfg, name + ".dimm" + std::to_string(i));
        channels[i].dimm->setWriteSpaceCallback(
            [this, i] { wpqDrain(i); });
    }
}

void
Imc::attachTracer(obs::TraceRecorder &rec, const std::string &name)
{
    tracer = &rec;
    lblBusRead = rec.label("bus_rd");
    lblBusWrite = rec.label("bus_wr");
    for (unsigned i = 0; i < channels.size(); ++i) {
        channels[i].busTrack =
            rec.track(name + ".ch" + std::to_string(i) + ".bus");
        channels[i].dimm->attachTracer(
            rec, name + ".dimm" + std::to_string(i));
    }
}

unsigned
Imc::dimmOf(Addr addr) const
{
    if (cfg.numDimms == 1)
        return 0;
    if (cfg.interleaved) {
        return static_cast<unsigned>(
            (addr / cfg.interleaveBytes) % cfg.numDimms);
    }
    return static_cast<unsigned>((addr / cfg.dimmCapacity) %
                                 cfg.numDimms);
}

Tick
Imc::busTransfer(Channel &ch, bool write, std::uint32_t bytes)
{
    Tick now = eventq.curTick();
    Tick start = std::max(now, ch.bus.freeAt);
    if (ch.bus.used && ch.bus.lastWasWrite != write) {
        start += nsToTicks(cfg.busTurnaroundNs);
        statGroup.scalar("bus_turnarounds").inc();
    }
    unsigned beats = (bytes + cacheLineSize - 1) / cacheLineSize;
    Tick occupancy = nsToTicks(cfg.busCmdNs) +
                     beats * nsToTicks(cfg.busDataPer64bNs);
    ch.bus.freeAt = start + occupancy;
    ch.bus.lastWasWrite = write;
    ch.bus.used = true;
    if (tracer) [[unlikely]] {
        tracer->span(ch.busTrack, write ? lblBusWrite : lblBusRead,
                     start, start + occupancy);
    }
    return start + occupancy;
}

void
Imc::issueWrite(RequestPtr req)
{
    statGroup.scalar("writes").inc();
    // Core -> uncore -> iMC pipeline before the WPQ probe.
    ++pendingArrivals;
    eventq.scheduleAfter(nsToTicks(cfg.coreToImcNs), [this, req] {
        --pendingArrivals;
        unsigned ci = dimmOf(req->addr);
        Channel &ch = channels[ci];
        Addr line = alignDown(req->addr, cacheLineSize);
        if (lifecycle)
            lifecycle->onQueued(*req);
        if (tracer) [[unlikely]]
            tracer->onQueued(*req, eventq.curTick());

        if (ch.wpqMap.count(line)) {
            // Merge into the pending entry: already in ADR.
            statGroup.scalar("wpq_merges").inc();
            if (lifecycle)
                lifecycle->onServiced(*req);
            if (tracer) [[unlikely]]
                tracer->onServiced(*req, eventq.curTick());
            req->complete(eventq.curTick());
            return;
        }
        if (ch.wpqMap.size() < cfg.wpqEntries) {
            wpqInsert(ch, line, req);
            wpqDrain(ci);
            return;
        }
        // WPQ full: the store stalls until a slot frees.
        statGroup.scalar("wpq_stalls").inc();
        ch.wpqWaiting.push_back(req);
        wpqDrain(ci);
    });
}

void
Imc::wpqInsert(Channel &ch, Addr line, RequestPtr req)
{
    // The WPQ is the 512B ADR domain: it must never stretch beyond
    // its configured 8 x 64B slots.
    VANS_INVARIANT("imc.wpq", eventq.curTick(),
                   ch.wpqMap.size() < cfg.wpqEntries,
                   "WPQ overflow: %zu lines, capacity %u",
                   ch.wpqMap.size(), cfg.wpqEntries);
    ch.wpqMap[line] = true;
    ch.wpqFifo.push_back(line);
    if (lifecycle)
        lifecycle->onServiced(*req);
    if (tracer) [[unlikely]]
        tracer->onServiced(*req, eventq.curTick());
    req->complete(eventq.curTick());
}

void
Imc::wpqDrain(unsigned ci)
{
    Channel &ch = channels[ci];
    if (ch.wpqDrainBusy || ch.wpqFifo.empty())
        return;
    Addr line = ch.wpqFifo.front();
    if (!ch.dimm->canAcceptWrite(line))
        return; // Resumed by the DIMM's write-space callback.

    ch.wpqDrainBusy = true;
    ch.wpqFifo.pop_front();
    Tick arrival = busTransfer(ch, true, cacheLineSize);
    eventq.schedule(arrival, [this, ci, line] {
        Channel &c = channels[ci];
        // The drain only started because the DIMM had LSQ room; the
        // slot must still be there when the line arrives.
        VANS_REQUIRE("imc.wpq", eventq.curTick(),
                     c.dimm->canAcceptWrite(line),
                     "WPQ drained into a full DIMM LSQ (line %llx)",
                     static_cast<unsigned long long>(line));
        c.dimm->acceptWrite(line);
        c.wpqMap.erase(line);

        // Reads held on this WPQ line may now proceed to the DIMM.
        auto range = c.wpqReadHazards.equal_range(line);
        std::vector<RequestPtr> ready;
        for (auto it = range.first; it != range.second; ++it)
            ready.push_back(it->second);
        c.wpqReadHazards.erase(range.first, range.second);
        for (auto &r : ready)
            startRead(ci, r);

        // Admit a waiting store into the freed slot.
        if (!c.wpqWaiting.empty()) {
            RequestPtr w = c.wpqWaiting.front();
            c.wpqWaiting.pop_front();
            Addr wline = alignDown(w->addr, cacheLineSize);
            if (c.wpqMap.count(wline)) {
                statGroup.scalar("wpq_merges").inc();
                if (lifecycle)
                    lifecycle->onServiced(*w);
                if (tracer) [[unlikely]]
                    tracer->onServiced(*w, eventq.curTick());
                w->complete(eventq.curTick());
            } else {
                wpqInsert(c, wline, w);
            }
        }

        // Request/grant handshake paces the next drain.
        eventq.scheduleAfter(nsToTicks(cfg.wpqGrantNs), [this, ci] {
            channels[ci].wpqDrainBusy = false;
            wpqDrain(ci);
        });
    });
}

void
Imc::issueRead(RequestPtr req)
{
    statGroup.scalar("reads").inc();
    ++pendingArrivals;
    eventq.scheduleAfter(nsToTicks(cfg.coreToImcNs), [this, req] {
        --pendingArrivals;
        unsigned ci = dimmOf(req->addr);
        Channel &ch = channels[ci];
        Addr line = alignDown(req->addr, cacheLineSize);
        if (lifecycle)
            lifecycle->onQueued(*req);
        if (tracer) [[unlikely]]
            tracer->onQueued(*req, eventq.curTick());

        // Read-after-write ordering at the iMC: a read that hits a
        // pending WPQ line waits for that line to drain (NT loads do
        // not forward from the WPQ -- section III-C's RaW behaviour).
        if (ch.wpqMap.count(line)) {
            statGroup.scalar("wpq_read_hazards").inc();
            ch.wpqReadHazards.emplace(line, req);
            return;
        }
        startRead(ci, req);
    });
}

void
Imc::startRead(unsigned ci, RequestPtr req)
{
    Channel &ch = channels[ci];
    if (ch.rpqInFlight >= cfg.rpqEntries) {
        ch.rpqWaiting.push_back(req);
        return;
    }
    ++ch.rpqInFlight;
    VANS_INVARIANT("imc.rpq", eventq.curTick(),
                   ch.rpqInFlight <= cfg.rpqEntries,
                   "RPQ overflow: %u in flight, capacity %u",
                   ch.rpqInFlight, cfg.rpqEntries);

    // Command phase over the bus.
    Tick cmd_arrival = busTransfer(ch, false, 0);
    eventq.schedule(cmd_arrival, [this, ci, req] {
        Channel &c = channels[ci];
        c.dimm->read(req->addr, [this, ci, req](Tick) {
            // Data staged at the DIMM: grant + data return phase.
            Channel &c2 = channels[ci];
            if (lifecycle)
                lifecycle->onServiced(*req);
            if (tracer) [[unlikely]]
                tracer->onServiced(*req, eventq.curTick());
            Tick data_arrival = busTransfer(c2, false, req->size);
            Tick at_core = data_arrival + nsToTicks(cfg.coreToImcNs);
            eventq.schedule(at_core, [this, ci, req, at_core] {
                Channel &c3 = channels[ci];
                req->complete(at_core);
                --c3.rpqInFlight;
                if (!c3.rpqWaiting.empty()) {
                    RequestPtr next = c3.rpqWaiting.front();
                    c3.rpqWaiting.pop_front();
                    startRead(ci, next);
                }
            });
        });
    });
}

void
Imc::issueFence(RequestPtr req)
{
    statGroup.scalar("fences").inc();
    if (lifecycle)
        lifecycle->onQueued(*req);
    if (tracer) [[unlikely]]
        tracer->onQueued(*req, eventq.curTick());
    pendingFences.push_back(req);
    checkFences();
}

void
Imc::checkFences()
{
    if (pendingFences.empty())
        return;

    // Seal only once the WPQs have drained: sealing earlier would
    // split 256B blocks whose lines are still crossing the bus into
    // separate partial drains, which the real fence does not do.
    bool wpq_quiet = true;
    for (const auto &ch : channels) {
        if (!ch.wpqMap.empty() || !ch.wpqWaiting.empty() ||
            ch.wpqDrainBusy) {
            wpq_quiet = false;
            break;
        }
    }
    if (wpq_quiet) {
        for (auto &ch : channels)
            ch.dimm->seal();
    }

    bool quiet = wpq_quiet;
    for (const auto &ch : channels) {
        if (!ch.wpqMap.empty() || !ch.wpqWaiting.empty() ||
            ch.wpqDrainBusy || !ch.dimm->writeQuiescent()) {
            quiet = false;
            break;
        }
    }
    if (quiet) {
        Tick now = eventq.curTick();
        for (auto &f : pendingFences) {
            if (lifecycle)
                lifecycle->onServiced(*f);
            if (tracer) [[unlikely]]
                tracer->onServiced(*f, now);
            f->complete(now);
        }
        pendingFences.clear();
        return;
    }
    if (!fencePollScheduled) {
        fencePollScheduled = true;
        eventq.scheduleAfter(nsToTicks(20), [this] {
            fencePollScheduled = false;
            checkFences();
        });
    }
}

bool
Imc::quiescent() const
{
    if (pendingArrivals != 0 || !pendingFences.empty() ||
        fencePollScheduled) {
        return false;
    }
    for (const auto &ch : channels) {
        if (!ch.wpqMap.empty() || !ch.wpqFifo.empty() ||
            !ch.wpqWaiting.empty() || ch.wpqDrainBusy ||
            !ch.wpqReadHazards.empty() || ch.rpqInFlight != 0 ||
            !ch.rpqWaiting.empty() || !ch.dimm->quiescent()) {
            return false;
        }
    }
    return true;
}

void
Imc::snapshotTo(snapshot::StateSink &sink) const
{
    VANS_REQUIRE("imc", eventq.curTick(), quiescent(),
                 "snapshot of a non-quiescent iMC");
    sink.tag("imc");
    sink.u64(channels.size());
    for (const Channel &ch : channels) {
        sink.u64(ch.bus.freeAt);
        sink.boolean(ch.bus.lastWasWrite);
        sink.boolean(ch.bus.used);
        ch.dimm->snapshotTo(sink);
    }
    statGroup.snapshotTo(sink);
}

void
Imc::restoreFrom(snapshot::StateSource &src)
{
    VANS_REQUIRE("imc", eventq.curTick(), quiescent(),
                 "restore into a non-quiescent iMC");
    src.tag("imc");
    std::uint64_t n = src.u64();
    VANS_REQUIRE("imc", eventq.curTick(), n == channels.size(),
                 "channel count mismatch (%llu vs %zu)",
                 static_cast<unsigned long long>(n),
                 channels.size());
    for (Channel &ch : channels) {
        ch.bus.freeAt = src.u64();
        ch.bus.lastWasWrite = src.boolean();
        ch.bus.used = src.boolean();
        ch.dimm->restoreFrom(src);
    }
    statGroup.restoreFrom(src);
}

} // namespace vans::nvram
