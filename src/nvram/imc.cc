#include "nvram/imc.hh"

#include "common/check.hh"
#include "common/logging.hh"
#include "common/snapshot.hh"
#include "common/trace_event.hh"

namespace vans::nvram
{

Imc::Imc(EventQueue &eq, const NvramConfig &config,
         const std::string &name)
    : eventq(eq), cfg(config), statGroup(name)
{
    buildChannels(name);
}

Imc::Imc(ShardedKernel &kernel, const NvramConfig &config,
         const std::string &name)
    : eventq(kernel.core()), kern(&kernel), cfg(config),
      statGroup(name)
{
    VANS_REQUIRE("imc", 0, kernel.numChannels() == config.numDimms,
                 "kernel has %u shards for %u channels",
                 kernel.numChannels(), config.numDimms);
    // The window may never exceed the lookahead: a core event at t
    // schedules channel work at t + coreToImcNs, which must land at
    // or after the channel clocks (the window end).
    VANS_REQUIRE("imc", 0,
                 kernel.window() <= nsToTicks(config.coreToImcNs),
                 "shard window %llu exceeds the %g ns core-to-iMC "
                 "lookahead",
                 static_cast<unsigned long long>(kernel.window()),
                 config.coreToImcNs);
    buildChannels(name);
}

void
Imc::buildChannels(const std::string &name)
{
    cfg.validate();
    channels.resize(cfg.numDimms);
    for (unsigned i = 0; i < cfg.numDimms; ++i) {
        Channel &ch = channels[i];
        ch.idx = i;
        ch.q = kern ? &kern->channelQueue(i) : &eventq;
        ch.stats = std::make_unique<StatGroup>(
            name + ".ch" + std::to_string(i));
        ch.dimm = std::make_unique<NvramDimm>(
            *ch.q, cfg, name + ".dimm" + std::to_string(i));
        ch.dimm->setWriteSpaceCallback([this, i] { wpqDrain(i); });
    }
}

void
Imc::attachTracer(obs::TraceRecorder &rec, const std::string &name)
{
    tracer = &rec;
    for (unsigned i = 0; i < channels.size(); ++i) {
        Channel &ch = channels[i];
        ch.tracer = &rec;
        ch.busTrack =
            rec.track(name + ".ch" + std::to_string(i) + ".bus");
        ch.lblBusRead = rec.label("bus_rd");
        ch.lblBusWrite = rec.label("bus_wr");
        ch.dimm->attachTracer(rec,
                              name + ".dimm" + std::to_string(i));
    }
}

void
Imc::attachTracer(obs::TraceRecorder &core_rec,
                  const std::vector<obs::TraceRecorder *> &chan_recs,
                  const std::string &name)
{
    VANS_REQUIRE("imc", 0, chan_recs.size() == channels.size(),
                 "%zu channel recorders for %zu channels",
                 chan_recs.size(), channels.size());
    tracer = &core_rec;
    for (unsigned i = 0; i < channels.size(); ++i) {
        Channel &ch = channels[i];
        ch.tracer = chan_recs[i];
        ch.busTrack = ch.tracer->track(name + ".ch" +
                                       std::to_string(i) + ".bus");
        ch.lblBusRead = ch.tracer->label("bus_rd");
        ch.lblBusWrite = ch.tracer->label("bus_wr");
        ch.dimm->attachTracer(*ch.tracer,
                              name + ".dimm" + std::to_string(i));
    }
}

unsigned
Imc::dimmOf(Addr addr) const
{
    VANS_REQUIRE("imc", eventq.curTick(),
                 addr < static_cast<Addr>(cfg.numDimms) *
                            cfg.dimmCapacity,
                 "address %llx beyond the %u-DIMM socket capacity",
                 static_cast<unsigned long long>(addr), cfg.numDimms);
    if (cfg.numDimms == 1)
        return 0;
    if (cfg.interleaved) {
        return static_cast<unsigned>(
            (addr / cfg.interleaveBytes) % cfg.numDimms);
    }
    return static_cast<unsigned>((addr / cfg.dimmCapacity) %
                                 cfg.numDimms);
}

Tick
Imc::busTransfer(Channel &ch, bool write, std::uint32_t bytes)
{
    Tick now = ch.q->curTick();
    Tick start = std::max(now, ch.bus.freeAt);
    if (ch.bus.used && ch.bus.lastWasWrite != write) {
        start += nsToTicks(cfg.busTurnaroundNs);
        ch.stats->scalar("bus_turnarounds").inc();
    }
    unsigned beats = (bytes + cacheLineSize - 1) / cacheLineSize;
    Tick occupancy = nsToTicks(cfg.busCmdNs) +
                     beats * nsToTicks(cfg.busDataPer64bNs);
    ch.bus.freeAt = start + occupancy;
    ch.bus.lastWasWrite = write;
    ch.bus.used = true;
    if (ch.tracer) [[unlikely]] {
        ch.tracer->span(ch.busTrack,
                        write ? ch.lblBusWrite : ch.lblBusRead,
                        start, start + occupancy);
    }
    return start + occupancy;
}

void
Imc::noteQueued(Channel &ch, const RequestPtr &req)
{
    // The hop list lives on the request itself; safe from the shard.
    if (ch.tracer) [[unlikely]]
        ch.tracer->onQueued(*req, ch.q->curTick());
    if (!lifecycle)
        return;
    if (!kern) {
        lifecycle->onQueued(*req);
        return;
    }
    // The checker's state is core-side: defer the observation through
    // the outbox so it applies at the barrier, in (tick, shard,
    // append-order) order.
    kern->toCore(ch.idx, ch.q->curTick(),
                 [lc = lifecycle, req] { lc->onQueued(*req); });
}

void
Imc::noteServiced(Channel &ch, const RequestPtr &req)
{
    if (ch.tracer) [[unlikely]]
        ch.tracer->onServiced(*req, ch.q->curTick());
    if (!lifecycle)
        return;
    if (!kern) {
        lifecycle->onServiced(*req);
        return;
    }
    kern->toCore(ch.idx, ch.q->curTick(),
                 [lc = lifecycle, req] { lc->onServiced(*req); });
}

void
Imc::completeWrite(Channel &ch, const RequestPtr &req)
{
    noteServiced(ch, req);
    Tick when = ch.q->curTick();
    if (!kern) {
        req->complete(when);
        return;
    }
    // ADR's zero-latency completion crosses the shard boundary at
    // the same tick: produced in phase A, delivered in phase B.
    kern->toCore(ch.idx, when, [req, when] { req->complete(when); });
}

void
Imc::issueWrite(RequestPtr req)
{
    statGroup.scalar("writes").inc();
    unsigned ci = dimmOf(req->addr);
    Channel &ch = channels[ci];
    ++ch.pendingArrivals;
    // Core -> uncore -> iMC pipeline before the WPQ probe. The hop is
    // also the shard lookahead: this schedules one full window ahead,
    // so the target shard is parked (classic mode: same queue).
    ch.q->schedule(
        eventq.curTick() + nsToTicks(cfg.coreToImcNs),
        [this, ci, req] {
            Channel &c = channels[ci];
            --c.pendingArrivals;
            Addr line = alignDown(req->addr, cacheLineSize);
            noteQueued(c, req);

            if (c.wpqMap.count(line)) {
                // Merge into the pending entry: already in ADR.
                c.stats->scalar("wpq_merges").inc();
                completeWrite(c, req);
                return;
            }
            if (c.wpqMap.size() < cfg.wpqEntries) {
                wpqInsert(c, line, req);
                wpqDrain(ci);
                return;
            }
            // WPQ full: the store stalls until a slot frees.
            c.stats->scalar("wpq_stalls").inc();
            c.wpqWaiting.push_back(req);
            wpqDrain(ci);
        });
}

void
Imc::wpqInsert(Channel &ch, Addr line, RequestPtr req)
{
    // The WPQ is the 512B ADR domain: it must never stretch beyond
    // its configured 8 x 64B slots.
    VANS_INVARIANT("imc.wpq", ch.q->curTick(),
                   ch.wpqMap.size() < cfg.wpqEntries,
                   "WPQ overflow: %zu lines, capacity %u",
                   ch.wpqMap.size(), cfg.wpqEntries);
    ch.wpqMap[line] = true;
    ch.wpqFifo.push_back(line);
    completeWrite(ch, req);
}

void
Imc::wpqDrain(unsigned ci)
{
    Channel &ch = channels[ci];
    if (ch.wpqDrainBusy || ch.wpqFifo.empty())
        return;
    Addr line = ch.wpqFifo.front();
    if (!ch.dimm->canAcceptWrite(line))
        return; // Resumed by the DIMM's write-space callback.

    ch.wpqDrainBusy = true;
    ch.wpqFifo.pop_front();
    Tick arrival = busTransfer(ch, true, cacheLineSize);
    ch.q->schedule(arrival, [this, ci, line] {
        Channel &c = channels[ci];
        // The drain only started because the DIMM had LSQ room; the
        // slot must still be there when the line arrives.
        VANS_REQUIRE("imc.wpq", c.q->curTick(),
                     c.dimm->canAcceptWrite(line),
                     "WPQ drained into a full DIMM LSQ (line %llx)",
                     static_cast<unsigned long long>(line));
        c.dimm->acceptWrite(line);
        c.wpqMap.erase(line);

        // Reads held on this WPQ line may now proceed to the DIMM.
        // The released set is staged in the channel's scratch buffer
        // (capacity retained across drains) because startRead only
        // schedules work -- it never re-enters this drain.
        auto range = c.wpqReadHazards.equal_range(line);
        c.hazardScratch.clear();
        for (auto it = range.first; it != range.second; ++it)
            c.hazardScratch.push_back(it->second);
        c.wpqReadHazards.erase(range.first, range.second);
        for (auto &r : c.hazardScratch)
            startRead(ci, r);

        // Admit a waiting store into the freed slot.
        if (!c.wpqWaiting.empty()) {
            RequestPtr w = c.wpqWaiting.front();
            c.wpqWaiting.pop_front();
            Addr wline = alignDown(w->addr, cacheLineSize);
            if (c.wpqMap.count(wline)) {
                c.stats->scalar("wpq_merges").inc();
                completeWrite(c, w);
            } else {
                wpqInsert(c, wline, w);
            }
        }

        // Request/grant handshake paces the next drain.
        c.q->scheduleAfter(nsToTicks(cfg.wpqGrantNs), [this, ci] {
            channels[ci].wpqDrainBusy = false;
            wpqDrain(ci);
        });
    });
}

void
Imc::issueRead(RequestPtr req)
{
    statGroup.scalar("reads").inc();
    unsigned ci = dimmOf(req->addr);
    Channel &ch = channels[ci];
    ++ch.pendingArrivals;
    ch.q->schedule(
        eventq.curTick() + nsToTicks(cfg.coreToImcNs),
        [this, ci, req] {
            Channel &c = channels[ci];
            --c.pendingArrivals;
            Addr line = alignDown(req->addr, cacheLineSize);
            noteQueued(c, req);

            // Read-after-write ordering at the iMC: a read that hits
            // a pending WPQ line waits for that line to drain (NT
            // loads do not forward from the WPQ -- section III-C's
            // RaW behaviour).
            if (c.wpqMap.count(line)) {
                c.stats->scalar("wpq_read_hazards").inc();
                c.wpqReadHazards.emplace(line, req);
                return;
            }
            startRead(ci, req);
        });
}

void
Imc::startRead(unsigned ci, RequestPtr req)
{
    Channel &ch = channels[ci];
    if (ch.rpqInFlight >= cfg.rpqEntries) {
        ch.rpqWaiting.push_back(req);
        return;
    }
    ++ch.rpqInFlight;
    VANS_INVARIANT("imc.rpq", ch.q->curTick(),
                   ch.rpqInFlight <= cfg.rpqEntries,
                   "RPQ overflow: %u in flight, capacity %u",
                   ch.rpqInFlight, cfg.rpqEntries);

    // Command phase over the bus.
    Tick cmd_arrival = busTransfer(ch, false, 0);
    ch.q->schedule(cmd_arrival, [this, ci, req] {
        Channel &c = channels[ci];
        c.dimm->read(req->addr, [this, ci, req](Tick) {
            // Data staged at the DIMM: grant + data return phase.
            Channel &c2 = channels[ci];
            noteServiced(c2, req);
            Tick data_arrival = busTransfer(c2, false, req->size);
            Tick at_core = data_arrival + nsToTicks(cfg.coreToImcNs);
            if (!kern) {
                // Classic: one event completes the read at the core
                // and frees the RPQ slot.
                eventq.schedule(at_core, [this, ci, req, at_core] {
                    Channel &c3 = channels[ci];
                    req->complete(at_core);
                    --c3.rpqInFlight;
                    if (!c3.rpqWaiting.empty()) {
                        RequestPtr next = c3.rpqWaiting.front();
                        c3.rpqWaiting.pop_front();
                        startRead(ci, next);
                    }
                });
                return;
            }
            // Sharded: the RPQ slot frees channel-side at the same
            // tick; the data-at-core completion crosses to the core
            // shard through the outbox.
            c2.q->schedule(at_core, [this, ci] {
                Channel &c3 = channels[ci];
                --c3.rpqInFlight;
                if (!c3.rpqWaiting.empty()) {
                    RequestPtr next = c3.rpqWaiting.front();
                    c3.rpqWaiting.pop_front();
                    startRead(ci, next);
                }
            });
            kern->toCore(ci, at_core,
                         [req, at_core] { req->complete(at_core); });
        });
    });
}

void
Imc::issueFence(RequestPtr req)
{
    statGroup.scalar("fences").inc();
    if (lifecycle)
        lifecycle->onQueued(*req);
    if (tracer) [[unlikely]]
        tracer->onQueued(*req, eventq.curTick());
    pendingFences.push_back(req);
    checkFences();
}

void
Imc::checkFences()
{
    if (pendingFences.empty())
        return;

    // Core-side in both modes. In sharded mode this runs in phase B
    // while the shards are parked, so reading channel state and
    // sealing DIMMs is race-free; the seal's drain check lands on
    // the channel queue at the window boundary (its clock), never in
    // the shard's past.
    //
    // Seal only once the WPQs have drained: sealing earlier would
    // split 256B blocks whose lines are still crossing the bus into
    // separate partial drains, which the real fence does not do.
    bool wpq_quiet = true;
    for (const auto &ch : channels) {
        if (!ch.wpqMap.empty() || !ch.wpqWaiting.empty() ||
            ch.wpqDrainBusy) {
            wpq_quiet = false;
            break;
        }
    }
    if (wpq_quiet) {
        for (auto &ch : channels)
            ch.dimm->seal();
    }

    bool quiet = wpq_quiet;
    for (const auto &ch : channels) {
        if (!ch.wpqMap.empty() || !ch.wpqWaiting.empty() ||
            ch.wpqDrainBusy || !ch.dimm->writeQuiescent()) {
            quiet = false;
            break;
        }
    }
    if (quiet) {
        Tick now = eventq.curTick();
        for (auto &f : pendingFences) {
            if (lifecycle)
                lifecycle->onServiced(*f);
            if (tracer) [[unlikely]]
                tracer->onServiced(*f, now);
            f->complete(now);
        }
        pendingFences.clear();
        return;
    }
    if (!fencePollScheduled) {
        fencePollScheduled = true;
        eventq.scheduleAfter(nsToTicks(20), [this] {
            fencePollScheduled = false;
            checkFences();
        });
    }
}

std::uint64_t
Imc::channelScalarSum(const std::string &name) const
{
    std::uint64_t n = 0;
    for (const auto &ch : channels)
        n += ch.stats->scalarValue(name);
    return n;
}

bool
Imc::quiescent() const
{
    if (!pendingFences.empty() || fencePollScheduled)
        return false;
    for (const auto &ch : channels) {
        if (ch.pendingArrivals != 0 || !ch.wpqMap.empty() ||
            !ch.wpqFifo.empty() || !ch.wpqWaiting.empty() ||
            ch.wpqDrainBusy || !ch.wpqReadHazards.empty() ||
            ch.rpqInFlight != 0 || !ch.rpqWaiting.empty() ||
            !ch.dimm->quiescent()) {
            return false;
        }
    }
    return true;
}

void
Imc::snapshotTo(snapshot::StateSink &sink) const
{
    VANS_REQUIRE("imc", eventq.curTick(), quiescent(),
                 "snapshot of a non-quiescent iMC");
    sink.tag("imc");
    sink.u64(channels.size());
    sink.boolean(kern != nullptr);
    if (kern)
        sink.u64(kern->windowLimitTick());
    for (const Channel &ch : channels) {
        sink.u64(ch.bus.freeAt);
        sink.boolean(ch.bus.lastWasWrite);
        sink.boolean(ch.bus.used);
        if (kern)
            ch.q->snapshotTo(sink);
        ch.stats->snapshotTo(sink);
        ch.dimm->snapshotTo(sink);
    }
    statGroup.snapshotTo(sink);
}

void
Imc::restoreFrom(snapshot::StateSource &src)
{
    VANS_REQUIRE("imc", eventq.curTick(), quiescent(),
                 "restore into a non-quiescent iMC");
    src.tag("imc");
    std::uint64_t n = src.u64();
    VANS_REQUIRE("imc", eventq.curTick(), n == channels.size(),
                 "channel count mismatch (%llu vs %zu)",
                 static_cast<unsigned long long>(n),
                 channels.size());
    bool sharded = src.boolean();
    VANS_REQUIRE("imc", eventq.curTick(),
                 sharded == (kern != nullptr),
                 "kernel mode mismatch: snapshot is %s, world is %s",
                 sharded ? "sharded" : "classic",
                 kern ? "sharded" : "classic");
    if (kern)
        kern->setWindowLimitTick(src.u64());
    for (Channel &ch : channels) {
        ch.bus.freeAt = src.u64();
        ch.bus.lastWasWrite = src.boolean();
        ch.bus.used = src.boolean();
        // The shard queue restores before the DIMM: the DIMM re-arms
        // its guarded timers into this queue during restore and must
        // continue the captured tick/seq stream.
        if (kern)
            ch.q->restoreFrom(src);
        ch.stats->restoreFrom(src);
        ch.dimm->restoreFrom(src);
    }
    statGroup.restoreFrom(src);
}

} // namespace vans::nvram
