#include "nvram/imc.hh"

#include <algorithm>

#include "common/check.hh"
#include "common/logging.hh"
#include "common/snapshot.hh"
#include "common/trace_event.hh"

namespace vans::nvram
{

Imc::Imc(EventQueue &eq, RequestPool &req_pool,
         const NvramConfig &config, const std::string &name)
    : eventq(eq), pool(req_pool), cfg(config), statGroup(name)
{
    buildChannels(name);
}

Imc::Imc(ShardedKernel &kernel, RequestPool &req_pool,
         const NvramConfig &config, const std::string &name)
    : eventq(kernel.core()), pool(req_pool), kern(&kernel),
      cfg(config), statGroup(name)
{
    VANS_REQUIRE("imc", 0, kernel.numChannels() == config.numDimms,
                 "kernel has %u shards for %u channels",
                 kernel.numChannels(), config.numDimms);
    // The window may never exceed the lookahead: a core event at t
    // schedules channel work at t + coreToImcNs, which must land at
    // or after the channel clocks (the window end).
    VANS_REQUIRE("imc", 0,
                 kernel.window() <= nsToTicks(config.coreToImcNs),
                 "shard window %llu exceeds the %g ns core-to-iMC "
                 "lookahead",
                 static_cast<unsigned long long>(kernel.window()),
                 config.coreToImcNs);
    buildChannels(name);
}

void
Imc::buildChannels(const std::string &name)
{
    cfg.validate();
    channels.resize(cfg.numDimms);
    for (unsigned i = 0; i < cfg.numDimms; ++i) {
        Channel &ch = channels[i];
        ch.idx = i;
        ch.q = kern ? &kern->channelQueue(i) : &eventq;
        ch.stats = std::make_unique<StatGroup>(
            name + ".ch" + std::to_string(i));
        ch.dimm = std::make_unique<NvramDimm>(
            *ch.q, cfg, name + ".dimm" + std::to_string(i));
        if (cfg.memoryMode()) {
            // Memory mode: the DRAM cache interposes. LSQ space
            // freed resumes the cache's writeback forwarding; cache
            // writeback-window space freed resumes the WPQ drain.
            ch.dcache = std::make_unique<DramCache>(
                *ch.q, cfg, *ch.dimm,
                name + ".dcache" + std::to_string(i));
            ch.dimm->setWriteSpaceCallback(
                [dc = ch.dcache.get()] { dc->nvmSpaceFreed(); });
            ch.dcache->onSpaceFreed = [this, i] { wpqDrain(i); };
        } else {
            ch.dimm->setWriteSpaceCallback([this, i] { wpqDrain(i); });
        }
        ch.wpqLines.reserve(cfg.wpqEntries);
        ch.wpqKinds.reserve(cfg.wpqEntries);
        cacheStatPointers(ch);
    }
    sReads = &statGroup.scalar("reads");
    sWrites = &statGroup.scalar("writes");
    sFences = &statGroup.scalar("fences");
    sSfences = &statGroup.scalar("sfences");
    sWcPartialDrains = &statGroup.scalar("wc_partial_drains");
}

void
Imc::cacheStatPointers(Channel &ch)
{
    ch.sBusTurnarounds = &ch.stats->scalar("bus_turnarounds");
    ch.sWpqMerges = &ch.stats->scalar("wpq_merges");
    ch.sWpqStalls = &ch.stats->scalar("wpq_stalls");
    ch.sWpqReadHazards = &ch.stats->scalar("wpq_read_hazards");
}

bool
Imc::wpqContains(const Channel &ch, Addr line)
{
    for (Addr l : ch.wpqLines) {
        if (l == line)
            return true;
    }
    return false;
}

std::uint8_t
Imc::writeKindOf(MemOp op)
{
    // Persist-kind stores must reach the DIMM even through the
    // volatile Memory-mode cache; a clflushopt also drops the
    // cached copy. Plain stores allocate write-back.
    switch (op) {
      case MemOp::Clflushopt:
        return DramCache::kWriteThrough | DramCache::kInvalidate;
      case MemOp::Clwb:
      case MemOp::WriteNT:
        return DramCache::kWriteThrough;
      default:
        return DramCache::kWriteBack;
    }
}

void
Imc::wpqKindMerge(Channel &ch, Addr line, std::uint8_t kind)
{
    for (std::size_t i = 0; i < ch.wpqLines.size(); ++i) {
        if (ch.wpqLines[i] == line) {
            ch.wpqKinds[i] |= kind;
            return;
        }
    }
}

void
Imc::attachTracer(obs::TraceRecorder &rec, const std::string &name)
{
    tracer = &rec;
    for (unsigned i = 0; i < channels.size(); ++i) {
        Channel &ch = channels[i];
        ch.tracer = &rec;
        ch.busTrack =
            rec.track(name + ".ch" + std::to_string(i) + ".bus");
        ch.lblBusRead = rec.label("bus_rd");
        ch.lblBusWrite = rec.label("bus_wr");
        ch.dimm->attachTracer(rec,
                              name + ".dimm" + std::to_string(i));
        if (ch.dcache) {
            ch.dcache->attachTracer(
                rec, name + ".dcache" + std::to_string(i));
        }
    }
}

void
Imc::attachTracer(obs::TraceRecorder &core_rec,
                  const std::vector<obs::TraceRecorder *> &chan_recs,
                  const std::string &name)
{
    VANS_REQUIRE("imc", 0, chan_recs.size() == channels.size(),
                 "%zu channel recorders for %zu channels",
                 chan_recs.size(), channels.size());
    tracer = &core_rec;
    for (unsigned i = 0; i < channels.size(); ++i) {
        Channel &ch = channels[i];
        ch.tracer = chan_recs[i];
        ch.busTrack = ch.tracer->track(name + ".ch" +
                                       std::to_string(i) + ".bus");
        ch.lblBusRead = ch.tracer->label("bus_rd");
        ch.lblBusWrite = ch.tracer->label("bus_wr");
        ch.dimm->attachTracer(*ch.tracer,
                              name + ".dimm" + std::to_string(i));
        if (ch.dcache) {
            ch.dcache->attachTracer(
                *ch.tracer, name + ".dcache" + std::to_string(i));
        }
    }
}

unsigned
Imc::dimmOf(Addr addr) const
{
    VANS_REQUIRE("imc", eventq.curTick(),
                 addr < static_cast<Addr>(cfg.numDimms) *
                            cfg.dimmCapacity,
                 "address %llx beyond the %u-DIMM socket capacity",
                 static_cast<unsigned long long>(addr), cfg.numDimms);
    if (cfg.numDimms == 1)
        return 0;
    if (cfg.interleaved) {
        return static_cast<unsigned>(
            (addr / cfg.interleaveBytes) % cfg.numDimms);
    }
    return static_cast<unsigned>((addr / cfg.dimmCapacity) %
                                 cfg.numDimms);
}

Tick
Imc::busTransfer(Channel &ch, bool write, std::uint32_t bytes)
{
    Tick now = ch.q->curTick();
    Tick start = std::max(now, ch.bus.freeAt);
    if (ch.bus.used && ch.bus.lastWasWrite != write) {
        start += nsToTicks(cfg.busTurnaroundNs);
        ch.sBusTurnarounds->inc();
    }
    unsigned beats = (bytes + cacheLineSize - 1) / cacheLineSize;
    Tick occupancy = nsToTicks(cfg.busCmdNs) +
                     beats * nsToTicks(cfg.busDataPer64bNs);
    ch.bus.freeAt = start + occupancy;
    ch.bus.lastWasWrite = write;
    ch.bus.used = true;
    if (ch.tracer) [[unlikely]] {
        ch.tracer->span(ch.busTrack,
                        write ? ch.lblBusWrite : ch.lblBusRead,
                        start, start + occupancy);
    }
    return start + occupancy;
}

void
Imc::noteQueued(Channel &ch, RequestHandle h)
{
    // The hop list lives on the pooled request; safe from the shard
    // (the core only allocs/releases between phases).
    if (ch.tracer) [[unlikely]]
        ch.tracer->onQueued(pool.get(h), ch.q->curTick());
    if (!lifecycle)
        return;
    if (!kern) {
        lifecycle->onQueued(pool.get(h));
        return;
    }
    // The checker's state is core-side: defer the observation through
    // the outbox so it applies at the barrier, in (tick, shard,
    // append-order) order.
    kern->toCore(ch.idx, ch.q->curTick(),
                 [lc = lifecycle, p = &pool, h] {
                     lc->onQueued(p->get(h));
                 });
}

void
Imc::noteServiced(Channel &ch, RequestHandle h)
{
    if (ch.tracer) [[unlikely]]
        ch.tracer->onServiced(pool.get(h), ch.q->curTick());
    if (!lifecycle)
        return;
    if (!kern) {
        lifecycle->onServiced(pool.get(h));
        return;
    }
    kern->toCore(ch.idx, ch.q->curTick(),
                 [lc = lifecycle, p = &pool, h] {
                     lc->onServiced(p->get(h));
                 });
}

void
Imc::completeWrite(Channel &ch, RequestHandle h)
{
    if (persistTracking) [[unlikely]] {
        // WPQ acceptance IS the durability point: record the version
        // (request id) this line would carry after an ADR drain.
        // Channel-side state, so shard-safe in sharded mode.
        Request &r = pool.get(h);
        Addr line = alignDown(r.addr, cacheLineSize);
        std::uint64_t &v = ch.adrVersions[line];
        if (r.id > v)
            v = r.id;
    }
    noteServiced(ch, h);
    Tick when = ch.q->curTick();
    if (!kern) {
        pool.get(h).complete(when);
        return;
    }
    // ADR's zero-latency completion crosses the shard boundary at
    // the same tick: produced in phase A, delivered in phase B.
    kern->toCore(ch.idx, when, [p = &pool, h, when] {
        p->get(h).complete(when);
    });
}

void
Imc::issueWrite(RequestHandle h)
{
    sWrites->inc();
    Request &req = pool.get(h);
    unsigned ci = dimmOf(req.addr);
    Channel &ch = channels[ci];
    ++ch.pendingArrivals;
    ++ch.pendingWriteArrivals;
    // NT stores fill write-combining buffers; an sfence cutting the
    // run at a partial buffer pays the Empirical Guide's drain
    // penalty (see issueSfence).
    if (req.op == MemOp::WriteNT)
        wcFill += req.size;
    // Flush-induced writebacks leave the cache hierarchy, not the
    // store buffer: one extra one-way hop versus an NT store (the
    // Empirical Guide's clwb-vs-ntstore gap).
    double hop_ns = cfg.coreToImcNs;
    if (req.op == MemOp::Clwb || req.op == MemOp::Clflushopt)
        hop_ns += cfg.clwbExtraNs;
    // Core -> uncore -> iMC pipeline before the WPQ probe. The hop is
    // also the shard lookahead: this schedules at least one full
    // window ahead, so the target shard is parked (classic mode:
    // same queue).
    ch.q->schedule(
        eventq.curTick() + nsToTicks(hop_ns),
        [this, ci, h] {
            Channel &c = channels[ci];
            --c.pendingArrivals;
            --c.pendingWriteArrivals;
            Addr line = alignDown(pool.get(h).addr, cacheLineSize);
            std::uint8_t kind = writeKindOf(pool.get(h).op);
            noteQueued(c, h);

            if (wpqContains(c, line)) {
                // Merge into the pending entry: already in ADR. The
                // merged data inherits the strongest write kind.
                c.sWpqMerges->inc();
                wpqKindMerge(c, line, kind);
                completeWrite(c, h);
                return;
            }
            if (c.wpqLines.size() < cfg.wpqEntries) {
                wpqInsert(c, line, kind, h);
                wpqDrain(ci);
                return;
            }
            // WPQ full: the store stalls until a slot frees.
            c.sWpqStalls->inc();
            c.wpqWaiting.push_back(h);
            wpqDrain(ci);
        });
}

void
Imc::wpqInsert(Channel &ch, Addr line, std::uint8_t kind,
               RequestHandle h)
{
    // The WPQ is the 512B ADR domain: it must never stretch beyond
    // its configured 8 x 64B slots.
    VANS_INVARIANT("imc.wpq", ch.q->curTick(),
                   ch.wpqLines.size() < cfg.wpqEntries,
                   "WPQ overflow: %zu lines, capacity %u",
                   ch.wpqLines.size(), cfg.wpqEntries);
    ch.wpqLines.push_back(line);
    ch.wpqKinds.push_back(kind);
    ch.wpqFifo.push_back(line);
    completeWrite(ch, h);
}

void
Imc::wpqDrain(unsigned ci)
{
    Channel &ch = channels[ci];
    if (ch.wpqDrainBusy || ch.wpqFifo.empty())
        return;
    Addr line = ch.wpqFifo.front();
    // Memory mode drains into the DRAM cache, whose writeback window
    // provides the backpressure; App Direct probes the DIMM LSQ.
    bool can = ch.dcache ? ch.dcache->canAcceptWrite()
                         : ch.dimm->canAcceptWrite(line);
    if (!can)
        return; // Resumed by the write-space callback.

    ch.wpqDrainBusy = true;
    ch.wpqFifo.pop_front();
    Tick arrival = busTransfer(ch, true, cacheLineSize);
    ch.q->schedule(arrival, [this, ci, line] {
        Channel &c = channels[ci];
        // The write kind is read at bus-arrival time, not drain
        // start: stores can merge into a draining line mid-flight
        // and must still strengthen its kind.
        std::uint8_t kind = DramCache::kWriteBack;
        for (std::size_t i = 0; i < c.wpqLines.size(); ++i) {
            if (c.wpqLines[i] == line) {
                // Membership only: order lives in wpqFifo.
                kind = c.wpqKinds[i];
                c.wpqLines[i] = c.wpqLines.back();
                c.wpqLines.pop_back();
                c.wpqKinds[i] = c.wpqKinds.back();
                c.wpqKinds.pop_back();
                break;
            }
        }
        if (c.dcache) {
            c.dcache->accept(line, kind);
        } else {
            // The drain only started because the DIMM had LSQ room;
            // the slot must still be there when the line arrives.
            VANS_REQUIRE("imc.wpq", c.q->curTick(),
                         c.dimm->canAcceptWrite(line),
                         "WPQ drained into a full DIMM LSQ (line "
                         "%llx)",
                         static_cast<unsigned long long>(line));
            c.dimm->acceptWrite(line);
        }

        // Reads held on this WPQ line may now proceed to the DIMM.
        // The released set is staged in the channel's scratch buffer
        // (capacity retained across drains) because startRead only
        // schedules work -- it never re-enters this drain. The flat
        // hazard vector preserves insertion order per line, exactly
        // like the multimap it replaced.
        c.hazardScratch.clear();
        std::size_t kept = 0;
        for (std::size_t i = 0; i < c.wpqReadHazards.size(); ++i) {
            if (c.wpqReadHazards[i].first == line)
                c.hazardScratch.push_back(c.wpqReadHazards[i].second);
            else
                c.wpqReadHazards[kept++] = c.wpqReadHazards[i];
        }
        c.wpqReadHazards.resize(kept);
        for (RequestHandle r : c.hazardScratch)
            startRead(ci, r);

        // Admit a waiting store into the freed slot.
        if (!c.wpqWaiting.empty()) {
            RequestHandle w = c.wpqWaiting.front();
            c.wpqWaiting.pop_front();
            Addr wline = alignDown(pool.get(w).addr, cacheLineSize);
            std::uint8_t wkind = writeKindOf(pool.get(w).op);
            if (wpqContains(c, wline)) {
                c.sWpqMerges->inc();
                wpqKindMerge(c, wline, wkind);
                completeWrite(c, w);
            } else {
                wpqInsert(c, wline, wkind, w);
            }
        }

        // Request/grant handshake paces the next drain.
        c.q->scheduleAfter(nsToTicks(cfg.wpqGrantNs), [this, ci] {
            channels[ci].wpqDrainBusy = false;
            wpqDrain(ci);
        });
    });
}

void
Imc::issueRead(RequestHandle h)
{
    sReads->inc();
    unsigned ci = dimmOf(pool.get(h).addr);
    Channel &ch = channels[ci];
    ++ch.pendingArrivals;
    ch.q->schedule(
        eventq.curTick() + nsToTicks(cfg.coreToImcNs),
        [this, ci, h] {
            Channel &c = channels[ci];
            --c.pendingArrivals;
            Addr line = alignDown(pool.get(h).addr, cacheLineSize);
            noteQueued(c, h);

            // Read-after-write ordering at the iMC: a read that hits
            // a pending WPQ line waits for that line to drain (NT
            // loads do not forward from the WPQ -- section III-C's
            // RaW behaviour).
            if (wpqContains(c, line)) {
                c.sWpqReadHazards->inc();
                c.wpqReadHazards.emplace_back(line, h);
                return;
            }
            startRead(ci, h);
        });
}

void
Imc::startRead(unsigned ci, RequestHandle h)
{
    Channel &ch = channels[ci];
    if (ch.rpqInFlight >= cfg.rpqEntries) {
        ch.rpqWaiting.push_back(h);
        return;
    }
    ++ch.rpqInFlight;
    VANS_INVARIANT("imc.rpq", ch.q->curTick(),
                   ch.rpqInFlight <= cfg.rpqEntries,
                   "RPQ overflow: %u in flight, capacity %u",
                   ch.rpqInFlight, cfg.rpqEntries);

    // Command phase over the bus.
    Tick cmd_arrival = busTransfer(ch, false, 0);
    ch.q->schedule(cmd_arrival, [this, ci, h] {
        Channel &c = channels[ci];
        auto done = [this, ci, h](Tick) {
            // Data staged at the DIMM: grant + data return phase.
            Channel &c2 = channels[ci];
            noteServiced(c2, h);
            Tick data_arrival =
                busTransfer(c2, false, pool.get(h).size);
            Tick at_core = data_arrival + nsToTicks(cfg.coreToImcNs);
            if (!kern) {
                // Classic: one event completes the read at the core
                // and frees the RPQ slot. The completion may release
                // the handle, so the RPQ bookkeeping never touches
                // the request afterwards.
                eventq.schedule(at_core, [this, ci, h, at_core] {
                    Channel &c3 = channels[ci];
                    pool.get(h).complete(at_core);
                    --c3.rpqInFlight;
                    if (!c3.rpqWaiting.empty()) {
                        RequestHandle next = c3.rpqWaiting.front();
                        c3.rpqWaiting.pop_front();
                        startRead(ci, next);
                    }
                });
                return;
            }
            // Sharded: the RPQ slot frees channel-side at the same
            // tick; the data-at-core completion crosses to the core
            // shard through the outbox.
            c2.q->schedule(at_core, [this, ci] {
                Channel &c3 = channels[ci];
                --c3.rpqInFlight;
                if (!c3.rpqWaiting.empty()) {
                    RequestHandle next = c3.rpqWaiting.front();
                    c3.rpqWaiting.pop_front();
                    startRead(ci, next);
                }
            });
            kern->toCore(ci, at_core, [p = &pool, h, at_core] {
                p->get(h).complete(at_core);
            });
        };
        // Memory mode: the DRAM cache services the line (DRAM-hit
        // latency or NVM-miss fetch); App Direct reads the DIMM.
        if (c.dcache)
            c.dcache->read(pool.get(h).addr, std::move(done));
        else
            c.dimm->read(pool.get(h).addr, std::move(done));
    });
}

void
Imc::issueFence(RequestHandle h)
{
    sFences->inc();
    if (lifecycle)
        lifecycle->onQueued(pool.get(h));
    if (tracer) [[unlikely]]
        tracer->onQueued(pool.get(h), eventq.curTick());
    pendingFences.push_back(h);
    checkFences();
}

void
Imc::checkFences()
{
    if (pendingFences.empty())
        return;

    // Core-side in both modes. In sharded mode this runs in phase B
    // while the shards are parked, so reading channel state and
    // sealing DIMMs is race-free; the seal's drain check lands on
    // the channel queue at the window boundary (its clock), never in
    // the shard's past.
    //
    // Seal only once the WPQs have drained: sealing earlier would
    // split 256B blocks whose lines are still crossing the bus into
    // separate partial drains, which the real fence does not do.
    // In Memory mode the cache's writeback forwarding counts as part
    // of the write pipeline: seal only after it stops handing lines
    // to the DIMM, and complete only once those lines are media-done.
    bool wpq_quiet = true;
    for (const auto &ch : channels) {
        if (!ch.wpqLines.empty() || !ch.wpqWaiting.empty() ||
            ch.wpqDrainBusy ||
            (ch.dcache && !ch.dcache->writeQuiescent())) {
            wpq_quiet = false;
            break;
        }
    }
    if (wpq_quiet) {
        for (auto &ch : channels)
            ch.dimm->seal();
    }

    bool quiet = wpq_quiet;
    for (const auto &ch : channels) {
        if (!ch.wpqLines.empty() || !ch.wpqWaiting.empty() ||
            ch.wpqDrainBusy ||
            (ch.dcache && !ch.dcache->writeQuiescent()) ||
            !ch.dimm->writeQuiescent()) {
            quiet = false;
            break;
        }
    }
    if (quiet) {
        Tick now = eventq.curTick();
        for (RequestHandle f : pendingFences) {
            if (lifecycle)
                lifecycle->onServiced(pool.get(f));
            if (tracer) [[unlikely]]
                tracer->onServiced(pool.get(f), now);
            // complete() may release the handle (issuer callback);
            // the request is not touched again after this call.
            pool.get(f).complete(now);
        }
        pendingFences.clear();
        return;
    }
    if (!fencePollScheduled) {
        fencePollScheduled = true;
        eventq.scheduleAfter(nsToTicks(20), [this] {
            fencePollScheduled = false;
            checkFences();
        });
    }
}

void
Imc::issueSfence(RequestHandle h)
{
    sSfences->inc();
    if (lifecycle)
        lifecycle->onQueued(pool.get(h));
    if (tracer) [[unlikely]]
        tracer->onQueued(pool.get(h), eventq.curTick());
    Tick ready = eventq.curTick();
    // Sfence drains the NT write-combining buffers. A run cut at a
    // partial cfg.wcBufferBytes buffer pays the partial-drain charge
    // once -- the reason small NT stores lose to cached writes below
    // the wcBufferBytes crossover.
    if (wcFill % cfg.wcBufferBytes != 0) {
        ready += nsToTicks(cfg.wcPartialDrainNs);
        sWcPartialDrains->inc();
    }
    wcFill = 0;
    pendingSfences.push_back({h, ready});
    checkSfences();
}

void
Imc::checkSfences()
{
    if (pendingSfences.empty())
        return;

    // Core-side in both modes, like checkFences: in sharded mode this
    // runs in phase B while the shards are parked, so reading
    // channel-side counters is race-free. The sfence condition is
    // strictly weaker than the fence's: every prior write accepted
    // into a WPQ (ADR reached) -- no WPQ drain, no DIMM seal, no
    // write-pipeline quiescence.
    bool adr_quiet = true;
    for (const auto &ch : channels) {
        if (ch.pendingWriteArrivals != 0 || !ch.wpqWaiting.empty()) {
            adr_quiet = false;
            break;
        }
    }
    if (adr_quiet) {
        Tick now = eventq.curTick();
        std::size_t kept = 0;
        for (PendingSfence &s : pendingSfences) {
            if (s.readyAt <= now) {
                if (lifecycle)
                    lifecycle->onServiced(pool.get(s.h));
                if (tracer) [[unlikely]]
                    tracer->onServiced(pool.get(s.h), now);
                // complete() may release the handle; never touched
                // again after this call.
                pool.get(s.h).complete(now);
            } else {
                // Still serving the partial WC-drain charge.
                pendingSfences[kept++] = s;
            }
        }
        pendingSfences.resize(kept);
        if (pendingSfences.empty())
            return;
    }
    if (!sfencePollScheduled) {
        sfencePollScheduled = true;
        eventq.scheduleAfter(nsToTicks(20), [this] {
            sfencePollScheduled = false;
            checkSfences();
        });
    }
}

void
Imc::durableLines(
    std::vector<std::pair<Addr, std::uint64_t>> &out) const
{
    VANS_REQUIRE("imc", eventq.curTick(), persistTracking,
                 "durableLines without persist tracking enabled");
    out.clear();
    // Interleaving routes each line to exactly one channel, so the
    // per-channel maps are disjoint; a sort gives the deterministic
    // merged view.
    for (const Channel &ch : channels) {
        for (const auto &[line, version] : ch.adrVersions)
            out.emplace_back(line, version);
    }
    std::sort(out.begin(), out.end());
}

void
Imc::seedDurable(Addr line, std::uint64_t version)
{
    VANS_REQUIRE("imc", eventq.curTick(), persistTracking,
                 "seedDurable without persist tracking enabled");
    Channel &ch = channels[dimmOf(line)];
    std::uint64_t &v = ch.adrVersions[line];
    if (version > v)
        v = version;
}

std::uint64_t
Imc::channelScalarSum(const std::string &name) const
{
    std::uint64_t n = 0;
    for (const auto &ch : channels)
        n += ch.stats->scalarValue(name);
    return n;
}

bool
Imc::quiescent() const
{
    if (!pendingFences.empty() || fencePollScheduled)
        return false;
    if (!pendingSfences.empty() || sfencePollScheduled)
        return false;
    for (const auto &ch : channels) {
        if (ch.pendingArrivals != 0 || !ch.wpqLines.empty() ||
            !ch.wpqFifo.empty() || !ch.wpqWaiting.empty() ||
            ch.wpqDrainBusy || !ch.wpqReadHazards.empty() ||
            ch.rpqInFlight != 0 || !ch.rpqWaiting.empty() ||
            (ch.dcache && !ch.dcache->quiescent()) ||
            !ch.dimm->quiescent()) {
            return false;
        }
    }
    return true;
}

void
Imc::snapshotTo(snapshot::StateSink &sink) const
{
    VANS_REQUIRE("imc", eventq.curTick(), quiescent(),
                 "snapshot of a non-quiescent iMC");
    sink.tag("imc");
    sink.u64(channels.size());
    sink.boolean(kern != nullptr);
    if (kern)
        sink.u64(kern->windowLimitTick());
    sink.boolean(persistTracking);
    sink.u64(wcFill);
    for (const Channel &ch : channels) {
        sink.u64(ch.bus.freeAt);
        sink.boolean(ch.bus.lastWasWrite);
        sink.boolean(ch.bus.used);
        if (kern)
            ch.q->snapshotTo(sink);
        ch.stats->snapshotTo(sink);
        ch.dimm->snapshotTo(sink);
        if (ch.dcache)
            ch.dcache->snapshotTo(sink);
        // adrVersions: durable state survives snapshots like it
        // survives power cuts. Sorted for a deterministic stream.
        std::vector<std::pair<Addr, std::uint64_t>> adr(
            ch.adrVersions.begin(), ch.adrVersions.end());
        std::sort(adr.begin(), adr.end());
        sink.u64(adr.size());
        for (const auto &[line, version] : adr) {
            sink.u64(line);
            sink.u64(version);
        }
    }
    statGroup.snapshotTo(sink);
}

void
Imc::restoreFrom(snapshot::StateSource &src)
{
    VANS_REQUIRE("imc", eventq.curTick(), quiescent(),
                 "restore into a non-quiescent iMC");
    src.tag("imc");
    std::uint64_t n = src.u64();
    VANS_REQUIRE("imc", eventq.curTick(), n == channels.size(),
                 "channel count mismatch (%llu vs %zu)",
                 static_cast<unsigned long long>(n),
                 channels.size());
    bool sharded = src.boolean();
    VANS_REQUIRE("imc", eventq.curTick(),
                 sharded == (kern != nullptr),
                 "kernel mode mismatch: snapshot is %s, world is %s",
                 sharded ? "sharded" : "classic",
                 kern ? "sharded" : "classic");
    if (kern)
        kern->setWindowLimitTick(src.u64());
    persistTracking = src.boolean();
    wcFill = src.u64();
    for (Channel &ch : channels) {
        ch.bus.freeAt = src.u64();
        ch.bus.lastWasWrite = src.boolean();
        ch.bus.used = src.boolean();
        // The shard queue restores before the DIMM: the DIMM re-arms
        // its guarded timers into this queue during restore and must
        // continue the captured tick/seq stream.
        if (kern)
            ch.q->restoreFrom(src);
        ch.stats->restoreFrom(src);
        ch.dimm->restoreFrom(src);
        if (ch.dcache)
            ch.dcache->restoreFrom(src);
        ch.adrVersions.clear();
        std::uint64_t na = src.u64();
        for (std::uint64_t i = 0; i < na; ++i) {
            Addr line = src.u64();
            ch.adrVersions[line] = src.u64();
        }
        // restoreFrom rebuilt the scalar map: re-resolve the cached
        // hot-path counters.
        cacheStatPointers(ch);
    }
    statGroup.restoreFrom(src);
    sReads = &statGroup.scalar("reads");
    sWrites = &statGroup.scalar("writes");
    sFences = &statGroup.scalar("fences");
    sSfences = &statGroup.scalar("sfences");
    sWcPartialDrains = &statGroup.scalar("wc_partial_drains");
}

} // namespace vans::nvram
