/**
 * @file
 * Integrated memory controller (iMC) model for NVRAM channels.
 *
 * Per DIMM, the iMC keeps:
 *  - the WPQ: 8 x 64B (512B) write pending queue inside the ADR
 *    persistence domain. NT stores complete, from the CPU's point of
 *    view, when they enter (or merge into) the WPQ. The WPQ drains
 *    over the DDR-T bus with a request/grant handshake per write --
 *    the pacing behind the 512B inflection of the store latency
 *    curve (Fig 5a).
 *  - the RPQ: a cap on in-flight reads (request/grant scheme: the
 *    DIMM pushes data back when the iMC grants an RPQ slot).
 *  - a DDR-T bus with per-direction occupancy and a turnaround
 *    penalty when ownership flips between reads and writes (the
 *    "memory bus redirection" the paper blames for RaW latency).
 *
 * Across DIMMs the iMC implements the 4KB interleaving the policy
 * prober detects (Fig 7a), and fences complete at write-path
 * quiescence: every pre-fence write has reached AIT write ordering.
 *
 * The iMC runs on either kernel:
 *  - classic: one EventQueue clocks everything (the original mode;
 *    write completions fire synchronously at WPQ entry);
 *  - sharded: a ShardedKernel gives each channel its own queue. All
 *    channel-side state (WPQ/RPQ maps, bus, per-channel stats, the
 *    DIMM pipeline) is touched only by that channel's shard during
 *    phase A or by the core thread between phases; completions and
 *    lifecycle observations cross back through the kernel's
 *    per-shard outboxes. Fences stay core-side: checkFences reads
 *    channel state and seals DIMMs only while the shards are parked.
 */

#ifndef VANS_NVRAM_IMC_HH
#define VANS_NVRAM_IMC_HH

#include <memory>
#include <unordered_map>
#include <utility>
#include <vector>

#include "common/event_queue.hh"
#include "common/fifo_ring.hh"
#include "common/lifecycle.hh"
#include "common/request.hh"
#include "common/request_pool.hh"
#include "common/sharded_kernel.hh"
#include "common/stats.hh"
#include "common/types.hh"
#include "nvram/dimm.hh"
#include "nvram/dram_cache.hh"
#include "nvram/nvram_config.hh"

namespace vans::nvram
{

/** The processor-side memory controller driving NVRAM DIMMs. */
// simlint-hot
class Imc
{
  public:
    /** Classic single-queue mode. */
    Imc(EventQueue &eq, RequestPool &pool, const NvramConfig &cfg,
        const std::string &name);

    /** Sharded mode: one channel per kernel shard. */
    Imc(ShardedKernel &kernel, RequestPool &pool,
        const NvramConfig &cfg, const std::string &name);

    /** Route a 64B line to its DIMM. */
    unsigned dimmOf(Addr addr) const;

    /** Issue one read (completes when data is back at the core). */
    void issueRead(RequestHandle h);

    /** Issue one write (completes at WPQ entry/merge: ADR reached). */
    void issueWrite(RequestHandle h);

    /** Issue a fence (completes at write-path quiescence). */
    void issueFence(RequestHandle h);

    /**
     * Issue an sfence: completes once every prior write has been
     * accepted into a WPQ (the ADR boundary) -- strictly weaker than
     * issueFence, which additionally drains the WPQs and the on-DIMM
     * pipeline. An sfence cutting an NT-store run at a partial
     * write-combining buffer pays cfg.wcPartialDrainNs (the
     * Empirical Guide's small-ntstore punishment).
     */
    void issueSfence(RequestHandle h);

    /**
     * Persistence-domain tracking: record, per channel, the durable
     * version (request id) of every line accepted into its WPQ. Off
     * by default -- the version map is the only allocating structure
     * on the write path, and crash runs are the only consumer.
     */
    void enablePersistTracking() { persistTracking = true; }
    bool persistTrackingEnabled() const { return persistTracking; }

    /**
     * The durable media image under ADR semantics: every (line,
     * version) accepted into a WPQ so far, sorted by line. On a
     * power cut the WPQs drain to media by guarantee, so this is
     * exactly what survives. Requires tracking enabled; callable at
     * any tick core-side (a power cut is not a quiescent point).
     */
    void durableLines(
        std::vector<std::pair<Addr, std::uint64_t>> &out) const;

    /** Seed one durable line (restart-from-image path). Implies the
     *  line's channel version map gains an entry; requires tracking
     *  enabled. */
    void seedDurable(Addr line, std::uint64_t version);

    NvramDimm &dimm(unsigned i) { return *channels[i].dimm; }
    unsigned numDimms() const
    {
        return static_cast<unsigned>(channels.size());
    }

    /** Channel @p ci's Memory-mode DRAM cache (nullptr when the
     *  socket runs App Direct). */
    DramCache *dramCache(unsigned ci)
    {
        return channels[ci].dcache.get();
    }

    StatGroup &stats() { return statGroup; }

    /** Per-channel counters (WPQ merges/stalls, bus turnarounds). */
    StatGroup &channelStats(unsigned ci)
    {
        return *channels[ci].stats;
    }

    /** Sum of one per-channel scalar over all channels. */
    std::uint64_t channelScalarSum(const std::string &name) const;

    /** WPQ lines currently held in ADR for channel @p ci. */
    std::size_t wpqOccupancy(unsigned ci) const
    {
        return channels[ci].wpqLines.size();
    }

    /** Reads in flight past the RPQ admission for channel @p ci. */
    unsigned rpqInFlight(unsigned ci) const
    {
        return channels[ci].rpqInFlight;
    }

    /**
     * Lifecycle observer (verify=on): the iMC reports the queued /
     * serviced transitions of every request so the checker can
     * re-derive the request state machine. Never owned here. In
     * sharded mode the channel-side transitions are deferred through
     * the kernel's outboxes and applied core-side at the barrier, in
     * deterministic order -- the checker itself is never touched
     * from a shard.
     */
    verify::RequestLifecycleChecker *lifecycle = nullptr;

    /**
     * Attach tracing: per-channel DDR-T bus tracks (transfer spans
     * with turnaround gaps visible), request lifecycle hops mirrored
     * at the same call sites the lifecycle checker observes, and
     * every DIMM's stage tracks. Pointer only; never owned here.
     */
    void attachTracer(obs::TraceRecorder &rec,
                      const std::string &name);

    /**
     * Sharded-mode tracing: channel @p ci's components record into
     * @p chan_recs[ci] (touched only by that shard); @p core_rec
     * takes the core-side events (fences, request retirement).
     * Recordings are stitched back into one timeline by
     * obs::mergeRecorders.
     */
    void attachTracer(obs::TraceRecorder &core_rec,
                      const std::vector<obs::TraceRecorder *> &chan_recs,
                      const std::string &name);

    /**
     * True when nothing is queued or in flight anywhere on the
     * NVRAM side: WPQs drained, no RPQ reads, no pending fences,
     * no scheduled fence poll.
     */
    bool quiescent() const;

    /**
     * Serialize per-channel bus state, stats and every DIMM -- plus,
     * in sharded mode, every channel shard's queue counters and the
     * kernel's window boundary, so a restored world reproduces the
     * exact window grid. Requires quiescent().
     */
    void snapshotTo(snapshot::StateSink &sink) const;
    void restoreFrom(snapshot::StateSource &src);

  private:
    struct DdrtBus
    {
        Tick freeAt = 0;
        bool lastWasWrite = false;
        bool used = false;
    };

    struct Channel
    {
        // simlint-transient(rebuilt by buildChannels: the restoring
        // iMC numbers its channels before restoreFrom runs)
        unsigned idx = 0;
        /** The queue clocking this channel: the shard queue in
         *  sharded mode, the shared queue in classic mode. */
        EventQueue *q = nullptr;
        std::unique_ptr<NvramDimm> dimm;
        /** Memory-mode DRAM cache between the channel front-end and
         *  the DIMM (null in App Direct). Channel-side state: built
         *  on this channel's queue, touched only by its shard. */
        std::unique_ptr<DramCache> dcache;
        std::unique_ptr<StatGroup> stats;
        /** Cached per-channel counters: StatGroup::scalar takes a
         *  std::string key, which is off the hot path once these are
         *  resolved. Re-cached after restoreFrom (restore rebuilds
         *  the scalar map). */
        // simlint-transient(cached pointer into `stats`, which is
        // serialized; cacheStatPointers re-resolves after restore)
        StatScalar *sBusTurnarounds = nullptr;
        // simlint-transient(cached pointer into `stats`; re-resolved
        // by cacheStatPointers after restore)
        StatScalar *sWpqMerges = nullptr;
        // simlint-transient(cached pointer into `stats`; re-resolved
        // by cacheStatPointers after restore)
        StatScalar *sWpqStalls = nullptr;
        // simlint-transient(cached pointer into `stats`; re-resolved
        // by cacheStatPointers after restore)
        StatScalar *sWpqReadHazards = nullptr;
        /** WPQ membership (<= wpqEntries lines, linear scan beats a
         *  map at that size and never allocates once reserved). */
        // simlint-transient(quiescent() REQUIREs the WPQ empty at
        // capture -- posted writes must have drained)
        std::vector<Addr> wpqLines;
        /** Write kind per WPQ line, parallel to wpqLines and
         *  OR-merged on WPQ merge: a plain store merging with a
         *  clwb must still write through the Memory-mode cache.
         *  Maintained in both modes (the App Direct drain ignores
         *  it). */
        // simlint-transient(parallel to wpqLines, which is empty at
        // quiescence, the snapshot precondition)
        std::vector<std::uint8_t> wpqKinds;
        // simlint-transient(drain order over an empty WPQ; see
        // quiescent())
        FifoRing<Addr> wpqFifo;
        // simlint-transient(admission queue, empty at quiescence)
        FifoRing<RequestHandle> wpqWaiting;
        // simlint-transient(provably false once the WPQ is drained;
        // quiescent() is the snapshot precondition)
        bool wpqDrainBusy = false;
        /** Reads blocked on a WPQ line (read-after-write at the
         *  iMC); insertion order per line is release order, exactly
         *  like the multimap this flat vector replaced. */
        // simlint-transient(hazard waiters require a WPQ occupant,
        // and the WPQ is empty at quiescence)
        std::vector<std::pair<Addr, RequestHandle>> wpqReadHazards;
        /** Drain-time staging for released hazards, hoisted out of
         *  wpqDrain so the event path reuses its capacity. */
        // simlint-transient(scratch: cleared before every use and
        // dead between drains)
        std::vector<RequestHandle> hazardScratch;
        // RPQ.
        // simlint-transient(provably 0 at capture: quiescent() counts
        // in-flight reads)
        unsigned rpqInFlight = 0;
        // simlint-transient(admission queue, empty at quiescence)
        FifoRing<RequestHandle> rpqWaiting;
        DdrtBus bus;
        /** Issued, not yet past the core-to-iMC hop (see quiescent). */
        // simlint-transient(provably 0 at capture: quiescent() checks
        // it -- the PR-3 pendingArrivals hole is closed by the
        // quiescence gate, not by serialization)
        unsigned pendingArrivals = 0;
        /** The write-only subset of pendingArrivals: sfences complete
         *  when this is 0 and wpqWaiting is empty on every channel
         *  (reads do not hold an sfence up). */
        // simlint-transient(subset of pendingArrivals, which
        // quiescent() proves 0 at capture)
        unsigned pendingWriteArrivals = 0;
        /**
         * ADR durability record: per 64B line, the id of the last
         * write accepted into this channel's WPQ. Only populated
         * under persistTracking (crash runs); channel-side state,
         * touched exclusively by this channel's shard.
         */
        std::unordered_map<Addr, std::uint64_t> adrVersions;
        obs::TraceRecorder *tracer = nullptr;
        // simlint-transient(trace wiring re-established by
        // attachTracer in the restored world)
        std::uint16_t busTrack = 0; ///< Valid while tracer set.
        // simlint-transient(trace label id, re-interned on
        // attachTracer)
        std::uint16_t lblBusRead = 0;
        // simlint-transient(trace label id, re-interned on
        // attachTracer)
        std::uint16_t lblBusWrite = 0;
    };

    /** Shared constructor body. */
    void buildChannels(const std::string &name);

    /** Resolve the per-channel hot-path stat counters. */
    void cacheStatPointers(Channel &ch);

    /** WPQ membership probe (linear over <= wpqEntries lines). */
    static bool wpqContains(const Channel &ch, Addr line);

    /** The Memory-mode write kind a store op carries. */
    static std::uint8_t writeKindOf(MemOp op);

    /** OR @p kind into the pending WPQ entry for @p line. */
    static void wpqKindMerge(Channel &ch, Addr line,
                             std::uint8_t kind);

    /**
     * Claim the channel bus for a transfer. @return transfer end
     * (the bus is occupied from the computed start to the end).
     */
    Tick busTransfer(Channel &ch, bool write, std::uint32_t bytes);

    /** Channel-side lifecycle/trace observation points. */
    void noteQueued(Channel &ch, RequestHandle h);
    void noteServiced(Channel &ch, RequestHandle h);

    /**
     * Complete a write at the channel's current tick: synchronously
     * in classic mode (ADR zero-latency completion), via the
     * barrier-merged outbox in sharded mode -- same tick, delivered
     * in phase B.
     */
    void completeWrite(Channel &ch, RequestHandle h);

    void wpqInsert(Channel &ch, Addr line, std::uint8_t kind,
                   RequestHandle h);
    void wpqDrain(unsigned ci);
    void startRead(unsigned ci, RequestHandle h);
    void checkFences();
    void checkSfences();

    EventQueue &eventq; ///< Core queue (both modes).
    /** The owning system's request pool (handles index into it). */
    RequestPool &pool;
    ShardedKernel *kern = nullptr;
    // simlint-transient(construction-time configuration: capture and
    // restore worlds are built from the same NvramConfig)
    NvramConfig cfg;
    std::vector<Channel> channels;
    // simlint-transient(a pending fence implies outstanding writes,
    // which quiescent() -- the snapshot precondition -- rules out)
    std::vector<RequestHandle> pendingFences;
    // simlint-transient(provably false at capture: the fence poll
    // only runs while pendingFences is non-empty)
    bool fencePollScheduled = false;

    /** An sfence held open until its earliest completion tick (the
     *  partial write-combining drain charge) AND ADR acceptance of
     *  every prior write. */
    struct PendingSfence
    {
        // simlint-transient(pendingSfences entries cannot exist at
        // quiescence, the snapshot precondition)
        RequestHandle h;
        // simlint-transient(same: dies with its pendingSfences entry
        // before any snapshot)
        Tick readyAt; ///< Earliest legal completion (WC drain).
    };
    // simlint-transient(a pending sfence implies outstanding writes,
    // which quiescent() -- the snapshot precondition -- rules out)
    std::vector<PendingSfence> pendingSfences;
    // simlint-transient(provably false at capture: the sfence poll
    // only runs while pendingSfences is non-empty)
    bool sfencePollScheduled = false;
    /** Bytes written into the NT write-combining buffers since the
     *  last sfence; an sfence at a partial cfg.wcBufferBytes fill
     *  pays cfg.wcPartialDrainNs once. Serialized: a warm world may
     *  legitimately carry a partial WC fill across a snapshot. */
    std::uint64_t wcFill = 0;
    /** ADR version tracking toggle (see enablePersistTracking). */
    bool persistTracking = false;

    StatGroup statGroup;
    // simlint-transient(cached pointer into statGroup, which is
    // serialized; re-resolved after restoreFrom)
    StatScalar *sReads = nullptr;
    // simlint-transient(cached pointer into statGroup; re-resolved
    // after restoreFrom)
    StatScalar *sWrites = nullptr;
    // simlint-transient(cached pointer into statGroup; re-resolved
    // after restoreFrom)
    StatScalar *sFences = nullptr;
    // simlint-transient(cached pointer into statGroup; re-resolved
    // after restoreFrom)
    StatScalar *sSfences = nullptr;
    // simlint-transient(cached pointer into statGroup; re-resolved
    // after restoreFrom)
    StatScalar *sWcPartialDrains = nullptr;

    obs::TraceRecorder *tracer = nullptr;
};

} // namespace vans::nvram

#endif // VANS_NVRAM_IMC_HH
