/**
 * @file
 * Integrated memory controller (iMC) model for NVRAM channels.
 *
 * Per DIMM, the iMC keeps:
 *  - the WPQ: 8 x 64B (512B) write pending queue inside the ADR
 *    persistence domain. NT stores complete, from the CPU's point of
 *    view, when they enter (or merge into) the WPQ. The WPQ drains
 *    over the DDR-T bus with a request/grant handshake per write --
 *    the pacing behind the 512B inflection of the store latency
 *    curve (Fig 5a).
 *  - the RPQ: a cap on in-flight reads (request/grant scheme: the
 *    DIMM pushes data back when the iMC grants an RPQ slot).
 *  - a DDR-T bus with per-direction occupancy and a turnaround
 *    penalty when ownership flips between reads and writes (the
 *    "memory bus redirection" the paper blames for RaW latency).
 *
 * Across DIMMs the iMC implements the 4KB interleaving the policy
 * prober detects (Fig 7a), and fences complete at write-path
 * quiescence: every pre-fence write has reached AIT write ordering.
 */

#ifndef VANS_NVRAM_IMC_HH
#define VANS_NVRAM_IMC_HH

#include <deque>
#include <map>
#include <memory>
#include <vector>

#include "common/event_queue.hh"
#include "common/lifecycle.hh"
#include "common/request.hh"
#include "common/stats.hh"
#include "common/types.hh"
#include "nvram/dimm.hh"
#include "nvram/nvram_config.hh"

namespace vans::nvram
{

/** The processor-side memory controller driving NVRAM DIMMs. */
class Imc
{
  public:
    Imc(EventQueue &eq, const NvramConfig &cfg,
        const std::string &name);

    /** Route a 64B line to its DIMM. */
    unsigned dimmOf(Addr addr) const;

    /** Issue one read (completes when data is back at the core). */
    void issueRead(RequestPtr req);

    /** Issue one write (completes at WPQ entry/merge: ADR reached). */
    void issueWrite(RequestPtr req);

    /** Issue a fence (completes at write-path quiescence). */
    void issueFence(RequestPtr req);

    NvramDimm &dimm(unsigned i) { return *channels[i].dimm; }
    unsigned numDimms() const
    {
        return static_cast<unsigned>(channels.size());
    }

    StatGroup &stats() { return statGroup; }

    /** WPQ lines currently held in ADR for channel @p ci. */
    std::size_t wpqOccupancy(unsigned ci) const
    {
        return channels[ci].wpqMap.size();
    }

    /** Reads in flight past the RPQ admission for channel @p ci. */
    unsigned rpqInFlight(unsigned ci) const
    {
        return channels[ci].rpqInFlight;
    }

    /**
     * Lifecycle observer (verify=on): the iMC reports the queued /
     * serviced transitions of every request so the checker can
     * re-derive the request state machine. Never owned here.
     */
    verify::RequestLifecycleChecker *lifecycle = nullptr;

    /**
     * Attach tracing: per-channel DDR-T bus tracks (transfer spans
     * with turnaround gaps visible), request lifecycle hops mirrored
     * at the same call sites the lifecycle checker observes, and
     * every DIMM's stage tracks. Pointer only; never owned here.
     */
    void attachTracer(obs::TraceRecorder &rec,
                      const std::string &name);

    /**
     * True when nothing is queued or in flight anywhere on the
     * NVRAM side: WPQs drained, no RPQ reads, no pending fences,
     * no scheduled fence poll.
     */
    bool quiescent() const;

    /**
     * Serialize per-channel bus state, stats and every DIMM.
     * Requires quiescent().
     */
    void snapshotTo(snapshot::StateSink &sink) const;
    void restoreFrom(snapshot::StateSource &src);

  private:
    struct DdrtBus
    {
        Tick freeAt = 0;
        bool lastWasWrite = false;
        bool used = false;
    };

    struct Channel
    {
        std::unique_ptr<NvramDimm> dimm;
        // WPQ: line address -> present; FIFO order for draining.
        std::map<Addr, bool> wpqMap;
        std::deque<Addr> wpqFifo;
        std::deque<RequestPtr> wpqWaiting;
        bool wpqDrainBusy = false;
        // Reads blocked on a WPQ line (read-after-write at the iMC).
        std::multimap<Addr, RequestPtr> wpqReadHazards;
        // RPQ.
        unsigned rpqInFlight = 0;
        std::deque<RequestPtr> rpqWaiting;
        DdrtBus bus;
        std::uint16_t busTrack = 0; ///< Valid while tracer set.
    };

    /**
     * Claim the channel bus for a transfer. @return transfer end
     * (the bus is occupied from the computed start to the end).
     */
    Tick busTransfer(Channel &ch, bool write, std::uint32_t bytes);

    void wpqInsert(Channel &ch, Addr line, RequestPtr req);
    void wpqDrain(unsigned ci);
    void startRead(unsigned ci, RequestPtr req);
    void checkFences();

    EventQueue &eventq;
    NvramConfig cfg;
    std::vector<Channel> channels;
    std::vector<RequestPtr> pendingFences;
    bool fencePollScheduled = false;

    /**
     * Requests issued but not yet past the core-to-iMC hop. For the
     * first coreToImcNs a request exists solely as a pending event,
     * invisible to every queue above; without this count quiescent()
     * would let a snapshot drop it. Necessarily zero at capture, so
     * never serialized.
     */
    unsigned pendingArrivals = 0;

    StatGroup statGroup;

    obs::TraceRecorder *tracer = nullptr;
    std::uint16_t lblBusRead = 0;
    std::uint16_t lblBusWrite = 0;
};

} // namespace vans::nvram

#endif // VANS_NVRAM_IMC_HH
