#include "nvram/lsq.hh"

#include "common/check.hh"
#include "common/logging.hh"
#include "common/snapshot.hh"
#include "common/trace_event.hh"

namespace vans::nvram
{

Lsq::Lsq(EventQueue &eq, const NvramConfig &config, RmwBuffer &rmw_ref,
         const std::string &name)
    : eventq(eq), cfg(config), rmw(rmw_ref), statGroup(name)
{
    rmw.onSpaceFreed = [this] { drain(); };
}

void
Lsq::attachTracer(obs::TraceRecorder &rec,
                  const std::string &track_name)
{
    tracer = &rec;
    traceTrack = rec.track(track_name);
    lblDrain = rec.label("group_drain");
    lblHazard = rec.label("raw_hazard");
    lblOccupancy = rec.label("occupancy");
}

bool
Lsq::canAcceptWrite(Addr addr) const
{
    Addr block = blockOf(addr);
    auto it = groups.find(block);
    if (it != groups.end() && !it->second.draining) {
        unsigned lane = static_cast<unsigned>(
            (addr / cacheLineSize) % linesPerBlock());
        if (it->second.presentMask & (1u << lane))
            return true; // Merge onto a pending line: free.
    }
    return numEntries < cfg.lsqEntries;
}

void
Lsq::acceptWrite(Addr addr)
{
    Addr block = blockOf(addr);
    unsigned lane = static_cast<unsigned>(
        (addr / cacheLineSize) % linesPerBlock());
    Tick now = eventq.curTick();

    auto it = groups.find(block);
    if (it != groups.end() && !it->second.draining) {
        Group &g = it->second;
        if (g.presentMask & (1u << lane)) {
            statGroup.scalar("write_merges").inc();
        } else {
            g.presentMask |= (1u << lane);
            ++numEntries;
            statGroup.scalar("writes").inc();
        }
        g.lastTouch = now;
        if (tracer) [[unlikely]]
            tracer->counter(traceTrack, lblOccupancy, now,
                            static_cast<double>(numEntries));
        if (groupFull(g))
            scheduleDrainCheck(now);
        else
            scheduleDrainCheck(now + nsToTicks(cfg.lsqEpochNs));
        return;
    }

    // The caller (the iMC drain) must have probed canAcceptWrite:
    // the LSQ is the 4KB on-DIMM queue and never overcommits.
    VANS_REQUIRE("lsq", now, numEntries < cfg.lsqEntries,
                 "acceptWrite without room (%zu entries, capacity %u)",
                 numEntries, cfg.lsqEntries);

    Group &g = openGroup(block);
    g.presentMask |= (1u << lane);
    g.lastTouch = now;
    ++numEntries;
    statGroup.scalar("writes").inc();
    if (tracer) [[unlikely]]
        tracer->counter(traceTrack, lblOccupancy, now,
                        static_cast<double>(numEntries));
    if (groupFull(g))
        scheduleDrainCheck(now);
    else
        scheduleDrainCheck(now + nsToTicks(cfg.lsqEpochNs));

    // High-watermark pressure keeps the queue from deadlocking the
    // bus when random traffic never completes a block.
    if (numEntries >= cfg.lsqEntries - cfg.lsqEntries / 8)
        scheduleDrainCheck(now);
}

Lsq::Group &
Lsq::openGroup(Addr block)
{
    Tick now = eventq.curTick();
    if (!freeGroups.empty()) {
        auto nh = std::move(freeGroups.back());
        freeGroups.pop_back();
        nh.key() = block;
        Group &g = nh.mapped();
        g.block = block;
        g.presentMask = 0;
        g.oldest = now;
        g.lastTouch = now;
        g.sealed = false;
        g.draining = false;
        return groups.insert(std::move(nh)).position->second;
    }
    Group &g = groups[block];
    g.block = block;
    g.oldest = now;
    return g;
}

bool
Lsq::readProbe(Addr addr, DoneCallback hazard_done)
{
    Addr block = blockOf(addr);
    auto it = groups.find(block);
    if (it == groups.end())
        return false;
    unsigned lane = static_cast<unsigned>(
        (addr / cacheLineSize) % linesPerBlock());
    Group &g = it->second;
    if (!g.draining && !(g.presentMask & (1u << lane)))
        return false;

    // Read-after-write hazard: force the group out and hold the
    // read until the data reaches the RMW buffer.
    statGroup.scalar("raw_hazards").inc();
    if (tracer) [[unlikely]]
        tracer->instant(traceTrack, lblHazard, eventq.curTick(),
                        addr);
    g.sealed = true;
    g.hazardWaiters.push_back(std::move(hazard_done));
    scheduleDrainCheck(eventq.curTick());
    return true;
}

bool
Lsq::pendingLine(Addr addr) const
{
    auto it = groups.find(blockOf(addr));
    if (it == groups.end())
        return false;
    unsigned lane = static_cast<unsigned>(
        (addr / cacheLineSize) % linesPerBlock());
    const Group &g = it->second;
    return g.draining || (g.presentMask & (1u << lane)) != 0;
}

void
Lsq::seal()
{
    for (auto &kv : groups)
        kv.second.sealed = true;
    statGroup.scalar("seals").inc();
    scheduleDrainCheck(eventq.curTick());
}

void
Lsq::scheduleDrainCheck(Tick when)
{
    when = std::max(when, eventq.curTick());
    if (drainCheckScheduled && drainCheckAt <= when)
        return;
    drainCheckScheduled = true;
    drainCheckAt = when;
    eventq.schedule(when, [this, when] {
        if (drainCheckScheduled && drainCheckAt == when) {
            drainCheckScheduled = false;
            drain();
        }
    });
}

std::size_t
Lsq::countedEntries() const
{
    std::size_t n = 0;
    for (const auto &kv : groups)
        n += popcount(kv.second.presentMask);
    return n;
}

void
Lsq::drain()
{
    Tick now = eventq.curTick();
    // The cached entry count is what admission control runs on; it
    // must always equal the recount over the present masks.
    VANS_AUDIT("lsq", now, numEntries == countedEntries(),
               "entry count %zu drifted from recount %zu", numEntries,
               countedEntries());
    Tick epoch = nsToTicks(cfg.lsqEpochNs);
    bool pressured =
        numEntries >= cfg.lsqEntries - cfg.lsqEntries / 8;

    Tick next_check = 0;
    // Oldest-first scan; groups is small (<= lsqEntries).
    Group *oldest_ready = nullptr;
    Group *oldest_any = nullptr;
    for (auto &kv : groups) {
        Group &g = kv.second;
        if (g.draining || g.presentMask == 0)
            continue;
        // Capacity pressure evicts the least-recently-touched
        // group: it is the least likely to complete its block.
        if (!oldest_any || g.lastTouch < oldest_any->lastTouch)
            oldest_any = &g;
        // The combining epoch is measured from the *last* touch:
        // actively rewritten groups stay and keep absorbing writes,
        // which is what keeps sub-LSQ working sets cheap (the 4KB
        // store plateau of Fig 5a).
        bool ready = groupFull(g) || g.sealed ||
                     now >= g.lastTouch + epoch;
        if (ready) {
            if (!oldest_ready || g.oldest < oldest_ready->oldest)
                oldest_ready = &g;
        } else {
            Tick t = g.lastTouch + epoch;
            if (!next_check || t < next_check)
                next_check = t;
        }
    }

    Group *pick = oldest_ready;
    if (!pick && pressured)
        pick = oldest_any;
    if (!pick) {
        if (next_check)
            scheduleDrainCheck(next_check);
        return;
    }

    if (!rmw.canAcceptWrite(pick->block))
        return; // rmw.onSpaceFreed re-enters drain().

    startGroupDrain(*pick);
}

void
Lsq::startGroupDrain(Group &g)
{
    unsigned lines = popcount(g.presentMask);
    std::uint32_t bytes = lines * cacheLineSize;
    if (bytes >= cfg.rmwLineBytes)
        statGroup.scalar("combined_drains").inc();
    else
        statGroup.scalar("partial_drains").inc();
    statGroup.average("drain_lines").sample(lines);

    Addr block = g.block;
    auto waiters = std::move(g.hazardWaiters);

    // The group moves into a drain latch: it leaves the queue now so
    // concurrent writes to the same block open a fresh group, and
    // its entries free immediately for the bus to refill.
    numEntries -= lines;
    // Recycle the map node (and its waiter-vector capacity) instead
    // of freeing it: the next group open reuses it allocation-free.
    auto nh = groups.extract(block);
    nh.mapped().hazardWaiters.clear();
    freeGroups.push_back(std::move(nh));
    ++drainLatch;
    Tick drain_start = eventq.curTick();
    if (tracer) [[unlikely]]
        tracer->counter(traceTrack, lblOccupancy, drain_start,
                        static_cast<double>(numEntries));

    rmw.acceptWrite(
        block, bytes,
        [this, block, drain_start,
         waiters = std::move(waiters)](Tick t) mutable {
            --drainLatch;
            if (tracer) [[unlikely]]
                tracer->spanAddr(traceTrack, lblDrain, drain_start,
                                 t, block);
            for (auto &w : waiters) {
                if (w)
                    w(t);
            }
            drain();
        });
    if (onSpaceFreed)
        onSpaceFreed();
}

void
Lsq::snapshotTo(snapshot::StateSink &sink) const
{
    VANS_REQUIRE("lsq", eventq.curTick(),
                 writeQuiescent() && !drainCheckScheduled &&
                     numEntries == 0,
                 "snapshot of a non-quiescent LSQ");
    sink.tag("lsq");
    statGroup.snapshotTo(sink);
}

void
Lsq::restoreFrom(snapshot::StateSource &src)
{
    VANS_REQUIRE("lsq", eventq.curTick(),
                 writeQuiescent() && !drainCheckScheduled,
                 "restore into a non-quiescent LSQ");
    src.tag("lsq");
    statGroup.restoreFrom(src);
}

} // namespace vans::nvram
