/**
 * @file
 * On-DIMM load-store queue (LSQ) model: 64 x 64B entries (4KB),
 * the write-combining stage the paper reverse engineers in sections
 * III-C and IV-A.
 *
 * Incoming 64B writes from the DDR-T bus are grouped by their 256B
 * parent block. A group drains to the RMW buffer when:
 *  - it is complete (all four 64B lines present): drains immediately
 *    as one combined 256B write, skipping the RMW fill;
 *  - its oldest entry exceeds the combining epoch: drains partial
 *    (sub-256B -> triggers read-modify-write downstream);
 *  - a fence seals the queue: every group becomes drain-eligible;
 *  - occupancy crosses the high watermark: oldest group drains.
 *
 * Reads probe the LSQ; a hit on a pending write is a read-after-
 * write hazard that force-drains the group and makes the read wait
 * until the line reaches the RMW buffer -- the mechanism behind the
 * elevated RaW latency of Fig 5c and its convergence at the 4KB LSQ
 * capacity.
 */

#ifndef VANS_NVRAM_LSQ_HH
#define VANS_NVRAM_LSQ_HH

#include <cstdint>
#include <map>
#include <vector>

#include "common/event_queue.hh"
#include "common/inplace_function.hh"
#include "common/stats.hh"
#include "common/types.hh"
#include "nvram/nvram_config.hh"
#include "nvram/rmw_buffer.hh"

namespace vans::nvram
{

/** Write-combining load-store queue in the DIMM controller. */
// simlint-hot
class Lsq
{
  public:
    using DoneCallback = InplaceFunction<void(Tick)>;

    Lsq(EventQueue &eq, const NvramConfig &cfg, RmwBuffer &rmw,
        const std::string &name);

    /** True while a 64B write can be admitted. */
    bool canAcceptWrite(Addr addr) const;

    /** Admit one 64B write arriving from the bus. */
    void acceptWrite(Addr addr);

    /**
     * Probe for a read to @p addr (64B). If the line is pending
     * here, the group is force-drained and @p hazard_done fires once
     * the line has reached the RMW buffer (the caller then reads the
     * RMW buffer). @return true if a hazard was found.
     */
    bool readProbe(Addr addr, DoneCallback hazard_done);

    /**
     * Side-effect-free peek: would a read to @p addr (64B) hit a
     * pending write here? Lets callers decide which callback to
     * build before committing to the readProbe force-drain.
     */
    bool pendingLine(Addr addr) const;

    /** Seal every group (fence semantics: closes combining epochs). */
    void seal();

    /** Registered by the iMC to learn about freed entries. */
    InplaceFunction<void()> onSpaceFreed;

    /** Entries currently held. */
    std::size_t occupancy() const { return numEntries; }

    /** True when no writes are pending here or in the drain latch. */
    bool
    writeQuiescent() const
    {
        return groups.empty() && drainLatch == 0;
    }

    /** Snapshot precondition: empty and no scheduled drain check. */
    bool
    quiescent() const
    {
        return writeQuiescent() && numEntries == 0 &&
               !drainCheckScheduled;
    }

    StatGroup &stats() { return statGroup; }

    /**
     * Attach tracing: one track showing group-drain spans (block
     * address annotated), read-after-write hazard instants, and an
     * occupancy counter series. Pointer only.
     */
    void attachTracer(obs::TraceRecorder &rec,
                      const std::string &track_name);

    /**
     * Serialize stats. Requires full quiescence: no groups, no
     * drain latch, no scheduled drain check (the queue itself is
     * empty at quiescence, so stats are the only state).
     */
    void snapshotTo(snapshot::StateSink &sink) const;
    void restoreFrom(snapshot::StateSource &src);

  private:
    // simlint-transient(groups exist only while writes are queued;
    // snapshotTo REQUIREs writeQuiescent with numEntries == 0, so
    // the map holding these is empty at capture)
    struct Group
    {
        Addr block; ///< 256B-aligned.
        std::uint8_t presentMask = 0;
        Tick oldest = 0;
        Tick lastTouch = 0;
        bool sealed = false;
        bool draining = false;
        std::vector<DoneCallback> hazardWaiters;
    };

    Addr blockOf(Addr addr) const { return alignDown(addr,
                                                     cfg.rmwLineBytes); }
    unsigned linesPerBlock() const
    {
        return cfg.rmwLineBytes / cacheLineSize;
    }
    bool groupFull(const Group &g) const
    {
        return g.presentMask ==
               ((1u << linesPerBlock()) - 1u);
    }
    unsigned popcount(std::uint8_t m) const
    {
        return static_cast<unsigned>(__builtin_popcount(m));
    }

    void scheduleDrainCheck(Tick when);
    void drain();
    void startGroupDrain(Group &g);

    /** Open a fresh group for @p block, reusing a recycled map node
     *  (and its hazard-waiter capacity) when one is available. */
    Group &openGroup(Addr block);

    /** Recount entries from the present masks (audits only). */
    std::size_t countedEntries() const;

    EventQueue &eventq;
    // simlint-transient(construction-time configuration: capture and
    // restore worlds are built from the same NvramConfig)
    NvramConfig cfg;
    RmwBuffer &rmw;

    // simlint-transient(empty at capture: snapshotTo REQUIREs
    // writeQuiescent and numEntries == 0)
    std::map<Addr, Group> groups; ///< Ordered: stable iteration.
    /** Extracted map nodes recycled between group open and drain, so
     *  steady-state write traffic churns no map-node allocations. */
    // simlint-transient(a pure allocation cache: holds no simulated
    // state, only empty recycled nodes)
    std::vector<std::map<Addr, Group>::node_type> freeGroups;
    // simlint-transient(provably 0 at capture, REQUIREd by
    // snapshotTo)
    std::size_t numEntries = 0;
    // simlint-transient(non-zero only while a group drain is in
    // flight, which writeQuiescent rules out)
    unsigned drainLatch = 0; ///< Groups between LSQ and RMW accept.

    // simlint-transient(provably false at capture, REQUIREd by
    // snapshotTo)
    bool drainCheckScheduled = false;
    // simlint-transient(meaningful only while drainCheckScheduled,
    // which the snapshot precondition rules out)
    Tick drainCheckAt = 0;

    StatGroup statGroup;

    obs::TraceRecorder *tracer = nullptr;
    // simlint-transient(trace wiring assigned by attachTracer after
    // construction; a restored world re-attaches its own recorder)
    std::uint16_t traceTrack = 0;
    // simlint-transient(trace label id, re-interned on attachTracer)
    std::uint16_t lblDrain = 0;
    // simlint-transient(trace label id, re-interned on attachTracer)
    std::uint16_t lblHazard = 0;
    // simlint-transient(trace label id, re-interned on attachTracer)
    std::uint16_t lblOccupancy = 0;
};

} // namespace vans::nvram

#endif // VANS_NVRAM_LSQ_HH
