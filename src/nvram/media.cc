#include "nvram/media.hh"

#include "common/check.hh"
#include "common/snapshot.hh"
#include "common/trace_event.hh"

namespace vans::nvram
{

XPointMedia::XPointMedia(EventQueue &eq, const NvramConfig &config)
    : eventq(eq),
      cfg(config),
      partitions(config.mediaPartitions),
      readTicks(nsToTicks(config.mediaReadNs)),
      writeTicks(nsToTicks(config.mediaWriteNs)),
      statGroup("media")
{}

void
XPointMedia::attachTracer(obs::TraceRecorder &rec,
                          const std::string &track_prefix)
{
    tracer = &rec;
    lblRead = rec.label("chunk_rd");
    lblWrite = rec.label("chunk_wr");
    lblFill = rec.label("chunk_fill");
    for (std::size_t i = 0; i < partitions.size(); ++i) {
        partitions[i].traceTrack =
            rec.track(track_prefix + ".p" + std::to_string(i));
    }
}

unsigned
XPointMedia::partitionOf(Addr media_addr) const
{
    return static_cast<unsigned>(
        (media_addr / cfg.mediaChunkBytes) % partitions.size());
}

void
XPointMedia::kick(unsigned pi)
{
    Partition &p = partitions[pi];
    if (p.busy)
        return;
    // Demand reads outrank writes outrank background fills: a
    // pointer-chasing critical chunk must not queue behind the
    // previous miss's background fill.
    FifoRing<Op> *q = nullptr;
    if (!p.demand.empty())
        q = &p.demand;
    else if (!p.writes.empty())
        q = &p.writes;
    else if (!p.fills.empty())
        q = &p.fills;
    if (!q)
        return;

    Op op = std::move(q->front());
    q->pop_front();
    p.busy = true;
    Tick start = std::max(eventq.curTick(), p.freeAt);
    Tick finish = start + (op.write ? writeTicks : readTicks);
    p.freeAt = finish;
    statGroup.average(op.write ? "write_queue_ns" : "read_queue_ns")
        .sample(ticksToNs(start - eventq.curTick()));
    if (tracer) [[unlikely]] {
        tracer->spanAddr(p.traceTrack,
                         op.write ? lblWrite
                                  : (op.fill ? lblFill : lblRead),
                         start, finish, op.addr);
    }
    // Not capturing `finish`: freeAt only advances in kick() under
    // !busy, so it still holds this op's finish tick when the
    // completion runs -- and the capture stays within the event
    // kernel's inline budget (DoneCallback's 16-byte alignment would
    // otherwise pad the capture past it).
    eventq.schedule(finish, [this, pi,
                             done = std::move(op.done)]() mutable {
        Partition &p = partitions[pi];
        Tick end = p.freeAt;
        p.busy = false;
        if (done)
            done(end);
        kick(pi);
    });
}

void
XPointMedia::enqueue(Addr media_addr, bool write, Priority prio,
                     DoneCallback done)
{
    unsigned pi = partitionOf(media_addr);
    Partition &p = partitions[pi];
    statGroup.scalar(write ? "chunk_writes" : "chunk_reads").inc();
    Op op{write, std::move(done), media_addr,
          prio == Priority::Fill};
    switch (prio) {
      case Priority::Demand:
        p.demand.push_back(std::move(op));
        break;
      case Priority::Write:
        p.writes.push_back(std::move(op));
        break;
      case Priority::Fill:
        p.fills.push_back(std::move(op));
        break;
    }
    // Writers must respect canAccept(): the per-partition write
    // queue bound is what propagates media pressure upstream.
    VANS_REQUIRE("media", eventq.curTick(),
                 !write || p.writes.size() <= maxQueueDepth,
                 "write queue overflow on partition %u (%zu > %zu)",
                 pi, p.writes.size(), maxQueueDepth);
    kick(pi);
}

void
XPointMedia::readChunk(Addr media_addr, DoneCallback done)
{
    enqueue(media_addr, false, Priority::Demand, std::move(done));
}

void
XPointMedia::readChunkBackground(Addr media_addr, DoneCallback done)
{
    enqueue(media_addr, false, Priority::Fill, std::move(done));
}

void
XPointMedia::writeChunk(Addr media_addr, DoneCallback done)
{
    enqueue(media_addr, true, Priority::Write, std::move(done));
}

Tick
XPointMedia::partitionFreeAt(Addr media_addr) const
{
    return partitions[partitionOf(media_addr)].freeAt;
}

bool
XPointMedia::canAccept(Addr media_addr) const
{
    const Partition &p = partitions[partitionOf(media_addr)];
    return p.writes.size() < maxQueueDepth;
}

std::size_t
XPointMedia::fillBacklog() const
{
    std::size_t n = 0;
    for (const auto &p : partitions)
        n += p.fills.size();
    return n;
}

std::size_t
XPointMedia::pendingOps() const
{
    std::size_t n = 0;
    for (const auto &p : partitions) {
        n += p.demand.size() + p.writes.size() + p.fills.size() +
             (p.busy ? 1 : 0);
    }
    return n;
}

void
XPointMedia::snapshotTo(snapshot::StateSink &sink) const
{
    VANS_REQUIRE("media", eventq.curTick(), pendingOps() == 0,
                 "snapshot with %zu media ops in flight",
                 pendingOps());
    sink.tag("media");
    sink.u64(partitions.size());
    for (const auto &p : partitions)
        sink.u64(p.freeAt);
    statGroup.snapshotTo(sink);
}

void
XPointMedia::restoreFrom(snapshot::StateSource &src)
{
    VANS_REQUIRE("media", eventq.curTick(), pendingOps() == 0,
                 "restore into a busy media model");
    src.tag("media");
    std::uint64_t n = src.u64();
    VANS_REQUIRE("media", eventq.curTick(), n == partitions.size(),
                 "partition count mismatch (%llu vs %zu)",
                 static_cast<unsigned long long>(n),
                 partitions.size());
    for (auto &p : partitions)
        p.freeAt = src.u64();
    statGroup.restoreFrom(src);
}

} // namespace vans::nvram
