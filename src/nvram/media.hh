/**
 * @file
 * 3D-XPoint media model.
 *
 * The media is an array of 256B chunks spread over a small number of
 * independent partitions (die groups). Each partition services one
 * chunk operation at a time from three priority queues -- demand
 * reads, writes, then background fills -- with reads several times
 * faster than writes, matching the asymmetry the paper's
 * characterization shows. Addresses given to the media are *media*
 * addresses: the AIT above performs the CPU-to-media indirection,
 * and wear-leveling migrations change that mapping, not this device.
 */

#ifndef VANS_NVRAM_MEDIA_HH
#define VANS_NVRAM_MEDIA_HH

#include <cstdint>
#include <string>
#include <vector>

#include "common/event_queue.hh"
#include "common/fifo_ring.hh"
#include "common/inplace_function.hh"
#include "common/stats.hh"
#include "common/types.hh"
#include "nvram/nvram_config.hh"

namespace vans::obs
{
class TraceRecorder;
} // namespace vans::obs

namespace vans::nvram
{

/** The non-volatile media array behind the AIT. */
// simlint-hot
class XPointMedia
{
  public:
    using DoneCallback = InplaceFunction<void(Tick)>;

    XPointMedia(EventQueue &eq, const NvramConfig &cfg);

    /**
     * Demand-read one media chunk (cfg.mediaChunkBytes at
     * @p media_addr, chunk-aligned). Highest priority.
     */
    void readChunk(Addr media_addr, DoneCallback done);

    /** Background fill read: lowest priority. */
    void readChunkBackground(Addr media_addr, DoneCallback done);

    /** Write one media chunk. @p done fires at persist time. */
    void writeChunk(Addr media_addr, DoneCallback done);

    /** Earliest tick the partition owning @p media_addr frees. */
    Tick partitionFreeAt(Addr media_addr) const;

    /**
     * Write admission control: true while the owning partition's
     * write queue is below its depth limit. Callers seeing false
     * must retry (e.g. at partitionFreeAt()); this is how media
     * write pressure propagates back to the CPU store stream.
     */
    bool canAccept(Addr media_addr) const;

    /** Queue depth over all partitions (pending + in flight). */
    std::size_t pendingOps() const;

    /** Outstanding background-fill chunks across all partitions.
     *  The AIT throttles new misses when this backs up, which is
     *  what converts 4KB-per-miss fills into a real bandwidth cost
     *  instead of silently deferred work. */
    std::size_t fillBacklog() const;

    StatGroup &stats() { return statGroup; }

    /**
     * Attach tracing: one track per partition, a span per chunk
     * operation covering its device-busy interval. Pointer only.
     */
    void attachTracer(obs::TraceRecorder &rec,
                      const std::string &track_prefix);

    /**
     * Serialize warm media state (per-partition busy horizon +
     * stats). Requires pendingOps() == 0: operation queues and the
     * completion events that drain them are never serialized.
     */
    void snapshotTo(snapshot::StateSink &sink) const;
    void restoreFrom(snapshot::StateSource &src);

  private:
    enum class Priority : std::uint8_t
    {
        Demand,
        Write,
        Fill,
    };

    // simlint-transient(ops live in the per-partition queues, and
    // snapshotTo REQUIREs pendingOps() == 0: none exist at capture)
    struct Op
    {
        bool write;
        DoneCallback done;
        Addr addr = 0;       ///< Chunk address (trace annotation).
        bool fill = false;   ///< Background fill (trace label).
    };

    struct Partition
    {
        Tick freeAt = 0;
        // simlint-transient(true only while an op occupies the
        // partition; pendingOps() == 0 is the snapshot precondition)
        bool busy = false;
        // simlint-transient(queued ops, empty at capture by the
        // pendingOps REQUIRE)
        FifoRing<Op> demand;
        // simlint-transient(queued ops, empty at capture by the
        // pendingOps REQUIRE)
        FifoRing<Op> writes;
        // simlint-transient(queued ops, empty at capture by the
        // pendingOps REQUIRE)
        FifoRing<Op> fills;
        // simlint-transient(trace wiring re-established by
        // attachTracer in the restored world)
        std::uint16_t traceTrack = 0; ///< Valid while tracer set.
    };

    unsigned partitionOf(Addr media_addr) const;
    void enqueue(Addr media_addr, bool write, Priority prio,
                 DoneCallback done);
    void kick(unsigned pi);

    EventQueue &eventq;
    // simlint-transient(construction-time configuration: capture and
    // restore worlds are built from the same NvramConfig)
    NvramConfig cfg;
    std::vector<Partition> partitions;
    // simlint-transient(latency derived from cfg in the constructor,
    // never mutated afterwards)
    Tick readTicks;
    // simlint-transient(latency derived from cfg in the constructor,
    // never mutated afterwards)
    Tick writeTicks;
    // simlint-transient(constant structural limit fixed at
    // construction)
    std::uint64_t maxQueueDepth = 4;
    StatGroup statGroup;

    obs::TraceRecorder *tracer = nullptr;
    // simlint-transient(trace label id, re-interned on attachTracer)
    std::uint16_t lblRead = 0;
    // simlint-transient(trace label id, re-interned on attachTracer)
    std::uint16_t lblWrite = 0;
    // simlint-transient(trace label id, re-interned on attachTracer)
    std::uint16_t lblFill = 0;
};

} // namespace vans::nvram

#endif // VANS_NVRAM_MEDIA_HH
