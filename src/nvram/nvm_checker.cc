#include "nvram/nvm_checker.hh"

#include <cstdio>
#include <utility>

#include "nvram/vans_system.hh"

namespace vans::nvram
{

namespace
{

/** Small printf helper for failure details. */
template <typename... Args>
std::string
fmt(const char *f, Args... args)
{
    char buf[256];
    std::snprintf(buf, sizeof(buf), f, args...);
    return buf;
}

} // namespace

void
NvmInvariantChecker::report(unsigned dimm_index, const char *rule,
                            std::string detail, Tick now)
{
    monitor.report({"nvram.dimm" + std::to_string(dimm_index), rule,
                    std::move(detail), now});
}

void
NvmInvariantChecker::auditOccupancy(const Occupancy &o,
                                    unsigned dimm_index, Tick now)
{
    if (o.wpq > cfg.wpqEntries) {
        report(dimm_index, "wpq-capacity",
               fmt("%zu lines held, capacity %u x 64B = %uB", o.wpq,
                   cfg.wpqEntries, cfg.wpqEntries * 64),
               now);
    }
    if (o.rpq > cfg.rpqEntries) {
        report(dimm_index, "rpq-capacity",
               fmt("%zu reads in flight, capacity %u", o.rpq,
                   cfg.rpqEntries),
               now);
    }
    if (o.lsq > cfg.lsqEntries) {
        report(dimm_index, "lsq-capacity",
               fmt("%zu entries held, capacity %u x 64B = %uB", o.lsq,
                   cfg.lsqEntries, cfg.lsqEntries * 64),
               now);
    }
    if (o.rmw > cfg.rmwEntries) {
        report(dimm_index, "rmw-capacity",
               fmt("%zu lines held, capacity %u x %uB = %uB", o.rmw,
                   cfg.rmwEntries, cfg.rmwLineBytes,
                   cfg.rmwEntries * cfg.rmwLineBytes),
               now);
    }
    if (o.aitBuf > cfg.aitBufEntries) {
        report(dimm_index, "ait-buffer-capacity",
               fmt("%zu lines resident, capacity %u x %uB", o.aitBuf,
                   cfg.aitBufEntries, cfg.aitLineBytes),
               now);
    }
    if (o.aitIntake > o.aitIntakeCap) {
        report(dimm_index, "ait-intake-capacity",
               fmt("%zu writes queued, intake bound %zu", o.aitIntake,
                   o.aitIntakeCap),
               now);
    }
}

void
NvmInvariantChecker::auditWear(const WearState &w, unsigned dimm_index,
                               Tick now)
{
    // Every migration is triggered by wearThreshold media writes to
    // its block (and the counter resets afterwards), so the media
    // must have absorbed at least migrations x threshold writes.
    if (w.migrations * cfg.wearThreshold > w.mediaWrites) {
        report(dimm_index, "wear-accounting",
               fmt("%llu migrations x threshold %llu exceeds %llu "
                   "media writes",
                   static_cast<unsigned long long>(w.migrations),
                   static_cast<unsigned long long>(cfg.wearThreshold),
                   static_cast<unsigned long long>(w.mediaWrites)),
               now);
    }
    // An in-flight migration whose end tick is already past would
    // block writes to its 64KB block forever.
    if (w.active > 0 && w.earliestEnd < now) {
        report(dimm_index, "stale-migration",
               fmt("%zu migrations in flight, earliest end %llu is "
                   "before tick %llu",
                   w.active,
                   static_cast<unsigned long long>(w.earliestEnd),
                   static_cast<unsigned long long>(now)),
               now);
    }
}

void
NvmInvariantChecker::audit(VansSystem &sys)
{
    ++numAudits;
    Tick now = eventq.curTick();
    Imc &imc = sys.imc();
    for (unsigned i = 0; i < imc.numDimms(); ++i) {
        NvramDimm &dimm = imc.dimm(i);
        Ait &ait = dimm.ait();
        Occupancy o;
        o.wpq = imc.wpqOccupancy(i);
        o.rpq = imc.rpqInFlight(i);
        o.lsq = dimm.lsq().occupancy();
        o.rmw = dimm.rmw().occupancy();
        o.aitBuf = ait.bufferOccupancy();
        o.aitIntake = ait.writeIntakeOccupancy();
        o.aitIntakeCap = ait.writeIntakeCapacity();
        auditOccupancy(o, i, now);

        WearLeveler &wear = ait.wearLeveler();
        WearState w;
        w.migrations = wear.migrations();
        w.mediaWrites = wear.stats().scalarValue("media_writes");
        w.active = wear.activeMigrations();
        w.earliestEnd = wear.earliestMigrationEnd();
        auditWear(w, i, now);
    }
}

void
NvmInvariantChecker::finalCheck(VansSystem &sys, bool queue_drained)
{
    audit(sys);
    if (!queue_drained)
        return;

    // The queue drained: every migration-end event has fired, so a
    // surviving in-flight record is a leak; and every combining /
    // staging stage must have written itself out (anything stuck now
    // has no event left to unstick it).
    Tick now = eventq.curTick();
    Imc &imc = sys.imc();
    for (unsigned i = 0; i < imc.numDimms(); ++i) {
        NvramDimm &dimm = imc.dimm(i);
        std::size_t active =
            dimm.ait().wearLeveler().activeMigrations();
        if (active > 0) {
            report(i, "migration-leak",
                   fmt("%zu migrations still recorded in flight after "
                       "the event queue drained",
                       active),
                   now);
        }
        if (!dimm.writeQuiescent()) {
            report(i, "write-leak",
                   fmt("writes still pending in the DIMM pipeline "
                       "(lsq=%zu rmw_quiet=%d ait_quiet=%d) after the "
                       "event queue drained",
                       dimm.lsq().occupancy(),
                       dimm.rmw().writeQuiescent() ? 1 : 0,
                       dimm.ait().writeQuiescent() ? 1 : 0),
                   now);
        }
    }
}

Verifier::Verifier(const EventQueue &eq, const NvramConfig &cfg,
                   const std::string &name)
    : mon(/*fail_fast=*/true),
      lifeChecker(eq, mon),
      invChecker(eq, cfg, mon),
      persistChecker(mon),
      statGroup(name + ".verify")
{}

void
Verifier::onIssue(Request &req, VansSystem &sys)
{
    lifeChecker.onIssue(req);
    auto prev = std::move(req.onComplete);
    req.onComplete = [this, &sys,
                      prev = std::move(prev)](Request &r) mutable {
        lifeChecker.onRetire(r);
        invChecker.audit(sys);
        // prev may release the handle; nothing runs after it.
        if (prev)
            prev(r);
    };
}

void
Verifier::finalCheck(VansSystem &sys, bool queue_drained)
{
    lifeChecker.finalCheck(queue_drained);
    invChecker.finalCheck(sys, queue_drained);
}

StatGroup &
Verifier::stats()
{
    statGroup.scalar("requests_issued").set(lifeChecker.issued());
    statGroup.scalar("requests_retired").set(lifeChecker.retired());
    statGroup.scalar("peak_in_flight").set(lifeChecker.peakInFlight());
    statGroup.scalar("audits").set(invChecker.audits());
    statGroup.scalar("persist_violations")
        .set(persistChecker.violations());
    statGroup.scalar("failures").set(mon.reported());
    verify::checkStatsInto(statGroup);
    return statGroup;
}

} // namespace vans::nvram
