/**
 * @file
 * NVM pipeline invariant checker + the verify=on aggregate.
 *
 * NvmInvariantChecker re-derives the occupancy and wear-leveling
 * bookkeeping of a running VansSystem from the outside, the way the
 * Ddr4Checker re-derives bank state from the command stream: it only
 * reads component occupancies through their public accessors and
 * compares them against the configured structure sizes from the paper
 * (512B WPQ, 4KB LSQ, 16KB RMW buffer, 16MB AIT buffer), so a
 * component whose own bookkeeping drifts cannot certify itself.
 *
 * The checker is deliberately passive: it never schedules events and
 * never issues requests, so a verified run has tick-for-tick the same
 * timing as an unverified one.
 *
 * The audit methods are pure over snapshots (Occupancy / wear
 * counters), which is what lets the negative tests feed corrupted
 * snapshots and assert that exactly the intended rule fires.
 *
 * Verifier bundles everything a verified system needs -- a Monitor,
 * the RequestLifecycleChecker and the NvmInvariantChecker -- and is
 * owned by VansSystem when verification is on ([nvram] verify=on or
 * the VANS_VERIFY environment variable).
 */

#ifndef VANS_NVRAM_NVM_CHECKER_HH
#define VANS_NVRAM_NVM_CHECKER_HH

#include <cstdint>
#include <string>

#include "common/check.hh"
#include "common/crash.hh"
#include "common/event_queue.hh"
#include "common/lifecycle.hh"
#include "common/request.hh"
#include "common/stats.hh"
#include "nvram/nvram_config.hh"

namespace vans::nvram
{

class VansSystem;

/** Occupancy snapshot of one DIMM pipeline (plus its iMC queues). */
struct Occupancy
{
    std::size_t wpq = 0;       ///< iMC WPQ lines held in ADR.
    std::size_t rpq = 0;       ///< iMC reads in flight past the RPQ.
    std::size_t lsq = 0;       ///< On-DIMM LSQ 64B entries.
    std::size_t rmw = 0;       ///< RMW buffer 256B lines.
    std::size_t aitBuf = 0;    ///< AIT buffer 4KB lines resident.
    std::size_t aitIntake = 0; ///< AIT write-intake queue depth.
    std::size_t aitIntakeCap = 0; ///< Configured intake bound.
};

/** Wear-leveling accounting snapshot of one DIMM. */
struct WearState
{
    std::uint64_t migrations = 0;  ///< Migrations started so far.
    std::uint64_t mediaWrites = 0; ///< Media chunk writes so far.
    std::size_t active = 0;        ///< Migrations in flight.
    Tick earliestEnd = 0;          ///< Soonest in-flight end tick.
};

/** External re-derivation of NVM pipeline invariants. */
class NvmInvariantChecker
{
  public:
    NvmInvariantChecker(const EventQueue &eq, const NvramConfig &config,
                        verify::Monitor &mon)
        : eventq(eq), cfg(config), monitor(mon)
    {}

    /**
     * Check one DIMM's occupancy snapshot against the configured
     * capacities. Pure over @p o: negative tests feed fabricated
     * snapshots here.
     */
    void auditOccupancy(const Occupancy &o, unsigned dimm_index,
                        Tick now);

    /**
     * Check one DIMM's wear-leveling accounting: every migration is
     * paid for by wearThreshold media writes to its block, and no
     * in-flight migration may end in the simulated past (a stale
     * record would stall writes to its block forever).
     */
    void auditWear(const WearState &w, unsigned dimm_index, Tick now);

    /** Snapshot and audit every DIMM of a live system. */
    void audit(VansSystem &sys);

    /**
     * Teardown audit. With @p queue_drained, additionally require
     * that no migration is still recorded in flight (their end events
     * must have fired) and that the write path is quiescent.
     */
    void finalCheck(VansSystem &sys, bool queue_drained);

    /** Full-system audits performed so far. */
    std::uint64_t audits() const { return numAudits; }

  private:
    void report(unsigned dimm_index, const char *rule,
                std::string detail, Tick now);

    const EventQueue &eventq;
    NvramConfig cfg;
    verify::Monitor &monitor;
    std::uint64_t numAudits = 0;
};

/**
 * Everything a verified VansSystem carries: the shared failure sink,
 * the request-lifecycle checker, and the pipeline invariant checker.
 */
class Verifier
{
  public:
    Verifier(const EventQueue &eq, const NvramConfig &cfg,
             const std::string &name);

    /**
     * Observe an issued request: registers it with the lifecycle
     * checker and hooks its completion callback so retirement is
     * observed and a full-system audit runs at every completion.
     */
    void onIssue(Request &req, VansSystem &sys);

    /** End-of-run checks; @p queue_drained as in the checkers. */
    void finalCheck(VansSystem &sys, bool queue_drained);

    verify::Monitor &monitor() { return mon; }
    verify::RequestLifecycleChecker &lifecycle() { return lifeChecker; }
    NvmInvariantChecker &invariants() { return invChecker; }

    /**
     * The PM-discipline checker (un-fenced dirty lines a program
     * assumed durable). Passive like the others: the crash harness
     * and tests feed it the cache-level events the memory system
     * never sees.
     */
    persist::PersistenceChecker &persistence()
    {
        return persistChecker;
    }

    /** Refresh and return the verifier's stat group. */
    StatGroup &stats();

  private:
    verify::Monitor mon;
    verify::RequestLifecycleChecker lifeChecker;
    NvmInvariantChecker invChecker;
    persist::PersistenceChecker persistChecker;
    StatGroup statGroup;
};

} // namespace vans::nvram

#endif // VANS_NVRAM_NVM_CHECKER_HH
