#include "nvram/nvram_config.hh"

#include "common/logging.hh"

namespace vans::nvram
{

void
NvramConfig::validate() const
{
    if (numDimms < 1)
        fatal("[nvram] num_dimms must be at least 1 (got %u)",
              numDimms);
    if (dimmCapacity == 0)
        fatal("[nvram] dimm_capacity must be positive");
    if (interleaved) {
        // dimmOf routes with a divide + modulo; a zero or
        // non-power-of-two interleave granularity silently skews the
        // channel distribution every figure depends on.
        if (interleaveBytes < cacheLineSize ||
            (interleaveBytes & (interleaveBytes - 1)) != 0) {
            fatal("[nvram] interleave_bytes must be a power of two "
                  ">= %u (got %llu)",
                  cacheLineSize,
                  static_cast<unsigned long long>(interleaveBytes));
        }
        if (interleaveBytes > dimmCapacity)
            fatal("[nvram] interleave_bytes %llu exceeds "
                  "dimm_capacity %llu",
                  static_cast<unsigned long long>(interleaveBytes),
                  static_cast<unsigned long long>(dimmCapacity));
    }
    // The sfence partial-drain charge tests wcFill % wcBufferBytes:
    // a buffer smaller than a line (or not a power of two) would
    // charge full-line NT streams at random.
    if (wcBufferBytes < cacheLineSize ||
        (wcBufferBytes & (wcBufferBytes - 1)) != 0) {
        fatal("[nvram] wc_buffer_bytes must be a power of two >= %u "
              "(got %u)",
              cacheLineSize, wcBufferBytes);
    }
    if (memoryMode()) {
        // The DRAM cache indexes sets with a mask; a non-power-of-two
        // capacity (or one below a single line) would fold distinct
        // lines onto the same set unevenly.
        if (dcacheCapacity < cacheLineSize ||
            (dcacheCapacity & (dcacheCapacity - 1)) != 0) {
            fatal("[nvram] dcache_capacity must be a power of two "
                  ">= %u (got %llu)",
                  cacheLineSize,
                  static_cast<unsigned long long>(dcacheCapacity));
        }
    }
}

NvramConfig
NvramConfig::optaneDefault()
{
    return NvramConfig{};
}

NvramConfig
NvramConfig::fromConfig(const Config &cfg)
{
    NvramConfig c;
    const std::string s = "nvram";
    std::string mode = cfg.get(s, "mode", "app_direct");
    if (mode == "memory") {
        c.mode = SystemMode::Memory;
    } else if (mode != "app_direct" && mode != "appdirect") {
        fatal("[nvram] mode must be app_direct or memory (got %s)",
              mode.c_str());
    }
    c.dcacheCapacity =
        cfg.getU64(s, "dcache_capacity", c.dcacheCapacity);
    c.numDimms = static_cast<unsigned>(
        cfg.getU64(s, "num_dimms", c.numDimms));
    c.interleaved = cfg.getBool(s, "interleaved", c.interleaved);
    c.interleaveBytes =
        cfg.getU64(s, "interleave_bytes", c.interleaveBytes);
    c.dimmCapacity = cfg.getU64(s, "dimm_capacity", c.dimmCapacity);
    c.wpqEntries = static_cast<unsigned>(
        cfg.getU64(s, "wpq_entries", c.wpqEntries));
    c.rpqEntries = static_cast<unsigned>(
        cfg.getU64(s, "rpq_entries", c.rpqEntries));
    c.coreToImcNs = cfg.getDouble(s, "core_to_imc_ns", c.coreToImcNs);
    c.busCmdNs = cfg.getDouble(s, "bus_cmd_ns", c.busCmdNs);
    c.busDataPer64bNs =
        cfg.getDouble(s, "bus_data_per_64b_ns", c.busDataPer64bNs);
    c.busTurnaroundNs =
        cfg.getDouble(s, "bus_turnaround_ns", c.busTurnaroundNs);
    c.wpqGrantNs = cfg.getDouble(s, "wpq_grant_ns", c.wpqGrantNs);
    c.lsqEntries = static_cast<unsigned>(
        cfg.getU64(s, "lsq_entries", c.lsqEntries));
    c.lsqProbeNs = cfg.getDouble(s, "lsq_probe_ns", c.lsqProbeNs);
    c.lsqEpochNs = cfg.getDouble(s, "lsq_epoch_ns", c.lsqEpochNs);
    c.rmwEntries = static_cast<unsigned>(
        cfg.getU64(s, "rmw_entries", c.rmwEntries));
    c.rmwLineBytes = static_cast<std::uint32_t>(
        cfg.getU64(s, "rmw_line_bytes", c.rmwLineBytes));
    c.rmwAccessNs = cfg.getDouble(s, "rmw_access_ns", c.rmwAccessNs);
    c.aitBufEntries = static_cast<unsigned>(
        cfg.getU64(s, "ait_buf_entries", c.aitBufEntries));
    c.aitLineBytes = static_cast<std::uint32_t>(
        cfg.getU64(s, "ait_line_bytes", c.aitLineBytes));
    c.aitTagNs = cfg.getDouble(s, "ait_tag_ns", c.aitTagNs);
    c.mediaChunkBytes = static_cast<std::uint32_t>(
        cfg.getU64(s, "media_chunk_bytes", c.mediaChunkBytes));
    c.mediaPartitions = static_cast<unsigned>(
        cfg.getU64(s, "media_partitions", c.mediaPartitions));
    c.mediaReadNs = cfg.getDouble(s, "media_read_ns", c.mediaReadNs);
    c.mediaWriteNs = cfg.getDouble(s, "media_write_ns", c.mediaWriteNs);
    c.wearBlockBytes =
        cfg.getU64(s, "wear_block_bytes", c.wearBlockBytes);
    c.wearThreshold = cfg.getU64(s, "wear_threshold", c.wearThreshold);
    c.migrationUs = cfg.getDouble(s, "migration_us", c.migrationUs);
    c.dimmCtrlNs = cfg.getDouble(s, "dimm_ctrl_ns", c.dimmCtrlNs);
    c.clwbExtraNs = cfg.getDouble(s, "clwb_extra_ns", c.clwbExtraNs);
    c.wcBufferBytes = static_cast<std::uint32_t>(
        cfg.getU64(s, "wc_buffer_bytes", c.wcBufferBytes));
    c.wcPartialDrainNs =
        cfg.getDouble(s, "wc_partial_drain_ns", c.wcPartialDrainNs);
    c.verify = cfg.getBool(s, "verify", c.verify);
    c.trace = cfg.getBool("trace", "enable", c.trace);
    // Reject malformed topologies at parse time, before any world is
    // built from this configuration.
    c.validate();
    return c;
}

} // namespace vans::nvram
