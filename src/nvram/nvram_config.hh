/**
 * @file
 * All tunable parameters of the VANS NVRAM model in one place.
 *
 * Defaults reproduce the Optane DIMM parameters characterized in the
 * paper (Fig 4 / Table V): 512B WPQ per channel, 4KB on-DIMM LSQ with
 * 64B entries, 16KB RMW buffer with 256B entries, 16MB AIT buffer
 * with 4KB entries, 256B media access granularity, 4KB multi-DIMM
 * interleaving, and 64KB wear-leveling blocks that migrate after
 * ~14,000 writes with a ~100x latency stall.
 */

#ifndef VANS_NVRAM_NVRAM_CONFIG_HH
#define VANS_NVRAM_NVRAM_CONFIG_HH

#include <cstdint>

#include "common/config.hh"
#include "common/types.hh"
#include "dram/timing.hh"

namespace vans::nvram
{

/**
 * Operating mode of the socket (paper section II-A). App Direct
 * exposes the NVM DIMMs directly -- load/store latency is media
 * latency and flush instructions are the persistence mechanism.
 * Memory mode interposes a direct-mapped, line-granularity DRAM
 * cache in front of each NVM channel: hits complete at DRAM
 * latency, misses fetch the line from the DIMM, dirty evictions
 * write it back. The cache is volatile, so Memory mode offers no
 * persistence guarantee (persistSupported() is false); flush-kind
 * stores still write through to the DIMM.
 */
enum class SystemMode : std::uint8_t
{
    AppDirect,
    Memory,
};

/** Complete parameter set for one simulated NVRAM memory system. */
struct NvramConfig
{
    // ---- Topology -------------------------------------------------
    SystemMode mode = SystemMode::AppDirect;
    unsigned numDimms = 1;
    bool interleaved = false;
    std::uint64_t interleaveBytes = 4096; ///< Paper section III-D.
    std::uint64_t dimmCapacity = 4ull << 30;

    // ---- iMC ------------------------------------------------------
    unsigned wpqEntries = 8;   ///< 8 x 64B = the 512B WPQ.
    unsigned rpqEntries = 32;
    /** Core + mesh + iMC pipeline, one way (ns). */
    double coreToImcNs = 50;

    // ---- DDR-T bus ------------------------------------------------
    double busCmdNs = 4;          ///< Command/handshake per transfer.
    double busDataPer64bNs = 3;   ///< 64B data beat at 2666 MT/s.
    double busTurnaroundNs = 55;  ///< Read<->write redirection cost.
    /** Request/grant handshake per WPQ write drained to the DIMM --
     *  the DDR-T write-channel pacing that sets the post-WPQ store
     *  plateau of Fig 5a. */
    double wpqGrantNs = 30;

    // ---- On-DIMM LSQ ---------------------------------------------
    unsigned lsqEntries = 64;     ///< 64 x 64B = 4KB.
    double lsqProbeNs = 6;
    /** Combining window: entries younger than this are held back to
     *  merge 64B writes into 256B media-friendly writes. */
    double lsqEpochNs = 600;

    // ---- RMW buffer ------------------------------------------------
    unsigned rmwEntries = 64;     ///< 64 x 256B = 16KB SRAM.
    std::uint32_t rmwLineBytes = 256;
    double rmwAccessNs = 30;

    // ---- AIT -------------------------------------------------------
    unsigned aitBufEntries = 4096; ///< 4096 x 4KB = 16MB.
    std::uint32_t aitLineBytes = 4096;
    double aitTagNs = 5;
    dram::DramTiming dramTiming = dram::DramTiming::ddr4OnDimm();

    // ---- 3D-XPoint media -------------------------------------------
    std::uint32_t mediaChunkBytes = 256;
    unsigned mediaPartitions = 6;
    double mediaReadNs = 150;
    double mediaWriteNs = 500;

    // ---- Memory-mode DRAM cache ------------------------------------
    /** Per-channel capacity of the direct-mapped DRAM cache (64B
     *  lines). Power of two; capacity / 64 is the set count. */
    std::uint64_t dcacheCapacity = 64ull << 20;
    /** Timing of the DRAM device serving as the cache (a full-size
     *  DDR4-2666 DIMM on the same channel, not the small on-DIMM
     *  device that backs the AIT). */
    dram::DramTiming dcacheTiming = dram::DramTiming::ddr4_2666();

    // ---- Wear leveling ---------------------------------------------
    std::uint64_t wearBlockBytes = 64 << 10;
    std::uint64_t wearThreshold = 14000;
    double migrationUs = 50;

    // ---- Returns / completion --------------------------------------
    double dimmCtrlNs = 18;  ///< DIMM controller FSM per request.

    // ---- Persistence instruction costs (Empirical Guide) -----------
    /** Extra one-way latency a clwb/clflushopt-initiated writeback
     *  pays over a plain store on its way to the iMC: the flush has
     *  to probe the cache hierarchy and eject the line before the
     *  write can travel (arXiv 1908.03583 / 1903.05714: flush+fence
     *  persists cost tens of ns over ntstore+fence at equal sizes). */
    double clwbExtraNs = 35;
    /** Write-combining drain granularity for NT stores. An sfence
     *  that cuts an NT-store run at a non-multiple of this size has
     *  to force out a partially filled combining buffer, which is
     *  what punishes small NT persists and puts the
     *  ntstore-vs-cached-write crossover at 256B (Empirical Guide,
     *  "avoid small ntstores"). */
    std::uint32_t wcBufferBytes = 256;
    /** Cost of that forced partial-buffer drain, charged once to the
     *  sfence that triggers it. */
    double wcPartialDrainNs = 120;

    // ---- Verification ----------------------------------------------
    /** Run with the model-integrity verifier attached (lifecycle +
     *  pipeline invariant checkers). The VANS_VERIFY environment
     *  variable turns this on globally; the [nvram] verify config key
     *  turns it on per system. Checking is passive -- it never
     *  perturbs simulated timing. */
    bool verify = false;

    // ---- Observability ---------------------------------------------
    /** Run with the trace recorder attached (per-request spans +
     *  per-component tracks, exported as Chrome trace-event JSON).
     *  The VANS_TRACE environment variable turns this on globally;
     *  the [trace] enable config key turns it on per system. Tracing
     *  is passive -- it never perturbs simulated timing. */
    bool trace = false;

    /**
     * Reject malformed topologies (zero DIMMs, non-power-of-two
     * interleave granularity, interleave wider than a DIMM) via
     * fatal(). Called by fromConfig() at parse time and by the iMC
     * at construction.
     */
    void validate() const;

    /** True when the socket runs with the DRAM cache in front. */
    bool memoryMode() const { return mode == SystemMode::Memory; }

    /** Table V defaults (what the validated runs use). */
    static NvramConfig optaneDefault();

    /** Apply overrides from a parsed Config ([nvram] section). */
    static NvramConfig fromConfig(const Config &cfg);
};

} // namespace vans::nvram

#endif // VANS_NVRAM_NVRAM_CONFIG_HH
