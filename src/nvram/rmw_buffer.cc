#include "nvram/rmw_buffer.hh"

#include <map>

#include "common/check.hh"
#include "common/logging.hh"
#include "common/snapshot.hh"
#include "common/trace_event.hh"

namespace vans::nvram
{

RmwBuffer::RmwBuffer(EventQueue &eq, const NvramConfig &config,
                     Ait &ait_ref, const std::string &name)
    : eventq(eq), cfg(config), ait(ait_ref), statGroup(name)
{
    ait.onWriteSpaceFreed = [this] { drainIssue(); };
}

void
RmwBuffer::attachTracer(obs::TraceRecorder &rec,
                        const std::string &track_name)
{
    tracer = &rec;
    traceTrack = rec.track(track_name);
    lblFill = rec.label("rmw_fill");
    lblReadMiss = rec.label("read_miss");
    lblOccupancy = rec.label("occupancy");
}

RmwBuffer::Entry *
RmwBuffer::find(Addr line)
{
    auto it = entries.find(line);
    return it == entries.end() ? nullptr : &it->second;
}

void
RmwBuffer::markClean(Entry &e)
{
    e.state = State::Clean;
    ++cleanCount;
    if (!e.inCleanLru) {
        cleanLru.push_front(e.line);
        e.inCleanLru = true;
    }
}

bool
RmwBuffer::makeRoom()
{
    if (entries.size() < cfg.rmwEntries)
        return true;
    // Evict the least recently used clean entry; lines that were
    // re-dirtied since joining the list are skipped lazily.
    while (!cleanLru.empty()) {
        Addr victim = cleanLru.back();
        cleanLru.pop_back();
        auto it = entries.find(victim);
        if (it != entries.end() &&
            it->second.state == State::Clean) {
            --cleanCount;
            entries.erase(it);
            statGroup.scalar("evictions").inc();
            return true;
        }
        if (it != entries.end())
            it->second.inCleanLru = false;
    }
    return false;
}

void
RmwBuffer::read(Addr addr, DoneCallback done)
{
    // State changes are synchronous; the SRAM access time lands on
    // the callback. This keeps admission checks race-free.
    Addr line = lineOf(addr);
    Tick access = nsToTicks(cfg.rmwAccessNs);

    Entry *e = find(line);
    if (e) {
        statGroup.scalar("read_hits").inc();
        if (e->state == State::Filling) {
            // Fill already in flight: piggyback on it.
            e->mergeWaiters.push_back(std::move(done));
            return;
        }
        eventq.scheduleAfter(access,
                             [done = std::move(done), this]() mutable {
                                 if (done)
                                     done(eventq.curTick());
                             });
        return;
    }

    statGroup.scalar("read_misses").inc();
    if (tracer) [[unlikely]]
        tracer->instant(traceTrack, lblReadMiss, eventq.curTick(),
                        addr);
    if (!makeRoom()) {
        // All entries hold staged writes: serve the read from the
        // AIT without caching rather than stalling it.
        statGroup.scalar("read_bypass").inc();
        eventq.scheduleAfter(access, [this, line,
                                      done = std::move(done)]() mutable {
            ait.read(line, std::move(done));
        });
        return;
    }
    Entry &ne = entries[line];
    ne.line = line;
    ne.state = State::Filling;
    ne.mergeWaiters.push_back(std::move(done));
    eventq.scheduleAfter(access, [this, line] {
        ait.read(line, [this, line](Tick t) {
            Entry *e2 = find(line);
            if (!e2)
                return;
            auto waiters = std::move(e2->mergeWaiters);
            e2->mergeWaiters.clear();
            if (e2->dirtyBytes > 0) {
                // A write merged while the fill was in flight.
                e2->state = State::Dirty;
                enqueueIssue(line);
            } else {
                markClean(*e2);
            }
            for (auto &w : waiters) {
                if (w)
                    w(t);
            }
        });
    });
}

bool
RmwBuffer::canAcceptWrite(Addr addr) const
{
    Addr line = alignDown(addr, cfg.rmwLineBytes);
    auto it = entries.find(line);
    if (it != entries.end()) {
        // Merging is only possible while the fill is still open or
        // the line is clean; a line with a staged write in flight
        // makes the writer wait -- the RMW buffer stages, it does
        // not coalesce indefinitely (this is why write working sets
        // larger than the LSQ pay full cost, Fig 5a).
        return it->second.state == State::Filling ||
               it->second.state == State::Clean;
    }
    if (writeFillsInFlight > 0)
        return false; // FIFO staging: wait for the open fill.
    if (entries.size() < cfg.rmwEntries)
        return true;
    return cleanCount > 0; // A clean victim can make room.
}

void
RmwBuffer::acceptWrite(Addr addr, std::uint32_t bytes,
                       DoneCallback done)
{
    Addr line = lineOf(addr);
    Tick access = nsToTicks(cfg.rmwAccessNs);
    statGroup.scalar("writes").inc();

    // The cached clean count drives both eviction and admission; it
    // must match a recount, and the buffer must hold its 64 x 256B.
    VANS_AUDIT("rmw", eventq.curTick(),
               cleanCount == countedClean() &&
                   entries.size() <= cfg.rmwEntries,
               "clean count %zu vs recount %zu, %zu lines (cap %u)",
               cleanCount, countedClean(), entries.size(),
               cfg.rmwEntries);

    auto finish = [this, access, done = std::move(done)]() mutable {
        eventq.scheduleAfter(access, [this,
                                      done = std::move(done)]() mutable {
            if (done)
                done(eventq.curTick());
        });
    };

    Entry *e = find(line);
    if (e) {
        statGroup.scalar("write_merges").inc();
        // Staged lines (Dirty / IssuedWait) make the writer wait --
        // canAcceptWrite must have rejected this call.
        VANS_REQUIRE("rmw", eventq.curTick(),
                     e->state == State::Clean ||
                         e->state == State::Filling,
                     "write merged into staged line %llx (state %u)",
                     static_cast<unsigned long long>(line),
                     static_cast<unsigned>(e->state));
        e->dirtyBytes += bytes;
        switch (e->state) {
          case State::Clean:
            e->state = State::Dirty;
            --cleanCount;
            enqueueIssue(line);
            break;
          case State::Filling:
          case State::Dirty:
          case State::IssuedWait:
            break; // Filling combines; the rest rejected above.
        }
        finish();
        return;
    }

    bool made_room = makeRoom();
    VANS_REQUIRE("rmw", eventq.curTick(), made_room,
                 "acceptWrite without room (%zu lines, %zu clean)",
                 entries.size(), cleanCount);

    Entry &ne = entries[line];
    ne.line = line;
    ne.dirtyBytes = bytes;
    ne.writeStaging = true;
    if (tracer) [[unlikely]]
        tracer->counter(traceTrack, lblOccupancy, eventq.curTick(),
                        static_cast<double>(entries.size()));
    if (bytes >= cfg.rmwLineBytes) {
        // Full-line write: no fill needed (this is what LSQ write
        // combining buys).
        ne.state = State::Dirty;
        enqueueIssue(line);
    } else {
        // Sub-256B write: the eponymous read-modify-write.
        statGroup.scalar("rmw_fills").inc();
        ne.state = State::Filling;
        ++writeFillsInFlight;
        Tick fill_start = eventq.curTick();
        eventq.scheduleAfter(access, [this, line, fill_start] {
            ait.readForFill(line, [this, line, fill_start](Tick t) {
                --writeFillsInFlight;
                if (tracer) [[unlikely]]
                    tracer->spanAddr(traceTrack, lblFill, fill_start,
                                     t, line);
                Entry *e2 = find(line);
                if (e2 && e2->state == State::Filling) {
                    auto waiters = std::move(e2->mergeWaiters);
                    e2->mergeWaiters.clear();
                    e2->state = State::Dirty;
                    enqueueIssue(line);
                    for (auto &w : waiters) {
                        if (w)
                            w(eventq.curTick());
                    }
                }
                if (onSpaceFreed)
                    onSpaceFreed();
            });
        });
    }
    finish();
}

void
RmwBuffer::enqueueIssue(Addr line)
{
    issueFifo.push_back(line);
    drainIssue();
}

void
RmwBuffer::drainIssue()
{
    if (issueBusy)
        return;
    while (!issueFifo.empty()) {
        Addr line = issueFifo.front();
        Entry *e = find(line);
        if (!e || e->state != State::Dirty) {
            issueFifo.pop_front();
            continue;
        }
        if (!ait.canAcceptWrite())
            return; // ait.onWriteSpaceFreed re-enters drainIssue().
        issueFifo.pop_front();
        e->state = State::IssuedWait;
        issueBusy = true;
        ait.acceptWrite(line, [this, line](Tick t) {
            issueBusy = false;
            Entry *e2 = find(line);
            if (e2)
                finishWrite(*e2, t);
            if (onSpaceFreed)
                onSpaceFreed();
            drainIssue();
        });
    }
}

void
RmwBuffer::finishWrite(Entry &e, Tick)
{
    e.dirtyBytes = 0;
    if (e.writeStaging) {
        // Pure staging entry: free the slot once the AIT has the
        // data. Retaining it would let the RMW buffer coalesce
        // write working sets up to its full 16KB, which the
        // measured store curve (inflection at the 4KB LSQ, Fig 5a)
        // shows the real device does not do.
        entries.erase(e.line);
        if (tracer) [[unlikely]]
            tracer->counter(traceTrack, lblOccupancy,
                            eventq.curTick(),
                            static_cast<double>(entries.size()));
        return;
    }
    markClean(e);
}

std::size_t
RmwBuffer::countedClean() const
{
    std::size_t n = 0;
    for (const auto &kv : entries) {
        if (kv.second.state == State::Clean)
            ++n;
    }
    return n;
}

bool
RmwBuffer::writeQuiescent() const
{
    if (!issueFifo.empty() || issueBusy)
        return false;
    for (const auto &kv : entries) {
        const Entry &e = kv.second;
        if (e.state == State::Dirty || e.state == State::IssuedWait ||
            (e.state == State::Filling && e.dirtyBytes > 0)) {
            return false;
        }
    }
    return true;
}

bool
RmwBuffer::quiescent() const
{
    if (!writeQuiescent() || writeFillsInFlight != 0)
        return false;
    for (const auto &kv : entries) {
        if (kv.second.state != State::Clean)
            return false;
    }
    return true;
}

void
RmwBuffer::snapshotTo(snapshot::StateSink &sink) const
{
    VANS_REQUIRE("rmw", eventq.curTick(),
                 writeQuiescent() && writeFillsInFlight == 0,
                 "snapshot of a non-quiescent RMW buffer");
    sink.tag("rmw");
    // Sorted by line so the image is independent of hash order; the
    // clean-LRU sequence is serialized verbatim (it may hold stale
    // addrs -- that laziness is model behavior and must survive).
    std::map<Addr, const Entry *> sorted;
    for (const auto &kv : entries)
        sorted[kv.first] = &kv.second;
    sink.u64(sorted.size());
    for (const auto &kv : sorted) {
        const Entry &e = *kv.second;
        VANS_REQUIRE("rmw", eventq.curTick(),
                     e.state == State::Clean &&
                         e.mergeWaiters.empty(),
                     "non-clean entry %llx at snapshot",
                     static_cast<unsigned long long>(e.line));
        sink.u64(e.line);
        sink.boolean(e.writeStaging);
        sink.boolean(e.inCleanLru);
    }
    sink.u64(cleanLru.size());
    for (Addr line : cleanLru)
        sink.u64(line);
    sink.u64(cleanCount);
    statGroup.snapshotTo(sink);
}

void
RmwBuffer::restoreFrom(snapshot::StateSource &src)
{
    VANS_REQUIRE("rmw", eventq.curTick(),
                 entries.empty() && cleanLru.empty() &&
                     issueFifo.empty() && !issueBusy &&
                     writeFillsInFlight == 0,
                 "restore into a non-fresh RMW buffer");
    src.tag("rmw");
    std::uint64_t n = src.u64();
    for (std::uint64_t i = 0; i < n; ++i) {
        Addr line = src.u64();
        Entry &e = entries[line];
        e.line = line;
        e.state = State::Clean;
        e.dirtyBytes = 0;
        e.writeStaging = src.boolean();
        e.inCleanLru = src.boolean();
    }
    std::uint64_t nl = src.u64();
    for (std::uint64_t i = 0; i < nl; ++i)
        cleanLru.push_back(src.u64());
    cleanCount = src.u64();
    statGroup.restoreFrom(src);
}

} // namespace vans::nvram
