/**
 * @file
 * RMW buffer model: the 16KB on-DIMM SRAM staging buffer with 256B
 * entries (paper sections III-C and IV-A).
 *
 * Dual role:
 *  - Read cache: read misses fill a 256B line from the AIT and the
 *    line stays resident (clean) until evicted, which is what makes
 *    pointer-chasing regions up to 16KB fast (the first latency
 *    plateau).
 *  - Write staging: writes from the LSQ are merged into an entry and
 *    issued FIFO to the AIT ("the RMW Buffer issues FIFO requests to
 *    the AIT Buffer"). Writes smaller than the 256B entry trigger the
 *    read-modify-write fill that gives the buffer its name -- and the
 *    4x write amplification LENS measures for sub-256B stores.
 *
 * Inclusive hierarchy: everything resident here was filled through
 * the AIT buffer, so the two levels form the two-level inclusive
 * hierarchy the paper's RaW experiment identifies (Fig 5c).
 */

#ifndef VANS_NVRAM_RMW_BUFFER_HH
#define VANS_NVRAM_RMW_BUFFER_HH

#include <cstdint>
#include <deque>
#include <list>
#include <unordered_map>
#include <vector>

#include "common/event_queue.hh"
#include "common/inplace_function.hh"
#include "common/stats.hh"
#include "common/types.hh"
#include "nvram/ait.hh"
#include "nvram/nvram_config.hh"

namespace vans::nvram
{

/** 64-entry x 256B SRAM staging buffer in front of the AIT. */
// simlint-hot
class RmwBuffer
{
  public:
    using DoneCallback = InplaceFunction<void(Tick)>;

    RmwBuffer(EventQueue &eq, const NvramConfig &cfg, Ait &ait,
              const std::string &name);

    /**
     * Read 64B at @p addr. @p done fires when data is available at
     * the DIMM controller.
     */
    void read(Addr addr, DoneCallback done);

    /** True while a write of a new line can be admitted. */
    bool canAcceptWrite(Addr addr) const;

    /**
     * Accept a write covering @p bytes at @p addr (aligned within
     * one 256B line). Writes of a full line skip the RMW fill.
     * @p done fires when the write is merged into the buffer entry
     * (LSQ may then free its entries).
     */
    void acceptWrite(Addr addr, std::uint32_t bytes, DoneCallback done);

    /** Registered by the LSQ to learn about freed space. */
    InplaceFunction<void()> onSpaceFreed;

    /** True when no dirty data is staged or queued toward the AIT. */
    bool writeQuiescent() const;

    /** Snapshot precondition: every entry Clean, no fills open. */
    bool quiescent() const;

    /** Resident-line count (tests and probers). */
    std::size_t occupancy() const { return entries.size(); }

    StatGroup &stats() { return statGroup; }

    /**
     * Attach tracing: one track showing read-modify-write fill
     * spans, read-miss instants, and an occupancy counter series.
     * Pointer only; the recorder outlives this model.
     */
    void attachTracer(obs::TraceRecorder &rec,
                      const std::string &track_name);

    /**
     * Serialize resident entries (sorted by line), the clean-LRU
     * sequence verbatim, and stats. Requires full quiescence: no
     * staged writes, no fills in flight, every entry Clean.
     */
    void snapshotTo(snapshot::StateSink &sink) const;
    void restoreFrom(snapshot::StateSource &src);

  private:
    enum class State : std::uint8_t
    {
        Filling,    ///< AIT fill in flight (RMW read pending).
        Dirty,      ///< Staged write waiting in the issue FIFO.
        IssuedWait, ///< Offered to the AIT, waiting for intake.
        Clean,      ///< Data valid, nothing pending (read cache).
    };

    struct Entry
    {
        Addr line;
        State state = State::Clean;
        // simlint-transient(snapshotTo REQUIREs every entry Clean,
        // and clean entries have no dirty bytes; restoreFrom
        // re-zeroes it explicitly)
        std::uint32_t dirtyBytes = 0;
        /** Entry exists only to stage a write: freed after issue.
         *  Read-fill entries are retained clean instead -- the RMW
         *  buffer is a read cache but only a *staging* buffer for
         *  writes (paper: "issues FIFO requests to the AIT"). */
        bool writeStaging = false;
        bool inCleanLru = false; ///< Present in the LRU list.
        // simlint-transient(waiters exist only on in-flight entries;
        // snapshotTo REQUIREs every entry Clean with
        // mergeWaiters.empty())
        std::vector<DoneCallback> mergeWaiters;
    };

    Addr lineOf(Addr addr) const { return alignDown(addr,
                                                    cfg.rmwLineBytes); }

    Entry *find(Addr line);

    /** Transition @p e to Clean and register it as evictable. */
    void markClean(Entry &e);

    /** Evict a clean entry to make room. @return true on success. */
    bool makeRoom();

    void enqueueIssue(Addr line);
    void drainIssue();
    void finishWrite(Entry &e, Tick when);

    /** Recount State::Clean entries (audits only). */
    std::size_t countedClean() const;

    EventQueue &eventq;
    // simlint-transient(construction-time configuration: capture and
    // restore worlds are built from the same NvramConfig)
    NvramConfig cfg;
    Ait &ait;

    std::unordered_map<Addr, Entry> entries;
    std::list<Addr> cleanLru;          ///< Front = most recent.
    std::size_t cleanCount = 0;        ///< Entries in State::Clean.
    // simlint-transient(holds dirty lines only; writeQuiescent --
    // the snapshot precondition -- means none exist, and restoreFrom
    // REQUIREs it empty)
    std::deque<Addr> issueFifo;        ///< Dirty lines, FIFO to AIT.
    // simlint-transient(provably false at capture: the issue engine
    // runs only while issueFifo is non-empty)
    bool issueBusy = false;
    /** Write-staging fills in flight. The staging pipeline is FIFO
     *  (paper section IV-A), so an open read-modify-write fill
     *  blocks admission of further staged writes -- the mechanism
     *  that prices sub-256B write streams once the LSQ overflows. */
    unsigned writeFillsInFlight = 0;

    StatGroup statGroup;

    obs::TraceRecorder *tracer = nullptr;
    // simlint-transient(trace wiring assigned by attachTracer after
    // construction; a restored world re-attaches its own recorder)
    std::uint16_t traceTrack = 0;
    // simlint-transient(trace label id, re-interned on attachTracer)
    std::uint16_t lblFill = 0;
    // simlint-transient(trace label id, re-interned on attachTracer)
    std::uint16_t lblReadMiss = 0;
    // simlint-transient(trace label id, re-interned on attachTracer)
    std::uint16_t lblOccupancy = 0;
};

} // namespace vans::nvram

#endif // VANS_NVRAM_RMW_BUFFER_HH
