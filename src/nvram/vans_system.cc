#include "nvram/vans_system.hh"

#include "common/check.hh"
#include "common/logging.hh"
#include "common/snapshot.hh"
#include "nvram/nvm_checker.hh"

namespace vans::nvram
{

VansSystem::VansSystem(EventQueue &eq, const NvramConfig &config,
                       std::string name)
    : MemorySystem(eq),
      cfg(config),
      sysName(std::move(name)),
      imcModel(eq, config, sysName + ".imc")
{
    if (cfg.verify || verify::envEnabled()) {
        verif = std::make_unique<Verifier>(eq, cfg, sysName);
        imcModel.lifecycle = &verif->lifecycle();
    }
}

VansSystem::~VansSystem()
{
    if (verif)
        verif->finalCheck(*this, eventq.empty());
}

void
VansSystem::issue(RequestPtr req)
{
    req->id = nextRequestId();
    req->issueTick = eventq.curTick();
    if (verif)
        verif->onIssue(req, *this);
    switch (req->op) {
      case MemOp::Read:
      case MemOp::ReadNT:
        imcModel.issueRead(req);
        break;
      case MemOp::Write:
      case MemOp::WriteNT:
      case MemOp::Clwb:
        imcModel.issueWrite(req);
        break;
      case MemOp::Fence:
        imcModel.issueFence(req);
        break;
    }
}

bool
VansSystem::quiescent() const
{
    return imcModel.quiescent();
}

void
VansSystem::snapshotTo(snapshot::StateSink &sink) const
{
    sink.tag("vans");
    sink.u64(lastRequestId());
    imcModel.snapshotTo(sink);
}

void
VansSystem::restoreFrom(snapshot::StateSource &src)
{
    src.tag("vans");
    setLastRequestId(src.u64());
    imcModel.restoreFrom(src);
}

std::uint64_t
VansSystem::totalRmwFills()
{
    std::uint64_t n = 0;
    for (unsigned i = 0; i < imcModel.numDimms(); ++i)
        n += imcModel.dimm(i).rmw().stats().scalarValue("rmw_fills");
    return n;
}

std::uint64_t
VansSystem::totalMigrations()
{
    std::uint64_t n = 0;
    for (unsigned i = 0; i < imcModel.numDimms(); ++i)
        n += imcModel.dimm(i).ait().wearLeveler().migrations();
    return n;
}

std::uint64_t
VansSystem::totalMediaWrites()
{
    std::uint64_t n = 0;
    for (unsigned i = 0; i < imcModel.numDimms(); ++i) {
        n += imcModel.dimm(i).ait().mediaDev().stats().scalarValue(
            "chunk_writes");
    }
    return n;
}

std::uint64_t
VansSystem::totalMediaReads()
{
    std::uint64_t n = 0;
    for (unsigned i = 0; i < imcModel.numDimms(); ++i) {
        n += imcModel.dimm(i).ait().mediaDev().stats().scalarValue(
            "chunk_reads");
    }
    return n;
}

} // namespace vans::nvram
