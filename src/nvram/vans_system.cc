#include "nvram/vans_system.hh"

#include "common/check.hh"
#include "common/crash.hh"
#include "common/logging.hh"
#include "common/metrics.hh"
#include "common/snapshot.hh"
#include "common/trace_event.hh"
#include "nvram/nvm_checker.hh"

namespace vans::nvram
{

VansSystem::VansSystem(EventQueue &eq, const NvramConfig &config,
                       std::string name)
    : MemorySystem(eq),
      cfg(config),
      sysName(std::move(name)),
      imcModel(eq, reqPool, config, sysName + ".imc"),
      reqStats(sysName + ".requests"),
      kernelStats(sysName + ".kernel"),
      poolStats(sysName + ".reqpool")
{
    initObservers();
}

VansSystem::VansSystem(ShardedKernel &kernel, const NvramConfig &config,
                       std::string name)
    : MemorySystem(kernel.core()),
      cfg(config),
      sysName(std::move(name)),
      kern(&kernel),
      imcModel(kernel, reqPool, config, sysName + ".imc"),
      reqStats(sysName + ".requests"),
      kernelStats(sysName + ".kernel"),
      poolStats(sysName + ".reqpool")
{
    initObservers();
}

void
VansSystem::initObservers()
{
    if (cfg.verify || verify::envEnabled()) {
        verif = std::make_unique<Verifier>(eventq, cfg, sysName);
        imcModel.lifecycle = &verif->lifecycle();
    }
    if (cfg.trace || obs::envTraceEnabled()) {
        rec = std::make_unique<obs::TraceRecorder>();
        if (!kern) {
            imcModel.attachTracer(*rec, sysName + ".imc");
        } else {
            // One recorder per shard: channel components record
            // without synchronization; mergeRecorders stitches the
            // parts back into one deterministic timeline.
            std::vector<obs::TraceRecorder *> parts;
            for (unsigned i = 0; i < kern->numChannels(); ++i) {
                chanRecs.push_back(
                    std::make_unique<obs::TraceRecorder>());
                parts.push_back(chanRecs.back().get());
            }
            imcModel.attachTracer(*rec, parts, sysName + ".imc");
        }
    }
}

bool
VansSystem::step()
{
    return kern ? kern->step() : eventq.step();
}

std::string
VansSystem::traceJson() const
{
    if (!rec)
        return "";
    if (chanRecs.empty())
        return rec->toChromeJson();
    std::vector<const obs::TraceRecorder *> parts;
    parts.push_back(rec.get());
    for (const auto &r : chanRecs)
        parts.push_back(r.get());
    return obs::mergeRecorders(parts).toChromeJson();
}

VansSystem::~VansSystem()
{
    // A power-failed world skips the teardown audits: its in-flight
    // requests never retire and its write path never drains -- that
    // is the crash, not a leak.
    if (verif && !failed)
        verif->finalCheck(*this, kern ? kern->idle() : eventq.empty());
}

void
VansSystem::issue(RequestHandle h)
{
    VANS_REQUIRE("vans", eventq.curTick(), !failed,
                 "issue into a power-failed world");
    Request &req = reqPool.get(h);
    req.id = nextRequestId();
    req.issueTick = eventq.curTick();
    if (verif)
        verif->onIssue(req, *this);
    if (rec) [[unlikely]] {
        // Attach the slot's recycled hop log before recording the
        // issue. The wrapper spills the inner callback to the heap;
        // that is fine -- this path only runs in traced
        // (observability) runs.
        req.trace = &reqPool.traceFor(h);
        rec->onIssue(req, req.issueTick);
        auto inner = std::move(req.onComplete);
        req.onComplete = [this, inner = std::move(inner)](
                             Request &r) mutable {
            rec->onRetire(r, r.completeTick);
            const char *dist = isRead(r.op) ? "read_latency_ns"
                               : isWrite(r.op)
                                   ? "write_latency_ns"
                                   : "fence_latency_ns";
            reqStats.distribution(dist).sample(
                ticksToNs(r.latency()));
            if (inner)
                inner(r);
        };
    }
    switch (req.op) {
      case MemOp::Read:
      case MemOp::ReadNT:
        imcModel.issueRead(h);
        break;
      case MemOp::Write:
      case MemOp::WriteNT:
      case MemOp::Clwb:
      case MemOp::Clflushopt:
        imcModel.issueWrite(h);
        break;
      case MemOp::Fence:
        imcModel.issueFence(h);
        break;
      case MemOp::Sfence:
        imcModel.issueSfence(h);
        break;
    }
}

void
VansSystem::powerFail(persist::MediaImage &out)
{
    VANS_REQUIRE("vans", eventq.curTick(), !failed,
                 "powerFail on an already-failed world");
    VANS_REQUIRE("vans", eventq.curTick(),
                 imcModel.persistTrackingEnabled(),
                 "powerFail without persist tracking enabled");
    failed = true;
    // The ADR guarantee: WPQ contents drain to media on the standby
    // power, so everything the iMC accepted is durable -- and nothing
    // else is.
    std::vector<std::pair<Addr, std::uint64_t>> lines;
    imcModel.durableLines(lines);
    for (const auto &[line, version] : lines)
        out.set(line, version);
}

void
VansSystem::loadDurableImage(const persist::MediaImage &image)
{
    VANS_REQUIRE("vans", eventq.curTick(), lastRequestId() == 0,
                 "loadDurableImage into a world that already issued "
                 "requests (restart seeds fresh worlds only)");
    imcModel.enablePersistTracking();
    for (const auto &[line, version] : image.lines())
        imcModel.seedDurable(line, version);
}

persist::PersistenceChecker *
VansSystem::persistenceChecker()
{
    return verif ? &verif->persistence() : nullptr;
}

bool
VansSystem::quiescent() const
{
    return imcModel.quiescent();
}

void
VansSystem::metricsInto(MetricsRegistry &reg)
{
    reg.add(imcModel.stats());
    for (unsigned i = 0; i < imcModel.numDimms(); ++i) {
        NvramDimm &d = imcModel.dimm(i);
        reg.add(imcModel.channelStats(i));
        reg.add(d.lsq().stats());
        reg.add(d.rmw().stats());
        reg.add(d.ait().stats());
        reg.add(d.ait().mediaDev().stats());
        reg.add(d.ait().wearLeveler().stats());
        reg.add(d.ait().dramCtrl().stats());
        if (DramCache *dc = imcModel.dramCache(i)) {
            // Memory mode: hit-ratio / dirty-evict / write-through
            // counters plus the cache DIMM's DDR4 controller.
            reg.add(dc->stats());
            reg.add(dc->dramCtrl().stats());
        }
    }
    reg.add(reqStats);
    // Event-kernel counters are sampled fresh on each export. Every
    // exported kernel counter is deterministic across thread counts;
    // the sharded determinism tests byte-compare this JSON.
    kernelStats.reset();
    eventq.statsInto(kernelStats);
    if (kern)
        kern->statsInto(kernelStats);
    reg.add(kernelStats);
    // Pool counters are deterministic for any kernel thread count:
    // slots are allocated and released core-side only.
    poolStats.reset();
    reqPool.statsInto(poolStats);
    reg.add(poolStats);
    if (kern) {
        if (chanKernelStats.empty()) {
            for (unsigned i = 0; i < kern->numChannels(); ++i) {
                chanKernelStats.push_back(std::make_unique<StatGroup>(
                    sysName + ".kernel.ch" + std::to_string(i)));
            }
        }
        for (unsigned i = 0; i < kern->numChannels(); ++i) {
            chanKernelStats[i]->reset();
            kern->channelQueue(i).statsInto(*chanKernelStats[i]);
            reg.add(*chanKernelStats[i]);
        }
    }
}

void
VansSystem::snapshotTo(snapshot::StateSink &sink) const
{
    sink.tag("vans");
    sink.u64(lastRequestId());
    reqPool.snapshotTo(sink);
    imcModel.snapshotTo(sink);
}

void
VansSystem::restoreFrom(snapshot::StateSource &src)
{
    src.tag("vans");
    setLastRequestId(src.u64());
    reqPool.restoreFrom(src);
    imcModel.restoreFrom(src);
}

std::uint64_t
VansSystem::totalRmwFills()
{
    std::uint64_t n = 0;
    for (unsigned i = 0; i < imcModel.numDimms(); ++i)
        n += imcModel.dimm(i).rmw().stats().scalarValue("rmw_fills");
    return n;
}

std::uint64_t
VansSystem::totalMigrations()
{
    std::uint64_t n = 0;
    for (unsigned i = 0; i < imcModel.numDimms(); ++i)
        n += imcModel.dimm(i).ait().wearLeveler().migrations();
    return n;
}

std::uint64_t
VansSystem::totalMediaWrites()
{
    std::uint64_t n = 0;
    for (unsigned i = 0; i < imcModel.numDimms(); ++i) {
        n += imcModel.dimm(i).ait().mediaDev().stats().scalarValue(
            "chunk_writes");
    }
    return n;
}

std::uint64_t
VansSystem::dcacheScalarSum(const std::string &stat)
{
    std::uint64_t n = 0;
    for (unsigned i = 0; i < imcModel.numDimms(); ++i) {
        if (DramCache *dc = imcModel.dramCache(i))
            n += dc->stats().scalarValue(stat);
    }
    return n;
}

std::uint64_t
VansSystem::totalMediaReads()
{
    std::uint64_t n = 0;
    for (unsigned i = 0; i < imcModel.numDimms(); ++i) {
        n += imcModel.dimm(i).ait().mediaDev().stats().scalarValue(
            "chunk_reads");
    }
    return n;
}

} // namespace vans::nvram
