/**
 * @file
 * VANS: the complete validated NVRAM memory system, as a
 * MemorySystem facade over the iMC + DIMM pipeline.
 *
 * This is the public entry point of the simulator: construct it from
 * an NvramConfig (or a parsed Config file), issue requests, read
 * statistics. LENS, the CPU model, the bench harnesses and the
 * examples all drive it through this interface.
 */

#ifndef VANS_NVRAM_VANS_SYSTEM_HH
#define VANS_NVRAM_VANS_SYSTEM_HH

#include <memory>
#include <string>
#include <vector>

#include "common/mem_system.hh"
#include "nvram/imc.hh"
#include "nvram/nvram_config.hh"

namespace vans::nvram
{

class Verifier;

/** The Optane-DIMM-style memory system modeled by this repo. */
class VansSystem : public MemorySystem
{
  public:
    VansSystem(EventQueue &eq, const NvramConfig &cfg,
               std::string name = "vans");

    /**
     * Sharded-kernel mode: the world is clocked by @p kern (one
     * shard per channel; kern.core() is this system's eventQueue()).
     * Drive it through step()/Driver exactly like the classic mode;
     * results are bit-identical for any kernel thread count.
     */
    VansSystem(ShardedKernel &kern, const NvramConfig &cfg,
               std::string name = "vans");
    ~VansSystem() override;

    void issue(RequestHandle h) override;

    /** Steps the sharded kernel when attached, else the queue. */
    bool step() override;
    std::string name() const override { return sysName; }
    std::uint64_t capacity() const override
    {
        return static_cast<std::uint64_t>(cfg.numDimms) *
               cfg.dimmCapacity;
    }

    const NvramConfig &config() const { return cfg; }
    Imc &imc() { return imcModel; }
    NvramDimm &dimm(unsigned i = 0) { return imcModel.dimm(i); }

    /** Sum of RMW fills over all DIMMs (write amplification probe). */
    std::uint64_t totalRmwFills();

    /** Sum of wear-leveling migrations over all DIMMs. */
    std::uint64_t totalMigrations();

    /** Sum of media chunk writes over all DIMMs. */
    std::uint64_t totalMediaWrites();

    /** Sum of media chunk reads over all DIMMs. */
    std::uint64_t totalMediaReads();

    /**
     * Sum of one Memory-mode DRAM-cache scalar ("hits", "misses",
     * "dirty_evicts", "nvm_line_writes", ...) over all channels.
     * Zero in App Direct mode (no caches exist).
     */
    std::uint64_t dcacheScalarSum(const std::string &stat);

    /**
     * The attached verifier, or nullptr when the system runs
     * unverified ([nvram] verify and VANS_VERIFY both off).
     */
    Verifier *verifier() { return verif.get(); }

    /**
     * The owned trace recorder, or nullptr when the system runs
     * untraced ([trace] enable and VANS_TRACE both off). This is the
     * single owner the whole component tree points into.
     */
    obs::TraceRecorder *tracer() override { return rec.get(); }

    /**
     * The whole recording as Chrome trace-event JSON: the single
     * recorder in classic mode, the per-shard recorders stitched
     * into one deterministic timeline (obs::mergeRecorders) in
     * sharded mode. Empty string when untraced.
     */
    std::string traceJson() const;

    /** The attached sharded kernel, or nullptr in classic mode. */
    ShardedKernel *shardedKernel() { return kern; }

    /**
     * Register every StatGroup in the tree (iMC, per-DIMM stages,
     * media, wear, on-DIMM DRAM, per-request latency distributions,
     * event-kernel counters) for machine-readable export.
     */
    void metricsInto(MetricsRegistry &reg) override;

    /** Per-request latency distributions (sampled in traced runs). */
    StatGroup &requestStats() { return reqStats; }

    /** Warm-world fork support (common/snapshot.hh). */
    bool snapshotSupported() const override { return true; }
    bool quiescent() const override;
    void snapshotTo(snapshot::StateSink &sink) const override;
    void restoreFrom(snapshot::StateSource &src) override;

    /** Persistence domain (common/crash.hh): the WPQ is the ADR
     *  durability boundary this system exposes. Memory mode opts
     *  out: its DRAM cache is volatile, so dirty write-back lines
     *  die with a power cut and the crash harness's App Direct
     *  durability contract does not hold. */
    bool persistSupported() const override
    {
        return !cfg.memoryMode();
    }
    void enablePersistTracking() override
    {
        imcModel.enablePersistTracking();
    }
    void powerFail(persist::MediaImage &out) override;
    bool powerFailed() const override { return failed; }
    void loadDurableImage(const persist::MediaImage &image) override;
    persist::PersistenceChecker *persistenceChecker() override;

  private:
    /** Shared constructor tail: verifier + tracer attachment. */
    void initObservers();

    // simlint-transient(construction-time configuration: capture and
    // restore worlds are built from the same NvramConfig)
    NvramConfig cfg;
    // simlint-transient(construction-time name; restoreFrom REQUIREs
    // the stream's stat-group names to match, which pins it)
    std::string sysName;
    ShardedKernel *kern = nullptr;
    Imc imcModel;
    /** Set by powerFail(): the world is dead -- it accepts no more
     *  issues and skips teardown audits (in-flight requests never
     *  retire in a crashed world, by design). */
    // simlint-transient(a failed world is never snapshotted: its
    // in-flight requests make quiescent() -- the snapshot
    // precondition -- false for good)
    bool failed = false;
    // simlint-transient(the verifier shadows in-flight requests, of
    // which there are none at quiescence; a restored world verifies
    // its own fresh request stream)
    std::unique_ptr<Verifier> verif;

    /**
     * Trace recorder ownership (unique_ptr is legal here only:
     * simlint's tracebyvalue rule). Deliberately excluded from
     * snapshotTo/restoreFrom -- a restored world records a fresh
     * trace, which the snapshot-identity test relies on. In sharded
     * mode `rec` holds the core-side events and chanRecs[ci] the
     * events recorded by channel ci's shard.
     */
    // simlint-transient(documented above: trace recorders are
    // deliberately excluded from snapshotTo/restoreFrom)
    std::unique_ptr<obs::TraceRecorder> rec;
    // simlint-transient(documented above: trace recorders are
    // deliberately excluded from snapshotTo/restoreFrom)
    std::vector<std::unique_ptr<obs::TraceRecorder>> chanRecs;
    // simlint-transient(holds latency distributions only, and
    // distributions are observability-only by the StatGroup snapshot
    // contract; a fork samples its own fresh latencies)
    StatGroup reqStats;
    // simlint-transient(derived view: metricsInto rebuilds it from
    // the event queue and kernel on every export)
    StatGroup kernelStats;

    /** Per-shard kernel counters, refreshed on each export. */
    // simlint-transient(derived view rebuilt by metricsInto from the
    // live shard queues on every export)
    std::vector<std::unique_ptr<StatGroup>> chanKernelStats;

    /** Request-pool counters, refreshed on each export. */
    // simlint-transient(derived view: metricsInto rebuilds it from
    // the pool counters on every export)
    StatGroup poolStats;
};

} // namespace vans::nvram

#endif // VANS_NVRAM_VANS_SYSTEM_HH
