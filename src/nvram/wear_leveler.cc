#include "nvram/wear_leveler.hh"

namespace vans::nvram
{

WearLeveler::WearLeveler(EventQueue &eq, const NvramConfig &config)
    : eventq(eq), cfg(config), statGroup("wear")
{}

void
WearLeveler::onMediaWrite(Addr addr)
{
    Addr block = blockOf(addr);
    std::uint64_t &count = wearCount[block];
    ++count;
    statGroup.scalar("media_writes").inc();

    if (count < cfg.wearThreshold || migrating.count(block))
        return;

    // Start an asynchronous migration of this block. The counter
    // resets -- the data now lives in fresh media with fresh wear.
    std::uint64_t wear = count;
    count = 0;
    Tick end = eventq.curTick() +
               nsToTicks(cfg.migrationUs * 1000.0);
    migrating[block] = end;
    statGroup.scalar("migrations").inc();
    eventq.schedule(end, [this, block] { migrating.erase(block); });
    if (onMigration)
        onMigration(block * cfg.wearBlockBytes, wear);
}

Tick
WearLeveler::blockedUntil(Addr addr) const
{
    auto it = migrating.find(blockOf(addr));
    return it == migrating.end() ? 0 : it->second;
}

std::uint64_t
WearLeveler::blockWear(Addr addr) const
{
    auto it = wearCount.find(blockOf(addr));
    return it == wearCount.end() ? 0 : it->second;
}

} // namespace vans::nvram
