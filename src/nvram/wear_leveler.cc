#include "nvram/wear_leveler.hh"

#include <algorithm>
#include <map>

#include "common/check.hh"
#include "common/snapshot.hh"
#include "common/trace_event.hh"

namespace vans::nvram
{

WearLeveler::WearLeveler(EventQueue &eq, const NvramConfig &config)
    : eventq(eq), cfg(config), statGroup("wear")
{}

void
WearLeveler::attachTracer(obs::TraceRecorder &rec,
                          const std::string &track_name)
{
    tracer = &rec;
    traceTrack = rec.track(track_name);
    lblMigration = rec.label("migration");
}

std::uint64_t
WearLeveler::migrationFlowId(Addr addr) const
{
    auto it = migrationFlows.find(blockOf(addr));
    return it == migrationFlows.end() ? 0 : it->second;
}

void
WearLeveler::onMediaWrite(Addr addr)
{
    Addr block = blockOf(addr);
    std::uint64_t &count = wearCount[block];
    ++count;
    statGroup.scalar("media_writes").inc();

    if (count < cfg.wearThreshold || migrating.count(block))
        return;

    // A migration triggers at exactly the threshold: writes to a
    // migrating block stall upstream (in the AIT), so the counter
    // can never overshoot. ~14000 writes per 64KB block by default.
    VANS_INVARIANT("wear", eventq.curTick(),
                   count == cfg.wearThreshold,
                   "migration of block %llx at wear %llu != "
                   "threshold %llu",
                   static_cast<unsigned long long>(block),
                   static_cast<unsigned long long>(count),
                   static_cast<unsigned long long>(cfg.wearThreshold));

    // Start an asynchronous migration of this block. The counter
    // resets -- the data now lives in fresh media with fresh wear.
    std::uint64_t wear = count;
    count = 0;
    Tick end = eventq.curTick() +
               nsToTicks(cfg.migrationUs * 1000.0);
    migrating[block] = end;
    statGroup.scalar("migrations").inc();
    if (tracer) [[unlikely]] {
        // The migration span covers [now, end]; the flow source sits
        // at its start so downstream stall slices (AIT track) can
        // draw the causality arrow back to this migration.
        Tick now = eventq.curTick();
        tracer->spanAddr(traceTrack, lblMigration, now, end,
                         block * cfg.wearBlockBytes);
        migrationFlows[block] =
            tracer->flowBegin(traceTrack, lblMigration, now);
    }
    eventq.schedule(end, [this, block] {
        migrating.erase(block);
        if (tracer) [[unlikely]]
            migrationFlows.erase(block);
    });
    if (onMigration)
        onMigration(block * cfg.wearBlockBytes, wear);
}

Tick
WearLeveler::blockedUntil(Addr addr) const
{
    auto it = migrating.find(blockOf(addr));
    return it == migrating.end() ? 0 : it->second;
}

std::uint64_t
WearLeveler::blockWear(Addr addr) const
{
    auto it = wearCount.find(blockOf(addr));
    return it == wearCount.end() ? 0 : it->second;
}

Tick
WearLeveler::earliestMigrationEnd() const
{
    Tick earliest = 0;
    for (const auto &kv : migrating)
        earliest = earliest ? std::min(earliest, kv.second) : kv.second;
    return earliest;
}

void
WearLeveler::snapshotTo(snapshot::StateSink &sink) const
{
    VANS_REQUIRE("wear", eventq.curTick(), migrating.empty(),
                 "snapshot with %zu in-flight migrations",
                 migrating.size());
    sink.tag("wear");
    // Sort by block so the image is independent of hash order.
    std::map<Addr, std::uint64_t> sorted(wearCount.begin(),
                                         wearCount.end());
    sink.u64(sorted.size());
    for (const auto &kv : sorted) {
        sink.u64(kv.first);
        sink.u64(kv.second);
    }
    statGroup.snapshotTo(sink);
}

void
WearLeveler::restoreFrom(snapshot::StateSource &src)
{
    VANS_REQUIRE("wear", eventq.curTick(),
                 migrating.empty() && wearCount.empty(),
                 "restore into a non-fresh wear leveler");
    src.tag("wear");
    std::uint64_t n = src.u64();
    for (std::uint64_t i = 0; i < n; ++i) {
        Addr block = src.u64();
        wearCount[block] = src.u64();
    }
    statGroup.restoreFrom(src);
}

} // namespace vans::nvram
