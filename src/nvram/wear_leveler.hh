/**
 * @file
 * Wear-leveling engine (paper sections III-D and IV-A).
 *
 * The AIT keeps a write counter per wear block (64KB by default).
 * When a block's counter crosses the threshold, the engine starts an
 * asynchronous migration: the block's data moves to a fresh media
 * location and the AIT translation record is updated. While a
 * migration is in flight, *writes to that block* stall until it
 * completes -- writes to other blocks proceed. This is precisely the
 * mechanism behind two measured behaviours:
 *
 *  - Fig 7b: overwriting one 256B region shows a >100x tail latency
 *    every ~threshold writes (the stalled write observes the full
 *    migration).
 *  - Fig 7c: once the overwrite region spans more than one wear
 *    block, the tail ratio collapses, because by the time the test
 *    returns to the migrating block the migration has finished --
 *    the stall hides behind writes to the other blocks.
 */

#ifndef VANS_NVRAM_WEAR_LEVELER_HH
#define VANS_NVRAM_WEAR_LEVELER_HH

#include <cstdint>
#include <string>
#include <unordered_map>

#include "common/event_queue.hh"
#include "common/inplace_function.hh"
#include "common/stats.hh"
#include "common/types.hh"
#include "nvram/nvram_config.hh"

namespace vans::obs
{
class TraceRecorder;
} // namespace vans::obs

namespace vans::nvram
{

/** Tracks per-block wear and runs background migrations. */
// simlint-hot
class WearLeveler
{
  public:
    WearLeveler(EventQueue &eq, const NvramConfig &cfg);

    /**
     * Account one media write to @p addr (CPU address space). May
     * start a migration of the owning block.
     */
    void onMediaWrite(Addr addr);

    /**
     * If the block owning @p addr is migrating, the tick at which
     * the migration completes (writes must stall until then);
     * otherwise 0.
     */
    Tick blockedUntil(Addr addr) const;

    /** Total migrations started so far. */
    std::uint64_t migrations() const
    {
        return statGroup.scalarValue("migrations");
    }

    /** Wear count of the block owning @p addr (since last reset). */
    std::uint64_t blockWear(Addr addr) const;

    /** Migrations currently in flight. */
    std::size_t activeMigrations() const { return migrating.size(); }

    /**
     * Completion tick of the earliest in-flight migration; 0 when
     * none. Every in-flight migration must complete in the future --
     * a stale entry would stall writes to its block forever.
     */
    Tick earliestMigrationEnd() const;

    /**
     * Lazy-cache hook (paper section V-C): called when a migration
     * of @p block_addr begins, carrying the wear count that
     * triggered it.
     */
    InplaceFunction<void(Addr block_addr, std::uint64_t wear)>
        onMigration;

    StatGroup &stats() { return statGroup; }

    /**
     * Attach tracing: each migration records a span on the wear
     * track and opens a flow whose id the AIT uses to connect the
     * stalls it causes. Held by pointer only (tracebyvalue rule).
     */
    void attachTracer(obs::TraceRecorder &rec,
                      const std::string &track_name);

    /** Flow id of the migration covering @p addr (0 when none or
     *  when tracing is off). */
    std::uint64_t migrationFlowId(Addr addr) const;

    /**
     * Serialize per-block wear counters (sorted by block for a
     * deterministic image) and stats. Requires no in-flight
     * migrations -- their completion events cannot be captured.
     */
    void snapshotTo(snapshot::StateSink &sink) const;
    void restoreFrom(snapshot::StateSource &src);

  private:
    Addr blockOf(Addr addr) const { return addr / cfg.wearBlockBytes; }

    EventQueue &eventq;
    // simlint-transient(construction-time configuration: capture and
    // restore worlds are built from the same NvramConfig)
    NvramConfig cfg;
    std::unordered_map<Addr, std::uint64_t> wearCount;
    std::unordered_map<Addr, Tick> migrating; ///< block -> end tick.
    StatGroup statGroup;

    obs::TraceRecorder *tracer = nullptr;
    // simlint-transient(trace wiring assigned by attachTracer after
    // construction; a restored world re-attaches its own recorder)
    std::uint16_t traceTrack = 0;
    // simlint-transient(trace label id, re-interned on attachTracer)
    std::uint16_t lblMigration = 0;
    /** block -> open migration flow id (traced runs only). */
    // simlint-transient(open trace flows track in-flight migrations,
    // and snapshotTo REQUIREs migrating.empty; a restored world
    // records a fresh trace anyway)
    std::unordered_map<Addr, std::uint64_t> migrationFlows;
};

} // namespace vans::nvram

#endif // VANS_NVRAM_WEAR_LEVELER_HH
