#include "opt/lazy_cache.hh"

#include <algorithm>

namespace vans::opt
{

LazyCache::LazyCache(const LazyCacheParams &params)
    : p(params), statGroup("lazy")
{}

void
LazyCache::attach(nvram::NvramDimm &d)
{
    dimm = &d;
    d.ait().writeAbsorber = [this](Addr addr) {
        return absorb(addr);
    };
    d.ait().wearLeveler().onMigration =
        [this](Addr block, std::uint64_t wear) {
            onMigration(block, wear);
        };
}

void
LazyCache::onMigration(Addr block_addr, std::uint64_t wear)
{
    // Priority: wear relative to the threshold that fired the
    // migration. The AIT already pays the migration; reusing its
    // record makes this update free (paper section V-C).
    (void)wear;
    statGroup.scalar("migration_updates").inc();
    Addr block = alignDown(block_addr, wearBlockBytes);
    if (hotSet.count(block))
        return;
    hotBlocks.push_front(block);
    hotSet.insert(block);
    while (hotBlocks.size() > p.wlbBlocks) {
        hotSet.erase(hotBlocks.back());
        hotBlocks.pop_back();
    }
}

Addr
LazyCache::insertLz1(Addr line)
{
    lz1.push_front(line);
    lz1Set.insert(line);
    std::uint64_t cap1 = p.lz1Bytes / p.lineBytes;
    if (lz1.size() <= cap1)
        return 0;
    // LZ1 victim cascades into LZ2 (inclusive pair).
    Addr victim = lz1.back();
    lz1.pop_back();
    lz1Set.erase(victim);
    lz2.push_front(victim);
    lz2Set.insert(victim);
    std::uint64_t cap2 = p.lz2Bytes / p.lineBytes;
    if (lz2.size() <= cap2)
        return 0;
    Addr out = lz2.back();
    lz2.pop_back();
    lz2Set.erase(out);
    return out;
}

bool
LazyCache::absorb(Addr addr)
{
    Addr line = lineOf(addr);

    // Hit in LZ1: refresh and absorb.
    if (lz1Set.count(line)) {
        auto it = std::find(lz1.begin(), lz1.end(), line);
        lz1.splice(lz1.begin(), lz1, it);
        statGroup.scalar("absorbed").inc();
        return true;
    }
    // Hit in LZ2: promote back into LZ1.
    if (lz2Set.count(line)) {
        auto it = std::find(lz2.begin(), lz2.end(), line);
        lz2.erase(it);
        lz2Set.erase(line);
        Addr wb = insertLz1(line);
        if (wb && dimm) {
            // Dirty LZ2 victim: real media write with wear.
            dimm->ait().wearLeveler().onMediaWrite(wb);
            dimm->ait().mediaDev().writeChunk(wb, nullptr);
            statGroup.scalar("writebacks").inc();
        }
        statGroup.scalar("absorbed").inc();
        return true;
    }

    // Allocate only for wear-hot candidates.
    Addr block = alignDown(line, wearBlockBytes);
    if (!hotSet.count(block))
        return false;
    Addr wb = insertLz1(line);
    if (wb && dimm) {
        dimm->ait().wearLeveler().onMediaWrite(wb);
        dimm->ait().mediaDev().writeChunk(wb, nullptr);
        statGroup.scalar("writebacks").inc();
    }
    statGroup.scalar("absorbed").inc();
    return true;
}

} // namespace vans::opt
