/**
 * @file
 * Lazy cache (paper section V-C): a tiny on-DIMM write cache for
 * wear-hot data.
 *
 * Two inclusive levels -- LZ1 (1KB, hottest) and LZ2 (2KB) -- plus a
 * Write Lookaside Buffer (WLB) holding the addresses of cached
 * lines. The cache is fed by the wear-leveler: when a migration
 * triggers, the migrated block's lines become lazy-cache candidates,
 * and subsequent writes to them are absorbed -- no media write, no
 * wear -- until evicted. Persistence rides on the existing ADR
 * domain (the 3KB total is far below the other on-DIMM buffers).
 *
 * Integration: attach() wires the cache into a VANS DIMM through
 * the AIT's writeAbsorber hook and the wear-leveler's onMigration
 * hook; detach by destroying the object.
 */

#ifndef VANS_OPT_LAZY_CACHE_HH
#define VANS_OPT_LAZY_CACHE_HH

#include <cstdint>
#include <list>
#include <unordered_map>
#include <unordered_set>

#include "common/stats.hh"
#include "common/types.hh"
#include "nvram/dimm.hh"

namespace vans::opt
{

/** Configuration of the lazy cache. */
struct LazyCacheParams
{
    std::uint64_t lz1Bytes = 1 << 10;
    std::uint64_t lz2Bytes = 2 << 10;
    std::uint32_t lineBytes = 256; ///< Absorb granularity (chunks).
    /** Wear count (relative to the migration threshold) above which
     *  a migrated block's lines become candidates. */
    double priorityThreshold = 1.0;
    /** How many recently migrated blocks the WLB protects. */
    unsigned wlbBlocks = 8;
};

/** The 2-level lazy write cache. */
class LazyCache
{
  public:
    explicit LazyCache(const LazyCacheParams &params = {});

    /** Wire into @p dimm (AIT absorber + wear migration hooks). */
    void attach(nvram::NvramDimm &dimm);

    /**
     * Absorption decision for a 256B write at @p addr. Allocates
     * into LZ1 on candidate hits; LZ1 victims cascade to LZ2; LZ2
     * victims write back to media.
     */
    bool absorb(Addr addr);

    /** Called when a migration of @p block_addr begins. */
    void onMigration(Addr block_addr, std::uint64_t wear);

    StatGroup &stats() { return statGroup; }

    std::uint64_t absorbed() const
    {
        return statGroup.scalarValue("absorbed");
    }

  private:
    Addr lineOf(Addr addr) const
    {
        return alignDown(addr, p.lineBytes);
    }

    /** LRU insert with cascade; returns evicted line or 0. */
    Addr insertLz1(Addr line);

    LazyCacheParams p;
    nvram::NvramDimm *dimm = nullptr;

    std::list<Addr> lz1; ///< Front = most recent.
    std::list<Addr> lz2;
    std::unordered_set<Addr> lz1Set;
    std::unordered_set<Addr> lz2Set;

    /** WLB: wear-hot blocks whose writes should be cached. */
    std::list<Addr> hotBlocks;
    std::unordered_set<Addr> hotSet;
    std::uint64_t wearBlockBytes = 64 << 10;

    StatGroup statGroup;
};

} // namespace vans::opt

#endif // VANS_OPT_LAZY_CACHE_HH
