#include "opt/pretranslation.hh"

namespace vans::opt
{

PreTranslation::PreTranslation(const PreTranslationParams &params)
    : p(params), rng(params.seed), statGroup("pretrans")
{}

void
PreTranslation::attach(cpu::CpuCore &core)
{
    core.tlbAssist = [this](Addr addr) { return deliver(addr); };
}

void
PreTranslation::update(Addr addr)
{
    std::uint64_t page = pageOf(addr);
    if (table.count(page))
        return;
    table.insert(page);
    tableFifo.push_back(page);
    std::uint64_t cap = p.tableBytes / p.entryBytes;
    while (tableFifo.size() > cap) {
        table.erase(tableFifo.front());
        tableFifo.pop_front();
    }
    statGroup.scalar("table_updates").inc();
}

bool
PreTranslation::deliver(Addr addr)
{
    std::uint64_t page = pageOf(addr);

    // The mkpt on the previous load both requested delivery and
    // (on a miss) updates the table for the next traversal
    // (Fig 13c step 6-8).
    bool present = table.count(page) > 0 || rlbSet.count(page) > 0;
    update(addr);
    if (!present) {
        statGroup.scalar("misses").inc();
        return false;
    }

    // Check-before-read: a stale entry costs the fallback walk
    // (the uncertain bit forces the real translation).
    if (rng.uniform() >= p.validProb) {
        statGroup.scalar("stale").inc();
        return false;
    }

    // Refresh the RLB.
    if (!rlbSet.count(page)) {
        rlb.push_front(page);
        rlbSet.insert(page);
        std::uint64_t cap = p.rlbBytes / p.entryBytes;
        while (rlb.size() > cap) {
            rlbSet.erase(rlb.back());
            rlb.pop_back();
        }
    }
    statGroup.scalar("deliveries").inc();
    return true;
}

} // namespace vans::opt
