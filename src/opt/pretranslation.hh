/**
 * @file
 * Pre-translation (paper section V-B): TLB entries for the *next*
 * pointer-chasing access are fetched from an on-DIMM table alongside
 * the data.
 *
 * Components modeled:
 *  - the Pre-translation table: paddr -> next-page pfn, stored in
 *    the on-DIMM DRAM as an AIT-entry extension. First traversal of
 *    a pointer populates it (mkpt update path, Fig 13c); later
 *    traversals deliver (Fig 13b).
 *  - the RLB: a small SRAM buffer of recently used entries on the
 *    CPU side.
 *  - check-before-read: delivered entries may be stale; the async
 *    page-walk validation keeps correctness, and a stale delivery
 *    costs a configurable penalty instead of a saved walk.
 *
 * Integration: attach() wires the object into a CpuCore (tlbAssist
 * hook). The core consults the hook when a dependent load follows a
 * marked (mkpt) load; a true return means the TLB entry arrived
 * with the previous load's data and the walk is skipped.
 */

#ifndef VANS_OPT_PRETRANSLATION_HH
#define VANS_OPT_PRETRANSLATION_HH

#include <cstdint>
#include <list>
#include <unordered_set>

#include "common/rng.hh"
#include "common/stats.hh"
#include "common/types.hh"
#include "cpu/core.hh"

namespace vans::opt
{

/** Configuration of Pre-translation. */
struct PreTranslationParams
{
    std::uint64_t rlbBytes = 1 << 10;   ///< 1KB RLB (Table V study).
    std::uint64_t tableBytes = 16 << 20; ///< On-DIMM table.
    std::uint64_t entryBytes = 8;
    /** Probability a delivered entry is still valid (page table
     *  unchanged since the mkpt update). */
    double validProb = 0.98;
    std::uint64_t seed = 99;
};

/** CPU/DIMM cooperation state for Pre-translation. */
class PreTranslation
{
  public:
    explicit PreTranslation(const PreTranslationParams &params = {});

    /** Wire into @p core's tlbAssist hook. */
    void attach(cpu::CpuCore &core);

    /**
     * Consulted for a dependent load at @p addr following a marked
     * load. @return true when the entry is delivered and valid (the
     * walk is skipped).
     */
    bool deliver(Addr addr);

    /** mkpt update path: learn the translation for @p addr. */
    void update(Addr addr);

    StatGroup &stats() { return statGroup; }

  private:
    std::uint64_t pageOf(Addr addr) const { return addr >> 12; }

    PreTranslationParams p;
    Rng rng;

    /** Pages whose pre-translation entries exist (bounded by the
     *  table capacity with FIFO replacement). */
    std::unordered_set<std::uint64_t> table;
    std::list<std::uint64_t> tableFifo;

    /** RLB: tiny LRU of recently delivered pages. */
    std::list<std::uint64_t> rlb;
    std::unordered_set<std::uint64_t> rlbSet;

    StatGroup statGroup;
};

} // namespace vans::opt

#endif // VANS_OPT_PRETRANSLATION_HH
