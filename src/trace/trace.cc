#include "trace/trace.hh"

#include <cstdio>
#include <fstream>
#include <sstream>

#include "common/logging.hh"

namespace vans::trace
{

char
instTypeChar(InstType t)
{
    switch (t) {
      case InstType::NonMem:
        return 'N';
      case InstType::Load:
        return 'L';
      case InstType::Store:
        return 'S';
      case InstType::StoreNT:
        return 'T';
      case InstType::Clwb:
        return 'C';
      case InstType::Clflushopt:
        return 'O';
      case InstType::Fence:
        return 'F';
      case InstType::Sfence:
        return 'P';
      case InstType::Mkpt:
        return 'M';
    }
    return '?';
}

namespace
{

InstType
typeFromChar(char c)
{
    switch (c) {
      case 'N':
        return InstType::NonMem;
      case 'L':
        return InstType::Load;
      case 'S':
        return InstType::Store;
      case 'T':
        return InstType::StoreNT;
      case 'C':
        return InstType::Clwb;
      case 'O':
        return InstType::Clflushopt;
      case 'F':
        return InstType::Fence;
      case 'P':
        return InstType::Sfence;
      case 'M':
        return InstType::Mkpt;
      default:
        fatal("bad trace mnemonic '%c'", c);
    }
}

/** Fence-kind records are bare lines: no address, no flags. */
bool
bareLine(InstType t)
{
    return t == InstType::Fence || t == InstType::Sfence;
}

} // namespace

void
writeTraceFile(const std::string &path,
               const std::vector<TraceInst> &insts)
{
    std::ofstream out(path);
    if (!out)
        fatal("cannot write trace file '%s'", path.c_str());
    for (const auto &i : insts) {
        out << instTypeChar(i.type);
        if (i.type == InstType::NonMem) {
            out << ' ' << i.count;
        } else if (!bareLine(i.type)) {
            // Fences (F and P) carry no address or dependency flag:
            // the reader never parses them, so emitting them here
            // would be lost on a round trip (write -> read -> write
            // would differ).
            out << ' ' << std::hex << "0x" << i.addr << std::dec;
            if (i.dependsOnPrev)
                out << " d";
        }
        out << '\n';
    }
}

std::vector<TraceInst>
readTraceFile(const std::string &path)
{
    std::ifstream in(path);
    if (!in)
        fatal("cannot read trace file '%s'", path.c_str());
    std::vector<TraceInst> out;
    std::string line;
    int lineno = 0;
    while (std::getline(in, line)) {
        ++lineno;
        if (line.empty() || line[0] == '#')
            continue;
        std::istringstream ss(line);
        char c;
        ss >> c;
        TraceInst inst;
        inst.type = typeFromChar(c);
        if (inst.type == InstType::NonMem) {
            ss >> inst.count;
        } else if (!bareLine(inst.type)) {
            std::string a;
            ss >> a;
            inst.addr = std::strtoull(a.c_str(), nullptr, 0);
            std::string flag;
            if (ss >> flag && flag == "d")
                inst.dependsOnPrev = true;
        }
        out.push_back(inst);
    }
    return out;
}

} // namespace vans::trace
