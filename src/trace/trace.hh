/**
 * @file
 * Instruction-trace format shared by the CPU core, the workload
 * generators, and the file-based replay tooling (the equivalent of
 * the paper's "trace mode", section IV-C).
 */

#ifndef VANS_TRACE_TRACE_HH
#define VANS_TRACE_TRACE_HH

#include <cstdint>
#include <string>
#include <vector>

#include "common/types.hh"

namespace vans::trace
{

/** Instruction kinds the core model understands. */
enum class InstType : std::uint8_t
{
    NonMem,     ///< A bundle of count non-memory instructions.
    Load,
    Store,
    StoreNT,
    Clwb,
    Clflushopt, ///< Flush + invalidate (persistence path).
    Fence,
    Sfence,     ///< Store fence: ADR ordering only.
    Mkpt,       ///< Pre-translation hint (paper section V-B).
};

/** One trace record. */
struct TraceInst
{
    InstType type = InstType::NonMem;
    Addr addr = 0;
    std::uint32_t count = 1;      ///< NonMem bundle size.
    bool dependsOnPrev = false;   ///< Pointer-chasing dependency.
};

/** Pull-based instruction source. */
class TraceSource
{
  public:
    virtual ~TraceSource() = default;
    /** @return false at end of trace. */
    virtual bool next(TraceInst &out) = 0;
};

/** Replays a pre-built vector. */
class VectorTraceSource : public TraceSource
{
  public:
    explicit VectorTraceSource(std::vector<TraceInst> insts)
        : data(std::move(insts))
    {}

    bool
    next(TraceInst &out) override
    {
        if (pos >= data.size())
            return false;
        out = data[pos++];
        return true;
    }

    void rewind() { pos = 0; }

  private:
    std::vector<TraceInst> data;
    std::size_t pos = 0;
};

/** Write a trace as text ("L <addr>", "S <addr>", "N <count>"...). */
void writeTraceFile(const std::string &path,
                    const std::vector<TraceInst> &insts);

/** Read a text trace written by writeTraceFile. */
std::vector<TraceInst> readTraceFile(const std::string &path);

/** One-letter mnemonic for a type. */
char instTypeChar(InstType t);

} // namespace vans::trace

#endif // VANS_TRACE_TRACE_HH
