#include "workloads/cloud.hh"

#include "common/logging.hh"
#include "common/rng.hh"
#include "workloads/zipfian.hh"

namespace vans::workloads
{

namespace
{

/** Emit a bundle of non-memory work. */
void
nonMem(std::vector<trace::TraceInst> &out, std::uint32_t count)
{
    trace::TraceInst i;
    i.type = trace::InstType::NonMem;
    i.count = count;
    out.push_back(i);
}

/** Emit a (possibly hinted) dependent pointer load. */
void
chaseLoad(std::vector<trace::TraceInst> &out, Addr addr, bool hint,
          bool depends = true)
{
    if (hint) {
        trace::TraceInst m;
        m.type = trace::InstType::Mkpt;
        m.addr = addr;
        out.push_back(m);
    }
    trace::TraceInst l;
    l.type = trace::InstType::Load;
    l.addr = addr;
    l.dependsOnPrev = depends;
    out.push_back(l);
}

/** Emit a persisted store: store + clwb + fence. */
void
persistStore(std::vector<trace::TraceInst> &out, Addr addr,
             bool fence = true)
{
    trace::TraceInst s;
    s.type = trace::InstType::Store;
    s.addr = addr;
    out.push_back(s);
    trace::TraceInst c;
    c.type = trace::InstType::Clwb;
    c.addr = addr;
    out.push_back(c);
    if (fence) {
        trace::TraceInst f;
        f.type = trace::InstType::Fence;
        out.push_back(f);
    }
}

} // namespace

std::vector<trace::TraceInst>
redisTrace(const CloudParams &p)
{
    Rng rng(p.seed ^ 0x5ed15ull);
    std::uint64_t lines = p.footprintBytes / cacheLineSize;
    std::vector<trace::TraceInst> out;
    out.reserve(p.operations * 12);

    for (std::uint64_t op = 0; op < p.operations; ++op) {
        // Command parse + dispatch.
        nonMem(out, 60);
        // Hash bucket -> entry -> value: a 3-deep chase across
        // random pages (dict is sparse), the Fig 12a pattern.
        Addr bucket = p.base + rng.below(lines) * cacheLineSize;
        chaseLoad(out, bucket, p.preTranslationHints, false);
        Addr entry = p.base + rng.below(lines) * cacheLineSize;
        chaseLoad(out, entry, p.preTranslationHints);
        Addr value = p.base + rng.below(lines) * cacheLineSize;
        chaseLoad(out, value, p.preTranslationHints);
        nonMem(out, 30);
        // ~10% SET: persist the value and append to the AOF-style
        // log.
        if (rng.uniform() < 0.10) {
            persistStore(out, value, false);
            Addr log = p.base + (op % 4096) * cacheLineSize;
            persistStore(out, log);
        }
    }
    return out;
}

std::vector<trace::TraceInst>
ycsbTrace(const CloudParams &p)
{
    Rng rng(p.seed ^ 0x5c5b11ull);
    std::uint64_t keys = p.footprintBytes / 256;
    Zipfian zipf(keys, p.zipfTheta);
    std::vector<trace::TraceInst> out;
    out.reserve(p.operations * 10);

    for (std::uint64_t op = 0; op < p.operations; ++op) {
        nonMem(out, 40);
        std::uint64_t key = zipf.next(rng);
        Addr value = p.base + key * 256;
        // Index lookup: one chase into the key's page.
        chaseLoad(out, value, p.preTranslationHints, false);
        if (rng.uniform() < 0.5) {
            // Read: fetch the 256B value.
            for (unsigned l = 1; l < 4; ++l) {
                trace::TraceInst ld;
                ld.type = trace::InstType::Load;
                ld.addr = value + l * cacheLineSize;
                out.push_back(ld);
            }
        } else {
            // Update: persist the value line -- zipfian keys
            // concentrate these on a handful of hot cache lines
            // (the Fig 12b Top10 effect).
            persistStore(out, value);
        }
    }
    return out;
}

std::vector<trace::TraceInst>
tpccTrace(const CloudParams &p)
{
    Rng rng(p.seed ^ 0x79ccull);
    std::uint64_t lines = p.footprintBytes / cacheLineSize;
    Zipfian warehouse(64, 0.8);
    std::vector<trace::TraceInst> out;
    out.reserve(p.operations * 20);
    Addr log_head = p.base;

    for (std::uint64_t op = 0; op < p.operations; ++op) {
        // New-order style transaction.
        nonMem(out, 120);
        // Read customer + district rows.
        for (int r = 0; r < 4; ++r) {
            Addr row = p.base + rng.below(lines) * cacheLineSize;
            chaseLoad(out, row, p.preTranslationHints, r > 0);
        }
        // Hot district row update (warehouse-skewed).
        Addr district = p.base + warehouse.next(rng) * 4096;
        persistStore(out, district, false);
        // Redo-log append: sequential persisted writes.
        for (int l = 0; l < 3; ++l) {
            persistStore(out, log_head, l == 2);
            log_head += cacheLineSize;
            if (log_head >= p.base + (16ull << 20))
                log_head = p.base;
        }
    }
    return out;
}

std::vector<trace::TraceInst>
fioWriteTrace(const CloudParams &p)
{
    std::vector<trace::TraceInst> out;
    out.reserve(p.operations * 6);
    Addr cursor = p.base;
    for (std::uint64_t op = 0; op < p.operations; ++op) {
        nonMem(out, 10);
        // One 256B block per op, NT-store + fence every 4KB.
        for (unsigned l = 0; l < 4; ++l) {
            trace::TraceInst s;
            s.type = trace::InstType::StoreNT;
            s.addr = cursor;
            out.push_back(s);
            cursor += cacheLineSize;
        }
        if (cursor % 4096 == 0) {
            trace::TraceInst f;
            f.type = trace::InstType::Fence;
            out.push_back(f);
        }
        if (cursor >= p.base + p.footprintBytes)
            cursor = p.base;
    }
    return out;
}

std::vector<trace::TraceInst>
hashMapTrace(const CloudParams &p)
{
    Rng rng(p.seed ^ 0x4a54ull);
    std::uint64_t buckets = p.footprintBytes / 512;
    std::vector<trace::TraceInst> out;
    out.reserve(p.operations * 12);

    for (std::uint64_t op = 0; op < p.operations; ++op) {
        nonMem(out, 50);
        Addr bucket = p.base + rng.below(buckets) * 512;
        // Bucket head + chain walk (1-2 nodes).
        chaseLoad(out, bucket, p.preTranslationHints, false);
        Addr node = p.base + rng.below(buckets) * 512 + 64;
        chaseLoad(out, node, p.preTranslationHints);
        if (rng.uniform() < 0.5) {
            // Insert: write node + bucket pointer, persist both.
            persistStore(out, node, false);
            persistStore(out, bucket);
        }
    }
    return out;
}

std::vector<trace::TraceInst>
linkedListTrace(const CloudParams &p)
{
    Rng rng(p.seed ^ 0x115717ull);
    // A real list: a fixed set of nodes, each on its own page (the
    // TLB-hostile layout the Pre-translation case study targets),
    // traversed in link order over and over. Repeat traversals are
    // what let the on-DIMM Pre-translation table learn the chain.
    std::uint64_t nodes =
        std::min<std::uint64_t>(p.footprintBytes / 4096, 2048);
    std::vector<Addr> chain;
    chain.reserve(nodes);
    for (std::uint64_t i = 0; i < nodes; ++i)
        chain.push_back(p.base + i * 4096);
    rng.shuffle(chain);

    std::vector<trace::TraceInst> out;
    out.reserve(p.operations * 6);
    for (std::uint64_t op = 0; op < p.operations; ++op) {
        nonMem(out, 8);
        Addr node = chain[op % chain.size()];
        chaseLoad(out, node, p.preTranslationHints);
        if (rng.uniform() < 0.05) {
            persistStore(out, node + cacheLineSize);
        }
    }
    return out;
}

std::vector<trace::TraceInst>
cloudTrace(const std::string &name, const CloudParams &p)
{
    if (name == "redis")
        return redisTrace(p);
    if (name == "ycsb")
        return ycsbTrace(p);
    if (name == "tpcc")
        return tpccTrace(p);
    if (name == "fio-write")
        return fioWriteTrace(p);
    if (name == "hashmap")
        return hashMapTrace(p);
    if (name == "linkedlist")
        return linkedListTrace(p);
    fatal("unknown cloud workload '%s'", name.c_str());
}

} // namespace vans::workloads
