/**
 * @file
 * Behavioural models of the paper's cloud and persistent-memory
 * workloads (sections V-A and V-D): Redis- and YCSB-style key-value
 * serving, TPCC-style transactions, fio-style sequential writing,
 * and the two PMDK microbenchmarks (HashMap, LinkedList).
 *
 * Each generator emits an instruction trace with the *access
 * pattern* the paper attributes the effects to: pointer chasing
 * across random pages for the read-heavy workloads (the Fig 12a
 * read-miss overhead), and persisted writes concentrated on hot
 * keys for the write-heavy ones (the Fig 12b wear-leveling
 * amplification). A flag adds mkpt hints before chasing loads so
 * the same workload can run with Pre-translation (Fig 13).
 */

#ifndef VANS_WORKLOADS_CLOUD_HH
#define VANS_WORKLOADS_CLOUD_HH

#include <cstdint>
#include <string>
#include <vector>

#include "trace/trace.hh"

namespace vans::workloads
{

/** Common knobs for the cloud workload generators. */
struct CloudParams
{
    std::uint64_t operations = 20000;
    std::uint64_t footprintBytes = 1ull << 30;
    Addr base = 0;
    std::uint64_t seed = 7;
    bool preTranslationHints = false; ///< Emit mkpt before chases.
    double zipfTheta = 0.99;
};

/** Redis-style GET-dominated serving: deep hash+list chases. */
std::vector<trace::TraceInst> redisTrace(const CloudParams &p);

/** YCSB-style 50/50 zipfian read/update with persisted values. */
std::vector<trace::TraceInst> ycsbTrace(const CloudParams &p);

/** TPCC-style transactions: reads + log append + row updates. */
std::vector<trace::TraceInst> tpccTrace(const CloudParams &p);

/** fio-style sequential persisted writer. */
std::vector<trace::TraceInst> fioWriteTrace(const CloudParams &p);

/** PMDK HashMap microbenchmark: insert/get with persists. */
std::vector<trace::TraceInst> hashMapTrace(const CloudParams &p);

/** PMDK LinkedList microbenchmark: pure pointer traversal. */
std::vector<trace::TraceInst> linkedListTrace(const CloudParams &p);

/** Dispatch by name: fio-write|ycsb|tpcc|hashmap|redis|linkedlist. */
std::vector<trace::TraceInst> cloudTrace(const std::string &name,
                                         const CloudParams &p);

} // namespace vans::workloads

#endif // VANS_WORKLOADS_CLOUD_HH
