#include "workloads/spec_synth.hh"

#include <algorithm>

#include "common/logging.hh"
#include "common/rng.hh"

namespace vans::workloads
{

const std::vector<SpecWorkload> &
specTable4()
{
    // LLC MPKI and footprints from paper Table IV.
    static const std::vector<SpecWorkload> table = {
        {"gcc", "2006", 2.9, 1200ull << 20, 0.30, 0.10},
        {"mcf", "2006", 27.1, 9100ull << 20, 0.20, 0.35},
        {"sjeng", "2006", 2.7, 630ull << 20, 0.25, 0.10},
        {"libquantum", "2006", 3.4, 2300ull << 20, 0.15, 0.05},
        {"omnetpp", "2006", 2.1, 1400ull << 20, 0.30, 0.30},
        {"cactusADM", "2006", 2.0, 2200ull << 20, 0.35, 0.05},
        {"lbm", "2006", 7.7, 2900ull << 20, 0.45, 0.02},
        {"wrf", "2006", 2.4, 1000ull << 20, 0.30, 0.05},
        {"gcc", "2017", 21.5, 1100ull << 20, 0.30, 0.15},
        {"mcf", "2017", 26.3, 8700ull << 20, 0.20, 0.35},
        {"omnetpp", "2017", 2.1, 960ull << 20, 0.30, 0.30},
        {"deepsjeng", "2017", 2.5, 580ull << 20, 0.25, 0.10},
        {"xz", "2017", 2.7, 1800ull << 20, 0.30, 0.08},
    };
    return table;
}

const SpecWorkload &
specWorkload(const std::string &name, const std::string &suite)
{
    for (const auto &w : specTable4()) {
        if (w.name == name && w.suite == suite)
            return w;
    }
    fatal("unknown SPEC workload %s (%s)", name.c_str(),
          suite.c_str());
}

std::vector<trace::TraceInst>
generateSpecTrace(const SpecWorkload &w, std::uint64_t instructions,
                  std::uint64_t llc_bytes, std::uint64_t seed,
                  Addr base)
{
    Rng rng(seed ^ 0xabcd1234u);

    // A random access over `footprint` misses a `llc_bytes` LLC with
    // probability ~ (1 - llc/footprint) in steady state. Choose the
    // memory-op rate so the measured MPKI hits the target.
    double miss_ratio =
        1.0 - std::min(1.0, static_cast<double>(llc_bytes) /
                                static_cast<double>(
                                    w.footprintBytes));
    miss_ratio = std::max(miss_ratio, 0.05);
    // Page walks add their own LLC misses: with footprints far past
    // the STLB reach, nearly every memory op walks and its PTE
    // access often misses too. Fold that into the op budget.
    double stlb_reach = 1536.0 * 4096.0;
    double walk_prob = std::max(
        0.0, 1.0 - stlb_reach / static_cast<double>(
                                    w.footprintBytes));
    double misses_per_op = miss_ratio * (1.0 + walk_prob);
    double mem_per_kilo = std::min(w.llcMpki / misses_per_op, 500.0);
    // Non-mem instructions between memory ops.
    double gap = std::max(1000.0 / mem_per_kilo - 1.0, 0.0);

    std::uint64_t lines =
        std::max<std::uint64_t>(w.footprintBytes / cacheLineSize, 1);

    std::vector<trace::TraceInst> out;
    out.reserve(static_cast<std::size_t>(
        static_cast<double>(instructions) / (gap + 1.0) * 2.2 + 16));

    std::uint64_t emitted = 0;
    double gap_accum = 0;
    while (emitted < instructions) {
        gap_accum += gap;
        if (gap_accum >= 1.0) {
            trace::TraceInst nm;
            nm.type = trace::InstType::NonMem;
            nm.count = static_cast<std::uint32_t>(gap_accum);
            gap_accum -= nm.count;
            out.push_back(nm);
            emitted += nm.count;
        }
        trace::TraceInst mi;
        Addr addr = base + rng.below(lines) * cacheLineSize;
        mi.addr = addr;
        double r = rng.uniform();
        if (r < w.writeFraction) {
            mi.type = trace::InstType::Store;
        } else {
            mi.type = trace::InstType::Load;
            mi.dependsOnPrev = rng.uniform() < w.chaseFraction;
        }
        out.push_back(mi);
        emitted += 1;
    }
    return out;
}

} // namespace vans::workloads
