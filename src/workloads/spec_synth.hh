/**
 * @file
 * Synthetic SPEC-CPU-like trace generator, parameterized by the
 * published per-workload LLC MPKI and memory footprint (paper
 * Table IV). Substitutes for the real SPEC 2006/2017 binaries, which
 * are licensed and unavailable here: the memory-system response the
 * paper validates on (Figs 11a-d) is driven by miss rate, footprint,
 * and read/write mix -- exactly the knobs this generator takes.
 */

#ifndef VANS_WORKLOADS_SPEC_SYNTH_HH
#define VANS_WORKLOADS_SPEC_SYNTH_HH

#include <cstdint>
#include <string>
#include <vector>

#include "trace/trace.hh"

namespace vans::workloads
{

/** One Table IV row. */
struct SpecWorkload
{
    std::string name;
    std::string suite;      ///< "2006" or "2017".
    double llcMpki;         ///< Target LLC misses per kilo-inst.
    std::uint64_t footprintBytes;
    double writeFraction = 0.25; ///< Stores among memory ops.
    double chaseFraction = 0.15; ///< Dependent (pointer) loads.
};

/** The thirteen memory-intensive workloads of Table IV. */
const std::vector<SpecWorkload> &specTable4();

/** Look up one Table IV workload by name+suite ("mcf", "2006"). */
const SpecWorkload &specWorkload(const std::string &name,
                                 const std::string &suite);

/**
 * Generate a trace of ~@p instructions whose LLC MPKI on a
 * @p llc_bytes last-level cache approximates the workload's target.
 * Deterministic for a given seed.
 */
std::vector<trace::TraceInst>
generateSpecTrace(const SpecWorkload &w, std::uint64_t instructions,
                  std::uint64_t llc_bytes = 32ull << 20,
                  std::uint64_t seed = 1, Addr base = 0);

} // namespace vans::workloads

#endif // VANS_WORKLOADS_SPEC_SYNTH_HH
