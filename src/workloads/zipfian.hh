/**
 * @file
 * Zipfian key-popularity generator (Gray et al.'s rejection-free
 * construction, the same scheme YCSB uses), used by the cloud
 * workload models to concentrate writes on hot keys -- the effect
 * behind the paper's Fig 12b "Top10 cache lines" analysis.
 */

#ifndef VANS_WORKLOADS_ZIPFIAN_HH
#define VANS_WORKLOADS_ZIPFIAN_HH

#include <algorithm>
#include <cmath>
#include <cstdint>

#include "common/rng.hh"

namespace vans::workloads
{

/** Zipf-distributed integers in [0, n). Rank 0 is hottest. */
class Zipfian
{
  public:
    Zipfian(std::uint64_t n, double theta = 0.99)
        : items(n), theta(theta)
    {
        zetan = zeta(n, theta);
        zeta2 = zeta(2, theta);
        alpha = 1.0 / (1.0 - theta);
        eta = (1.0 - std::pow(2.0 / static_cast<double>(n),
                              1.0 - theta)) /
              (1.0 - zeta2 / zetan);
    }

    /**
     * Map a uniform draw @p u in [0, 1) to a rank. Deterministic
     * core of next(), exposed so the u -> 1.0 boundary is directly
     * testable.
     */
    std::uint64_t
    rank(double u) const
    {
        double uz = u * zetan;
        if (uz < 1.0)
            return 0;
        if (uz < 1.0 + std::pow(0.5, theta))
            return 1;
        // As u -> 1.0 the bracketed term rounds to 1.0 and the
        // product reaches exactly `items`, one past the valid rank
        // range; clamp so every draw stays inside [0, n).
        return std::min(
            static_cast<std::uint64_t>(
                static_cast<double>(items) *
                std::pow(eta * u - eta + 1.0, alpha)),
            items - 1);
    }

    /** Draw the next rank using @p rng. */
    std::uint64_t
    next(Rng &rng)
    {
        return rank(rng.uniform());
    }

  private:
    static double
    zeta(std::uint64_t n, double theta)
    {
        double sum = 0;
        // Exact for small n; the standard approximation beyond.
        std::uint64_t exact = std::min<std::uint64_t>(n, 10000);
        for (std::uint64_t i = 1; i <= exact; ++i)
            sum += 1.0 / std::pow(static_cast<double>(i), theta);
        if (n > exact) {
            // Integral approximation of the tail.
            double a = static_cast<double>(exact);
            double b = static_cast<double>(n);
            sum += (std::pow(b, 1 - theta) - std::pow(a, 1 - theta)) /
                   (1 - theta);
        }
        return sum;
    }

    std::uint64_t items;
    double theta;
    double zetan;
    double zeta2;
    double alpha;
    double eta;
};

} // namespace vans::workloads

#endif // VANS_WORKLOADS_ZIPFIAN_HH
