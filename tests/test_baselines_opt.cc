/**
 * @file
 * Tests for the baseline memory models (PMEP, Ramulator-PCM-style,
 * DDR3/DDR4 mains) and the two architectural optimizations (Lazy
 * cache, Pre-translation).
 */

#include <gtest/gtest.h>

#include "baselines/dram_system.hh"
#include "cpu/core.hh"
#include "lens/microbench.hh"
#include "opt/lazy_cache.hh"
#include "opt/pretranslation.hh"
#include "tests/test_util.hh"
#include "workloads/cloud.hh"

#include "common/curve.hh"

using namespace vans;
using namespace vans::baselines;
using vans::test::VansFixture;

namespace
{

/** Pointer-chasing latency curve over a small region sweep. */
Curve
ptrChaseCurve(MemorySystem &mem, std::uint64_t max_region)
{
    lens::Driver drv(mem);
    Curve c(mem.name());
    for (std::uint64_t region : logSweep(4096, max_region, 4)) {
        lens::PtrChaseParams pc;
        pc.regionBytes = region;
        pc.warmupLines = 2000;
        pc.measureLines = 1500;
        pc.seed = region;
        c.add(static_cast<double>(region),
              lens::ptrChase(drv, pc).nsPerLine);
    }
    return c;
}

} // namespace

// ---- Baselines -------------------------------------------------------

TEST(Baselines, DramReadLatencyIsDramLike)
{
    EventQueue eq;
    DramMainMemory mem(eq, DramMainMemory::ddr4Params());
    lens::Driver drv(mem);
    Tick lat = drv.read(0);
    EXPECT_GT(ticksToNs(lat), 80);
    EXPECT_LT(ticksToNs(lat), 160);
}

TEST(Baselines, PmepIsFlatAcrossRegions)
{
    EventQueue eq;
    PmepSystem pmep(eq);
    auto c = ptrChaseCurve(pmep, 64 << 20);
    // No on-DIMM buffers: at most the DRAM row-buffer knee, never
    // the two-level hierarchy (Fig 1b's PMEP curve).
    EXPECT_LE(c.findInflections(0.22).size(), 1u);
    EXPECT_LT(c.maxY() / std::max(c.minY(), 1.0), 1.8);
}

TEST(Baselines, PcmIsFlatButSlowerThanDram)
{
    EventQueue eq;
    PcmSystem pcm(eq);
    auto c = ptrChaseCurve(pcm, 16 << 20);
    EXPECT_LE(c.findInflections(0.22).size(), 1u);

    EventQueue eq2;
    DramMainMemory dram(eq2, DramMainMemory::ddr4Params());
    lens::Driver d1(pcm), d2(dram);
    // Fresh addresses for latency probes.
    EXPECT_GT(d1.read(1 << 24), d2.read(1 << 24));
}

TEST(Baselines, VansShowsBufferSegmentsPmepDoesNot)
{
    // The Fig 1b discrepancy in one assertion.
    VansFixture f;
    auto vans_curve = ptrChaseCurve(f.sys, 64 << 20);
    EXPECT_GE(vans_curve.findInflections(0.22).size(), 1u);
    // And the levels span a much wider range than any flat model.
    EXPECT_GT(vans_curve.maxY() / std::max(vans_curve.minY(), 1.0),
              1.8);
}

TEST(Baselines, PmepOrdersNtStoresBackwards)
{
    // PMEP throttles NT stores at least as hard as regular ones; on
    // VANS (as on real Optane) NT stores are the *fastest* write
    // path. This is Fig 1a's key inversion.
    EventQueue eq;
    PmepSystem pmep(eq);
    lens::Driver pd(pmep);
    std::vector<Addr> addrs;
    for (Addr a = 0; a < (1 << 20); a += 64)
        addrs.push_back(a);
    double pmep_nt =
        static_cast<double>(addrs.size()) * 64 /
        (ticksToNs(pd.streamWrites(addrs, 16, 2.0)) * 1e-9) / 1e9;

    VansFixture f;
    double vans_nt =
        static_cast<double>(addrs.size()) * 64 /
        (ticksToNs(f.drv.streamWrites(addrs, 16, 2.0)) * 1e-9) / 1e9;

    // PMEP's NT-store bandwidth is lower than its read bandwidth by
    // construction; VANS's sequential NT stores stay competitive.
    EXPECT_GT(vans_nt, 1.0);
    EXPECT_LT(pmep_nt, 6.0);
}

TEST(Baselines, WriteBackpressureBoundsOutstanding)
{
    EventQueue eq;
    auto params = DramMainMemory::ddr4Params();
    params.maxWrites = 4;
    DramMainMemory mem(eq, params, "bounded");
    lens::Driver drv(mem);
    std::vector<Addr> addrs;
    for (int i = 0; i < 64; ++i)
        addrs.push_back(static_cast<Addr>(i) * 4096);
    drv.streamWrites(addrs, 32);
    drv.fence();
    EXPECT_EQ(mem.stats().scalarValue("writes"), 64u);
}

// ---- Lazy cache -------------------------------------------------------

TEST(LazyCache, AbsorbsHotWritesAfterMigration)
{
    nvram::NvramConfig cfg = nvram::NvramConfig::optaneDefault();
    cfg.wearThreshold = 500;
    VansFixture f(cfg);
    opt::LazyCache lazy;
    lazy.attach(f.sys.dimm(0));

    // Overwrite one 256B region long enough to trigger a migration,
    // then keep writing: the lazy cache must absorb.
    auto ow = lens::overwrite(f.drv, 0, 256, 1200);
    EXPECT_GE(f.sys.totalMigrations(), 1u);
    EXPECT_GT(lazy.absorbed(), 100u);
}

TEST(LazyCache, ReducesMigrations)
{
    auto run = [](bool with_lazy) {
        nvram::NvramConfig cfg = nvram::NvramConfig::optaneDefault();
        cfg.wearThreshold = 400;
        VansFixture f(cfg);
        opt::LazyCache lazy;
        if (with_lazy)
            lazy.attach(f.sys.dimm(0));
        lens::overwrite(f.drv, 0, 256, 3000);
        return f.sys.totalMigrations();
    };
    EXPECT_LT(run(true), run(false));
}

TEST(LazyCache, EvictionsWriteBack)
{
    nvram::NvramConfig cfg = nvram::NvramConfig::optaneDefault();
    cfg.wearThreshold = 200;
    VansFixture f(cfg);
    opt::LazyCacheParams lp;
    lp.lz1Bytes = 512; // Tiny: force evictions.
    lp.lz2Bytes = 512;
    opt::LazyCache lazy(lp);
    lazy.attach(f.sys.dimm(0));

    // Touch many 256B lines in the hot block after migration.
    lens::overwrite(f.drv, 0, 256, 400);
    for (int i = 0; i < 24; ++i)
        lens::overwrite(f.drv, static_cast<Addr>(i) * 256, 256, 30);
    if (lazy.absorbed() > 0) {
        EXPECT_GE(lazy.stats().scalarValue("writebacks") +
                      lazy.absorbed(),
                  1u);
    }
}

TEST(LazyCache, UnprotectedWritesPassThrough)
{
    VansFixture f;
    opt::LazyCache lazy;
    lazy.attach(f.sys.dimm(0));
    // No migration has happened: nothing is hot, nothing absorbed.
    f.drv.write(0);
    f.drv.fence();
    EXPECT_EQ(lazy.absorbed(), 0u);
    EXPECT_GE(f.sys.totalMediaWrites(), 1u);
}

// ---- Pre-translation ---------------------------------------------------

TEST(PreTranslation, DeliversAfterFirstTraversal)
{
    opt::PreTranslation pt;
    EXPECT_FALSE(pt.deliver(0x1000)); // Cold: table miss + update.
    EXPECT_TRUE(pt.deliver(0x1000));  // Warm.
    EXPECT_GE(pt.stats().scalarValue("deliveries"), 1u);
}

TEST(PreTranslation, StaleEntriesFallBack)
{
    opt::PreTranslationParams p;
    p.validProb = 0.0; // Every entry is stale.
    opt::PreTranslation pt(p);
    pt.deliver(0x1000);
    EXPECT_FALSE(pt.deliver(0x1000));
    EXPECT_GE(pt.stats().scalarValue("stale"), 1u);
}

TEST(PreTranslation, ReducesTlbWalksOnLinkedList)
{
    auto run = [](bool enable) {
        VansFixture f;
        cache::Hierarchy caches;
        cpu::CpuCore core(f.sys, caches);
        opt::PreTranslation pt;
        if (enable)
            pt.attach(core);
        workloads::CloudParams p;
        p.operations = 4000;
        p.footprintBytes = 256 << 20;
        p.preTranslationHints = true;
        auto insts = workloads::linkedListTrace(p);
        trace::VectorTraceSource src(std::move(insts));
        auto st = core.run(src, 1u << 30);
        return st;
    };
    auto base = run(false);
    auto with = run(true);
    EXPECT_LT(with.tlbMpki, base.tlbMpki * 0.95)
        << "Pre-translation must cut TLB MPKI (paper Fig 13e)";
    EXPECT_LT(with.elapsed, base.elapsed)
        << "and speed the traversal up (paper Fig 13d)";
}

TEST(PreTranslation, TableCapacityBounded)
{
    opt::PreTranslationParams p;
    p.tableBytes = 64; // 8 entries.
    opt::PreTranslation pt(p);
    for (Addr a = 0; a < 32; ++a)
        pt.deliver(a * 4096);
    // Old entries evicted: first page misses again.
    EXPECT_FALSE(pt.deliver(0));
}
