/**
 * @file
 * Regression tests for generator/parser bugs found in the
 * observability sweep. Each test fails on the pre-fix code:
 *  - Zipfian::next could return rank == n when the uniform draw
 *    landed close enough to 1.0 (out-of-range hot-key index);
 *  - logSweep(0, hi, f) spun forever because 0 * factor stays 0;
 *  - Config::parseSize cast negative / non-finite doubles straight
 *    to uint64_t (undefined behavior) and rejected a plain "b"
 *    byte suffix;
 *  - writeTraceFile emitted an address and dependency flag for
 *    Fence lines that readTraceFile never parses, so a trace did
 *    not survive a write -> read -> write round trip.
 */

#include <gtest/gtest.h>

#include <cmath>
#include <cstdio>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "common/config.hh"
#include "common/curve.hh"
#include "common/logging.hh"
#include "common/rng.hh"
#include "trace/trace.hh"
#include "workloads/zipfian.hh"

using namespace vans;

// ---- Zipfian range --------------------------------------------------

TEST(ZipfianBoundary, LargestUniformDrawStaysBelowN)
{
    // The largest value Rng::uniform() can produce is 1 - 2^-53.
    // There, eta * u - eta + 1.0 rounds to exactly 1.0, the tail
    // expression reaches exactly `items`, and the pre-fix code
    // returned a rank one past the valid [0, n) range.
    double u_max = std::nextafter(1.0, 0.0);
    for (std::uint64_t n : {3ull, 10ull, 1000ull, 1ull << 20}) {
        workloads::Zipfian z(n, 0.99);
        EXPECT_LT(z.rank(u_max), n) << "n=" << n;
        // And the clamp keeps the tail in range across the whole
        // upper end of the uniform interval.
        for (double u = 0.999; u < 1.0; u += 1e-5)
            ASSERT_LT(z.rank(u), n) << "n=" << n << " u=" << u;
    }
}

TEST(ZipfianBoundary, EveryDrawStaysBelowN)
{
    for (std::uint64_t n : {3ull, 10ull, 1000ull, 1ull << 20}) {
        workloads::Zipfian z(n, 0.99);
        for (std::uint64_t seed : {1ull, 42ull, 0xfeedull}) {
            Rng rng(seed);
            for (int i = 0; i < 50000; ++i)
                ASSERT_LT(z.next(rng), n) << "n=" << n
                                          << " seed=" << seed;
        }
    }
}

TEST(ZipfianBoundary, HotRankZeroStillDominates)
{
    // The clamp must not distort the distribution: rank 0 stays the
    // most popular key by a wide margin at theta = 0.99.
    workloads::Zipfian z(1000, 0.99);
    Rng rng(7);
    std::uint64_t zero = 0;
    std::uint64_t total = 100000;
    for (std::uint64_t i = 0; i < total; ++i)
        if (z.next(rng) == 0)
            ++zero;
    EXPECT_GT(zero, total / 10);
}

// ---- logSweep termination -------------------------------------------

TEST(LogSweepDeathTest, ZeroLowerBoundIsRejected)
{
    setQuiet(true);
    // Pre-fix this looped forever (0 * factor == 0); now it must be
    // rejected up front with a clear message.
    EXPECT_DEATH(logSweep(0, 1024, 2), "must be >= 1");
}

TEST(LogSweep, LowerBoundOneStillSweeps)
{
    auto pts = logSweep(1, 16, 2);
    ASSERT_EQ(pts.size(), 5u);
    EXPECT_EQ(pts.front(), 1u);
    EXPECT_EQ(pts.back(), 16u);
    for (std::size_t i = 1; i < pts.size(); ++i)
        EXPECT_EQ(pts[i], pts[i - 1] * 2);
}

// ---- Config::parseSize ----------------------------------------------

TEST(ParseSizeDeathTest, NegativeAndNonFiniteValuesAreRejected)
{
    setQuiet(true);
    // Pre-fix these cast a negative / NaN double to uint64_t --
    // undefined behavior that in practice produced huge garbage
    // capacities instead of an error.
    EXPECT_DEATH(Config::parseSize("-1k"), "finite non-negative");
    EXPECT_DEATH(Config::parseSize("-0.5G"), "finite non-negative");
    EXPECT_DEATH(Config::parseSize("nan"), "finite non-negative");
    EXPECT_DEATH(Config::parseSize("inf"), "finite non-negative");
    EXPECT_DEATH(Config::parseSize("xyz"), "no leading number");
    EXPECT_DEATH(Config::parseSize("12q"), "unknown size suffix");
}

TEST(ParseSize, AcceptsByteSuffixAndKeepsExistingOnes)
{
    // "64b" / "64B" used to hit the unknown-suffix fatal even though
    // every other magnitude had a suffix spelling.
    EXPECT_EQ(Config::parseSize("64b"), 64u);
    EXPECT_EQ(Config::parseSize("64B"), 64u);
    EXPECT_EQ(Config::parseSize("64"), 64u);
    EXPECT_EQ(Config::parseSize("1k"), 1024u);
    EXPECT_EQ(Config::parseSize("2KiB"), 2048u);
    EXPECT_EQ(Config::parseSize("3M"), 3u << 20);
    EXPECT_EQ(Config::parseSize("1.5k"), 1536u);
    EXPECT_EQ(Config::parseSize("4G"), 4ull << 30);
    EXPECT_EQ(Config::parseSize("0"), 0u);
}

// ---- Trace file round trip ------------------------------------------

namespace
{

std::string
tmpPath(const char *name)
{
    return ::testing::TempDir() + name;
}

std::string
slurp(const std::string &path)
{
    std::ifstream in(path);
    std::ostringstream ss;
    ss << in.rdbuf();
    return ss.str();
}

} // namespace

TEST(TraceRoundTrip, EveryInstTypeSurvivesWriteReadWrite)
{
    using trace::InstType;
    using trace::TraceInst;

    std::vector<TraceInst> insts;
    insts.push_back({InstType::NonMem, 0, 17, false});
    insts.push_back({InstType::Load, 0x1000, 1, false});
    insts.push_back({InstType::Store, 0x2040, 1, true});
    insts.push_back({InstType::StoreNT, 0x3080, 1, false});
    insts.push_back({InstType::Clwb, 0x3080, 1, true});
    insts.push_back({InstType::Clflushopt, 0x50c0, 1, false});
    // Pre-fix, the writer emitted an address and "d" flag here that
    // the reader never consumes; stale in-memory fields must not
    // leak into the file.
    insts.push_back({InstType::Fence, 0xdeadbeef, 1, true});
    // Sfence is bare on disk exactly like Fence.
    insts.push_back({InstType::Sfence, 0xcafe, 1, true});
    insts.push_back({InstType::Mkpt, 0x4000, 1, false});

    auto p1 = tmpPath("roundtrip1.trace");
    auto p2 = tmpPath("roundtrip2.trace");
    trace::writeTraceFile(p1, insts);
    auto back = trace::readTraceFile(p1);

    ASSERT_EQ(back.size(), insts.size());
    for (std::size_t i = 0; i < insts.size(); ++i) {
        EXPECT_EQ(back[i].type, insts[i].type) << "inst " << i;
        if (insts[i].type == InstType::NonMem) {
            EXPECT_EQ(back[i].count, insts[i].count);
        } else if (insts[i].type != InstType::Fence &&
                   insts[i].type != InstType::Sfence) {
            EXPECT_EQ(back[i].addr, insts[i].addr) << "inst " << i;
            EXPECT_EQ(back[i].dependsOnPrev, insts[i].dependsOnPrev)
                << "inst " << i;
        } else {
            // Fences (both kinds) carry no payload on disk: the
            // parsed instruction comes back in its default state.
            EXPECT_EQ(back[i].addr, 0u);
            EXPECT_FALSE(back[i].dependsOnPrev);
        }
    }

    // Writing what was read reproduces the file byte-for-byte: the
    // format is now a fixed point of write -> read -> write.
    trace::writeTraceFile(p2, back);
    EXPECT_EQ(slurp(p2), slurp(p1));

    std::remove(p1.c_str());
    std::remove(p2.c_str());
}

TEST(TraceRoundTrip, FenceLineIsBare)
{
    auto p = tmpPath("fence.trace");
    std::vector<trace::TraceInst> insts;
    insts.push_back({trace::InstType::Fence, 0x1234, 1, true});
    trace::writeTraceFile(p, insts);
    EXPECT_EQ(slurp(p), "F\n");
    std::remove(p.c_str());
}

TEST(TraceRoundTrip, SfenceLineIsBare)
{
    // The persistence ops added with the ADR model: sfence shares
    // the Fence bare-line rule; clflushopt carries its address.
    auto p = tmpPath("sfence.trace");
    std::vector<trace::TraceInst> insts;
    insts.push_back({trace::InstType::Sfence, 0x1234, 1, true});
    insts.push_back({trace::InstType::Clflushopt, 0x40, 1, false});
    trace::writeTraceFile(p, insts);
    EXPECT_EQ(slurp(p), "P\nO 0x40\n");
    std::remove(p.c_str());
}
