/**
 * @file
 * Tests for the cache hierarchy, TLB, trace-driven CPU core, and
 * workload generators.
 */

#include <gtest/gtest.h>

#include "baselines/dram_system.hh"
#include "cache/hierarchy.hh"
#include "common/rng.hh"
#include "cpu/core.hh"
#include "tests/test_util.hh"
#include "trace/trace.hh"
#include "workloads/cloud.hh"
#include "workloads/spec_synth.hh"

using namespace vans;
using namespace vans::cache;
using vans::test::VansFixture;

// ---- Cache -----------------------------------------------------------

TEST(Cache, HitAfterFill)
{
    Cache c(CacheParams{"c", 4096, 4, 64, 1.0});
    EXPECT_FALSE(c.access(0, false).hit);
    EXPECT_TRUE(c.access(0, false).hit);
    EXPECT_TRUE(c.access(32, false).hit); // Same line.
    EXPECT_FALSE(c.access(64, false).hit);
}

TEST(Cache, LruEviction)
{
    // 4 sets x 2 ways of 64B lines = 512B.
    Cache c(CacheParams{"c", 512, 2, 64, 1.0});
    // Fill both ways of set 0 (stride = 4 sets * 64).
    c.access(0, false);
    c.access(256, false);
    EXPECT_TRUE(c.access(0, false).hit);
    // Insert a third line in set 0: LRU victim is 256.
    c.access(512, false);
    EXPECT_TRUE(c.contains(0));
    EXPECT_FALSE(c.contains(256));
}

TEST(Cache, DirtyEvictionReportsWriteback)
{
    // 512B, 2 ways, 4 sets: addresses 0/256/512 all map to set 0.
    Cache c(CacheParams{"c", 512, 2, 64, 1.0});
    c.access(0, true);     // Dirty, MRU.
    c.access(256, false);  // Clean; LRU is now 0.
    auto r = c.access(512, false); // Evicts 0: dirty writeback.
    EXPECT_TRUE(r.writeback);
    EXPECT_EQ(r.writebackAddr, 0u);
    // A clean victim reports no writeback.
    r = c.access(768, false); // Evicts 256 (clean).
    EXPECT_FALSE(r.writeback);
}

TEST(Cache, CleanClearsDirty)
{
    Cache c(CacheParams{"c", 512, 2, 64, 1.0});
    c.access(0, true);
    EXPECT_TRUE(c.clean(0));  // Was dirty.
    EXPECT_FALSE(c.clean(0)); // Now clean.
    EXPECT_TRUE(c.contains(0));
}

TEST(Cache, InvalidateReportsDirty)
{
    Cache c(CacheParams{"c", 512, 2, 64, 1.0});
    c.access(0, true);
    EXPECT_TRUE(c.invalidate(0));
    EXPECT_FALSE(c.contains(0));
}

// Regression: access() always victimized lruOrder.back(), even when
// an invalidated way sat free in the set. After a clflushopt the
// next fill evicted a live (possibly dirty) neighbour while the
// freed way stayed unused -- so clflushopt effectively cost *two*
// lines and a spurious dirty writeback.
TEST(Cache, FillPrefersInvalidatedWayOverLruVictim)
{
    // 512B, 2 ways, 4 sets: addresses 0/256/512 all map to set 0.
    Cache c(CacheParams{"c", 512, 2, 64, 1.0});
    c.access(0, true);    // A, dirty.
    c.access(256, false); // B, clean; LRU order is now [B, A].
    c.invalidate(256);    // clflushopt B: its way is free.
    // Fill C: it must land in B's freed way, not evict dirty A.
    auto r = c.access(512, false);
    EXPECT_FALSE(r.writeback)
        << "fill evicted a live dirty line past a free way";
    EXPECT_TRUE(c.contains(0));
    EXPECT_TRUE(c.contains(512));
    EXPECT_TRUE(c.access(0, false).hit);
}

// The Empirical Guide's post-flush contract for the two flush ops:
// clwb leaves the line resident (the next access hits), clflushopt
// evicts it (the next access misses) without disturbing neighbours.
TEST(Hierarchy, ClwbStaysResidentClflushoptEvicts)
{
    Hierarchy h;

    // clwb: writeback due, line still resident at L1.
    h.access(0x40, true);
    EXPECT_TRUE(h.clean(0x40));
    EXPECT_EQ(h.access(0x40, false).hitLevel, 1u);

    // clflushopt: writeback due, next access is a full LLC miss.
    h.access(0x80, true);
    EXPECT_TRUE(h.invalidate(0x80));
    EXPECT_TRUE(h.access(0x80, false).llcMiss);

    // Flushing a clean line owes no writeback either way.
    EXPECT_FALSE(h.clean(0x40));
    EXPECT_FALSE(h.invalidate(0x100));
}

TEST(Cache, MissRateTracked)
{
    Cache c(CacheParams{"c", 4096, 4, 64, 1.0});
    c.access(0, false);
    c.access(0, false);
    c.access(0, false);
    c.access(0, false);
    EXPECT_NEAR(c.missRate(), 0.25, 1e-9);
}

// ---- TLB --------------------------------------------------------------

TEST(Tlb, WalkOnColdMiss)
{
    Tlb t(TlbParams{});
    auto r = t.access(0);
    EXPECT_TRUE(r.walk);
    r = t.access(64);
    EXPECT_TRUE(r.l1Hit); // Same page.
}

TEST(Tlb, StlbCatchesL1Evictions)
{
    TlbParams p;
    p.l1Entries = 8;
    p.l1Ways = 4;
    Tlb t(p);
    // Touch many pages: L1 (8 entries) thrashes, STLB holds them.
    for (Addr pg = 0; pg < 64; ++pg)
        t.access(pg * 4096);
    auto r = t.access(0);
    EXPECT_TRUE(r.l1Hit || r.stlbHit);
    EXPECT_FALSE(r.walk);
}

TEST(Tlb, InstallSkipsWalk)
{
    Tlb t(TlbParams{});
    EXPECT_TRUE(t.install(8ull << 30));
    auto r = t.access(8ull << 30);
    EXPECT_FALSE(r.walk);
    EXPECT_FALSE(t.install(8ull << 30)); // Already present.
}

TEST(Tlb, WalkRateOverRandomPages)
{
    Tlb t(TlbParams{});
    Rng rng(3);
    // Far more pages than the 1536-entry STLB covers.
    for (int i = 0; i < 20000; ++i)
        t.access(rng.below(100000) * 4096);
    EXPECT_GT(t.walkRate(), 0.5);
}

// ---- Hierarchy ---------------------------------------------------------

TEST(Hierarchy, LevelsFillOnMiss)
{
    Hierarchy h;
    auto r = h.access(0, false);
    EXPECT_TRUE(r.llcMiss);
    r = h.access(0, false);
    EXPECT_EQ(r.hitLevel, 1u);
}

TEST(Hierarchy, L2CatchesL1Victims)
{
    HierarchyParams p;
    p.l1 = CacheParams{"l1", 1024, 2, 64, 1.0};
    Hierarchy h(p);
    // Overflow L1 (16 lines), stay within L2.
    for (Addr a = 0; a < 64 * 64; a += 64)
        h.access(a, false);
    auto r = h.access(0, false);
    EXPECT_GE(r.hitLevel, 2u);
    EXPECT_LE(r.hitLevel, 3u);
}

TEST(Hierarchy, DirtyLlcVictimHeadsToMemory)
{
    HierarchyParams p;
    p.l1 = CacheParams{"l1", 512, 2, 64, 1.0};
    p.l2 = CacheParams{"l2", 1024, 2, 64, 2.0};
    p.l3 = CacheParams{"llc", 2048, 2, 64, 4.0};
    Hierarchy h(p);
    h.access(0, true);
    bool wb_seen = false;
    for (Addr a = 64; a < 64 * 512 && !wb_seen; a += 64)
        wb_seen = h.access(a, false).l3Writeback;
    EXPECT_TRUE(wb_seen);
}

// ---- CPU core -----------------------------------------------------------

namespace
{

cpu::CoreStats
runOn(MemorySystem &mem, std::vector<trace::TraceInst> insts,
      std::uint64_t max_insts = 1u << 30)
{
    cache::Hierarchy caches;
    cpu::CpuCore core(mem, caches);
    trace::VectorTraceSource src(std::move(insts));
    return core.run(src, max_insts);
}

} // namespace

TEST(CpuCore, NonMemRunsAtWidth)
{
    VansFixture f;
    std::vector<trace::TraceInst> insts;
    trace::TraceInst nm;
    nm.type = trace::InstType::NonMem;
    nm.count = 4000;
    insts.push_back(nm);
    auto st = runOn(f.sys, insts);
    EXPECT_EQ(st.instructions, 4000u);
    EXPECT_NEAR(st.ipc, 4.0, 0.2);
}

TEST(CpuCore, DependentLoadsSerialize)
{
    VansFixture f;
    // 64 dependent loads over distinct pages: each pays the memory
    // round trip.
    std::vector<trace::TraceInst> chase;
    for (int i = 0; i < 64; ++i) {
        trace::TraceInst ld;
        ld.type = trace::InstType::Load;
        ld.addr = static_cast<Addr>(i) * (1 << 20);
        ld.dependsOnPrev = true;
        chase.push_back(ld);
    }
    auto st = runOn(f.sys, chase);
    double ns_per_load = ticksToNs(st.elapsed) / 64.0;
    EXPECT_GT(ns_per_load, 300); // Media-path round trips + walks.
}

TEST(CpuCore, IndependentLoadsOverlap)
{
    // Loads spread over a handful of pages: after the first fills,
    // accesses are AIT/RMW-resident, so the dependent chain pays
    // round trips while independent loads pipeline. (Cold misses
    // over huge footprints are fill-bandwidth-bound for both.)
    auto build = [](bool dependent) {
        std::vector<trace::TraceInst> v;
        for (int rep = 0; rep < 2; ++rep) {
            for (int i = 0; i < 64; ++i) {
                trace::TraceInst ld;
                ld.type = trace::InstType::Load;
                // Permuted order so the CPU caches do not swallow
                // repeats while the AIT working set stays small.
                ld.addr = static_cast<Addr>((i * 29) % 64) * 256 +
                          (rep ? 64 : 0);
                ld.dependsOnPrev = dependent;
                v.push_back(ld);
            }
        }
        return v;
    };
    VansFixture f1, f2;
    auto dep = runOn(f1.sys, build(true));
    auto indep = runOn(f2.sys, build(false));
    EXPECT_LT(indep.elapsed, dep.elapsed / 2);
}

TEST(CpuCore, CachedLoadsNeverTouchMemory)
{
    VansFixture f;
    std::vector<trace::TraceInst> v;
    for (int i = 0; i < 100; ++i) {
        trace::TraceInst ld;
        ld.type = trace::InstType::Load;
        ld.addr = 0;
        v.push_back(ld);
    }
    auto st = runOn(f.sys, v);
    // One cold miss plus its page-table read; the other 99 hit L1.
    EXPECT_LE(st.llcMpki, 1000.0 * 2 / 100 + 1);
    EXPECT_LE(f.sys.imc().stats().scalarValue("reads"), 2u);
}

TEST(CpuCore, FencesDrainWrites)
{
    VansFixture f;
    std::vector<trace::TraceInst> v;
    for (int i = 0; i < 8; ++i) {
        trace::TraceInst st;
        st.type = trace::InstType::StoreNT;
        st.addr = static_cast<Addr>(i) * 64;
        v.push_back(st);
    }
    trace::TraceInst fence;
    fence.type = trace::InstType::Fence;
    v.push_back(fence);
    runOn(f.sys, v);
    EXPECT_TRUE(f.sys.dimm(0).writeQuiescent());
}

TEST(CpuCore, ClwbWritesBackDirtyLine)
{
    VansFixture f;
    std::vector<trace::TraceInst> v;
    trace::TraceInst s;
    s.type = trace::InstType::Store;
    s.addr = 128;
    v.push_back(s);
    trace::TraceInst c;
    c.type = trace::InstType::Clwb;
    c.addr = 128;
    v.push_back(c);
    trace::TraceInst fence;
    fence.type = trace::InstType::Fence;
    v.push_back(fence);
    runOn(f.sys, v);
    EXPECT_GE(f.sys.imc().stats().scalarValue("writes"), 1u);
}

// ---- SPEC-like generator -------------------------------------------------

TEST(SpecSynth, TableHasThirteenWorkloads)
{
    EXPECT_EQ(workloads::specTable4().size(), 13u);
    const auto &mcf = workloads::specWorkload("mcf", "2006");
    EXPECT_NEAR(mcf.llcMpki, 27.1, 0.01);
    EXPECT_EQ(mcf.footprintBytes, 9100ull << 20);
}

TEST(SpecSynth, GeneratedMpkiTracksTarget)
{
    // Run two workloads with very different targets through the
    // cache hierarchy and compare measured LLC MPKI.
    auto measure = [](const workloads::SpecWorkload &w) {
        baselines::DramSystemParams dp =
            baselines::DramMainMemory::ddr4Params();
        EventQueue eq;
        baselines::DramMainMemory mem(eq, dp);
        auto insts = workloads::generateSpecTrace(w, 300000);
        cache::Hierarchy caches;
        cpu::CpuCore core(mem, caches);
        trace::VectorTraceSource src(std::move(insts));
        return core.run(src, 300000).llcMpki;
    };
    double mcf = measure(workloads::specWorkload("mcf", "2006"));
    double sjeng = measure(workloads::specWorkload("sjeng", "2006"));
    EXPECT_GT(mcf, sjeng * 2);
    EXPECT_NEAR(mcf, 27.1, 16.0);
    EXPECT_NEAR(sjeng, 2.7, 3.0);
}

TEST(SpecSynth, DeterministicForSeed)
{
    const auto &w = workloads::specWorkload("lbm", "2006");
    auto a = workloads::generateSpecTrace(w, 10000, 32ull << 20, 5);
    auto b = workloads::generateSpecTrace(w, 10000, 32ull << 20, 5);
    ASSERT_EQ(a.size(), b.size());
    for (std::size_t i = 0; i < a.size(); ++i) {
        EXPECT_EQ(a[i].addr, b[i].addr);
        EXPECT_EQ(static_cast<int>(a[i].type),
                  static_cast<int>(b[i].type));
    }
}

// ---- Cloud workloads ------------------------------------------------------

TEST(CloudWorkloads, AllGeneratorsProduceTraces)
{
    workloads::CloudParams p;
    p.operations = 200;
    for (const char *name : {"redis", "ycsb", "tpcc", "fio-write",
                             "hashmap", "linkedlist"}) {
        auto t = workloads::cloudTrace(name, p);
        EXPECT_GT(t.size(), 200u) << name;
    }
}

TEST(CloudWorkloads, YcsbConcentratesWrites)
{
    workloads::CloudParams p;
    p.operations = 8000;
    auto t = workloads::ycsbTrace(p);
    std::unordered_map<Addr, unsigned> writes;
    std::uint64_t total = 0;
    for (const auto &i : t) {
        if (i.type == trace::InstType::Store) {
            ++writes[alignDown(i.addr, 64)];
            ++total;
        }
    }
    // Top-10 lines take a disproportionate share (paper Fig 12b).
    std::vector<unsigned> counts;
    for (auto &kv : writes)
        counts.push_back(kv.second);
    std::sort(counts.rbegin(), counts.rend());
    std::uint64_t top10 = 0;
    for (std::size_t i = 0; i < 10 && i < counts.size(); ++i)
        top10 += counts[i];
    EXPECT_GT(static_cast<double>(top10) /
                  static_cast<double>(total),
              0.10);
}

TEST(CloudWorkloads, RedisIsReadDominated)
{
    workloads::CloudParams p;
    p.operations = 2000;
    auto t = workloads::redisTrace(p);
    std::uint64_t loads = 0, stores = 0;
    for (const auto &i : t) {
        loads += i.type == trace::InstType::Load;
        stores += i.type == trace::InstType::Store;
    }
    EXPECT_GT(loads, stores * 4);
}

TEST(CloudWorkloads, HintsEmitMkpt)
{
    workloads::CloudParams p;
    p.operations = 100;
    p.preTranslationHints = true;
    auto t = workloads::linkedListTrace(p);
    bool has_mkpt = false;
    for (const auto &i : t)
        has_mkpt = has_mkpt || i.type == trace::InstType::Mkpt;
    EXPECT_TRUE(has_mkpt);

    p.preTranslationHints = false;
    auto t2 = workloads::linkedListTrace(p);
    for (const auto &i : t2)
        EXPECT_NE(static_cast<int>(i.type),
                  static_cast<int>(trace::InstType::Mkpt));
}

// ---- Trace files -----------------------------------------------------------

TEST(TraceFile, RoundTrip)
{
    std::vector<trace::TraceInst> v;
    trace::TraceInst nm;
    nm.type = trace::InstType::NonMem;
    nm.count = 12;
    v.push_back(nm);
    trace::TraceInst ld;
    ld.type = trace::InstType::Load;
    ld.addr = 0xdeadbe40;
    ld.dependsOnPrev = true;
    v.push_back(ld);
    trace::TraceInst st;
    st.type = trace::InstType::StoreNT;
    st.addr = 0x1000;
    v.push_back(st);
    trace::TraceInst f;
    f.type = trace::InstType::Fence;
    v.push_back(f);

    std::string path = "/tmp/vans_trace_test.txt";
    trace::writeTraceFile(path, v);
    auto r = trace::readTraceFile(path);
    ASSERT_EQ(r.size(), v.size());
    EXPECT_EQ(r[0].count, 12u);
    EXPECT_EQ(r[1].addr, 0xdeadbe40u);
    EXPECT_TRUE(r[1].dependsOnPrev);
    EXPECT_EQ(static_cast<int>(r[2].type),
              static_cast<int>(trace::InstType::StoreNT));
    EXPECT_EQ(static_cast<int>(r[3].type),
              static_cast<int>(trace::InstType::Fence));
}
