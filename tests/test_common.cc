/**
 * @file
 * Unit tests for the common substrate: event queue, config, curves,
 * stats, RNG.
 */

#include <gtest/gtest.h>

#include <memory>

#include "common/ascii_chart.hh"
#include "common/config.hh"
#include "common/curve.hh"
#include "common/event_queue.hh"
#include "common/inplace_function.hh"
#include "common/rng.hh"
#include "common/stats.hh"
#include "nvram/nvram_config.hh"
#include "workloads/zipfian.hh"

using namespace vans;

TEST(EventQueue, RunsInTimeOrder)
{
    EventQueue eq;
    std::vector<int> order;
    eq.schedule(30, [&] { order.push_back(3); });
    eq.schedule(10, [&] { order.push_back(1); });
    eq.schedule(20, [&] { order.push_back(2); });
    eq.run();
    EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
    EXPECT_EQ(eq.curTick(), 30u);
}

TEST(EventQueue, SameTickIsFifo)
{
    EventQueue eq;
    std::vector<int> order;
    for (int i = 0; i < 8; ++i)
        eq.schedule(5, [&order, i] { order.push_back(i); });
    eq.run();
    for (int i = 0; i < 8; ++i)
        EXPECT_EQ(order[static_cast<std::size_t>(i)], i);
}

TEST(EventQueue, NestedScheduling)
{
    EventQueue eq;
    int fired = 0;
    eq.schedule(10, [&] {
        ++fired;
        eq.scheduleAfter(5, [&] { ++fired; });
    });
    eq.run();
    EXPECT_EQ(fired, 2);
    EXPECT_EQ(eq.curTick(), 15u);
}

TEST(EventQueue, SchedulingInPastPanics)
{
    EventQueue eq;
    eq.schedule(10, [] {});
    eq.run();
    EXPECT_DEATH(eq.schedule(5, [] {}), "past");
}

TEST(EventQueue, RunUntilStopsAtLimit)
{
    EventQueue eq;
    int fired = 0;
    eq.schedule(10, [&] { ++fired; });
    eq.schedule(100, [&] { ++fired; });
    eq.runUntil(50);
    EXPECT_EQ(fired, 1);
    EXPECT_EQ(eq.pending(), 1u);
}

TEST(EventQueue, StepCountsExecutions)
{
    EventQueue eq;
    eq.schedule(1, [] {});
    eq.schedule(2, [] {});
    EXPECT_TRUE(eq.step());
    EXPECT_TRUE(eq.step());
    EXPECT_FALSE(eq.step());
    EXPECT_EQ(eq.executed(), 2u);
}

TEST(EventQueue, RunUntilFiresEventExactlyAtLimit)
{
    EventQueue eq;
    int fired = 0;
    eq.schedule(50, [&] { ++fired; });
    eq.schedule(51, [&] { ++fired; });
    eq.runUntil(50);
    EXPECT_EQ(fired, 1) << "event at the limit tick must fire";
    EXPECT_EQ(eq.curTick(), 50u);
    EXPECT_EQ(eq.pending(), 1u);
    eq.run();
    EXPECT_EQ(fired, 2);
}

TEST(EventQueue, KernelCountersTrackLoad)
{
    EventQueue eq;
    for (Tick t = 1; t <= 10; ++t)
        eq.schedule(t, [] {});
    EXPECT_EQ(eq.scheduled(), 10u);
    EXPECT_EQ(eq.peakPending(), 10u);
    EXPECT_EQ(eq.heapCallbacks(), 0u)
        << "small captures must not allocate";
    eq.run();
    EXPECT_EQ(eq.executed(), 10u);
    EXPECT_EQ(eq.peakPending(), 10u);

    struct Big
    {
        char blob[2 * InplaceCallback::inlineCapacity] = {};
    } big;
    eq.schedule(eq.curTick() + 1, [big] { (void)big; });
    EXPECT_EQ(eq.heapCallbacks(), 1u);
    eq.run();

    StatGroup sg("kernel");
    eq.statsInto(sg);
    EXPECT_EQ(sg.scalarValue("events_scheduled"), 11u);
    EXPECT_EQ(sg.scalarValue("events_executed"), 11u);
    EXPECT_EQ(sg.scalarValue("peak_pending"), 10u);
    EXPECT_EQ(sg.scalarValue("callback_heap_spills"), 1u);
}

TEST(InplaceCallback, SmallCaptureStaysInline)
{
    int hits = 0;
    InplaceCallback cb([&hits] { ++hits; });
    ASSERT_TRUE(static_cast<bool>(cb));
    EXPECT_FALSE(cb.heapAllocated());
    cb();
    cb();
    EXPECT_EQ(hits, 2);
}

TEST(InplaceCallback, LargeCaptureFallsBackToHeap)
{
    struct Big
    {
        char blob[3 * InplaceCallback::inlineCapacity];
    } big = {};
    big.blob[0] = 42;
    int seen = 0;
    InplaceCallback cb([big, &seen] { seen = big.blob[0]; });
    EXPECT_TRUE(cb.heapAllocated());
    cb();
    EXPECT_EQ(seen, 42);
}

TEST(InplaceCallback, MoveTransfersOwnership)
{
    // Inline case: the capture must survive relocation by move.
    auto flag = std::make_shared<int>(0);
    InplaceCallback a([flag] { ++*flag; });
    EXPECT_EQ(flag.use_count(), 2);
    InplaceCallback b(std::move(a));
    EXPECT_FALSE(static_cast<bool>(a));
    EXPECT_EQ(flag.use_count(), 2) << "move must not copy the capture";
    b();
    EXPECT_EQ(*flag, 1);
    b.reset();
    EXPECT_EQ(flag.use_count(), 1);

    // Heap case: moving transfers the heap cell, no reallocation.
    struct Big
    {
        std::shared_ptr<int> p;
        char pad[2 * InplaceCallback::inlineCapacity] = {};
    };
    auto counter = std::make_shared<int>(0);
    InplaceCallback c(
        [cap = Big{counter, {}}] { ++*cap.p; });
    EXPECT_TRUE(c.heapAllocated());
    InplaceCallback d;
    d = std::move(c);
    EXPECT_TRUE(d.heapAllocated());
    d();
    EXPECT_EQ(*counter, 1);
}

TEST(Types, TickConversions)
{
    EXPECT_EQ(nsToTicks(1.0), 1000u);
    EXPECT_DOUBLE_EQ(ticksToNs(2500), 2.5);
    EXPECT_EQ(alignDown(0x12345, 0x1000), 0x12000u);
    EXPECT_EQ(alignUp(0x12345, 0x1000), 0x13000u);
    EXPECT_TRUE(isPowerOf2(64));
    EXPECT_FALSE(isPowerOf2(48));
    EXPECT_EQ(log2i(4096), 12u);
}

TEST(Types, ClockDomain)
{
    ClockDomain clk(1000.0); // 1 GHz -> 1000 ps period.
    EXPECT_EQ(clk.period(), 1000u);
    EXPECT_EQ(clk.cycles(5), 5000u);
    EXPECT_EQ(clk.nextEdge(1500), 2000u);
    EXPECT_EQ(clk.nextEdge(2000), 2000u);
}

TEST(Config, ParsesSectionsAndTypes)
{
    auto cfg = Config::fromString(
        "[nvram]\n"
        "num_dimms = 6\n"
        "interleaved = true\n"
        "dimm_capacity = 4G  # comment\n"
        "media_read_ns = 1.5\n"
        "; another comment\n"
        "[cpu]\n"
        "freq = 2.2\n");
    EXPECT_EQ(cfg.getU64("nvram", "num_dimms", 0), 6u);
    EXPECT_TRUE(cfg.getBool("nvram", "interleaved", false));
    EXPECT_EQ(cfg.getU64("nvram", "dimm_capacity", 0), 4ull << 30);
    EXPECT_DOUBLE_EQ(cfg.getDouble("nvram", "media_read_ns", 0), 1.5);
    EXPECT_DOUBLE_EQ(cfg.getDouble("cpu", "freq", 0), 2.2);
    EXPECT_EQ(cfg.getU64("cpu", "missing", 42), 42u);
}

TEST(Config, SizeSuffixes)
{
    EXPECT_EQ(Config::parseSize("64"), 64u);
    EXPECT_EQ(Config::parseSize("16K"), 16384u);
    EXPECT_EQ(Config::parseSize("16KiB"), 16384u);
    EXPECT_EQ(Config::parseSize("4M"), 4ull << 20);
    EXPECT_EQ(Config::parseSize("2G"), 2ull << 30);
    EXPECT_EQ(Config::parseSize("1.5K"), 1536u);
}

TEST(Config, RoundTrip)
{
    Config cfg;
    cfg.set("a", "x", "1");
    cfg.set("b", "y", "hello");
    auto cfg2 = Config::fromString(cfg.toString());
    EXPECT_EQ(cfg2.get("a", "x", ""), "1");
    EXPECT_EQ(cfg2.get("b", "y", ""), "hello");
    EXPECT_EQ(cfg2.sections().size(), 2u);
}

TEST(Config, FromConfigOverridesNvram)
{
    auto cfg = Config::fromString("[nvram]\nlsq_entries = 32\n");
    auto nv = nvram::NvramConfig::fromConfig(cfg);
    EXPECT_EQ(nv.lsqEntries, 32u);
    // Untouched keys keep defaults.
    EXPECT_EQ(nv.rmwEntries,
              nvram::NvramConfig::optaneDefault().rmwEntries);
}

TEST(Curve, InflectionOnStep)
{
    Curve c;
    for (std::uint64_t x = 64; x <= 1 << 20; x *= 2) {
        double y = x <= 16384 ? 100 : 300;
        c.add(static_cast<double>(x), y);
    }
    auto infl = c.findInflections(0.25);
    ASSERT_EQ(infl.size(), 1u);
    EXPECT_EQ(infl[0], 16384.0);
}

TEST(Curve, InflectionOnGradualRun)
{
    // A multi-step ramp whose per-step rise is small but whose
    // cumulative rise is large must still be one inflection.
    Curve c;
    double y = 100;
    for (std::uint64_t x = 64; x <= 1 << 20; x *= 2) {
        c.add(static_cast<double>(x), y);
        if (x >= 4096 && x < 65536)
            y *= 1.15;
    }
    auto infl = c.findInflections(0.25);
    ASSERT_EQ(infl.size(), 1u);
    EXPECT_EQ(infl[0], 4096.0);
}

TEST(Curve, NoFalseInflectionOnNoise)
{
    Curve c;
    for (std::uint64_t x = 64; x <= 1 << 16; x *= 2) {
        double y = 100 + ((x / 64) % 2 ? 2.0 : 0.0); // 2% jitter.
        c.add(static_cast<double>(x), y);
    }
    EXPECT_TRUE(c.findInflections(0.25).empty());
}

TEST(Curve, TwoInflections)
{
    Curve c;
    for (std::uint64_t x = 64; x <= 1 << 26; x *= 2) {
        double y = x <= 16384 ? 170 : (x <= (16 << 20) ? 300 : 410);
        c.add(static_cast<double>(x), y);
    }
    auto infl = c.findInflections(0.22);
    ASSERT_EQ(infl.size(), 2u);
    EXPECT_EQ(infl[0], 16384.0);
    EXPECT_EQ(infl[1], 16.0 * (1 << 20));
}

TEST(Curve, SegmentLevels)
{
    Curve c;
    for (std::uint64_t x = 64; x <= 1 << 26; x *= 2) {
        double y = x <= 16384 ? 170 : (x <= (16 << 20) ? 300 : 410);
        c.add(static_cast<double>(x), y);
    }
    auto levels = c.segmentLevels(c.findInflections(0.22));
    ASSERT_EQ(levels.size(), 3u);
    EXPECT_NEAR(levels[0], 170, 1);
    EXPECT_NEAR(levels[1], 300, 25); // Includes ramp points.
    EXPECT_NEAR(levels[2], 410, 25);
}

TEST(Curve, AccuracyAgainstSelfIsOne)
{
    Curve c;
    for (std::uint64_t x = 64; x <= 4096; x *= 2)
        c.add(static_cast<double>(x), static_cast<double>(x) * 2);
    EXPECT_NEAR(c.accuracyAgainst(c), 1.0, 1e-9);
}

TEST(Curve, AccuracyPenalizesMismatch)
{
    Curve a, b;
    for (std::uint64_t x = 64; x <= 4096; x *= 2) {
        a.add(static_cast<double>(x), 100);
        b.add(static_cast<double>(x), 150);
    }
    EXPECT_NEAR(a.accuracyAgainst(b), 1.0 - 50.0 / 150.0, 1e-9);
}

TEST(Curve, ValueAtUsesFloorSemantics)
{
    Curve c;
    c.add(64, 1);
    c.add(128, 2);
    c.add(256, 3);
    EXPECT_EQ(c.valueAt(64), 1);
    EXPECT_EQ(c.valueAt(200), 2);
    EXPECT_EQ(c.valueAt(9999), 3);
}

TEST(Curve, LogSweepEndpoints)
{
    auto s = logSweep(64, 1024);
    ASSERT_EQ(s.size(), 5u);
    EXPECT_EQ(s.front(), 64u);
    EXPECT_EQ(s.back(), 1024u);
    auto odd = logSweep(64, 100);
    EXPECT_EQ(odd.back(), 100u);
}

TEST(Curve, FormatSize)
{
    EXPECT_EQ(formatSize(64), "64");
    EXPECT_EQ(formatSize(16384), "16K");
    EXPECT_EQ(formatSize(16ull << 20), "16M");
    EXPECT_EQ(formatSize(2ull << 30), "2G");
    EXPECT_EQ(formatSize(100), "100");
}

TEST(Stats, ScalarAndAverage)
{
    StatGroup g("test");
    g.scalar("count").inc();
    g.scalar("count").inc(4);
    EXPECT_EQ(g.scalarValue("count"), 5u);
    g.average("lat").sample(10);
    g.average("lat").sample(20);
    EXPECT_DOUBLE_EQ(g.average("lat").mean(), 15.0);
    EXPECT_DOUBLE_EQ(g.average("lat").min(), 10.0);
    EXPECT_DOUBLE_EQ(g.average("lat").max(), 20.0);
    EXPECT_NE(g.dump().find("test.count = 5"), std::string::npos);
    g.reset();
    EXPECT_EQ(g.scalarValue("count"), 0u);
}

TEST(Stats, DistributionPercentiles)
{
    StatDistribution d;
    for (int i = 1; i <= 100; ++i)
        d.sample(i);
    EXPECT_NEAR(d.percentile(0.5), 50.5, 1.0);
    EXPECT_NEAR(d.percentile(0.99), 99, 1.5);
    EXPECT_DOUBLE_EQ(d.min(), 1);
    EXPECT_DOUBLE_EQ(d.max(), 100);
    EXPECT_NEAR(d.fractionAbove(90), 0.10, 0.001);
}

TEST(Rng, DeterministicForSeed)
{
    Rng a(42), b(42), c(43);
    EXPECT_EQ(a.next(), b.next());
    EXPECT_NE(a.next(), c.next());
}

TEST(Rng, UniformInRange)
{
    Rng r(7);
    for (int i = 0; i < 1000; ++i) {
        double u = r.uniform();
        EXPECT_GE(u, 0.0);
        EXPECT_LT(u, 1.0);
        EXPECT_LT(r.below(17), 17u);
    }
}

TEST(Rng, ShuffleIsPermutation)
{
    Rng r(3);
    std::vector<int> v{1, 2, 3, 4, 5, 6, 7, 8};
    auto orig = v;
    r.shuffle(v);
    std::sort(v.begin(), v.end());
    EXPECT_EQ(v, orig);
}

TEST(Zipfian, SkewsTowardLowRanks)
{
    Rng r(5);
    workloads::Zipfian z(10000, 0.99);
    std::uint64_t low = 0;
    const int n = 20000;
    for (int i = 0; i < n; ++i) {
        if (z.next(r) < 10)
            ++low;
    }
    // With theta=0.99, the top-10 of 10k keys draw a large share.
    EXPECT_GT(static_cast<double>(low) / n, 0.25);
}

TEST(Zipfian, StaysInRange)
{
    Rng r(6);
    workloads::Zipfian z(100, 0.9);
    for (int i = 0; i < 5000; ++i)
        EXPECT_LT(z.next(r), 100u);
}

TEST(AsciiChart, TableAlignsColumns)
{
    TextTable t({"name", "value"});
    t.addRow({"alpha", "1"});
    t.addRow({"b", "22222"});
    std::string s = t.render();
    EXPECT_NE(s.find("alpha"), std::string::npos);
    EXPECT_NE(s.find("22222"), std::string::npos);
}

TEST(AsciiChart, ChartRendersCurves)
{
    Curve c("demo");
    for (std::uint64_t x = 64; x <= 4096; x *= 2)
        c.add(static_cast<double>(x), static_cast<double>(x));
    std::string s = asciiChart({c});
    EXPECT_NE(s.find("demo"), std::string::npos);
    EXPECT_NE(s.find('*'), std::string::npos);
}
