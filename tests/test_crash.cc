/**
 * @file
 * Persistence semantics + crash-injection tests.
 *
 * The contract under test: the WPQ is the ADR durability boundary.
 * A power cut at an *arbitrary* tick may lose everything still in
 * CPU caches, crossing the core-to-iMC hop, or stalled outside a
 * full WPQ -- and must lose nothing the iMC accepted. The crash
 * matrix sweeps the cut tick across a logged-writes run and checks
 * prefix durability at every single cut; the fuzz test drives random
 * PM programs against a reference durable-set model; the cost pins
 * keep the Empirical Guide numbers (clwb extra hop, partial
 * write-combining drain, the 256B ntstore-vs-clwb crossover) from
 * drifting.
 */

#include <gtest/gtest.h>

#include <cstdlib>
#include <map>
#include <set>
#include <string>
#include <vector>

#include "baselines/dram_system.hh"
#include "common/crash.hh"
#include "common/logging.hh"
#include "common/rng.hh"
#include "common/snapshot.hh"
#include "lens/driver.hh"
#include "nvram/nvm_checker.hh"
#include "nvram/vans_system.hh"
#include "tests/test_util.hh"

using namespace vans;
using persist::CrashHarness;
using persist::MediaImage;
using persist::PersistenceChecker;
using persist::PmOp;

namespace
{

/** Crash-test config: small world, verification on (the harness
 *  feeds the Verifier's PersistenceChecker). */
nvram::NvramConfig
crashConfig(unsigned dimms = 1)
{
    nvram::NvramConfig cfg = test::smallConfig();
    cfg.numDimms = dimms;
    cfg.interleaved = dimms > 1;
    cfg.verify = true;
    return cfg;
}

SystemFactory
vansFactory(const nvram::NvramConfig &cfg)
{
    return [cfg](EventQueue &eq) {
        setQuiet(true);
        return std::make_unique<nvram::VansSystem>(eq, cfg);
    };
}

/** Round-trip a report's image through a restarted world: the
 *  recovered world's durable state must be exactly the image. */
void
expectRestartPreservesImage(const SystemFactory &factory,
                            const MediaImage &image)
{
    EventQueue eq;
    std::unique_ptr<MemorySystem> sys =
        CrashHarness::restart(factory, eq, image);
    MediaImage again;
    sys->powerFail(again); // Immediate re-cut: nothing issued yet.
    EXPECT_TRUE(again == image)
        << "restart changed the durable set: " << again.lineCount()
        << " lines vs " << image.lineCount();
}

} // namespace

// ---- MediaImage ------------------------------------------------------

TEST(MediaImage, MaxMergeAndLookup)
{
    MediaImage img;
    EXPECT_EQ(img.lineCount(), 0u);
    EXPECT_FALSE(img.contains(0x40));
    EXPECT_EQ(img.versionOf(0x40), 0u);

    img.set(0x40, 7);
    img.set(0x80, 3);
    img.set(0x40, 5); // Older version: max-merge keeps 7.
    EXPECT_EQ(img.lineCount(), 2u);
    EXPECT_EQ(img.versionOf(0x40), 7u);
    EXPECT_EQ(img.versionOf(0x80), 3u);

    MediaImage other;
    other.set(0x80, 3);
    other.set(0x40, 7);
    EXPECT_TRUE(img == other);
    other.set(0xc0, 1);
    EXPECT_FALSE(img == other);
}

TEST(MediaImage, SnapshotRoundTrip)
{
    MediaImage img;
    img.set(0x1000, 42);
    img.set(0x0, 1);
    img.set(0xffffffc0, 9001);

    snapshot::StateSink sink;
    img.snapshotTo(sink);
    std::vector<std::uint8_t> bytes = sink.take();

    MediaImage back;
    back.set(0x77, 1); // Stale content must be cleared by restore.
    snapshot::StateSource src(bytes);
    back.restoreFrom(src);
    EXPECT_TRUE(src.exhausted());
    EXPECT_TRUE(back == img);
}

// ---- PersistenceChecker ----------------------------------------------

TEST(PersistenceChecker, FlushFenceDisciplineReachesDurable)
{
    verify::Monitor mon(/*fail_fast=*/false);
    PersistenceChecker pc(mon);
    using LS = PersistenceChecker::LineState;

    EXPECT_EQ(pc.state(0x40), LS::Clean);
    pc.onCachedWrite(0x40, 10);
    EXPECT_EQ(pc.state(0x40), LS::Dirty);
    pc.onFlush(0x40, 20);
    EXPECT_EQ(pc.state(0x40), LS::FlushPending);
    pc.onFenceIssued(1, 30);
    pc.onFenceComplete(1, 40);
    EXPECT_EQ(pc.state(0x40), LS::Durable);
    EXPECT_EQ(pc.durableLines(), 1u);

    pc.assumeDurable(0x40, 50);
    EXPECT_EQ(pc.violations(), 0u);
    EXPECT_TRUE(mon.clean());
}

TEST(PersistenceChecker, UnflushedDirtyAssumptionIsFlagged)
{
    verify::Monitor mon(/*fail_fast=*/false);
    PersistenceChecker pc(mon);

    pc.onCachedWrite(0x80, 10);
    pc.assumeDurable(0x80, 20);
    EXPECT_EQ(pc.violations(), 1u);
    EXPECT_EQ(mon.countRule("unflushed-dirty"), 1u);

    // A line never touched carries no assumption to violate.
    pc.assumeDurable(0xc0, 30);
    EXPECT_EQ(pc.violations(), 1u);
}

TEST(PersistenceChecker, UnfencedFlushAssumptionIsFlagged)
{
    verify::Monitor mon(/*fail_fast=*/false);
    PersistenceChecker pc(mon);

    pc.onCachedWrite(0x80, 10);
    pc.onFlush(0x80, 20);
    // Flushed but no fence completed: still not durable.
    pc.assumeDurable(0x80, 30);
    EXPECT_EQ(mon.countRule("unfenced-flush"), 1u);
}

TEST(PersistenceChecker, FenceCoversOnlyPriorFlushes)
{
    verify::Monitor mon(/*fail_fast=*/false);
    PersistenceChecker pc(mon);
    using LS = PersistenceChecker::LineState;

    pc.onCachedWrite(0x40, 1);
    pc.onFlush(0x40, 2);
    pc.onFenceIssued(9, 3);
    // This flush races past the fence: it is not covered by it.
    pc.onCachedWrite(0x80, 4);
    pc.onFlush(0x80, 5);
    pc.onFenceComplete(9, 6);

    EXPECT_EQ(pc.state(0x40), LS::Durable);
    EXPECT_EQ(pc.state(0x80), LS::FlushPending);
}

TEST(PersistenceChecker, RewriteInvalidatesPendingFlush)
{
    verify::Monitor mon(/*fail_fast=*/false);
    PersistenceChecker pc(mon);
    using LS = PersistenceChecker::LineState;

    pc.onCachedWrite(0x40, 1);
    pc.onFlush(0x40, 2);
    // New store before the fence: the in-flight flush covers stale
    // data only; the line is dirty again.
    pc.onCachedWrite(0x40, 3);
    EXPECT_EQ(pc.state(0x40), LS::Dirty);
    pc.onFenceIssued(1, 4);
    pc.onFenceComplete(1, 5);
    EXPECT_EQ(pc.state(0x40), LS::Dirty);
    pc.assumeDurable(0x40, 6);
    EXPECT_EQ(mon.countRule("unflushed-dirty"), 1u);
}

// ---- Cost model pins (Empirical Guide) -------------------------------

TEST(PersistCostModel, ClwbPaysTheExtraHop)
{
    // A clwb writeback leaves the cache hierarchy, not the store
    // buffer: exactly cfg.clwbExtraNs more one-way latency than the
    // NT store, both completing at WPQ acceptance.
    nvram::NvramConfig cfg = test::smallConfig();
    Tick nt, wb, inval;
    {
        test::VansFixture f(cfg);
        nt = f.drv.write(0);
    }
    {
        test::VansFixture f(cfg);
        wb = f.drv.clwb(0);
    }
    {
        test::VansFixture f(cfg);
        inval = f.drv.clflushopt(0);
    }
    EXPECT_EQ(wb - nt, nsToTicks(cfg.clwbExtraNs));
    EXPECT_EQ(inval, wb); // clflushopt prices like clwb at the iMC.
}

TEST(PersistCostModel, SfencePartialWcDrainCharge)
{
    nvram::NvramConfig cfg = test::smallConfig();

    // A full 256B write-combining buffer drains for free: 4 NT
    // stores, all already ADR-accepted, make the sfence immediate.
    {
        test::VansFixture f(cfg);
        for (unsigned i = 0; i < 4; ++i)
            f.drv.write(i * cacheLineSize);
        EXPECT_EQ(f.drv.sfence(), 0u);
        EXPECT_EQ(f.sys.imc().stats().scalarValue("sfences"), 1u);
        EXPECT_EQ(
            f.sys.imc().stats().scalarValue("wc_partial_drains"),
            0u);
    }

    // One 64B NT store cuts the buffer at a quarter fill: the sfence
    // pays the partial-drain charge, served in 20ns poll steps.
    {
        test::VansFixture f(cfg);
        f.drv.write(0);
        EXPECT_EQ(f.drv.sfence(), nsToTicks(cfg.wcPartialDrainNs));
        EXPECT_EQ(
            f.sys.imc().stats().scalarValue("wc_partial_drains"),
            1u);
    }

    // An sfence with no prior NT store has nothing to drain.
    {
        test::VansFixture f(cfg);
        EXPECT_EQ(f.drv.sfence(), 0u);
    }
}

TEST(PersistCostModel, NtStoreVsClwbCrossoverAt256Bytes)
{
    // The Empirical Guide's headline rule: persist small blocks via
    // cached stores + clwb, large blocks via NT stores, crossover at
    // 256B (one write-combining buffer). Below 256B the NT path's
    // partial-drain charge dominates the clwb extra hops; at 256B
    // and above the NT path wins.
    nvram::NvramConfig cfg = test::smallConfig();
    auto ntCost = [&cfg](std::uint32_t bytes) {
        test::VansFixture f(cfg);
        return f.drv.persistBlockNt(0, bytes);
    };
    auto cachedCost = [&cfg](std::uint32_t bytes) {
        test::VansFixture f(cfg);
        return f.drv.persistBlockCached(0, bytes);
    };
    for (std::uint32_t bytes : {64u, 128u, 192u}) {
        EXPECT_LT(cachedCost(bytes), ntCost(bytes))
            << "cached persist must win below the crossover ("
            << bytes << "B)";
    }
    for (std::uint32_t bytes : {256u, 512u, 1024u}) {
        EXPECT_LE(ntCost(bytes), cachedCost(bytes))
            << "NT persist must win at/above the crossover ("
            << bytes << "B)";
    }
}

// ---- Crash matrix ----------------------------------------------------

TEST(CrashMatrix, FullRunIsFullyDurable)
{
    nvram::NvramConfig cfg = crashConfig();
    SystemFactory factory = vansFactory(cfg);
    std::vector<PmOp> prog = CrashHarness::loggedWrites(0, 12);

    // Cut far beyond the end: the program drains untouched.
    CrashHarness::Report rep = CrashHarness::runToCrash(
        factory, prog, static_cast<Tick>(-1) / 2);
    EXPECT_FALSE(rep.cutHappened);
    EXPECT_EQ(rep.writesIssued.size(), 12u);
    EXPECT_EQ(rep.fencedWrites, 12u);
    EXPECT_EQ(rep.fencesCompleted, 12u);
    EXPECT_EQ(rep.image.lineCount(), 12u);
    std::string why;
    EXPECT_TRUE(rep.checkPrefixDurability(why)) << why;
    expectRestartPreservesImage(factory, rep.image);
}

namespace
{

/** Shared body of the matrix sweeps: crash a logged-writes run at
 *  @p cut and check the recovery invariant. */
void
checkCutAt(const SystemFactory &factory,
           const std::vector<PmOp> &prog, Tick cut, bool nt_workload)
{
    CrashHarness::Report rep =
        CrashHarness::runToCrash(factory, prog, cut);
    std::string why;
    ASSERT_TRUE(rep.checkPrefixDurability(why))
        << "cut at tick " << cut << " ("
        << (nt_workload ? "nt" : "clwb") << " workload): " << why;
    expectRestartPreservesImage(factory, rep.image);
}

} // namespace

TEST(CrashMatrix, PrefixDurabilityAtEveryCutTick)
{
    // The tentpole matrix: a logged-writes workload crashed at every
    // tick of a dense sweep window (plus an even coarse sweep over
    // the whole run). After every single cut, the durable image must
    // be exactly a prefix of the issue order -- no lost fenced line,
    // no phantom un-fenced line, no torn line, no hole.
    nvram::NvramConfig cfg = crashConfig();
    SystemFactory factory = vansFactory(cfg);

    for (bool nt : {true, false}) {
        std::vector<PmOp> prog = CrashHarness::loggedWrites(0, 6, nt);
        CrashHarness::Report full = CrashHarness::runToCrash(
            factory, prog, static_cast<Tick>(-1) / 2);
        ASSERT_FALSE(full.cutHappened);
        ASSERT_EQ(full.fencedWrites, 6u);

        // Dense window: every tick around the middle record's
        // store/flush/fence activity.
        Tick mid = full.endTick / 2;
        for (Tick cut = mid; cut < mid + 400; ++cut)
            checkCutAt(factory, prog, cut, nt);

        // Coarse sweep: evenly spaced cuts across the entire run,
        // ends included (cut at 1 = power fails before anything).
        Tick stride = full.endTick / 96 + 1;
        for (Tick cut = 1; cut <= full.endTick + stride;
             cut += stride)
            checkCutAt(factory, prog, cut, nt);
    }
}

TEST(CrashMatrix, EarlyCutLosesEverything)
{
    nvram::NvramConfig cfg = crashConfig();
    SystemFactory factory = vansFactory(cfg);
    std::vector<PmOp> prog = CrashHarness::loggedWrites(0, 4);

    // Power fails before the first store reaches the iMC: the hop
    // takes coreToImcNs, so nothing can be durable yet.
    CrashHarness::Report rep =
        CrashHarness::runToCrash(factory, prog, 1);
    EXPECT_TRUE(rep.cutHappened);
    EXPECT_EQ(rep.image.lineCount(), 0u);
    EXPECT_EQ(rep.fencedWrites, 0u);
    std::string why;
    EXPECT_TRUE(rep.checkPrefixDurability(why)) << why;
}

TEST(CrashMatrix, UnflushedCachedStoresNeverSurvive)
{
    // Cached stores without any flush: no request ever reaches the
    // iMC, so every cut -- and even the full run -- leaves the media
    // empty. This is the bug class the PersistenceChecker flags.
    nvram::NvramConfig cfg = crashConfig();
    SystemFactory factory = vansFactory(cfg);
    std::vector<PmOp> prog;
    for (unsigned i = 0; i < 8; ++i)
        prog.push_back({PmOp::Kind::Store, i * cacheLineSize});
    prog.push_back({PmOp::Kind::Sfence, 0});

    CrashHarness::Report rep = CrashHarness::runToCrash(
        factory, prog, static_cast<Tick>(-1) / 2);
    EXPECT_FALSE(rep.cutHappened);
    EXPECT_EQ(rep.writesIssued.size(), 0u);
    EXPECT_EQ(rep.image.lineCount(), 0u);
    EXPECT_EQ(rep.fencesCompleted, 1u);
}

// ---- Power-failure misuse (death tests) ------------------------------

TEST(CrashDeathTest, PowerFailRequiresTracking)
{
    setQuiet(true);
    test::VansFixture f(crashConfig());
    MediaImage img;
    EXPECT_DEATH(f.sys.powerFail(img), "persist tracking");
}

TEST(CrashDeathTest, PowerFailTwiceIsRefused)
{
    setQuiet(true);
    test::VansFixture f(crashConfig());
    f.sys.enablePersistTracking();
    MediaImage img;
    f.sys.powerFail(img);
    EXPECT_DEATH(f.sys.powerFail(img), "already-failed");
}

TEST(CrashDeathTest, IssueIntoFailedWorldIsRefused)
{
    setQuiet(true);
    test::VansFixture f(crashConfig());
    f.sys.enablePersistTracking();
    MediaImage img;
    f.sys.powerFail(img);
    RequestHandle h = f.sys.makeRequest(0, MemOp::WriteNT);
    EXPECT_DEATH(f.sys.issue(h), "power-failed");
}

TEST(CrashDeathTest, LoadImageIntoUsedWorldIsRefused)
{
    setQuiet(true);
    test::VansFixture f(crashConfig());
    f.drv.write(0); // The world has issued: no longer fresh.
    MediaImage img;
    img.set(0x40, 1);
    EXPECT_DEATH(f.sys.loadDurableImage(img), "already issued");
}

TEST(CrashDeathTest, HarnessRefusesNonPersistSystems)
{
    setQuiet(true);
    // The DRAM baselines expose no ADR boundary; the harness must
    // refuse them instead of reporting a vacuous durable set.
    SystemFactory dram = [](EventQueue &eq) {
        return std::make_unique<baselines::DramMainMemory>(
            eq, baselines::DramMainMemory::ddr4Params(1ull << 30),
            "ddr4");
    };
    std::vector<PmOp> prog = CrashHarness::loggedWrites(0, 1);
    EXPECT_DEATH(CrashHarness::runToCrash(dram, prog, 1000),
                 "persist-capable");
}

// ---- Randomized crash-consistency fuzz -------------------------------

namespace
{

/** Reference model check for arbitrary programs (repeated lines
 *  allowed, so prefix durability does not apply): every sfence-
 *  covered write must survive with at least its version; every
 *  surviving version must be one actually issued for that line. */
void
checkAgainstReferenceModel(const CrashHarness::Report &rep,
                           std::uint64_t seed)
{
    // Versions required durable: per line, the max id among writes
    // covered by a completed sfence.
    std::map<Addr, std::uint64_t> fencedVer;
    std::map<Addr, std::set<std::uint64_t>> issuedVers;
    for (std::size_t i = 0; i < rep.writesIssued.size(); ++i) {
        const auto &[line, id] = rep.writesIssued[i];
        issuedVers[line].insert(id);
        if (i < rep.fencedWrites) {
            std::uint64_t &v = fencedVer[line];
            if (id > v)
                v = id;
        }
    }

    for (const auto &[line, ver] : fencedVer) {
        ASSERT_TRUE(rep.image.contains(line))
            << "seed=" << seed << ": fenced line " << std::hex
            << line << " lost";
        ASSERT_GE(rep.image.versionOf(line), ver)
            << "seed=" << seed << ": fenced line " << std::hex
            << line << " is stale";
    }
    for (const auto &[line, ver] : rep.image.lines()) {
        auto it = issuedVers.find(line);
        ASSERT_TRUE(it != issuedVers.end())
            << "seed=" << seed << ": phantom line " << std::hex
            << line;
        ASSERT_TRUE(it->second.count(ver) != 0)
            << "seed=" << seed << ": line " << std::hex << line
            << " durable with never-issued version " << std::dec
            << ver;
    }
}

} // namespace

TEST(CrashFuzz, RandomProgramsMatchReferenceDurableSet)
{
    // SplitMix64-seeded random PM programs over a 2-channel socket,
    // random cut ticks, checked against the reference durable-set
    // model. VANS_FUZZ_ITERS overrides the iteration count (the
    // sanitizer CI lane runs a reduced sweep).
    unsigned iters = 1000;
    if (const char *env = std::getenv("VANS_FUZZ_ITERS"))
        iters = static_cast<unsigned>(std::atoi(env));

    nvram::NvramConfig cfg = crashConfig(/*dimms=*/2);
    SystemFactory factory = vansFactory(cfg);

    for (unsigned iter = 0; iter < iters; ++iter) {
        std::uint64_t seed = 0xc5a5ull * 0x9e3779b97f4a7c15ull + iter;
        Rng rng(seed);

        // Lines spread over both channels (4KB interleave).
        std::vector<Addr> lines;
        for (unsigned i = 0; i < 6; ++i)
            lines.push_back(static_cast<Addr>(i) * 4096 +
                            (i % 3) * cacheLineSize);

        std::vector<PmOp> prog;
        unsigned ops = 8 + static_cast<unsigned>(rng.below(16));
        for (unsigned i = 0; i < ops; ++i) {
            Addr a = lines[rng.below(lines.size())];
            switch (rng.below(10)) {
              case 0:
              case 1:
              case 2:
                prog.push_back({PmOp::Kind::Store, a});
                break;
              case 3:
              case 4:
              case 5:
                prog.push_back({PmOp::Kind::NtStore, a});
                break;
              case 6:
                prog.push_back({PmOp::Kind::Clwb, a});
                break;
              case 7:
                prog.push_back({PmOp::Kind::Clflushopt, a});
                break;
              default:
                prog.push_back({PmOp::Kind::Sfence, 0});
                break;
            }
        }

        Tick cut = 1 + rng.below(nsToTicks(500));
        CrashHarness::Report rep =
            CrashHarness::runToCrash(factory, prog, cut);
        checkAgainstReferenceModel(rep, seed);
        if (::testing::Test::HasFatalFailure())
            return;
    }
}

// ---- Restart / recovery ----------------------------------------------

TEST(CrashRecovery, RestartedWorldServesNewRequests)
{
    nvram::NvramConfig cfg = crashConfig();
    SystemFactory factory = vansFactory(cfg);
    std::vector<PmOp> prog = CrashHarness::loggedWrites(0, 4);
    CrashHarness::Report rep = CrashHarness::runToCrash(
        factory, prog, static_cast<Tick>(-1) / 2);
    ASSERT_EQ(rep.image.lineCount(), 4u);

    // Recovery: the restarted world carries the durable image and
    // runs like any fresh world on top of it.
    EventQueue eq;
    std::unique_ptr<MemorySystem> sys =
        CrashHarness::restart(factory, eq, rep.image);
    EXPECT_FALSE(sys->powerFailed());
    lens::Driver drv(*sys);
    EXPECT_GT(drv.read(0), 0u);
    drv.write(4 * cacheLineSize);
    drv.sfence();

    MediaImage after;
    sys->powerFail(after);
    EXPECT_EQ(after.lineCount(), 5u);
    for (const auto &[line, ver] : rep.image.lines())
        EXPECT_EQ(after.versionOf(line), ver);
}
