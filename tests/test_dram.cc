/**
 * @file
 * Tests for the DDR4 DRAM model: timing presets, address mapping,
 * controller behaviour, and the protocol checker (including
 * property-style sweeps that run random traffic through the
 * controller and assert the resulting command stream is legal --
 * this repo's substitute for the Micron verification model flow of
 * paper section IV-B).
 */

#include <gtest/gtest.h>

#include "common/event_queue.hh"
#include "common/rng.hh"
#include "dram/address_map.hh"
#include "dram/checker.hh"
#include "dram/controller.hh"

using namespace vans;
using namespace vans::dram;

namespace
{

/** Run @p n accesses and return (controller, violations). */
std::vector<Violation>
runAndCheck(const DramTiming &timing, SchedPolicy policy,
            unsigned accesses, double write_frac,
            std::uint64_t addr_space, std::uint64_t seed,
            std::uint32_t size = 64)
{
    EventQueue eq;
    DramGeometry geom;
    geom.capacityBytes = 1ull << 30;
    DramController ctrl(eq, timing, geom, policy,
                        MapScheme::RowBankCol, "dut");
    ctrl.trace().setEnabled(true);

    Rng rng(seed);
    unsigned done = 0;
    for (unsigned i = 0; i < accesses; ++i) {
        Addr a = rng.below(addr_space / 64) * 64;
        bool w = rng.uniform() < write_frac;
        ctrl.access(a, w, size, [&done](Tick) { ++done; });
    }
    // Drain: run until all accesses completed.
    while (done < accesses) {
        if (!eq.step())
            break;
    }
    EXPECT_EQ(done, accesses);

    Ddr4Checker checker(timing, geom);
    return checker.check(ctrl.trace().commands());
}

} // namespace

TEST(DramTiming, PresetsAreConsistent)
{
    auto t4 = DramTiming::ddr4_2666();
    EXPECT_EQ(t4.tCL, 19u);
    EXPECT_EQ(t4.tRAS, 43u);
    EXPECT_GE(t4.tRC, t4.tRAS + t4.tRP - 1);
    // One cycle at 1333MHz is ~750ps.
    EXPECT_NEAR(static_cast<double>(t4.cyc(1)), 750.0, 1.0);

    auto t3 = DramTiming::ddr3_1600();
    EXPECT_LT(t3.clockMhz, t4.clockMhz);

    auto pcm = DramTiming::pcmLike();
    EXPECT_GT(pcm.tRCD, t4.tRCD * 3);
    EXPECT_GT(pcm.tWR, t4.tWR * 10);
    EXPECT_EQ(pcm.tREFI, 0u); // Non-volatile: no refresh.
}

TEST(AddressMap, CoordinatesInRange)
{
    DramGeometry geom;
    geom.capacityBytes = 1ull << 30;
    AddressMap map(geom, MapScheme::RowBankCol);
    Rng rng(1);
    for (int i = 0; i < 2000; ++i) {
        Addr a = rng.below(geom.capacityBytes);
        auto c = map.decode(a);
        EXPECT_LT(c.rank, geom.ranks);
        EXPECT_LT(c.bankGroup, geom.bankGroups);
        EXPECT_LT(c.bank, geom.banksPerGroup);
        EXPECT_LT(c.row, geom.rowsPerBank());
        EXPECT_LT(c.column, geom.rowBytes / cacheLineSize);
    }
}

TEST(AddressMap, RowBankColKeepsRowLocality)
{
    DramGeometry geom;
    AddressMap map(geom, MapScheme::RowBankCol);
    // Consecutive lines within a row-sized block share bank and row.
    auto c0 = map.decode(0);
    for (Addr a = 64; a < geom.rowBytes; a += 64) {
        auto c = map.decode(a);
        EXPECT_TRUE(c.sameBank(c0));
        EXPECT_EQ(c.row, c0.row);
    }
}

TEST(AddressMap, BankStripeSpreadsChunks)
{
    DramGeometry geom;
    AddressMap map(geom, MapScheme::BankStripe);
    // 256B-aligned chunks land on different banks.
    auto c0 = map.decode(0);
    auto c1 = map.decode(256);
    EXPECT_FALSE(c0.sameBank(c1));
}

TEST(AddressMap, DistinctAddressesDistinctCoords)
{
    DramGeometry geom;
    AddressMap map(geom, MapScheme::RowBankCol);
    auto a = map.decode(0);
    auto b = map.decode(64);
    bool same = a.sameBank(b) && a.row == b.row &&
                a.column == b.column;
    EXPECT_FALSE(same);
}

TEST(DramController, SingleReadLatencyIsActToData)
{
    EventQueue eq;
    auto timing = DramTiming::ddr4_2666();
    DramGeometry geom;
    DramController ctrl(eq, timing, geom);
    Tick done_at = 0;
    ctrl.access(0, false, 64, [&done_at](Tick t) { done_at = t; });
    while (done_at == 0 && eq.step()) {
    }
    // Cold access: ACT + tRCD + tCL + burst, plus scheduling quanta.
    Tick floor = timing.cyc(timing.tRCD + timing.tCL) +
                 timing.burstTicks();
    EXPECT_GE(done_at, floor);
    EXPECT_LE(done_at, floor + timing.cyc(8));
}

TEST(DramController, RowHitFasterThanRowMiss)
{
    EventQueue eq;
    auto timing = DramTiming::ddr4_2666();
    DramGeometry geom;
    DramController ctrl(eq, timing, geom);

    Tick first = 0, hit = 0;
    ctrl.access(0, false, 64, [&](Tick t) { first = t; });
    while (first == 0 && eq.step()) {
    }
    Tick t0 = eq.curTick();
    ctrl.access(64, false, 64, [&](Tick t) { hit = t; });
    while (hit == 0 && eq.step()) {
    }
    Tick hit_latency = hit - t0;
    // Row hit skips ACT: latency ~ tCL + burst.
    EXPECT_LT(hit_latency, timing.cyc(timing.tRCD + timing.tCL));
    EXPECT_EQ(ctrl.stats().scalarValue("row_hits"), 1u);
}

TEST(DramController, LargeAccessCompletesOnce)
{
    EventQueue eq;
    DramGeometry geom;
    DramController ctrl(eq, DramTiming::ddr4_2666(), geom);
    int completions = 0;
    ctrl.access(0, true, 4096, [&](Tick) { ++completions; });
    while (eq.step() && completions == 0) {
    }
    EXPECT_EQ(completions, 1);
    EXPECT_EQ(ctrl.stats().scalarValue("cmd_wr"), 64u);
}

TEST(DramController, RefreshHappens)
{
    EventQueue eq;
    auto timing = DramTiming::ddr4_2666();
    DramGeometry geom;
    DramController ctrl(eq, timing, geom);
    ctrl.trace().setEnabled(true);
    int done = 0;
    ctrl.access(0, false, 64, [&](Tick) { ++done; });
    // Run past several refresh intervals.
    eq.runUntil(timing.cyc(timing.tREFI) * 4);
    EXPECT_GE(ctrl.stats().scalarValue("cmd_ref"), 3u);
}

TEST(DramController, FrfcfsBeatsFcfsOnMixedRows)
{
    // Interleave row-hit and row-miss traffic; FR-FCFS should finish
    // sooner by reordering hits first.
    auto run = [](SchedPolicy pol) {
        EventQueue eq;
        DramGeometry geom;
        DramController ctrl(eq, DramTiming::ddr4_2666(), geom, pol);
        unsigned done = 0;
        Rng rng(5);
        for (int i = 0; i < 64; ++i) {
            // Alternate same-row and far-row accesses.
            Addr a = (i % 2) ? (static_cast<Addr>(i) * 64)
                             : rng.below(1u << 28);
            ctrl.access(alignDown(a, 64), false, 64,
                        [&done](Tick) { ++done; });
        }
        while (done < 64 && eq.step()) {
        }
        return eq.curTick();
    };
    EXPECT_LE(run(SchedPolicy::FRFCFS), run(SchedPolicy::FCFS));
}

// ---- Protocol checker: positive property sweeps -------------------

struct CheckerSweepParam
{
    const char *name;
    double writeFrac;
    std::uint64_t addrSpace;
    std::uint32_t size;
};

class CheckerSweep
    : public ::testing::TestWithParam<CheckerSweepParam>
{};

TEST_P(CheckerSweep, ControllerEmitsLegalDdr4)
{
    const auto &p = GetParam();
    auto v = runAndCheck(DramTiming::ddr4_2666(), SchedPolicy::FRFCFS,
                         400, p.writeFrac, p.addrSpace, 11, p.size);
    for (const auto &viol : v) {
        ADD_FAILURE() << p.name << ": " << viol.rule << " at cmd "
                      << viol.cmdIndex << ": " << viol.detail;
    }
}

INSTANTIATE_TEST_SUITE_P(
    Traffic, CheckerSweep,
    ::testing::Values(
        CheckerSweepParam{"read_seq", 0.0, 1 << 16, 64},
        CheckerSweepParam{"read_rand", 0.0, 1u << 28, 64},
        CheckerSweepParam{"write_rand", 1.0, 1u << 28, 64},
        CheckerSweepParam{"mixed_rand", 0.5, 1u << 28, 64},
        CheckerSweepParam{"mixed_hot", 0.5, 1 << 14, 64},
        CheckerSweepParam{"bulk_256B", 0.5, 1u << 26, 256},
        CheckerSweepParam{"bulk_4K", 0.3, 1u << 26, 4096}),
    [](const auto &info) { return std::string(info.param.name); });

TEST(CheckerSweepFcfs, LegalUnderFcfsToo)
{
    auto v = runAndCheck(DramTiming::ddr4_2666(), SchedPolicy::FCFS,
                         300, 0.5, 1u << 26, 13);
    EXPECT_TRUE(v.empty());
}

TEST(CheckerSweepDdr3, LegalWithDdr3Timing)
{
    auto v = runAndCheck(DramTiming::ddr3_1600(), SchedPolicy::FRFCFS,
                         300, 0.5, 1u << 26, 17);
    EXPECT_TRUE(v.empty());
}

TEST(CheckerSweepPcm, LegalWithPcmTiming)
{
    auto v = runAndCheck(DramTiming::pcmLike(), SchedPolicy::FRFCFS,
                         300, 0.5, 1u << 26, 19);
    EXPECT_TRUE(v.empty());
}

// ---- Protocol checker: negative tests (it must catch bugs) --------

TEST(Checker, CatchesActOnOpenBank)
{
    auto t = DramTiming::ddr4_2666();
    DramGeometry g;
    Ddr4Checker checker(t, g);
    std::vector<DramCommand> cmds = {
        {0, DramCmd::ACT, 0, 0, 0, 1, 0},
        {t.cyc(100), DramCmd::ACT, 0, 0, 0, 2, 0},
    };
    auto v = checker.check(cmds);
    ASSERT_FALSE(v.empty());
    EXPECT_EQ(v[0].rule, "ACT-on-open");
}

TEST(Checker, CatchesTrcdViolation)
{
    auto t = DramTiming::ddr4_2666();
    DramGeometry g;
    Ddr4Checker checker(t, g);
    std::vector<DramCommand> cmds = {
        {0, DramCmd::ACT, 0, 0, 0, 1, 0},
        {t.cyc(2), DramCmd::RD, 0, 0, 0, 1, 0}, // Way too early.
    };
    auto v = checker.check(cmds);
    ASSERT_FALSE(v.empty());
    EXPECT_EQ(v[0].rule, "tRCD");
}

TEST(Checker, CatchesCasOnClosedBank)
{
    auto t = DramTiming::ddr4_2666();
    DramGeometry g;
    Ddr4Checker checker(t, g);
    std::vector<DramCommand> cmds = {
        {0, DramCmd::RD, 0, 0, 0, 1, 0},
    };
    auto v = checker.check(cmds);
    ASSERT_FALSE(v.empty());
    EXPECT_EQ(v[0].rule, "CAS-on-closed");
}

TEST(Checker, CatchesRowMismatch)
{
    auto t = DramTiming::ddr4_2666();
    DramGeometry g;
    Ddr4Checker checker(t, g);
    std::vector<DramCommand> cmds = {
        {0, DramCmd::ACT, 0, 0, 0, 1, 0},
        {t.cyc(30), DramCmd::RD, 0, 0, 0, 7, 0},
    };
    auto v = checker.check(cmds);
    ASSERT_FALSE(v.empty());
    EXPECT_EQ(v[0].rule, "CAS-row-mismatch");
}

TEST(Checker, CatchesEarlyPrecharge)
{
    auto t = DramTiming::ddr4_2666();
    DramGeometry g;
    Ddr4Checker checker(t, g);
    std::vector<DramCommand> cmds = {
        {0, DramCmd::ACT, 0, 0, 0, 1, 0},
        {t.cyc(5), DramCmd::PRE, 0, 0, 0, 1, 0}, // tRAS violated.
    };
    auto v = checker.check(cmds);
    ASSERT_FALSE(v.empty());
    EXPECT_EQ(v[0].rule, "tRAS");
}

TEST(Checker, CatchesTwrViolation)
{
    auto t = DramTiming::ddr4_2666();
    DramGeometry g;
    Ddr4Checker checker(t, g);
    std::vector<DramCommand> cmds = {
        {0, DramCmd::ACT, 0, 0, 0, 1, 0},
        {t.cyc(30), DramCmd::WR, 0, 0, 0, 1, 0},
        // PRE after tRAS but within write recovery of the WR above.
        {t.cyc(50), DramCmd::PRE, 0, 0, 0, 1, 0},
    };
    auto v = checker.check(cmds);
    ASSERT_FALSE(v.empty());
    EXPECT_EQ(v[0].rule, "tWR");
}

TEST(Checker, CatchesCcdViolation)
{
    auto t = DramTiming::ddr4_2666();
    DramGeometry g;
    Ddr4Checker checker(t, g);
    std::vector<DramCommand> cmds = {
        {0, DramCmd::ACT, 0, 0, 0, 1, 0},
        {t.cyc(25), DramCmd::RD, 0, 0, 0, 1, 0},
        {t.cyc(26), DramCmd::RD, 0, 0, 0, 1, 0}, // tCCD_L violated.
    };
    auto v = checker.check(cmds);
    ASSERT_FALSE(v.empty());
    EXPECT_EQ(v[0].rule, "tCCD_L");
}

TEST(Checker, CatchesRefreshOnOpenBank)
{
    auto t = DramTiming::ddr4_2666();
    DramGeometry g;
    Ddr4Checker checker(t, g);
    std::vector<DramCommand> cmds = {
        {0, DramCmd::ACT, 0, 0, 0, 1, 0},
        {t.cyc(100), DramCmd::REF, 0, 0, 0, 0, 0},
    };
    auto v = checker.check(cmds);
    ASSERT_FALSE(v.empty());
    EXPECT_EQ(v[0].rule, "REF-open-bank");
}

TEST(Checker, CatchesFawViolation)
{
    auto t = DramTiming::ddr4_2666();
    t.tFAW = 40; // Make the window binding over 4 x tRRD_L spacing.
    DramGeometry g;
    Ddr4Checker checker(t, g);
    // Five ACTs to different banks, far enough apart for tRRD but
    // all within one tFAW window.
    std::vector<DramCommand> cmds;
    for (unsigned i = 0; i < 5; ++i) {
        cmds.push_back({t.cyc(i * t.tRRD_L), DramCmd::ACT, 0, i / 4,
                        i % 4, 1, 0});
    }
    auto v = checker.check(cmds);
    bool found = false;
    for (const auto &viol : v)
        found = found || viol.rule == "tFAW";
    EXPECT_TRUE(found);
}

TEST(Checker, CleanStreamPasses)
{
    auto t = DramTiming::ddr4_2666();
    DramGeometry g;
    Ddr4Checker checker(t, g);
    std::vector<DramCommand> cmds = {
        {t.cyc(10), DramCmd::ACT, 0, 0, 0, 1, 0},
        {t.cyc(10 + t.tRCD), DramCmd::RD, 0, 0, 0, 1, 0},
        {t.cyc(10 + t.tRCD + t.tRTP + t.tRAS), DramCmd::PRE, 0, 0, 0,
         1, 0},
        {t.cyc(200), DramCmd::ACT, 0, 0, 0, 2, 0},
    };
    auto v = checker.check(cmds);
    EXPECT_TRUE(v.empty());
}
