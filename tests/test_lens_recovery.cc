/**
 * @file
 * The reproduction's flagship property: LENS, treating the memory
 * system as a black box (request streams + latencies only), must
 * reverse engineer the microarchitectural parameters we planted in
 * VANS -- the experiment the paper performs against real Optane
 * hardware in section III, made falsifiable.
 */

#include <gtest/gtest.h>

#include "lens/report.hh"
#include "tests/test_util.hh"

using namespace vans;
using namespace vans::lens;
using vans::test::VansFixture;

namespace
{

BufferProberParams
fastBufferParams(std::uint64_t max_region)
{
    BufferProberParams p;
    p.maxRegion = max_region;
    p.warmupLines = 8000;
    p.measureLines = 2500;
    return p;
}

} // namespace

TEST(LensRecovery, ReadBufferCapacities)
{
    VansFixture f;
    auto probe = runBufferProber(f.drv, fastBufferParams(64ull << 20));
    ASSERT_GE(probe.readBufferCapacities.size(), 2u)
        << "expected two read-buffer levels (RMW 16K, AIT 16M)";
    EXPECT_EQ(probe.readBufferCapacities[0], 16u << 10);
    EXPECT_EQ(probe.readBufferCapacities[1], 16u << 20);
}

TEST(LensRecovery, WriteQueueCapacities)
{
    VansFixture f;
    auto probe = runBufferProber(f.drv, fastBufferParams(1 << 20));
    ASSERT_GE(probe.writeQueueCapacities.size(), 2u)
        << "expected two write-queue levels (WPQ 512B, LSQ 4K)";
    EXPECT_EQ(probe.writeQueueCapacities[0], 512u);
    // The region-granularity estimate brackets the LSQ within 2x
    // (combining keeps absorbing slightly past exact capacity).
    EXPECT_GE(probe.writeQueueCapacities[1], 4u << 10);
    EXPECT_LE(probe.writeQueueCapacities[1], 8u << 10);
}

TEST(LensRecovery, HierarchyIsInclusive)
{
    VansFixture f;
    auto probe = runBufferProber(f.drv, fastBufferParams(16 << 20));
    EXPECT_TRUE(probe.inclusiveHierarchy)
        << "RaW must show no parallel fast-forward speedup";
}

TEST(LensRecovery, LevelLatenciesAreOrdered)
{
    VansFixture f;
    auto probe = runBufferProber(f.drv, fastBufferParams(64ull << 20));
    ASSERT_GE(probe.levelLatenciesNs.size(), 3u);
    // RMW < AIT-buffer < media, with plausible magnitudes.
    EXPECT_GT(probe.levelLatenciesNs[0], 100);
    EXPECT_LT(probe.levelLatenciesNs[0], 250);
    EXPECT_GT(probe.levelLatenciesNs[1],
              probe.levelLatenciesNs[0] * 1.3);
    EXPECT_GT(probe.levelLatenciesNs[2],
              probe.levelLatenciesNs[1] * 1.1);
}

TEST(LensRecovery, ReadAmplificationKnees)
{
    VansFixture f;
    auto probe = runBufferProber(f.drv, fastBufferParams(64ull << 20));
    // RMW entry = 256B, AIT entry = 4KB (paper Fig 6a). The score
    // floor compresses each knee by up to one power of two.
    EXPECT_GE(probe.readEntrySizeL1, 128u);
    EXPECT_LE(probe.readEntrySizeL1, 512u);
    EXPECT_GE(probe.readEntrySizeL2, 2048u);
    EXPECT_LE(probe.readEntrySizeL2, 4096u);
    // Scores decline monotonically-ish: first point clearly above 1,
    // last point near 1.
    ASSERT_FALSE(probe.readAmpL2.empty());
    double first = probe.readAmpL2.points().front().y;
    double last = probe.readAmpL2.points().back().y;
    EXPECT_GT(first, last * 1.5);
}

TEST(LensRecovery, AlteredRmwCapacityIsDetected)
{
    // Plant a 32KB RMW buffer instead of 16KB: LENS must see the
    // first read inflection move accordingly -- the "reconfigure for
    // other NVRAM DIMMs" claim of paper section IV-E.
    nvram::NvramConfig cfg = nvram::NvramConfig::optaneDefault();
    cfg.rmwEntries = 128; // 128 x 256B = 32KB.
    VansFixture f(cfg);
    auto probe = runBufferProber(f.drv, fastBufferParams(1 << 20));
    ASSERT_GE(probe.readBufferCapacities.size(), 1u);
    EXPECT_EQ(probe.readBufferCapacities[0], 32u << 10);
}

TEST(LensRecovery, SmallerWpqIsDetected)
{
    nvram::NvramConfig cfg = nvram::NvramConfig::optaneDefault();
    cfg.wpqEntries = 4; // 256B WPQ.
    VansFixture f(cfg);
    auto probe = runBufferProber(f.drv, fastBufferParams(256 << 10));
    ASSERT_GE(probe.writeQueueCapacities.size(), 1u);
    EXPECT_EQ(probe.writeQueueCapacities[0], 256u);
}

TEST(LensRecovery, MigrationParameters)
{
    // Smaller threshold keeps the test quick; LENS must recover the
    // planted interval and latency.
    nvram::NvramConfig cfg = nvram::NvramConfig::optaneDefault();
    cfg.wearThreshold = 2000;
    cfg.migrationUs = 40;
    VansFixture f(cfg);

    PolicyProberParams pp;
    pp.overwriteIterations = 9000;
    pp.tailRegions = {};
    auto probe = runPolicyProber(f.drv, pp);

    EXPECT_NEAR(probe.tailIntervalWrites, 2000, 200)
        << "migration every ~wearThreshold 256B writes";
    EXPECT_NEAR(probe.tailLatencyUs, 40, 12);
    // >10x the normal write latency (paper: >100x at the real
    // 50us/0.4us ratio).
    EXPECT_GT(probe.tailLatencyUs * 1000,
              probe.normalWriteNs * 10);
}

TEST(LensRecovery, WearBlockSize)
{
    nvram::NvramConfig cfg = nvram::NvramConfig::optaneDefault();
    cfg.wearThreshold = 1500;
    cfg.migrationUs = 40;
    VansFixture f(cfg);

    PolicyProberParams pp;
    pp.overwriteIterations = 4000;
    pp.tailRegions = {256, 4096, 65536, 262144};
    pp.tailSweepBytes = 3ull << 20;
    auto probe = runPolicyProber(f.drv, pp);

    // The ratio must collapse once the region spans >1 wear block.
    ASSERT_EQ(probe.tailRatioCurve.size(), 4u);
    double small = probe.tailRatioCurve[0].y;
    double big = probe.tailRatioCurve[3].y;
    EXPECT_GT(small, 0);
    EXPECT_LT(big, small * 0.35);
    EXPECT_GT(probe.wearBlockSize, 0u);
    EXPECT_LE(probe.wearBlockSize, 256u << 10);
}

TEST(LensRecovery, InterleaveGranularity)
{
    nvram::NvramConfig inter = nvram::NvramConfig::optaneDefault();
    inter.numDimms = 6;
    inter.interleaved = true;
    VansFixture fi(inter);

    nvram::NvramConfig single = nvram::NvramConfig::optaneDefault();
    VansFixture fs(single);

    PolicyProbe probe;
    runInterleaveProbe(fi.drv, fs.drv, probe, 16384);
    EXPECT_EQ(probe.interleaveGranularity, 4096u)
        << "4KB multi-DIMM interleaving (paper Fig 7a)";
}

TEST(LensRecovery, AlteredInterleaveGranularityDetected)
{
    nvram::NvramConfig inter = nvram::NvramConfig::optaneDefault();
    inter.numDimms = 6;
    inter.interleaved = true;
    inter.interleaveBytes = 8192;
    VansFixture fi(inter);

    nvram::NvramConfig single = nvram::NvramConfig::optaneDefault();
    VansFixture fs(single);

    PolicyProbe probe;
    runInterleaveProbe(fi.drv, fs.drv, probe, 32768);
    EXPECT_EQ(probe.interleaveGranularity, 8192u);
}

TEST(LensRecovery, PerfProberBandwidthOrdering)
{
    VansFixture f;
    BufferProbe buffers; // Level latencies not needed here.
    auto perf = runPerfProber(f.drv, buffers);
    // Sequential beats random for both directions; reads beat
    // writes; magnitudes in the real device's ballpark.
    EXPECT_GT(perf.seqReadGbps, perf.randReadGbps * 2);
    EXPECT_GT(perf.seqWriteGbps, perf.randWriteGbps);
    // Real single-DIMM, single-thread sequential reads land around
    // 2.4 GB/s (Izraelevitz et al.); interleaved 6-DIMM is higher.
    EXPECT_GT(perf.seqReadGbps, 2.0);
    EXPECT_LT(perf.seqReadGbps, 10.0);
    EXPECT_GT(perf.seqWriteGbps, 0.8);
    EXPECT_LT(perf.seqWriteGbps, 4.0);
}
