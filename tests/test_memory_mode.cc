/**
 * @file
 * Memory-mode (2LM) tests: the per-channel direct-mapped DRAM cache
 * in front of the NVM DIMM must account hits, misses and dirty
 * evictions exactly like a reference direct-mapped model; serve hits
 * at DRAM latency; keep persist-kind stores flowing through to the
 * DIMM; fork/restore bit-identically; and stay bit-identical between
 * serial and sharded execution at any thread count.
 */

#include <gtest/gtest.h>

#include <string>
#include <utility>
#include <vector>

#include "common/config.hh"
#include "common/metrics.hh"
#include "common/sharded_kernel.hh"
#include "common/snapshot.hh"
#include "lens/driver.hh"
#include "nvram/dram_cache.hh"
#include "nvram/vans_system.hh"
#include "tests/test_util.hh"

using namespace vans;
using vans::test::smallConfig;
using vans::test::VansFixture;

namespace
{

/** smallConfig switched to Memory mode with a tiny (64-set) cache so
 *  direct-mapped conflicts are cheap to provoke. */
nvram::NvramConfig
memoryConfig()
{
    nvram::NvramConfig cfg = smallConfig();
    cfg.mode = nvram::SystemMode::Memory;
    cfg.dcacheCapacity = 4096; // 64 sets.
    return cfg;
}

/** Synchronous plain (write-back kind) store: Driver::write issues
 *  ntstore, which writes through in Memory mode -- the write-back
 *  allocate path needs MemOp::Write. */
void
plainWriteInto(nvram::VansSystem &sys, Addr addr)
{
    RequestHandle h =
        sys.makeRequest(addr, MemOp::Write, cacheLineSize);
    bool done = false;
    sys.request(h).onComplete = [&done](Request &) { done = true; };
    sys.issue(h);
    while (!done)
        sys.step();
    sys.pool().release(h);
}

void
plainWrite(VansFixture &f, Addr addr)
{
    plainWriteInto(f.sys, addr);
}

/** Warm phase shared by the fork-fidelity pair. */
void
warmPhase(nvram::VansSystem &sys, lens::Driver &drv)
{
    for (unsigned i = 0; i < 16; ++i)
        plainWriteInto(sys, static_cast<Addr>(i) * 64);
    for (unsigned i = 0; i < 32; ++i)
        drv.read(static_cast<Addr>(i) * 64);
    drv.drain();
}

/** Continuation run after the fork point: conflict misses over the
 *  warmed sets plus fresh dirty traffic. */
void
pointPhase(nvram::VansSystem &sys, lens::Driver &drv)
{
    for (unsigned i = 0; i < 16; ++i)
        drv.read(static_cast<Addr>(i) * 64 + 4096);
    for (unsigned i = 0; i < 8; ++i)
        plainWriteInto(sys, static_cast<Addr>(i) * 64 + 8192);
    drv.write(12288);
    drv.clwb(12352);
    drv.fence();
    drv.drain();
}

std::string
metricsJson(nvram::VansSystem &sys)
{
    MetricsRegistry reg;
    sys.metricsInto(reg);
    return reg.toJson();
}

/**
 * Drop the event-kernel telemetry group from a metrics export: its
 * counters (slab growth, timer re-arms, peak pending) describe the
 * physical execution, not the model, and a restored world
 * legitimately re-executes them differently. Every model group must
 * still byte-compare.
 */
std::string
stripKernelGroup(const std::string &json)
{
    std::size_t name = json.find("\"name\": \"vans.kernel\"");
    if (name == std::string::npos)
        return json;
    std::size_t start = json.rfind("    {", name);
    std::size_t end = json.find("    },\n", name);
    if (start == std::string::npos || end == std::string::npos)
        return json;
    std::string out = json;
    out.erase(start, end + 7 - start);
    return out;
}

} // namespace

TEST(MemoryModeConfig, ModeKeyParsesAndValidates)
{
    setQuiet(true);
    Config raw = Config::fromString("[nvram]\n"
                                   "mode = memory\n"
                                   "dcache_capacity = 1M\n");
    nvram::NvramConfig cfg = nvram::NvramConfig::fromConfig(raw);
    EXPECT_TRUE(cfg.memoryMode());
    EXPECT_EQ(cfg.dcacheCapacity, 1ull << 20);

    Config app = Config::fromString("[nvram]\n");
    EXPECT_FALSE(nvram::NvramConfig::fromConfig(app).memoryMode());
}

TEST(MemoryModeConfig, MemoryModeDisablesPersistSupport)
{
    setQuiet(true);
    VansFixture mem(memoryConfig());
    EXPECT_FALSE(mem.sys.persistSupported());
    VansFixture app(smallConfig());
    EXPECT_TRUE(app.sys.persistSupported());
}

TEST(MemoryMode, DirectedAccountingMatchesReferenceModel)
{
    setQuiet(true);
    VansFixture f(memoryConfig());
    nvram::DramCache *dc = f.sys.imc().dramCache(0);
    ASSERT_NE(dc, nullptr);
    const std::uint64_t sets = dc->sets();
    ASSERT_EQ(sets, 64u);

    // Reference direct-mapped model, advanced in lockstep with the
    // simulated ops (each op runs to quiescence, so order is exact).
    std::vector<Addr> refTag(sets, ~0ull);
    std::vector<bool> refValid(sets, false);
    std::vector<bool> refDirty(sets, false);
    std::uint64_t refHits = 0, refMisses = 0, refDirtyEvicts = 0;
    std::uint64_t refWbHits = 0, refWbMisses = 0;

    auto setOf = [&](Addr line) { return (line / 64) % sets; };
    auto refInstall = [&](Addr line, bool dirty) {
        std::uint64_t s = setOf(line);
        if (refValid[s] && refDirty[s] && refTag[s] != line)
            ++refDirtyEvicts;
        refTag[s] = line;
        refValid[s] = true;
        refDirty[s] = dirty;
    };
    auto refRead = [&](Addr line) {
        std::uint64_t s = setOf(line);
        if (refValid[s] && refTag[s] == line) {
            ++refHits;
        } else {
            ++refMisses;
            refInstall(line, false);
        }
    };
    auto refWrite = [&](Addr line) {
        std::uint64_t s = setOf(line);
        if (refValid[s] && refTag[s] == line) {
            ++refWbHits;
            refDirty[s] = true;
        } else {
            ++refWbMisses;
            refInstall(line, true);
        }
    };

    // Deterministic directed mix: writes dirty lines, reads provoke
    // conflict fills over the 64-set cache (stride 4096 aliases).
    for (unsigned i = 0; i < 24; ++i) {
        Addr a = static_cast<Addr>(i) * 64;
        plainWrite(f, a);
        f.drv.drain(); // WPQ must reach the cache before the model.
        refWrite(a);
    }
    for (unsigned i = 0; i < 24; ++i) {
        Addr a = static_cast<Addr>(i) * 64;
        f.drv.read(a); // Hits: the writes above installed them.
        refRead(a);
    }
    for (unsigned i = 0; i < 24; ++i) {
        // Same sets, different tags: misses that evict dirty lines.
        Addr a = static_cast<Addr>(i) * 64 + 4096;
        f.drv.read(a);
        refRead(a);
    }
    for (unsigned i = 0; i < 8; ++i) {
        // Re-dirty some sets, then alias over them again.
        Addr a = static_cast<Addr>(i) * 64 + 8192;
        plainWrite(f, a);
        f.drv.drain();
        refWrite(a);
        Addr b = static_cast<Addr>(i) * 64;
        f.drv.read(b);
        refRead(b);
    }
    f.drv.drain();

    StatGroup &st = dc->stats();
    EXPECT_EQ(st.scalarValue("hits"), refHits);
    EXPECT_EQ(st.scalarValue("misses"), refMisses);
    EXPECT_EQ(st.scalarValue("dirty_evicts"), refDirtyEvicts);
    EXPECT_EQ(st.scalarValue("wb_write_hits"), refWbHits);
    EXPECT_EQ(st.scalarValue("wb_write_misses"), refWbMisses);
    // Every NVM line write is a dirty evict (no write-throughs were
    // issued in this directed mix).
    EXPECT_EQ(st.scalarValue("nvm_line_writes"), refDirtyEvicts);
    EXPECT_EQ(f.sys.dcacheScalarSum("hits"), refHits);

    // Tag probes agree with the reference model.
    for (std::uint64_t s = 0; s < sets; ++s) {
        if (!refValid[s])
            continue;
        EXPECT_TRUE(dc->contains(refTag[s])) << "set " << s;
        EXPECT_EQ(dc->isDirty(refTag[s]), refDirty[s]) << "set " << s;
    }
}

TEST(MemoryMode, HitsCompleteFasterThanMisses)
{
    setQuiet(true);
    VansFixture f(memoryConfig());
    Tick miss = f.drv.read(0); // Cold: NVM fetch + fill.
    Tick hit = f.drv.read(0);  // Resident: one DDR4 access.
    EXPECT_LT(hit, miss);

    // A Memory-mode hit also beats the App Direct read path (the
    // whole point of the near-memory cache).
    VansFixture app(smallConfig());
    app.drv.read(0);
    Tick direct = app.drv.read(0);
    EXPECT_LT(hit, direct);
}

TEST(MemoryMode, PersistOpsWriteThroughToTheDimm)
{
    setQuiet(true);
    VansFixture f(memoryConfig());
    nvram::DramCache *dc = f.sys.imc().dramCache(0);
    ASSERT_NE(dc, nullptr);

    // ntstore + clwb keep their durability path: each forwards one
    // line to the NVM DIMM even though the cache is in front.
    f.drv.write(0); // Driver::write is ntstore.
    f.drv.write(64);
    f.drv.clwb(128);
    f.drv.fence(); // Must drain the write-throughs to media.
    f.drv.drain();

    StatGroup &st = dc->stats();
    EXPECT_EQ(st.scalarValue("writethroughs"), 3u);
    EXPECT_EQ(st.scalarValue("invalidates"), 0u);
    EXPECT_GE(f.sys.totalMediaWrites(), 1u);

    // clflushopt additionally drops the cached copy.
    f.drv.read(4096); // Install a clean resident line.
    ASSERT_TRUE(dc->contains(4096));
    f.drv.clflushopt(4096);
    f.drv.drain();
    EXPECT_EQ(st.scalarValue("writethroughs"), 4u);
    EXPECT_EQ(st.scalarValue("invalidates"), 1u);
    EXPECT_FALSE(dc->contains(4096));

    // A plain store does NOT write through: it goes dirty in cache.
    std::uint64_t nvmBefore = st.scalarValue("nvm_line_writes");
    plainWrite(f, 8192);
    f.drv.drain();
    EXPECT_EQ(st.scalarValue("nvm_line_writes"), nvmBefore);
    EXPECT_TRUE(dc->isDirty(8192));
}

TEST(MemoryMode, SnapshotRoundTripPreservesTagsAndDirtyBits)
{
    setQuiet(true);
    nvram::NvramConfig cfg = memoryConfig();
    EventQueue eq_a;
    nvram::VansSystem a(eq_a, cfg, "vans");
    lens::Driver drv_a(a);
    setQuiet(true);

    for (unsigned i = 0; i < 8; ++i)
        plainWriteInto(a, static_cast<Addr>(i) * 64);
    for (unsigned i = 8; i < 16; ++i)
        drv_a.read(static_cast<Addr>(i) * 64);
    drv_a.drain();

    auto snap = snapshot::WorldSnapshot::capture(eq_a, a);
    EventQueue eq_b;
    nvram::VansSystem b(eq_b, cfg, "vans");
    snap.restoreInto(eq_b, b);

    nvram::DramCache *da = a.imc().dramCache(0);
    nvram::DramCache *db = b.imc().dramCache(0);
    ASSERT_NE(da, nullptr);
    ASSERT_NE(db, nullptr);
    for (unsigned i = 0; i < 16; ++i) {
        Addr line = static_cast<Addr>(i) * 64;
        EXPECT_EQ(db->contains(line), da->contains(line)) << line;
        EXPECT_EQ(db->isDirty(line), da->isDirty(line)) << line;
        EXPECT_EQ(da->isDirty(line), i < 8) << line;
    }
    EXPECT_TRUE(db->stats().identicalTo(da->stats()));
}

TEST(MemoryMode, ForkedWorldContinuesBitIdentically)
{
    setQuiet(true);
    nvram::NvramConfig cfg = memoryConfig();

    // Reference: one cold world runs warm + point back to back.
    EventQueue ref_eq;
    nvram::VansSystem ref(ref_eq, cfg, "vans");
    lens::Driver ref_drv(ref);
    warmPhase(ref, ref_drv);
    pointPhase(ref, ref_drv);

    // Fork: a second cold world is captured warm, restored into a
    // fresh world, and only the fresh world runs the point phase.
    EventQueue proto_eq;
    nvram::VansSystem proto(proto_eq, cfg, "vans");
    lens::Driver proto_drv(proto);
    warmPhase(proto, proto_drv);
    auto snap = snapshot::WorldSnapshot::capture(proto_eq, proto);

    EventQueue fork_eq;
    nvram::VansSystem fork(fork_eq, cfg, "vans");
    lens::Driver fork_drv(fork);
    snap.restoreInto(fork_eq, fork);
    pointPhase(fork, fork_drv);

    EXPECT_EQ(fork_eq.curTick(), ref_eq.curTick());
    std::string fj = stripKernelGroup(metricsJson(fork));
    std::string rj = stripKernelGroup(metricsJson(ref));
    EXPECT_NE(fj, metricsJson(fork)) << "strip must find the group";
    EXPECT_EQ(fj, rj);
}

namespace
{

/** Six-channel memory-mode traffic touching every interleave with
 *  conflict misses, dirty evicts and persist ops. */
void
shardWorkload(lens::Driver &drv)
{
    std::vector<Addr> addrs;
    for (unsigned i = 0; i < 96; ++i)
        addrs.push_back(static_cast<Addr>(i) * 4096 + (i % 4) * 64);
    drv.streamWrites(addrs, 16);
    drv.streamReads(addrs, 8);
    for (unsigned i = 0; i < 96; ++i)
        drv.read(addrs[i] + 256 * 1024); // Aliasing second pass.
    for (unsigned i = 0; i < 12; ++i)
        drv.clwb(static_cast<Addr>(i) * 8192);
    drv.fence();
}

} // namespace

TEST(MemoryModeSharded, BitIdenticalAcrossThreadCounts)
{
    setQuiet(true);
    nvram::NvramConfig cfg = memoryConfig();
    cfg.numDimms = 6;
    cfg.interleaved = true;
    cfg.trace = true; // Exercise per-shard recorders + merge.

    auto run = [&cfg](unsigned threads) {
        ShardedKernel kern(cfg.numDimms, nsToTicks(cfg.coreToImcNs),
                           threads);
        nvram::VansSystem sys(kern, cfg, "vans");
        lens::Driver drv(sys);
        setQuiet(true);
        shardWorkload(drv);
        snapshot::awaitQuiescence(kern.core(), sys);
        MetricsRegistry reg;
        sys.metricsInto(reg);
        return std::make_pair(reg.toJson(), sys.traceJson());
    };

    auto r1 = run(1);
    auto r2 = run(2);
    auto r8 = run(8);
    EXPECT_EQ(r1.first, r2.first);
    EXPECT_EQ(r1.first, r8.first);
    EXPECT_EQ(r1.second, r2.second);
    EXPECT_EQ(r1.second, r8.second);
    // The workload actually exercised the caches: misses and dirty
    // evicts must be present in the byte-compared metrics.
    EXPECT_NE(r1.first.find("dirty_evicts"), std::string::npos);
}

TEST(MemoryModeSharded, SerialAndShardedAgree)
{
    setQuiet(true);
    nvram::NvramConfig cfg = memoryConfig();
    cfg.numDimms = 6;
    cfg.interleaved = true;

    EventQueue eq;
    nvram::VansSystem serial(eq, cfg, "vans");
    lens::Driver sdrv(serial);
    shardWorkload(sdrv);
    sdrv.drain();

    ShardedKernel kern(cfg.numDimms, nsToTicks(cfg.coreToImcNs), 2);
    nvram::VansSystem sharded(kern, cfg, "vans");
    lens::Driver pdrv(sharded);
    shardWorkload(pdrv);
    snapshot::awaitQuiescence(kern.core(), sharded);

    EXPECT_EQ(serial.dcacheScalarSum("hits"),
              sharded.dcacheScalarSum("hits"));
    EXPECT_EQ(serial.dcacheScalarSum("misses"),
              sharded.dcacheScalarSum("misses"));
    EXPECT_EQ(serial.dcacheScalarSum("dirty_evicts"),
              sharded.dcacheScalarSum("dirty_evicts"));
    EXPECT_EQ(serial.dcacheScalarSum("nvm_line_writes"),
              sharded.dcacheScalarSum("nvm_line_writes"));
}
