/**
 * @file
 * Unit tests for the VANS NVRAM pipeline: media, wear leveler, AIT,
 * RMW buffer, LSQ, iMC and the assembled system.
 */

#include <gtest/gtest.h>

#include "nvram/ait.hh"
#include "nvram/media.hh"
#include "nvram/wear_leveler.hh"
#include "tests/test_util.hh"

using namespace vans;
using namespace vans::nvram;
using vans::test::VansFixture;

// ---- Media ---------------------------------------------------------

TEST(Media, ReadFasterThanWrite)
{
    EventQueue eq;
    NvramConfig cfg;
    XPointMedia media(eq, cfg);
    Tick rd = 0, wr = 0;
    media.readChunk(0, [&](Tick t) { rd = t; });
    media.writeChunk(cfg.mediaChunkBytes, [&](Tick t) { wr = t; });
    eq.run();
    EXPECT_NEAR(static_cast<double>(rd), cfg.mediaReadNs * 1000, 1);
    EXPECT_NEAR(static_cast<double>(wr), cfg.mediaWriteNs * 1000, 1);
    EXPECT_LT(rd, wr);
}

TEST(Media, SamePartitionSerializes)
{
    EventQueue eq;
    NvramConfig cfg;
    XPointMedia media(eq, cfg);
    Tick first = 0, second = 0;
    media.readChunk(0, [&](Tick t) { first = t; });
    media.readChunk(0, [&](Tick t) { second = t; });
    eq.run();
    EXPECT_NEAR(static_cast<double>(second - first),
                cfg.mediaReadNs * 1000, 1);
}

TEST(Media, DifferentPartitionsOverlap)
{
    EventQueue eq;
    NvramConfig cfg;
    XPointMedia media(eq, cfg);
    Tick a = 0, b = 0;
    media.readChunk(0, [&](Tick t) { a = t; });
    media.readChunk(cfg.mediaChunkBytes, [&](Tick t) { b = t; });
    eq.run();
    EXPECT_EQ(a, b); // Parallel partitions.
}

TEST(Media, DemandOutranksBackgroundFill)
{
    EventQueue eq;
    NvramConfig cfg;
    XPointMedia media(eq, cfg);
    Tick fill1 = 0, fill2 = 0, demand = 0;
    // One fill in service, one queued, then a demand read arrives:
    // it must jump the queued fill.
    media.readChunkBackground(0, [&](Tick t) { fill1 = t; });
    media.readChunkBackground(0, [&](Tick t) { fill2 = t; });
    media.readChunk(0, [&](Tick t) { demand = t; });
    eq.run();
    EXPECT_LT(demand, fill2);
    EXPECT_GT(demand, fill1);
}

TEST(Media, WriteBackpressureSignalled)
{
    EventQueue eq;
    NvramConfig cfg;
    XPointMedia media(eq, cfg);
    // Fill the write queue of partition 0 beyond its depth.
    for (int i = 0; i < 5; ++i)
        media.writeChunk(0, nullptr);
    EXPECT_FALSE(media.canAccept(0));
    // Another partition is unaffected.
    EXPECT_TRUE(media.canAccept(cfg.mediaChunkBytes));
    eq.run();
    EXPECT_TRUE(media.canAccept(0));
}

// ---- Wear leveler ---------------------------------------------------

TEST(Wear, MigrationAfterThreshold)
{
    EventQueue eq;
    NvramConfig cfg;
    cfg.wearThreshold = 100;
    WearLeveler wear(eq, cfg);
    for (int i = 0; i < 99; ++i)
        wear.onMediaWrite(0);
    EXPECT_EQ(wear.migrations(), 0u);
    wear.onMediaWrite(0);
    EXPECT_EQ(wear.migrations(), 1u);
    EXPECT_GT(wear.blockedUntil(0), eq.curTick());
    // The counter reset: another 100 writes for the next one.
    EXPECT_EQ(wear.blockWear(0), 0u);
}

TEST(Wear, BlockingIsPerBlock)
{
    EventQueue eq;
    NvramConfig cfg;
    cfg.wearThreshold = 10;
    WearLeveler wear(eq, cfg);
    for (int i = 0; i < 10; ++i)
        wear.onMediaWrite(0);
    EXPECT_GT(wear.blockedUntil(0), 0u);
    // A different 64KB block is not blocked.
    EXPECT_EQ(wear.blockedUntil(cfg.wearBlockBytes), 0u);
}

TEST(Wear, MigrationCompletes)
{
    EventQueue eq;
    NvramConfig cfg;
    cfg.wearThreshold = 10;
    cfg.migrationUs = 5;
    WearLeveler wear(eq, cfg);
    for (int i = 0; i < 10; ++i)
        wear.onMediaWrite(0);
    Tick end = wear.blockedUntil(0);
    EXPECT_NEAR(static_cast<double>(end), 5000 * 1000, 1);
    eq.run();
    EXPECT_EQ(wear.blockedUntil(0), 0u);
}

TEST(Wear, MigrationHookFires)
{
    EventQueue eq;
    NvramConfig cfg;
    cfg.wearThreshold = 4;
    WearLeveler wear(eq, cfg);
    Addr got_block = 1;
    std::uint64_t got_wear = 0;
    wear.onMigration = [&](Addr b, std::uint64_t w) {
        got_block = b;
        got_wear = w;
    };
    for (int i = 0; i < 4; ++i)
        wear.onMediaWrite(cfg.wearBlockBytes * 3 + 128);
    EXPECT_EQ(got_block, cfg.wearBlockBytes * 3);
    EXPECT_EQ(got_wear, 4u);
}

// ---- AIT ------------------------------------------------------------

TEST(Ait, MissSlowerThanHit)
{
    EventQueue eq;
    NvramConfig cfg;
    Ait ait(eq, cfg, "ait");
    Tick miss = 0, hit = 0;
    ait.read(4096, [&](Tick t) { miss = t; });
    while (miss == 0 && eq.step()) {
    }
    Tick t0 = eq.curTick();
    ait.read(4096, [&](Tick t) { hit = t; });
    while (hit == 0 && eq.step()) {
    }
    EXPECT_LT(hit - t0, miss);
    EXPECT_EQ(ait.stats().scalarValue("buf_misses"), 1u);
    EXPECT_EQ(ait.stats().scalarValue("buf_hits"), 1u);
}

TEST(Ait, MissFillsWholePageFromMedia)
{
    EventQueue eq;
    NvramConfig cfg;
    Ait ait(eq, cfg, "ait");
    bool done = false;
    ait.read(0, [&](Tick) { done = true; });
    while (eq.pending() > 0 && eq.curTick() < nsToTicks(100000))
        eq.step();
    EXPECT_TRUE(done);
    // 4KB line = 16 chunks of 256B fetched.
    EXPECT_EQ(ait.mediaDev().stats().scalarValue("chunk_reads"),
              cfg.aitLineBytes / cfg.mediaChunkBytes);
}

TEST(Ait, ReadForFillDoesNotAllocate)
{
    EventQueue eq;
    NvramConfig cfg;
    Ait ait(eq, cfg, "ait");
    bool done = false;
    ait.readForFill(0, [&](Tick) { done = true; });
    while (!done && eq.step()) {
    }
    // Only the single chunk was read, and a subsequent read still
    // misses (no allocation happened).
    EXPECT_EQ(ait.mediaDev().stats().scalarValue("chunk_reads"), 1u);
    bool done2 = false;
    ait.read(0, [&](Tick) { done2 = true; });
    while (!done2 && eq.step()) {
    }
    EXPECT_EQ(ait.stats().scalarValue("buf_misses"), 2u);
}

TEST(Ait, WritesAreWriteThrough)
{
    EventQueue eq;
    NvramConfig cfg;
    Ait ait(eq, cfg, "ait");
    for (int i = 0; i < 3; ++i) {
        bool done = false;
        ASSERT_TRUE(ait.canAcceptWrite());
        ait.acceptWrite(static_cast<Addr>(i) * 256,
                        [&](Tick) { done = true; });
        while (!done && eq.step()) {
        }
    }
    EXPECT_EQ(ait.mediaDev().stats().scalarValue("chunk_writes"), 3u);
    EXPECT_EQ(ait.wearLeveler().stats().scalarValue("media_writes"),
              3u);
}

TEST(Ait, WriteIntakeBackpressure)
{
    EventQueue eq;
    NvramConfig cfg;
    Ait ait(eq, cfg, "ait");
    // Saturate one partition's write path; intake must fill.
    int accepted = 0;
    while (ait.canAcceptWrite() && accepted < 64) {
        ait.acceptWrite(0, nullptr);
        ++accepted;
    }
    EXPECT_LT(accepted, 64);
    eq.runUntil(eq.curTick() + nsToTicks(200000));
    EXPECT_TRUE(ait.canAcceptWrite());
    EXPECT_TRUE(ait.writeQuiescent());
}

TEST(Ait, MigrationStallsWrites)
{
    EventQueue eq;
    NvramConfig cfg;
    cfg.wearThreshold = 8;
    cfg.migrationUs = 30;
    Ait ait(eq, cfg, "ait");
    // Trigger a migration on block 0.
    Tick last_write = 0;
    for (int i = 0; i < 9; ++i) {
        bool done = false;
        while (!ait.canAcceptWrite()) {
            if (!eq.step())
                break;
        }
        ait.acceptWrite(0, [&](Tick t) {
            done = true;
            last_write = t;
        });
        while (!done && eq.step()) {
        }
    }
    EXPECT_EQ(ait.wearLeveler().migrations(), 1u);
    // The 9th write (first after migration start) stalled ~30us.
    EXPECT_GT(last_write, nsToTicks(30000));
    EXPECT_GE(ait.stats().scalarValue("migration_stalls"), 1u);
}

// ---- RMW buffer / LSQ through the DIMM -------------------------------

TEST(Rmw, SubLineWriteTriggersFill)
{
    VansFixture f;
    f.drv.write(0); // 64B < 256B entry.
    f.drv.fence();
    EXPECT_EQ(f.sys.totalRmwFills(), 1u);
}

TEST(Rmw, CombinedFullLineWriteSkipsFill)
{
    VansFixture f;
    // All four lines of one 256B block: LSQ combines, no RMW fill.
    for (Addr a = 0; a < 256; a += 64)
        f.drv.write(a);
    f.drv.fence();
    EXPECT_EQ(f.sys.totalRmwFills(), 0u);
}

TEST(Rmw, ReadCachesLine)
{
    VansFixture f;
    Tick cold = f.drv.read(0);
    Tick warm = f.drv.read(0);
    EXPECT_LT(warm, cold);
    auto &rmw = f.sys.dimm(0).rmw();
    EXPECT_EQ(rmw.stats().scalarValue("read_hits"), 1u);
}

TEST(Rmw, ReadOfNeighborLineHitsAfterFill)
{
    VansFixture f;
    f.drv.read(0);
    // 64..255 are in the same 256B line: hits.
    Tick t = f.drv.read(128);
    EXPECT_LT(t, nsToTicks(250));
    EXPECT_EQ(f.sys.dimm(0).rmw().stats().scalarValue("read_hits"),
              1u);
}

TEST(Lsq, SealOnFenceDrainsPartialBlocks)
{
    VansFixture f;
    f.drv.write(0); // One 64B line: partial block.
    auto &lsq = f.sys.dimm(0).lsq();
    EXPECT_EQ(lsq.stats().scalarValue("partial_drains"), 0u);
    f.drv.fence();
    EXPECT_GE(lsq.stats().scalarValue("partial_drains"), 1u);
    EXPECT_TRUE(lsq.writeQuiescent());
}

TEST(Lsq, CombinesWithoutFence)
{
    VansFixture f;
    for (Addr a = 0; a < 256; a += 64)
        f.drv.write(a);
    // Allow drains to complete.
    f.drv.idle(nsToTicks(5000));
    auto &lsq = f.sys.dimm(0).lsq();
    EXPECT_GE(lsq.stats().scalarValue("combined_drains"), 1u);
    EXPECT_EQ(lsq.stats().scalarValue("partial_drains"), 0u);
}

TEST(Lsq, ReadAfterWriteHazardDetected)
{
    VansFixture f;
    // Warm reference: an RMW-cached read of another line.
    f.drv.read(1 << 16);
    Tick warm = f.drv.read(1 << 16);
    f.drv.write(64);
    // Immediately read the written line: it is still in WPQ or LSQ.
    Tick raw_lat = f.drv.read(64);
    // The hazard path is slower than a warm cached read.
    EXPECT_GT(raw_lat, warm);
    auto hazards =
        f.sys.dimm(0).lsq().stats().scalarValue("raw_hazards") +
        f.sys.imc().channelScalarSum("wpq_read_hazards");
    EXPECT_GE(hazards, 1u);
}

// ---- iMC -------------------------------------------------------------

TEST(Imc, WpqMergeIsFast)
{
    VansFixture f;
    // Back-to-back stores to one line outpace the WPQ drain and
    // merge in place.
    std::vector<Addr> addrs(32, 0);
    f.drv.streamWrites(addrs, 16);
    EXPECT_GE(f.sys.imc().channelScalarSum("wpq_merges"), 1u);
}

TEST(Imc, FenceWaitsForFullDrain)
{
    VansFixture f;
    for (int i = 0; i < 16; ++i)
        f.drv.write(static_cast<Addr>(i) * 64);
    Tick fence_lat = f.drv.fence();
    EXPECT_GT(fence_lat, 0u);
    // After the fence the whole write path is quiet.
    EXPECT_TRUE(f.sys.dimm(0).writeQuiescent());
    EXPECT_GE(f.sys.totalMediaWrites(), 4u);
}

TEST(Imc, InterleavingRoutesBy4K)
{
    nvram::NvramConfig cfg;
    cfg.numDimms = 4;
    cfg.interleaved = true;
    VansFixture f(cfg);
    auto &imc = f.sys.imc();
    EXPECT_EQ(imc.dimmOf(0), 0u);
    EXPECT_EQ(imc.dimmOf(4095), 0u);
    EXPECT_EQ(imc.dimmOf(4096), 1u);
    EXPECT_EQ(imc.dimmOf(4096 * 4), 0u);
    EXPECT_EQ(imc.dimmOf(4096 * 5 + 64), 1u);
}

TEST(Imc, NonInterleavedUsesCapacityRouting)
{
    nvram::NvramConfig cfg;
    cfg.numDimms = 2;
    cfg.interleaved = false;
    VansFixture f(cfg);
    auto &imc = f.sys.imc();
    EXPECT_EQ(imc.dimmOf(0), 0u);
    EXPECT_EQ(imc.dimmOf(cfg.dimmCapacity), 1u);
}

TEST(Imc, WpqHazardBurstReleasedByOneDrain)
{
    VansFixture f;
    auto &imc = f.sys.imc();
    // Two rounds on the same channel: the drain that retires a WPQ
    // line must release every read parked behind it, and the second
    // round reuses the channel's hazard staging buffer.
    constexpr unsigned kReaders = 4;
    unsigned completed = 0;
    for (unsigned round = 0; round < 2; ++round) {
        Addr line = static_cast<Addr>(round) * 64;
        RequestPool &pool = f.sys.pool();
        auto w = f.sys.makeRequest(line, MemOp::WriteNT);
        f.sys.request(w).onComplete =
            [&completed, &pool, w](Request &) {
                ++completed;
                pool.release(w);
            };
        f.sys.issue(w);
        // Issued the same tick as the write, the reads' arrival
        // events run after the write's (seq-FIFO), so each sees the
        // line held in the WPQ and parks on it.
        for (unsigned i = 0; i < kReaders; ++i) {
            auto r = f.sys.makeRequest(line, MemOp::ReadNT);
            f.sys.request(r).onComplete =
                [&completed, &pool, r](Request &) {
                    ++completed;
                    pool.release(r);
                };
            f.sys.issue(r);
        }
        // Step, don't run(): the AIT buffer's refresh timer keeps
        // the queue populated forever.
        unsigned want = (round + 1) * (kReaders + 1);
        while (completed < want && f.eq.step()) {
        }
        ASSERT_EQ(completed, want);
    }
    EXPECT_EQ(completed, 2 * (kReaders + 1));
    EXPECT_EQ(imc.channelScalarSum("wpq_read_hazards"),
              2 * kReaders);
    // A fence drains the write path; after idling out background
    // fills, nothing may be left parked on a hazard.
    f.drv.fence();
    f.drv.idle(nsToTicks(5000));
    EXPECT_TRUE(imc.quiescent());
}

TEST(Imc, BusTurnaroundsCounted)
{
    VansFixture f;
    f.drv.write(0);
    f.drv.read(4096);
    f.drv.write(8192);
    f.drv.fence();
    EXPECT_GE(f.sys.imc().channelScalarSum("bus_turnarounds"), 1u);
}

// ---- System-level latency ordering -----------------------------------

TEST(Vans, LatencyOrderingAcrossLevels)
{
    VansFixture f;
    // Cold read: media path.
    Tick media_lat = f.drv.read(1 << 20);
    // Warm RMW hit.
    Tick rmw_lat = f.drv.read(1 << 20);
    // Evict from RMW but stay in AIT buffer: read many other lines.
    for (int i = 0; i < 128; ++i)
        f.drv.read((2ull << 20) + static_cast<Addr>(i) * 4096);
    Tick ait_lat = f.drv.read((1 << 20) + 256);
    EXPECT_LT(rmw_lat, ait_lat);
    EXPECT_LT(ait_lat, media_lat);
}

TEST(Vans, CapacityReflectsConfig)
{
    nvram::NvramConfig cfg;
    cfg.numDimms = 6;
    VansFixture f(cfg);
    EXPECT_EQ(f.sys.capacity(), 6 * cfg.dimmCapacity);
    EXPECT_EQ(f.sys.name(), "vans");
}

TEST(Vans, WriteLatencyWpqVsDrainRegimes)
{
    VansFixture f;
    // Within one 512B region: merges dominate -> cheap stores.
    std::vector<Addr> small;
    for (int i = 0; i < 512; ++i)
        small.push_back((static_cast<Addr>(i) % 8) * 64);
    Tick t_small = f.drv.streamWrites(small, 16);
    f.drv.fence();
    // Spread over 64KB: WPQ misses + RMW fills -> much slower.
    std::vector<Addr> big;
    for (int i = 0; i < 512; ++i)
        big.push_back((static_cast<Addr>(i) * 131) % 1024 * 64);
    Tick t_big = f.drv.streamWrites(big, 16);
    f.drv.fence();
    EXPECT_GT(t_big, t_small * 2);
}
