/**
 * @file
 * Tests for the observability layer (common/trace_event.hh,
 * common/metrics.hh): request lifecycle hop recording mirrors the
 * lifecycle checker's stage order, the Chrome trace-event exporter
 * emits well-formed JSON, the metrics registry reports exactly the
 * values StatGroup holds, and a world restored from a snapshot
 * records the same trace as the cold world it forked from.
 */

#include <gtest/gtest.h>

#include <cctype>
#include <cmath>
#include <cstddef>
#include <memory>
#include <sstream>
#include <string>
#include <vector>

#include "common/metrics.hh"
#include "common/rng.hh"
#include "common/snapshot.hh"
#include "common/stats.hh"
#include "common/trace_event.hh"
#include "lens/driver.hh"
#include "nvram/vans_system.hh"
#include "tests/test_util.hh"

using namespace vans;

namespace
{

/** smallConfig with the trace recorder switched on. */
nvram::NvramConfig
tracedConfig()
{
    auto cfg = vans::test::smallConfig();
    cfg.trace = true;
    return cfg;
}

/**
 * Issue one op and run the queue until it completes. Returns the
 * still-held handle so the test can inspect the retired request
 * (the pool slot is not recycled until the handle is released, and
 * these short-lived worlds never need the slot back).
 */
RequestHandle
issueAndRun(EventQueue &eq, MemorySystem &sys, Addr addr, MemOp op)
{
    RequestHandle h = sys.makeRequest(addr, op);
    bool done = false;
    sys.request(h).onComplete = [&done](Request &) { done = true; };
    sys.issue(h);
    while (!done) {
        if (!eq.step()) {
            ADD_FAILURE() << "queue drained before completion";
            break;
        }
    }
    return h;
}

} // namespace

// ---- Disabled path --------------------------------------------------

TEST(Tracing, DisabledByDefault)
{
    vans::test::VansFixture f(vans::test::smallConfig());
    EXPECT_EQ(f.sys.tracer(), nullptr);
    auto h = issueAndRun(f.eq, f.sys, 0x1000, MemOp::ReadNT);
    // The untraced path must not attach hop state to the request.
    EXPECT_EQ(f.sys.request(h).trace, nullptr);
}

// ---- Lifecycle hops -------------------------------------------------

TEST(Tracing, HopsFollowLifecycleStageOrder)
{
    vans::test::VansFixture f(tracedConfig());
    ASSERT_NE(f.sys.tracer(), nullptr);

    for (MemOp op : {MemOp::ReadNT, MemOp::WriteNT}) {
        auto h = issueAndRun(f.eq, f.sys, 0x4040, op);
        Request &req = f.sys.request(h);
        ASSERT_NE(req.trace, nullptr) << memOpName(op);
        const auto &hops = req.trace->hops;
        // Exactly the checker's stage walk, in its only legal order.
        ASSERT_EQ(hops.size(), 4u) << memOpName(op);
        EXPECT_EQ(hops[0].stage, verify::ReqStage::Issued);
        EXPECT_EQ(hops[1].stage, verify::ReqStage::Queued);
        EXPECT_EQ(hops[2].stage, verify::ReqStage::Serviced);
        EXPECT_EQ(hops[3].stage, verify::ReqStage::Retired);
        for (std::size_t i = 0; i < hops.size(); ++i) {
            EXPECT_LE(hops[i].enter, hops[i].exit) << memOpName(op);
            if (i > 0) {
                EXPECT_EQ(hops[i - 1].exit, hops[i].enter)
                    << memOpName(op);
            }
        }
        EXPECT_EQ(hops.front().enter, req.issueTick);
        EXPECT_EQ(hops.back().exit, req.completeTick);
    }
}

TEST(Tracing, RetiredRequestsEmitAsyncSlicePairs)
{
    vans::test::VansFixture f(tracedConfig());
    auto *rec = f.sys.tracer();
    ASSERT_NE(rec, nullptr);
    rec->clear();

    auto h = issueAndRun(f.eq, f.sys, 0x8080, MemOp::ReadNT);
    Request &req = f.sys.request(h);

    std::size_t begins = 0;
    std::size_t ends = 0;
    for (const auto &e : rec->events()) {
        if (e.kind == obs::TraceEvent::Kind::AsyncBegin) {
            ++begins;
            EXPECT_EQ(e.id, req.id);
        }
        if (e.kind == obs::TraceEvent::Kind::AsyncEnd)
            ++ends;
    }
    // One begin/end pair per hop.
    EXPECT_EQ(begins, req.trace->hops.size());
    EXPECT_EQ(ends, begins);
}

// ---- Exporter JSON --------------------------------------------------

namespace
{

/**
 * Minimal JSON well-formedness scan: every brace/bracket balances,
 * with string literals (and escapes within them) skipped. Not a full
 * parser, but catches the realistic exporter bugs -- an unclosed
 * object, a quote broken by an unescaped name.
 */
bool
jsonBalanced(const std::string &s)
{
    std::vector<char> stack;
    bool in_str = false;
    for (std::size_t i = 0; i < s.size(); ++i) {
        char c = s[i];
        if (in_str) {
            if (c == '\\')
                ++i;
            else if (c == '"')
                in_str = false;
            continue;
        }
        switch (c) {
          case '"':
            in_str = true;
            break;
          case '{':
          case '[':
            stack.push_back(c);
            break;
          case '}':
            if (stack.empty() || stack.back() != '{')
                return false;
            stack.pop_back();
            break;
          case ']':
            if (stack.empty() || stack.back() != '[')
                return false;
            stack.pop_back();
            break;
          default:
            break;
        }
    }
    return !in_str && stack.empty();
}

} // namespace

TEST(Tracing, ExporterEmitsBalancedJsonWithComponentTracks)
{
    vans::test::VansFixture f(tracedConfig());
    auto *rec = f.sys.tracer();
    ASSERT_NE(rec, nullptr);

    Rng rng(11);
    for (int n = 0; n < 40; ++n) {
        Addr a = rng.below(1u << 20) & ~static_cast<Addr>(63);
        if (rng.below(2))
            f.drv.write(a);
        else
            f.drv.read(a);
    }
    f.drv.fence();

    std::string json = rec->toChromeJson();
    EXPECT_TRUE(jsonBalanced(json)) << json.substr(0, 400);
    EXPECT_NE(json.find("\"traceEvents\""), std::string::npos);

    // Every interned component instance shows up as a named track.
    ASSERT_GT(rec->numTracks(), 0u);
    bool saw_lsq = false;
    bool saw_media = false;
    for (std::size_t t = 0; t < rec->numTracks(); ++t) {
        const std::string &name = rec->trackName(
            static_cast<obs::TrackId>(t));
        EXPECT_NE(json.find("\"name\":\"" + name + "\""),
                  std::string::npos)
            << "track " << name << " missing from metadata";
        if (name.find(".lsq") != std::string::npos)
            saw_lsq = true;
        if (name.find(".media") != std::string::npos)
            saw_media = true;
    }
    EXPECT_TRUE(saw_lsq);
    EXPECT_TRUE(saw_media);

    // The driver's op spans made it out as complete slices.
    EXPECT_NE(json.find("\"ph\":\"X\",\"name\":\"op_rd\""),
              std::string::npos);
}

TEST(Tracing, ExportedTimestampsAreMicrosecondTicks)
{
    obs::TraceRecorder rec;
    auto t = rec.track("unit");
    auto l = rec.label("one_op");
    // 1234567 ps = 1.234567 us: the exporter must not round this.
    rec.span(t, l, 1234567, 2234567);
    std::string json = rec.toChromeJson();
    EXPECT_NE(json.find("\"ts\":1.234567"), std::string::npos)
        << json;
    EXPECT_NE(json.find("\"dur\":1.000000"), std::string::npos);
    EXPECT_TRUE(jsonBalanced(json));
}

// ---- Metrics registry -----------------------------------------------

TEST(Metrics, JsonCarriesExactStatGroupValues)
{
    StatGroup g("unit.group");
    g.scalar("reads").inc(7);
    g.scalar("writes").inc(3);
    g.average("queue_depth").sample(2.0);
    g.average("queue_depth").sample(4.0);
    auto &d = g.distribution("lat_ns");
    for (int i = 1; i <= 100; ++i)
        d.sample(static_cast<double>(i));

    MetricsRegistry reg;
    reg.add(g);
    ASSERT_EQ(reg.size(), 1u);
    std::string json = reg.toJson();
    EXPECT_TRUE(jsonBalanced(json)) << json;

    EXPECT_NE(json.find("\"name\": \"unit.group\""),
              std::string::npos);
    EXPECT_NE(json.find("\"reads\": 7"), std::string::npos);
    EXPECT_NE(json.find("\"writes\": 3"), std::string::npos);
    // Average mean of {2, 4} is 3; min/max preserved.
    EXPECT_NE(json.find("\"queue_depth\": {\"mean\": 3, \"min\": 2, "
                        "\"max\": 4, \"count\": 2}"),
              std::string::npos)
        << json;
    // Distribution percentiles match StatDistribution's own answers.
    std::ostringstream want;
    want << "\"p50\": " << d.percentile(0.5)
         << ", \"p99\": " << d.percentile(0.99);
    EXPECT_NE(json.find(want.str()), std::string::npos) << json;
}

namespace
{

/**
 * Strict recursive-descent JSON parser: objects, arrays, strings,
 * numbers, true/false/null and nothing else. Unlike jsonBalanced it
 * rejects bare `nan`/`inf` tokens, trailing garbage and malformed
 * numbers -- exactly what a cold-counter registry used to risk
 * emitting. Returns true when the whole input is one valid value.
 */
struct StrictJson
{
    const std::string &s;
    std::size_t i = 0;

    explicit StrictJson(const std::string &text) : s(text) {}

    void skipWs()
    {
        while (i < s.size() && (s[i] == ' ' || s[i] == '\n' ||
                                s[i] == '\t' || s[i] == '\r'))
            ++i;
    }

    bool lit(const char *word)
    {
        std::size_t n = std::string(word).size();
        if (s.compare(i, n, word) != 0)
            return false;
        i += n;
        return true;
    }

    bool string()
    {
        if (i >= s.size() || s[i] != '"')
            return false;
        ++i;
        while (i < s.size() && s[i] != '"') {
            if (s[i] == '\\')
                ++i;
            ++i;
        }
        if (i >= s.size())
            return false;
        ++i;
        return true;
    }

    bool number()
    {
        std::size_t start = i;
        if (i < s.size() && s[i] == '-')
            ++i;
        std::size_t digits = i;
        while (i < s.size() && std::isdigit(static_cast<unsigned char>(s[i])))
            ++i;
        if (i == digits)
            return false;
        if (i < s.size() && s[i] == '.') {
            ++i;
            while (i < s.size() && std::isdigit(static_cast<unsigned char>(s[i])))
                ++i;
        }
        if (i < s.size() && (s[i] == 'e' || s[i] == 'E')) {
            ++i;
            if (i < s.size() && (s[i] == '+' || s[i] == '-'))
                ++i;
            digits = i;
            while (i < s.size() && std::isdigit(static_cast<unsigned char>(s[i])))
                ++i;
            if (i == digits)
                return false;
        }
        return i > start;
    }

    bool value()
    {
        skipWs();
        if (i >= s.size())
            return false;
        switch (s[i]) {
          case '{': {
            ++i;
            skipWs();
            if (i < s.size() && s[i] == '}') {
                ++i;
                return true;
            }
            for (;;) {
                skipWs();
                if (!string())
                    return false;
                skipWs();
                if (i >= s.size() || s[i] != ':')
                    return false;
                ++i;
                if (!value())
                    return false;
                skipWs();
                if (i < s.size() && s[i] == ',') {
                    ++i;
                    continue;
                }
                break;
            }
            if (i >= s.size() || s[i] != '}')
                return false;
            ++i;
            return true;
          }
          case '[': {
            ++i;
            skipWs();
            if (i < s.size() && s[i] == ']') {
                ++i;
                return true;
            }
            for (;;) {
                if (!value())
                    return false;
                skipWs();
                if (i < s.size() && s[i] == ',') {
                    ++i;
                    continue;
                }
                break;
            }
            if (i >= s.size() || s[i] != ']')
                return false;
            ++i;
            return true;
          }
          case '"':
            return string();
          case 't':
            return lit("true");
          case 'f':
            return lit("false");
          case 'n':
            return lit("null");
          default:
            return number();
        }
    }

    bool document()
    {
        if (!value())
            return false;
        skipWs();
        return i == s.size();
    }
};

bool
strictJsonParse(const std::string &text)
{
    StrictJson p(text);
    return p.document();
}

} // namespace

// Regression: a registry holding stats that never saw a sample
// (every Memory Mode counter before its first access) used to emit
// the accessors' 0 fallbacks, making a cold distribution
// indistinguishable from one that measured zero. Unmeasured
// min/max/mean/percentiles must serialize as null -- and the
// document must still satisfy a strict JSON parser.
TEST(Metrics, EmptyStatsSerializeAsNullAndRoundTrip)
{
    StatGroup g("cold.group");
    g.scalar("touched").inc(0);
    g.average("empty_avg");       // Registered, never sampled.
    g.distribution("empty_dist"); // Registered, never sampled.
    auto &one = g.distribution("one_sample");
    one.sample(42.5);

    MetricsRegistry reg;
    reg.add(g);
    std::string json = reg.toJson();

    // Strict round trip: the whole document is one valid JSON value.
    EXPECT_TRUE(strictJsonParse(json)) << json;

    // The empty average and distribution report null, not 0.
    EXPECT_NE(json.find("\"empty_avg\": {\"mean\": null, "
                        "\"min\": null, \"max\": null, \"count\": 0}"),
              std::string::npos)
        << json;
    EXPECT_NE(json.find("\"empty_dist\": {\"mean\": null, "
                        "\"min\": null, \"max\": null, "
                        "\"p50\": null, \"p99\": null, "
                        "\"p999\": null, \"count\": 0}"),
              std::string::npos)
        << json;

    // One sample: every percentile is that sample, numerically.
    EXPECT_NE(json.find("\"one_sample\": {\"mean\": 42.5, "
                        "\"min\": 42.5, \"max\": 42.5, "
                        "\"p50\": 42.5, \"p99\": 42.5, "
                        "\"p999\": 42.5, \"count\": 1}"),
              std::string::npos)
        << json;
}

TEST(Metrics, WhollyEmptyRegistryRoundTrips)
{
    // Zero groups: the degenerate document must also parse.
    MetricsRegistry reg;
    EXPECT_TRUE(strictJsonParse(reg.toJson())) << reg.toJson();

    // A NaN that reaches a sample stream (a ratio of two zero
    // counters, say) must not leak a bare nan token into the JSON.
    StatGroup g("poisoned.group");
    g.average("ratio").sample(std::nan(""));
    reg.add(g);
    std::string json = reg.toJson();
    EXPECT_TRUE(strictJsonParse(json)) << json;
    EXPECT_EQ(json.find("nan"), std::string::npos) << json;
    EXPECT_NE(json.find("\"mean\": null"), std::string::npos) << json;
}

TEST(Metrics, SystemRegistersEveryComponentGroup)
{
    vans::test::VansFixture f(tracedConfig());
    Rng rng(23);
    for (int n = 0; n < 60; ++n) {
        Addr a = rng.below(1u << 20) & ~static_cast<Addr>(63);
        if (rng.below(2))
            f.drv.write(a);
        else
            f.drv.read(a);
    }
    f.drv.fence();

    MetricsRegistry reg;
    f.sys.metricsInto(reg);
    // imc + per-dimm (lsq, rmw, ait, media, wear, dram) + request
    // latency distributions + kernel counters.
    ASSERT_GE(reg.size(), 9u);

    // The registry reports the same object the component owns: a
    // scalar read through the registry equals the group's own value.
    for (const StatGroup *g : reg.all()) {
        for (const auto &kv : g->allScalars())
            EXPECT_EQ(kv.second.value(),
                      g->scalarValue(kv.first))
                << g->name() << "." << kv.first;
    }

    // The traced run sampled per-op latency distributions.
    const auto &dists = f.sys.requestStats().allDistributions();
    ASSERT_TRUE(dists.count("read_latency_ns"));
    ASSERT_TRUE(dists.count("write_latency_ns"));
    EXPECT_GT(dists.at("read_latency_ns").count(), 0u);
    EXPECT_GT(dists.at("read_latency_ns").mean(), 0.0);

    std::string json = reg.toJson();
    EXPECT_TRUE(jsonBalanced(json));
    EXPECT_NE(json.find("read_latency_ns"), std::string::npos);
}

// ---- Snapshot / restore ---------------------------------------------

namespace
{

void
tracedWarm(MemorySystem &sys)
{
    lens::Driver drv(sys);
    Rng rng(7);
    for (int n = 0; n < 150; ++n) {
        Addr a = rng.below(1u << 20) & ~static_cast<Addr>(63);
        if (rng.below(3) == 0)
            drv.write(a);
        else
            drv.read(a);
    }
    drv.fence();
}

void
tracedPoint(MemorySystem &sys)
{
    lens::Driver drv(sys);
    Rng rng(91);
    for (int n = 0; n < 80; ++n) {
        Addr a = rng.below(1u << 20) & ~static_cast<Addr>(63);
        if (rng.below(2))
            drv.write(a);
        else
            drv.read(a);
    }
    drv.fence();
}

} // namespace

namespace
{

/**
 * Events of the measured window: spans opened at or after @p t0.
 * A posted write issued during warm-up may close (and record) its
 * span just after quiescence; such stragglers begin before t0 and
 * cannot appear in a forked world, whose recorder starts at t0.
 */
std::vector<obs::TraceEvent>
measuredEvents(const std::vector<obs::TraceEvent> &evs, Tick t0)
{
    std::vector<obs::TraceEvent> out;
    for (const auto &e : evs)
        if (e.begin >= t0)
            out.push_back(e);
    return out;
}

} // namespace

TEST(Tracing, RestoredWorldRecordsIdenticalTrace)
{
    setQuiet(true);
    auto cfg = tracedConfig();

    // Cold reference: warm, quiesce, drop the warm-up events, then
    // record the measured workload.
    EventQueue ref_eq;
    nvram::VansSystem ref_sys(ref_eq, cfg);
    tracedWarm(ref_sys);
    snapshot::awaitQuiescence(ref_eq, ref_sys);
    Tick t0 = ref_eq.curTick();
    ASSERT_NE(ref_sys.tracer(), nullptr);
    ref_sys.tracer()->clear();
    tracedPoint(ref_sys);

    // Fork: identical warm-up in a prototype world, snapshot it, and
    // restore into a fresh traced world whose recorder starts empty.
    EventQueue proto_eq;
    nvram::VansSystem proto(proto_eq, cfg);
    tracedWarm(proto);
    snapshot::awaitQuiescence(proto_eq, proto);
    auto snap = snapshot::WorldSnapshot::capture(proto_eq, proto);

    EventQueue fork_eq;
    nvram::VansSystem fork_sys(fork_eq, cfg);
    snap.restoreInto(fork_eq, fork_sys);
    ASSERT_NE(fork_sys.tracer(), nullptr);
    ASSERT_TRUE(fork_sys.tracer()->events().empty());
    tracedPoint(fork_sys);

    // The recorder is excluded from snapshots on purpose, yet the
    // restored world's measured trace must be event-for-event the
    // cold world's: same tracks (attach order is deterministic),
    // same request ids (lastRequestId is serialized), same ticks
    // (fork fidelity).
    auto ref_evs = measuredEvents(ref_sys.tracer()->events(), t0);
    auto fork_evs = measuredEvents(fork_sys.tracer()->events(), t0);
    ASSERT_FALSE(ref_evs.empty());
    ASSERT_EQ(fork_evs.size(), ref_evs.size());
    for (std::size_t i = 0; i < ref_evs.size(); ++i)
        ASSERT_TRUE(fork_evs[i] == ref_evs[i]) << "event " << i;
}
