/**
 * @file
 * Tests for the fan-out substrate: ThreadPool, parallelFor and the
 * SweepRunner -- in particular that parallel sweeps are bit-identical
 * to their serial reference execution.
 */

#include <gtest/gtest.h>

#include <atomic>
#include <numeric>
#include <vector>

#include "common/parallel.hh"
#include "common/sweep.hh"
#include "lens/probers.hh"
#include "nvram/vans_system.hh"
#include "tests/test_util.hh"

using namespace vans;

TEST(ParallelFor, VisitsEveryIndexExactlyOnce)
{
    ThreadPool pool(4);
    std::vector<std::atomic<int>> hits(1000);
    parallelFor(
        hits.size(), [&](std::size_t i) { hits[i].fetch_add(1); },
        &pool);
    for (std::size_t i = 0; i < hits.size(); ++i)
        EXPECT_EQ(hits[i].load(), 1) << "index " << i;
}

TEST(ParallelFor, RunsInlineWithoutPool)
{
    int calls = 0;
    parallelFor(5, [&](std::size_t) { ++calls; }, nullptr);
    EXPECT_EQ(calls, 5);
}

TEST(ParallelFor, PropagatesExceptions)
{
    ThreadPool pool(2);
    EXPECT_THROW(
        parallelFor(
            16,
            [](std::size_t i) {
                if (i == 7)
                    throw std::runtime_error("boom");
            },
            &pool),
        std::runtime_error);
}

TEST(ParallelFor, NestedCallsRunInline)
{
    // A worker submitting more parallel work must not deadlock.
    ThreadPool pool(2);
    std::atomic<int> total{0};
    parallelFor(
        4,
        [&](std::size_t) {
            parallelFor(
                4, [&](std::size_t) { total.fetch_add(1); }, &pool);
        },
        &pool);
    EXPECT_EQ(total.load(), 16);
}

TEST(ThreadPool, WaitDrainsAllSubmitted)
{
    ThreadPool pool(3);
    std::atomic<int> done{0};
    for (int i = 0; i < 64; ++i)
        pool.submit([&done] { done.fetch_add(1); });
    pool.wait();
    EXPECT_EQ(done.load(), 64);
}

TEST(SweepRunner, MapPreservesIndexOrder)
{
    SweepRunner par(4);
    auto vals = par.map<std::size_t>(
        100, [](std::size_t i) { return i * i; });
    for (std::size_t i = 0; i < vals.size(); ++i)
        EXPECT_EQ(vals[i], i * i);
}

TEST(SweepRunner, PointSeedsAreStable)
{
    auto a = SweepRunner::pointSeed(42, 7);
    auto b = SweepRunner::pointSeed(42, 7);
    auto c = SweepRunner::pointSeed(42, 8);
    EXPECT_EQ(a, b);
    EXPECT_NE(a, c);
}

namespace
{

/** A small deterministic simulation point: total ticks to stream a
 *  seeded random block pattern through a fresh VANS system. */
std::uint64_t
simPoint(std::size_t i)
{
    EventQueue eq;
    nvram::VansSystem sys(eq, vans::test::smallConfig());
    lens::Driver drv(sys);
    Rng rng(SweepRunner::pointSeed(1234, i));
    for (int n = 0; n < 200; ++n) {
        Addr a = rng.below(1u << 20) & ~static_cast<Addr>(63);
        if (rng.below(2))
            drv.write(a);
        else
            drv.read(a);
    }
    drv.fence();
    return eq.curTick();
}

} // namespace

TEST(SweepRunner, ParallelSimulationMatchesSerial)
{
    SweepRunner serial(1);
    SweepRunner par(4);
    auto ref = serial.map<std::uint64_t>(12, simPoint);
    auto out = par.map<std::uint64_t>(12, simPoint);
    EXPECT_EQ(ref, out);
}

TEST(SweepRunner, FactoryProberMatchesAcrossThreadCounts)
{
    SystemFactory factory = [](EventQueue &eq) {
        return std::make_unique<nvram::VansSystem>(
            eq, vans::test::smallConfig());
    };
    lens::BufferProberParams bp;
    bp.maxRegion = 1ull << 20;
    bp.warmupLines = 600;
    bp.measureLines = 300;

    auto ref = lens::runBufferProber(factory, bp, SweepRunner(1));
    auto out = lens::runBufferProber(factory, bp, SweepRunner(4));

    ASSERT_EQ(ref.loadCurve.size(), out.loadCurve.size());
    for (std::size_t i = 0; i < ref.loadCurve.size(); ++i) {
        EXPECT_EQ(ref.loadCurve[i].x, out.loadCurve[i].x);
        EXPECT_EQ(ref.loadCurve[i].y, out.loadCurve[i].y);
    }
    EXPECT_EQ(ref.readBufferCapacities, out.readBufferCapacities);
    EXPECT_EQ(ref.writeQueueCapacities, out.writeQueueCapacities);
}
