/**
 * @file
 * Tests for the slab-backed RequestPool: generation-checked handle
 * safety (stale deref dies loudly instead of corrupting memory),
 * growth under burst, deterministic recycle ordering, and the
 * snapshot round-trip that pins a restored world's handle sequence.
 */

#include <gtest/gtest.h>

#include <vector>

#include "common/request_pool.hh"
#include "common/snapshot.hh"
#include "common/stats.hh"
#include "tests/test_util.hh"

using namespace vans;

// ---- Handle basics -------------------------------------------------

TEST(RequestHandle, NullHandleIsNeverValid)
{
    RequestHandle h;
    EXPECT_FALSE(static_cast<bool>(h));
    EXPECT_EQ(h.slot(), 0u);
    EXPECT_EQ(h.generation(), 0u);

    RequestPool pool;
    EXPECT_FALSE(pool.valid(h)); // Generations start at 1.
}

TEST(RequestHandle, PacksSlotAndGeneration)
{
    RequestHandle h = RequestHandle::make(0x1234u, 0xabcdu);
    EXPECT_EQ(h.slot(), 0x1234u);
    EXPECT_EQ(h.generation(), 0xabcdu);
    EXPECT_TRUE(static_cast<bool>(h));
    EXPECT_EQ(h, RequestHandle::make(0x1234u, 0xabcdu));
    EXPECT_NE(h, RequestHandle::make(0x1234u, 0xabceu));
}

TEST(RequestPool, AllocResetsEveryDescriptorField)
{
    RequestPool pool;
    RequestHandle h = pool.alloc();
    Request &r = pool.get(h);
    r.id = 42;
    r.addr = 0x1000;
    r.op = MemOp::WriteNT;
    r.issueTick = 7;
    r.completeTick = 9;
    r.preTranslate = true;
    pool.release(h);

    RequestHandle h2 = pool.alloc();
    // LIFO recycle: same slot, fresh generation, clean fields.
    EXPECT_EQ(h2.slot(), h.slot());
    EXPECT_NE(h2.generation(), h.generation());
    Request &r2 = pool.get(h2);
    EXPECT_EQ(r2.id, 0u);
    EXPECT_EQ(r2.addr, 0u);
    EXPECT_EQ(r2.op, MemOp::Read);
    EXPECT_EQ(r2.issueTick, 0u);
    EXPECT_EQ(r2.completeTick, 0u);
    EXPECT_FALSE(r2.preTranslate);
    EXPECT_FALSE(r2.onComplete);
    EXPECT_EQ(r2.trace, nullptr);
    pool.release(h2);
}

// ---- Stale-handle detection ----------------------------------------

TEST(RequestPoolDeathTest, StaleHandleDerefDiesLoudly)
{
    setQuiet(true);
    RequestPool pool;
    RequestHandle h = pool.alloc();
    pool.release(h);
    EXPECT_FALSE(pool.valid(h));
    EXPECT_DEATH(pool.get(h), "stale request handle");
}

TEST(RequestPoolDeathTest, RecycledSlotInvalidatesOldHandle)
{
    setQuiet(true);
    RequestPool pool;
    RequestHandle old = pool.alloc();
    pool.release(old);
    RequestHandle fresh = pool.alloc();
    ASSERT_EQ(fresh.slot(), old.slot()); // LIFO reuses the slot...
    EXPECT_TRUE(pool.valid(fresh));
    EXPECT_FALSE(pool.valid(old)); // ...but the old handle is dead.
    EXPECT_DEATH(pool.get(old), "stale request handle");
    pool.release(fresh);
}

TEST(RequestPoolDeathTest, DoubleReleaseDiesLoudly)
{
    setQuiet(true);
    RequestPool pool;
    RequestHandle h = pool.alloc();
    pool.release(h);
    EXPECT_DEATH(pool.release(h), "stale request handle");
}

TEST(RequestPoolDeathTest, NullHandleDerefDiesLoudly)
{
    setQuiet(true);
    RequestPool pool;
    EXPECT_DEATH(pool.get(RequestHandle{}), "stale request handle");
}

// ---- Growth under burst --------------------------------------------

TEST(RequestPool, GrowsUnderBurstThenRecyclesWithoutGrowing)
{
    RequestPool pool;
    constexpr std::size_t burst = 1000;

    std::vector<RequestHandle> live;
    live.reserve(burst);
    for (std::size_t i = 0; i < burst; ++i)
        live.push_back(pool.alloc());
    EXPECT_EQ(pool.live(), burst);
    EXPECT_GE(pool.capacity(), burst);

    // Every handle distinct and live, and request storage is stable:
    // addresses recorded at alloc time still match after full growth.
    for (std::size_t i = 0; i < burst; ++i)
        pool.get(live[i]).addr = i;
    for (std::size_t i = 0; i < burst; ++i)
        EXPECT_EQ(pool.get(live[i]).addr, i);

    std::uint32_t grown = pool.capacity();
    for (RequestHandle h : live)
        pool.release(h);
    EXPECT_EQ(pool.live(), 0u);

    // A second identical burst recycles: no further growth.
    live.clear();
    for (std::size_t i = 0; i < burst; ++i)
        live.push_back(pool.alloc());
    EXPECT_EQ(pool.capacity(), grown);
    for (RequestHandle h : live)
        pool.release(h);

    StatGroup stats("reqpool");
    pool.statsInto(stats);
    EXPECT_EQ(stats.scalarValue("allocs"), 2 * burst);
    EXPECT_EQ(stats.scalarValue("releases"), 2 * burst);
    EXPECT_EQ(stats.scalarValue("peak_live"), burst);
    EXPECT_EQ(stats.scalarValue("live"), 0u);
    EXPECT_EQ(stats.scalarValue("capacity"), grown);
    // Every alloc that did not trigger a chunk growth was served
    // from the free list.
    EXPECT_EQ(stats.scalarValue("recycles"),
              2 * burst - stats.scalarValue("chunk_growths"));
}

// ---- Recycle-ordering determinism ----------------------------------

namespace
{

/** Drive @p pool through a fixed interleaved alloc/release script and
 *  return every handle value it produced, in order. */
std::vector<std::uint64_t>
handleScript(RequestPool &pool)
{
    std::vector<std::uint64_t> seq;
    std::vector<RequestHandle> live;
    for (int round = 0; round < 50; ++round) {
        // Burst whose depth varies by round, then partial drain in
        // reverse order, then full drain: exercises LIFO recycling
        // across chunk growth.
        int depth = 3 + (round * 17) % 200;
        for (int i = 0; i < depth; ++i) {
            RequestHandle h = pool.alloc();
            seq.push_back(h.bits);
            live.push_back(h);
        }
        for (int i = 0; i < depth / 2; ++i) {
            pool.release(live.back());
            live.pop_back();
        }
        while (!live.empty()) {
            pool.release(live.back());
            live.pop_back();
        }
    }
    return seq;
}

} // namespace

TEST(RequestPool, IdenticalScriptsYieldIdenticalHandleSequences)
{
    RequestPool a, b;
    EXPECT_EQ(handleScript(a), handleScript(b));
}

// ---- Snapshot round-trip -------------------------------------------

TEST(RequestPoolSnapshot, RestoredPoolReplaysTheHandleSequence)
{
    RequestPool proto;
    // Warm the prototype: grow past one chunk and scramble the free
    // list away from the fresh-pool order.
    (void)handleScript(proto);
    ASSERT_EQ(proto.live(), 0u);
    std::uint32_t warm_cap = proto.capacity();
    EXPECT_GT(warm_cap, 128u) << "script must outgrow one chunk";

    snapshot::StateSink sink;
    proto.snapshotTo(sink);
    auto bytes = sink.take();

    RequestPool fork;
    snapshot::StateSource src(bytes);
    fork.restoreFrom(src);
    EXPECT_TRUE(src.exhausted());
    EXPECT_EQ(fork.capacity(), warm_cap);
    EXPECT_EQ(fork.live(), 0u);

    // Counters carried over: the restored pool reports the same
    // lifetime stats as the prototype.
    StatGroup ps("p"), fs("f");
    proto.statsInto(ps);
    fork.statsInto(fs);
    for (const char *key : {"allocs", "releases", "recycles",
                            "chunk_growths", "peak_live", "capacity"})
        EXPECT_EQ(fs.scalarValue(key), ps.scalarValue(key)) << key;

    // The core guarantee: both worlds now hand out the exact same
    // handle values for any identical run.
    EXPECT_EQ(handleScript(proto), handleScript(fork));
}

TEST(RequestPoolSnapshotDeathTest, SnapshotWithLiveRequestsDies)
{
    setQuiet(true);
    RequestPool pool;
    RequestHandle h = pool.alloc();
    snapshot::StateSink sink;
    EXPECT_DEATH(pool.snapshotTo(sink), "live request");
    pool.release(h);
}
