/**
 * @file
 * Sharded event kernel tests: the conservative-window parallel
 * kernel must be *bit-identical* to its own serial (1-thread)
 * execution for any thread count -- metrics JSON and Perfetto trace
 * JSON byte-compare across VANS_THREADS -- and the topology guards
 * added with it must reject malformed sockets loudly.
 */

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "common/metrics.hh"
#include "common/sharded_kernel.hh"
#include "common/snapshot.hh"
#include "common/sweep.hh"
#include "lens/driver.hh"
#include "nvram/vans_system.hh"
#include "tests/test_util.hh"

using namespace vans;
using vans::test::smallConfig;

namespace
{

/** The fully populated socket, shrunk to test cost. */
nvram::NvramConfig
socket6()
{
    nvram::NvramConfig cfg = smallConfig();
    cfg.numDimms = 6;
    cfg.interleaved = true;
    cfg.trace = true; // Exercise per-shard recorders + merge.
    return cfg;
}

/** One sharded world: kernel, system, driver, built in order. */
struct ShardedWorld
{
    explicit ShardedWorld(const nvram::NvramConfig &cfg,
                          unsigned threads)
        : kern(cfg.numDimms, nsToTicks(cfg.coreToImcNs), threads),
          sys(kern, cfg, "vans"),
          drv(sys)
    {
        setQuiet(true);
    }

    ShardedKernel kern;
    nvram::VansSystem sys;
    lens::Driver drv;
};

/** Everything a run produces that must not depend on thread count. */
struct RunOutput
{
    std::string metrics;
    std::string trace;
    Tick end = 0;
    std::uint64_t mediaWrites = 0;
    std::uint64_t rmwFills = 0;
};

template <typename Workload>
RunOutput
runSharded(const nvram::NvramConfig &cfg, unsigned threads,
           Workload &&work)
{
    ShardedWorld w(cfg, threads);
    work(w.drv);
    snapshot::awaitQuiescence(w.kern.core(), w.sys);
    RunOutput out;
    MetricsRegistry reg;
    w.sys.metricsInto(reg);
    out.metrics = reg.toJson();
    out.trace = w.sys.traceJson();
    out.end = w.kern.curTick();
    out.mediaWrites = w.sys.totalMediaWrites();
    out.rmwFills = w.sys.totalRmwFills();
    return out;
}

/** Fig 5-style pointer-chase + streamed mixed traffic, all 6 ways. */
void
fig05Workload(lens::Driver &drv)
{
    std::vector<Addr> addrs;
    for (unsigned i = 0; i < 96; ++i)
        addrs.push_back(static_cast<Addr>(i) * 4096 + (i % 4) * 64);
    drv.streamWrites(addrs, 16);
    drv.streamReads(addrs, 8);
    for (unsigned i = 0; i < 12; ++i)
        drv.read(static_cast<Addr>(i) * 8192);
    drv.fence();
}

/** Fig 7a-style sequential write burst spanning all interleaves. */
void
fig07aWorkload(lens::Driver &drv)
{
    for (unsigned rep = 0; rep < 3; ++rep)
        drv.writeBlock(static_cast<Addr>(rep) * 49152, 24576);
    drv.fence();
}

/** Persistence-ops workload: NT-store and clwb persist blocks,
 *  clflushopt writebacks and sfences across all interleaves. */
void
persistWorkload(lens::Driver &drv)
{
    for (unsigned rep = 0; rep < 4; ++rep) {
        Addr base = static_cast<Addr>(rep) * 16384;
        drv.persistBlockNt(base, 1024);
        drv.persistBlockCached(base + 8192, 512);
        drv.clflushopt(base + 12288);
        drv.sfence();
    }
    drv.fence();
}

} // namespace

// ---- Serial == sharded determinism -----------------------------------

TEST(ShardedDeterminism, Fig05MetricsAndTraceBitIdentical)
{
    nvram::NvramConfig cfg = socket6();
    RunOutput serial = runSharded(cfg, 1, fig05Workload);
    EXPECT_FALSE(serial.metrics.empty());
    EXPECT_FALSE(serial.trace.empty());
    for (unsigned threads : {2u, 8u}) {
        RunOutput par = runSharded(cfg, threads, fig05Workload);
        EXPECT_EQ(serial.metrics, par.metrics)
            << "metrics diverge at " << threads << " threads";
        EXPECT_EQ(serial.trace, par.trace)
            << "trace diverges at " << threads << " threads";
        EXPECT_EQ(serial.end, par.end);
    }
}

TEST(ShardedDeterminism, Fig07aMetricsAndTraceBitIdentical)
{
    nvram::NvramConfig cfg = socket6();
    RunOutput serial = runSharded(cfg, 1, fig07aWorkload);
    for (unsigned threads : {2u, 8u}) {
        RunOutput par = runSharded(cfg, threads, fig07aWorkload);
        EXPECT_EQ(serial.metrics, par.metrics)
            << "metrics diverge at " << threads << " threads";
        EXPECT_EQ(serial.trace, par.trace)
            << "trace diverges at " << threads << " threads";
        EXPECT_EQ(serial.end, par.end);
    }
}

TEST(ShardedDeterminism, PersistOpsBitIdentical)
{
    // The persistence ops (sfence ADR polling, clwb/clflushopt
    // writebacks, WC partial-drain charges) in the request stream
    // must keep sharded runs bit-identical to serial at any thread
    // count.
    nvram::NvramConfig cfg = socket6();
    RunOutput serial = runSharded(cfg, 1, persistWorkload);
    EXPECT_FALSE(serial.metrics.empty());
    EXPECT_FALSE(serial.trace.empty());
    for (unsigned threads : {2u, 8u}) {
        RunOutput par = runSharded(cfg, threads, persistWorkload);
        EXPECT_EQ(serial.metrics, par.metrics)
            << "metrics diverge at " << threads << " threads";
        EXPECT_EQ(serial.trace, par.trace)
            << "trace diverges at " << threads << " threads";
        EXPECT_EQ(serial.end, par.end);
    }
}

TEST(ShardedDeterminism, AgreesWithClassicKernelOnWorkCounts)
{
    // The classic single-queue path and the sharded path may differ
    // in fence completion quantization, but the *work* both worlds
    // perform -- media traffic, RMW fills -- must be identical.
    nvram::NvramConfig cfg = socket6();
    cfg.trace = false;

    test::VansFixture classic(cfg);
    fig07aWorkload(classic.drv);
    snapshot::awaitQuiescence(classic.eq, classic.sys);

    RunOutput shard = runSharded(cfg, 2, fig07aWorkload);
    EXPECT_EQ(classic.sys.totalMediaWrites(), shard.mediaWrites);
    EXPECT_EQ(classic.sys.totalRmwFills(), shard.rmwFills);
    EXPECT_GT(shard.mediaWrites, 0u);
}

TEST(ShardedDeterminism, SweepRunnerEntryPoint)
{
    // runSharded() wires the factory to a kernel with the runner's
    // thread count; results stay identical to the 1-thread runner.
    nvram::NvramConfig cfg = socket6();
    cfg.trace = false;
    auto runOne = [&cfg](const SweepRunner &runner) {
        ShardedFactory factory = [&cfg](ShardedKernel &kern) {
            return std::make_unique<nvram::VansSystem>(kern, cfg,
                                                       "vans");
        };
        return runner.runSharded(
            cfg.numDimms, nsToTicks(cfg.coreToImcNs), factory,
            [](MemorySystem &sys) {
                lens::Driver drv(sys);
                fig05Workload(drv);
                MetricsRegistry reg;
                sys.metricsInto(reg);
                return reg.toJson();
            });
    };
    std::string serial = runOne(SweepRunner(1));
    std::string par = runOne(SweepRunner(4));
    EXPECT_EQ(serial, par);
}

// ---- Snapshot / fork under sharding ----------------------------------

TEST(ShardedSnapshot, ForkIsBitIdenticalAcrossThreadCounts)
{
    nvram::NvramConfig cfg = socket6();

    // Warm one world, capture at quiescence, fork the measurement
    // into fresh worlds at several thread counts. Every forked world
    // must replay the measurement bit-identically: same metrics
    // JSON, same trace, same final tick. (The continuous run is not
    // byte-compared: its shard queues carry stale guarded-timer
    // events that a restore legitimately does not re-create, and
    // those shift the lazy window grid.)
    ShardedWorld proto(cfg, 2);
    fig07aWorkload(proto.drv);
    snapshot::awaitQuiescence(proto.kern.core(), proto.sys);
    auto snap =
        snapshot::WorldSnapshot::capture(proto.kern.core(), proto.sys);
    ASSERT_TRUE(snap.valid());

    RunOutput ref;
    bool have_ref = false;
    for (unsigned threads : {1u, 2u, 8u}) {
        ShardedWorld fork(cfg, threads);
        snap.restoreInto(fork.kern.core(), fork.sys);
        fig05Workload(fork.drv);
        snapshot::awaitQuiescence(fork.kern.core(), fork.sys);
        RunOutput out;
        MetricsRegistry reg;
        fork.sys.metricsInto(reg);
        out.metrics = reg.toJson();
        out.trace = fork.sys.traceJson();
        out.end = fork.kern.curTick();
        out.mediaWrites = fork.sys.totalMediaWrites();
        if (!have_ref) {
            ref = out;
            have_ref = true;
            EXPECT_GT(ref.mediaWrites, 0u);
            continue;
        }
        EXPECT_EQ(ref.metrics, out.metrics)
            << "forked world diverges at " << threads << " threads";
        EXPECT_EQ(ref.trace, out.trace);
        EXPECT_EQ(ref.end, out.end);
    }

    // Behavioural consistency with the continuous history: the
    // warm-up plus measurement perform the same media work whether
    // forked or run straight through.
    RunOutput cont = runSharded(cfg, 2, [](lens::Driver &drv) {
        fig07aWorkload(drv);
        fig05Workload(drv);
    });
    EXPECT_EQ(cont.mediaWrites, ref.mediaWrites);
}

TEST(ShardedSnapshot, QuiescenceRequiredAcrossAllShards)
{
    nvram::NvramConfig cfg = socket6();
    cfg.trace = false;
    ShardedWorld w(cfg, 2);
    fig07aWorkload(w.drv);
    snapshot::awaitQuiescence(w.kern.core(), w.sys);
    EXPECT_TRUE(w.sys.quiescent());
    // Not idle(): the AIT buffer's DRAM refresh timer stays armed on
    // every shard queue even at quiescence, exactly as in classic
    // mode -- quiescence is a state predicate, not queue emptiness.
    EXPECT_GT(w.kern.windowsRun(), 0u);
}

// ---- Topology guards -------------------------------------------------

TEST(ShardedConfigDeathTest, RejectsZeroDimms)
{
    nvram::NvramConfig cfg = smallConfig();
    cfg.numDimms = 0;
    EXPECT_DEATH(cfg.validate(), "num_dimms");
}

TEST(ShardedConfigDeathTest, RejectsNonPowerOfTwoInterleave)
{
    Config raw = Config::fromString("[nvram]\n"
                                    "num_dimms = 6\n"
                                    "interleaved = true\n"
                                    "interleave_bytes = 3000\n");
    EXPECT_DEATH(nvram::NvramConfig::fromConfig(raw),
                 "power of two");
}

TEST(ShardedConfigDeathTest, RejectsInterleaveBelowCacheLine)
{
    nvram::NvramConfig cfg = smallConfig();
    cfg.numDimms = 6;
    cfg.interleaved = true;
    cfg.interleaveBytes = 32;
    EXPECT_DEATH(cfg.validate(), "power of two");
}

TEST(ShardedConfigDeathTest, RejectsInterleaveBeyondCapacity)
{
    nvram::NvramConfig cfg = smallConfig();
    cfg.numDimms = 6;
    cfg.interleaved = true;
    cfg.interleaveBytes = cfg.dimmCapacity * 2;
    EXPECT_DEATH(cfg.validate(), "exceeds");
}

TEST(ShardedConfigDeathTest, RejectsAddressBeyondSocket)
{
    nvram::NvramConfig cfg = smallConfig();
    cfg.numDimms = 2;
    cfg.interleaved = true;
    test::VansFixture f(cfg);
    Addr beyond = static_cast<Addr>(cfg.numDimms) * cfg.dimmCapacity;
    EXPECT_DEATH(f.drv.read(beyond), "beyond the .*socket capacity");
}

TEST(ShardedConfigDeathTest, RejectsWindowWiderThanHopLatency)
{
    nvram::NvramConfig cfg = smallConfig();
    cfg.numDimms = 2;
    cfg.interleaved = true;
    EXPECT_DEATH(
        {
            ShardedKernel kern(cfg.numDimms,
                               nsToTicks(cfg.coreToImcNs) * 2, 1);
            nvram::VansSystem sys(kern, cfg, "vans");
        },
        "window");
}
