/**
 * @file
 * Tests for the warm-world snapshot/fork subsystem: the typed state
 * stream, the flat LRU backing the AIT, kernel-counter snapshots,
 * and -- the core guarantee -- fork fidelity: a world restored from
 * a WorldSnapshot runs tick-for-tick identically to a world that
 * re-ran the warm-up from scratch, across thread counts.
 */

#include <gtest/gtest.h>

#include <list>
#include <memory>
#include <set>
#include <vector>

#include "common/flat_lru.hh"
#include "common/inplace_function.hh"
#include "common/rng.hh"
#include "common/snapshot.hh"
#include "common/sweep.hh"
#include "lens/driver.hh"
#include "nvram/vans_system.hh"
#include "tests/test_util.hh"

using namespace vans;

// ---- Typed state stream --------------------------------------------

TEST(SnapshotStream, RoundtripTypedValues)
{
    snapshot::StateSink sink;
    sink.tag("hdr");
    sink.u64(0xdeadbeefULL);
    sink.f64(3.25);
    sink.boolean(true);
    sink.boolean(false);
    sink.str("component-name");
    sink.tag("end");

    auto bytes = sink.take();
    snapshot::StateSource src(bytes);
    src.tag("hdr");
    EXPECT_EQ(src.u64(), 0xdeadbeefULL);
    EXPECT_EQ(src.f64(), 3.25);
    EXPECT_TRUE(src.boolean());
    EXPECT_FALSE(src.boolean());
    EXPECT_EQ(src.str(), "component-name");
    src.tag("end");
    EXPECT_TRUE(src.exhausted());
}

TEST(SnapshotStreamDeathTest, TypeMismatchPanics)
{
    setQuiet(true);
    snapshot::StateSink sink;
    sink.f64(1.0);
    auto bytes = sink.take();
    snapshot::StateSource src(bytes);
    EXPECT_DEATH(src.u64(), "type mismatch");
}

TEST(SnapshotStreamDeathTest, TagMismatchPanics)
{
    setQuiet(true);
    snapshot::StateSink sink;
    sink.tag("ait");
    auto bytes = sink.take();
    snapshot::StateSource src(bytes);
    EXPECT_DEATH(src.tag("rmw"), "tag mismatch");
}

TEST(SnapshotStreamDeathTest, TruncatedStreamPanics)
{
    setQuiet(true);
    std::vector<std::uint8_t> empty;
    snapshot::StateSource src(empty);
    EXPECT_DEATH(src.u64(), "exhausted");
}

// ---- FlatLru vs a reference model ----------------------------------

namespace
{

/** Obviously-correct LRU: std::list (MRU first) + membership set. */
struct RefLru
{
    explicit RefLru(std::size_t cap) : capacity(cap) {}

    bool
    touch(Addr key)
    {
        for (auto it = order.begin(); it != order.end(); ++it) {
            if (*it == key) {
                order.erase(it);
                order.push_front(key);
                return true;
            }
        }
        return false;
    }

    bool
    insert(Addr key, Addr &evicted)
    {
        order.push_front(key);
        if (order.size() > capacity) {
            evicted = order.back();
            order.pop_back();
            return true;
        }
        return false;
    }

    void
    erase(Addr key)
    {
        order.remove(key);
    }

    std::size_t capacity;
    std::list<Addr> order;
};

} // namespace

TEST(FlatLruTest, FuzzAgainstReferenceModel)
{
    constexpr std::size_t cap = 32;
    FlatLru lru(cap);
    RefLru ref(cap);
    Rng rng(20240806);

    for (int step = 0; step < 20000; ++step) {
        Addr key = rng.below(96) * 64; // Collisions on purpose.
        switch (rng.below(4)) {
        case 0:
        case 1: { // Lookup-or-insert, the AIT access pattern.
            bool hit = lru.touch(key);
            bool ref_hit = ref.touch(key);
            ASSERT_EQ(hit, ref_hit) << "step " << step;
            if (!hit) {
                Addr ev = 0, ref_ev = 0;
                bool evicted = lru.insert(key, ev);
                bool ref_evicted = ref.insert(key, ref_ev);
                ASSERT_EQ(evicted, ref_evicted) << "step " << step;
                if (evicted) {
                    ASSERT_EQ(ev, ref_ev) << "step " << step;
                }
            }
            break;
        }
        case 2: // Erase (present or not).
            if (lru.contains(key)) {
                lru.erase(key);
                ref.erase(key);
            }
            break;
        case 3: { // Full order audit.
            std::vector<Addr> got;
            lru.forEachMruToLru(
                [&got](Addr a) { got.push_back(a); });
            std::vector<Addr> want(ref.order.begin(),
                                   ref.order.end());
            ASSERT_EQ(got, want) << "step " << step;
            break;
        }
        }
        ASSERT_EQ(lru.size(), ref.order.size());
        if (!ref.order.empty()) {
            ASSERT_EQ(lru.lruKey(), ref.order.back());
        }
    }
}

TEST(FlatLruTest, ClearEmptiesEverything)
{
    FlatLru lru(8);
    Addr ev = 0;
    for (Addr a = 0; a < 8; ++a)
        lru.insert(a, ev);
    EXPECT_TRUE(lru.full());
    lru.clear();
    EXPECT_EQ(lru.size(), 0u);
    EXPECT_FALSE(lru.contains(3));
}

// ---- InplaceFunction basics (the event-path callback type) ---------

TEST(InplaceFunctionTest, MoveOnlyCaptureInvokes)
{
    auto value = std::make_unique<int>(41);
    InplaceFunction<int()> fn(
        [v = std::move(value)]() { return *v + 1; });
    EXPECT_TRUE(static_cast<bool>(fn));
    EXPECT_EQ(fn(), 42);

    InplaceFunction<int()> moved(std::move(fn));
    EXPECT_FALSE(static_cast<bool>(fn));
    EXPECT_EQ(moved(), 42);
}

TEST(InplaceFunctionTest, ReassignmentReplacesTarget)
{
    InplaceFunction<int(int)> fn([](int x) { return x * 2; });
    EXPECT_EQ(fn(21), 42);
    fn = [](int x) { return x + 1; };
    EXPECT_EQ(fn(41), 42);
    fn = nullptr;
    EXPECT_FALSE(static_cast<bool>(fn));
}

// ---- EventQueue counter snapshot -----------------------------------

TEST(EventQueueSnapshot, CountersRoundtrip)
{
    EventQueue eq;
    std::uint64_t fired = 0;
    for (int i = 0; i < 20; ++i)
        eq.schedule(static_cast<Tick>(i) * 10,
                    [&fired] { ++fired; });
    eq.run();
    ASSERT_EQ(fired, 20u);

    snapshot::StateSink sink;
    eq.snapshotTo(sink);
    auto bytes = sink.take();

    EventQueue fresh;
    snapshot::StateSource src(bytes);
    fresh.restoreFrom(src);
    EXPECT_TRUE(src.exhausted());
    EXPECT_EQ(fresh.curTick(), eq.curTick());
    EXPECT_EQ(fresh.executed(), eq.executed());

    // The restored queue keeps ticking forward from the captured
    // point: scheduling in its past must still panic.
    bool ok = false;
    fresh.scheduleAfter(5, [&ok] { ok = true; });
    fresh.run();
    EXPECT_TRUE(ok);
}

// ---- Fork fidelity --------------------------------------------------

namespace
{

SystemFactory
smallFactory()
{
    return [](EventQueue &eq) {
        return std::make_unique<nvram::VansSystem>(
            eq, vans::test::smallConfig());
    };
}

/** Deterministic mixed warm-up: reads and writes over 1MB. */
void
warmWorkload(MemorySystem &sys)
{
    lens::Driver drv(sys);
    Rng rng(7);
    for (int n = 0; n < 250; ++n) {
        Addr a = rng.below(1u << 20) & ~static_cast<Addr>(63);
        if (rng.below(3) == 0)
            drv.write(a);
        else
            drv.read(a);
    }
    drv.fence();
}

/** Per-point measurement: every op latency plus the final tick. */
struct PointTrace
{
    std::vector<Tick> latencies;
    Tick endTick = 0;

    bool
    operator==(const PointTrace &o) const
    {
        return endTick == o.endTick && latencies == o.latencies;
    }
};

PointTrace
pointWorkload(MemorySystem &sys, std::size_t i)
{
    lens::Driver drv(sys);
    Rng rng(SweepRunner::pointSeed(99, i));
    PointTrace t;
    for (int n = 0; n < 120; ++n) {
        Addr a = rng.below(1u << 20) & ~static_cast<Addr>(63);
        t.latencies.push_back(rng.below(2) ? drv.write(a)
                                           : drv.read(a));
    }
    drv.fence();
    t.endTick = sys.eventQueue().curTick();
    return t;
}

/** The serial cold reference for point @p i: fresh world, full
 *  re-warm to quiescence, then the point body. */
PointTrace
coldReference(const SystemFactory &factory, std::size_t i)
{
    EventQueue eq;
    auto sys = factory(eq);
    warmWorkload(*sys);
    snapshot::awaitQuiescence(eq, *sys);
    return pointWorkload(*sys, i);
}

} // namespace

TEST(ForkFidelity, ForkedPointsMatchColdReferenceTickForTick)
{
    setQuiet(true);
    auto factory = smallFactory();
    SweepRunner serial(1);
    auto ws = serial.warmOnce(factory, warmWorkload);
    ASSERT_TRUE(ws.forked()) << "VansSystem must support snapshots";

    auto forked = serial.mapForked<PointTrace>(
        ws, 4,
        [](MemorySystem &sys, std::size_t i) {
            return pointWorkload(sys, i);
        });

    for (std::size_t i = 0; i < forked.size(); ++i) {
        PointTrace ref = coldReference(factory, i);
        ASSERT_EQ(forked[i].latencies.size(), ref.latencies.size());
        for (std::size_t n = 0; n < ref.latencies.size(); ++n) {
            ASSERT_EQ(forked[i].latencies[n], ref.latencies[n])
                << "point " << i << " op " << n;
        }
        EXPECT_EQ(forked[i].endTick, ref.endTick) << "point " << i;
    }
}

TEST(ForkFidelity, RestoredStatsIdenticalAfterIdenticalRun)
{
    setQuiet(true);
    auto factory = smallFactory();

    // Reference: cold world, warm, quiesce, point.
    EventQueue ref_eq;
    auto ref_sys = factory(ref_eq);
    warmWorkload(*ref_sys);
    snapshot::awaitQuiescence(ref_eq, *ref_sys);

    // Fork: capture the same warm state from another world.
    EventQueue proto_eq;
    auto proto = factory(proto_eq);
    warmWorkload(*proto);
    snapshot::awaitQuiescence(proto_eq, *proto);
    auto snap = snapshot::WorldSnapshot::capture(proto_eq, *proto);
    EXPECT_GT(snap.sizeBytes(), 0u);

    EventQueue fork_eq;
    auto fork_sys = factory(fork_eq);
    snap.restoreInto(fork_eq, *fork_sys);
    EXPECT_EQ(fork_eq.curTick(), ref_eq.curTick());

    pointWorkload(*ref_sys, 0);
    pointWorkload(*fork_sys, 0);

    auto &ref_vans = static_cast<nvram::VansSystem &>(*ref_sys);
    auto &fork_vans = static_cast<nvram::VansSystem &>(*fork_sys);
    EXPECT_TRUE(fork_vans.dimm().ait().stats().identicalTo(
        ref_vans.dimm().ait().stats()));
    EXPECT_TRUE(fork_vans.dimm().rmw().stats().identicalTo(
        ref_vans.dimm().rmw().stats()));
    EXPECT_TRUE(fork_vans.dimm().lsq().stats().identicalTo(
        ref_vans.dimm().lsq().stats()));
    EXPECT_TRUE(fork_vans.imc().stats().identicalTo(
        ref_vans.imc().stats()));
}

TEST(ForkFidelity, MapFromWarmIdenticalAcrossThreadCounts)
{
    setQuiet(true);
    auto factory = smallFactory();
    auto run = [&](unsigned threads) {
        return SweepRunner(threads).mapFromWarm<PointTrace>(
            factory, warmWorkload, 8,
            [](MemorySystem &sys, std::size_t i) {
                return pointWorkload(sys, i);
            });
    };
    auto serial = run(1);
    auto par = run(4);
    ASSERT_EQ(serial.size(), par.size());
    for (std::size_t i = 0; i < serial.size(); ++i)
        EXPECT_TRUE(serial[i] == par[i]) << "point " << i;
}

TEST(ForkFidelity, ColdFallbackStillDeterministic)
{
    // A system without snapshot support takes the re-warm-per-point
    // path; results must still be identical across thread counts.
    setQuiet(true);
    struct NoSnapSystem : nvram::VansSystem
    {
        using nvram::VansSystem::VansSystem;
        bool snapshotSupported() const override { return false; }
    };
    SystemFactory factory = [](EventQueue &eq) {
        return std::make_unique<NoSnapSystem>(
            eq, vans::test::smallConfig());
    };
    auto ws = SweepRunner(1).warmOnce(factory, warmWorkload);
    EXPECT_FALSE(ws.forked());

    auto run = [&](unsigned threads) {
        return SweepRunner(threads).mapFromWarm<PointTrace>(
            factory, warmWorkload, 3,
            [](MemorySystem &sys, std::size_t i) {
                return pointWorkload(sys, i);
            });
    };
    auto serial = run(1);
    auto par = run(3);
    for (std::size_t i = 0; i < serial.size(); ++i)
        EXPECT_TRUE(serial[i] == par[i]) << "point " << i;
}

// ---- Quiescence drain ----------------------------------------------

// Regression for the refresh re-arm hang: 6 records x 64B = 384B =
// 1.5 RMW lines, so the trailing partial line forces a
// read-modify-write fill that touches the on-DIMM DRAM -- whose
// tREFI refresh wakeup then re-arms forever. Any drain loop keyed on
// event-queue emptiness spins for eternity on this shape (the
// pre-fix failure mode: 768B worked only because 3 *full* RMW lines
// never touch DRAM). MemorySystem::drain keys on the quiescent()
// state predicate and must return promptly.
TEST(QuiescenceDrain, PartialRmwLineWorkloadDrainsWithoutTimeout)
{
    vans::test::VansFixture f(vans::test::smallConfig());
    for (unsigned i = 0; i < 6; ++i) {
        Addr a = static_cast<Addr>(i) * cacheLineSize;
        f.drv.write(a); // NT store: completes at ADR acceptance.
        f.drv.sfence();
    }
    // Downstream media/RMW traffic is still in flight here; idle the
    // world out through the shared helper (bounded: a hang fails the
    // REQUIRE instead of wedging ctest).
    f.drv.drain();
    EXPECT_TRUE(f.sys.quiescent());
    // The pair that encodes the bug: the world is quiescent, yet its
    // queue is NOT empty -- the refresh timer stays armed. Emptiness
    // is never a termination condition.
    EXPECT_FALSE(f.eq.empty());
}

TEST(QuiescenceDrain, CachedPersistShapeAlsoDrains)
{
    // The store+clwb+sfence spelling of the same 6-record shape,
    // through the block helper (clwb every line, then sfence).
    vans::test::VansFixture f(vans::test::smallConfig());
    f.drv.persistBlockCached(0, 6 * cacheLineSize);
    f.sys.drain();
    EXPECT_TRUE(f.sys.quiescent());
    EXPECT_FALSE(f.eq.empty());
    // Draining an already-quiescent world is a cheap no-op.
    f.sys.drain();
    EXPECT_TRUE(f.sys.quiescent());
}

TEST(ForkFidelityDeathTest, CapturingNonQuiescentWorldPanics)
{
    setQuiet(true);
    EventQueue eq;
    nvram::VansSystem sys(eq, vans::test::smallConfig());
    // Issue a request and do NOT step the queue: in flight.
    sys.issue(sys.makeRequest(0, MemOp::ReadNT));
    ASSERT_FALSE(sys.quiescent());
    EXPECT_DEATH(snapshot::WorldSnapshot::capture(eq, sys),
                 "non-quiescent");
}

TEST(ForkFidelityDeathTest, RestoreIntoUsedWorldPanics)
{
    setQuiet(true);
    auto factory = smallFactory();
    EventQueue proto_eq;
    auto proto = factory(proto_eq);
    warmWorkload(*proto);
    snapshot::awaitQuiescence(proto_eq, *proto);
    auto snap = snapshot::WorldSnapshot::capture(proto_eq, *proto);

    // Restoring into a world that has already simulated must panic:
    // the kernel refuses to rewind a non-fresh queue.
    EXPECT_DEATH(
        {
            EventQueue eq;
            auto sys = factory(eq);
            lens::Driver drv(*sys);
            drv.read(64);
            snap.restoreInto(eq, *sys);
        },
        "");
}
