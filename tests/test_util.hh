/**
 * @file
 * Shared fixtures and helpers for the test suite.
 */

#ifndef VANS_TESTS_TEST_UTIL_HH
#define VANS_TESTS_TEST_UTIL_HH

#include <memory>

#include "common/event_queue.hh"
#include "common/logging.hh"
#include "lens/driver.hh"
#include "nvram/vans_system.hh"

namespace vans::test
{

/** A VANS instance + LENS driver with a given config. */
struct VansFixture
{
    explicit VansFixture(
        nvram::NvramConfig cfg = nvram::NvramConfig::optaneDefault())
        : sys(eq, cfg), drv(sys)
    {
        setQuiet(true);
    }

    EventQueue eq;
    nvram::VansSystem sys;
    lens::Driver drv;
};

/** Reduced-cost config for tests: smaller buffers, faster sweeps. */
inline nvram::NvramConfig
smallConfig()
{
    nvram::NvramConfig cfg = nvram::NvramConfig::optaneDefault();
    cfg.rmwEntries = 16;                  // 4KB RMW buffer.
    cfg.aitBufEntries = 64;               // 256KB AIT buffer.
    cfg.dimmCapacity = 64ull << 20;
    cfg.wearThreshold = 500;
    cfg.migrationUs = 20;
    return cfg;
}

} // namespace vans::test

#endif // VANS_TESTS_TEST_UTIL_HH
